// Package wattio_test holds the benchmark harness that regenerates
// every table and figure in the paper's evaluation (run with
// `go test -bench=. -benchmem`), plus ablation benchmarks for the
// design choices DESIGN.md calls out and micro-benchmarks of the
// simulation substrate itself.
//
// Figure benchmarks report their headline quantities via b.ReportMetric
// so `bench_output.txt` doubles as a paper-vs-measured record.
package wattio_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"wattio/internal/calib"
	"wattio/internal/catalog"
	"wattio/internal/device"
	"wattio/internal/experiments"
	"wattio/internal/hdd"
	"wattio/internal/measure"
	"wattio/internal/scenario"
	"wattio/internal/serve"
	"wattio/internal/sim"
	"wattio/internal/ssd"
	"wattio/internal/telemetry"
	"wattio/internal/workload"
)

// benchScale keeps per-point cost low while letting every trend bind;
// the powerbench CLI runs the same experiments at full paper scale.
var benchScale = experiments.Scale{Runtime: 2 * time.Second, TotalBytes: 512 << 20, Seed: 42}

func BenchmarkTable1(b *testing.B) {
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table1(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.MinW, r.Label+"_min_W")
		b.ReportMetric(r.MaxW, r.Label+"_max_W")
	}
}

func BenchmarkFigure2(b *testing.B) {
	scale := benchScale
	scale.TotalBytes = 2 << 30 // the burst process needs a longer trace
	var f experiments.Fig2
	for i := 0; i < b.N; i++ {
		var err error
		f, err = experiments.Figure2(scale)
		if err != nil {
			b.Fatal(err)
		}
	}
	s1 := f.Violins["SSD1"]
	b.ReportMetric(s1.Mean, "SSD1_mean_W")
	b.ReportMetric(s1.Max-s1.Min, "SSD1_swing_W")
	b.ReportMetric(float64(f.Trace.Len()), "trace_samples")
}

func BenchmarkFigure3(b *testing.B) {
	var series []experiments.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiments.Figure3(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range series {
		if s.Label == "ps1 qd64" || s.Label == "ps2 qd64" {
			b.ReportMetric(s.Y[len(s.Y)-1], s.Label[:3]+"_2MiB_W")
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	var series []experiments.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiments.Figure4(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	by := map[string]experiments.Series{}
	for _, s := range series {
		by[s.Label] = s
	}
	last := len(by["seq write ps0"].Y) - 1
	b.ReportMetric(by["seq write ps1"].Y[last]/by["seq write ps0"].Y[last], "write_ps1_over_ps0")
	b.ReportMetric(by["seq write ps2"].Y[last]/by["seq write ps0"].Y[last], "write_ps2_over_ps0")
	b.ReportMetric(by["seq read ps2"].Y[last]/by["seq read ps0"].Y[last], "read_ps2_over_ps0")
}

func BenchmarkFigure5(b *testing.B) {
	var avg, p99 []experiments.Series
	for i := 0; i < b.N; i++ {
		var err error
		avg, p99, err = experiments.Figure5(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	n := len(avg[2].Y) - 1
	b.ReportMetric(avg[2].Y[n], "ps2_avg_ratio_2MiB")
	b.ReportMetric(p99[2].Y[n], "ps2_p99_ratio_2MiB")
}

func BenchmarkFigure6(b *testing.B) {
	var avg, p99 []experiments.Series
	for i := 0; i < b.N; i++ {
		var err error
		avg, p99, err = experiments.Figure6(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	n := len(avg[2].Y) - 1
	b.ReportMetric(avg[2].Y[n], "ps2_avg_ratio_2MiB")
	b.ReportMetric(p99[2].Y[n], "ps2_p99_ratio_2MiB")
}

func BenchmarkFigure7(b *testing.B) {
	var f experiments.Fig7
	for i := 0; i < b.N; i++ {
		var err error
		f, err = experiments.Figure7(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f.EnterDone.Seconds()*1000, "enter_settled_ms")
	b.ReportMetric(f.ExitDone.Seconds()*1000, "exit_settled_ms")
}

func BenchmarkFigure8(b *testing.B) {
	var sweeps []experiments.DeviceSweep
	for i := 0; i < b.N; i++ {
		var err error
		sweeps, err = experiments.Figure8(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, d := range sweeps {
		n := len(d.X) - 1
		b.ReportMetric(d.PowerW[0]/d.PowerW[n], d.Device+"_power_4k_over_2m")
		b.ReportMetric(d.MBps[0]/d.MBps[n], d.Device+"_tput_4k_over_2m")
	}
}

func BenchmarkFigure9(b *testing.B) {
	var sweeps []experiments.DeviceSweep
	for i := 0; i < b.N; i++ {
		var err error
		sweeps, err = experiments.Figure9(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, d := range sweeps {
		n := len(d.X) - 1
		b.ReportMetric(d.PowerW[0]/d.PowerW[n], d.Device+"_power_qd1_over_qd128")
		b.ReportMetric(d.MBps[0]/d.MBps[n], d.Device+"_tput_qd1_over_qd128")
	}
}

func BenchmarkFigure10(b *testing.B) {
	var dr2, dr1 float64
	for i := 0; i < b.N; i++ {
		models, err := experiments.Figure10(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		dr2 = models["SSD2"].DynamicRangeFrac()
		dr1 = models["SSD1"].DynamicRangeFrac()
	}
	b.ReportMetric(dr2*100, "SSD2_dynrange_pct")
	b.ReportMetric(dr1*100, "SSD1_dynrange_pct")
}

func BenchmarkHeadline(b *testing.B) {
	var h experiments.Headline
	for i := 0; i < b.N; i++ {
		models, err := experiments.Figure10(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		h, err = experiments.ComputeHeadline(models)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(h.SSD2DynamicRange*100, "SSD2_dynrange_pct")
	b.ReportMetric(h.HDDThroughputFloor*100, "HDD_tput_floor_pct")
	b.ReportMetric(h.Curtailment.PowerReduction*100, "curtail_power_pct")
	b.ReportMetric((1-h.Curtailment.ThroughputKept)*100, "curtail_tput_pct")
}

func BenchmarkStandby(b *testing.B) {
	var rows []experiments.StandbyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.StandbyStudy(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if !r.Supported {
			continue
		}
		b.ReportMetric(r.SavedW, r.Device+"_saved_W")
		b.ReportMetric(r.EnterTook.Seconds()+r.ExitTook.Seconds(), r.Device+"_roundtrip_s")
	}
}

// BenchmarkFleetServe runs the fleet serving engine at the powerbench
// -exp fleet defaults (stepped budget, no faults) and reports the
// headline serving metrics; scripts/bench_fleet.sh turns the metrics
// into BENCH_fleet.json for the CI bench-trajectory artifact.
func BenchmarkFleetServe(b *testing.B) {
	spec, err := experiments.FleetSpec(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	var rep *serve.Report
	for i := 0; i < b.N; i++ {
		rep, err = serve.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.ThroughputMBps, "fleet_MBps")
	b.ReportMetric(float64(rep.LatP99)/1e6, "fleet_p99_ms")
	b.ReportMetric(rep.AvgPowerW, "fleet_avg_W")
	b.ReportMetric(rep.WorstOverW, "fleet_worst_over_W")
	b.ReportMetric(float64(rep.Rejected), "fleet_rejected")
}

// BenchmarkMesoServe pair-runs a 10k-device steady fleet with the
// mesoscale tier off and then on, and reports the wall-clock speedup,
// the dispatched-event reduction (the deterministic proxy CI gates
// on), and the energy agreement between the two representations;
// scripts/bench_meso.sh turns the metrics into BENCH_meso.json.
// The arrival rate is turned down from the builtin scenario's so the
// pure event-driven baseline stays affordable at this fleet size.
func BenchmarkMesoServe(b *testing.B) {
	sp := scenario.BuiltIn("meso")
	sp.Fleet.Size = 10000
	sp.Fleet.RateIOPS = 500
	spec, err := sp.ServeSpec(2 * time.Second)
	if err != nil {
		b.Fatal(err)
	}
	base := spec
	base.Meso = false
	var pure, hyb *serve.Report
	var pureNS, hybNS float64
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if pure, err = serve.Run(base); err != nil {
			b.Fatal(err)
		}
		pureNS = float64(time.Since(t0))
		t0 = time.Now()
		if hyb, err = serve.Run(spec); err != nil {
			b.Fatal(err)
		}
		hybNS = float64(time.Since(t0))
	}
	diff := (hyb.AvgPowerW - pure.AvgPowerW) / pure.AvgPowerW
	if diff < 0 {
		diff = -diff
	}
	driftOK := 0.0
	if hyb.MesoDriftOK {
		driftOK = 1
	}
	b.ReportMetric(pureNS/hybNS, "meso_speedup_x")
	b.ReportMetric(float64(pure.Events)/float64(hyb.Events), "meso_event_ratio_x")
	b.ReportMetric(diff*100, "meso_energy_diff_pct")
	b.ReportMetric(float64(hyb.MesoParkedPeriods), "meso_parked_periods")
	b.ReportMetric(driftOK, "meso_drift_ok")
}

// BenchmarkCalib calibrates every catalog class the calib scenario
// covers, then pair-runs that scenario's mixed fleet with mechanistic
// and fitted devices, and reports the worst cross-validated fit quality
// plus the fleet-level power and throughput disagreement;
// scripts/bench_calib.sh turns the metrics into BENCH_calib.json and
// gates on the fit and agreement thresholds.
func BenchmarkCalib(b *testing.B) {
	sp := scenario.BuiltIn("calib")
	worstR2, worstMAPE := 1.0, 0.0
	var fitted, mech *serve.Report
	var fitNS float64
	for i := 0; i < b.N; i++ {
		worstR2, worstMAPE = 1.0, 0.0
		t0 := time.Now()
		for _, p := range sp.Fleet.Profiles {
			f, err := calib.FitClass(p, calib.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if f.R2 < worstR2 {
				worstR2 = f.R2
			}
			if f.MAPE > worstMAPE {
				worstMAPE = f.MAPE
			}
		}
		fitNS = float64(time.Since(t0))
		fittedSpec, err := sp.ServeSpec(sp.Runtime.D())
		if err != nil {
			b.Fatal(err)
		}
		mechSpec := fittedSpec
		mechSpec.Fitted = nil
		if mech, err = serve.Run(mechSpec); err != nil {
			b.Fatal(err)
		}
		if fitted, err = serve.Run(fittedSpec); err != nil {
			b.Fatal(err)
		}
	}
	powErr := (fitted.AvgPowerW - mech.AvgPowerW) / mech.AvgPowerW
	if powErr < 0 {
		powErr = -powErr
	}
	tputErr := (fitted.ThroughputMBps - mech.ThroughputMBps) / mech.ThroughputMBps
	if tputErr < 0 {
		tputErr = -tputErr
	}
	b.ReportMetric(worstR2, "calib_worst_r2")
	b.ReportMetric(worstMAPE*100, "calib_worst_mape_pct")
	b.ReportMetric(powErr*100, "calib_fleet_power_diff_pct")
	b.ReportMetric(tputErr*100, "calib_fleet_tput_diff_pct")
	b.ReportMetric(fitNS/1e9, "calib_fit_s")
}

// --- Ablations -----------------------------------------------------------

// capped2MiBQD1 measures the qd1 2MiB random-write p99 latency ratio
// (ps2/ps0) for a modified SSD2 configuration.
func capped2MiBQD1(b *testing.B, mod func(*ssd.Config)) float64 {
	b.Helper()
	lat := func(ps int) time.Duration {
		cfg := catalog.SSD2Config()
		if mod != nil {
			mod(&cfg)
		}
		eng := sim.NewEngine()
		dev, err := ssd.New(cfg, eng, sim.NewRNG(7))
		if err != nil {
			b.Fatal(err)
		}
		if err := dev.SetPowerState(ps); err != nil {
			b.Fatal(err)
		}
		res := workload.Run(eng, dev, workload.Job{
			Op: device.OpWrite, Pattern: workload.Rand, BS: 2 << 20, Depth: 1,
			Runtime: 5 * time.Second, TotalBytes: 2 << 30,
		}, sim.NewRNG(7))
		return res.LatP99
	}
	return float64(lat(2)) / float64(lat(0))
}

// BenchmarkAblationThrottleQuantum shows that the firmware throttle
// granularity — not the energy budget — creates the paper's tail-latency
// spikes: with ideally smooth throttling the p99 inflation collapses.
func BenchmarkAblationThrottleQuantum(b *testing.B) {
	for _, q := range []time.Duration{0, time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond} {
		q := q
		b.Run(q.String(), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				ratio = capped2MiBQD1(b, func(c *ssd.Config) { c.ThrottleQuantum = q })
			}
			b.ReportMetric(ratio, "p99_ratio")
		})
	}
}

// BenchmarkAblationCapBurst varies the regulator's burst horizon: short
// horizons track the cap tightly; long horizons let the device overshoot
// early in the averaging window.
func BenchmarkAblationCapBurst(b *testing.B) {
	for _, burst := range []time.Duration{5 * time.Millisecond, 25 * time.Millisecond, 250 * time.Millisecond, time.Second} {
		burst := burst
		b.Run(burst.String(), func(b *testing.B) {
			var avgW float64
			for i := 0; i < b.N; i++ {
				cfg := catalog.SSD2Config()
				cfg.CapBurst = burst
				eng := sim.NewEngine()
				dev, err := ssd.New(cfg, eng, sim.NewRNG(7))
				if err != nil {
					b.Fatal(err)
				}
				if err := dev.SetPowerState(2); err != nil {
					b.Fatal(err)
				}
				e0, t0 := dev.EnergyJ(), eng.Now()
				workload.Run(eng, dev, workload.Job{
					Op: device.OpWrite, Pattern: workload.Seq, BS: 256 << 10, Depth: 64,
					Runtime: 2 * time.Second, TotalBytes: 1 << 30,
				}, sim.NewRNG(7))
				avgW = (dev.EnergyJ() - e0) / (eng.Now() - t0).Seconds()
			}
			b.ReportMetric(avgW, "avg_W_at_10W_cap")
		})
	}
}

// BenchmarkAblationNCQ quantifies what command queuing buys the HDD on
// random IO — the reason its Fig. 8 line is flat rather than abysmal.
func BenchmarkAblationNCQ(b *testing.B) {
	for _, ncq := range []bool{true, false} {
		name := "ncq"
		if !ncq {
			name = "fifo"
		}
		b.Run(name, func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				cfg := catalog.HDDConfig()
				cfg.DisableNCQ = !ncq
				eng := sim.NewEngine()
				dev, err := hdd.New(cfg, eng, sim.NewRNG(7))
				if err != nil {
					b.Fatal(err)
				}
				res := workload.Run(eng, dev, workload.Job{
					Op: device.OpRead, Pattern: workload.Rand, BS: 64 << 10, Depth: 64,
					Runtime: 5 * time.Second, TotalBytes: 128 << 20,
				}, sim.NewRNG(7))
				mbps = res.BandwidthMBps
			}
			b.ReportMetric(mbps, "MBps")
		})
	}
}

// BenchmarkAblationWriteBuffer varies SSD2's write-buffer size: the
// buffer sets how long a capped device can hide throttling from the
// host before latency surfaces.
func BenchmarkAblationWriteBuffer(b *testing.B) {
	for _, mib := range []int64{16, 64, 256} {
		mib := mib
		b.Run(byteLabel(mib), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				ratio = capped2MiBQD1(b, func(c *ssd.Config) { c.BufferBytes = mib << 20 })
			}
			b.ReportMetric(ratio, "p99_ratio")
		})
	}
}

// BenchmarkAblationMeasurementNoise runs the rig against a known load
// with and without amplifier noise, reporting relative error — the <1%
// claim should not depend on averaging away a broken chain.
func BenchmarkAblationMeasurementNoise(b *testing.B) {
	for _, noisy := range []bool{true, false} {
		name := "noisy"
		if !noisy {
			name = "ideal"
		}
		b.Run(name, func(b *testing.B) {
			var relErr float64
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine()
				cfg := measure.DefaultRigConfig(12)
				if !noisy {
					cfg.AmpNoiseV, cfg.AmpGainErrPct, cfg.AmpOffsetV, cfg.ShuntTolPPM = 0, 0, 0, 0
				}
				rig, err := measure.NewRig(eng, sim.NewRNG(3), constSource(8.19), cfg)
				if err != nil {
					b.Fatal(err)
				}
				rig.Start()
				eng.RunUntil(eng.Now() + 2*time.Second)
				rig.Stop()
				got := rig.Trace().Mean()
				relErr = abs(got-8.19) / 8.19 * 100
			}
			b.ReportMetric(relErr, "rel_err_pct")
		})
	}
}

// --- Substrate micro-benchmarks ------------------------------------------

func BenchmarkEngineEventThroughput(b *testing.B) {
	eng := sim.NewEngine()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			eng.After(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	eng.After(time.Microsecond, tick)
	eng.Run()
}

func BenchmarkSSDRandomRead4K(b *testing.B) {
	eng := sim.NewEngine()
	dev := catalog.NewSSD2(eng, sim.NewRNG(1))
	rng := sim.NewRNG(2)
	done := 0
	b.ResetTimer()
	var issue func()
	issue = func() {
		if done >= b.N {
			return
		}
		off := rng.Int64N(dev.CapacityBytes()/4096) * 4096
		dev.Submit(device.Request{Op: device.OpRead, Offset: off, Size: 4096}, func() {
			done++
			issue()
		})
	}
	for i := 0; i < 64; i++ {
		issue()
	}
	for done < b.N && eng.Step() {
	}
}

func BenchmarkSSDSequentialWrite1M(b *testing.B) {
	eng := sim.NewEngine()
	dev := catalog.NewSSD2(eng, sim.NewRNG(1))
	done := 0
	next := int64(0)
	b.ResetTimer()
	var issue func()
	issue = func() {
		if done >= b.N {
			return
		}
		off := next % (dev.CapacityBytes() - 1<<20)
		next += 1 << 20
		dev.Submit(device.Request{Op: device.OpWrite, Offset: off, Size: 1 << 20}, func() {
			done++
			issue()
		})
	}
	for i := 0; i < 16; i++ {
		issue()
	}
	for done < b.N && eng.Step() {
	}
}

func BenchmarkRigSampleChain(b *testing.B) {
	eng := sim.NewEngine()
	rig, err := measure.NewRig(eng, sim.NewRNG(3), constSource(8), measure.DefaultRigConfig(12))
	if err != nil {
		b.Fatal(err)
	}
	rig.Start()
	b.ResetTimer()
	eng.RunUntil(time.Duration(b.N) * time.Millisecond)
	b.StopTimer()
	rig.Stop()
}

func BenchmarkFrameEncodeDecode(b *testing.B) {
	codes := make([]int32, 16)
	for i := range codes {
		codes[i] = int32(i * 100000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire := measure.EncodeFrame(uint16(i), codes)
		if _, _, err := measure.DecodeFrame(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// --- helpers --------------------------------------------------------------

type constSource float64

func (c constSource) InstantPower() float64 { return float64(c) }

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func byteLabel(mib int64) string {
	return fmt.Sprintf("%dMiB", mib)
}

// BenchmarkAblationHostLink reproduces the paper's testbed caveat ("This
// computer supports PCIe 3, which has limited bandwidth ... read
// bandwidth cannot always be saturated"): on a PCIe 4 host, SSD1's
// sequential reads rise past the PCIe 3 ceiling while write power
// characteristics barely move.
func BenchmarkAblationHostLink(b *testing.B) {
	for _, gen := range []struct {
		name string
		mbps float64
	}{{"pcie3", 3550}, {"pcie4", 7000}} {
		gen := gen
		b.Run(gen.name, func(b *testing.B) {
			var readBW float64
			for i := 0; i < b.N; i++ {
				cfg := catalog.SSD1Config()
				cfg.LinkMBps = gen.mbps
				eng := sim.NewEngine()
				dev, err := ssd.New(cfg, eng, sim.NewRNG(7))
				if err != nil {
					b.Fatal(err)
				}
				res := workload.Run(eng, dev, workload.Job{
					Op: device.OpRead, Pattern: workload.Seq, BS: 1 << 20, Depth: 64,
					Runtime: 2 * time.Second, TotalBytes: 1 << 30,
				}, sim.NewRNG(7))
				readBW = res.BandwidthMBps
			}
			b.ReportMetric(readBW, "seqread_MBps")
		})
	}
}

// BenchmarkScaleServe runs the group-parked hybrid tier at 10⁴, 10⁵,
// and 10⁶ devices under the stepped curtail-and-recover budget (which
// splits every cohort across hull levels, exercising the bucket-shaped
// control scan). Each point reports peak live heap per device,
// allocations per device, wall-clock seconds, and the plan-slot count —
// the evidence that parked work scales with buckets, not lanes.
// scripts/bench_scale.sh turns the series into BENCH_scale.json and
// gates bytes/device at the million-device point. -short keeps only the
// 10⁴ point, sized for CI smoke runs.
func BenchmarkScaleServe(b *testing.B) {
	for _, size := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("n=%d", size), func(b *testing.B) {
			if testing.Short() && size > 10_000 {
				b.Skip("large scale points skipped in -short mode")
			}
			sp := scenario.BuiltIn("meso")
			sp.Fleet.Size = size
			sp.Fleet.RateIOPS = 500
			sp.Fleet.Budget = "" // stepped default: forces a bucket split per step
			sp.Fleet.Meso.GroupMin = 64
			sp.Fleet.Meso.Probes = 2
			spec, err := sp.ServeSpec(2 * time.Second)
			if err != nil {
				b.Fatal(err)
			}
			var rep *serve.Report
			var wallNS float64
			var peakAlloc, allocs uint64
			for i := 0; i < b.N; i++ {
				runtime.GC()
				var m0 runtime.MemStats
				runtime.ReadMemStats(&m0)
				mw := telemetry.WatchMem(20 * time.Millisecond)
				t0 := time.Now()
				if rep, err = serve.Run(spec); err != nil {
					b.Fatal(err)
				}
				wallNS = float64(time.Since(t0))
				peakAlloc, _ = mw.Stop()
				var m1 runtime.MemStats
				runtime.ReadMemStats(&m1)
				allocs = m1.Mallocs - m0.Mallocs
			}
			if rep.MesoGroupLanes == 0 || rep.MesoGroupBuckets == 0 {
				b.Fatalf("nothing virtualized: lanes=%d buckets=%d", rep.MesoGroupLanes, rep.MesoGroupBuckets)
			}
			if !rep.CapOK || !rep.TrackOK || !rep.MesoDriftOK {
				b.Fatalf("gates failed at n=%d: cap=%v track=%v drift=%v (worst %.4f)",
					size, rep.CapOK, rep.TrackOK, rep.MesoDriftOK, rep.MesoWorstDriftFrac)
			}
			b.ReportMetric(float64(peakAlloc)/float64(size), "scale_bytes_per_device")
			b.ReportMetric(float64(allocs)/float64(size), "scale_allocs_per_device")
			b.ReportMetric(wallNS/1e9, "scale_wall_s")
			b.ReportMetric(float64(rep.MesoGroupScans), "scale_plan_slots")
			b.ReportMetric(float64(rep.MesoGroupBuckets), "scale_buckets")
			b.ReportMetric(float64(rep.MesoGroupLanes), "scale_virtual_lanes")
		})
	}
}

// BenchmarkChurnServe runs the lane-lifecycle tier at fleet scale: a
// group-parked 10⁵-device fleet under a diurnal rate schedule scales
// out ~10% of its groups for the peak (with a real warm-up cost) and
// drains them back after it. Each point reports wall-clock seconds,
// peak live heap and allocations per device, and the recovery
// latencies — the evidence that membership churn rides the bucket
// accounting instead of re-materializing the fleet.
// scripts/bench_churn.sh turns the series into BENCH_churn.json and
// gates wall and allocation cost at the 10⁵ point. -short keeps only
// the 10⁴ point, sized for CI smoke runs.
func BenchmarkChurnServe(b *testing.B) {
	for _, size := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("n=%d", size), func(b *testing.B) {
			if testing.Short() && size > 10_000 {
				b.Skip("large churn points skipped in -short mode")
			}
			sp := scenario.BuiltIn("churn")
			sp.Fleet.Size = size
			sp.Fleet.Meso.GroupMin = 64
			sp.Fleet.Meso.Probes = 2
			sp.Fleet.Arrivals = []scenario.RateStepSpec{
				{At: 0, RateIOPS: 500},
				{At: scenario.Duration(1500 * time.Millisecond), RateIOPS: 250},
				{At: scenario.Duration(3 * time.Second), RateIOPS: 500},
			}
			sp.Fleet.Churn = []scenario.ChurnEventSpec{
				{At: scenario.Duration(time.Second), Profile: "SSD2", Add: size / 10, Warmup: scenario.Duration(200 * time.Millisecond)},
				{At: scenario.Duration(2500 * time.Millisecond), Profile: "SSD2", Remove: size / 10},
			}
			spec, err := sp.ServeSpec(sp.Runtime.D())
			if err != nil {
				b.Fatal(err)
			}
			var rep *serve.Report
			var wallNS float64
			var peakAlloc, allocs uint64
			for i := 0; i < b.N; i++ {
				runtime.GC()
				var m0 runtime.MemStats
				runtime.ReadMemStats(&m0)
				mw := telemetry.WatchMem(20 * time.Millisecond)
				t0 := time.Now()
				if rep, err = serve.Run(spec); err != nil {
					b.Fatal(err)
				}
				wallNS = float64(time.Since(t0))
				peakAlloc, _ = mw.Stop()
				var m1 runtime.MemStats
				runtime.ReadMemStats(&m1)
				allocs = m1.Mallocs - m0.Mallocs
			}
			if rep.ChurnAdds != size/10 || rep.ChurnRemoves != size/10 {
				b.Fatalf("churn counts: adds %d removes %d, want %d each", rep.ChurnAdds, rep.ChurnRemoves, size/10)
			}
			if !rep.CapOK || !rep.TrackOK || !rep.MesoDriftOK {
				b.Fatalf("gates failed at n=%d: cap=%v track=%v drift=%v (worst %.4f)",
					size, rep.CapOK, rep.TrackOK, rep.MesoDriftOK, rep.MesoWorstDriftFrac)
			}
			if rep.DrainMax >= spec.Horizon {
				b.Fatalf("drain recovery %v never completed inside %v", rep.DrainMax, spec.Horizon)
			}
			b.ReportMetric(float64(peakAlloc)/float64(size), "churn_bytes_per_device")
			b.ReportMetric(float64(allocs)/float64(size), "churn_allocs_per_device")
			b.ReportMetric(wallNS/1e9, "churn_wall_s")
			b.ReportMetric(float64(rep.ChurnAdds), "churn_adds")
			b.ReportMetric(float64(rep.ChurnRemoves), "churn_removes")
			b.ReportMetric(float64(rep.WarmupP50)/1e6, "churn_warmup_p50_ms")
			b.ReportMetric(float64(rep.DrainMax)/1e6, "churn_drain_max_ms")
			b.ReportMetric(float64(rep.MesoGroupLanes), "churn_virtual_lanes")
		})
	}
}
