#!/usr/bin/env sh
# Run the canonical three-axis campaign (budget schedule x fleet size x
# fault seed) and emit its merged report as JSON.
#
#   scripts/bench_campaign.sh [out.json]
#
# The campaign runs twice — serially (-parallel 1) and on the default
# worker pool — and the two output trees are diffed before anything is
# published: the merged report is only a valid artifact if it is
# byte-identical at any worker count. CI uploads one BENCH_campaign.json
# per run, so per-point throughput/latency/power regressions show up as
# a step in the series. The campaign's stdout table is kept as the log.
set -eu

out=${1:-BENCH_campaign.json}
log=${out%.json}.log

cd "$(dirname "$0")/.."

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

go run ./cmd/powerfleet campaign -scenario scenarios/campaign.json \
	-parallel 1 -out "$dir/serial" | tee "$log"
go run ./cmd/powerfleet campaign -scenario scenarios/campaign.json \
	-out "$dir/parallel" >> "$log"

# Determinism gate: serial and parallel runs must agree byte for byte,
# merged report and every per-point report alike.
diff -r "$dir/serial" "$dir/parallel"

cp "$dir/parallel/BENCH_campaign.json" "$out"

echo "wrote $out ($(wc -c < "$out") bytes)"
