#!/usr/bin/env sh
# Run the kernel microbenchmarks — event scheduling, chain dispatch, rig
# sampling, and the fleet serving macro-benchmark — and emit their
# metrics as JSON.
#
#   scripts/bench_kernel.sh [out.json]
#
# Each `go test -bench` result line becomes one JSON object holding
# ns/op, B/op, allocs/op, and every b.ReportMetric unit. The output is
# the perf trajectory artifact: CI uploads one BENCH_kernel.json per
# run, so regressions in the event kernel show up as a step in the
# series. The raw benchmark log is kept next to it for debugging.
set -eu

out=${1:-BENCH_kernel.json}
log=${out%.json}.log

cd "$(dirname "$0")/.."

{
	go test -run '^$' -bench '^(BenchmarkEngineSchedule|BenchmarkEngineChain)$' \
		-benchtime 2000000x -benchmem -count 1 ./internal/sim
	go test -run '^$' -bench '^BenchmarkRigSample$' \
		-benchtime 200000x -benchmem -count 1 ./internal/measure
	go test -run '^$' -bench '^BenchmarkEngineEventThroughput$' \
		-benchtime 500000x -benchmem -count 1 .
	# One iteration of BenchmarkFleetServe is a full fleet simulation;
	# -benchtime 1x keeps CI cost bounded (same convention as bench_fleet.sh).
	go test -run '^$' -bench '^BenchmarkFleetServe$' \
		-benchtime 1x -benchmem -count 1 .
} | tee "$log"

awk -v out="$out" '
/^Benchmark/ {
    if (found) printf ",\n" > out
    else printf "[\n" > out
    printf "  {\n    \"benchmark\": \"%s\",\n    \"iterations\": %s", $1, $2 > out
    # Fields from 3 on are value/unit pairs, e.g. `123 ns/op 0 allocs/op`.
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        printf ",\n    \"%s\": %s", unit, $i > out
    }
    printf "\n  }" > out
    found++
}
END {
    if (!found) {
        print "bench_kernel.sh: no benchmark results in output" > "/dev/stderr"
        exit 1
    }
    printf "\n]\n" > out
}
' "$log"

echo "wrote $out:"
cat "$out"
