#!/usr/bin/env sh
# Run the mesoscale-aggregation benchmark and emit its metrics as JSON.
#
#   scripts/bench_meso.sh [out.json]
#
# Runs BenchmarkMesoServe — one iteration pair-runs a 10k-device steady
# fleet with the mesoscale tier off and then on — and converts the
# `go test -bench` metric pairs into a flat JSON object written to
# BENCH_meso.json (or the given path). The raw benchmark log is kept
# next to it for debugging.
#
# Gate: the deterministic dispatched-event ratio (meso_event_ratio_x)
# must show at least a 2x reduction. Wall-clock speedup (meso_speedup_x)
# is reported but not gated — it is host-dependent by nature.
set -eu

out=${1:-BENCH_meso.json}
log=${out%.json}.log

cd "$(dirname "$0")/.."

go test -run '^$' -bench '^BenchmarkMesoServe$' -benchtime 1x -count 1 -timeout 30m . | tee "$log"

awk -v out="$out" '
/^BenchmarkMesoServe/ {
    printf "{\n  \"benchmark\": \"%s\",\n  \"iterations\": %s", $1, $2 > out
    # Fields from 3 on are value/unit pairs, e.g. `123456 ns/op 12.5 meso_speedup_x`.
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        printf ",\n  \"%s\": %s", unit, $i > out
        if (unit == "meso_event_ratio_x") ratio = $i
        if (unit == "meso_drift_ok") drift = $i
    }
    printf "\n}\n" > out
    found = 1
}
END {
    if (!found) {
        print "bench_meso.sh: no BenchmarkMesoServe result in output" > "/dev/stderr"
        exit 1
    }
    if (ratio + 0 < 2) {
        printf "bench_meso.sh: event reduction %.2fx under the 2x gate\n", ratio > "/dev/stderr"
        exit 1
    }
    if (drift + 0 != 1) {
        print "bench_meso.sh: sentinel drift probe failed" > "/dev/stderr"
        exit 1
    }
}
' "$log"

echo "wrote $out:"
cat "$out"
