#!/usr/bin/env sh
# Run the million-device scale benchmark and emit its series as JSON.
#
#   scripts/bench_scale.sh [out.json]
#
# Runs BenchmarkScaleServe — the group-parked hybrid tier at 10^4,
# 10^5, and 10^6 devices — and converts the per-size metric sets into
# BENCH_scale.json (or the given path). The raw benchmark log is kept
# next to it for debugging.
#
# Gates (all on deterministic or size-normalized quantities):
#   - peak live heap at the 10^6 point must stay under 10 KiB/device
#     (the million-device fleet fits in single-digit GB);
#   - allocations per device at the 10^6 point must stay under 1
#     (materialization cost is per cohort/probe, not per member);
#   - plan slots scanned must not grow with fleet size (the control
#     scan is O(#buckets), not O(#lanes)).
set -eu

out=${1:-BENCH_scale.json}
log=${out%.json}.log

cd "$(dirname "$0")/.."

go test -run '^$' -bench '^BenchmarkScaleServe$' -benchtime 1x -count 1 -timeout 30m . | tee "$log"

awk -v out="$out" '
/^BenchmarkScaleServe\// {
    split($1, parts, "=")
    n = parts[2]
    sub(/-[0-9]+$/, "", n) # strip the GOMAXPROCS suffix
    if (points++) printf ",\n" > out
    else printf "{\n  \"benchmark\": \"BenchmarkScaleServe\",\n  \"points\": [\n" > out
    printf "    {\"devices\": %s", n > out
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        sub(/^scale_/, "", unit)
        if (unit == "ns_per_op") continue
        printf ", \"%s\": %s", unit, $i > out
        if (unit == "bytes_per_device") bpd[n] = $i
        if (unit == "allocs_per_device") apd[n] = $i
        if (unit == "plan_slots") slots[n] = $i
    }
    printf "}" > out
}
END {
    if (!points) {
        print "bench_scale.sh: no BenchmarkScaleServe results in output" > "/dev/stderr"
        exit 1
    }
    printf "\n  ]\n}\n" > out
    if (!(1000000 in bpd)) {
        print "bench_scale.sh: missing the 10^6-device point" > "/dev/stderr"
        exit 1
    }
    if (bpd[1000000] + 0 >= 10240) {
        printf "bench_scale.sh: %.0f bytes/device at 10^6 devices over the 10 KiB gate\n", bpd[1000000] > "/dev/stderr"
        exit 1
    }
    if (apd[1000000] + 0 >= 1) {
        printf "bench_scale.sh: %.3f allocs/device at 10^6 devices over the regression gate of 1\n", apd[1000000] > "/dev/stderr"
        exit 1
    }
    if ((10000 in slots) && slots[1000000] + 0 > 2 * slots[10000]) {
        printf "bench_scale.sh: plan slots grew with fleet size (%d at 10^4 vs %d at 10^6) — scan is not bucket-shaped\n", slots[10000], slots[1000000] > "/dev/stderr"
        exit 1
    }
}
' "$log"

echo "wrote $out:"
cat "$out"
