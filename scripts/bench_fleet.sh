#!/usr/bin/env sh
# Run the fleet serving benchmark and emit its custom metrics as JSON.
#
#   scripts/bench_fleet.sh [out.json]
#
# Runs BenchmarkFleetServe (one iteration is a full fleet simulation, so
# -benchtime 1x keeps CI cost bounded) and converts the `go test -bench`
# metric pairs — ns/op plus every b.ReportMetric unit — into a flat JSON
# object written to BENCH_fleet.json (or the given path). The raw
# benchmark log is kept next to it for debugging.
set -eu

out=${1:-BENCH_fleet.json}
log=${out%.json}.log

cd "$(dirname "$0")/.."

go test -run '^$' -bench '^BenchmarkFleetServe$' -benchtime 1x -count 1 . | tee "$log"

awk -v out="$out" '
/^BenchmarkFleetServe/ {
    printf "{\n  \"benchmark\": \"%s\",\n  \"iterations\": %s", $1, $2 > out
    # Fields from 3 on are value/unit pairs, e.g. `123456 ns/op 98.7 fleet_MBps`.
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        printf ",\n  \"%s\": %s", unit, $i > out
    }
    printf "\n}\n" > out
    found = 1
}
END {
    if (!found) {
        print "bench_fleet.sh: no BenchmarkFleetServe result in output" > "/dev/stderr"
        exit 1
    }
}
' "$log"

echo "wrote $out:"
cat "$out"
