#!/usr/bin/env sh
# Run the lane-lifecycle churn benchmark and emit its series as JSON.
#
#   scripts/bench_churn.sh [out.json]
#
# Runs BenchmarkChurnServe — a group-parked fleet at 10^4 and 10^5
# devices under a diurnal rate schedule, scaling ~10% of its groups
# out for the peak and draining them back — and converts the per-size
# metric sets into BENCH_churn.json (or the given path). The raw
# benchmark log is kept next to it for debugging.
#
# Gates (all on deterministic or size-normalized quantities):
#   - peak live heap at the 10^5 point must stay under 10 KiB/device
#     (churn rides the bucket accounting, not re-materialization);
#   - allocations per device at the 10^5 point must stay under 1
#     (admitting a group costs per cohort, not per member);
#   - every churned group must both join and leave (adds == removes)
#     and the drain-back must complete inside the run.
set -eu

out=${1:-BENCH_churn.json}
log=${out%.json}.log

cd "$(dirname "$0")/.."

go test -run '^$' -bench '^BenchmarkChurnServe$' -benchtime 1x -count 1 -timeout 30m . | tee "$log"

awk -v out="$out" '
/^BenchmarkChurnServe\// {
    split($1, parts, "=")
    n = parts[2]
    sub(/-[0-9]+$/, "", n) # strip the GOMAXPROCS suffix
    if (points++) printf ",\n" > out
    else printf "{\n  \"benchmark\": \"BenchmarkChurnServe\",\n  \"points\": [\n" > out
    printf "    {\"devices\": %s", n > out
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        sub(/^churn_/, "", unit)
        if (unit == "ns_per_op") continue
        printf ", \"%s\": %s", unit, $i > out
        if (unit == "bytes_per_device") bpd[n] = $i
        if (unit == "allocs_per_device") apd[n] = $i
        if (unit == "adds") adds[n] = $i
        if (unit == "removes") removes[n] = $i
        if (unit == "drain_max_ms") drain[n] = $i
    }
    printf "}" > out
}
END {
    if (!points) {
        print "bench_churn.sh: no BenchmarkChurnServe results in output" > "/dev/stderr"
        exit 1
    }
    printf "\n  ]\n}\n" > out
    if (!(100000 in bpd)) {
        print "bench_churn.sh: missing the 10^5-device point" > "/dev/stderr"
        exit 1
    }
    if (bpd[100000] + 0 >= 10240) {
        printf "bench_churn.sh: %.0f bytes/device at 10^5 devices over the 10 KiB gate\n", bpd[100000] > "/dev/stderr"
        exit 1
    }
    if (apd[100000] + 0 >= 1) {
        printf "bench_churn.sh: %.3f allocs/device at 10^5 devices over the regression gate of 1\n", apd[100000] > "/dev/stderr"
        exit 1
    }
    for (n in adds) {
        if (adds[n] + 0 <= 0 || adds[n] != removes[n]) {
            printf "bench_churn.sh: churn did not round-trip at n=%s (%d adds vs %d removes)\n", n, adds[n], removes[n] > "/dev/stderr"
            exit 1
        }
        if (drain[n] + 0 < 0) {
            printf "bench_churn.sh: negative drain recovery at n=%s\n", n > "/dev/stderr"
            exit 1
        }
    }
}
' "$log"

echo "wrote $out:"
cat "$out"
