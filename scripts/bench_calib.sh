#!/usr/bin/env sh
# Run the learned-device-model calibration benchmark and emit its
# metrics as JSON.
#
#   scripts/bench_calib.sh [out.json]
#
# Runs BenchmarkCalib — one iteration calibrates every catalog class in
# the calib scenario against its mechanistic simulator, then pair-runs
# the scenario's mixed fleet with mechanistic and fitted devices — and
# converts the `go test -bench` metric pairs into a flat JSON object
# written to BENCH_calib.json (or the given path). The raw benchmark
# log is kept next to it for debugging.
#
# Gates (all deterministic): the worst cross-validated fit must reach
# calib_worst_r2 >= 0.98 and calib_worst_mape_pct <= 5, and the fitted
# fleet must agree with the mechanistic one within
# calib_fleet_power_diff_pct <= 5. Fit wall-clock (calib_fit_s) is
# reported but not gated — it is host-dependent by nature.
set -eu

out=${1:-BENCH_calib.json}
log=${out%.json}.log

cd "$(dirname "$0")/.."

go test -run '^$' -bench '^BenchmarkCalib$' -benchtime 1x -count 1 -timeout 30m . | tee "$log"

awk -v out="$out" '
/^BenchmarkCalib/ {
    printf "{\n  \"benchmark\": \"%s\",\n  \"iterations\": %s", $1, $2 > out
    # Fields from 3 on are value/unit pairs, e.g. `123456 ns/op 0.99 calib_worst_r2`.
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        printf ",\n  \"%s\": %s", unit, $i > out
        if (unit == "calib_worst_r2") r2 = $i
        if (unit == "calib_worst_mape_pct") mape = $i
        if (unit == "calib_fleet_power_diff_pct") pow = $i
    }
    printf "\n}\n" > out
    found = 1
}
END {
    if (!found) {
        print "bench_calib.sh: no BenchmarkCalib result in output" > "/dev/stderr"
        exit 1
    }
    if (r2 + 0 < 0.98) {
        printf "bench_calib.sh: worst CV R2 %.4f under the 0.98 gate\n", r2 > "/dev/stderr"
        exit 1
    }
    if (mape + 0 > 5) {
        printf "bench_calib.sh: worst CV MAPE %.2f%% over the 5%% gate\n", mape > "/dev/stderr"
        exit 1
    }
    if (pow + 0 > 5) {
        printf "bench_calib.sh: fleet power disagreement %.2f%% over the 5%% gate\n", pow > "/dev/stderr"
        exit 1
    }
}
' "$log"

echo "wrote $out:"
cat "$out"
