module wattio

go 1.22
