// Command nvmectl is the nvme-cli-shaped control tool for the simulated
// devices: it lists the catalog, dumps Identify Controller power-state
// descriptor tables, and gets/sets the Power Management feature —
// optionally demonstrating a power state's effect with a short
// measured workload.
//
// Usage:
//
//	nvmectl list
//	nvmectl id-ctrl SSD2
//	nvmectl get-feature SSD2
//	nvmectl set-feature SSD2 2
//	nvmectl set-feature SSD2 2 -demo
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"wattio/internal/catalog"
	"wattio/internal/device"
	"wattio/internal/measure"
	"wattio/internal/nvme"
	"wattio/internal/sim"
	"wattio/internal/sweep"
	"wattio/internal/workload"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "list":
		list()
	case "id-ctrl":
		need(args, 2)
		idCtrl(ctrl(args[1]))
	case "get-feature":
		need(args, 2)
		getFeature(ctrl(args[1]))
	case "set-feature":
		need(args, 3)
		ps, err := strconv.Atoi(args[2])
		if err != nil {
			fatal("bad power state %q", args[2])
		}
		demo := len(args) > 3 && args[3] == "-demo"
		setFeature(args[1], ps, demo)
	case "apst":
		need(args, 2)
		apst(args[1:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  nvmectl list                       list simulated devices
  nvmectl id-ctrl <dev>              identify controller (power state table)
  nvmectl get-feature <dev>          read Power Management (FID 0x02)
  nvmectl set-feature <dev> <ps>     write Power Management (FID 0x02)
  nvmectl set-feature <dev> <ps> -demo   ...and measure a short workload
  nvmectl apst <dev> [on|off]        read or write Autonomous Power State Transition (FID 0x0C)`)
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
		os.Exit(2)
	}
}

func newDev(name string) (device.Device, *sim.Engine, *sim.RNG) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(42)
	dev, ok := catalog.ByName(name, eng, rng)
	if !ok {
		fatal("unknown device %q; try nvmectl list", name)
	}
	return dev, eng, rng
}

func ctrl(name string) *nvme.Controller {
	dev, _, _ := newDev(name)
	c, err := nvme.NewController(dev)
	if err != nil {
		fatal("%v", err)
	}
	return c
}

func list() {
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	fmt.Printf("%-6s %-9s %-22s %-12s %s\n", "Node", "Protocol", "Model", "Capacity", "PowerStates")
	for _, name := range catalog.Names() {
		dev, _ := catalog.ByName(name, eng, rng)
		fmt.Printf("%-6s %-9s %-22s %-12s %d\n",
			name, dev.Protocol(), dev.Model(),
			fmt.Sprintf("%.0fGB", float64(dev.CapacityBytes())/1e9), len(dev.PowerStates()))
	}
}

func idCtrl(c *nvme.Controller) {
	id := c.Identify()
	fmt.Printf("mn      : %s\n", id.ModelNumber)
	fmt.Printf("npss    : %d\n", id.NPSS)
	for i, psd := range id.PSD {
		fmt.Printf("ps %4d : mp:%.2fW enlat:%dus exlat:%dus\n",
			i, float64(psd.MaxPowerCentiW)/100, psd.EntryLatUs, psd.ExitLatUs)
	}
}

func getFeature(c *nvme.Controller) {
	ps, err := c.GetPowerState()
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("get-feature:0x02 (Power Management), Current value:0x%08x (PS:%d)\n", ps, ps)
}

func setFeature(name string, ps int, demo bool) {
	dev, eng, rng := newDev(name)
	c, err := nvme.NewController(dev)
	if err != nil {
		fatal("%v", err)
	}
	if !demo {
		if err := c.SetPowerState(ps); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("set-feature:0x02 (Power Management), value:0x%08x (PS:%d)\n", ps, ps)
		return
	}
	// Demo: measure the same workload in ps0 and the requested state.
	run := func() (float64, float64) {
		rig, err := measure.NewRig(eng, rng.Stream(fmt.Sprint("rig", eng.Now())), dev, measure.DefaultRigConfig(sweep.RailFor(dev)))
		if err != nil {
			fatal("%v", err)
		}
		rig.Start()
		res := workload.Run(eng, dev, workload.Job{
			Op: device.OpWrite, Pattern: workload.Seq, BS: 256 << 10, Depth: 64,
			Runtime: 5 * time.Second, TotalBytes: 1 << 30,
		}, rng.Stream(fmt.Sprint("wl", eng.Now())))
		rig.Stop()
		return res.BandwidthMBps, rig.Trace().Mean()
	}
	bw0, pw0 := run()
	if err := c.SetPowerState(ps); err != nil {
		fatal("%v", err)
	}
	bw1, pw1 := run()
	fmt.Printf("set-feature:0x02 (Power Management), value:0x%08x (PS:%d)\n", ps, ps)
	fmt.Printf("demo (seq write 256KiB qd64, 1 GiB):\n")
	fmt.Printf("  ps0 : %7.1f MB/s at %5.2f W\n", bw0, pw0)
	fmt.Printf("  ps%d : %7.1f MB/s at %5.2f W  (%.0f%% throughput, %.0f%% power)\n",
		ps, bw1, pw1, 100*bw1/bw0, 100*pw1/pw0)
}

func apst(args []string) {
	c := ctrl(args[0])
	if len(args) == 1 {
		on, err := c.GetAPST()
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("get-feature:0x0c (Autonomous Power State Transition), Current value: %v\n", on)
		return
	}
	var enable bool
	switch args[1] {
	case "on":
		enable = true
	case "off":
	default:
		fatal("apst takes on or off, not %q", args[1])
	}
	if err := c.SetAPST(enable); err != nil {
		fatal("%v", err)
	}
	fmt.Printf("set-feature:0x0c (Autonomous Power State Transition), value: %v\n", enable)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nvmectl: "+format+"\n", args...)
	os.Exit(1)
}
