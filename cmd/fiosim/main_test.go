package main

import (
	"testing"
	"time"
)

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"4k", 4096, false},
		{"256K", 256 << 10, false},
		{"2m", 2 << 20, false},
		{"1M", 1 << 20, false},
		{"4g", 4 << 30, false},
		{"1G", 1 << 30, false},
		{"512", 512, false},
		{"", 0, true},
		{"abc", 0, true},
		{"-4k", 0, true},
		{"0", 0, true},
		{"k", 0, true},
	}
	for _, tc := range cases {
		got, err := parseSize(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("parseSize(%q) = %d, want error", tc.in, got)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("parseSize(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
	}
}

func TestFmtBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{512, "512B"},
		{1 << 20, "1.0MiB"},
		{1536 << 10, "1.5MiB"},
		{4 << 30, "4.0GiB"},
	}
	for _, tc := range cases {
		if got := fmtBytes(tc.in); got != tc.want {
			t.Errorf("fmtBytes(%d) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestUs(t *testing.T) {
	if got := us(1500 * time.Nanosecond); got != 1.5 {
		t.Errorf("us = %v, want 1.5", got)
	}
}
