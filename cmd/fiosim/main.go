// Command fiosim is the fio-shaped front end to the simulated testbed:
// it runs one workload against one calibrated device model and reports
// throughput, IOPS, latency percentiles, and — unlike fio — the
// device's power, measured through the simulated shunt/ADC rig.
//
// Usage mirrors the fio options the paper sweeps:
//
//	fiosim -device SSD2 -rw randwrite -bs 256k -iodepth 64 -runtime 60s -size 4g
//	fiosim -device SSD2 -rw write -bs 2m -iodepth 64 -ps 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"wattio/internal/catalog"
	"wattio/internal/device"
	"wattio/internal/measure"
	"wattio/internal/sim"
	"wattio/internal/sweep"
	"wattio/internal/workload"
)

func main() {
	var (
		devName = flag.String("device", "SSD2", "device model: "+strings.Join(catalog.Names(), ", "))
		rw      = flag.String("rw", "randwrite", "read, write, randread, or randwrite")
		bs      = flag.String("bs", "256k", "block size (e.g. 4k, 256k, 2m)")
		depth   = flag.Int("iodepth", 64, "IO queue depth")
		runtime = flag.Duration("runtime", time.Minute, "maximum issue window")
		size    = flag.String("size", "4g", "maximum bytes issued")
		ps      = flag.Int("ps", 0, "NVMe power state to select before the run")
		seed    = flag.Uint64("seed", 42, "random seed")
	)
	flag.Parse()

	job := workload.Job{Depth: *depth, Runtime: *runtime}
	switch *rw {
	case "read":
		job.Op, job.Pattern = device.OpRead, workload.Seq
	case "write":
		job.Op, job.Pattern = device.OpWrite, workload.Seq
	case "randread":
		job.Op, job.Pattern = device.OpRead, workload.Rand
	case "randwrite":
		job.Op, job.Pattern = device.OpWrite, workload.Rand
	default:
		fatal("unknown -rw %q", *rw)
	}
	var err error
	if job.BS, err = parseSize(*bs); err != nil {
		fatal("bad -bs: %v", err)
	}
	if job.TotalBytes, err = parseSize(*size); err != nil {
		fatal("bad -size: %v", err)
	}

	eng := sim.NewEngine()
	rng := sim.NewRNG(*seed)
	dev, ok := catalog.ByName(*devName, eng, rng)
	if !ok {
		fatal("unknown device %q (have %s)", *devName, strings.Join(catalog.Names(), ", "))
	}
	if *ps != 0 {
		if err := dev.SetPowerState(*ps); err != nil {
			fatal("set power state: %v", err)
		}
	}
	rig, err := measure.NewRig(eng, rng, dev, measure.DefaultRigConfig(sweep.RailFor(dev)))
	if err != nil {
		fatal("%v", err)
	}
	rig.Start()
	res := workload.Run(eng, dev, job, rng)
	rig.Stop()

	fmt.Printf("%s: (g=0): rw=%s, bs=%s, iodepth=%d, ps=%d\n", *devName, *rw, *bs, *depth, *ps)
	fmt.Printf("  %s model: %s (%s)\n", dev.Protocol(), dev.Model(), *devName)
	fmt.Printf("  io=%s, bw=%.1fMB/s, iops=%.0f, runt=%v\n",
		fmtBytes(res.Bytes), res.BandwidthMBps, res.IOPS, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("  lat (usec): avg=%.1f, p50=%.1f, p99=%.1f, max=%.1f\n",
		us(res.LatAvg), us(res.LatP50), us(res.LatP99), us(res.LatMax))
	sum := rig.Trace().Summary()
	fmt.Printf("  power (W): avg=%.2f, min=%.2f, p99=%.2f, max=%.2f over %d samples at 1kHz\n",
		sum.Mean, sum.Min, sum.P99, sum.Max, sum.N)
	fmt.Printf("  energy: %.1f J (%.2f nJ/B)\n", dev.EnergyJ(), dev.EnergyJ()/float64(res.Bytes)*1e9)
}

func us(d time.Duration) float64 { return float64(d) / 1e3 }

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// parseSize accepts fio-style sizes: 4k, 256K, 2m, 4g, or plain bytes.
func parseSize(s string) (int64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty size")
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, fmt.Errorf("size must be positive")
	}
	return n * mult, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fiosim: "+format+"\n", args...)
	os.Exit(1)
}
