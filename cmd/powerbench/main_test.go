package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI invokes the CLI seam and returns (exit code, stdout, stderr).
func runCLI(args ...string) (int, string, string) {
	var out, errw strings.Builder
	code := run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func writeSpec(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// tinySpec is a fleet scenario small enough for the unit suite.
const tinySpec = `{
  "version": 2,
  "name": "tiny",
  "experiment": "fleet",
  "runtime": "250ms",
  "seed": 42,
  "fault_seed": 1,
  "fleet": {
    "size": 8,
    "replicas": 2,
    "rate_iops": 4000
  }
}
`

func TestScenarioRuns(t *testing.T) {
	path := writeSpec(t, "tiny.json", tinySpec)
	code, out, errw := runCLI("-scenario", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	if !strings.Contains(out, "fleet: 8 devices") {
		t.Fatalf("scenario fleet size not applied:\n%s", out)
	}
}

// TestScenarioFlagOverride pins the layering rule: an explicitly-set
// flag beats the scenario, and re-stating the scenario's own value is a
// no-op (the -out files are byte-identical).
func TestScenarioFlagOverride(t *testing.T) {
	path := writeSpec(t, "tiny.json", tinySpec)
	dir := t.TempDir()

	outA := filepath.Join(dir, "a.txt")
	if code, _, errw := runCLI("-scenario", path, "-out", outA); code != 0 {
		t.Fatalf("base run failed: %s", errw)
	}
	outB := filepath.Join(dir, "b.txt")
	if code, _, errw := runCLI("-scenario", path, "-fleet", "8", "-out", outB); code != 0 {
		t.Fatalf("no-op override run failed: %s", errw)
	}
	a, _ := os.ReadFile(outA)
	b, _ := os.ReadFile(outB)
	if string(a) != string(b) {
		t.Fatalf("re-stating the spec's value changed the report:\n--- spec only\n%s\n--- spec + -fleet 8\n%s", a, b)
	}

	code, out, errw := runCLI("-scenario", path, "-fleet", "4")
	if code != 0 {
		t.Fatalf("override run failed: %s", errw)
	}
	if !strings.Contains(out, "fleet: 4 devices") {
		t.Fatalf("-fleet 4 did not override the spec's size 8:\n%s", out)
	}
}

func TestScenarioUnknownFieldRejected(t *testing.T) {
	path := writeSpec(t, "typo.json", strings.Replace(tinySpec, `"size"`, `"sizee"`, 1))
	code, _, errw := runCLI("-scenario", path)
	if code != 2 {
		t.Fatalf("unknown field accepted: exit %d, stderr: %s", code, errw)
	}
	if !strings.Contains(errw, "sizee") || !strings.Contains(errw, path) {
		t.Fatalf("error does not name the unknown field and file: %s", errw)
	}
}

func TestScenarioValidationNamesPath(t *testing.T) {
	path := writeSpec(t, "bad.json", strings.Replace(tinySpec, `"rate_iops": 4000`, `"rate_iops": 4000, "budget": "0s:junk"`, 1))
	code, _, errw := runCLI("-scenario", path)
	if code != 2 {
		t.Fatalf("bad budget accepted: exit %d", code)
	}
	if !strings.Contains(errw, "fleet.budget") {
		t.Fatalf("error does not name the offending path: %s", errw)
	}
}

// TestScenarioGridRejected: powerbench runs one configuration, so a
// campaign spec must be redirected to `powerfleet campaign`, not run as
// whichever point powerbench would silently pick.
func TestScenarioGridRejected(t *testing.T) {
	path := writeSpec(t, "grid.json", strings.Replace(tinySpec,
		`"fleet": {`, `"grid": {"fleet_sizes": [8, 16]},
  "fleet": {`, 1))
	code, _, errw := runCLI("-scenario", path)
	if code != 2 {
		t.Fatalf("campaign spec accepted: exit %d, stderr: %s", code, errw)
	}
	if !strings.Contains(errw, "powerfleet campaign") {
		t.Fatalf("error does not point at the campaign runner: %s", errw)
	}
}

// TestScenarioV1Hint: a stale version-1 spec names the migration path.
func TestScenarioV1Hint(t *testing.T) {
	path := writeSpec(t, "v1.json", strings.Replace(tinySpec, `"version": 2`, `"version": 1`, 1))
	code, _, errw := runCLI("-scenario", path)
	if code != 2 || !strings.Contains(errw, "-migrate") {
		t.Fatalf("v1 spec: exit %d, stderr: %s", code, errw)
	}
}

func TestScenarioMissingFile(t *testing.T) {
	code, _, errw := runCLI("-scenario", filepath.Join(t.TempDir(), "nope.json"))
	if code != 2 || !strings.Contains(errw, "nope.json") {
		t.Fatalf("missing spec file: exit %d, stderr: %s", code, errw)
	}
}

func TestUnknownExperiment(t *testing.T) {
	code, _, errw := runCLI("-exp", "nope")
	if code != 2 || !strings.Contains(errw, `"nope"`) {
		t.Fatalf("unknown experiment: exit %d, stderr: %s", code, errw)
	}
}

// TestExpFlagOverridesScenarioExperiment: -exp layered on a spec picks
// the experiment while the spec still supplies seeds and bounds.
func TestExpFlagOverridesScenarioExperiment(t *testing.T) {
	path := writeSpec(t, "tiny.json", tinySpec)
	code, out, errw := runCLI("-scenario", path, "-exp", "table1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	if !strings.Contains(out, "Table 1") {
		t.Fatalf("-exp table1 not honored over spec experiment:\n%s", out)
	}
	if strings.Contains(out, "Fleet serving") {
		t.Fatalf("spec experiment ran despite -exp override:\n%s", out)
	}
}

func TestList(t *testing.T) {
	code, out, _ := runCLI("-list")
	if code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	for _, id := range []string{"fleet", "chaos", "fig10", "table1"} {
		if !strings.Contains(out, id) {
			t.Fatalf("-list missing %q:\n%s", id, out)
		}
	}
}
