// Command powerbench regenerates the paper's tables and figures on the
// simulated testbed. Each experiment prints the same rows or series the
// paper reports, at either the published scale (-scale paper: one
// minute or 4 GiB per point) or a fast scale for smoke runs.
//
// Usage:
//
//	powerbench -list
//	powerbench -exp fig4
//	powerbench -exp all -scale paper -out results.txt
//	powerbench -exp fig2 -trace trace.json -metrics
//	powerbench -exp chaos -faultseed 7 -metrics
//	powerbench -exp fleet -fleet 1000 -budget "0s:14.6pd,1s:10.5pd" -fleetfaults 0.1
//	powerbench -exp fleet -cpuprofile cpu.prof -memprofile mem.prof -benchout timings.json
//
// Profiling (-cpuprofile, -memprofile) and wall-clock timing (-benchout)
// outputs are host-dependent by nature and are written to their own
// files after the run; a -out results file remains bit-identical across
// runs regardless of which of them are enabled.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"wattio/internal/experiments"
	"wattio/internal/telemetry"
)

func main() {
	var (
		expID   = flag.String("exp", "all", "experiment id (see -list) or \"all\"")
		scale   = flag.String("scale", "quick", "experiment scale: quick or paper")
		list    = flag.Bool("list", false, "list experiments and exit")
		out     = flag.String("out", "", "also write results to this file")
		csvDir  = flag.String("csvdir", "", "export figure data as CSV files into this directory")
		seed    = flag.Uint64("seed", 42, "root random seed")
		fseed   = flag.Uint64("faultseed", 1, "fault-injection random seed (chaos experiment)")
		traceF  = flag.String("trace", "", "write a Chrome trace-event JSON (chrome://tracing) of the run to this file")
		metrics = flag.Bool("metrics", false, "print a telemetry metrics snapshot after the run")

		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile (after the run) to this file")
		benchOut   = flag.String("benchout", "", "write per-experiment wall-clock timings as JSON to this file")

		fleetSize   = flag.Int("fleet", 0, "fleet experiment: device count (0 = default)")
		fleetRepl   = flag.Int("replicas", 0, "fleet experiment: replicas per mirror group (0 = default)")
		fleetRate   = flag.Float64("rate", 0, "fleet experiment: arrival rate in IOPS per active device (0 = default)")
		fleetBudget = flag.String("budget", "", "fleet experiment: budget schedule, e.g. \"0s:640,1s:448\" (\"pd\" suffix = per device)")
		fleetFaults = flag.Float64("fleetfaults", 0, "fleet experiment: fraction of devices given an injected fault window")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-9s %s\n", e.ID, e.Title)
		}
		return
	}

	var s experiments.Scale
	switch *scale {
	case "quick":
		s = experiments.Quick
	case "paper":
		s = experiments.Paper
	default:
		fmt.Fprintf(os.Stderr, "powerbench: unknown scale %q (quick or paper)\n", *scale)
		os.Exit(2)
	}
	s.Seed = *seed
	s.FaultSeed = *fseed
	s.Fleet = experiments.FleetOptions{
		Size:      *fleetSize,
		Replicas:  *fleetRepl,
		RateIOPS:  *fleetRate,
		Budget:    *fleetBudget,
		FaultFrac: *fleetFaults,
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "powerbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	// Telemetry rides on process-wide defaults: experiments build their
	// engines internally, and every engine picks the defaults up at
	// construction.
	var reg *telemetry.Registry
	var tracer *telemetry.Tracer
	var traceFile *os.File
	if *metrics {
		reg = telemetry.NewRegistry()
		telemetry.SetDefault(reg)
	}
	if *traceF != "" {
		// Create the output up front so a bad path fails before the run,
		// not after minutes of simulation.
		f, err := os.Create(*traceF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "powerbench: %v\n", err)
			os.Exit(1)
		}
		traceFile = f
		tracer = telemetry.NewTracer(telemetry.DefaultTraceEventCap)
		telemetry.SetDefaultTracer(tracer)
	}

	// Profiling and timing outputs are kept strictly apart from -out:
	// the -out file must stay bit-identical across runs (determinism CI
	// cmps it), while profiles and wall-clock timings are inherently
	// host-dependent. The CPU profile covers the experiment loop and is
	// finalized after it; the heap profile is snapshotted after the run.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "powerbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "powerbench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "powerbench: writing cpu profile: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stdout, "wrote %s\n", *cpuProfile)
		}()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err == nil {
				runtime.GC() // settle allocations so the heap profile reflects live data
				err = pprof.WriteHeapProfile(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "powerbench: writing heap profile: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stdout, "wrote %s\n", path)
		}()
	}
	type benchEntry struct {
		ID     string  `json:"id"`
		WallMS float64 `json:"wall_ms"`
	}
	var benchLog []benchEntry
	if *benchOut != "" {
		path := *benchOut
		defer func() {
			data, err := json.MarshalIndent(benchLog, "", "  ")
			if err == nil {
				err = os.WriteFile(path, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "powerbench: writing bench timings: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stdout, "wrote %s\n", path)
		}()
	}

	var todo []experiments.Experiment
	if *expID == "all" {
		todo = experiments.All()
	} else {
		e, ok := experiments.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "powerbench: unknown experiment %q; try -list\n", *expID)
			os.Exit(2)
		}
		todo = []experiments.Experiment{e}
	}

	for _, e := range todo {
		start := time.Now()
		if *csvDir != "" {
			files, err := experiments.ExportCSV(e.ID, s, *csvDir)
			if err != nil {
				// Not every experiment has tabular data (table1,
				// headline, standby print directly).
				fmt.Fprintf(w, "[%s: %v]\n", e.ID, err)
				continue
			}
			for _, f := range files {
				fmt.Fprintf(w, "wrote %s\n", f)
			}
			fmt.Fprintf(os.Stdout, "[%s exported in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
			continue
		}
		if err := e.Run(s, w); err != nil {
			fmt.Fprintf(os.Stderr, "powerbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		// Wall-clock timing is the one nondeterministic line; it goes to
		// the terminal only so a -out file stays bit-identical across
		// runs (the determinism CI jobs cmp those files directly).
		elapsed := time.Since(start)
		if *benchOut != "" {
			benchLog = append(benchLog, benchEntry{ID: e.ID, WallMS: float64(elapsed.Microseconds()) / 1000})
		}
		fmt.Fprintf(os.Stdout, "[%s done in %v]\n", e.ID, elapsed.Round(time.Millisecond))
	}

	if tracer != nil {
		err := tracer.WriteJSON(traceFile)
		if cerr := traceFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "powerbench: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "wrote %s (%d events", *traceF, tracer.Len())
		if d := tracer.Dropped(); d > 0 {
			fmt.Fprintf(w, ", %d dropped at cap", d)
		}
		fmt.Fprintln(w, ")")
	}
	if reg != nil {
		fmt.Fprintln(w, "\n# telemetry snapshot")
		if err := reg.Snapshot().WriteText(w); err != nil {
			fmt.Fprintf(os.Stderr, "powerbench: writing metrics: %v\n", err)
			os.Exit(1)
		}
	}
}
