// Command powerbench regenerates the paper's tables and figures on the
// simulated testbed. Each experiment prints the same rows or series the
// paper reports, at either the published scale (-scale paper: one
// minute or 4 GiB per point) or a fast scale for smoke runs.
//
// Every run is driven by a declarative scenario spec (internal/scenario):
// -scenario loads one from a JSON file, otherwise the experiment's
// built-in default spec is used. The classic flags (-exp, -scale, -seed,
// -fleet, -budget, ...) are overrides layered on top of the spec — an
// explicitly-set flag beats the spec, an unset flag leaves it alone.
//
// Usage:
//
//	powerbench -list
//	powerbench -exp fig4
//	powerbench -exp all -scale paper -out results.txt
//	powerbench -scenario scenarios/paper-default.json
//	powerbench -scenario scenarios/stepped-budget.json -fleet 128
//	powerbench -exp fig2 -trace trace.json -metrics
//	powerbench -exp chaos -faultseed 7 -metrics
//	powerbench -exp fleet -fleet 1000 -budget "0s:14.6pd,1s:10.5pd" -fleetfaults 0.1
//	powerbench -exp fleet -cpuprofile cpu.prof -memprofile mem.prof -benchout timings.json
//
// Profiling (-cpuprofile, -memprofile) and wall-clock timing (-benchout)
// outputs are host-dependent by nature and are written to their own
// files after the run; a -out results file remains bit-identical across
// runs regardless of which of them are enabled.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"wattio/internal/experiments"
	"wattio/internal/scenario"
	"wattio/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI behind a testable seam: it parses argv, layers
// explicitly-set flags over the scenario spec, runs the selected
// experiments, and returns the process exit code (0 ok, 1 run failure,
// 2 usage/spec error).
func run(argv []string, stdout, errw io.Writer) int {
	fs := flag.NewFlagSet("powerbench", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		expID    = fs.String("exp", "all", "experiment id (see -list) or \"all\"")
		scenFile = fs.String("scenario", "", "load a scenario spec file (JSON); other flags become overrides on top of it")
		scale    = fs.String("scale", "quick", "experiment scale: quick or paper")
		list     = fs.Bool("list", false, "list experiments and exit")
		out      = fs.String("out", "", "also write results to this file")
		csvDir   = fs.String("csvdir", "", "export figure data as CSV files into this directory")
		seed     = fs.Uint64("seed", 42, "root random seed")
		fseed    = fs.Uint64("faultseed", 1, "fault-injection random seed (chaos experiment)")
		traceF   = fs.String("trace", "", "write a Chrome trace-event JSON (chrome://tracing) of the run to this file")
		metrics  = fs.Bool("metrics", false, "print a telemetry metrics snapshot after the run")

		cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = fs.String("memprofile", "", "write a pprof heap profile (after the run) to this file")
		benchOut   = fs.String("benchout", "", "write per-experiment wall-clock timings as JSON to this file")

		fleetSize   = fs.Int("fleet", 0, "fleet experiment: device count (0 = scenario/default)")
		fleetRepl   = fs.Int("replicas", 0, "fleet experiment: replicas per mirror group (0 = scenario/default)")
		fleetRate   = fs.Float64("rate", 0, "fleet experiment: arrival rate in IOPS per active device (0 = scenario/default)")
		fleetBudget = fs.String("budget", "", "fleet experiment: budget schedule, e.g. \"0s:640,1s:448\" (\"pd\" suffix = per device)")
		fleetFaults = fs.Float64("fleetfaults", 0, "fleet experiment: fraction of devices given an injected fault window")
		fleetMeso   = fs.Bool("meso", false, "fleet experiment: serve steady lanes through the mesoscale analytic tier")
		mesoDwell   = fs.Int("mesodwell", 0, "meso tier: steady control periods before a lane dehydrates (0 = default)")
		mesoDrift   = fs.Float64("mesodrift", 0, "meso tier: sentinel drift tolerance fraction (0 = default)")
		mesoGroup   = fs.Int("mesogroup", 0, "meso tier: group-park cohorts of at least this many devices behind probe lanes (0 = off; implies -meso)")
		mesoProbes  = fs.Int("mesoprobes", 0, "meso tier: resident probe lanes per group-parked cohort (0 = default)")
		memWatch    = fs.Bool("mem", false, "print peak live-heap bytes and object count after the run (terminal only; host-dependent)")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-9s %s\n", e.ID, e.Title)
		}
		return 0
	}

	// Flags are overrides, the spec is the base layer: only flags the
	// user explicitly set on the command line beat the scenario.
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	var sp *scenario.Spec
	if *scenFile != "" {
		var err error
		sp, err = scenario.LoadFile(*scenFile)
		if err != nil {
			fmt.Fprintf(errw, "powerbench: %v\n", err)
			return 2
		}
	} else {
		sp = scenario.Default(*expID)
	}
	if set["exp"] {
		sp.Experiment = *expID
	}
	if set["scale"] {
		sp.Scale = *scale
	}
	if set["seed"] {
		sp.Seed = *seed
	}
	if set["faultseed"] {
		sp.FaultSeed = *fseed
	}
	if err := sp.Validate(); err != nil {
		fmt.Fprintf(errw, "powerbench: %v\n", err)
		return 2
	}
	// A gridded spec describes a whole point family, and powerbench runs
	// exactly one configuration; the campaign executor owns grids.
	if sp.Grid != nil {
		fmt.Fprintf(errw, "powerbench: %s is a campaign spec (grid stanza); run it with `powerfleet campaign -scenario %s`\n",
			sp.Name, *scenFile)
		return 2
	}

	s := experiments.ScaleFor(sp)
	// The fleet flags ride along as a second override layer; zero values
	// mean "take the scenario's (or the experiment's default) value".
	s.Fleet = experiments.FleetOptions{
		Size:         *fleetSize,
		Replicas:     *fleetRepl,
		RateIOPS:     *fleetRate,
		Budget:       *fleetBudget,
		FaultFrac:    *fleetFaults,
		Meso:         *fleetMeso,
		MesoDwell:    *mesoDwell,
		MesoDrift:    *mesoDrift,
		MesoGroupMin: *mesoGroup,
		MesoProbes:   *mesoProbes,
	}

	var todo []experiments.Experiment
	if sp.Experiment == "all" {
		todo = experiments.All()
	} else {
		e, ok := experiments.ByID(sp.Experiment)
		if !ok {
			fmt.Fprintf(errw, "powerbench: unknown experiment %q; try -list\n", sp.Experiment)
			return 2
		}
		todo = []experiments.Experiment{e}
	}

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(errw, "powerbench: %v\n", err)
			return 1
		}
		defer f.Close()
		w = io.MultiWriter(stdout, f)
	}

	// Telemetry rides on process-wide defaults: experiments build their
	// engines internally, and every engine picks the defaults up at
	// construction.
	var reg *telemetry.Registry
	var tracer *telemetry.Tracer
	var traceFile *os.File
	if *metrics {
		reg = telemetry.NewRegistry()
		telemetry.SetDefault(reg)
	}
	if *traceF != "" {
		// Create the output up front so a bad path fails before the run,
		// not after minutes of simulation.
		f, err := os.Create(*traceF)
		if err != nil {
			fmt.Fprintf(errw, "powerbench: %v\n", err)
			return 1
		}
		traceFile = f
		tracer = telemetry.NewTracer(telemetry.DefaultTraceEventCap)
		telemetry.SetDefaultTracer(tracer)
	}

	// Profiling and timing outputs are kept strictly apart from -out:
	// the -out file must stay bit-identical across runs (determinism CI
	// cmps it), while profiles and wall-clock timings are inherently
	// host-dependent. The CPU profile covers the experiment loop and is
	// finalized after it; the heap profile is snapshotted after the run.
	var cpuFile *os.File
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(errw, "powerbench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintf(errw, "powerbench: %v\n", err)
			return 1
		}
		cpuFile = f
	}
	type benchEntry struct {
		ID     string  `json:"id"`
		WallMS float64 `json:"wall_ms"`
	}
	var benchLog []benchEntry

	// Peak-heap sampling is terminal-only for the same reason as the
	// wall-clock lines: the readings are host-dependent, and the -out
	// file must stay bit-identical across runs.
	var mw *telemetry.MemWatch
	if *memWatch {
		mw = telemetry.WatchMem(0)
	}

	for _, e := range todo {
		start := time.Now()
		if *csvDir != "" {
			files, err := experiments.ExportCSV(e.ID, s, *csvDir)
			if err != nil {
				// Not every experiment has tabular data (table1,
				// headline, standby print directly).
				fmt.Fprintf(w, "[%s: %v]\n", e.ID, err)
				continue
			}
			for _, f := range files {
				fmt.Fprintf(w, "wrote %s\n", f)
			}
			fmt.Fprintf(stdout, "[%s exported in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
			continue
		}
		if err := e.Run(s, w); err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			fmt.Fprintf(errw, "powerbench: %s: %v\n", e.ID, err)
			return 1
		}
		// Wall-clock timing is the one nondeterministic line; it goes to
		// the terminal only so a -out file stays bit-identical across
		// runs (the determinism CI jobs cmp those files directly).
		elapsed := time.Since(start)
		if *benchOut != "" {
			benchLog = append(benchLog, benchEntry{ID: e.ID, WallMS: float64(elapsed.Microseconds()) / 1000})
		}
		fmt.Fprintf(stdout, "[%s done in %v]\n", e.ID, elapsed.Round(time.Millisecond))
	}

	if mw != nil {
		alloc, objs := mw.Stop()
		fmt.Fprintf(stdout, "[mem: peak heap %.1f MiB, %d live objects]\n", float64(alloc)/(1<<20), objs)
	}

	if tracer != nil {
		err := tracer.WriteJSON(traceFile)
		if cerr := traceFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(errw, "powerbench: writing trace: %v\n", err)
			return 1
		}
		fmt.Fprintf(w, "wrote %s (%d events", *traceF, tracer.Len())
		if d := tracer.Dropped(); d > 0 {
			fmt.Fprintf(w, ", %d dropped at cap", d)
		}
		fmt.Fprintln(w, ")")
	}
	if reg != nil {
		fmt.Fprintln(w, "\n# telemetry snapshot")
		if err := reg.Snapshot().WriteText(w); err != nil {
			fmt.Fprintf(errw, "powerbench: writing metrics: %v\n", err)
			return 1
		}
	}
	if *benchOut != "" {
		data, err := json.MarshalIndent(benchLog, "", "  ")
		if err == nil {
			err = os.WriteFile(*benchOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(errw, "powerbench: writing bench timings: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *benchOut)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err == nil {
			runtime.GC() // settle allocations so the heap profile reflects live data
			err = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(errw, "powerbench: writing heap profile: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *memProfile)
	}
	if cpuFile != nil {
		pprof.StopCPUProfile()
		if err := cpuFile.Close(); err != nil {
			fmt.Fprintf(errw, "powerbench: writing cpu profile: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *cpuProfile)
	}
	return 0
}
