// Command powerfleet is the planning front end a power-adaptive storage
// system would run in production: build power-throughput models from
// measurement sweeps (once, offline), save them as JSON, and answer
// budget/SLO/curtailment queries against them at decision time.
//
// Usage:
//
//	powerfleet build -device SSD2 -o ssd2.json
//	powerfleet info ssd2.json
//	powerfleet plan -budget 20 ssd1.json ssd2.json
//	powerfleet curtail -reduce 0.2 -chunk 256k -depth 64 ssd1.json
//	powerfleet slo -budget 12 -p99 5ms ssd2.json
//	powerfleet scenario scenarios/*.json
//	powerfleet scenario -w scenarios/fleet.json
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"wattio/internal/catalog"
	"wattio/internal/core"
	"wattio/internal/device"
	"wattio/internal/scenario"
	"wattio/internal/sweep"
	"wattio/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches a powerfleet invocation; subcommands print results to
// out and return errors instead of exiting, so tests can drive the CLI
// end to end.
func run(argv []string, out, errw io.Writer) int {
	if len(argv) < 1 {
		usage(errw)
		return 2
	}
	cmds := map[string]func([]string, io.Writer) error{
		"build":    build,
		"info":     info,
		"plan":     plan,
		"curtail":  curtail,
		"slo":      slo,
		"scenario": scenarioCmd,
	}
	cmd, ok := cmds[argv[0]]
	if !ok {
		usage(errw)
		return 2
	}
	if err := cmd(argv[1:], out); err != nil {
		if err == flag.ErrHelp {
			return 2
		}
		fmt.Fprintf(errw, "powerfleet: %v\n", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  powerfleet build -device <name> -o <file> [-rw randwrite] [-runtime 10s] [-bytes 2147483648] [-seed 42]
  powerfleet info <model.json>...
  powerfleet plan -budget <watts> <model.json>...
  powerfleet curtail -reduce <frac> -chunk <bytes> -depth <n> <model.json>
  powerfleet slo [-budget W] [-p99 dur] [-avg dur] [-minmbps N] <model.json>
  powerfleet scenario [-w] <spec.json>...`)
}

// newFlagSet builds a subcommand flag set that reports parse errors as
// returned errors rather than exiting the process.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	return fs
}

// loadModels reads and validates model files. A malformed, truncated,
// or version-skewed file fails with the path attached — it must never
// pass as an empty model and produce a silent zero-value plan.
func loadModels(paths []string) ([]*core.Model, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("need at least one model file")
	}
	out := make([]*core.Model, 0, len(paths))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		m, err := core.Load(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		out = append(out, m)
	}
	return out, nil
}

func build(args []string, out io.Writer) error {
	fs := newFlagSet("build")
	dev := fs.String("device", "SSD2", "device model: "+strings.Join(catalog.Names(), ", "))
	outPath := fs.String("o", "", "output file (default <device>.json)")
	rw := fs.String("rw", "randwrite", "workload for the grid: randwrite, randread, write, read")
	runtime := fs.Duration("runtime", 10*time.Second, "per-point runtime bound")
	bytes := fs.Int64("bytes", 2<<30, "per-point byte bound")
	seed := fs.Uint64("seed", 42, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	op, pat := device.OpWrite, workload.Rand
	switch *rw {
	case "randwrite":
	case "randread":
		op = device.OpRead
	case "write":
		pat = workload.Seq
	case "read":
		op, pat = device.OpRead, workload.Seq
	default:
		return fmt.Errorf("unknown -rw %q", *rw)
	}
	fmt.Fprintf(os.Stderr, "sweeping %s (%s grid, %v/%d bytes per point)...\n", *dev, *rw, *runtime, *bytes)
	m, err := sweep.BuildModel(*dev, op, pat, *seed, *runtime, *bytes)
	if err != nil {
		return err
	}
	path := *outPath
	if path == "" {
		path = strings.ToLower(*dev) + ".json"
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s: %d operating points, power %.2f-%.2f W, max %.0f MB/s\n",
		path, len(m.Samples()), m.MinPowerW(), m.MaxPowerW(), m.MaxThroughputMBps())
	return nil
}

func info(args []string, out io.Writer) error {
	models, err := loadModels(args)
	if err != nil {
		return err
	}
	for _, m := range models {
		fmt.Fprintf(out, "%s: %d points\n", m.Device(), len(m.Samples()))
		fmt.Fprintf(out, "  power %.2f-%.2f W (dynamic range %.1f%% of max)\n",
			m.MinPowerW(), m.MaxPowerW(), 100*m.DynamicRangeFrac())
		fmt.Fprintf(out, "  throughput ≤ %.0f MB/s\n", m.MaxThroughputMBps())
		fmt.Fprintf(out, "  Pareto frontier:\n")
		for _, s := range m.ParetoFrontier() {
			fmt.Fprintf(out, "    %6.2f W  %8.0f MB/s  %v\n", s.PowerW, s.ThroughputMBps, s.Config)
		}
	}
	return nil
}

func plan(args []string, out io.Writer) error {
	fs := newFlagSet("plan")
	budget := fs.Float64("budget", 0, "fleet power budget in watts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *budget <= 0 {
		return fmt.Errorf("plan needs -budget")
	}
	models, err := loadModels(fs.Args())
	if err != nil {
		return err
	}
	fleet, err := core.NewFleet(models...)
	if err != nil {
		return err
	}
	a, ok := fleet.BestUnderPower(*budget)
	if !ok {
		return fmt.Errorf("no assignment fits %.2f W (fleet minimum is above it)", *budget)
	}
	fmt.Fprintf(out, "budget %.2f W → plan %.2f W, %.0f MB/s\n", *budget, a.TotalPowerW, a.TotalMBps)
	for _, m := range fleet.Models() {
		s := a.Configs[m.Device()]
		fmt.Fprintf(out, "  %-6s ps%d, chunk %d KiB, qd %d  (%.2f W, %.0f MB/s)\n",
			m.Device(), s.PowerState, s.ChunkBytes/1024, s.Depth, s.PowerW, s.ThroughputMBps)
	}
	return nil
}

func curtail(args []string, out io.Writer) error {
	fs := newFlagSet("curtail")
	reduce := fs.Float64("reduce", 0.2, "power reduction fraction (0,1)")
	chunk := fs.Int64("chunk", 256<<10, "current chunk size in bytes")
	depth := fs.Int("depth", 64, "current queue depth")
	ps := fs.Int("ps", 0, "current power state")
	if err := fs.Parse(args); err != nil {
		return err
	}
	models, err := loadModels(fs.Args())
	if err != nil {
		return err
	}
	if len(models) != 1 {
		return fmt.Errorf("curtail takes exactly one model")
	}
	m := models[0]
	var from core.Sample
	found := false
	for _, s := range m.Samples() {
		if s.PowerState == *ps && s.ChunkBytes == *chunk && s.Depth == *depth {
			from, found = s, true
			break
		}
	}
	if !found {
		return fmt.Errorf("no operating point ps%d/%dB/qd%d in the model", *ps, *chunk, *depth)
	}
	planned, err := m.Curtail(from, *reduce)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "from %v: %.2f W, %.0f MB/s\n", planned.From.Config, planned.From.PowerW, planned.From.ThroughputMBps)
	fmt.Fprintf(out, "to   %v: %.2f W, %.0f MB/s\n", planned.To.Config, planned.To.PowerW, planned.To.ThroughputMBps)
	fmt.Fprintf(out, "sheds %.2f W (%.0f%%); curtail %.0f MB/s of best-effort load (keep %.0f%% throughput)\n",
		planned.PowerSavedW, 100*planned.PowerReduction, planned.CurtailMBps, 100*planned.ThroughputKept)
	return nil
}

// scenarioCmd validates scenario spec files — strict parse, semantic
// checks, and the canonical-encoding contract that lets specs serve as
// golden inputs. -w rewrites non-canonical (but valid) files in place;
// without it, drifted files are an error so CI can gate on them.
func scenarioCmd(args []string, out io.Writer) error {
	fs := newFlagSet("scenario")
	write := fs.Bool("w", false, "rewrite valid but non-canonical spec files in place")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		return fmt.Errorf("need at least one scenario file")
	}
	var stale []string
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		sp, err := scenario.Parse(bytes.NewReader(raw))
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		canon, err := sp.Canonical()
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		if bytes.Equal(raw, canon) {
			fmt.Fprintf(out, "%s: ok (%s, experiment %s)\n", p, sp.Name, sp.Experiment)
			continue
		}
		if *write {
			if err := os.WriteFile(p, canon, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "%s: rewrote in canonical form\n", p)
			continue
		}
		stale = append(stale, p)
	}
	if len(stale) > 0 {
		return fmt.Errorf("valid but not canonical (rerun with scenario -w to rewrite): %s", strings.Join(stale, ", "))
	}
	return nil
}

func slo(args []string, out io.Writer) error {
	fs := newFlagSet("slo")
	budget := fs.Float64("budget", 0, "power budget in watts (0 = unconstrained)")
	p99 := fs.Duration("p99", 0, "maximum p99 latency")
	avg := fs.Duration("avg", 0, "maximum average latency")
	minMBps := fs.Float64("minmbps", 0, "minimum throughput")
	if err := fs.Parse(args); err != nil {
		return err
	}
	models, err := loadModels(fs.Args())
	if err != nil {
		return err
	}
	if len(models) != 1 {
		return fmt.Errorf("slo takes exactly one model")
	}
	m := models[0]
	obj := core.SLO{MaxAvgLat: *avg, MaxP99Lat: *p99, MinMBps: *minMBps}
	fmt.Fprintf(out, "SLO: %v\n", obj)
	if *budget > 0 {
		if s, ok := m.BestUnderPowerSLO(*budget, obj); ok {
			fmt.Fprintf(out, "best under %.2f W: %v → %.2f W, %.0f MB/s (p99 %v)\n",
				*budget, s.Config, s.PowerW, s.ThroughputMBps, s.P99Lat)
		} else {
			fmt.Fprintf(out, "no operating point fits %.2f W under this SLO\n", *budget)
		}
		return nil
	}
	if s, ok := m.MinPowerSLO(obj); ok {
		fmt.Fprintf(out, "lowest power meeting SLO: %v → %.2f W, %.0f MB/s (p99 %v)\n",
			s.Config, s.PowerW, s.ThroughputMBps, s.P99Lat)
	} else {
		fmt.Fprintln(out, "no operating point meets this SLO")
	}
	return nil
}
