// Command powerfleet is the planning front end a power-adaptive storage
// system would run in production: build power-throughput models from
// measurement sweeps (once, offline), save them as JSON, and answer
// budget/SLO/curtailment queries against them at decision time.
//
// Usage:
//
//	powerfleet build -device SSD2 -o ssd2.json
//	powerfleet info ssd2.json
//	powerfleet plan -budget 20 ssd1.json ssd2.json
//	powerfleet curtail -reduce 0.2 -chunk 256k -depth 64 ssd1.json
//	powerfleet slo -budget 12 -p99 5ms ssd2.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"wattio/internal/catalog"
	"wattio/internal/core"
	"wattio/internal/device"
	"wattio/internal/sweep"
	"wattio/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "build":
		build(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "plan":
		plan(os.Args[2:])
	case "curtail":
		curtail(os.Args[2:])
	case "slo":
		slo(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  powerfleet build -device <name> -o <file> [-rw randwrite] [-runtime 10s] [-bytes 2147483648] [-seed 42]
  powerfleet info <model.json>...
  powerfleet plan -budget <watts> <model.json>...
  powerfleet curtail -reduce <frac> -chunk <bytes> -depth <n> <model.json>
  powerfleet slo [-budget W] [-p99 dur] [-avg dur] [-minmbps N] <model.json>`)
}

func loadModels(paths []string) []*core.Model {
	if len(paths) == 0 {
		fatal("need at least one model file")
	}
	out := make([]*core.Model, 0, len(paths))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			fatal("%v", err)
		}
		m, err := core.Load(f)
		f.Close()
		if err != nil {
			fatal("%s: %v", p, err)
		}
		out = append(out, m)
	}
	return out
}

func build(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	dev := fs.String("device", "SSD2", "device model: "+strings.Join(catalog.Names(), ", "))
	out := fs.String("o", "", "output file (default <device>.json)")
	rw := fs.String("rw", "randwrite", "workload for the grid: randwrite, randread, write, read")
	runtime := fs.Duration("runtime", 10*time.Second, "per-point runtime bound")
	bytes := fs.Int64("bytes", 2<<30, "per-point byte bound")
	seed := fs.Uint64("seed", 42, "random seed")
	fs.Parse(args)

	op, pat := device.OpWrite, workload.Rand
	switch *rw {
	case "randwrite":
	case "randread":
		op = device.OpRead
	case "write":
		pat = workload.Seq
	case "read":
		op, pat = device.OpRead, workload.Seq
	default:
		fatal("unknown -rw %q", *rw)
	}
	fmt.Fprintf(os.Stderr, "sweeping %s (%s grid, %v/%d bytes per point)...\n", *dev, *rw, *runtime, *bytes)
	m, err := sweep.BuildModel(*dev, op, pat, *seed, *runtime, *bytes)
	if err != nil {
		fatal("%v", err)
	}
	path := *out
	if path == "" {
		path = strings.ToLower(*dev) + ".json"
	}
	f, err := os.Create(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		fatal("%v", err)
	}
	fmt.Printf("wrote %s: %d operating points, power %.2f-%.2f W, max %.0f MB/s\n",
		path, len(m.Samples()), m.MinPowerW(), m.MaxPowerW(), m.MaxThroughputMBps())
}

func info(args []string) {
	for _, m := range loadModels(args) {
		fmt.Printf("%s: %d points\n", m.Device(), len(m.Samples()))
		fmt.Printf("  power %.2f-%.2f W (dynamic range %.1f%% of max)\n",
			m.MinPowerW(), m.MaxPowerW(), 100*m.DynamicRangeFrac())
		fmt.Printf("  throughput ≤ %.0f MB/s\n", m.MaxThroughputMBps())
		fmt.Printf("  Pareto frontier:\n")
		for _, s := range m.ParetoFrontier() {
			fmt.Printf("    %6.2f W  %8.0f MB/s  %v\n", s.PowerW, s.ThroughputMBps, s.Config)
		}
	}
}

func plan(args []string) {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	budget := fs.Float64("budget", 0, "fleet power budget in watts")
	fs.Parse(args)
	if *budget <= 0 {
		fatal("plan needs -budget")
	}
	fleet, err := core.NewFleet(loadModels(fs.Args())...)
	if err != nil {
		fatal("%v", err)
	}
	a, ok := fleet.BestUnderPower(*budget)
	if !ok {
		fatal("no assignment fits %.2f W (fleet minimum is above it)", *budget)
	}
	fmt.Printf("budget %.2f W → plan %.2f W, %.0f MB/s\n", *budget, a.TotalPowerW, a.TotalMBps)
	for _, m := range fleet.Models() {
		s := a.Configs[m.Device()]
		fmt.Printf("  %-6s ps%d, chunk %d KiB, qd %d  (%.2f W, %.0f MB/s)\n",
			m.Device(), s.PowerState, s.ChunkBytes/1024, s.Depth, s.PowerW, s.ThroughputMBps)
	}
}

func curtail(args []string) {
	fs := flag.NewFlagSet("curtail", flag.ExitOnError)
	reduce := fs.Float64("reduce", 0.2, "power reduction fraction (0,1)")
	chunk := fs.Int64("chunk", 256<<10, "current chunk size in bytes")
	depth := fs.Int("depth", 64, "current queue depth")
	ps := fs.Int("ps", 0, "current power state")
	fs.Parse(args)
	models := loadModels(fs.Args())
	if len(models) != 1 {
		fatal("curtail takes exactly one model")
	}
	m := models[0]
	var from core.Sample
	found := false
	for _, s := range m.Samples() {
		if s.PowerState == *ps && s.ChunkBytes == *chunk && s.Depth == *depth {
			from, found = s, true
			break
		}
	}
	if !found {
		fatal("no operating point ps%d/%dB/qd%d in the model", *ps, *chunk, *depth)
	}
	planned, err := m.Curtail(from, *reduce)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("from %v: %.2f W, %.0f MB/s\n", planned.From.Config, planned.From.PowerW, planned.From.ThroughputMBps)
	fmt.Printf("to   %v: %.2f W, %.0f MB/s\n", planned.To.Config, planned.To.PowerW, planned.To.ThroughputMBps)
	fmt.Printf("sheds %.2f W (%.0f%%); curtail %.0f MB/s of best-effort load (keep %.0f%% throughput)\n",
		planned.PowerSavedW, 100*planned.PowerReduction, planned.CurtailMBps, 100*planned.ThroughputKept)
}

func slo(args []string) {
	fs := flag.NewFlagSet("slo", flag.ExitOnError)
	budget := fs.Float64("budget", 0, "power budget in watts (0 = unconstrained)")
	p99 := fs.Duration("p99", 0, "maximum p99 latency")
	avg := fs.Duration("avg", 0, "maximum average latency")
	minMBps := fs.Float64("minmbps", 0, "minimum throughput")
	fs.Parse(args)
	models := loadModels(fs.Args())
	if len(models) != 1 {
		fatal("slo takes exactly one model")
	}
	m := models[0]
	obj := core.SLO{MaxAvgLat: *avg, MaxP99Lat: *p99, MinMBps: *minMBps}
	fmt.Printf("SLO: %v\n", obj)
	if *budget > 0 {
		if s, ok := m.BestUnderPowerSLO(*budget, obj); ok {
			fmt.Printf("best under %.2f W: %v → %.2f W, %.0f MB/s (p99 %v)\n",
				*budget, s.Config, s.PowerW, s.ThroughputMBps, s.P99Lat)
		} else {
			fmt.Printf("no operating point fits %.2f W under this SLO\n", *budget)
		}
		return
	}
	if s, ok := m.MinPowerSLO(obj); ok {
		fmt.Printf("lowest power meeting SLO: %v → %.2f W, %.0f MB/s (p99 %v)\n",
			s.Config, s.PowerW, s.ThroughputMBps, s.P99Lat)
	} else {
		fmt.Println("no operating point meets this SLO")
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "powerfleet: "+format+"\n", args...)
	os.Exit(1)
}
