// Command powerfleet is the planning front end a power-adaptive storage
// system would run in production: build power-throughput models from
// measurement sweeps (once, offline), save them as JSON, and answer
// budget/SLO/curtailment queries against them at decision time.
//
// Usage:
//
//	powerfleet build -device SSD2 -o ssd2.json
//	powerfleet calibrate -class SSD2 -o ssd2-fitted.json
//	powerfleet info ssd2.json
//	powerfleet plan -budget 20 ssd1.json ssd2.json
//	powerfleet curtail -reduce 0.2 -chunk 256k -depth 64 ssd1.json
//	powerfleet slo -budget 12 -p99 5ms ssd2.json
//	powerfleet scenario scenarios/*.json
//	powerfleet scenario -w scenarios/fleet.json
//	powerfleet scenario -migrate old-spec.json
//	powerfleet campaign -scenario scenarios/campaign.json -parallel 4 -out results/
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"wattio/internal/calib"
	"wattio/internal/campaign"
	"wattio/internal/catalog"
	"wattio/internal/core"
	"wattio/internal/device"
	"wattio/internal/scenario"
	"wattio/internal/sweep"
	"wattio/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches a powerfleet invocation; subcommands print results to
// out and return errors instead of exiting, so tests can drive the CLI
// end to end.
func run(argv []string, out, errw io.Writer) int {
	if len(argv) < 1 {
		usage(errw)
		return 2
	}
	cmds := map[string]func([]string, io.Writer) error{
		"build":     build,
		"calibrate": calibrate,
		"info":      info,
		"plan":      plan,
		"curtail":   curtail,
		"slo":       slo,
		"scenario":  scenarioCmd,
		"campaign":  campaignCmd,
	}
	cmd, ok := cmds[argv[0]]
	if !ok {
		usage(errw)
		return 2
	}
	if err := cmd(argv[1:], out); err != nil {
		if err == flag.ErrHelp {
			return 2
		}
		fmt.Fprintf(errw, "powerfleet: %v\n", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  powerfleet build -device <name> -o <file> [-rw randwrite] [-runtime 10s] [-bytes 2147483648] [-seed 42]
  powerfleet calibrate -class <name> -o <file> [-runtime 1.5s] [-warmup 600ms] [-seed 42] [-folds 5]
  powerfleet info <model.json>...
  powerfleet plan -budget <watts> <model.json>...
  powerfleet curtail -reduce <frac> -chunk <bytes> -depth <n> <model.json>
  powerfleet slo [-budget W] [-p99 dur] [-avg dur] [-minmbps N] <model.json>
  powerfleet scenario [-w|-migrate] <spec.json>...
  powerfleet campaign -scenario <spec.json|builtin> [-parallel N] [-out dir]`)
}

// newFlagSet builds a subcommand flag set that reports parse errors as
// returned errors rather than exiting the process.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	return fs
}

// loadModels reads and validates model files. A malformed, truncated,
// or version-skewed file fails with the path attached — it must never
// pass as an empty model and produce a silent zero-value plan.
func loadModels(paths []string) ([]*core.Model, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("need at least one model file")
	}
	out := make([]*core.Model, 0, len(paths))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		m, err := core.Load(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		out = append(out, m)
	}
	return out, nil
}

func build(args []string, out io.Writer) error {
	fs := newFlagSet("build")
	dev := fs.String("device", "SSD2", "device model: "+strings.Join(catalog.Names(), ", "))
	outPath := fs.String("o", "", "output file (default <device>.json)")
	rw := fs.String("rw", "randwrite", "workload for the grid: randwrite, randread, write, read")
	runtime := fs.Duration("runtime", 10*time.Second, "per-point runtime bound")
	bytes := fs.Int64("bytes", 2<<30, "per-point byte bound")
	seed := fs.Uint64("seed", 42, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	op, pat := device.OpWrite, workload.Rand
	switch *rw {
	case "randwrite":
	case "randread":
		op = device.OpRead
	case "write":
		pat = workload.Seq
	case "read":
		op, pat = device.OpRead, workload.Seq
	default:
		return fmt.Errorf("unknown -rw %q", *rw)
	}
	fmt.Fprintf(os.Stderr, "sweeping %s (%s grid, %v/%d bytes per point)...\n", *dev, *rw, *runtime, *bytes)
	m, err := sweep.BuildModel(*dev, op, pat, *seed, *runtime, *bytes)
	if err != nil {
		return err
	}
	path := *outPath
	if path == "" {
		path = strings.ToLower(*dev) + ".json"
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s: %d operating points, power %.2f-%.2f W, max %.0f MB/s\n",
		path, len(m.Samples()), m.MinPowerW(), m.MaxPowerW(), m.MaxThroughputMBps())
	return nil
}

// calibrate fits a learned linear power model to a catalog class by
// sweeping its mechanistic simulator, writes the versioned model file,
// and reports the cross-validated fit quality. A fit that misses the
// calibration gates still writes the file (the summary says so) but
// exits nonzero, so scripts can trust a zero exit to mean a usable
// model.
func calibrate(args []string, out io.Writer) error {
	fs := newFlagSet("calibrate")
	class := fs.String("class", "SSD2", "catalog class to calibrate: "+strings.Join(catalog.Names(), ", "))
	outPath := fs.String("o", "", "output file (default <class>-fitted.json)")
	runtime := fs.Duration("runtime", 0, "per-cell measurement window (0 = default)")
	warmup := fs.Duration("warmup", 0, "unmeasured per-cell warmup (0 = default; negative disables)")
	seed := fs.Uint64("seed", 0, "sweep and cross-validation seed (0 = default)")
	folds := fs.Int("folds", 0, "cross-validation folds (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opt := calib.Options{PointRuntime: *runtime, Warmup: *warmup, Seed: *seed, Folds: *folds}
	fmt.Fprintf(os.Stderr, "calibrating %s against its mechanistic simulator...\n", *class)
	fit, err := calib.FitClass(*class, opt)
	if err != nil {
		return err
	}
	path := *outPath
	if path == "" {
		path = strings.ToLower(*class) + "-fitted.json"
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fit.Model.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s: %d power states fit from %d operating points, CV R2 %.4f, MAPE %.2f%%\n",
		path, len(fit.Model.States), len(fit.Records), fit.R2, 100*fit.MAPE)
	if !fit.GatesOK() {
		return fmt.Errorf("%s fit misses calibration gates: R2 %.4f (>= %.2f), MAPE %.4f (<= %.2f)",
			*class, fit.R2, calib.GateR2, fit.MAPE, calib.GateMAPE)
	}
	return nil
}

func info(args []string, out io.Writer) error {
	models, err := loadModels(args)
	if err != nil {
		return err
	}
	for _, m := range models {
		fmt.Fprintf(out, "%s: %d points\n", m.Device(), len(m.Samples()))
		fmt.Fprintf(out, "  power %.2f-%.2f W (dynamic range %.1f%% of max)\n",
			m.MinPowerW(), m.MaxPowerW(), 100*m.DynamicRangeFrac())
		fmt.Fprintf(out, "  throughput ≤ %.0f MB/s\n", m.MaxThroughputMBps())
		fmt.Fprintf(out, "  Pareto frontier:\n")
		for _, s := range m.ParetoFrontier() {
			fmt.Fprintf(out, "    %6.2f W  %8.0f MB/s  %v\n", s.PowerW, s.ThroughputMBps, s.Config)
		}
	}
	return nil
}

func plan(args []string, out io.Writer) error {
	fs := newFlagSet("plan")
	budget := fs.Float64("budget", 0, "fleet power budget in watts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *budget <= 0 {
		return fmt.Errorf("plan needs -budget")
	}
	models, err := loadModels(fs.Args())
	if err != nil {
		return err
	}
	fleet, err := core.NewFleet(models...)
	if err != nil {
		return err
	}
	a, ok := fleet.BestUnderPower(*budget)
	if !ok {
		return fmt.Errorf("no assignment fits %.2f W (fleet minimum is above it)", *budget)
	}
	fmt.Fprintf(out, "budget %.2f W → plan %.2f W, %.0f MB/s\n", *budget, a.TotalPowerW, a.TotalMBps)
	for _, m := range fleet.Models() {
		s := a.Configs[m.Device()]
		fmt.Fprintf(out, "  %-6s ps%d, chunk %d KiB, qd %d  (%.2f W, %.0f MB/s)\n",
			m.Device(), s.PowerState, s.ChunkBytes/1024, s.Depth, s.PowerW, s.ThroughputMBps)
	}
	return nil
}

func curtail(args []string, out io.Writer) error {
	fs := newFlagSet("curtail")
	reduce := fs.Float64("reduce", 0.2, "power reduction fraction (0,1)")
	chunk := fs.Int64("chunk", 256<<10, "current chunk size in bytes")
	depth := fs.Int("depth", 64, "current queue depth")
	ps := fs.Int("ps", 0, "current power state")
	if err := fs.Parse(args); err != nil {
		return err
	}
	models, err := loadModels(fs.Args())
	if err != nil {
		return err
	}
	if len(models) != 1 {
		return fmt.Errorf("curtail takes exactly one model")
	}
	m := models[0]
	var from core.Sample
	found := false
	for _, s := range m.Samples() {
		if s.PowerState == *ps && s.ChunkBytes == *chunk && s.Depth == *depth {
			from, found = s, true
			break
		}
	}
	if !found {
		return fmt.Errorf("no operating point ps%d/%dB/qd%d in the model", *ps, *chunk, *depth)
	}
	planned, err := m.Curtail(from, *reduce)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "from %v: %.2f W, %.0f MB/s\n", planned.From.Config, planned.From.PowerW, planned.From.ThroughputMBps)
	fmt.Fprintf(out, "to   %v: %.2f W, %.0f MB/s\n", planned.To.Config, planned.To.PowerW, planned.To.ThroughputMBps)
	fmt.Fprintf(out, "sheds %.2f W (%.0f%%); curtail %.0f MB/s of best-effort load (keep %.0f%% throughput)\n",
		planned.PowerSavedW, 100*planned.PowerReduction, planned.CurtailMBps, 100*planned.ThroughputKept)
	return nil
}

// scenarioCmd validates scenario spec files — strict parse, semantic
// checks, and the canonical-encoding contract that lets specs serve as
// golden inputs. -w rewrites non-canonical (but valid) files in place;
// without it, drifted files are an error so CI can gate on them.
// -migrate rewrites old-version specs to the current schema (canonical
// encoding) in place.
func scenarioCmd(args []string, out io.Writer) error {
	fs := newFlagSet("scenario")
	write := fs.Bool("w", false, "rewrite valid but non-canonical spec files in place")
	migrate := fs.Bool("migrate", false, "rewrite old-version spec files to the current schema in place")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		return fmt.Errorf("need at least one scenario file")
	}
	if *migrate {
		return migrateSpecs(paths, out)
	}
	var stale []string
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		sp, err := scenario.Parse(bytes.NewReader(raw))
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		canon, err := sp.Canonical()
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		if bytes.Equal(raw, canon) {
			fmt.Fprintf(out, "%s: ok (%s, experiment %s)\n", p, sp.Name, sp.Experiment)
			continue
		}
		if *write {
			if err := os.WriteFile(p, canon, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "%s: rewrote in canonical form\n", p)
			continue
		}
		stale = append(stale, p)
	}
	if len(stale) > 0 {
		return fmt.Errorf("valid but not canonical (rerun with scenario -w to rewrite): %s", strings.Join(stale, ", "))
	}
	return nil
}

// migrateSpecs rewrites each old-version spec file to the current
// schema in canonical form. Files already at the current version are
// left untouched and reported as such; any malformed file aborts with
// its path and the offending spec path attached.
func migrateSpecs(paths []string, out io.Writer) error {
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		sp, err := scenario.Migrate(raw)
		if err != nil {
			if errors.Is(err, scenario.ErrAlreadyCurrent) {
				fmt.Fprintf(out, "%s: already at version %d\n", p, scenario.Version)
				continue
			}
			return fmt.Errorf("%s: %w", p, err)
		}
		canon, err := sp.Canonical()
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		if err := os.WriteFile(p, canon, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: migrated to version %d (%s)\n", p, scenario.Version, sp.Name)
	}
	return nil
}

// campaignCmd expands a gridded scenario spec into its point family and
// runs every point across a worker pool, printing one summary row per
// point in grid order. -out writes the merged canonical report to
// <dir>/BENCH_campaign.json plus one per-point report per label; both
// are byte-identical at any -parallel value.
func campaignCmd(args []string, out io.Writer) error {
	fs := newFlagSet("campaign")
	scen := fs.String("scenario", "", "campaign spec: a file path or a built-in scenario name")
	parallel := fs.Int("parallel", 0, "points to run concurrently (0 = one per CPU)")
	outDir := fs.String("out", "", "directory to write BENCH_campaign.json and per-point reports into")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scen == "" {
		return fmt.Errorf("campaign needs -scenario (a spec file or one of: %s)", strings.Join(scenario.BuiltInNames(), ", "))
	}
	sp, err := loadSpec(*scen)
	if err != nil {
		return err
	}
	rep, err := campaign.Run(sp, *parallel)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "campaign %s: %d points", rep.Campaign, len(rep.Points))
	if len(rep.Axes) > 0 {
		parts := make([]string, len(rep.Axes))
		for i, a := range rep.Axes {
			parts[i] = fmt.Sprintf("%s=%d", a.Key, a.Len)
		}
		fmt.Fprintf(out, " (%s)", strings.Join(parts, " x "))
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "%-16s %6s %9s %9s %9s %8s %6s\n",
		"point", "devs", "completed", "MB/s", "p99", "avgW", "track")
	for _, p := range rep.Points {
		track := "ok"
		if !p.Report.TrackOK {
			track = "MISS"
		}
		fmt.Fprintf(out, "%-16s %6d %9d %9.1f %9v %8.1f %6s\n",
			p.Label, p.Size, p.Report.Completed, p.Report.ThroughputMBps,
			p.Report.LatP99.Round(10*time.Microsecond), p.Report.AvgPowerW, track)
	}

	if *outDir == "" {
		return nil
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	merged, err := rep.JSON()
	if err != nil {
		return err
	}
	mergedPath := filepath.Join(*outDir, "BENCH_campaign.json")
	if err := os.WriteFile(mergedPath, merged, 0o644); err != nil {
		return err
	}
	for _, p := range rep.Points {
		b, err := json.MarshalIndent(&p, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(*outDir, p.Label+".json"), append(b, '\n'), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "wrote %s and %d per-point reports\n", mergedPath, len(rep.Points))
	return nil
}

// loadSpec resolves a -scenario argument: an existing file path wins,
// otherwise a built-in scenario name.
func loadSpec(arg string) (*scenario.Spec, error) {
	if _, err := os.Stat(arg); err == nil {
		return scenario.LoadFile(arg)
	}
	if sp := scenario.BuiltIn(arg); sp != nil {
		return sp, nil
	}
	return nil, fmt.Errorf("%s: not a spec file or built-in scenario (have %s)", arg, strings.Join(scenario.BuiltInNames(), ", "))
}

func slo(args []string, out io.Writer) error {
	fs := newFlagSet("slo")
	budget := fs.Float64("budget", 0, "power budget in watts (0 = unconstrained)")
	p99 := fs.Duration("p99", 0, "maximum p99 latency")
	avg := fs.Duration("avg", 0, "maximum average latency")
	minMBps := fs.Float64("minmbps", 0, "minimum throughput")
	if err := fs.Parse(args); err != nil {
		return err
	}
	models, err := loadModels(fs.Args())
	if err != nil {
		return err
	}
	if len(models) != 1 {
		return fmt.Errorf("slo takes exactly one model")
	}
	m := models[0]
	obj := core.SLO{MaxAvgLat: *avg, MaxP99Lat: *p99, MinMBps: *minMBps}
	fmt.Fprintf(out, "SLO: %v\n", obj)
	if *budget > 0 {
		if s, ok := m.BestUnderPowerSLO(*budget, obj); ok {
			fmt.Fprintf(out, "best under %.2f W: %v → %.2f W, %.0f MB/s (p99 %v)\n",
				*budget, s.Config, s.PowerW, s.ThroughputMBps, s.P99Lat)
		} else {
			fmt.Fprintf(out, "no operating point fits %.2f W under this SLO\n", *budget)
		}
		return nil
	}
	if s, ok := m.MinPowerSLO(obj); ok {
		fmt.Fprintf(out, "lowest power meeting SLO: %v → %.2f W, %.0f MB/s (p99 %v)\n",
			s.Config, s.PowerW, s.ThroughputMBps, s.P99Lat)
	} else {
		fmt.Fprintln(out, "no operating point meets this SLO")
	}
	return nil
}
