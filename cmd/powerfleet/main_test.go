package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wattio/internal/core"
	"wattio/internal/scenario"
)

// writeModel saves a small two-state model for dev into dir and returns
// its path.
func writeModel(t *testing.T, dir, dev string) string {
	t.Helper()
	samples := []core.Sample{
		{
			Config: core.Config{Device: dev, PowerState: 0, Random: true, Write: true, ChunkBytes: 256 << 10, Depth: 64},
			PowerW: 12, ThroughputMBps: 3000, AvgLat: 200 * time.Microsecond, P99Lat: time.Millisecond,
		},
		{
			Config: core.Config{Device: dev, PowerState: 2, Random: true, Write: true, ChunkBytes: 256 << 10, Depth: 64},
			PowerW: 6, ThroughputMBps: 1500, AvgLat: 400 * time.Microsecond, P99Lat: 4 * time.Millisecond,
		},
	}
	m, err := core.NewModel(dev, samples)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, strings.ToLower(dev)+".json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	return path
}

// runCLI drives the powerfleet dispatcher exactly as main does and
// returns the exit code with both output streams.
func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errw strings.Builder
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestInfo(t *testing.T) {
	dir := t.TempDir()
	path := writeModel(t, dir, "SSD2")
	code, out, stderr := runCLI("info", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"SSD2: 2 points", "Pareto frontier", "12.00 W", "3000 MB/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("info output missing %q:\n%s", want, out)
		}
	}
}

func TestPlanTwoModels(t *testing.T) {
	dir := t.TempDir()
	a := writeModel(t, dir, "SSD1")
	b := writeModel(t, dir, "SSD2")

	code, out, stderr := runCLI("plan", "-budget", "18", a, b)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	// 18 W fits one device at ps0 (12 W) plus one at ps2 (6 W).
	if !strings.Contains(out, "plan 18.00 W, 4500 MB/s") {
		t.Errorf("unexpected plan:\n%s", out)
	}

	if code, _, stderr := runCLI("plan", "-budget", "5", a, b); code == 0 {
		t.Error("infeasible budget planned successfully")
	} else if !strings.Contains(stderr, "no assignment fits") {
		t.Errorf("unhelpful infeasibility error: %s", stderr)
	}
}

func TestPlanNeedsBudget(t *testing.T) {
	dir := t.TempDir()
	path := writeModel(t, dir, "SSD2")
	if code, _, stderr := runCLI("plan", path); code == 0 || !strings.Contains(stderr, "-budget") {
		t.Errorf("missing -budget not rejected: exit %d, stderr %s", code, stderr)
	}
}

func TestCurtailAndSLO(t *testing.T) {
	dir := t.TempDir()
	path := writeModel(t, dir, "SSD2")

	code, out, stderr := runCLI("curtail", "-reduce", "0.4", path)
	if code != 0 {
		t.Fatalf("curtail exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "sheds") {
		t.Errorf("curtail output:\n%s", out)
	}

	code, out, stderr = runCLI("slo", "-p99", "2ms", path)
	if code != 0 {
		t.Fatalf("slo exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "ps0") {
		t.Errorf("slo should pick ps0 (only state meeting 2ms p99):\n%s", out)
	}
}

func TestUnknownSubcommand(t *testing.T) {
	if code, _, stderr := runCLI("frobnicate"); code != 2 || !strings.Contains(stderr, "usage:") {
		t.Errorf("unknown subcommand: exit %d, stderr %s", code, stderr)
	}
	if code, _, _ := runCLI(); code != 2 {
		t.Errorf("bare invocation should exit 2, got %d", code)
	}
}

// TestBadModelFiles is the regression suite for model-load failure
// modes: every corrupt input must produce a clear error naming the
// file and a non-zero exit — never a panic or a silent zero-value plan.
func TestBadModelFiles(t *testing.T) {
	dir := t.TempDir()
	good, err := os.ReadFile(writeModel(t, dir, "SSD2"))
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		content string
		wantErr string
	}{
		{"empty file", "", "decoding model"},
		{"malformed json", "{not json", "decoding model"},
		{"truncated", string(good[:len(good)/2]), "decoding model"},
		{"trailing garbage", string(good) + "{\"version\":1}", "trailing data"},
		{"wrong version", `{"version":99,"device":"X","samples":[{"power_state":0,"power_w":1,"mbps":1}]}`, "version 99"},
		{"unknown field", `{"version":1,"device":"X","zap":1,"samples":[]}`, "decoding model"},
		{"no samples", `{"version":1,"device":"X","samples":[]}`, "at least one sample"},
		{"zero power", `{"version":1,"device":"X","samples":[{"power_state":0,"power_w":0,"mbps":10}]}`, "non-positive power"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, "bad.json")
			if err := os.WriteFile(path, []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			for _, sub := range []string{"info", "plan"} {
				args := []string{sub, path}
				if sub == "plan" {
					args = []string{sub, "-budget", "10", path}
				}
				code, out, stderr := runCLI(args...)
				if code == 0 {
					t.Fatalf("%s accepted corrupt model; stdout:\n%s", sub, out)
				}
				if !strings.Contains(stderr, tc.wantErr) {
					t.Errorf("%s error %q does not mention %q", sub, stderr, tc.wantErr)
				}
				if !strings.Contains(stderr, "bad.json") {
					t.Errorf("%s error does not name the file: %s", sub, stderr)
				}
			}
		})
	}
}

// TestScenarioSubcommand covers the spec-file gate: canonical files
// pass, drifted-but-valid files fail without -w and are rewritten with
// it, and invalid specs fail with the offending path.
func TestScenarioSubcommand(t *testing.T) {
	dir := t.TempDir()
	canon, err := scenario.BuiltIn("fleet").Canonical()
	if err != nil {
		t.Fatal(err)
	}
	good := filepath.Join(dir, "fleet.json")
	if err := os.WriteFile(good, canon, 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, stderr := runCLI("scenario", good)
	if code != 0 {
		t.Fatalf("canonical spec rejected: exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "ok (fleet, experiment fleet)") {
		t.Errorf("scenario output:\n%s", out)
	}

	// Semantically identical but re-ordered/re-indented: valid, not
	// canonical.
	drifted := filepath.Join(dir, "drifted.json")
	if err := os.WriteFile(drifted, append([]byte("\n"), canon...), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := runCLI("scenario", drifted); code == 0 || !strings.Contains(stderr, "not canonical") {
		t.Fatalf("drifted spec passed: exit %d, stderr: %s", code, stderr)
	}
	if code, _, stderr := runCLI("scenario", "-w", drifted); code != 0 {
		t.Fatalf("scenario -w failed: %s", stderr)
	}
	got, err := os.ReadFile(drifted)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(canon) {
		t.Fatalf("-w did not rewrite canonically:\n%s", got)
	}
	if code, _, stderr := runCLI("scenario", drifted); code != 0 {
		t.Fatalf("rewritten spec still rejected: %s", stderr)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":1,"name":"x","experiment":"fleet","seed":1,"fleet":{"size":-4}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := runCLI("scenario", bad); code == 0 || !strings.Contains(stderr, "fleet.size") {
		t.Fatalf("invalid spec not rejected by path: exit %d, stderr: %s", code, stderr)
	}

	if code, _, stderr := runCLI("scenario"); code == 0 || !strings.Contains(stderr, "at least one") {
		t.Fatalf("bare scenario subcommand: exit %d, stderr: %s", code, stderr)
	}
}

func TestMissingFile(t *testing.T) {
	code, _, stderr := runCLI("info", filepath.Join(t.TempDir(), "nope.json"))
	if code == 0 || !strings.Contains(stderr, "nope.json") {
		t.Errorf("missing file: exit %d, stderr %s", code, stderr)
	}
}
