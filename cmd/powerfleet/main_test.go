package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wattio/internal/calib"
	"wattio/internal/core"
	"wattio/internal/scenario"
)

// writeModel saves a small two-state model for dev into dir and returns
// its path.
func writeModel(t *testing.T, dir, dev string) string {
	t.Helper()
	samples := []core.Sample{
		{
			Config: core.Config{Device: dev, PowerState: 0, Random: true, Write: true, ChunkBytes: 256 << 10, Depth: 64},
			PowerW: 12, ThroughputMBps: 3000, AvgLat: 200 * time.Microsecond, P99Lat: time.Millisecond,
		},
		{
			Config: core.Config{Device: dev, PowerState: 2, Random: true, Write: true, ChunkBytes: 256 << 10, Depth: 64},
			PowerW: 6, ThroughputMBps: 1500, AvgLat: 400 * time.Microsecond, P99Lat: 4 * time.Millisecond,
		},
	}
	m, err := core.NewModel(dev, samples)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, strings.ToLower(dev)+".json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	return path
}

// runCLI drives the powerfleet dispatcher exactly as main does and
// returns the exit code with both output streams.
func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errw strings.Builder
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestInfo(t *testing.T) {
	dir := t.TempDir()
	path := writeModel(t, dir, "SSD2")
	code, out, stderr := runCLI("info", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"SSD2: 2 points", "Pareto frontier", "12.00 W", "3000 MB/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("info output missing %q:\n%s", want, out)
		}
	}
}

func TestPlanTwoModels(t *testing.T) {
	dir := t.TempDir()
	a := writeModel(t, dir, "SSD1")
	b := writeModel(t, dir, "SSD2")

	code, out, stderr := runCLI("plan", "-budget", "18", a, b)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	// 18 W fits one device at ps0 (12 W) plus one at ps2 (6 W).
	if !strings.Contains(out, "plan 18.00 W, 4500 MB/s") {
		t.Errorf("unexpected plan:\n%s", out)
	}

	if code, _, stderr := runCLI("plan", "-budget", "5", a, b); code == 0 {
		t.Error("infeasible budget planned successfully")
	} else if !strings.Contains(stderr, "no assignment fits") {
		t.Errorf("unhelpful infeasibility error: %s", stderr)
	}
}

func TestPlanNeedsBudget(t *testing.T) {
	dir := t.TempDir()
	path := writeModel(t, dir, "SSD2")
	if code, _, stderr := runCLI("plan", path); code == 0 || !strings.Contains(stderr, "-budget") {
		t.Errorf("missing -budget not rejected: exit %d, stderr %s", code, stderr)
	}
}

func TestCurtailAndSLO(t *testing.T) {
	dir := t.TempDir()
	path := writeModel(t, dir, "SSD2")

	code, out, stderr := runCLI("curtail", "-reduce", "0.4", path)
	if code != 0 {
		t.Fatalf("curtail exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "sheds") {
		t.Errorf("curtail output:\n%s", out)
	}

	code, out, stderr = runCLI("slo", "-p99", "2ms", path)
	if code != 0 {
		t.Fatalf("slo exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "ps0") {
		t.Errorf("slo should pick ps0 (only state meeting 2ms p99):\n%s", out)
	}
}

func TestUnknownSubcommand(t *testing.T) {
	if code, _, stderr := runCLI("frobnicate"); code != 2 || !strings.Contains(stderr, "usage:") {
		t.Errorf("unknown subcommand: exit %d, stderr %s", code, stderr)
	}
	if code, _, _ := runCLI(); code != 2 {
		t.Errorf("bare invocation should exit 2, got %d", code)
	}
}

// TestBadModelFiles is the regression suite for model-load failure
// modes: every corrupt input must produce a clear error naming the
// file and a non-zero exit — never a panic or a silent zero-value plan.
func TestBadModelFiles(t *testing.T) {
	dir := t.TempDir()
	good, err := os.ReadFile(writeModel(t, dir, "SSD2"))
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		content string
		wantErr string
	}{
		{"empty file", "", "decoding model"},
		{"malformed json", "{not json", "decoding model"},
		{"truncated", string(good[:len(good)/2]), "decoding model"},
		{"trailing garbage", string(good) + "{\"version\":1}", "trailing data"},
		{"wrong version", `{"version":99,"device":"X","samples":[{"power_state":0,"power_w":1,"mbps":1}]}`, "version 99"},
		{"unknown field", `{"version":1,"device":"X","zap":1,"samples":[]}`, "decoding model"},
		{"no samples", `{"version":1,"device":"X","samples":[]}`, "at least one sample"},
		{"zero power", `{"version":1,"device":"X","samples":[{"power_state":0,"power_w":0,"mbps":10}]}`, "non-positive power"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, "bad.json")
			if err := os.WriteFile(path, []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			for _, sub := range []string{"info", "plan"} {
				args := []string{sub, path}
				if sub == "plan" {
					args = []string{sub, "-budget", "10", path}
				}
				code, out, stderr := runCLI(args...)
				if code == 0 {
					t.Fatalf("%s accepted corrupt model; stdout:\n%s", sub, out)
				}
				if !strings.Contains(stderr, tc.wantErr) {
					t.Errorf("%s error %q does not mention %q", sub, stderr, tc.wantErr)
				}
				if !strings.Contains(stderr, "bad.json") {
					t.Errorf("%s error does not name the file: %s", sub, stderr)
				}
			}
		})
	}
}

// TestScenarioSubcommand covers the spec-file gate: canonical files
// pass, drifted-but-valid files fail without -w and are rewritten with
// it, and invalid specs fail with the offending path.
func TestScenarioSubcommand(t *testing.T) {
	dir := t.TempDir()
	canon, err := scenario.BuiltIn("fleet").Canonical()
	if err != nil {
		t.Fatal(err)
	}
	good := filepath.Join(dir, "fleet.json")
	if err := os.WriteFile(good, canon, 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, stderr := runCLI("scenario", good)
	if code != 0 {
		t.Fatalf("canonical spec rejected: exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "ok (fleet, experiment fleet)") {
		t.Errorf("scenario output:\n%s", out)
	}

	// Semantically identical but re-ordered/re-indented: valid, not
	// canonical.
	drifted := filepath.Join(dir, "drifted.json")
	if err := os.WriteFile(drifted, append([]byte("\n"), canon...), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := runCLI("scenario", drifted); code == 0 || !strings.Contains(stderr, "not canonical") {
		t.Fatalf("drifted spec passed: exit %d, stderr: %s", code, stderr)
	}
	if code, _, stderr := runCLI("scenario", "-w", drifted); code != 0 {
		t.Fatalf("scenario -w failed: %s", stderr)
	}
	got, err := os.ReadFile(drifted)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(canon) {
		t.Fatalf("-w did not rewrite canonically:\n%s", got)
	}
	if code, _, stderr := runCLI("scenario", drifted); code != 0 {
		t.Fatalf("rewritten spec still rejected: %s", stderr)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":2,"name":"x","experiment":"fleet","seed":1,"fleet":{"size":-4}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := runCLI("scenario", bad); code == 0 || !strings.Contains(stderr, "fleet.size") {
		t.Fatalf("invalid spec not rejected by path: exit %d, stderr: %s", code, stderr)
	}

	if code, _, stderr := runCLI("scenario"); code == 0 || !strings.Contains(stderr, "at least one") {
		t.Fatalf("bare scenario subcommand: exit %d, stderr: %s", code, stderr)
	}
}

// TestCalibrateSubcommand fits a learned model through the CLI and
// reloads the written file through the strict calib loader — the
// end-to-end check that `powerfleet calibrate` emits a usable,
// versioned model and reports the cross-validated fit quality.
func TestCalibrateSubcommand(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ssd3.json")
	code, out, stderr := runCLI("calibrate", "-class", "SSD3", "-o", path, "-runtime", "800ms")
	if code != 0 {
		t.Fatalf("calibrate exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"wrote " + path, "CV R2", "MAPE"} {
		if !strings.Contains(out, want) {
			t.Errorf("calibrate output missing %q:\n%s", want, out)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := calib.Load(f)
	if err != nil {
		t.Fatalf("written model does not reload: %v", err)
	}
	if m.Class != "SSD3" || len(m.States) != 1 {
		t.Errorf("unexpected model: class %q, %d states", m.Class, len(m.States))
	}

	if code, _, stderr := runCLI("calibrate", "-class", "NoSuchClass"); code == 0 || !strings.Contains(stderr, "NoSuchClass") {
		t.Errorf("unknown class: exit %d, stderr %s", code, stderr)
	}
	if code, _, stderr := runCLI("calibrate", "-class", "SSD3", "-folds", "1"); code == 0 || !strings.Contains(stderr, "folds") {
		t.Errorf("bad folds: exit %d, stderr %s", code, stderr)
	}
}

func TestMissingFile(t *testing.T) {
	code, _, stderr := runCLI("info", filepath.Join(t.TempDir(), "nope.json"))
	if code == 0 || !strings.Contains(stderr, "nope.json") {
		t.Errorf("missing file: exit %d, stderr %s", code, stderr)
	}
}

// TestScenarioMigrate covers the migration path end to end: a stale
// version-1 file is rejected by the validation gate with a hint, then
// rewritten by -migrate into the exact canonical version-2 encoding;
// re-migrating is a no-op, and malformed files fail with the offending
// path.
func TestScenarioMigrate(t *testing.T) {
	dir := t.TempDir()
	sp := scenario.BuiltIn("fleet")
	sp.Version = 1
	v1, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	old := filepath.Join(dir, "old.json")
	if err := os.WriteFile(old, v1, 0o644); err != nil {
		t.Fatal(err)
	}

	if code, _, stderr := runCLI("scenario", old); code == 0 || !strings.Contains(stderr, "-migrate") {
		t.Fatalf("stale v1 spec should fail with a -migrate hint: exit %d, stderr: %s", code, stderr)
	}

	code, out, stderr := runCLI("scenario", "-migrate", old)
	if code != 0 {
		t.Fatalf("migrate failed: exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "migrated to version 2") {
		t.Errorf("migrate output:\n%s", out)
	}
	got, err := os.ReadFile(old)
	if err != nil {
		t.Fatal(err)
	}
	canon, err := scenario.BuiltIn("fleet").Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(canon) {
		t.Fatalf("migrated file is not the canonical v2 encoding:\n%s", got)
	}
	if code, _, stderr := runCLI("scenario", old); code != 0 {
		t.Fatalf("migrated file rejected by the validation gate: %s", stderr)
	}

	code, out, _ = runCLI("scenario", "-migrate", old)
	if code != 0 || !strings.Contains(out, "already at version 2") {
		t.Fatalf("re-migrate: exit %d, out: %s", code, out)
	}
	if after, _ := os.ReadFile(old); string(after) != string(canon) {
		t.Fatal("re-migrate rewrote an already-current file")
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":1,"name":"x","experiment":"fleet","seed":1,"fleet":{"sizee":4}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := runCLI("scenario", "-migrate", bad); code == 0 || !strings.Contains(stderr, "sizee") {
		t.Fatalf("malformed v1 spec: exit %d, stderr: %s", code, stderr)
	}
}

// TestCampaignSubcommand runs the canonical campaign end to end through
// the CLI at two worker counts and requires the written artifacts to be
// byte-identical — the acceptance gate for the deterministic-parallel
// contract at the outermost layer.
func TestCampaignSubcommand(t *testing.T) {
	dir := t.TempDir()
	sp := scenario.BuiltIn("campaign")
	sp.Runtime = scenario.Duration(150 * time.Millisecond)
	canon, err := sp.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	specPath := filepath.Join(dir, "campaign.json")
	if err := os.WriteFile(specPath, canon, 0o644); err != nil {
		t.Fatal(err)
	}

	out1 := filepath.Join(dir, "serial")
	code, stdout, stderr := runCLI("campaign", "-scenario", specPath, "-parallel", "1", "-out", out1)
	if code != 0 {
		t.Fatalf("campaign exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"8 points", "b=2 x n=2 x fs=2", "b0-n0-fs0", "b1-n1-fs1", "wrote"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("campaign output missing %q:\n%s", want, stdout)
		}
	}

	outN := filepath.Join(dir, "parallel")
	if code, _, stderr := runCLI("campaign", "-scenario", specPath, "-parallel", "8", "-out", outN); code != 0 {
		t.Fatalf("parallel campaign exit %d, stderr: %s", code, stderr)
	}
	files, err := os.ReadDir(out1)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 9 { // merged report + 8 per-point reports
		t.Fatalf("wrote %d files, want 9", len(files))
	}
	for _, f := range files {
		a, err := os.ReadFile(filepath.Join(out1, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(outN, f.Name()))
		if err != nil {
			t.Fatalf("parallel run did not write %s: %v", f.Name(), err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between -parallel 1 and -parallel 8", f.Name())
		}
	}

	// A built-in name resolves too, and bad arguments fail helpfully.
	if code, _, stderr := runCLI("campaign"); code == 0 || !strings.Contains(stderr, "-scenario") {
		t.Fatalf("bare campaign: exit %d, stderr: %s", code, stderr)
	}
	if code, _, stderr := runCLI("campaign", "-scenario", "no-such-thing"); code == 0 || !strings.Contains(stderr, "built-in") {
		t.Fatalf("unknown spec: exit %d, stderr: %s", code, stderr)
	}
}
