package measure

import (
	"fmt"
	"time"

	"wattio/internal/sim"
	"wattio/internal/telemetry"
	"wattio/internal/trace"
)

// PowerSource is anything whose instantaneous electrical draw the rig
// can be clamped onto — in practice a device.Device.
type PowerSource interface {
	InstantPower() float64
}

// RigConfig describes one measurement channel. Defaults mirror the
// paper's setup: a 0.1 Ω shunt, a differential amplifier, and a 24-bit
// ADS1256 sampling at 1 kHz.
type RigConfig struct {
	RailV         float64       // supply rail under measurement (12 V PCIe riser, 5 V SATA)
	SampleEvery   time.Duration // ADC sample period (paper: 1 ms)
	ShuntOhms     float64
	ShuntTolPPM   float64
	AmpGain       float64
	AmpGainErrPct float64
	AmpOffsetV    float64
	AmpNoiseV     float64 // output-referred RMS noise per sample
	FrameSamples  int     // ADC codes per serial frame
	BitErrorRate  float64 // serial-link corruption probability per bit
}

// DefaultRigConfig returns the paper's rig for a given supply rail.
func DefaultRigConfig(railV float64) RigConfig {
	return RigConfig{
		RailV:         railV,
		SampleEvery:   time.Millisecond,
		ShuntOhms:     0.1,
		ShuntTolPPM:   200,
		AmpGain:       16,
		AmpGainErrPct: 0.4,
		AmpOffsetV:    2e-3,
		AmpNoiseV:     1.5e-3,
		FrameSamples:  16,
	}
}

// Rig is one assembled measurement channel: shunt → amplifier → ADC →
// Arduino serial framing → logging computer. Construct with NewRig,
// which performs a two-point calibration, then Start sampling.
type Rig struct {
	cfg   RigConfig
	eng   *sim.Engine
	src   PowerSource
	shunt *Shunt
	amp   *Amplifier
	adc   *ADC
	wire  *sim.RNG // serial-link corruption stream

	calGainWPerV float64
	calOffsetW   float64

	tr        *trace.PowerTrace
	seq       uint16
	batch     []int32
	batchT    []time.Duration
	wireBuf   []byte  // reused frame encode/transmit buffer
	codeBuf   []int32 // reused logger-side decode buffer
	sampling  bool
	tick      *sim.Timer
	FramesOK  int
	FramesBad int

	// Telemetry. Nil-safe no-ops when the engine has none attached.
	tracer     *telemetry.Tracer
	cSamples   *telemetry.Counter
	cFramesOK  *telemetry.Counter
	cFramesBad *telemetry.Counter
}

// NewRig assembles a measurement channel on src and calibrates it
// against two known dummy loads spanning the expected range.
func NewRig(eng *sim.Engine, rng *sim.RNG, src PowerSource, cfg RigConfig) (*Rig, error) {
	switch {
	case cfg.RailV <= 0:
		return nil, fmt.Errorf("measure: rail voltage must be positive")
	case cfg.SampleEvery <= 0:
		return nil, fmt.Errorf("measure: sample period must be positive")
	case cfg.FrameSamples <= 0 || cfg.FrameSamples > maxFrameSamples:
		return nil, fmt.Errorf("measure: frame size %d out of (0, %d]", cfg.FrameSamples, maxFrameSamples)
	}
	r := rng.Stream("rig")
	rig := &Rig{
		cfg:   cfg,
		eng:   eng,
		src:   src,
		shunt: NewShunt(cfg.ShuntOhms, cfg.ShuntTolPPM, r.Stream("shunt")),
		amp:   NewAmplifier(cfg.AmpGain, cfg.AmpGainErrPct, cfg.AmpOffsetV, cfg.AmpNoiseV, r),
		adc:   NewADS1256(),
		wire:  r.Stream("wire"),
		tr:    &trace.PowerTrace{},

		batch:   make([]int32, 0, cfg.FrameSamples),
		batchT:  make([]time.Duration, 0, cfg.FrameSamples),
		wireBuf: make([]byte, 0, 5+3*cfg.FrameSamples+2),
		codeBuf: make([]int32, 0, cfg.FrameSamples),

		tracer:     eng.Tracer(),
		cSamples:   eng.Metrics().Counter("rig_samples_total"),
		cFramesOK:  eng.Metrics().Counter("rig_frames_ok_total"),
		cFramesBad: eng.Metrics().Counter("rig_frames_bad_total"),
	}
	// Two-point calibration with dummy loads at 5% and 80% of the
	// channel's full-scale power (the power at which the amplifier
	// output reaches the ADC reference).
	full := cfg.RailV * rig.adc.VrefV / (cfg.AmpGain * cfg.ShuntOhms)
	rig.calibrate(0.05*full, 0.80*full, 256)
	return rig, nil
}

// sampleCode pushes a known power through the physical chain once.
func (r *Rig) sampleCode(watts float64) int32 {
	amps := watts / r.cfg.RailV
	return r.adc.Code(r.amp.Out(r.shunt.Volts(amps)))
}

// calibrate fits watts = gain·Vadc + offset from two averaged dummy-load
// readings, absorbing shunt tolerance, amplifier gain error, and offset.
func (r *Rig) calibrate(p1, p2 float64, n int) {
	avg := func(p float64) float64 {
		var sum float64
		for i := 0; i < n; i++ {
			sum += r.adc.Volts(r.sampleCode(p))
		}
		return sum / float64(n)
	}
	v1, v2 := avg(p1), avg(p2)
	r.calGainWPerV = (p2 - p1) / (v2 - v1)
	r.calOffsetW = p1 - r.calGainWPerV*v1
}

// Watts converts an ADC code to calibrated watts.
func (r *Rig) Watts(code int32) float64 {
	return r.calGainWPerV*r.adc.Volts(code) + r.calOffsetW
}

// Start begins periodic sampling. Samples flow through the serial
// framing; frames that fail CRC on the logger side are dropped and
// counted in FramesBad.
func (r *Rig) Start() {
	if r.sampling {
		return
	}
	r.sampling = true
	if r.tick == nil {
		r.tick = r.eng.After(r.cfg.SampleEvery, r.onTick)
	} else {
		r.tick.RescheduleAfter(r.cfg.SampleEvery)
	}
}

// onTick takes one ADC sample, then enters the sampling fast path: as
// long as the next sample instant falls strictly before any pending
// event (device power is piecewise-constant between events, so nothing
// the rig observes can change) and within the active RunUntil deadline,
// it advances the virtual clock and samples inline instead of
// round-tripping the event queue. The clock genuinely advances to each
// sample instant, so lazily-integrated meter state and RNG draw order
// are exactly what the one-event-per-sample loop produced.
func (r *Rig) onTick() {
	r.sampleOnce()
	next := r.eng.Now() + r.cfg.SampleEvery
	for r.sampling {
		if p, ok := r.eng.NextEventAt(); ok && p <= next {
			break
		}
		if dl, ok := r.eng.Deadline(); !ok || next > dl {
			break
		}
		r.eng.AdvanceTo(next)
		r.sampleOnce()
		next += r.cfg.SampleEvery
	}
	if r.sampling {
		r.tick.Reschedule(next)
	}
}

func (r *Rig) sampleOnce() {
	r.batch = append(r.batch, r.sampleCode(r.src.InstantPower()))
	r.batchT = append(r.batchT, r.eng.Now())
	if len(r.batch) >= r.cfg.FrameSamples {
		r.flush()
	}
}

// Stop halts sampling and flushes any partial frame.
func (r *Rig) Stop() {
	if !r.sampling {
		return
	}
	r.sampling = false
	if r.tick != nil {
		r.tick.Stop()
	}
	if len(r.batch) > 0 {
		r.flush()
	}
}

// Sampling reports whether the rig is currently sampling.
func (r *Rig) Sampling() bool { return r.sampling }

// flush encodes the pending batch as a serial frame, transmits it
// across the (possibly noisy) link, decodes it on the logger side, and
// appends calibrated samples to the trace.
func (r *Rig) flush() {
	wire := AppendFrame(r.wireBuf[:0], r.seq, r.batch)
	r.wireBuf = wire
	r.seq++
	if r.cfg.BitErrorRate > 0 {
		for i := range wire {
			for b := 0; b < 8; b++ {
				if r.wire.Float64() < r.cfg.BitErrorRate {
					wire[i] ^= 1 << b
				}
			}
		}
	}
	_, codes, _, err := DecodeFrameInto(wire, r.codeBuf[:0])
	r.codeBuf = codes
	if err != nil {
		r.FramesBad++
		r.cFramesBad.Inc()
	} else {
		r.FramesOK++
		r.cFramesOK.Inc()
		r.cSamples.Add(int64(len(codes)))
		for i, code := range codes {
			w := r.Watts(code)
			r.tr.Append(r.batchT[i], w)
			r.tracer.Counter("power_w", r.batchT[i], w)
		}
	}
	r.batch = r.batch[:0]
	r.batchT = r.batchT[:0]
}

// Trace returns the calibrated power trace collected so far.
func (r *Rig) Trace() *trace.PowerTrace { return r.tr }
