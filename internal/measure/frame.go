package measure

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The Arduino UNO reads ADC codes over SPI and forwards them to the
// data-logging computer over its serial link in small framed batches.
// This file implements that wire protocol: a sync word, a sequence
// number for loss detection, a batch of big-endian signed 24-bit codes,
// and a CRC-16/CCITT trailer.

// frameSync marks the start of a frame on the wire.
const frameSync = 0xAA55

// maxFrameSamples bounds a frame to the UNO's tiny SRAM.
const maxFrameSamples = 32

// Frame is one decoded serial frame.
type Frame struct {
	Seq   uint16
	Codes []int32
}

// Errors returned by DecodeFrame.
var (
	ErrShortFrame = errors.New("measure: frame truncated")
	ErrBadSync    = errors.New("measure: bad sync word")
	ErrBadCRC     = errors.New("measure: CRC mismatch")
)

// EncodeFrame serializes a batch of ADC codes. It panics if the batch
// is empty or exceeds maxFrameSamples, or if a code does not fit in 24
// bits — those are programming errors in the sampler.
func EncodeFrame(seq uint16, codes []int32) []byte {
	return AppendFrame(make([]byte, 0, 5+3*len(codes)+2), seq, codes)
}

// AppendFrame is EncodeFrame into a caller-owned buffer: it appends the
// encoded frame to dst and returns the extended slice. The sampler hot
// path passes the same buffer every flush so steady-state framing does
// not allocate.
func AppendFrame(dst []byte, seq uint16, codes []int32) []byte {
	if len(codes) == 0 || len(codes) > maxFrameSamples {
		panic(fmt.Sprintf("measure: frame with %d samples", len(codes)))
	}
	start := len(dst)
	buf := dst
	buf = binary.BigEndian.AppendUint16(buf, frameSync)
	buf = binary.BigEndian.AppendUint16(buf, seq)
	buf = append(buf, byte(len(codes)))
	for _, c := range codes {
		if c > 1<<23-1 || c < -(1<<23) {
			panic(fmt.Sprintf("measure: code %d exceeds 24 bits", c))
		}
		u := uint32(c) & 0xFFFFFF
		buf = append(buf, byte(u>>16), byte(u>>8), byte(u))
	}
	return binary.BigEndian.AppendUint16(buf, crc16(buf[start:]))
}

// DecodeFrame parses one frame, verifying sync and CRC, and returns the
// number of bytes consumed.
func DecodeFrame(b []byte) (Frame, int, error) {
	seq, codes, total, err := DecodeFrameInto(b, nil)
	if err != nil {
		return Frame{}, 0, err
	}
	return Frame{Seq: seq, Codes: codes}, total, nil
}

// DecodeFrameInto is DecodeFrame into a caller-owned slice: decoded
// codes are appended to codes and the extended slice is returned along
// with the frame sequence number and bytes consumed. The sampler hot
// path passes the same slice every flush so steady-state decoding does
// not allocate.
func DecodeFrameInto(b []byte, codes []int32) (uint16, []int32, int, error) {
	if len(b) < 7 {
		return 0, codes, 0, ErrShortFrame
	}
	if binary.BigEndian.Uint16(b) != frameSync {
		return 0, codes, 0, ErrBadSync
	}
	n := int(b[4])
	if n == 0 || n > maxFrameSamples {
		return 0, codes, 0, fmt.Errorf("measure: implausible sample count %d", n)
	}
	total := 5 + 3*n + 2
	if len(b) < total {
		return 0, codes, 0, ErrShortFrame
	}
	if crc16(b[:total-2]) != binary.BigEndian.Uint16(b[total-2:total]) {
		return 0, codes, 0, ErrBadCRC
	}
	for i := 0; i < n; i++ {
		o := 5 + 3*i
		u := uint32(b[o])<<16 | uint32(b[o+1])<<8 | uint32(b[o+2])
		if u&0x800000 != 0 { // sign-extend 24→32 bits
			u |= 0xFF000000
		}
		codes = append(codes, int32(u))
	}
	return binary.BigEndian.Uint16(b[2:4]), codes, total, nil
}

// crc16 is CRC-16/CCITT-FALSE, the variant small microcontroller
// firmware commonly ships.
func crc16(b []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, c := range b {
		crc ^= uint16(c) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}
