package measure

import (
	"testing"
	"time"

	"wattio/internal/sim"
)

// BenchmarkRigSample measures one ADC sample through the full physical
// chain — shunt, amplifier, ADC, serial framing — on the rig's batching
// fast path: the engine has no other events, so after the first tick the
// sampler advances the clock inline instead of round-tripping the event
// queue. Frame encode/decode buffers are reused and the power trace
// grows in chunks, so allocs/op reports 0 at steady state (asserted
// strictly by TestRigSampleAllocFree).
func BenchmarkRigSample(b *testing.B) {
	eng := sim.NewEngine()
	rig, err := NewRig(eng, sim.NewRNG(42), constSource(6.5), DefaultRigConfig(12))
	if err != nil {
		b.Fatal(err)
	}
	rig.Start()
	b.ReportAllocs()
	b.ResetTimer()
	eng.RunUntil(time.Duration(b.N) * rig.cfg.SampleEvery)
	b.StopTimer()
	if got := rig.Trace().Len(); got < b.N-maxFrameSamples {
		b.Fatalf("collected %d samples, want ≥ %d", got, b.N-maxFrameSamples)
	}
}

// TestRigSampleAllocFree pins the per-sample path to zero allocations.
// The frame flush every maxFrameSamples samples amortizes trace-chunk
// growth to ~1/4096 allocs per sample; the test isolates the sample path
// by draining the batch just before it fills, so any allocation here is
// a real per-sample regression, not chunk growth.
func TestRigSampleAllocFree(t *testing.T) {
	eng := sim.NewEngine()
	rig, err := NewRig(eng, sim.NewRNG(42), constSource(6.5), DefaultRigConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	rig.sampleOnce() // warm the batch buffers
	n := testing.AllocsPerRun(500, func() {
		rig.sampleOnce()
		if len(rig.batch) == rig.cfg.FrameSamples-1 {
			rig.batch = rig.batch[:0]
			rig.batchT = rig.batchT[:0]
		}
	})
	if n != 0 {
		t.Fatalf("rig sample path allocates %v per sample, want 0", n)
	}
}
