// Package measure reproduces the paper's power measurement
// infrastructure (Fig. 1) end to end: a shunt resistor on the device's
// power wires turns current into a differential voltage, an
// instrumentation amplifier scales it (adding gain error, offset, and
// noise), a 24-bit ADS1256-style ADC samples it at 1 kHz, an Arduino
// frames the codes over a serial link, and a data-logging computer
// decodes the frames and converts codes back to watts through a
// two-point calibration.
//
// The paper's claims about this rig — millisecond-scale sampling and
// < 1% relative error — are asserted by this package's tests.
package measure

import (
	"fmt"
	"math"

	"wattio/internal/sim"
)

// Shunt converts device current to a differential voltage: V = I·R.
// The paper uses a 0.1 Ω resistor to keep the burden voltage small.
type Shunt struct {
	// Ohms is the shunt resistance.
	Ohms float64
	// TolPPM is the resistance tolerance in parts per million; the
	// actual resistance is fixed at construction inside the tolerance.
	actualOhms float64
}

// NewShunt returns a shunt with nominal resistance ohms whose actual
// resistance deviates by a fixed, RNG-drawn amount within ±tolPPM.
func NewShunt(ohms float64, tolPPM float64, rng *sim.RNG) *Shunt {
	if ohms <= 0 {
		panic("measure: shunt resistance must be positive")
	}
	dev := (2*rng.Float64() - 1) * tolPPM / 1e6
	return &Shunt{Ohms: ohms, actualOhms: ohms * (1 + dev)}
}

// Volts returns the differential voltage for a device current in amps.
func (s *Shunt) Volts(amps float64) float64 { return amps * s.actualOhms }

// Amplifier is the differential signal amplifier between the shunt and
// the ADC. Real parts have gain error, input offset, and input-referred
// noise; all three are modeled.
type Amplifier struct {
	Gain    float64 // nominal gain
	gainErr float64 // multiplicative error, fixed per part
	OffsetV float64 // output-referred offset, fixed per part
	NoiseV  float64 // output-referred RMS noise per sample
	rng     *sim.RNG
}

// NewAmplifier returns an amplifier with the given nominal gain,
// per-part gain error and offset drawn within the given bounds, and
// per-sample Gaussian noise of rms noiseV.
func NewAmplifier(gain, gainErrPct, offsetV, noiseV float64, rng *sim.RNG) *Amplifier {
	if gain <= 0 {
		panic("measure: amplifier gain must be positive")
	}
	r := rng.Stream("amplifier")
	return &Amplifier{
		Gain:    gain,
		gainErr: 1 + (2*r.Float64()-1)*gainErrPct/100,
		OffsetV: (2*r.Float64() - 1) * offsetV,
		NoiseV:  noiseV,
		rng:     r,
	}
}

// Out returns the amplifier output for a differential input voltage.
func (a *Amplifier) Out(vin float64) float64 {
	return vin*a.Gain*a.gainErr + a.OffsetV + a.rng.Gaussian(0, a.NoiseV)
}

// ADC models the TI ADS1256: a 24-bit delta-sigma converter with a
// ±Vref full-scale input range.
type ADC struct {
	VrefV float64 // full-scale reference voltage
	Bits  int     // resolution
}

// NewADS1256 returns the converter configuration the paper uses.
func NewADS1256() *ADC { return &ADC{VrefV: 2.5, Bits: 24} }

// Code quantizes an input voltage to a signed ADC code, clipping at
// full scale.
func (a *ADC) Code(v float64) int32 {
	fs := int64(1) << (a.Bits - 1)
	code := int64(math.Round(v / a.VrefV * float64(fs)))
	if code > fs-1 {
		code = fs - 1
	}
	if code < -fs {
		code = -fs
	}
	return int32(code)
}

// Volts converts a code back to the voltage at the ADC input.
func (a *ADC) Volts(code int32) float64 {
	fs := int64(1) << (a.Bits - 1)
	return float64(code) / float64(fs) * a.VrefV
}

// LSB returns the voltage of one least-significant bit.
func (a *ADC) LSB() float64 {
	return a.VrefV / float64(int64(1)<<(a.Bits-1))
}

func (a *ADC) String() string {
	return fmt.Sprintf("%d-bit ADC, ±%.2fV full scale", a.Bits, a.VrefV)
}
