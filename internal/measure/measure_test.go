package measure

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"wattio/internal/sim"
)

func TestShuntOhmsLaw(t *testing.T) {
	s := NewShunt(0.1, 0, sim.NewRNG(1))
	if got := s.Volts(1.25); math.Abs(got-0.125) > 1e-12 {
		t.Fatalf("V = %v, want 0.125", got)
	}
}

func TestShuntTolerance(t *testing.T) {
	s := NewShunt(0.1, 1000, sim.NewRNG(1)) // ±0.1%
	v := s.Volts(1)
	if v < 0.1*0.999 || v > 0.1*1.001 {
		t.Fatalf("shunt with 1000ppm tolerance gave %v for 1A", v)
	}
}

func TestShuntPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewShunt(0, 0, sim.NewRNG(1))
}

func TestAmplifierNoiseless(t *testing.T) {
	a := NewAmplifier(16, 0, 0, 0, sim.NewRNG(1))
	if got := a.Out(0.1); math.Abs(got-1.6) > 1e-12 {
		t.Fatalf("out = %v, want 1.6", got)
	}
}

func TestAmplifierNoiseStatistics(t *testing.T) {
	a := NewAmplifier(10, 0, 0, 0.01, sim.NewRNG(2))
	var sum, sq float64
	const n = 50000
	for i := 0; i < n; i++ {
		v := a.Out(0.1) - 1.0
		sum += v
		sq += v * v
	}
	mean, rms := sum/n, math.Sqrt(sq/n)
	if math.Abs(mean) > 1e-3 {
		t.Errorf("noise mean = %v, want ≈ 0", mean)
	}
	if rms < 0.009 || rms > 0.011 {
		t.Errorf("noise rms = %v, want ≈ 0.01", rms)
	}
}

func TestADCRoundTrip(t *testing.T) {
	adc := NewADS1256()
	for _, v := range []float64{0, 0.001, 1.0, 2.4999, -1.3} {
		got := adc.Volts(adc.Code(v))
		if math.Abs(got-v) > adc.LSB() {
			t.Errorf("round trip of %vV gave %vV (LSB %v)", v, got, adc.LSB())
		}
	}
}

func TestADCClipping(t *testing.T) {
	adc := NewADS1256()
	hi := adc.Code(10)  // far above +FS
	lo := adc.Code(-10) // far below -FS
	if hi != 1<<23-1 {
		t.Errorf("positive clip code = %d, want %d", hi, 1<<23-1)
	}
	if lo != -(1 << 23) {
		t.Errorf("negative clip code = %d, want %d", lo, -(1 << 23))
	}
}

// Property: ADC quantization error never exceeds one LSB inside range.
func TestADCQuantizationProperty(t *testing.T) {
	adc := NewADS1256()
	f := func(raw float64) bool {
		v := math.Mod(math.Abs(raw), 2.49)
		return math.Abs(adc.Volts(adc.Code(v))-v) <= adc.LSB()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	codes := []int32{0, 1, -1, 8388607, -8388608, 12345, -99999}
	wire := EncodeFrame(42, codes)
	f, n, err := DecodeFrame(wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) {
		t.Errorf("consumed %d bytes, want %d", n, len(wire))
	}
	if f.Seq != 42 {
		t.Errorf("seq = %d, want 42", f.Seq)
	}
	if len(f.Codes) != len(codes) {
		t.Fatalf("decoded %d codes, want %d", len(f.Codes), len(codes))
	}
	for i := range codes {
		if f.Codes[i] != codes[i] {
			t.Errorf("code %d = %d, want %d", i, f.Codes[i], codes[i])
		}
	}
}

// Property: any in-range batch round-trips exactly.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(raw []int32, seq uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > maxFrameSamples {
			raw = raw[:maxFrameSamples]
		}
		codes := make([]int32, len(raw))
		for i, c := range raw {
			codes[i] = c % (1 << 23)
		}
		fr, _, err := DecodeFrame(EncodeFrame(seq, codes))
		if err != nil || fr.Seq != seq {
			return false
		}
		for i := range codes {
			if fr.Codes[i] != codes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameDetectsCorruption(t *testing.T) {
	wire := EncodeFrame(7, []int32{100, -200, 300})
	for i := 2; i < len(wire); i++ { // skip sync word: flipping it is ErrBadSync
		bad := make([]byte, len(wire))
		copy(bad, wire)
		bad[i] ^= 0x40
		if _, _, err := DecodeFrame(bad); err == nil {
			t.Errorf("corruption at byte %d went undetected", i)
		}
	}
}

func TestFrameBadSync(t *testing.T) {
	wire := EncodeFrame(7, []int32{1})
	wire[0] = 0x00
	if _, _, err := DecodeFrame(wire); err != ErrBadSync {
		t.Fatalf("err = %v, want ErrBadSync", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	wire := EncodeFrame(7, []int32{1, 2, 3})
	if _, _, err := DecodeFrame(wire[:len(wire)-3]); err != ErrShortFrame {
		t.Fatalf("err = %v, want ErrShortFrame", err)
	}
}

func TestFrameEncodePanics(t *testing.T) {
	for _, tc := range []struct {
		name  string
		codes []int32
	}{
		{"empty", nil},
		{"oversized batch", make([]int32, maxFrameSamples+1)},
		{"code too wide", []int32{1 << 23}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			EncodeFrame(0, tc.codes)
		})
	}
}

// constSource is a dummy load of fixed wattage.
type constSource float64

func (c constSource) InstantPower() float64 { return float64(c) }

func TestRigAccuracyWithinOnePercent(t *testing.T) {
	// The paper claims < 1% relative error at millisecond sampling.
	// Verify across the operating range on both rails used.
	for _, tc := range []struct {
		railV float64
		watts []float64
	}{
		{12, []float64{3.5, 5.0, 8.19, 13.5, 15.1}},
		{5, []float64{0.35, 1.0, 3.5, 5.3}},
	} {
		for _, w := range tc.watts {
			eng := sim.NewEngine()
			rig, err := NewRig(eng, sim.NewRNG(3), constSource(w), DefaultRigConfig(tc.railV))
			if err != nil {
				t.Fatal(err)
			}
			rig.Start()
			eng.RunUntil(2 * time.Second)
			rig.Stop()
			got := rig.Trace().Mean()
			relErr := math.Abs(got-w) / w
			if relErr > 0.01 {
				t.Errorf("rail %v: measured %.4f W for %.4f W load (%.2f%% error)",
					tc.railV, got, w, relErr*100)
			}
		}
	}
}

func TestRigSamplePeriod(t *testing.T) {
	eng := sim.NewEngine()
	rig, err := NewRig(eng, sim.NewRNG(3), constSource(8), DefaultRigConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	rig.Start()
	eng.RunUntil(time.Second)
	rig.Stop()
	tr := rig.Trace()
	// 1 kHz for 1 s → ~1000 samples (modulo the final partial frame).
	if tr.Len() < 990 || tr.Len() > 1001 {
		t.Fatalf("collected %d samples in 1s, want ≈ 1000", tr.Len())
	}
	for i := 1; i < tr.Len(); i++ {
		dt := tr.At(i).T - tr.At(i-1).T
		if dt != time.Millisecond {
			t.Fatalf("sample gap %v at %d, want 1ms", dt, i)
		}
	}
}

func TestRigStopFlushesPartialFrame(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultRigConfig(12)
	cfg.FrameSamples = 16
	rig, err := NewRig(eng, sim.NewRNG(3), constSource(8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rig.Start()
	eng.RunUntil(5 * time.Millisecond) // fewer samples than one frame
	rig.Stop()
	if rig.Trace().Len() != 5 {
		t.Fatalf("trace has %d samples, want 5 (partial frame flushed)", rig.Trace().Len())
	}
	if eng.Pending() != 0 {
		t.Fatalf("%d events still pending after Stop", eng.Pending())
	}
}

func TestRigNoisyLinkDropsFrames(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultRigConfig(12)
	cfg.BitErrorRate = 1e-3
	rig, err := NewRig(eng, sim.NewRNG(3), constSource(8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rig.Start()
	eng.RunUntil(4 * time.Second)
	rig.Stop()
	if rig.FramesBad == 0 {
		t.Fatal("noisy link produced no bad frames")
	}
	if rig.FramesOK == 0 {
		t.Fatal("noisy link delivered no good frames")
	}
	// Samples that did survive are still accurate: corruption is
	// detected, never silently wrong.
	got := rig.Trace().Mean()
	if math.Abs(got-8)/8 > 0.01 {
		t.Fatalf("surviving samples off: %.4f W for 8 W load", got)
	}
}

func TestRigStartIdempotent(t *testing.T) {
	eng := sim.NewEngine()
	rig, err := NewRig(eng, sim.NewRNG(3), constSource(8), DefaultRigConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	rig.Start()
	rig.Start()
	eng.RunUntil(100 * time.Millisecond)
	rig.Stop()
	if n := rig.Trace().Len(); n > 101 {
		t.Fatalf("double Start doubled sampling: %d samples in 100ms", n)
	}
}

func TestRigConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	for _, tc := range []struct {
		name string
		mod  func(*RigConfig)
	}{
		{"zero rail", func(c *RigConfig) { c.RailV = 0 }},
		{"zero period", func(c *RigConfig) { c.SampleEvery = 0 }},
		{"zero frame", func(c *RigConfig) { c.FrameSamples = 0 }},
		{"huge frame", func(c *RigConfig) { c.FrameSamples = maxFrameSamples + 1 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultRigConfig(12)
			tc.mod(&cfg)
			if _, err := NewRig(eng, sim.NewRNG(3), constSource(1), cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}
