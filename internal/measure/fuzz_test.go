package measure

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame hardens the serial-frame parser against arbitrary
// wire bytes: it must never panic, and any frame it does accept must
// re-encode to the same bytes (round-trip integrity).
func FuzzDecodeFrame(f *testing.F) {
	f.Add(EncodeFrame(0, []int32{0}))
	f.Add(EncodeFrame(65535, []int32{8388607, -8388608}))
	f.Add([]byte{0xAA, 0x55, 0x00, 0x01, 0x02})
	f.Add(bytes.Repeat([]byte{0xAA}, 64))
	f.Fuzz(func(t *testing.T, wire []byte) {
		fr, n, err := DecodeFrame(wire)
		if err != nil {
			return
		}
		if n <= 0 || n > len(wire) {
			t.Fatalf("consumed %d of %d bytes", n, len(wire))
		}
		re := EncodeFrame(fr.Seq, fr.Codes)
		if !bytes.Equal(re, wire[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", re, wire[:n])
		}
	})
}

// FuzzRoundTrip asserts encode→decode is the identity for valid input.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint16(7), []byte{1, 2, 3, 4, 5, 6})
	f.Fuzz(func(t *testing.T, seq uint16, raw []byte) {
		if len(raw) == 0 {
			return
		}
		if len(raw) > 3*maxFrameSamples {
			raw = raw[:3*maxFrameSamples]
		}
		n := len(raw) / 3
		if n == 0 {
			n = 1
		}
		codes := make([]int32, 0, n)
		for i := 0; i+2 < len(raw) || len(codes) == 0; i += 3 {
			var u uint32
			for k := 0; k < 3 && i+k < len(raw); k++ {
				u = u<<8 | uint32(raw[i+k])
			}
			c := int32(u & 0x7FFFFF)
			if u&0x800000 != 0 {
				c = -c
			}
			codes = append(codes, c)
			if len(codes) == maxFrameSamples {
				break
			}
		}
		fr, _, err := DecodeFrame(EncodeFrame(seq, codes))
		if err != nil {
			t.Fatalf("valid frame rejected: %v", err)
		}
		if fr.Seq != seq || len(fr.Codes) != len(codes) {
			t.Fatal("round trip lost data")
		}
		for i := range codes {
			if fr.Codes[i] != codes[i] {
				t.Fatalf("code %d: %d != %d", i, fr.Codes[i], codes[i])
			}
		}
	})
}
