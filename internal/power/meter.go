// Package power models how a storage device's electrical draw is composed
// and constrained: a Meter sums named component contributions (controller,
// interface, dies, spindle, …) into the instantaneous power a shunt
// resistor would see, and a Regulator enforces an NVMe-style cap on
// average power over a rolling window by making operations wait for
// energy credits.
package power

import (
	"fmt"
	"time"
)

// Component identifies one electrical contributor inside a device.
type Component int

// Meter tracks the instantaneous power of a device as the sum of its
// component draws, and integrates total energy over virtual time.
//
// Devices call Set whenever a component changes state (a die starts a
// program op, the interface drops to SLUMBER, …). The measurement rig
// reads Instant; experiment reports read Energy.
type Meter struct {
	watts  []float64
	names  []string
	total  float64
	energy float64 // joules accumulated up to last
	last   time.Duration

	// Per-component energy is integrated lazily: each component's
	// accumulator advances only when that component changes (or on an
	// explicit EnergyBreakdown read), keeping Set O(1). The invariant
	// sum(compEnergy) + pending == energy is what the telemetry
	// energy-conservation probe checks.
	compEnergy []float64
	compLast   []time.Duration
}

// NewMeter returns an empty meter with the clock at t0.
func NewMeter(t0 time.Duration) *Meter {
	return &Meter{last: t0}
}

// AddComponent registers a named component with an initial draw of w
// watts and returns its handle.
func (m *Meter) AddComponent(name string, w float64) Component {
	m.names = append(m.names, name)
	m.watts = append(m.watts, w)
	m.compEnergy = append(m.compEnergy, 0)
	m.compLast = append(m.compLast, m.last)
	m.total += w
	return Component(len(m.watts) - 1)
}

// Set updates component c to draw w watts as of virtual time now.
// Energy is integrated at the previous rate up to now first, so ordering
// of co-timed updates does not change the integral.
func (m *Meter) Set(c Component, w float64, now time.Duration) {
	m.integrate(now)
	// Components spend much of their life at zero draw (idle dies), and
	// co-timed updates are common; skip the integration arithmetic then.
	if dt := now - m.compLast[c]; dt != 0 && m.watts[c] != 0 {
		m.compEnergy[c] += m.watts[c] * dt.Seconds()
	}
	m.compLast[c] = now
	m.total += w - m.watts[c]
	m.watts[c] = w
}

// Get returns the current draw of component c in watts.
func (m *Meter) Get(c Component) float64 { return m.watts[c] }

// Name returns the registered name of component c.
func (m *Meter) Name(c Component) string { return m.names[c] }

// Instant returns the instantaneous total power in watts at time now,
// integrating energy up to now as a side effect.
func (m *Meter) Instant(now time.Duration) float64 {
	m.integrate(now)
	return m.total
}

// Energy returns the total energy in joules consumed up to now.
func (m *Meter) Energy(now time.Duration) float64 {
	m.integrate(now)
	return m.energy
}

func (m *Meter) integrate(now time.Duration) {
	if now < m.last {
		panic(fmt.Sprintf("power: meter time went backward: %v < %v", now, m.last))
	}
	m.energy += m.total * (now - m.last).Seconds()
	m.last = now
}

// Breakdown returns a copy of the per-component draws, index-aligned with
// the handles returned by AddComponent.
func (m *Meter) Breakdown() []float64 {
	out := make([]float64, len(m.watts))
	copy(out, m.watts)
	return out
}

// EnergyBreakdown returns the per-component energies in joules consumed
// up to now, index-aligned with the handles returned by AddComponent.
// The components partition the meter's total: sum(EnergyBreakdown) ==
// Energy up to floating-point error — the invariant the telemetry
// energy-conservation probe relies on.
func (m *Meter) EnergyBreakdown(now time.Duration) []float64 {
	m.integrate(now)
	out := make([]float64, len(m.watts))
	for c := range m.watts {
		m.compEnergy[c] += m.watts[c] * (now - m.compLast[c]).Seconds()
		m.compLast[c] = now
		out[c] = m.compEnergy[c]
	}
	return out
}

// Names returns the registered component names, index-aligned with
// Breakdown and EnergyBreakdown.
func (m *Meter) Names() []string {
	out := make([]string, len(m.names))
	copy(out, m.names)
	return out
}
