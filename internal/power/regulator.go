package power

import (
	"fmt"
	"time"
)

// Regulator enforces a cap on average power over a rolling window, the
// semantics NVMe power states specify ("maximum average power over any
// 10-second period").
//
// It is an energy-credit bucket: credits accrue at the sustained rate
// (cap minus the device's uncontrollable base draw) up to one window's
// worth, and each controllable operation spends its energy before it may
// start. When credits run dry the operation must wait — that wait is
// exactly the throttling the paper measures as throughput loss and tail
// latency under ps1/ps2.
type Regulator struct {
	rateW   float64 // sustained controllable watts (cap - base); <0 clamped to 0
	burstJ  float64 // bucket capacity in joules
	credits float64
	last    time.Duration
	capped  bool
}

// NewRegulator returns a regulator that admits sustained controllable
// power rateW with a burst of one window at that rate. A window of zero
// disables bursting entirely (ops are admitted at exactly the sustained
// rate).
func NewRegulator(rateW float64, window time.Duration, now time.Duration) *Regulator {
	if rateW < 0 {
		rateW = 0
	}
	burst := rateW * window.Seconds()
	return &Regulator{
		rateW:   rateW,
		burstJ:  burst,
		credits: burst, // start full: an idle device may burst to the cap
		last:    now,
		capped:  true,
	}
}

// Uncapped returns a regulator that admits everything immediately.
func Uncapped() *Regulator { return &Regulator{capped: false} }

// Capped reports whether this regulator constrains operations at all.
func (r *Regulator) Capped() bool { return r.capped }

// Admit reserves joules of energy for an operation. It returns the delay
// the operation must wait before starting; zero means start now. The
// energy is committed immediately (credits may go negative up to the
// reservation), which serializes co-timed requests fairly in FIFO order.
func (r *Regulator) Admit(now time.Duration, joules float64) time.Duration {
	if !r.capped {
		return 0
	}
	if joules < 0 {
		panic(fmt.Sprintf("power: negative energy reservation %v", joules))
	}
	r.advance(now)
	r.credits -= joules
	if r.credits >= 0 {
		return 0
	}
	if r.rateW <= 0 {
		// The cap leaves no headroom above base draw. Model the op as
		// crawling through at a trickle rather than deadlocking: admit
		// after one window per joule owed, bounded below by 1ms.
		d := time.Duration(-r.credits * float64(time.Second))
		if d < time.Millisecond {
			d = time.Millisecond
		}
		r.credits = 0
		return d
	}
	return time.Duration(-r.credits / r.rateW * float64(time.Second))
}

// Credits returns the joules currently available (may be negative while
// reservations are outstanding).
func (r *Regulator) Credits(now time.Duration) float64 {
	if !r.capped {
		return 0
	}
	r.advance(now)
	return r.credits
}

func (r *Regulator) advance(now time.Duration) {
	if now < r.last {
		panic(fmt.Sprintf("power: regulator time went backward: %v < %v", now, r.last))
	}
	r.credits += r.rateW * (now - r.last).Seconds()
	if r.credits > r.burstJ {
		r.credits = r.burstJ
	}
	r.last = now
}

// RollingAverage reports average power over a trailing window from
// cumulative energy checkpoints. Devices use it for telemetry and tests
// use it to verify the regulator honors the cap semantics.
type RollingAverage struct {
	window time.Duration
	ts     []time.Duration
	es     []float64 // cumulative joules at ts[i]
}

// NewRollingAverage returns a tracker over the given window.
func NewRollingAverage(window time.Duration) *RollingAverage {
	if window <= 0 {
		panic("power: rolling window must be positive")
	}
	return &RollingAverage{window: window}
}

// Record notes that cumulative energy was e joules at time t. Times must
// be nondecreasing.
func (a *RollingAverage) Record(t time.Duration, e float64) {
	if n := len(a.ts); n > 0 && t < a.ts[n-1] {
		panic("power: rolling average time went backward")
	}
	a.ts = append(a.ts, t)
	a.es = append(a.es, e)
	// Drop checkpoints that have fallen out of the window, keeping one
	// before the boundary so interpolation at the window edge works.
	cut := t - a.window
	i := 0
	for i+1 < len(a.ts) && a.ts[i+1] <= cut {
		i++
	}
	if i > 0 {
		a.ts = a.ts[i:]
		a.es = a.es[i:]
	}
}

// Average returns the average power in watts over the trailing window
// ending at the last recorded time. With fewer than two checkpoints or
// zero elapsed time it returns 0.
func (a *RollingAverage) Average() float64 {
	n := len(a.ts)
	if n < 2 {
		return 0
	}
	end := a.ts[n-1]
	start := end - a.window
	if start < a.ts[0] {
		start = a.ts[0]
	}
	e0 := a.interp(start)
	dt := (end - start).Seconds()
	if dt <= 0 {
		return 0
	}
	return (a.es[n-1] - e0) / dt
}

func (a *RollingAverage) interp(t time.Duration) float64 {
	// Linear interpolation of cumulative energy at time t; callers
	// guarantee a.ts[0] <= t <= a.ts[len-1].
	for i := len(a.ts) - 1; i > 0; i-- {
		if a.ts[i-1] <= t {
			t0, t1 := a.ts[i-1], a.ts[i]
			if t1 == t0 {
				return a.es[i]
			}
			frac := float64(t-t0) / float64(t1-t0)
			return a.es[i-1] + frac*(a.es[i]-a.es[i-1])
		}
	}
	return a.es[0]
}
