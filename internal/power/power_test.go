package power

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestMeterSumsComponents(t *testing.T) {
	m := NewMeter(0)
	a := m.AddComponent("controller", 2)
	b := m.AddComponent("die0", 0)
	if got := m.Instant(0); got != 2 {
		t.Fatalf("Instant = %v, want 2", got)
	}
	m.Set(b, 0.3, 0)
	if got := m.Instant(0); math.Abs(got-2.3) > 1e-12 {
		t.Fatalf("Instant = %v, want 2.3", got)
	}
	m.Set(a, 1, 0)
	if got := m.Instant(0); math.Abs(got-1.3) > 1e-12 {
		t.Fatalf("Instant = %v, want 1.3", got)
	}
}

func TestMeterEnergyIntegration(t *testing.T) {
	m := NewMeter(0)
	c := m.AddComponent("x", 10) // 10 W
	if got := m.Energy(2 * time.Second); math.Abs(got-20) > 1e-9 {
		t.Fatalf("Energy after 2s at 10W = %v, want 20 J", got)
	}
	m.Set(c, 5, 2*time.Second)
	if got := m.Energy(4 * time.Second); math.Abs(got-30) > 1e-9 {
		t.Fatalf("Energy = %v, want 30 J (20 + 5W×2s)", got)
	}
}

func TestMeterCoTimedUpdatesOrderIndependent(t *testing.T) {
	// Two updates at the same instant must charge the old rates up to
	// that instant regardless of update order.
	mk := func(order []int) float64 {
		m := NewMeter(0)
		cs := []Component{m.AddComponent("a", 1), m.AddComponent("b", 2)}
		for _, i := range order {
			m.Set(cs[i], 10, time.Second)
		}
		return m.Energy(time.Second)
	}
	if e1, e2 := mk([]int{0, 1}), mk([]int{1, 0}); math.Abs(e1-e2) > 1e-12 {
		t.Fatalf("energy depends on co-timed update order: %v vs %v", e1, e2)
	}
}

func TestMeterTimeBackwardPanics(t *testing.T) {
	m := NewMeter(time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on backward time")
		}
	}()
	m.Instant(0)
}

func TestMeterBreakdownAndNames(t *testing.T) {
	m := NewMeter(0)
	a := m.AddComponent("ctrl", 1.5)
	m.AddComponent("iface", 0.5)
	bd := m.Breakdown()
	if len(bd) != 2 || bd[0] != 1.5 || bd[1] != 0.5 {
		t.Fatalf("Breakdown = %v", bd)
	}
	if m.Name(a) != "ctrl" {
		t.Fatalf("Name = %q, want ctrl", m.Name(a))
	}
	if m.Get(a) != 1.5 {
		t.Fatalf("Get = %v, want 1.5", m.Get(a))
	}
	bd[0] = 99
	if m.Get(a) == 99 {
		t.Fatal("Breakdown aliases internal state")
	}
}

func TestUncappedAdmitsImmediately(t *testing.T) {
	r := Uncapped()
	if r.Capped() {
		t.Fatal("Uncapped().Capped() = true")
	}
	if d := r.Admit(0, 1e9); d != 0 {
		t.Fatalf("uncapped delay = %v, want 0", d)
	}
}

func TestRegulatorBurstThenThrottle(t *testing.T) {
	// 5 W sustained, 10 s window → 50 J burst.
	r := NewRegulator(5, 10*time.Second, 0)
	if d := r.Admit(0, 50); d != 0 {
		t.Fatalf("burst admit delayed %v, want 0", d)
	}
	// Bucket empty: a 10 J op must wait 2 s at 5 W.
	if d := r.Admit(0, 10); d != 2*time.Second {
		t.Fatalf("throttled delay = %v, want 2s", d)
	}
}

func TestRegulatorRefills(t *testing.T) {
	r := NewRegulator(5, 10*time.Second, 0)
	r.Admit(0, 50) // drain
	// After 4 s, 20 J accrued.
	if got := r.Credits(4 * time.Second); math.Abs(got-20) > 1e-9 {
		t.Fatalf("credits = %v, want 20", got)
	}
	if d := r.Admit(4*time.Second, 20); d != 0 {
		t.Fatalf("delay = %v, want 0", d)
	}
}

func TestRegulatorBurstCapped(t *testing.T) {
	r := NewRegulator(5, 10*time.Second, 0)
	// A century idle must not accumulate more than one window of burst.
	if got := r.Credits(100 * 365 * 24 * time.Hour); got > 50+1e-9 {
		t.Fatalf("credits = %v, want ≤ 50", got)
	}
}

func TestRegulatorZeroHeadroom(t *testing.T) {
	r := NewRegulator(0, 10*time.Second, 0)
	d := r.Admit(0, 1)
	if d <= 0 {
		t.Fatalf("zero-headroom regulator admitted immediately")
	}
	// Must not deadlock: delay is finite and further admits still work.
	d2 := r.Admit(d, 1)
	if d2 <= 0 {
		t.Fatal("second admit at zero headroom returned no delay")
	}
}

func TestRegulatorNegativeEnergyPanics(t *testing.T) {
	r := NewRegulator(5, time.Second, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	r.Admit(0, -1)
}

// Property: over any sequence of admissions executed at their granted
// times, long-run average admitted power never exceeds the sustained rate
// plus the burst allowance.
func TestRegulatorRateProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		const rate = 8.0
		window := 2 * time.Second
		r := NewRegulator(rate, window, 0)
		now := time.Duration(0)
		var spent float64
		for _, o := range ops {
			j := float64(o%32) + 1
			d := r.Admit(now, j)
			now += d
			spent += j
		}
		if now == 0 {
			return spent <= rate*window.Seconds()+1e-6
		}
		avg := spent / now.Seconds()
		// average ≤ rate + burst amortized over elapsed time
		return avg <= rate+rate*window.Seconds()/now.Seconds()+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRollingAverageConstantPower(t *testing.T) {
	a := NewRollingAverage(10 * time.Second)
	for i := 0; i <= 20; i++ {
		ts := time.Duration(i) * time.Second
		a.Record(ts, 7*ts.Seconds()) // 7 W constant
	}
	if got := a.Average(); math.Abs(got-7) > 1e-9 {
		t.Fatalf("Average = %v, want 7", got)
	}
}

func TestRollingAverageWindowing(t *testing.T) {
	// 0 W for 10 s, then 10 W for 10 s. A 10 s window at t=20 sees only
	// the 10 W segment.
	a := NewRollingAverage(10 * time.Second)
	a.Record(0, 0)
	a.Record(10*time.Second, 0)
	a.Record(20*time.Second, 100)
	if got := a.Average(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("Average = %v, want 10", got)
	}
}

func TestRollingAveragePartialWindow(t *testing.T) {
	a := NewRollingAverage(10 * time.Second)
	a.Record(0, 0)
	a.Record(2*time.Second, 6) // 3 W over the only 2 s we have
	if got := a.Average(); math.Abs(got-3) > 1e-9 {
		t.Fatalf("Average = %v, want 3", got)
	}
}

func TestRollingAverageInterpolatesBoundary(t *testing.T) {
	// Checkpoints at 0 and 20 s, window 10 s: boundary at t=10 must be
	// interpolated inside the single long segment (5 W constant).
	a := NewRollingAverage(10 * time.Second)
	a.Record(0, 0)
	a.Record(20*time.Second, 100)
	if got := a.Average(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("Average = %v, want 5", got)
	}
}

func TestRollingAverageEmpty(t *testing.T) {
	a := NewRollingAverage(time.Second)
	if got := a.Average(); got != 0 {
		t.Fatalf("Average of empty = %v, want 0", got)
	}
	a.Record(0, 5)
	if got := a.Average(); got != 0 {
		t.Fatalf("Average of single point = %v, want 0", got)
	}
}

func TestRollingAverageBackwardTimePanics(t *testing.T) {
	a := NewRollingAverage(time.Second)
	a.Record(time.Second, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	a.Record(0, 0)
}

func TestRegulatorMatchesRollingAverageUnderLoad(t *testing.T) {
	// Drive a saturated consumer through the regulator and verify the
	// rolling-average power it achieves settles at the sustained rate.
	const rate = 6.0
	window := time.Second
	r := NewRegulator(rate, window, 0)
	avg := NewRollingAverage(10 * time.Second)
	now := time.Duration(0)
	var energy float64
	avg.Record(0, 0)
	for i := 0; i < 10000; i++ {
		const opJ = 0.05
		d := r.Admit(now, opJ)
		now += d
		energy += opJ
		avg.Record(now, energy)
	}
	got := avg.Average()
	if math.Abs(got-rate) > 0.5 {
		t.Fatalf("sustained average = %.3f W, want ≈ %.1f W", got, rate)
	}
}
