package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wattio/internal/sim"
)

// v1Fixture is the checked-in pre-migration spec: the version-1
// stepped-budget scenario exactly as PR 5 shipped it.
func v1Fixture(t *testing.T) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", "v1-stepped-budget.json"))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestMigrateV1Fixture runs the real v1 file through Migrate and pins
// the canonical-oracle property: the migrated spec's canonical encoding
// is a parse fixed point, and re-migrating it reports ErrAlreadyCurrent.
func TestMigrateV1Fixture(t *testing.T) {
	sp, err := Migrate(v1Fixture(t))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Version != Version {
		t.Fatalf("migrated version %d, want %d", sp.Version, Version)
	}
	canon, err := sp.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	sp2, err := Parse(bytes.NewReader(canon))
	if err != nil {
		t.Fatalf("migrated canonical form does not parse: %v", err)
	}
	canon2, err := sp2.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canon, canon2) {
		t.Fatalf("migrate -> canonical -> parse is not a fixed point:\n--- first\n%s\n--- second\n%s", canon, canon2)
	}
	if _, err := Migrate(canon); !errors.Is(err, ErrAlreadyCurrent) {
		t.Fatalf("re-migrating current spec: %v, want ErrAlreadyCurrent", err)
	}
}

// TestMigrateBuildEquivalence proves the migration is semantics-
// preserving: the migrated spec materializes the identical serving
// configuration, devices, and jobs as the version-1 original (decoded
// leniently, since this build's Validate refuses v1).
func TestMigrateBuildEquivalence(t *testing.T) {
	raw := v1Fixture(t)
	var v1 Spec
	if err := json.Unmarshal(raw, &v1); err != nil {
		t.Fatal(err)
	}
	if v1.Version != 1 {
		t.Fatalf("fixture version %d, want the preserved v1 file", v1.Version)
	}
	migrated, err := Migrate(raw)
	if err != nil {
		t.Fatal(err)
	}

	// Everything except the version field must be untouched.
	v1.Version = Version
	b1, _ := json.Marshal(&v1)
	b2, _ := json.Marshal(migrated)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("migration changed more than the version:\n--- v1+bump\n%s\n--- migrated\n%s", b1, b2)
	}

	// And the built artifacts agree: same serving spec...
	ss1, err := v1.ServeSpec(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ss2, err := migrated.ServeSpec(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(ss1)
	j2, _ := json.Marshal(ss2)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("serve specs differ:\n%s\n%s", j1, j2)
	}
	// ...and identical device materialization.
	for _, sp := range []*Spec{&v1, migrated} {
		eng := sim.NewEngine()
		if _, err := sp.BuildDevices(eng, sim.NewRNG(sp.Seed), sim.NewRNG(sp.FaultSeed)); err != nil {
			t.Fatalf("%s: BuildDevices: %v", sp.Name, err)
		}
	}
}

// TestMigrateAllBuiltinsRoundTrip: every built-in, re-encoded as v1,
// migrates back to a spec canonically identical to the built-in.
// Gridded built-ins are skipped — no v1 encoder could have written one.
func TestMigrateAllBuiltinsRoundTrip(t *testing.T) {
	for _, name := range BuiltInNames() {
		sp := BuiltIn(name)
		if sp.Grid != nil {
			continue
		}
		down := sp.Clone()
		down.Version = 1
		b, err := json.Marshal(down)
		if err != nil {
			t.Fatal(err)
		}
		up, err := Migrate(b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, _ := sp.Canonical()
		got, _ := up.Canonical()
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: migrated spec drifted from the built-in", name)
		}
	}
}

// TestMigrateRejections: malformed input fails loudly with the
// offending path and never panics.
func TestMigrateRejections(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"not json", `hello`, "migrate"},
		{"unknown field", `{"version":1,"name":"m","experiment":"all","seed":0,"sizee":3}`, "sizee"},
		{"trailing data", `{"version":1,"name":"m","experiment":"all","seed":0}{}`, "trailing data"},
		{"unknown version", `{"version":7,"name":"m","experiment":"all","seed":0}`, "version"},
		{"v1 with grid", `{"version":1,"name":"m","experiment":"fleet","seed":0,"grid":{"fleet_sizes":[4]}}`, "grid"},
		{"invalid after bump", `{"version":1,"name":" ","experiment":"all","seed":0}`, "name"},
		{"bad nested value", `{"version":1,"name":"m","experiment":"fleet","seed":0,"fleet":{"fault_frac":3}}`, "fleet.fault_frac"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp, err := Migrate([]byte(tc.body))
			if err == nil {
				t.Fatalf("accepted: %s -> %+v", tc.body, sp)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
