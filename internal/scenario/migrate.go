package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
)

// ErrAlreadyCurrent reports that Migrate was handed a spec already at
// the current schema version; callers treat it as "nothing to do", not
// a failure.
var ErrAlreadyCurrent = errors.New("scenario: spec is already at the current version")

// Migrate rewrites an old-version spec document to the current schema
// and returns the validated result; Canonical on it is the migrated
// encoding. Version 2 added only the grid stanza, so migrating a
// version-1 spec is a version bump — by construction the migrated spec
// builds the identical devices, jobs, and serving configuration as the
// original (the migration tests pin this).
//
// Decoding is as strict as Parse: unknown fields, trailing data, and
// semantic violations fail loudly with the offending path. A spec
// already at the current version returns ErrAlreadyCurrent.
func Migrate(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("scenario: migrate: %v", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: migrate: trailing data after spec")
	}
	switch sp.Version {
	case Version:
		return nil, ErrAlreadyCurrent
	case 1:
		// The grid stanza did not exist in version 1, so a document
		// claiming version 1 while carrying one is lying about its
		// version — refuse rather than guess.
		if sp.Grid != nil {
			return nil, pathErr("grid", "version-1 spec carries a version-2 grid stanza; fix the version field instead of migrating")
		}
		sp.Version = Version
	default:
		return nil, pathErr("version", "cannot migrate spec version %d (this build migrates version 1 to %d)", sp.Version, Version)
	}
	if err := sp.Validate(); err != nil {
		return nil, fmt.Errorf("migrated spec invalid: %w", err)
	}
	return &sp, nil
}
