package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"wattio/internal/sim"
)

// FuzzScenarioRoundTrip fuzzes the whole spec pipeline: any input that
// parses must canonicalize to a parse fixed point, and any spec that
// passes validation must materialize through every builder — invalid
// specs never build, valid specs never fail to.
func FuzzScenarioRoundTrip(f *testing.F) {
	for _, name := range BuiltInNames() {
		b, err := BuiltIn(name).Canonical()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{"version":2,"name":"m","experiment":"all","seed":0}`))
	f.Add([]byte(`{"version":2,"name":"w","experiment":"fig4","seed":9,` +
		`"devices":[{"profile":"HDD","count":2}],` +
		`"workload":{"op":"read","pattern":"rand","chunk_bytes":4096,"depth":8,"runtime":"1s"}}`))
	f.Add([]byte(`{"version":2,"name":"g","experiment":"fleet","seed":0,` +
		`"grid":{"budgets":["max","0s:11pd"],"fleet_sizes":[4,8],"fault_seeds":[1,2]}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := Parse(bytes.NewReader(data))
		if err != nil {
			return // invalid input rejected: that's the contract working
		}
		canon, err := sp.Canonical()
		if err != nil {
			t.Fatalf("validated spec failed to canonicalize: %v", err)
		}
		sp2, err := Parse(bytes.NewReader(canon))
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, canon)
		}
		canon2, err := sp2.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("canonical encoding is not a fixed point:\n--- first\n%s\n--- second\n%s", canon, canon2)
		}

		// Validated specs always build.
		if _, err := sp.ServeSpec(time.Second); err != nil {
			t.Fatalf("validated spec failed to build a serving spec: %v", err)
		}
		if sp.Workload != nil {
			if _, err := sp.Workload.Job(time.Second, 1<<20); err != nil {
				t.Fatalf("validated workload failed to build a job: %v", err)
			}
		}
		total := 0
		for _, d := range sp.Devices {
			c := d.Count
			if c == 0 {
				c = 1
			}
			total += c
		}
		// Materializing devices costs real allocations; bound the fleet
		// so a single fuzz exec stays cheap.
		if total <= 64 {
			eng := sim.NewEngine()
			if _, err := sp.BuildDevices(eng, sim.NewRNG(sp.Seed), sim.NewRNG(sp.FaultSeed)); err != nil {
				t.Fatalf("validated devices failed to build: %v", err)
			}
		}

		// Validated gridded specs always expand, and the family obeys
		// the expansion contract (size, ordering, distinct seeds).
		if sp.Grid != nil {
			checkExpansion(t, sp)
		}
	})
}

// checkExpansion asserts the grid-expansion invariants for one
// validated spec; FuzzScenarioRoundTrip and FuzzGridExpand share it.
func checkExpansion(t *testing.T, sp *Spec) {
	t.Helper()
	pts, err := sp.Expand()
	if err != nil {
		t.Fatalf("validated gridded spec failed to expand: %v", err)
	}
	want := 1
	for _, a := range sp.Grid.Axes() {
		want *= a.Len
	}
	if len(pts) != want {
		t.Fatalf("expanded to %d points, want axis product %d", len(pts), want)
	}
	seen := make(map[uint64]bool, len(pts))
	for i, pt := range pts {
		if pt.Spec.Grid != nil {
			t.Fatalf("point %s still gridded", pt.Label)
		}
		if err := pt.Spec.Validate(); err != nil {
			t.Fatalf("point %s does not validate: %v", pt.Label, err)
		}
		if i > 0 && !coordLess(pts[i-1].Coords, pt.Coords) {
			t.Fatalf("points out of lexicographic order at %d", i)
		}
		if seen[pt.Spec.Seed] {
			t.Fatalf("duplicate point seed %d at %s", pt.Spec.Seed, pt.Label)
		}
		seen[pt.Spec.Seed] = true
	}
}

// FuzzChurnSpecRoundTrip fuzzes the lane-lifecycle stanzas in
// isolation: arbitrary arrivals and churn values either fail
// validation with a path-named error, or survive the canonical
// round trip as a fixed point and build a serving spec.
func FuzzChurnSpecRoundTrip(f *testing.F) {
	f.Add(`[{"at":"1s","profile":"SSD2","add":16,"warmup":"200ms"},{"at":"2.5s","profile":"SSD2","remove":16}]`,
		`[{"at":"0s","rate_iops":3000},{"at":"1.5s","rate_iops":1200}]`, uint64(42))
	f.Add(`[{"at":"1ms","profile":"HDD","remove":1}]`, `[]`, uint64(7))
	f.Add(`[{"at":"0s","profile":"SSD2","add":0}]`, `[{"at":"1s","rate_iops":-3}]`, uint64(0))
	f.Add(`[{"at":"1s","profile":"SSD2","add":1},{"at":"1s","profile":"SSD2","remove":1}]`, `[{"at":"0s","rate_iops":1}]`, uint64(9))
	f.Fuzz(func(t *testing.T, churnJSON, arrivalsJSON string, seed uint64) {
		var churn []ChurnEventSpec
		var arr []RateStepSpec
		if err := json.Unmarshal([]byte(churnJSON), &churn); err != nil {
			return
		}
		if err := json.Unmarshal([]byte(arrivalsJSON), &arr); err != nil {
			return
		}
		sp := BuiltIn("churn")
		sp.Seed = seed
		sp.Fleet.Churn = churn
		sp.Fleet.Arrivals = arr
		if err := sp.Validate(); err != nil {
			if !strings.Contains(err.Error(), "scenario: ") {
				t.Fatalf("rejection without a path: %v", err)
			}
			return
		}
		canon, err := sp.Canonical()
		if err != nil {
			t.Fatalf("validated churn spec failed to canonicalize: %v", err)
		}
		sp2, err := Parse(bytes.NewReader(canon))
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, canon)
		}
		canon2, err := sp2.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("canonical encoding is not a fixed point:\n--- first\n%s\n--- second\n%s", canon, canon2)
		}
		svc, err := sp.ServeSpec(sp.Runtime.D())
		if err != nil {
			t.Fatalf("validated churn spec failed to build a serving spec: %v", err)
		}
		if len(svc.Churn) != len(churn) || len(svc.Rates) != len(arr) {
			t.Fatalf("stanzas dropped in the build: %d/%d churn, %d/%d rates",
				len(svc.Churn), len(churn), len(svc.Rates), len(arr))
		}
	})
}

// FuzzGridExpand fuzzes the grid stanza in isolation: arbitrary axis
// values either fail validation with a path-named error or expand into
// a family satisfying the full expansion contract.
func FuzzGridExpand(f *testing.F) {
	f.Add(`{"budgets":["max","0s:11pd"],"fleet_sizes":[4,8],"fault_seeds":[1,2]}`, uint64(42))
	f.Add(`{"rates":[3000,7000],"replicas":[1,2],"fault_fracs":[0,0.5]}`, uint64(7))
	f.Add(`{"fleet_sizes":[]}`, uint64(0))
	f.Add(`{"budgets":["0s:14.6pd","0s:14.60pd"]}`, uint64(1))
	f.Fuzz(func(t *testing.T, gridJSON string, seed uint64) {
		var g GridSpec
		if err := json.Unmarshal([]byte(gridJSON), &g); err != nil {
			return
		}
		sp := BuiltIn("fleet")
		sp.Seed = seed
		sp.Runtime = Duration(50 * time.Millisecond)
		sp.Grid = &g
		if err := sp.Validate(); err != nil {
			if !strings.Contains(err.Error(), "scenario: ") {
				t.Fatalf("rejection without a path: %v", err)
			}
			return
		}
		checkExpansion(t, sp)
	})
}

// FuzzMigrate fuzzes the v1 to v2 migration against the canonical
// oracle: whatever Migrate accepts must canonicalize to a parse fixed
// point whose re-migration reports ErrAlreadyCurrent; whatever it
// rejects must fail with an error, never a panic.
func FuzzMigrate(f *testing.F) {
	for _, name := range BuiltInNames() {
		sp := BuiltIn(name)
		if sp.Grid != nil {
			continue
		}
		sp.Version = 1
		b, err := json.Marshal(sp)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{"version":1,"name":"m","experiment":"all","seed":0}`))
	f.Add([]byte(`{"version":1,"name":"m","experiment":"fleet","seed":0,"grid":{"fleet_sizes":[4]}}`))
	f.Add([]byte(`hello`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := Migrate(data)
		if err != nil {
			if sp != nil {
				t.Fatal("Migrate returned both a spec and an error")
			}
			return
		}
		if sp.Version != Version {
			t.Fatalf("migrated spec has version %d", sp.Version)
		}
		canon, err := sp.Canonical()
		if err != nil {
			t.Fatalf("migrated spec failed to canonicalize: %v", err)
		}
		sp2, err := Parse(bytes.NewReader(canon))
		if err != nil {
			t.Fatalf("migrated canonical form does not parse: %v\n%s", err, canon)
		}
		canon2, err := sp2.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("migrate -> canonical -> parse not a fixed point:\n%s\n%s", canon, canon2)
		}
		if _, err := Migrate(canon); !errors.Is(err, ErrAlreadyCurrent) {
			t.Fatalf("re-migrating migrated spec: %v", err)
		}
	})
}
