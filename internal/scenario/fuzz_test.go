package scenario

import (
	"bytes"
	"testing"
	"time"

	"wattio/internal/sim"
)

// FuzzScenarioRoundTrip fuzzes the whole spec pipeline: any input that
// parses must canonicalize to a parse fixed point, and any spec that
// passes validation must materialize through every builder — invalid
// specs never build, valid specs never fail to.
func FuzzScenarioRoundTrip(f *testing.F) {
	for _, name := range BuiltInNames() {
		b, err := BuiltIn(name).Canonical()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{"version":1,"name":"m","experiment":"all","seed":0}`))
	f.Add([]byte(`{"version":1,"name":"w","experiment":"fig4","seed":9,` +
		`"devices":[{"profile":"HDD","count":2}],` +
		`"workload":{"op":"read","pattern":"rand","chunk_bytes":4096,"depth":8,"runtime":"1s"}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := Parse(bytes.NewReader(data))
		if err != nil {
			return // invalid input rejected: that's the contract working
		}
		canon, err := sp.Canonical()
		if err != nil {
			t.Fatalf("validated spec failed to canonicalize: %v", err)
		}
		sp2, err := Parse(bytes.NewReader(canon))
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, canon)
		}
		canon2, err := sp2.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("canonical encoding is not a fixed point:\n--- first\n%s\n--- second\n%s", canon, canon2)
		}

		// Validated specs always build.
		if _, err := sp.ServeSpec(time.Second); err != nil {
			t.Fatalf("validated spec failed to build a serving spec: %v", err)
		}
		if sp.Workload != nil {
			if _, err := sp.Workload.Job(time.Second, 1<<20); err != nil {
				t.Fatalf("validated workload failed to build a job: %v", err)
			}
		}
		total := 0
		for _, d := range sp.Devices {
			c := d.Count
			if c == 0 {
				c = 1
			}
			total += c
		}
		// Materializing devices costs real allocations; bound the fleet
		// so a single fuzz exec stays cheap.
		if total <= 64 {
			eng := sim.NewEngine()
			if _, err := sp.BuildDevices(eng, sim.NewRNG(sp.Seed), sim.NewRNG(sp.FaultSeed)); err != nil {
				t.Fatalf("validated devices failed to build: %v", err)
			}
		}
	})
}
