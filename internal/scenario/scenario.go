// Package scenario is the declarative layer over the whole testbed:
// one typed, versioned spec describes a run — devices from the catalog
// with optional fault scripts, workload shape, budget schedule,
// fleet/control settings, seeds, and scale — and one builder
// materializes it into engine-attached devices, fault wrappers,
// arrival generators, and budget-controlled serving specs.
//
// The pipeline is: JSON file → Parse (strict: unknown fields are
// rejected) → Validate (semantic checks that fail loudly with the
// offending path) → builders (ServeSpec, BuildDevices, Job). Every
// layer that used to hand-wire these pieces — the experiment runners,
// the serving engine setup, cmd/powerbench, and the examples — now
// goes through this package, so adding a scenario is a data change,
// not a code change.
//
// Determinism contract: a spec fully determines a run. Two runs of the
// same spec produce bit-identical reports (the engine layers below
// guarantee this for fixed seeds), and Canonical re-encoding is a
// fixed point: parse(canonical(s)) == s, which is what lets canonical
// spec files serve as golden inputs.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"wattio/internal/catalog"
	"wattio/internal/fault"
	"wattio/internal/serve"
	"wattio/internal/workload"
)

// Version is the spec schema version this package reads and writes.
// Parse rejects any other version so stale tooling fails loudly
// instead of silently dropping fields. Version 2 added the campaign
// grid stanza; Migrate rewrites version-1 specs in place.
const Version = 2

// Size ceilings keep a malformed (or adversarial, under fuzzing) spec
// from ballooning validation or materialization — a spec that passes
// Validate must always be cheap enough to build.
const (
	maxDeviceCount = 4096
	// maxFleetSize admits million-device fleets: with the group-parked
	// meso tier the builder materializes only probes and faulted members,
	// and validation is O(#device-stanzas), so the bound is a sanity rail
	// rather than a cost ceiling.
	maxFleetSize  = 1 << 24
	maxRolloutDim = 1 << 16
)

// Spec is one complete, self-contained run description.
type Spec struct {
	// Version is the spec schema version; must equal Version.
	Version int `json:"version"`
	// Name identifies the scenario (file names and reports use it).
	Name string `json:"name"`
	// Notes is free-form documentation carried with the spec.
	Notes string `json:"notes,omitempty"`
	// Experiment is the registered experiment id the spec drives
	// ("fleet", "chaos", "fig4", ... or "all").
	Experiment string `json:"experiment"`
	// Scale selects the base bounds: "quick" (default) or "paper".
	Scale string `json:"scale,omitempty"`
	// Runtime overrides the scale's runtime bound when positive.
	Runtime Duration `json:"runtime,omitempty"`
	// TotalBytes overrides the scale's byte bound when positive.
	TotalBytes int64 `json:"total_bytes,omitempty"`
	// Seed drives workload and device streams; FaultSeed independently
	// drives fault selection and injection.
	Seed      uint64 `json:"seed"`
	FaultSeed uint64 `json:"fault_seed,omitempty"`

	// Devices lists catalog devices for single-engine scenarios (the
	// examples, model-building experiments). Fleet scenarios size their
	// device population in Fleet instead.
	Devices []DeviceSpec `json:"devices,omitempty"`
	// Workload shapes the IO stream for device scenarios.
	Workload *WorkloadSpec `json:"workload,omitempty"`
	// Fleet parameterizes the serving engine (experiment "fleet").
	Fleet *FleetSpec `json:"fleet,omitempty"`
	// Chaos parameterizes the chaos experiment's four phases.
	Chaos *ChaosSpec `json:"chaos,omitempty"`
	// Grid is the campaign stanza (new in version 2): each populated
	// axis lists values one fleet knob sweeps over, and Expand resolves
	// the spec into the named cross-product family of point specs.
	Grid *GridSpec `json:"grid,omitempty"`
}

// DeviceSpec is one catalog device (or a homogeneous group of them)
// with an optional scripted fault profile.
type DeviceSpec struct {
	// Profile is the catalog profile: SSD1, SSD2, SSD3, HDD, EVO, C960.
	Profile string `json:"profile"`
	// Name is the instance base name; default is the profile name. With
	// Count > 1 instances are named name0, name1, ...
	Name string `json:"name,omitempty"`
	// Count is how many instances to build; default 1.
	Count int `json:"count,omitempty"`
	// Faults scripts deterministic fault windows onto the device(s).
	Faults []FaultWindow `json:"faults,omitempty"`
}

// FaultWindow is one scripted fault episode in spec form; it maps onto
// fault.Window.
type FaultWindow struct {
	// Kind is the fault class: latency, ioerror, cmdfail, cmdtimeout,
	// dropout, or thermal.
	Kind  string   `json:"kind"`
	Start Duration `json:"start"`
	Dur   Duration `json:"dur"`
	// Factor multiplies IO service time (latency, thermal windows).
	Factor float64 `json:"factor,omitempty"`
	// Extra is added to IO latency (latency windows).
	Extra Duration `json:"extra,omitempty"`
	// Prob is the per-attempt transient failure probability (ioerror).
	Prob float64 `json:"prob,omitempty"`
}

// WorkloadSpec shapes an IO stream in spec form; it maps onto
// workload.Job.
type WorkloadSpec struct {
	// Op is "read" or "write".
	Op string `json:"op"`
	// Pattern is "seq" (default) or "rand".
	Pattern string `json:"pattern,omitempty"`
	// ChunkBytes is the IO size; must be a positive multiple of 512.
	ChunkBytes int64 `json:"chunk_bytes"`
	// Depth is the closed-loop queue depth.
	Depth int `json:"depth,omitempty"`
	// Arrival is "closed" (default), "poisson", or "uniform".
	Arrival string `json:"arrival,omitempty"`
	// RateIOPS is the open-loop arrival rate; required for open modes.
	RateIOPS float64 `json:"rate_iops,omitempty"`
	// Runtime and TotalBytes bound the job; at least one must be set.
	Runtime    Duration `json:"runtime,omitempty"`
	TotalBytes int64    `json:"total_bytes,omitempty"`
}

// FleetSpec parameterizes the fleet serving engine. Zero values take
// the fleet experiment's defaults (64 devices, 7000 IOPS per active
// device, the stepped curtail-and-recover budget).
type FleetSpec struct {
	// Profiles is the catalog profile mix; replica groups round-robin
	// over it. Default {"SSD2"}.
	Profiles []string `json:"profiles,omitempty"`
	// Size is the number of devices in the fleet. Default 64.
	Size int `json:"size,omitempty"`
	// Shards is the number of independent simulation shards (0 derives
	// a deterministic default from Size).
	Shards int `json:"shards,omitempty"`
	// Replicas is the mirror-group size; Active the serving count.
	Replicas int `json:"replicas,omitempty"`
	Active   int `json:"active,omitempty"`
	// RateIOPS is the open-loop arrival rate per active device.
	// Default 7000.
	RateIOPS float64 `json:"rate_iops,omitempty"`
	// Arrival is "poisson" (default) or "uniform".
	Arrival string `json:"arrival,omitempty"`
	// Read serves reads instead of writes; Seq sequential offsets.
	Read bool `json:"read,omitempty"`
	Seq  bool `json:"seq,omitempty"`
	// ChunkBytes, Depth, Batch, QueueCap shape each group's request
	// stream (serve.Spec defaults apply when zero).
	ChunkBytes int64 `json:"chunk_bytes,omitempty"`
	Depth      int   `json:"depth,omitempty"`
	Batch      int   `json:"batch,omitempty"`
	QueueCap   int   `json:"queue_cap,omitempty"`
	// ControlPeriod paces governors and budget accounting.
	ControlPeriod Duration `json:"control_period,omitempty"`
	// CapTolFrac is the budget-tracking tolerance fraction.
	CapTolFrac float64 `json:"cap_tol_frac,omitempty"`
	// Budget is the fleet power-budget schedule in serve.ParseSchedule
	// syntax ("0s:640,1s:448", "pd" suffix = per device). Empty takes
	// the fleet experiment's stepped curtail-and-recover default; "max"
	// asks for a never-binding budget.
	Budget string `json:"budget,omitempty"`
	// Arrivals is an optional piecewise-constant arrival-rate schedule
	// (a diurnal load curve): from each step's at onward every lane's
	// per-active-device rate is that step's rate_iops. The first step
	// must be at 0; a spec sets either rate_iops or arrivals, not both.
	Arrivals []RateStepSpec `json:"arrivals,omitempty"`
	// Churn schedules membership changes: scale-out events that admit
	// new replica groups mid-run (warming for warmup before they serve)
	// and scale-in events that drain and retire groups.
	Churn []ChurnEventSpec `json:"churn,omitempty"`
	// FaultFrac is the fraction of devices given a fault window drawn
	// from FaultSeed.
	FaultFrac float64 `json:"fault_frac,omitempty"`
	// Faults scripts explicit fault windows onto named fleet instances
	// (names are profile#index, e.g. "SSD2#00003").
	Faults []FleetFault `json:"faults,omitempty"`
	// SkipInvariants disables the per-shard cap/clock probes.
	SkipInvariants bool `json:"skip_invariants,omitempty"`
	// Meso enables the mesoscale aggregation tier: steady lanes leave
	// the event-driven simulation for a calibrated analytic aggregate
	// and rehydrate at control boundaries. Off when absent.
	Meso *MesoSpec `json:"meso,omitempty"`
	// Calib swaps learned device models for the fleet's mechanistic
	// simulators: every profile in the mix is calibrated against its
	// simulator (internal/calib) and materialized as a fitted device.
	// Off when absent.
	Calib *CalibSpec `json:"calib,omitempty"`
}

// MesoSpec parameterizes the hybrid mesoscale tier (serve.Spec's Meso
// fields). The zero thresholds take serve's defaults.
type MesoSpec struct {
	// Enable turns the tier on; the other fields are ignored without it
	// so a spec can carry tuned thresholds while toggling the tier.
	Enable bool `json:"enable"`
	// DwellPeriods is how many consecutive steady control periods a
	// lane must show before it dehydrates. Default 2.
	DwellPeriods int `json:"dwell_periods,omitempty"`
	// DriftTolFrac is the sentinel drift tolerance: a rehydrated
	// sentinel lane whose re-measured draw disagrees with its
	// calibrated operating point by more than this fraction bars the
	// lane from parking again and fails the drift probe. Default 0.10.
	DriftTolFrac float64 `json:"drift_tol_frac,omitempty"`
	// GroupMin enables group-level parking: cohorts of at least this
	// many interchangeable members keep only a few resident probe lanes
	// and account the rest as shared analytic aggregates. 0 (default)
	// keeps every lane materialized.
	GroupMin int `json:"group_min,omitempty"`
	// Probes is the number of resident probe lanes per virtualized
	// cohort; meaningful only with GroupMin > 0. Default 2.
	Probes int `json:"probes,omitempty"`
}

// RateStepSpec is one step of a fleet arrival-rate schedule: from At
// onward, every lane's per-active-device rate is RateIOPS. It maps
// onto workload.RateStep.
type RateStepSpec struct {
	At       Duration `json:"at"`
	RateIOPS float64  `json:"rate_iops"`
}

// ChurnEventSpec is one scheduled fleet membership change in spec
// form; it maps onto serve.ChurnEvent. At At, Add replica groups of
// Profile join the fleet (warming for Warmup before they serve) and/or
// Remove groups of Profile drain and retire.
type ChurnEventSpec struct {
	At      Duration `json:"at"`
	Profile string   `json:"profile"`
	Add     int      `json:"add,omitempty"`
	Remove  int      `json:"remove,omitempty"`
	Warmup  Duration `json:"warmup,omitempty"`
}

// CalibSpec parameterizes the learned-device-model substitution: the
// calibration sweep bounds map onto calib.Options, and the fleet's
// profiles materialize as calib.FittedDevice instances instead of
// mechanistic simulators. Fits are memoized per (class, options), so a
// campaign grid re-running a calib scenario pays for each sweep once.
type CalibSpec struct {
	// Enable turns the substitution on; the other fields are ignored
	// without it.
	Enable bool `json:"enable"`
	// PointRuntime is each calibration cell's measured window.
	// Default 1.5 s.
	PointRuntime Duration `json:"point_runtime,omitempty"`
	// Warmup is the unmeasured steady-state lead-in per cell.
	// Default 600 ms.
	Warmup Duration `json:"warmup,omitempty"`
	// Seed drives the calibration sweep and the cross-validation
	// shuffle. Default 42.
	Seed uint64 `json:"seed,omitempty"`
	// Folds is the cross-validation fold count. Default 5.
	Folds int `json:"folds,omitempty"`
}

// FleetFault scripts fault windows onto one named fleet instance.
type FleetFault struct {
	Device  string        `json:"device"`
	Windows []FaultWindow `json:"windows"`
}

// ChaosSpec parameterizes the chaos experiment's four control-plane
// fault-recovery phases. Zero values take the published defaults.
type ChaosSpec struct {
	// GovBudgetW is the governor phase's device power budget (W).
	GovBudgetW float64 `json:"gov_budget_w,omitempty"`
	// GovControl is the governor's control period.
	GovControl Duration `json:"gov_control,omitempty"`
	// IOErrorProb is the governor phase's transient IO-error
	// probability inside its scripted window.
	IOErrorProb float64 `json:"io_error_prob,omitempty"`
	// Replicas and Active shape the redirector phase's mirror set.
	Replicas int `json:"replicas,omitempty"`
	Active   int `json:"active,omitempty"`
	// RateIOPS is the redirector phase's open-loop read rate.
	RateIOPS float64 `json:"rate_iops,omitempty"`
	// FleetBudgetW is the budget phase's two-device fleet budget (W).
	FleetBudgetW float64 `json:"fleet_budget_w,omitempty"`
	// Racks, LeavesPerRack, Staged, Restaged shape the rollout phase.
	Racks         int `json:"racks,omitempty"`
	LeavesPerRack int `json:"leaves_per_rack,omitempty"`
	Staged        int `json:"staged,omitempty"`
	Restaged      int `json:"restaged,omitempty"`
	// AuditThresholdW is the rollout power-audit threshold (W).
	AuditThresholdW float64 `json:"audit_threshold_w,omitempty"`
	// CapState is the power state the rollout enablement applies.
	CapState int `json:"cap_state,omitempty"`
}

// WithDefaults returns a copy with the published chaos defaults filled
// into zero fields. A nil receiver yields the full default set.
func (c *ChaosSpec) WithDefaults() ChaosSpec {
	var out ChaosSpec
	if c != nil {
		out = *c
	}
	if out.GovBudgetW == 0 {
		out.GovBudgetW = 11
	}
	if out.GovControl == 0 {
		out.GovControl = Duration(50 * time.Millisecond)
	}
	if out.IOErrorProb == 0 {
		out.IOErrorProb = 0.2
	}
	if out.Replicas == 0 {
		out.Replicas = 3
	}
	if out.Active == 0 {
		out.Active = 2
	}
	if out.RateIOPS == 0 {
		out.RateIOPS = 3000
	}
	if out.FleetBudgetW == 0 {
		out.FleetBudgetW = 22
	}
	if out.Racks == 0 {
		out.Racks = 2
	}
	if out.LeavesPerRack == 0 {
		out.LeavesPerRack = 3
	}
	if out.Staged == 0 {
		out.Staged = 4
	}
	if out.Restaged == 0 {
		out.Restaged = 2
	}
	if out.AuditThresholdW == 0 {
		out.AuditThresholdW = 12
	}
	if out.CapState == 0 {
		out.CapState = 2
	}
	return out
}

// Duration is a time.Duration that encodes as a JSON string ("250ms"),
// so spec files read the way the CLI flags do.
type Duration time.Duration

// D returns the underlying time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON encodes the duration as its canonical string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON decodes a duration string; negative durations are
// rejected here so every later layer can assume non-negative times.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("duration must be a string like \"250ms\": %w", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	if v < 0 {
		return fmt.Errorf("duration %q is negative", s)
	}
	*d = Duration(v)
	return nil
}

// Parse reads one spec with strict decoding: unknown or misspelled
// fields, trailing data, version skew, and semantic violations are all
// errors. The returned spec has passed Validate.
func Parse(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	// A second document (or any trailing garbage) means the file is not
	// one spec; refuse rather than silently ignore it.
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after spec")
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// LoadFile parses and validates one spec file, attaching the path to
// any error.
func LoadFile(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sp, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sp, nil
}

// Canonical returns the spec's canonical encoding: fixed field order,
// two-space indent, trailing newline. parse(canonical(s)) == s, so
// canonical files double as golden inputs.
func (s *Spec) Canonical() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Clone returns a deep copy, so override layers (CLI flags) can
// mutate a built-in spec without aliasing it.
func (s *Spec) Clone() *Spec {
	b, err := json.Marshal(s)
	if err != nil {
		panic(fmt.Sprintf("scenario: clone marshal: %v", err)) // struct is always marshalable
	}
	var out Spec
	if err := json.Unmarshal(b, &out); err != nil {
		panic(fmt.Sprintf("scenario: clone unmarshal: %v", err))
	}
	return &out
}

// pathErr builds a validation error that names the offending spec path.
func pathErr(path, format string, args ...any) error {
	return fmt.Errorf("scenario: %s: %s", path, fmt.Sprintf(format, args...))
}

// Validate runs every semantic check and fails with the offending
// path, e.g. `scenario: devices[2].faults[0].kind: unknown fault kind
// "dropped"`.
func (s *Spec) Validate() error {
	if s.Version != Version {
		if s.Version == 1 {
			return pathErr("version", "spec version 1 is outdated (this build reads version %d); rewrite it with `powerfleet scenario -migrate`", Version)
		}
		return pathErr("version", "unsupported spec version %d (this build reads version %d)", s.Version, Version)
	}
	if strings.TrimSpace(s.Name) == "" {
		return pathErr("name", "scenario needs a name")
	}
	if strings.TrimSpace(s.Experiment) == "" {
		return pathErr("experiment", "scenario needs an experiment id (or \"all\")")
	}
	switch s.Scale {
	case "", "quick", "paper":
	default:
		return pathErr("scale", "unknown scale %q (quick or paper)", s.Scale)
	}
	if s.TotalBytes < 0 {
		return pathErr("total_bytes", "negative byte bound %d", s.TotalBytes)
	}
	for i, d := range s.Devices {
		if err := d.validate(fmt.Sprintf("devices[%d]", i)); err != nil {
			return err
		}
	}
	if s.Workload != nil {
		if err := s.Workload.validate("workload"); err != nil {
			return err
		}
	}
	if s.Fleet != nil {
		if err := s.Fleet.validate("fleet"); err != nil {
			return err
		}
	}
	if s.Chaos != nil {
		if err := s.Chaos.validate("chaos"); err != nil {
			return err
		}
	}
	if s.Grid != nil {
		if err := s.Grid.validate("grid", s); err != nil {
			return err
		}
		// Walk the expansion so cross-axis combinations that are
		// individually fine but jointly invalid (a fleet size not
		// divisible by a replica count, say) fail here with the point
		// named. Points carry no grid, so this cannot recurse.
		if _, err := s.expandPoints(); err != nil {
			return err
		}
	}
	return nil
}

func (d DeviceSpec) validate(path string) error {
	if !knownProfile(d.Profile, catalog.Names()) {
		return pathErr(path+".profile", "unknown profile %q (have %s)", d.Profile, strings.Join(catalog.Names(), ", "))
	}
	if d.Count < 0 {
		return pathErr(path+".count", "negative count %d", d.Count)
	}
	if d.Count > maxDeviceCount {
		return pathErr(path+".count", "count %d exceeds the supported maximum %d", d.Count, maxDeviceCount)
	}
	for i, w := range d.Faults {
		if err := w.validate(fmt.Sprintf("%s.faults[%d]", path, i)); err != nil {
			return err
		}
	}
	return nil
}

func (w FaultWindow) validate(path string) error {
	if _, err := w.kind(); err != nil {
		return pathErr(path+".kind", "%v", err)
	}
	if w.Dur <= 0 {
		return pathErr(path+".dur", "fault window needs a positive duration, got %v", w.Dur.D())
	}
	if w.Prob < 0 || w.Prob > 1 {
		return pathErr(path+".prob", "probability %v out of [0, 1]", w.Prob)
	}
	if w.Factor < 0 {
		return pathErr(path+".factor", "negative factor %v", w.Factor)
	}
	return nil
}

// kind maps the spec's fault-kind string onto the fault package enum.
func (w FaultWindow) kind() (fault.Kind, error) {
	switch w.Kind {
	case "latency":
		return fault.LatencySpike, nil
	case "ioerror":
		return fault.IOError, nil
	case "cmdfail":
		return fault.PowerCmdFail, nil
	case "cmdtimeout":
		return fault.PowerCmdTimeout, nil
	case "dropout":
		return fault.Dropout, nil
	case "thermal":
		return fault.Thermal, nil
	}
	return 0, fmt.Errorf("unknown fault kind %q (latency, ioerror, cmdfail, cmdtimeout, dropout, thermal)", w.Kind)
}

// Window converts the spec window to the fault package's form.
func (w FaultWindow) Window() (fault.Window, error) {
	k, err := w.kind()
	if err != nil {
		return fault.Window{}, err
	}
	return fault.Window{
		Kind:   k,
		Start:  w.Start.D(),
		Dur:    w.Dur.D(),
		Factor: w.Factor,
		Extra:  w.Extra.D(),
		Prob:   w.Prob,
	}, nil
}

func (w *WorkloadSpec) validate(path string) error {
	switch w.Op {
	case "read", "write":
	default:
		return pathErr(path+".op", "op must be \"read\" or \"write\", got %q", w.Op)
	}
	switch w.Pattern {
	case "", "seq", "rand":
	default:
		return pathErr(path+".pattern", "pattern must be \"seq\" or \"rand\", got %q", w.Pattern)
	}
	if w.ChunkBytes <= 0 || w.ChunkBytes%512 != 0 {
		return pathErr(path+".chunk_bytes", "chunk size %d must be a positive multiple of 512", w.ChunkBytes)
	}
	switch w.Arrival {
	case "", "closed":
		if w.Depth <= 0 {
			return pathErr(path+".depth", "closed-loop workload needs a positive depth, got %d", w.Depth)
		}
	case "poisson", "uniform":
		if w.RateIOPS <= 0 {
			return pathErr(path+".rate_iops", "open-loop workload needs a positive rate, got %v", w.RateIOPS)
		}
	default:
		return pathErr(path+".arrival", "arrival must be \"closed\", \"poisson\", or \"uniform\", got %q", w.Arrival)
	}
	if w.Runtime <= 0 && w.TotalBytes <= 0 {
		return pathErr(path, "workload needs a positive runtime or total_bytes bound")
	}
	if w.TotalBytes < 0 {
		return pathErr(path+".total_bytes", "negative byte bound %d", w.TotalBytes)
	}
	return nil
}

func (f *FleetSpec) validate(path string) error {
	for i, p := range f.Profiles {
		if !knownProfile(p, serve.KnownProfiles()) {
			return pathErr(fmt.Sprintf("%s.profiles[%d]", path, i),
				"no planning model for profile %q (have %s)", p, strings.Join(serve.KnownProfiles(), ", "))
		}
	}
	if f.Size < 0 {
		return pathErr(path+".size", "negative fleet size %d", f.Size)
	}
	if f.Shards < 0 {
		return pathErr(path+".shards", "negative shard count %d", f.Shards)
	}
	if f.Replicas < 0 || f.Active < 0 {
		return pathErr(path+".replicas", "negative replica settings (%d active of %d)", f.Active, f.Replicas)
	}
	size, replicas := f.Size, f.Replicas
	if size == 0 {
		size = fleetDefaultSize
	}
	if replicas == 0 {
		replicas = 1
	}
	if size > maxFleetSize {
		return pathErr(path+".size", "fleet size %d exceeds the supported maximum %d", size, maxFleetSize)
	}
	if size%replicas != 0 {
		return pathErr(path+".replicas", "fleet size %d not divisible into replica groups of %d", size, replicas)
	}
	if f.RateIOPS < 0 {
		return pathErr(path+".rate_iops", "negative arrival rate %v", f.RateIOPS)
	}
	if len(f.Arrivals) > 0 {
		if f.RateIOPS != 0 {
			return pathErr(path+".rate_iops", "rate_iops and arrivals are mutually exclusive (the schedule's first step sets the opening rate)")
		}
		if f.Arrivals[0].At != 0 {
			return pathErr(path+".arrivals[0].at", "rate schedule must start at 0, got %v", f.Arrivals[0].At.D())
		}
		for i, rs := range f.Arrivals {
			if rs.RateIOPS <= 0 {
				return pathErr(fmt.Sprintf("%s.arrivals[%d].rate_iops", path, i), "rate step needs a positive rate, got %v", rs.RateIOPS)
			}
			if i > 0 && rs.At <= f.Arrivals[i-1].At {
				return pathErr(fmt.Sprintf("%s.arrivals[%d].at", path, i), "rate schedule not strictly increasing at %v", rs.At.D())
			}
		}
	}
	if len(f.Churn) > 0 {
		// Track per-profile live group counts through the schedule so
		// every removal is known to have a target and no cohort ever
		// empties out — the same walk serve's normalization does, but
		// failing here names the offending spec path.
		profiles := f.Profiles
		if len(profiles) == 0 {
			profiles = []string{"SSD2"}
		}
		live := make(map[string]int, len(profiles))
		for g := 0; g < size/replicas; g++ {
			live[profiles[g%len(profiles)]]++
		}
		for i, ev := range f.Churn {
			epath := fmt.Sprintf("%s.churn[%d]", path, i)
			if ev.At <= 0 {
				return pathErr(epath+".at", "churn event needs a positive time, got %v", ev.At.D())
			}
			if i > 0 && ev.At <= f.Churn[i-1].At {
				return pathErr(epath+".at", "churn schedule not strictly increasing at %v", ev.At.D())
			}
			if _, ok := live[ev.Profile]; !ok {
				return pathErr(epath+".profile", "churn event addresses unknown cohort %q (profiles are %s)",
					ev.Profile, strings.Join(profiles, ", "))
			}
			if ev.Add < 0 || ev.Remove < 0 || ev.Add+ev.Remove == 0 {
				return pathErr(epath, "churn event must add or remove at least one group (add %d, remove %d)", ev.Add, ev.Remove)
			}
			if ev.Warmup < 0 {
				return pathErr(epath+".warmup", "negative warm-up %v", ev.Warmup.D())
			}
			live[ev.Profile] += ev.Add
			if ev.Remove >= live[ev.Profile] {
				return pathErr(epath+".remove", "removes %d of cohort %q's %d live groups (at least one must remain)",
					ev.Remove, ev.Profile, live[ev.Profile])
			}
			live[ev.Profile] -= ev.Remove
		}
	}
	switch f.Arrival {
	case "", "poisson", "uniform":
	default:
		return pathErr(path+".arrival", "arrival must be \"poisson\" or \"uniform\", got %q", f.Arrival)
	}
	if f.CapTolFrac < 0 {
		return pathErr(path+".cap_tol_frac", "negative cap tolerance %v", f.CapTolFrac)
	}
	if f.FaultFrac < 0 || f.FaultFrac > 1 {
		return pathErr(path+".fault_frac", "fault fraction %v out of [0, 1]", f.FaultFrac)
	}
	if f.Budget != "" && f.Budget != "max" {
		if _, err := serve.ParseSchedule(f.Budget, size); err != nil {
			return pathErr(path+".budget", "%v", err)
		}
	}
	if m := f.Meso; m != nil {
		if m.DwellPeriods < 0 {
			return pathErr(path+".meso.dwell_periods", "negative dwell %d", m.DwellPeriods)
		}
		if m.DriftTolFrac < 0 {
			return pathErr(path+".meso.drift_tol_frac", "negative drift tolerance %v", m.DriftTolFrac)
		}
		if m.GroupMin < 0 {
			return pathErr(path+".meso.group_min", "negative group minimum %d", m.GroupMin)
		}
		if m.Probes < 0 {
			return pathErr(path+".meso.probes", "negative probe count %d", m.Probes)
		}
		if m.Probes > 0 && m.GroupMin == 0 {
			return pathErr(path+".meso.probes", "probe count set without group parking (set group_min)")
		}
		if m.GroupMin > 0 {
			probes := m.Probes
			if probes == 0 {
				probes = 2 // serve's default probe count
			}
			if probes >= m.GroupMin {
				return pathErr(path+".meso.probes", "probe count %d must be below group_min %d (a cohort that is all probes has nothing to virtualize)",
					probes, m.GroupMin)
			}
		}
	}
	if c := f.Calib; c != nil {
		if c.PointRuntime.D() < 0 {
			return pathErr(path+".calib.point_runtime", "negative cell runtime %v", c.PointRuntime.D())
		}
		if c.Warmup.D() < 0 {
			return pathErr(path+".calib.warmup", "negative warmup %v", c.Warmup.D())
		}
		if c.Folds == 1 || c.Folds < 0 {
			return pathErr(path+".calib.folds", "cross-validation needs at least 2 folds, got %d", c.Folds)
		}
	}
	if len(f.Faults) == 0 {
		return nil
	}
	for i, ff := range f.Faults {
		fpath := fmt.Sprintf("%s.faults[%d]", path, i)
		// O(1) inverse lookup instead of enumerating every instance
		// name: grid validation re-checks fault scripts per point, so
		// this path must stay cheap at maxFleetSize × maxCampaignPoints.
		prof, idx, err := serve.ParseInstanceName(ff.Device)
		if err != nil || idx >= size || f.profile(idx, replicas) != prof {
			return pathErr(fpath+".device", "no fleet instance named %q (names are profile#index, e.g. %q)",
				ff.Device, serve.InstanceName(f.profile(0, replicas), 0))
		}
		if len(ff.Windows) == 0 {
			return pathErr(fpath+".windows", "fault script needs at least one window")
		}
		for j, w := range ff.Windows {
			if err := w.validate(fmt.Sprintf("%s.windows[%d]", fpath, j)); err != nil {
				return err
			}
		}
	}
	return nil
}

// profile returns the catalog profile of fleet device index i, given
// the resolved replica-group size.
func (f *FleetSpec) profile(i, replicas int) string {
	profiles := f.Profiles
	if len(profiles) == 0 {
		profiles = []string{"SSD2"}
	}
	return profiles[(i/replicas)%len(profiles)]
}

func (c *ChaosSpec) validate(path string) error {
	d := c.WithDefaults()
	if d.GovBudgetW < 0 || d.FleetBudgetW < 0 || d.AuditThresholdW < 0 {
		return pathErr(path, "negative power budget")
	}
	if d.IOErrorProb < 0 || d.IOErrorProb > 1 {
		return pathErr(path+".io_error_prob", "probability %v out of [0, 1]", d.IOErrorProb)
	}
	if d.Active > d.Replicas {
		return pathErr(path+".active", "active count %d exceeds replicas %d", d.Active, d.Replicas)
	}
	if d.RateIOPS < 0 {
		return pathErr(path+".rate_iops", "negative arrival rate %v", d.RateIOPS)
	}
	if c.Racks < 0 || c.LeavesPerRack < 0 || c.Staged < 0 || c.Restaged < 0 || c.CapState < 0 {
		return pathErr(path, "negative rollout shape")
	}
	if d.Racks > maxRolloutDim || d.LeavesPerRack > maxRolloutDim {
		return pathErr(path, "rollout shape %dx%d exceeds the supported maximum %d per dimension",
			d.Racks, d.LeavesPerRack, maxRolloutDim)
	}
	if d.Staged > d.Racks*d.LeavesPerRack {
		return pathErr(path+".staged", "cannot stage %d of %d leaves", d.Staged, d.Racks*d.LeavesPerRack)
	}
	return nil
}

func knownProfile(p string, known []string) bool {
	for _, k := range known {
		if k == p {
			return true
		}
	}
	return false
}

// arrivalKind maps an arrival string ("" means the given default).
func arrivalKind(s string, def workload.Arrival) (workload.Arrival, error) {
	switch s {
	case "":
		return def, nil
	case "closed":
		return workload.Closed, nil
	case "poisson":
		return workload.OpenPoisson, nil
	case "uniform":
		return workload.OpenUniform, nil
	}
	return 0, fmt.Errorf("unknown arrival kind %q", s)
}
