package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"wattio/internal/grid"
	"wattio/internal/serve"
)

// maxCampaignPoints bounds a grid's expansion: a spec that passes
// Validate must always be cheap enough to expand, and a campaign that
// large should be split rather than run as one family.
const maxCampaignPoints = 4096

// GridSpec is the version-2 campaign stanza: each populated axis lists
// the values one fleet knob sweeps over, and the spec expands into the
// full cross-product of every populated axis. Axis order is fixed
// (budgets, fleet_sizes, rates, fault_seeds, fault_fracs, replicas) and
// expansion is lexicographic in that order, so a campaign's point
// family — names, ordering, and per-point seeds — is a pure function of
// the spec.
type GridSpec struct {
	// Budgets lists budget schedules in serve.ParseSchedule syntax
	// ("0s:14.6pd,1s:11pd"), or "max" for a never-binding budget.
	Budgets []string `json:"budgets,omitempty"`
	// FleetSizes lists fleet device counts.
	FleetSizes []int `json:"fleet_sizes,omitempty"`
	// Rates lists open-loop arrival rates in IOPS per active device.
	Rates []float64 `json:"rates,omitempty"`
	// FaultSeeds lists fault-injection seeds: each value replaces the
	// spec's fault_seed, replaying the same traffic under a different
	// fault draw.
	FaultSeeds []uint64 `json:"fault_seeds,omitempty"`
	// FaultFracs lists fractions of devices given an injected fault
	// window (fault intensity).
	FaultFracs []float64 `json:"fault_fracs,omitempty"`
	// Replicas lists mirror-group sizes.
	Replicas []int `json:"replicas,omitempty"`
}

// Axis describes one populated grid axis: its short key (used in point
// labels and seed derivation), its spec path (used in errors), and its
// value count.
type Axis struct {
	Key  string
	Path string
	Len  int
}

// gridAxis couples an Axis with the closure that applies one of its
// values to a point spec.
type gridAxis struct {
	Axis
	apply func(sp *Spec, i int)
	value func(i int) string // rendering for reports and errors
}

// axes returns the populated axes in their fixed expansion order.
// Axis keys feed point labels and seed derivation, so they are part of
// the determinism contract: renaming one would renumber every
// campaign's seeds.
func (g *GridSpec) axes() []gridAxis {
	var out []gridAxis
	if g.Budgets != nil {
		out = append(out, gridAxis{
			Axis:  Axis{Key: "b", Path: "grid.budgets", Len: len(g.Budgets)},
			apply: func(sp *Spec, i int) { sp.Fleet.Budget = g.Budgets[i] },
			value: func(i int) string { return g.Budgets[i] },
		})
	}
	if g.FleetSizes != nil {
		out = append(out, gridAxis{
			Axis:  Axis{Key: "n", Path: "grid.fleet_sizes", Len: len(g.FleetSizes)},
			apply: func(sp *Spec, i int) { sp.Fleet.Size = g.FleetSizes[i] },
			value: func(i int) string { return strconv.Itoa(g.FleetSizes[i]) },
		})
	}
	if g.Rates != nil {
		out = append(out, gridAxis{
			Axis:  Axis{Key: "r", Path: "grid.rates", Len: len(g.Rates)},
			apply: func(sp *Spec, i int) { sp.Fleet.RateIOPS = g.Rates[i] },
			value: func(i int) string { return strconv.FormatFloat(g.Rates[i], 'g', -1, 64) },
		})
	}
	if g.FaultSeeds != nil {
		out = append(out, gridAxis{
			Axis:  Axis{Key: "fs", Path: "grid.fault_seeds", Len: len(g.FaultSeeds)},
			apply: func(sp *Spec, i int) { sp.FaultSeed = g.FaultSeeds[i] },
			value: func(i int) string { return strconv.FormatUint(g.FaultSeeds[i], 10) },
		})
	}
	if g.FaultFracs != nil {
		out = append(out, gridAxis{
			Axis:  Axis{Key: "ff", Path: "grid.fault_fracs", Len: len(g.FaultFracs)},
			apply: func(sp *Spec, i int) { sp.Fleet.FaultFrac = g.FaultFracs[i] },
			value: func(i int) string { return strconv.FormatFloat(g.FaultFracs[i], 'g', -1, 64) },
		})
	}
	if g.Replicas != nil {
		out = append(out, gridAxis{
			Axis:  Axis{Key: "rep", Path: "grid.replicas", Len: len(g.Replicas)},
			apply: func(sp *Spec, i int) { sp.Fleet.Replicas = g.Replicas[i] },
			value: func(i int) string { return strconv.Itoa(g.Replicas[i]) },
		})
	}
	return out
}

// Axes lists the populated axes in expansion order — the campaign
// executor reports the grid shape from it.
func (g *GridSpec) Axes() []Axis {
	ga := g.axes()
	out := make([]Axis, len(ga))
	for i, a := range ga {
		out[i] = a.Axis
	}
	return out
}

// validate runs the axis-level checks: a present axis must be
// non-empty, its values must be individually valid and pairwise
// distinct (budget schedules compare by canonical serve.ScheduleKey, so
// two spellings of one schedule are duplicates), and the expansion must
// stay under maxCampaignPoints. Cross-axis constraints (for example a
// fleet size not divisible by a replica count) are caught by the
// per-point validation that expansion runs afterwards.
func (g *GridSpec) validate(path string, s *Spec) error {
	if len(g.axes()) == 0 {
		return pathErr(path, "grid needs at least one axis (budgets, fleet_sizes, rates, fault_seeds, fault_fracs, replicas)")
	}
	if s.Experiment != "fleet" {
		return pathErr(path, "grid campaigns sweep fleet knobs and need experiment \"fleet\", got %q", s.Experiment)
	}
	if g.Budgets != nil {
		if err := axisValues(path+".budgets", g.Budgets, func(b string) (string, error) {
			if b == "max" {
				return "max", nil
			}
			return serve.ScheduleKey(b)
		}); err != nil {
			return err
		}
	}
	if g.FleetSizes != nil {
		if err := axisValues(path+".fleet_sizes", g.FleetSizes, func(n int) (string, error) {
			if n < 1 {
				return "", fmt.Errorf("fleet size %d must be positive", n)
			}
			if n > maxFleetSize {
				return "", fmt.Errorf("fleet size %d exceeds the supported maximum %d", n, maxFleetSize)
			}
			return strconv.Itoa(n), nil
		}); err != nil {
			return err
		}
	}
	if g.Rates != nil {
		if err := axisValues(path+".rates", g.Rates, func(r float64) (string, error) {
			if r <= 0 {
				return "", fmt.Errorf("arrival rate %v must be positive", r)
			}
			return strconv.FormatFloat(r, 'g', -1, 64), nil
		}); err != nil {
			return err
		}
	}
	if g.FaultSeeds != nil {
		if err := axisValues(path+".fault_seeds", g.FaultSeeds, func(v uint64) (string, error) {
			return strconv.FormatUint(v, 10), nil
		}); err != nil {
			return err
		}
	}
	if g.FaultFracs != nil {
		if err := axisValues(path+".fault_fracs", g.FaultFracs, func(f float64) (string, error) {
			if f < 0 || f > 1 {
				return "", fmt.Errorf("fault fraction %v out of [0, 1]", f)
			}
			return strconv.FormatFloat(f, 'g', -1, 64), nil
		}); err != nil {
			return err
		}
	}
	if g.Replicas != nil {
		if err := axisValues(path+".replicas", g.Replicas, func(n int) (string, error) {
			if n < 1 {
				return "", fmt.Errorf("replica count %d must be positive", n)
			}
			return strconv.Itoa(n), nil
		}); err != nil {
			return err
		}
	}
	lens := make([]int, 0, 6)
	for _, a := range g.axes() {
		lens = append(lens, a.Len)
	}
	if n, ok := grid.Product(lens, maxCampaignPoints); !ok {
		return pathErr(path, "expansion exceeds the %d-point campaign ceiling", maxCampaignPoints)
	} else if n == 0 {
		// Unreachable once empty axes are rejected, but keep expansion
		// honest if that ever changes.
		return pathErr(path, "grid expands to zero points")
	}
	return nil
}

// axisValues checks one axis: every value passes check (which also
// returns the value's canonical key), and no two values share a key.
func axisValues[T any](path string, vals []T, check func(T) (string, error)) error {
	if len(vals) == 0 {
		return pathErr(path, "axis present but empty (omit the field or list at least one value)")
	}
	seen := make(map[string]int, len(vals))
	for i, v := range vals {
		key, err := check(v)
		if err != nil {
			return pathErr(fmt.Sprintf("%s[%d]", path, i), "%v", err)
		}
		if j, dup := seen[key]; dup {
			return pathErr(fmt.Sprintf("%s[%d]", path, i), "duplicates %s[%d] (%v)", path, j, v)
		}
		seen[key] = i
	}
	return nil
}

// GridPoint is one expanded campaign point: its label (axis keys and
// coordinates, e.g. "b1-n0-fs2"), its grid coordinates in axis order,
// and the fully-resolved version-2 point spec (grid stanza stripped,
// axis values applied, seed derived).
type GridPoint struct {
	Label  string
	Coords []int
	Spec   *Spec
}

// Expand expands the spec into its deterministically-ordered campaign
// family: the cross-product of every populated grid axis, lexicographic
// in grid coordinates. Each point spec is named
// "<campaign>/<label>", carries the axis values of its coordinates, and
// derives its seed from the campaign seed plus its coordinates (see
// PointSeed) — so appending an axis, or appending values to an existing
// axis, never perturbs the seeds of the points that already existed. A
// spec without a grid expands to its single point unchanged.
func (s *Spec) Expand() ([]GridPoint, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s.expandPoints()
}

// expandPoints does the expansion proper, validating each resolved
// point; Validate calls it (through gridded specs) so an invalid
// cross-axis combination is a validation error with the point named,
// and Expand calls it after Validate.
func (s *Spec) expandPoints() ([]GridPoint, error) {
	if s.Grid == nil {
		return []GridPoint{{Label: s.Name, Spec: s.Clone()}}, nil
	}
	axes := s.Grid.axes()
	lens := make([]int, len(axes))
	keys := make([]string, len(axes))
	for i, a := range axes {
		lens[i] = a.Len
		keys[i] = a.Key
	}
	coords := grid.Coords(lens)
	out := make([]GridPoint, 0, len(coords))
	for _, c := range coords {
		pt := s.Clone()
		pt.Grid = nil
		if pt.Fleet == nil {
			pt.Fleet = &FleetSpec{}
		}
		var label strings.Builder
		for ai, a := range axes {
			a.apply(pt, c[ai])
			if ai > 0 {
				label.WriteByte('-')
			}
			label.WriteString(a.Key)
			label.WriteString(strconv.Itoa(c[ai]))
		}
		pt.Name = s.Name + "/" + label.String()
		pt.Seed = PointSeed(s.Seed, keys, c)
		if err := pt.Validate(); err != nil {
			return nil, fmt.Errorf("scenario: grid point %s: %w", label.String(), err)
		}
		out = append(out, GridPoint{Label: label.String(), Coords: c, Spec: pt})
	}
	return out, nil
}

// PointSeed derives a grid point's workload seed from the campaign seed
// and the point's grid coordinates. Each axis at a non-zero coordinate
// contributes a mix of its key and index; axes sitting at coordinate 0
// contribute nothing, so appending a new axis (every existing point
// lands at its coordinate 0) or appending values to an existing axis
// never changes the seeds of points that already existed. Contributions
// are XOR-folded, so the derivation is independent of axis order too.
func PointSeed(campaign uint64, axisKeys []string, coords []int) uint64 {
	s := campaign
	for ai, c := range coords {
		if c == 0 {
			continue
		}
		h := uint64(14695981039346656037) // FNV-1a offset basis
		for _, b := range []byte(axisKeys[ai]) {
			h = (h ^ uint64(b)) * 1099511628211
		}
		h = (h ^ uint64(c)) * 1099511628211
		s ^= mix64(h)
	}
	return s
}

// mix64 is the splitmix64 finalizer: full-avalanche mixing so nearby
// (axis, index) pairs land on well-separated seeds.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
