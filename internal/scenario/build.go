package scenario

import (
	"fmt"
	"time"

	"wattio/internal/calib"
	"wattio/internal/catalog"
	"wattio/internal/device"
	"wattio/internal/fault"
	"wattio/internal/serve"
	"wattio/internal/sim"
	"wattio/internal/workload"
)

// Fleet-experiment defaults the builders fill into zero fleet fields.
// The stepped budget walks the fleet down to its low-power plan and
// partway back up, so one run shows both a curtailment (load shed,
// tail inflation) and a recovery.
const (
	fleetDefaultSize = 64
	fleetDefaultRate = 7000 // IOPS per active device: above ps2's saturated rate, below ps0's
	fleetHighPD      = 14.6 // W per device: everything at ps0
	fleetLowPD       = 10.5 // forces most of the fleet to ps2
	fleetMidPD       = 12.0 // recovery: ps1 becomes affordable
)

// ServeSpec materializes the spec's fleet section (nil = all defaults)
// into the serving engine's spec, with horizon as the virtual serving
// time. Budget semantics: "" takes the stepped curtail-and-recover
// default, "max" a never-binding budget, anything else a
// serve.ParseSchedule schedule scaled by the resolved fleet size.
func (s *Spec) ServeSpec(horizon time.Duration) (serve.Spec, error) {
	f := s.Fleet
	if f == nil {
		f = &FleetSpec{}
	}
	size := f.Size
	if size == 0 {
		size = fleetDefaultSize
	}
	rate := f.RateIOPS
	if rate == 0 {
		rate = fleetDefaultRate
	}
	arr, err := arrivalKind(f.Arrival, workload.OpenPoisson)
	if err != nil {
		return serve.Spec{}, pathErr("fleet.arrival", "%v", err)
	}
	sp := serve.Spec{
		Profiles:        f.Profiles,
		Size:            size,
		Shards:          f.Shards,
		Replicas:        f.Replicas,
		Active:          f.Active,
		Read:            f.Read,
		Seq:             f.Seq,
		ChunkBytes:      f.ChunkBytes,
		Depth:           f.Depth,
		Batch:           f.Batch,
		QueueCap:        f.QueueCap,
		RateIOPS:        rate,
		Arrival:         arr,
		Horizon:         horizon,
		ControlPeriod:   f.ControlPeriod.D(),
		CapTolFrac:      f.CapTolFrac,
		Seed:            s.Seed,
		FaultSeed:       s.FaultSeed,
		FaultFrac:       f.FaultFrac,
		CheckInvariants: !f.SkipInvariants,
	}
	for _, rs := range f.Arrivals {
		sp.Rates = append(sp.Rates, workload.RateStep{At: rs.At.D(), IOPS: rs.RateIOPS})
	}
	for _, ev := range f.Churn {
		sp.Churn = append(sp.Churn, serve.ChurnEvent{
			At:      ev.At.D(),
			Profile: ev.Profile,
			Add:     ev.Add,
			Remove:  ev.Remove,
			Warmup:  ev.Warmup.D(),
		})
	}
	if m := f.Meso; m != nil && m.Enable {
		sp.Meso = true
		sp.MesoDwellPeriods = m.DwellPeriods
		sp.MesoDriftTolFrac = m.DriftTolFrac
		sp.MesoGroupMin = m.GroupMin
		sp.MesoProbes = m.Probes
	}
	if c := f.Calib; c != nil && c.Enable {
		profiles := f.Profiles
		if len(profiles) == 0 {
			profiles = []string{"SSD2"}
		}
		opt := calib.Options{
			PointRuntime: c.PointRuntime.D(),
			Warmup:       c.Warmup.D(),
			Seed:         c.Seed,
			Folds:        c.Folds,
		}
		sp.Fitted = make(map[string]*calib.Model, len(profiles))
		for _, p := range profiles {
			fit, err := calib.FitClass(p, opt)
			if err != nil {
				return serve.Spec{}, pathErr("fleet.calib", "%v", err)
			}
			sp.Fitted[p] = fit.Model
		}
	}
	switch f.Budget {
	case "max":
		// nil schedule → serve's never-binding maximum-power default.
	case "":
		pd := float64(size)
		sp.Budget = []serve.BudgetStep{
			{At: 0, FleetW: fleetHighPD * pd},
			{At: horizon / 3, FleetW: fleetLowPD * pd},
			{At: 2 * horizon / 3, FleetW: fleetMidPD * pd},
		}
	default:
		b, err := serve.ParseSchedule(f.Budget, size)
		if err != nil {
			return serve.Spec{}, pathErr("fleet.budget", "%v", err)
		}
		sp.Budget = b
	}
	for i, ff := range f.Faults {
		wins := make([]fault.Window, len(ff.Windows))
		for j, w := range ff.Windows {
			fw, err := w.Window()
			if err != nil {
				return serve.Spec{}, pathErr(fmt.Sprintf("fleet.faults[%d].windows[%d].kind", i, j), "%v", err)
			}
			wins[j] = fw
		}
		sp.Faults = append(sp.Faults, serve.DeviceFault{Device: ff.Device, Windows: wins})
	}
	return sp, nil
}

// BuiltDevice is one materialized scenario device: its instance name
// and the (possibly fault-wrapped) device attached to the engine.
type BuiltDevice struct {
	Name string
	Dev  device.Device
}

// BuildDevices materializes the spec's device list onto an engine.
// Each instance draws its device stream from rng and its fault
// injection stream from frng, both labeled by the instance name, so
// adding or removing one device never perturbs another's draws.
func (s *Spec) BuildDevices(eng *sim.Engine, rng, frng *sim.RNG) ([]BuiltDevice, error) {
	var out []BuiltDevice
	for di, ds := range s.Devices {
		count := ds.Count
		if count == 0 {
			count = 1
		}
		base := ds.Name
		if base == "" {
			base = ds.Profile
		}
		var wins []fault.Window
		for j, w := range ds.Faults {
			fw, err := w.Window()
			if err != nil {
				return nil, pathErr(fmt.Sprintf("devices[%d].faults[%d].kind", di, j), "%v", err)
			}
			wins = append(wins, fw)
		}
		for i := 0; i < count; i++ {
			name := base
			if count > 1 {
				name = fmt.Sprintf("%s%d", base, i)
			}
			d, ok := catalog.NewNamed(ds.Profile, name, eng, rng.Stream(name))
			if !ok {
				return nil, pathErr(fmt.Sprintf("devices[%d].profile", di), "unknown profile %q", ds.Profile)
			}
			dev := device.Device(d)
			if len(wins) > 0 {
				fd, err := fault.New(dev, eng, frng.Stream(name), fault.Profile{Windows: wins})
				if err != nil {
					return nil, pathErr(fmt.Sprintf("devices[%d].faults", di), "%v", err)
				}
				dev = fd
			}
			out = append(out, BuiltDevice{Name: name, Dev: dev})
		}
	}
	return out, nil
}

// Job materializes the workload section into a workload.Job; runtime
// and totalBytes are the scale bounds used when the spec leaves its
// own bounds zero.
func (w *WorkloadSpec) Job(runtime time.Duration, totalBytes int64) (workload.Job, error) {
	op := device.OpWrite
	if w.Op == "read" {
		op = device.OpRead
	}
	pat := workload.Seq
	if w.Pattern == "rand" {
		pat = workload.Rand
	}
	arr, err := arrivalKind(w.Arrival, workload.Closed)
	if err != nil {
		return workload.Job{}, pathErr("workload.arrival", "%v", err)
	}
	j := workload.Job{
		Op:         op,
		Pattern:    pat,
		BS:         w.ChunkBytes,
		Depth:      w.Depth,
		Arrival:    arr,
		RateIOPS:   w.RateIOPS,
		Runtime:    w.Runtime.D(),
		TotalBytes: w.TotalBytes,
	}
	if j.Runtime == 0 {
		j.Runtime = runtime
	}
	if j.TotalBytes == 0 {
		j.TotalBytes = totalBytes
	}
	return j, nil
}

// defaultModelProfiles is the paper's modeled-device set, in its
// published rendering order.
var defaultModelProfiles = []string{"SSD1", "SSD2", "SSD3", "HDD"}

// ModelProfiles returns the catalog profiles the modeling experiments
// (Figure 10, headline) should sweep: the spec's device profiles in
// declaration order with duplicates removed, or the paper's default
// set when the spec is nil or lists no devices.
func (s *Spec) ModelProfiles() []string {
	if s == nil || len(s.Devices) == 0 {
		return append([]string(nil), defaultModelProfiles...)
	}
	seen := map[string]bool{}
	var out []string
	for _, d := range s.Devices {
		if !seen[d.Profile] {
			seen[d.Profile] = true
			out = append(out, d.Profile)
		}
	}
	return out
}
