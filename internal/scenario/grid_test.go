package scenario

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// TestGridValidateRejectsWithPath mirrors TestValidateRejectsWithPath
// for the version-2 grid stanza: every axis-level rejection names the
// offending path, so a bad campaign file is fixable from the error
// alone.
func TestGridValidateRejectsWithPath(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"empty grid", func(s *Spec) { s.Grid = &GridSpec{} }, "at least one axis"},
		{"non-fleet experiment", func(s *Spec) { s.Experiment = "chaos" }, "experiment \"fleet\""},
		{"present but empty axis", func(s *Spec) { s.Grid.FleetSizes = []int{} }, "grid.fleet_sizes"},
		{"bad budget schedule", func(s *Spec) { s.Grid.Budgets[1] = "0s:junk" }, "grid.budgets[1]"},
		{"duplicate budget spelling", func(s *Spec) { s.Grid.Budgets[1] = "0s:14.60pd" }, "grid.budgets[1]"},
		{"zero fleet size", func(s *Spec) { s.Grid.FleetSizes[0] = 0 }, "grid.fleet_sizes[0]"},
		{"oversize fleet size", func(s *Spec) { s.Grid.FleetSizes[1] = maxFleetSize + 2 }, "grid.fleet_sizes[1]"},
		{"duplicate fleet size", func(s *Spec) { s.Grid.FleetSizes = []int{8, 8} }, "grid.fleet_sizes[1]"},
		{"negative rate", func(s *Spec) { s.Grid.Rates = []float64{5000, -1} }, "grid.rates[1]"},
		{"duplicate fault seed", func(s *Spec) { s.Grid.FaultSeeds = []uint64{1, 1} }, "grid.fault_seeds[1]"},
		{"fault frac out of range", func(s *Spec) { s.Grid.FaultFracs = []float64{0.5, 1.5} }, "grid.fault_fracs[1]"},
		{"zero replicas", func(s *Spec) { s.Grid.Replicas = []int{0} }, "grid.replicas[0]"},
		{"point ceiling", func(s *Spec) {
			seeds := make([]uint64, 1025) // 2 budgets x 2 sizes x 1025 seeds = 4100 > 4096
			for i := range seeds {
				seeds[i] = uint64(i)
			}
			s.Grid.FaultSeeds = seeds
		}, "ceiling"},
		{"cross-axis indivisible point", func(s *Spec) { s.Grid.FleetSizes = []int{8, 9} }, "grid point b0-n1"},
		{"point lacks fault target", func(s *Spec) { s.Grid.FleetSizes = []int{8, 2} }, "grid point b0-n1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := BuiltIn("campaign")
			tc.mut(sp)
			err := sp.Validate()
			if err == nil {
				t.Fatal("mutated campaign spec accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestExpandCampaign pins the canonical campaign's family: 8 points in
// lexicographic order with the axis values applied and names derived
// from labels.
func TestExpandCampaign(t *testing.T) {
	sp := BuiltIn("campaign")
	pts, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("expanded to %d points, want 8", len(pts))
	}
	if pts[0].Label != "b0-n0-fs0" || pts[7].Label != "b1-n1-fs1" {
		t.Fatalf("label endpoints %q..%q", pts[0].Label, pts[7].Label)
	}
	for _, pt := range pts {
		if pt.Spec.Grid != nil {
			t.Fatalf("point %s still carries a grid stanza", pt.Label)
		}
		if pt.Spec.Name != "campaign/"+pt.Label {
			t.Fatalf("point %s named %q", pt.Label, pt.Spec.Name)
		}
		wantBudget := sp.Grid.Budgets[pt.Coords[0]]
		wantSize := sp.Grid.FleetSizes[pt.Coords[1]]
		wantSeed := sp.Grid.FaultSeeds[pt.Coords[2]]
		if pt.Spec.Fleet.Budget != wantBudget || pt.Spec.Fleet.Size != wantSize || pt.Spec.FaultSeed != wantSeed {
			t.Fatalf("point %s: budget=%q size=%d fault_seed=%d, want %q/%d/%d",
				pt.Label, pt.Spec.Fleet.Budget, pt.Spec.Fleet.Size, pt.Spec.FaultSeed,
				wantBudget, wantSize, wantSeed)
		}
	}
	// The base point (all coordinates zero) keeps the campaign seed.
	if pts[0].Spec.Seed != sp.Seed {
		t.Fatalf("base point seed %d, want campaign seed %d", pts[0].Spec.Seed, sp.Seed)
	}
}

// TestExpandGridless: a spec without a grid expands to exactly itself.
func TestExpandGridless(t *testing.T) {
	sp := BuiltIn("fleet")
	pts, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Label != "fleet" || pts[0].Spec.Seed != sp.Seed {
		t.Fatalf("gridless expansion: %+v", pts)
	}
}

// randomGrid builds a small random — but always valid — campaign grid
// on top of the canonical campaign spec.
func randomGrid(r *rand.Rand) *Spec {
	sp := BuiltIn("campaign")
	sp.Fleet.Faults = nil // free the fleet-size axis from the scripted target
	g := &GridSpec{}
	budgets := []string{"max", "0s:14.6pd", "0s:11pd", "0s:12pd,100ms:13pd"}
	sizes := []int{4, 8, 12, 16, 24}
	rates := []float64{3000, 5000, 7000, 9000}
	if n := r.Intn(len(budgets) + 1); n > 0 {
		g.Budgets = budgets[:n]
	}
	if n := r.Intn(len(sizes) + 1); n > 0 {
		g.FleetSizes = sizes[:n]
	}
	if n := r.Intn(len(rates) + 1); n > 0 {
		g.Rates = rates[:n]
	}
	if n := r.Intn(4); n > 0 {
		seeds := make([]uint64, n)
		for i := range seeds {
			seeds[i] = uint64(1000 + i) // distinct by construction
		}
		g.FaultSeeds = seeds
	}
	if len(g.axes()) == 0 {
		g.FleetSizes = sizes[:2]
	}
	sp.Grid = g
	return sp
}

// TestGridExpansionProperties brute-forces the expansion invariants
// over random small grids: family size is the product of axis lengths,
// every point validates, point ordering is lexicographic in
// coordinates, and per-point seeds are pairwise distinct.
func TestGridExpansionProperties(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	for trial := 0; trial < 60; trial++ {
		sp := randomGrid(r)
		pts, err := sp.Expand()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := 1
		for _, a := range sp.Grid.Axes() {
			want *= a.Len
		}
		if len(pts) != want {
			t.Fatalf("trial %d: %d points, want product %d", trial, len(pts), want)
		}
		seeds := make(map[uint64]string, len(pts))
		for i, pt := range pts {
			if err := pt.Spec.Validate(); err != nil {
				t.Fatalf("trial %d: point %s does not validate: %v", trial, pt.Label, err)
			}
			if i > 0 && !coordLess(pts[i-1].Coords, pt.Coords) {
				t.Fatalf("trial %d: points not lexicographic at %d: %v then %v",
					trial, i, pts[i-1].Coords, pt.Coords)
			}
			if prev, dup := seeds[pt.Spec.Seed]; dup {
				t.Fatalf("trial %d: points %s and %s share seed %d", trial, prev, pt.Label, pt.Spec.Seed)
			}
			seeds[pt.Spec.Seed] = pt.Label
		}
	}
}

// TestGridSeedStability pins the axis-extension guarantee: appending a
// brand-new axis, or appending values to an existing axis, must not
// change the seed of any point that already existed.
func TestGridSeedStability(t *testing.T) {
	base := BuiltIn("campaign")
	basePts, err := base.Expand()
	if err != nil {
		t.Fatal(err)
	}
	baseSeed := make(map[string]uint64, len(basePts))
	for _, pt := range basePts {
		baseSeed[pt.Label] = pt.Spec.Seed
	}

	// Appending a new axis: every old point sits at the new axis's
	// coordinate 0, and its label grows the new axis key.
	ext := BuiltIn("campaign")
	ext.Grid.Rates = []float64{5000, 9000}
	extPts, err := ext.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(extPts) != 2*len(basePts) {
		t.Fatalf("extended family has %d points, want %d", len(extPts), 2*len(basePts))
	}
	matched := 0
	for _, pt := range extPts {
		if pt.Coords[2] != 0 { // rates axis sits between n and fs
			continue
		}
		old := fmt.Sprintf("b%d-n%d-fs%d", pt.Coords[0], pt.Coords[1], pt.Coords[3])
		want, ok := baseSeed[old]
		if !ok {
			t.Fatalf("no base point for %s", old)
		}
		if pt.Spec.Seed != want {
			t.Fatalf("point %s: seed %d changed from %d after appending the rates axis", pt.Label, pt.Spec.Seed, want)
		}
		matched++
	}
	if matched != len(basePts) {
		t.Fatalf("matched %d of %d base points", matched, len(basePts))
	}

	// Appending values to an existing axis: points at the old
	// coordinates keep their labels and seeds verbatim.
	grown := BuiltIn("campaign")
	grown.Grid.FaultSeeds = append(grown.Grid.FaultSeeds, 3, 4)
	grownPts, err := grown.Expand()
	if err != nil {
		t.Fatal(err)
	}
	bySuffix := make(map[string]uint64, len(grownPts))
	for _, pt := range grownPts {
		bySuffix[pt.Label] = pt.Spec.Seed
	}
	for label, want := range baseSeed {
		got, ok := bySuffix[label]
		if !ok {
			t.Fatalf("grown family lost point %s", label)
		}
		if got != want {
			t.Fatalf("point %s: seed %d changed from %d after growing the fault_seeds axis", label, got, want)
		}
	}
}

// TestPointSeedAxisOrderIndependence: the XOR fold makes the seed a
// set-of-contributions, not a sequence, so reordering axes (with their
// coordinates) cannot change it.
func TestPointSeedAxisOrderIndependence(t *testing.T) {
	a := PointSeed(42, []string{"b", "n", "fs"}, []int{1, 2, 3})
	b := PointSeed(42, []string{"fs", "b", "n"}, []int{3, 1, 2})
	if a != b {
		t.Fatalf("axis order changed the seed: %d vs %d", a, b)
	}
	if PointSeed(42, []string{"b"}, []int{0}) != 42 {
		t.Fatal("coordinate 0 must contribute nothing")
	}
	if PointSeed(42, []string{"b"}, []int{1}) == 42 {
		t.Fatal("non-zero coordinate must perturb the seed")
	}
}

func coordLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// TestGridPointsBuild materializes one non-trivial grid point end to
// end, so expansion output is known to be runnable, not just valid.
func TestGridPointsBuild(t *testing.T) {
	sp := BuiltIn("campaign")
	pts, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range []GridPoint{pts[0], pts[len(pts)-1]} {
		if _, err := pt.Spec.ServeSpec(100 * time.Millisecond); err != nil {
			t.Fatalf("point %s: ServeSpec: %v", pt.Label, err)
		}
	}
}
