package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wattio/internal/sim"
)

var update = flag.Bool("update", false, "rewrite scenarios/*.json from the built-in specs")

// TestBuiltInsValid pins the contract every built-in must satisfy:
// it validates, its canonical encoding is a parse fixed point, and all
// of its builders materialize.
func TestBuiltInsValid(t *testing.T) {
	for _, name := range BuiltInNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			sp := BuiltIn(name)
			if sp == nil {
				t.Fatal("BuiltIn returned nil for a listed name")
			}
			if sp.Name != name {
				t.Errorf("built-in %q names itself %q", name, sp.Name)
			}
			if err := sp.Validate(); err != nil {
				t.Fatalf("built-in does not validate: %v", err)
			}
			canon, err := sp.Canonical()
			if err != nil {
				t.Fatal(err)
			}
			sp2, err := Parse(bytes.NewReader(canon))
			if err != nil {
				t.Fatalf("canonical form does not re-parse: %v", err)
			}
			canon2, err := sp2.Canonical()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(canon, canon2) {
				t.Fatalf("canonical encoding is not a fixed point:\n--- first\n%s\n--- second\n%s", canon, canon2)
			}

			if _, err := sp.ServeSpec(time.Second); err != nil {
				t.Fatalf("ServeSpec: %v", err)
			}
			eng := sim.NewEngine()
			devs, err := sp.BuildDevices(eng, sim.NewRNG(sp.Seed), sim.NewRNG(sp.FaultSeed))
			if err != nil {
				t.Fatalf("BuildDevices: %v", err)
			}
			if len(devs) != 0 && devs[0].Dev == nil {
				t.Fatal("BuildDevices returned a nil device")
			}
			if sp.Workload != nil {
				if _, err := sp.Workload.Job(time.Second, 1<<20); err != nil {
					t.Fatalf("Job: %v", err)
				}
			}
		})
	}
}

// TestScenarioFilesCanonical pins scenarios/<name>.json ==
// BuiltIn(name).Canonical() for every built-in, and rejects stray
// files, so the on-disk specs can never drift from the defaults the
// experiments run. Regenerate with
//
//	go test ./internal/scenario -run TestScenarioFilesCanonical -update
func TestScenarioFilesCanonical(t *testing.T) {
	dir := filepath.Join("..", "..", "scenarios")
	if *update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range BuiltInNames() {
		canon, err := BuiltIn(name).Canonical()
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name+".json")
		if *update {
			if err := os.WriteFile(path, canon, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (regenerate with -update)", err)
			continue
		}
		if !bytes.Equal(got, canon) {
			t.Errorf("%s drifted from the built-in spec (regenerate with -update if intended)", path)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%v (generate with -update)", err)
	}
	for _, e := range entries {
		base := strings.TrimSuffix(e.Name(), ".json")
		if base == e.Name() || BuiltIn(base) == nil {
			t.Errorf("stray file scenarios/%s: every spec there must match a built-in", e.Name())
		}
	}
}

func TestDefault(t *testing.T) {
	if sp := Default("fleet"); sp.Name != "fleet" || sp.Experiment != "fleet" {
		t.Errorf("Default(fleet) = %q/%q", sp.Name, sp.Experiment)
	}
	if sp := Default("chaos"); sp.Name != "chaos" {
		t.Errorf("Default(chaos) = %q", sp.Name)
	}
	sp := Default("fig4")
	if sp.Name != "paper-default" || sp.Experiment != "fig4" {
		t.Errorf("Default(fig4) = %q/%q", sp.Name, sp.Experiment)
	}
	if err := sp.Validate(); err != nil {
		t.Errorf("Default(fig4) does not validate: %v", err)
	}
}

func TestParseStrict(t *testing.T) {
	minimal := `{"version":2,"name":"m","experiment":"all","seed":0}`
	cases := []struct {
		name, body, wantErr string
	}{
		{"unknown field", `{"version":2,"name":"m","experiment":"all","seed":0,"sizee":3}`, "sizee"},
		{"nested unknown field", `{"version":2,"name":"m","experiment":"fleet","seed":0,"fleet":{"sizee":8}}`, "sizee"},
		{"trailing data", minimal + `{}`, "trailing data"},
		{"wrong version", `{"version":99,"name":"m","experiment":"all","seed":0}`, "version"},
		{"stale v1 hints migrate", `{"version":1,"name":"m","experiment":"all","seed":0}`, "-migrate"},
		{"missing name", `{"version":2,"experiment":"all","seed":0}`, "name"},
		{"numeric duration", `{"version":2,"name":"m","experiment":"all","seed":0,"runtime":250}`, "string"},
		{"negative duration", `{"version":2,"name":"m","experiment":"all","seed":0,"runtime":"-5s"}`, "negative"},
		{"not json", `hello`, "scenario"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.body))
			if err == nil {
				t.Fatalf("accepted: %s", tc.body)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
	if _, err := Parse(strings.NewReader(minimal)); err != nil {
		t.Fatalf("minimal spec rejected: %v", err)
	}
}

// TestValidateRejectsWithPath checks each semantic rejection names the
// offending spec path, so a bad file is fixable from the error alone.
func TestValidateRejectsWithPath(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"no name", func(s *Spec) { s.Name = " " }, "name"},
		{"no experiment", func(s *Spec) { s.Experiment = "" }, "experiment"},
		{"bad scale", func(s *Spec) { s.Scale = "huge" }, "scale"},
		{"negative bytes", func(s *Spec) { s.TotalBytes = -1 }, "total_bytes"},
		{"bad profile", func(s *Spec) { s.Devices = []DeviceSpec{{Profile: "NOPE"}} }, "devices[0].profile"},
		{"bad fault kind", func(s *Spec) {
			s.Devices = []DeviceSpec{{Profile: "SSD2", Faults: []FaultWindow{{Kind: "meteor", Dur: Duration(time.Second)}}}}
		}, "devices[0].faults[0].kind"},
		{"zero fault dur", func(s *Spec) {
			s.Devices = []DeviceSpec{{Profile: "SSD2", Faults: []FaultWindow{{Kind: "dropout"}}}}
		}, "devices[0].faults[0].dur"},
		{"oversize count", func(s *Spec) { s.Devices = []DeviceSpec{{Profile: "SSD2", Count: 1 << 20}} }, "devices[0].count"},
		{"bad budget", func(s *Spec) { s.Fleet.Budget = "0s:junk" }, "fleet.budget"},
		{"unknown fleet profile", func(s *Spec) { s.Fleet.Profiles = []string{"NOPE"}; s.Fleet.Faults = nil }, "fleet.profiles[0]"},
		{"unknown fleet instance", func(s *Spec) { s.Fleet.Faults[0].Device = "SSD2#99999" }, "fleet.faults[0].device"},
		{"empty fault windows", func(s *Spec) { s.Fleet.Faults[0].Windows = nil }, "fleet.faults[0].windows"},
		{"indivisible replicas", func(s *Spec) { s.Fleet.Size = 10; s.Fleet.Replicas = 4; s.Fleet.Faults = nil }, "fleet.replicas"},
		{"oversize fleet", func(s *Spec) { s.Fleet.Size = maxFleetSize + 2; s.Fleet.Faults = nil }, "fleet.size"},
		{"fault frac", func(s *Spec) { s.Fleet.FaultFrac = 1.5 }, "fleet.fault_frac"},
		{"bad arrival", func(s *Spec) { s.Fleet.Arrival = "bursty" }, "fleet.arrival"},
		{"negative meso dwell", func(s *Spec) { s.Fleet.Meso = &MesoSpec{Enable: true, DwellPeriods: -1} }, "fleet.meso.dwell_periods"},
		{"negative meso drift", func(s *Spec) { s.Fleet.Meso = &MesoSpec{Enable: true, DriftTolFrac: -0.1} }, "fleet.meso.drift_tol_frac"},
		{"negative group min", func(s *Spec) { s.Fleet.Meso = &MesoSpec{Enable: true, GroupMin: -4} }, "fleet.meso.group_min"},
		{"negative probes", func(s *Spec) { s.Fleet.Meso = &MesoSpec{Enable: true, GroupMin: 4, Probes: -1} }, "fleet.meso.probes"},
		{"probes without group", func(s *Spec) { s.Fleet.Meso = &MesoSpec{Enable: true, Probes: 2} }, "fleet.meso.probes"},
		{"probes at group min", func(s *Spec) { s.Fleet.Meso = &MesoSpec{Enable: true, GroupMin: 4, Probes: 4} }, "fleet.meso.probes"},
		{"default probes at group min", func(s *Spec) { s.Fleet.Meso = &MesoSpec{Enable: true, GroupMin: 2} }, "fleet.meso.probes"},
		{"arrivals with rate", func(s *Spec) {
			s.Fleet.RateIOPS = 500
			s.Fleet.Arrivals = []RateStepSpec{{At: 0, RateIOPS: 500}}
		}, "fleet.rate_iops"},
		{"arrivals late start", func(s *Spec) {
			s.Fleet.RateIOPS = 0
			s.Fleet.Arrivals = []RateStepSpec{{At: Duration(time.Second), RateIOPS: 500}}
		}, "fleet.arrivals[0].at"},
		{"arrivals zero rate", func(s *Spec) {
			s.Fleet.RateIOPS = 0
			s.Fleet.Arrivals = []RateStepSpec{{At: 0, RateIOPS: 0}}
		}, "fleet.arrivals[0].rate_iops"},
		{"arrivals non-increasing", func(s *Spec) {
			s.Fleet.RateIOPS = 0
			s.Fleet.Arrivals = []RateStepSpec{{At: 0, RateIOPS: 1}, {At: 0, RateIOPS: 2}}
		}, "fleet.arrivals[1].at"},
		{"churn unknown cohort", func(s *Spec) {
			s.Fleet.Churn = []ChurnEventSpec{{At: Duration(time.Second), Profile: "HDD", Add: 1}}
		}, "fleet.churn[0].profile"},
		{"churn at zero", func(s *Spec) {
			s.Fleet.Churn = []ChurnEventSpec{{At: 0, Profile: "SSD2", Add: 1}}
		}, "fleet.churn[0].at"},
		{"churn non-increasing", func(s *Spec) {
			s.Fleet.Churn = []ChurnEventSpec{
				{At: Duration(time.Second), Profile: "SSD2", Add: 1},
				{At: Duration(time.Second), Profile: "SSD2", Remove: 1},
			}
		}, "fleet.churn[1].at"},
		{"churn empty event", func(s *Spec) {
			s.Fleet.Churn = []ChurnEventSpec{{At: Duration(time.Second), Profile: "SSD2"}}
		}, "fleet.churn[0]"},
		{"churn negative warmup", func(s *Spec) {
			s.Fleet.Churn = []ChurnEventSpec{{At: Duration(time.Second), Profile: "SSD2", Add: 1, Warmup: Duration(-time.Millisecond)}}
		}, "fleet.churn[0].warmup"},
		{"churn empties cohort", func(s *Spec) {
			s.Fleet.Churn = []ChurnEventSpec{{At: Duration(time.Second), Profile: "SSD2", Remove: 64}}
		}, "fleet.churn[0].remove"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := BuiltIn("stepped-budget")
			tc.mut(sp)
			err := sp.Validate()
			if err == nil {
				t.Fatal("mutated spec accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name path %q", err, tc.want)
			}
		})
	}

	t.Run("workload op", func(t *testing.T) {
		sp := BuiltIn("powercap")
		sp.Workload.Op = "append"
		if err := sp.Validate(); err == nil || !strings.Contains(err.Error(), "workload.op") {
			t.Fatalf("bad op: %v", err)
		}
	})
	t.Run("chaos active", func(t *testing.T) {
		sp := BuiltIn("chaos")
		sp.Chaos.Active = 5
		if err := sp.Validate(); err == nil || !strings.Contains(err.Error(), "chaos.active") {
			t.Fatalf("active > replicas: %v", err)
		}
	})
}

// TestCloneIndependence: mutating a clone must not leak into the
// built-in it was copied from (the CLI's override layer relies on it).
func TestCloneIndependence(t *testing.T) {
	a := BuiltIn("stepped-budget")
	b := a.Clone()
	b.Fleet.Size = 7
	b.Fleet.Faults[0].Device = "mutated"
	if a.Fleet.Size == 7 || a.Fleet.Faults[0].Device == "mutated" {
		t.Fatal("Clone shares state with its source")
	}
}

// TestServeSpecDefaults pins the flag-free fleet materialization: 64
// devices at 7000 IOPS under the stepped curtail-and-recover schedule.
func TestServeSpecDefaults(t *testing.T) {
	sp := &Spec{Version: Version, Name: "d", Experiment: "fleet", Seed: 1}
	ss, err := sp.ServeSpec(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Size != 64 || ss.RateIOPS != 7000 {
		t.Fatalf("defaults: %+v", ss)
	}
	if len(ss.Budget) != 3 || ss.Budget[1].At != time.Second || ss.Budget[2].At != 2*time.Second {
		t.Fatalf("stepped default budget: %+v", ss.Budget)
	}
	if ss.Budget[0].FleetW != 14.6*64 {
		t.Fatalf("high step: %v", ss.Budget[0].FleetW)
	}

	sp.Fleet = &FleetSpec{Budget: "max"}
	ss, err = sp.ServeSpec(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Budget != nil {
		t.Fatalf("budget \"max\" should leave the schedule nil, got %+v", ss.Budget)
	}
}

// TestServeSpecMeso pins the meso stanza's mapping: absent or disabled
// leaves the serving tier off, enabled carries the thresholds through.
func TestServeSpecMeso(t *testing.T) {
	sp := &Spec{Version: Version, Name: "m", Experiment: "meso", Seed: 1,
		Fleet: &FleetSpec{Budget: "max"}}
	ss, err := sp.ServeSpec(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Meso {
		t.Fatal("meso on without a stanza")
	}

	sp.Fleet.Meso = &MesoSpec{DwellPeriods: 5, DriftTolFrac: 0.2}
	if ss, err = sp.ServeSpec(time.Second); err != nil {
		t.Fatal(err)
	}
	if ss.Meso || ss.MesoDwellPeriods != 0 {
		t.Fatalf("disabled stanza leaked into serve spec: %+v", ss)
	}

	sp.Fleet.Meso.Enable = true
	if ss, err = sp.ServeSpec(time.Second); err != nil {
		t.Fatal(err)
	}
	if !ss.Meso || ss.MesoDwellPeriods != 5 || ss.MesoDriftTolFrac != 0.2 {
		t.Fatalf("meso stanza mapping: %+v", ss)
	}
}

// TestBuildDevicesNaming pins instance naming and per-device stream
// isolation: count>1 expands to name0..nameN, and scripting a fault on
// one device must not change another's draws.
func TestBuildDevicesNaming(t *testing.T) {
	sp := &Spec{
		Version: Version, Name: "n", Experiment: "all", Seed: 3,
		Devices: []DeviceSpec{
			{Profile: "SSD2"},
			{Profile: "EVO", Name: "replica", Count: 3},
		},
	}
	eng := sim.NewEngine()
	devs, err := sp.BuildDevices(eng, sim.NewRNG(3), sim.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"SSD2", "replica0", "replica1", "replica2"}
	if len(devs) != len(want) {
		t.Fatalf("built %d devices, want %d", len(devs), len(want))
	}
	for i, d := range devs {
		if d.Name != want[i] {
			t.Errorf("device %d named %q, want %q", i, d.Name, want[i])
		}
		if d.Dev.Name() != want[i] {
			t.Errorf("engine device %d named %q, want %q", i, d.Dev.Name(), want[i])
		}
	}
}
