package scenario

import (
	"sort"
	"time"
)

// builtins are the named canonical scenarios. The files under
// scenarios/ are their canonical encodings — TestScenarioFilesCanonical
// pins file == BuiltIn(name).Canonical() so the on-disk specs can never
// drift from the defaults the experiments run.
var builtins = map[string]func() *Spec{
	// paper-default reproduces the full experiment suite exactly as
	// `powerbench -exp all` runs it: the paper's four modeled devices,
	// the published seeds, quick scale unless overridden.
	"paper-default": func() *Spec {
		return &Spec{
			Version:    Version,
			Name:       "paper-default",
			Notes:      "The paper's evaluation suite: every table and figure at the published seeds. Equivalent to `powerbench -exp all`.",
			Experiment: "all",
			Scale:      "quick",
			Seed:       42,
			FaultSeed:  1,
			Devices: []DeviceSpec{
				{Profile: "SSD1"},
				{Profile: "SSD2"},
				{Profile: "SSD3"},
				{Profile: "HDD"},
			},
		}
	},
	// fleet is the fleet experiment's default serving run, spelled out:
	// 64 SSD2s at 7000 IOPS per active device under the stepped
	// curtail-and-recover budget (budget "" = that default schedule).
	"fleet": func() *Spec {
		return &Spec{
			Version:    Version,
			Name:       "fleet",
			Notes:      "Fleet serving defaults: 64 devices, 7000 IOPS/device, stepped curtail-and-recover budget. Equivalent to `powerbench -exp fleet`.",
			Experiment: "fleet",
			Scale:      "quick",
			Seed:       42,
			FaultSeed:  1,
			Fleet: &FleetSpec{
				Size:     64,
				RateIOPS: 7000,
			},
		}
	},
	// fleet-1k scales the serving engine to a thousand mirrored devices
	// with a tenth of them faulted; the short runtime keeps a -race CI
	// run affordable.
	"fleet-1k": func() *Spec {
		return &Spec{
			Version:    Version,
			Name:       "fleet-1k",
			Notes:      "Thousand-device mirrored fleet with 10% of devices faulted; short horizon so CI can afford it under -race.",
			Experiment: "fleet",
			Scale:      "quick",
			Runtime:    Duration(500 * time.Millisecond),
			Seed:       42,
			FaultSeed:  1,
			Fleet: &FleetSpec{
				Size:      1000,
				Replicas:  2,
				RateIOPS:  7000,
				FaultFrac: 0.1,
			},
		}
	},
	// chaos pins every knob of the four control-plane fault-recovery
	// phases at its published default.
	"chaos": func() *Spec {
		return &Spec{
			Version:    Version,
			Name:       "chaos",
			Notes:      "Control-plane fault recovery: governor retry, replica failover, budget re-plan, rollout quarantine. Equivalent to `powerbench -exp chaos`.",
			Experiment: "chaos",
			Scale:      "quick",
			Seed:       42,
			FaultSeed:  1,
			Chaos: &ChaosSpec{
				GovBudgetW:      11,
				GovControl:      Duration(50 * time.Millisecond),
				IOErrorProb:     0.2,
				Replicas:        3,
				Active:          2,
				RateIOPS:        3000,
				FleetBudgetW:    22,
				Racks:           2,
				LeavesPerRack:   3,
				Staged:          4,
				Restaged:        2,
				AuditThresholdW: 12,
				CapState:        2,
			},
		}
	},
	// stepped-budget drives the fleet through an explicit multi-step
	// per-device schedule and scripts a dropout onto one named instance
	// — the spec-file spelling of `-budget ... ` plus a fault script no
	// flag can express.
	"stepped-budget": func() *Spec {
		return &Spec{
			Version:    Version,
			Name:       "stepped-budget",
			Notes:      "Explicit per-device budget staircase plus a scripted mid-run dropout on one instance (faults no CLI flag can express).",
			Experiment: "fleet",
			Scale:      "quick",
			Runtime:    Duration(2 * time.Second),
			Seed:       42,
			FaultSeed:  1,
			Fleet: &FleetSpec{
				Size:     64,
				Replicas: 2,
				RateIOPS: 7000,
				Budget:   "0s:14.6pd,600ms:11pd,1200ms:12.5pd",
				Faults: []FleetFault{
					{
						Device: "SSD2#00003",
						Windows: []FaultWindow{
							{Kind: "dropout", Start: Duration(500 * time.Millisecond), Dur: Duration(400 * time.Millisecond)},
						},
					},
				},
			},
		}
	},
	// campaign is the canonical three-axis grid campaign: budget
	// schedule × fleet size × fault seed over a small mirrored fleet
	// with one scripted dropout, 8 points, short horizon so CI can
	// afford the whole family under -race.
	"campaign": func() *Spec {
		return &Spec{
			Version:    Version,
			Name:       "campaign",
			Notes:      "Three-axis campaign (budget schedule x fleet size x fault seed): 8 fleet points with a scripted dropout, sized for CI. Run with `powerfleet campaign`.",
			Experiment: "fleet",
			Scale:      "quick",
			Runtime:    Duration(250 * time.Millisecond),
			Seed:       42,
			FaultSeed:  1,
			Fleet: &FleetSpec{
				Size:     8,
				Replicas: 2,
				RateIOPS: 5000,
				Faults: []FleetFault{
					{
						Device: "SSD2#00003",
						Windows: []FaultWindow{
							{Kind: "dropout", Start: Duration(80 * time.Millisecond), Dur: Duration(60 * time.Millisecond)},
						},
					},
				},
			},
			Grid: &GridSpec{
				Budgets:    []string{"0s:14.6pd", "0s:11pd,125ms:12.5pd"},
				FleetSizes: []int{8, 16},
				FaultSeeds: []uint64{1, 2},
			},
		}
	},
	// meso drives the mesoscale-aggregation experiment: a steady fleet
	// under a never-binding budget, long enough that the dehydration
	// transitions amortize below the 1% energy-agreement gate. The
	// experiment runs it twice, tier off then on, and compares.
	"meso": func() *Spec {
		return &Spec{
			Version:    Version,
			Name:       "meso",
			Notes:      "Mesoscale aggregation tier: steady fleet pair-run (pure event-driven vs hybrid analytic) with event-reduction, energy-agreement, and sentinel-drift gates. Equivalent to `powerbench -exp meso`.",
			Experiment: "meso",
			Scale:      "quick",
			Runtime:    Duration(10 * time.Second),
			Seed:       42,
			FaultSeed:  1,
			Fleet: &FleetSpec{
				Size:     64,
				RateIOPS: 3000,
				Budget:   "max",
				Meso:     &MesoSpec{Enable: true},
			},
		}
	},
	// churn drives the lane-lifecycle experiment: a group-parked fleet
	// under a diurnal rate schedule scales out mid-run (with a real
	// warm-up cost), sheds the extra groups after the peak, and must
	// keep every ledger and invariant probe green through both
	// membership epochs.
	"churn": func() *Spec {
		return &Spec{
			Version:    Version,
			Name:       "churn",
			Notes:      "Lane lifecycle under diurnal load: a group-parked fleet scales out 16 replica groups for the peak (200ms warm-up), drains them back after it, and every energy/IO ledger and invariant probe must stay green. Equivalent to `powerbench -exp churn`.",
			Experiment: "churn",
			Scale:      "quick",
			Runtime:    Duration(4 * time.Second),
			Seed:       42,
			FaultSeed:  1,
			Fleet: &FleetSpec{
				Size:   64,
				Budget: "max",
				Meso:   &MesoSpec{Enable: true, GroupMin: 4},
				Arrivals: []RateStepSpec{
					{At: 0, RateIOPS: 3000},
					{At: Duration(1500 * time.Millisecond), RateIOPS: 1200},
					{At: Duration(3 * time.Second), RateIOPS: 3000},
				},
				Churn: []ChurnEventSpec{
					{At: Duration(1 * time.Second), Profile: "SSD2", Add: 16, Warmup: Duration(200 * time.Millisecond)},
					{At: Duration(2500 * time.Millisecond), Profile: "SSD2", Remove: 16},
				},
			},
		}
	},
	// calib drives the learned-device-model experiment: calibrate every
	// catalog class against its mechanistic simulator, then serve the
	// same mixed fleet twice — mechanistic and fitted — under a
	// never-binding budget and compare. The experiment gates on the
	// cross-validated fit quality and on the differential agreement.
	"calib": func() *Spec {
		return &Spec{
			Version:    Version,
			Name:       "calib",
			Notes:      "Learned device models: NNLS calibration of every catalog class with cross-validated fit gates (R², MAPE), then a differential fleet run — fitted vs mechanistic — gated on power agreement. Equivalent to `powerbench -exp calib`.",
			Experiment: "calib",
			Scale:      "quick",
			Runtime:    Duration(2 * time.Second),
			Seed:       42,
			FaultSeed:  1,
			Fleet: &FleetSpec{
				Profiles: []string{"SSD1", "SSD2", "SSD3", "HDD"},
				Size:     16,
				RateIOPS: 3000,
				Budget:   "max",
				Calib:    &CalibSpec{Enable: true},
			},
		}
	},
	// powercap is the examples/powercap device-and-workload shape: one
	// SSD2 under saturating sequential IO, walked through its power
	// states by the example.
	"powercap": func() *Spec {
		return &Spec{
			Version:    Version,
			Name:       "powercap",
			Notes:      "One SSD2 under saturating sequential IO at seed 7; examples/powercap walks its power states for both ops (Fig. 4 asymmetry).",
			Experiment: "fig4",
			Scale:      "quick",
			Seed:       7,
			Devices:    []DeviceSpec{{Profile: "SSD2"}},
			Workload: &WorkloadSpec{
				Op:         "write",
				Pattern:    "seq",
				ChunkBytes: 256 << 10,
				Depth:      64,
				Runtime:    Duration(10 * time.Second),
				TotalBytes: 2 << 30,
			},
		}
	},
	// redirection is the examples/redirection replica set: four mirrored
	// EVOs at seed 11 serving the example's diurnal read phases.
	"redirection": func() *Spec {
		return &Spec{
			Version:    Version,
			Name:       "redirection",
			Notes:      "Four mirrored EVO replicas at seed 11; examples/redirection resizes the active set over a diurnal read load (cf. SRCMap).",
			Experiment: "prop",
			Scale:      "quick",
			Seed:       11,
			Devices:    []DeviceSpec{{Profile: "EVO", Name: "replica", Count: 4}},
		}
	},
}

// BuiltIn returns a fresh copy of a named built-in scenario, or nil if
// the name is unknown.
func BuiltIn(name string) *Spec {
	mk, ok := builtins[name]
	if !ok {
		return nil
	}
	return mk()
}

// BuiltInNames lists the built-in scenarios in sorted order.
func BuiltInNames() []string {
	out := make([]string, 0, len(builtins))
	for name := range builtins {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Default returns the built-in scenario a bare `-exp` invocation runs:
// the experiment's own built-in when it has one (fleet, chaos), else
// the paper-default suite narrowed to that experiment id.
func Default(expID string) *Spec {
	switch expID {
	case "fleet", "chaos":
		return BuiltIn(expID)
	}
	sp := BuiltIn("paper-default")
	sp.Experiment = expID
	return sp
}
