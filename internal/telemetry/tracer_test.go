package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// chromeDoc mirrors the trace-event JSON Object format for validation.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData"`
}

func TestTracerChromeJSON(t *testing.T) {
	t.Parallel()
	tr := NewTracer(0)
	tr.Span("SSD1/die0", "ssd", "program", 10*time.Microsecond, 250*time.Microsecond)
	tr.Instant("SSD1", "ssd", "throttle_release", 300*time.Microsecond)
	tr.AsyncBegin("io", "workload", "write", 7, 5*time.Microsecond)
	tr.AsyncEnd("io", "workload", "write", 7, 400*time.Microsecond)
	tr.Counter("power_w", 100*time.Microsecond, 8.25)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// 5 events + 3 thread_name metadata records (3 lanes).
	if len(doc.TraceEvents) != 8 {
		t.Fatalf("%d events, want 8", len(doc.TraceEvents))
	}
	var phases = map[string]int{}
	lanes := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		phases[ev.Ph]++
		if ev.Ph == "M" {
			if ev.Name != "thread_name" {
				t.Errorf("metadata event %q, want thread_name", ev.Name)
			}
			lanes[ev.Args["name"].(string)] = true
		}
		if ev.Ph == "X" {
			if ev.TS != 10 || ev.Dur != 240 {
				t.Errorf("span ts=%v dur=%v, want 10/240 µs", ev.TS, ev.Dur)
			}
		}
		if ev.Ph == "C" {
			if ev.Args["value"].(float64) != 8.25 {
				t.Errorf("counter value %v, want 8.25", ev.Args["value"])
			}
		}
	}
	for _, ph := range []string{"X", "i", "b", "e", "C"} {
		if phases[ph] != 1 {
			t.Errorf("phase %q count %d, want 1", ph, phases[ph])
		}
	}
	for _, lane := range []string{"SSD1/die0", "SSD1", "io"} {
		if !lanes[lane] {
			t.Errorf("lane %q has no thread_name metadata", lane)
		}
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
}

func TestTracerEventCap(t *testing.T) {
	t.Parallel()
	tr := NewTracer(10)
	for i := 0; i < 50; i++ {
		tr.Span("lane", "cat", "op", time.Duration(i), time.Duration(i+1))
	}
	if tr.Len() != 10 {
		t.Fatalf("len = %d, want cap 10", tr.Len())
	}
	// 1 metadata + 9 spans stored, 41 dropped.
	if tr.Dropped() != 41 {
		t.Fatalf("dropped = %d, want 41", tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.OtherData["dropped_events"].(float64) != 41 {
		t.Fatalf("otherData dropped_events = %v", doc.OtherData["dropped_events"])
	}
}
