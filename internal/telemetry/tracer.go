package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// traceEvent is one Chrome trace-event (the JSON Array / Object format
// that chrome://tracing and Perfetto load). Timestamps are microseconds
// of virtual time.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   int64          `json:"id,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// DefaultTraceEventCap bounds tracer memory: beyond it events are
// counted as dropped rather than stored. At ~100 bytes an event this is
// on the order of 100 MB, far past what a figure-scale run emits.
const DefaultTraceEventCap = 1_000_000

// Tracer collects Chrome trace-event JSON spans from a run. Components
// emit complete spans onto named lanes (rendered as threads), async
// spans for overlapping work (in-flight IOs), instants for point
// events, and counter samples for continuously varying values (power).
//
// A nil *Tracer discards everything, so instrumented code calls it
// unconditionally. A single Tracer may receive events from many engines
// concurrently (the sweep harness); all methods are mutex-protected —
// tracing is opt-in, so this cost is only paid when asked for.
type Tracer struct {
	mu      sync.Mutex
	events  []traceEvent
	lanes   map[string]int
	cap     int
	dropped int64
}

// NewTracer returns an empty tracer holding at most capEvents events
// (<= 0 means DefaultTraceEventCap).
func NewTracer(capEvents int) *Tracer {
	if capEvents <= 0 {
		capEvents = DefaultTraceEventCap
	}
	return &Tracer{lanes: map[string]int{}, cap: capEvents}
}

// Enabled reports whether events are being collected.
func (t *Tracer) Enabled() bool { return t != nil }

// laneLocked interns a lane name to a tid, emitting the thread_name
// metadata event Chrome uses to label the track.
func (t *Tracer) laneLocked(name string) int {
	id, ok := t.lanes[name]
	if !ok {
		id = len(t.lanes) + 1
		t.lanes[name] = id
		t.events = append(t.events, traceEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: id,
			Args: map[string]any{"name": name},
		})
	}
	return id
}

func (t *Tracer) add(ev traceEvent) {
	if len(t.events) >= t.cap {
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

func usec(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// Span records a complete event on the named lane from start to end.
// Spans on one lane are expected not to overlap (serialized resources:
// a die, the host link, the head assembly).
func (t *Tracer) Span(lane, cat, name string, start, end time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.add(traceEvent{
		Name: name, Cat: cat, Ph: "X",
		TS: usec(start), Dur: usec(end - start),
		PID: 1, TID: t.laneLocked(lane),
	})
}

// AsyncBegin opens an async span; pair with AsyncEnd using the same
// (cat, id). Async spans may overlap freely (in-flight IOs).
func (t *Tracer) AsyncBegin(lane, cat, name string, id int64, at time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.add(traceEvent{Name: name, Cat: cat, Ph: "b", ID: id, TS: usec(at), PID: 1, TID: t.laneLocked(lane)})
}

// AsyncEnd closes an async span opened by AsyncBegin.
func (t *Tracer) AsyncEnd(lane, cat, name string, id int64, at time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.add(traceEvent{Name: name, Cat: cat, Ph: "e", ID: id, TS: usec(at), PID: 1, TID: t.laneLocked(lane)})
}

// Instant records a point event on the named lane (a throttle release,
// a standby command, a cache flush).
func (t *Tracer) Instant(lane, cat, name string, at time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.add(traceEvent{
		Name: name, Cat: cat, Ph: "i", TS: usec(at),
		PID: 1, TID: t.laneLocked(lane),
		Args: map[string]any{"s": "t"}, // thread-scoped instant
	})
}

// Counter records a sampled value series (rendered as a filled track).
func (t *Tracer) Counter(name string, at time.Duration, value float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.add(traceEvent{
		Name: name, Ph: "C", TS: usec(at), PID: 1, TID: 0,
		Args: map[string]any{"value": value},
	})
}

// Len returns the number of collected events (metadata included).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events the cap discarded.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteJSON emits the collected trace in the Chrome trace-event JSON
// Object format, loadable by chrome://tracing and ui.perfetto.dev.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := w.Write([]byte(`{"traceEvents":[]}` + "\n"))
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	doc := struct {
		TraceEvents     []traceEvent   `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData,omitempty"`
	}{
		TraceEvents:     t.events,
		DisplayTimeUnit: "ms",
	}
	if t.dropped > 0 {
		doc.OtherData = map[string]any{"dropped_events": t.dropped}
	}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []traceEvent{}
	}
	return json.NewEncoder(w).Encode(doc)
}
