package telemetry

import (
	"runtime"
	"time"
)

// MemWatch samples the Go runtime heap on a fixed cadence and keeps the
// high-water marks: peak HeapAlloc (live bytes) and peak HeapObjects
// (live object count). It exists for the scale work — a million-device
// hybrid run is judged in bytes per device — and its readings are
// host- and GC-schedule-dependent by nature, so they must never feed a
// golden output; callers print them to the terminal or to benchmark
// metrics only.
type MemWatch struct {
	stop chan struct{}
	done chan struct{}

	peakAlloc   uint64
	peakObjects uint64
}

// WatchMem starts sampling every interval (≤0 takes 50 ms) until Stop.
// Each sample is one runtime.ReadMemStats, which briefly stops the
// world, so the cadence trades precision against overhead.
func WatchMem(interval time.Duration) *MemWatch {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	w := &MemWatch{stop: make(chan struct{}), done: make(chan struct{})}
	w.sample()
	go func() {
		defer close(w.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-tick.C:
				w.sample()
			}
		}
	}()
	return w
}

// sample folds one heap reading into the peaks. Only the watcher
// goroutine and the pre-start/post-stop calls touch the fields, so no
// synchronization is needed beyond the done channel.
func (w *MemWatch) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > w.peakAlloc {
		w.peakAlloc = ms.HeapAlloc
	}
	if ms.HeapObjects > w.peakObjects {
		w.peakObjects = ms.HeapObjects
	}
}

// Stop ends sampling, takes one final reading, and returns the peak
// live-heap bytes and live-object count seen over the watch.
func (w *MemWatch) Stop() (peakAlloc, peakObjects uint64) {
	close(w.stop)
	<-w.done
	w.sample()
	return w.peakAlloc, w.peakObjects
}
