package invariant

import (
	"math"
	"testing"
)

func TestDriftProbe(t *testing.T) {
	var p DriftProbe
	if p.Observations() != 0 || p.WorstFrac() != 0 {
		t.Fatalf("fresh probe: n=%d worst=%v", p.Observations(), p.WorstFrac())
	}
	if err := p.Check(0); err != nil {
		t.Fatalf("fresh probe Check: %v", err)
	}

	p.Observe(10.0, 10.0)
	p.Observe(10.5, 10.0) // 5% high
	p.Observe(9.8, 10.0)  // 2% low
	if p.Observations() != 3 {
		t.Fatalf("Observations = %d, want 3", p.Observations())
	}
	if got := p.WorstFrac(); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("WorstFrac = %v, want 0.05", got)
	}
	if err := p.Check(0.05); err != nil {
		t.Fatalf("Check(0.05) on 5%% drift: %v", err)
	}
	if err := p.Check(0.04); err == nil {
		t.Fatal("Check(0.04) passed a 5% drift")
	}
}

func TestDriftProbeZeroMeasurement(t *testing.T) {
	var p DriftProbe
	p.Observe(1.0, 0)
	if math.IsInf(p.WorstFrac(), 0) || math.IsNaN(p.WorstFrac()) {
		t.Fatalf("WorstFrac = %v on zero measurement", p.WorstFrac())
	}
	if err := p.Check(0.05); err == nil {
		t.Fatal("1 W predicted against 0 W measured passed a 5% tolerance")
	}
}
