// Package invariant provides runtime probes that check physical
// invariants of a running simulation from its public surfaces:
//
//   - energy conservation: the time integral of InstantPower matches the
//     device's accounted energy, and the per-component breakdown
//     partitions the total;
//   - power-cap compliance: average power over any sliding window never
//     exceeds a budget (the NVMe power-state semantics);
//   - clock monotonicity: virtual time observed from scheduled callbacks
//     never runs backward.
//
// Probes attach to an engine, sample while the simulation runs, and are
// interrogated with Check once the run is over. They live outside the
// device models on purpose: a probe only sees what an external observer
// could, so a bookkeeping bug inside a model cannot hide from it.
//
// This package sits beside telemetry but imports sim (the reverse of
// telemetry itself, which sim imports), so it cannot be folded into
// telemetry without a cycle.
package invariant

import (
	"fmt"
	"time"

	"wattio/internal/sim"
)

// Source is the minimal surface a probe clamps onto.
type Source interface {
	InstantPower() float64
}

// EnergyAccounting is the surface the energy-conservation probe needs:
// instantaneous power plus the model's own cumulative accounting.
// ssd.SSD and hdd.HDD implement it.
type EnergyAccounting interface {
	Source
	EnergyJ() float64
	EnergyComponents() (names []string, joules []float64)
}

// EnergyMetered is the surface the cap probe needs.
type EnergyMetered interface {
	EnergyJ() float64
}

// EnergyProbe integrates InstantPower by periodic sampling and compares
// the integral against the device's accounted energy over the probed
// interval. Power in the simulator is piecewise constant between
// events, so a left-Riemann sum converges as the sample period shrinks;
// Check takes a relative tolerance to absorb the residual aliasing.
type EnergyProbe struct {
	eng   *sim.Engine
	src   EnergyAccounting
	every time.Duration

	startT time.Duration
	startE float64
	startC []float64

	lastT    time.Duration
	lastW    float64
	integral float64

	running bool
	tick    *sim.Timer
}

// AttachEnergy starts an energy-conservation probe sampling src every
// sampleEvery of virtual time. Call Stop when the run is over, then
// Check.
func AttachEnergy(eng *sim.Engine, src EnergyAccounting, sampleEvery time.Duration) *EnergyProbe {
	if sampleEvery <= 0 {
		panic("invariant: sample period must be positive")
	}
	_, comps := src.EnergyComponents()
	p := &EnergyProbe{
		eng:    eng,
		src:    src,
		every:  sampleEvery,
		startT: eng.Now(),
		startE: src.EnergyJ(),
		startC: comps,
		lastT:  eng.Now(),
		lastW:  src.InstantPower(),

		running: true,
	}
	p.tick = eng.Periodic(sampleEvery, p.observe)
	return p
}

func (p *EnergyProbe) observe() {
	now := p.eng.Now()
	p.integral += p.lastW * (now - p.lastT).Seconds()
	p.lastT = now
	p.lastW = p.src.InstantPower()
}

// Stop halts sampling and closes the integral at the current virtual
// time. The probe must be stopped before Check.
func (p *EnergyProbe) Stop() {
	if !p.running {
		return
	}
	p.running = false
	if p.tick != nil {
		p.tick.Stop()
	}
	now := p.eng.Now()
	p.integral += p.lastW * (now - p.lastT).Seconds()
	p.lastT = now
}

// IntegralJ returns the sampled integral of InstantPower so far.
func (p *EnergyProbe) IntegralJ() float64 { return p.integral }

// Check verifies energy conservation over the probed interval:
// the device's accounted energy matches the sampled power integral
// within relTol, and the per-component energies partition the total
// exactly (to float rounding). It returns nil if both hold.
func (p *EnergyProbe) Check(relTol float64) error {
	if p.running {
		return fmt.Errorf("invariant: Check on a running energy probe")
	}
	accounted := p.src.EnergyJ() - p.startE
	names, comps := p.src.EnergyComponents()
	var compSum float64
	for i, j := range comps {
		base := 0.0
		if i < len(p.startC) {
			base = p.startC[i]
		}
		if j < base {
			return fmt.Errorf("invariant: component %q energy shrank: %v -> %v J", names[i], base, j)
		}
		compSum += j - base
	}
	if err := relClose(compSum, accounted, 1e-6); err != nil {
		return fmt.Errorf("invariant: component energies do not partition total: sum %v J, total %v J", compSum, accounted)
	}
	if err := relClose(p.integral, accounted, relTol); err != nil {
		return fmt.Errorf("invariant: energy not conserved: integral of InstantPower %v J, accounted %v J (tol %v)",
			p.integral, accounted, relTol)
	}
	return nil
}

func relClose(a, b, tol float64) error {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := b
	if scale < 0 {
		scale = -scale
	}
	if scale < 1e-12 {
		scale = 1e-12
	}
	if diff > tol*scale {
		return fmt.Errorf("%v != %v", a, b)
	}
	return nil
}

// CapProbe checks the NVMe power-state constraint: average power over
// any sliding window of the given length never exceeds capW. It tracks
// cumulative energy checkpoints and evaluates every window ending at a
// sample instant; windows that extend before the probe's start count
// zero power there, matching a device that did not exist yet.
//
// Using the checkpoint at or before the window's left edge slightly
// overestimates each window's energy (by at most one sample period of
// draw), so the probe errs on the strict side.
type CapProbe struct {
	eng    *sim.Engine
	src    EnergyMetered
	capW   float64
	window time.Duration
	every  time.Duration

	startT time.Duration
	startE float64
	ts     []time.Duration
	es     []float64
	left   int // index of newest checkpoint at or before t-window

	worstW  float64
	worstAt time.Duration

	running bool
	tick    *sim.Timer
}

// AttachCap starts a cap probe on src with budget capW over the given
// sliding window, sampling every sampleEvery of virtual time.
func AttachCap(eng *sim.Engine, src EnergyMetered, capW float64, window, sampleEvery time.Duration) *CapProbe {
	switch {
	case capW <= 0:
		panic("invariant: cap must be positive")
	case window <= 0:
		panic("invariant: cap window must be positive")
	case sampleEvery <= 0:
		panic("invariant: sample period must be positive")
	}
	p := &CapProbe{
		eng:    eng,
		src:    src,
		capW:   capW,
		window: window,
		every:  sampleEvery,
		startT: eng.Now(),
		startE: src.EnergyJ(),

		running: true,
	}
	p.ts = append(p.ts, p.startT)
	p.es = append(p.es, 0)
	p.tick = eng.Periodic(sampleEvery, p.observe)
	return p
}

func (p *CapProbe) observe() {
	now := p.eng.Now()
	e := p.src.EnergyJ() - p.startE
	p.ts = append(p.ts, now)
	p.es = append(p.es, e)
	edge := now - p.window
	for p.left+1 < len(p.ts) && p.ts[p.left+1] <= edge {
		p.left++
	}
	avg := (e - p.es[p.left]) / p.window.Seconds()
	if avg > p.worstW {
		p.worstW = avg
		p.worstAt = now
	}
}

// Stop halts sampling after taking one final observation.
func (p *CapProbe) Stop() {
	if !p.running {
		return
	}
	p.running = false
	if p.tick != nil {
		p.tick.Stop()
	}
	p.observe()
}

// WorstWindowW returns the highest window-average power observed.
func (p *CapProbe) WorstWindowW() float64 { return p.worstW }

// Check verifies no window exceeded the cap by more than relTol. The
// tolerance absorbs draws the device does not route through its
// regulator — activity ripple, interface activation, state-transition
// energy — which real caps also exclude from throttling decisions.
func (p *CapProbe) Check(relTol float64) error {
	if p.running {
		return fmt.Errorf("invariant: Check on a running cap probe")
	}
	if p.worstW > p.capW*(1+relTol) {
		return fmt.Errorf("invariant: cap exceeded: worst %v-window average %.3f W at t=%v, cap %.3f W (tol %v)",
			p.window, p.worstW, p.worstAt, p.capW, relTol)
	}
	return nil
}

// ClockProbe observes virtual time from scheduled callbacks and records
// any regression. The engine independently panics if its internal clock
// would run backward; this probe checks the same property from the
// outside, through the public Now surface.
type ClockProbe struct {
	eng   *sim.Engine
	every time.Duration

	last       time.Duration
	ticks      int64
	violations int64
	firstBad   time.Duration

	running bool
	tick    *sim.Timer
}

// AttachClock starts a clock-monotonicity probe.
func AttachClock(eng *sim.Engine, sampleEvery time.Duration) *ClockProbe {
	if sampleEvery <= 0 {
		panic("invariant: sample period must be positive")
	}
	p := &ClockProbe{
		eng:   eng,
		every: sampleEvery,
		last:  eng.Now(),

		running: true,
	}
	p.tick = eng.Periodic(sampleEvery, p.observe)
	return p
}

func (p *ClockProbe) observe() {
	now := p.eng.Now()
	p.ticks++
	if now < p.last {
		if p.violations == 0 {
			p.firstBad = now
		}
		p.violations++
	}
	p.last = now
}

// Stop halts sampling.
func (p *ClockProbe) Stop() {
	if !p.running {
		return
	}
	p.running = false
	if p.tick != nil {
		p.tick.Stop()
	}
}

// Ticks returns how many observations the probe made.
func (p *ClockProbe) Ticks() int64 { return p.ticks }

// Check returns an error if virtual time was ever seen running backward.
func (p *ClockProbe) Check() error {
	if p.violations > 0 {
		return fmt.Errorf("invariant: clock ran backward %d time(s), first at t=%v", p.violations, p.firstBad)
	}
	return nil
}
