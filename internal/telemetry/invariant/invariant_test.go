package invariant

import (
	"strings"
	"testing"
	"time"

	"wattio/internal/catalog"
	"wattio/internal/device"
	"wattio/internal/sim"
	"wattio/internal/workload"
)

// stepUntil advances the engine to at least the given virtual time.
// (Engine.Run would never return while a probe keeps rescheduling.)
func stepUntil(t *testing.T, eng *sim.Engine, until time.Duration) {
	t.Helper()
	for eng.Now() < until {
		if !eng.Step() {
			t.Fatalf("engine drained at t=%v, wanted %v", eng.Now(), until)
		}
	}
}

// constSource is a fake device drawing a fixed wattage, with exact
// energy accounting, for probe-math unit tests.
type constSource struct {
	eng *sim.Engine
	w   float64
}

func (s *constSource) InstantPower() float64 { return s.w }
func (s *constSource) EnergyJ() float64      { return s.w * s.eng.Now().Seconds() }
func (s *constSource) EnergyComponents() ([]string, []float64) {
	return []string{"all"}, []float64{s.EnergyJ()}
}

// lyingSource claims twice the energy its power draw implies — the kind
// of bookkeeping bug the energy probe exists to catch.
type lyingSource struct{ constSource }

func (s *lyingSource) EnergyJ() float64 { return 2 * s.constSource.EnergyJ() }
func (s *lyingSource) EnergyComponents() ([]string, []float64) {
	return []string{"all"}, []float64{s.EnergyJ()}
}

func TestEnergyProbeExactOnConstantSource(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	src := &constSource{eng: eng, w: 5}
	p := AttachEnergy(eng, src, time.Millisecond)
	stepUntil(t, eng, 2*time.Second)
	p.Stop()
	if err := p.Check(1e-9); err != nil {
		t.Fatalf("constant 5 W source failed conservation: %v", err)
	}
	if got := p.IntegralJ(); got < 9.99 || got > 10.01 {
		t.Errorf("integral %v J, want ~10", got)
	}
}

func TestEnergyProbeCatchesBadAccounting(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	src := &lyingSource{constSource{eng: eng, w: 5}}
	p := AttachEnergy(eng, src, time.Millisecond)
	stepUntil(t, eng, time.Second)
	p.Stop()
	err := p.Check(0.05)
	if err == nil {
		t.Fatal("probe accepted a source that double-counts energy")
	}
	if !strings.Contains(err.Error(), "not conserved") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestCapProbeMathAndViolation(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	src := &constSource{eng: eng, w: 5}
	p := AttachCap(eng, src, 4, time.Second, 10*time.Millisecond)
	stepUntil(t, eng, 3*time.Second)
	p.Stop()
	if got := p.WorstWindowW(); got < 4.99 || got > 5.02 {
		t.Errorf("worst window %v W, want ~5", got)
	}
	if err := p.Check(0); err == nil {
		t.Error("5 W source passed a 4 W cap")
	}
	if err := p.Check(0.3); err != nil { // 4 W × 1.3 = 5.2 W budget
		t.Errorf("5 W source failed a 5.2 W budget: %v", err)
	}
}

func TestClockProbeOnBusyEngine(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	p := AttachClock(eng, time.Millisecond)
	// Interleave unrelated events between probe ticks.
	var kick func()
	kick = func() {
		if eng.Now() < 500*time.Millisecond {
			eng.After(137*time.Microsecond, kick)
		}
	}
	kick()
	stepUntil(t, eng, time.Second)
	p.Stop()
	if p.Ticks() < 900 {
		t.Errorf("only %d ticks over 1 s at 1 ms", p.Ticks())
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestSSDInvariants runs the paper's capped device (SSD2 at ps2, its
// most-throttled state) under a sustained sequential write long enough
// to cover full 10 s cap windows, with all three probes attached.
func TestSSDInvariants(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("12 s virtual run")
	}
	eng := sim.NewEngine()
	rng := sim.NewRNG(7)
	dev := catalog.NewSSD2(eng, rng)
	if err := dev.SetPowerState(2); err != nil {
		t.Fatal(err)
	}
	capW := dev.PowerStates()[2].MaxPowerW
	window := catalog.SSD2Config().CapWindow

	energy := AttachEnergy(eng, dev, 250*time.Microsecond)
	cap := AttachCap(eng, dev, capW, window, 10*time.Millisecond)
	clock := AttachClock(eng, time.Millisecond)
	workload.Run(eng, dev, workload.Job{
		Op: device.OpWrite, Pattern: workload.Seq, BS: 256 << 10, Depth: 64,
		Runtime: 12 * time.Second,
	}, rng)
	energy.Stop()
	cap.Stop()
	clock.Stop()

	if err := clock.Check(); err != nil {
		t.Error(err)
	}
	if err := energy.Check(0.05); err != nil {
		t.Error(err)
	}
	// Ripple, interface activation, and transition energy are real draw
	// but outside the regulator, as on real devices; give the cap the
	// same headroom the calibration tests allow (10.5 W on a 10 W cap).
	if err := cap.Check(0.05); err != nil {
		t.Error(err)
	}
	t.Logf("integral %.1f J, accounted %.1f J, worst %v window %.2f W (cap %.0f W)",
		energy.IntegralJ(), dev.EnergyJ(), window, cap.WorstWindowW(), capW)
}

// TestHDDInvariants runs the catalog HDD under mixed random IO with the
// energy probe and a power-envelope cap probe (the HDD has no NVMe cap;
// its invariant is the nameplate envelope: spindle + electronics + seek
// + transfer + interface).
func TestHDDInvariants(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(11)
	dev := catalog.NewHDD(eng, rng)
	cfg := catalog.HDDConfig()
	envelopeW := cfg.PSpindle + cfg.PElec + cfg.PSeek + cfg.PXfer + cfg.PIfaceAct

	energy := AttachEnergy(eng, dev, 200*time.Microsecond)
	cap := AttachCap(eng, dev, envelopeW, time.Second, 5*time.Millisecond)
	clock := AttachClock(eng, time.Millisecond)
	workload.Run(eng, dev, workload.Job{
		Op: device.OpRead, Pattern: workload.Rand, BS: 64 << 10, Depth: 4,
		Runtime: 5 * time.Second,
	}, rng)
	energy.Stop()
	cap.Stop()
	clock.Stop()

	if err := clock.Check(); err != nil {
		t.Error(err)
	}
	if err := energy.Check(0.05); err != nil {
		t.Error(err)
	}
	if err := cap.Check(0); err != nil {
		t.Error(err)
	}
	t.Logf("integral %.1f J, accounted %.1f J, worst 1 s window %.2f W (envelope %.2f W)",
		energy.IntegralJ(), dev.EnergyJ(), cap.WorstWindowW(), envelopeW)
}
