package invariant

import "fmt"

// DriftProbe checks the mesoscale tier's central assumption: that a
// parked lane's analytic operating point still describes the lane. The
// serving engine periodically rehydrates one parked lane (a sentinel),
// re-measures its steady draw mechanistically, and feeds both numbers
// here; the probe records the worst relative disagreement. Unlike the
// engine-attached probes it has no sampling loop of its own — the
// observations only exist where the hybrid tier makes them — but the
// same contract holds: observe while running, interrogate with Check
// after.
type DriftProbe struct {
	n         int
	worst     float64
	worstPred float64
	worstMeas float64
}

// Observe records one sentinel comparison between an aggregate's
// calibrated draw and the fresh mechanistic re-measurement, and
// returns this observation's relative disagreement so the caller can
// act on it (the serving engine bars a lane whose single observation
// exceeds the tolerance).
func (p *DriftProbe) Observe(predictedW, measuredW float64) float64 {
	p.n++
	frac := relFrac(predictedW, measuredW)
	if frac > p.worst {
		p.worst = frac
		p.worstPred = predictedW
		p.worstMeas = measuredW
	}
	return frac
}

// Observations returns how many sentinel comparisons were recorded.
func (p *DriftProbe) Observations() int { return p.n }

// WorstFrac returns the worst relative disagreement observed, as a
// fraction of the measured value. Zero when nothing was observed.
func (p *DriftProbe) WorstFrac() float64 { return p.worst }

// Check returns an error if any observation drifted beyond tolFrac.
// A run with no parked lanes (hence no observations) passes: there was
// no analytic state to drift.
func (p *DriftProbe) Check(tolFrac float64) error {
	if p.worst > tolFrac {
		return fmt.Errorf("invariant: aggregate drift %.4f beyond tolerance %.4f: calibrated %.3f W, re-measured %.3f W",
			p.worst, tolFrac, p.worstPred, p.worstMeas)
	}
	return nil
}

// relFrac is |a−b| as a fraction of |b|, with a floor on the scale so
// a near-zero measurement cannot blow the ratio up to infinity.
func relFrac(a, b float64) float64 {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := b
	if scale < 0 {
		scale = -scale
	}
	if scale < 1e-12 {
		scale = 1e-12
	}
	return diff / scale
}
