package telemetry

import "sync/atomic"

// Process-wide default telemetry. The simulation stack builds engines
// deep inside experiment code, so the CLI layer cannot thread a
// registry through every constructor; instead sim.NewEngine picks up
// whatever default is installed at engine-creation time. The default is
// nil (telemetry off) unless a CLI or test installs one.
//
// Tests that need isolation should prefer Engine.EnableTelemetry with a
// private registry over the process default.

var (
	defaultRegistry atomic.Pointer[Registry]
	defaultTracer   atomic.Pointer[Tracer]
)

// SetDefault installs reg as the process-wide default registry
// (nil disables). Engines created afterwards tap into it.
func SetDefault(reg *Registry) { defaultRegistry.Store(reg) }

// Default returns the process-wide default registry, which may be nil.
func Default() *Registry { return defaultRegistry.Load() }

// SetDefaultTracer installs tr as the process-wide default tracer
// (nil disables). Engines created afterwards emit spans into it.
func SetDefaultTracer(tr *Tracer) { defaultTracer.Store(tr) }

// DefaultTracer returns the process-wide default tracer, may be nil.
func DefaultTracer() *Tracer { return defaultTracer.Load() }
