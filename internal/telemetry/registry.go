// Package telemetry is the simulator's observability layer: a
// concurrency-safe metrics registry (counters, gauges, histograms) that
// the simulation stack taps on its hot paths, and a Chrome trace-event
// tracer (tracer.go) for span-by-span inspection of a run.
//
// The package is designed around two constraints:
//
//   - Disabled telemetry must cost nothing measurable. Every handle
//     (*Counter, *Gauge, *Histogram) is nil-safe: methods on a nil
//     handle are single-branch no-ops, so instrumented code calls them
//     unconditionally and pays one predicted-not-taken branch when the
//     registry is absent.
//   - Enabled telemetry must be safe under the sweep harness, which
//     runs one simulation engine per goroutine against a shared
//     registry. All mutation is atomic; nothing on the update path
//     takes a lock.
//
// Values are int64 throughout. Durations are recorded as nanoseconds,
// energies as microjoules, etc. — the metric name carries the unit
// suffix (`_ns`, `_total`, ...), Prometheus style.
package telemetry

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. The zero value is ready
// to use; a nil *Counter discards updates.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be nonnegative for the counter to stay monotonic;
// this is not enforced on the hot path).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a level that can move both ways. It also tracks the maximum
// level ever set, which turns an instantaneous quantity (queue depth,
// heap size, busy dies) into a high-water mark for free. A nil *Gauge
// discards updates.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set replaces the level.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.bumpMax(v)
}

// Add moves the level by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.bumpMax(g.v.Add(delta))
}

func (g *Gauge) bumpMax(v int64) {
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current level (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the highest level ever set (0 on a nil gauge).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// histBuckets is the number of exponential histogram buckets: bucket i
// counts observations v with bitlen(v) == i, i.e. v in [2^(i-1), 2^i).
// 64 buckets cover the full nonnegative int64 range.
const histBuckets = 65

// Histogram records a distribution in power-of-two buckets. Updates are
// one atomic add; quantiles are approximate (within a factor of two),
// which is plenty for latency and stall-time distributions. A nil
// *Histogram discards updates.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil histogram).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the mean observed value (0 with no observations).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1): the
// top of the bucket the quantile falls in.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	rank := int64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen > rank {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return 1<<62 - 1
}

// Registry is a named collection of metrics. Metric handles are
// interned: two Counter("x") calls return the same *Counter, so
// components created at different times aggregate into one series.
// A nil *Registry hands out nil handles, making an entire instrumented
// stack a no-op.
type Registry struct {
	mu    sync.Mutex
	cs    map[string]*Counter
	gs    map[string]*Gauge
	hs    map[string]*Histogram
	order []string // registration order, for stable snapshots
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		cs: map[string]*Counter{},
		gs: map[string]*Gauge{},
		hs: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.cs[name]
	if !ok {
		c = &Counter{}
		r.cs[name] = c
		r.order = append(r.order, name)
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gs[name]
	if !ok {
		g = &Gauge{}
		r.gs[name] = g
		r.order = append(r.order, name)
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hs[name]
	if !ok {
		h = &Histogram{}
		r.hs[name] = h
		r.order = append(r.order, name)
	}
	return h
}

// names returns all registered metric names sorted.
func (r *Registry) names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	sort.Strings(out)
	return out
}
