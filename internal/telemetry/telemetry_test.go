package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilHandlesAreNoOps(t *testing.T) {
	t.Parallel()
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(42)
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Count() != 0 || h.Quantile(0.99) != 0 {
		t.Fatal("nil handles must read zero")
	}
	if !r.Snapshot().Empty() {
		t.Fatal("nil registry snapshot must be empty")
	}
	var tr *Tracer
	tr.Span("lane", "cat", "name", 0, 1)
	tr.Instant("lane", "cat", "name", 0)
	tr.AsyncBegin("lane", "cat", "name", 1, 0)
	tr.AsyncEnd("lane", "cat", "name", 1, 1)
	tr.Counter("w", 0, 1.5)
	if tr.Enabled() || tr.Len() != 0 {
		t.Fatal("nil tracer must be disabled and empty")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer JSON invalid: %v", err)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	c := r.Counter("ios_total")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
	if r.Counter("ios_total") != c {
		t.Fatal("counters must intern by name")
	}

	g := r.Gauge("depth")
	g.Set(4)
	g.Add(3)
	g.Add(-5)
	if g.Value() != 2 || g.Max() != 7 {
		t.Fatalf("gauge = %d max %d, want 2 max 7", g.Value(), g.Max())
	}

	h := r.Histogram("lat_ns")
	for _, v := range []int64{1, 2, 3, 1000, 1_000_000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 1_001_006 {
		t.Fatalf("hist count %d sum %d", h.Count(), h.Sum())
	}
	if q := h.Quantile(0.5); q < 3 || q > 1023 {
		t.Fatalf("p50 = %d, want within a bucket of 3", q)
	}
	if q := h.Quantile(0.99); q < 1_000_000 || q >= 2_097_152 {
		t.Fatalf("p99 = %d, want within a bucket of 1e6", q)
	}
	h.Observe(-5) // clamps, must not panic
	if h.Count() != 6 {
		t.Fatal("negative observation lost")
	}
}

// TestConcurrentUpdates exercises the lock-free update paths under the
// race detector the way the sweep harness uses them: many goroutines,
// one shared registry.
func TestConcurrentUpdates(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared_total")
			g := r.Gauge("shared_level")
			h := r.Histogram("shared_hist")
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("shared_hist").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if got := r.Gauge("shared_level").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
}

func TestSnapshotExports(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Gauge("b_level").Set(2)
	r.Histogram("c_ns").Observe(100)

	s := r.Snapshot()
	if s.Empty() {
		t.Fatal("snapshot empty")
	}
	var jb bytes.Buffer
	if err := s.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(jb.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	if len(back.Counters) != 1 || back.Counters[0].Value != 3 {
		t.Fatalf("JSON round trip lost counters: %+v", back)
	}

	var tb bytes.Buffer
	if err := s.WriteText(&tb); err != nil {
		t.Fatal(err)
	}
	text := tb.String()
	for _, want := range []string{"a_total 3", "b_level 2", "b_level_max 2", "c_ns_count 1", "c_ns_sum 100"} {
		if !strings.Contains(text, want) {
			t.Errorf("text exposition missing %q in:\n%s", want, text)
		}
	}
}

func TestDefaultInstallUninstall(t *testing.T) {
	// Not parallel: mutates process-global state.
	if Default() != nil || DefaultTracer() != nil {
		t.Skip("another component installed process defaults")
	}
	r := NewRegistry()
	tr := NewTracer(0)
	SetDefault(r)
	SetDefaultTracer(tr)
	defer SetDefault(nil)
	defer SetDefaultTracer(nil)
	if Default() != r || DefaultTracer() != tr {
		t.Fatal("defaults not installed")
	}
}
