package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
	Max   int64  `json:"max"`
}

// HistogramValue is one histogram in a snapshot. Buckets are reported
// sparsely: Buckets[i] counts values in [2^(Lows[i]-1), 2^Lows[i]).
type HistogramValue struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Mean    float64 `json:"mean"`
	P50     int64   `json:"p50"`
	P99     int64   `json:"p99"`
	Lows    []int   `json:"bucket_exps,omitempty"`
	Buckets []int64 `json:"bucket_counts,omitempty"`
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Empty reports whether the snapshot holds no metrics at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// Snapshot copies the registry's current state, sorted by metric name.
// A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := r.names()
	for _, name := range names {
		if c, ok := r.cs[name]; ok {
			s.Counters = append(s.Counters, CounterValue{name, c.Value()})
		}
		if g, ok := r.gs[name]; ok {
			s.Gauges = append(s.Gauges, GaugeValue{name, g.Value(), g.Max()})
		}
		if h, ok := r.hs[name]; ok {
			hv := HistogramValue{
				Name:  name,
				Count: h.Count(),
				Sum:   h.Sum(),
				Mean:  h.Mean(),
				P50:   h.Quantile(0.50),
				P99:   h.Quantile(0.99),
			}
			for i := 0; i < histBuckets; i++ {
				if n := h.buckets[i].Load(); n > 0 {
					hv.Lows = append(hv.Lows, i)
					hv.Buckets = append(hv.Buckets, n)
				}
			}
			s.Histograms = append(s.Histograms, hv)
		}
	}
	return s
}

// WriteJSON emits the snapshot as an indented JSON document.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText emits the snapshot as Prometheus-style text exposition:
// one `name value` line per counter and gauge (gauges also report a
// `_max` high-water series), and `_count` / `_sum` / quantile lines per
// histogram.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "%s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "%s %d\n%s_max %d\n", g.Name, g.Value, g.Name, g.Max); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "%s_count %d\n%s_sum %d\n%s{quantile=\"0.5\"} %d\n%s{quantile=\"0.99\"} %d\n",
			h.Name, h.Count, h.Name, h.Sum, h.Name, h.P50, h.Name, h.P99); err != nil {
			return err
		}
	}
	return nil
}
