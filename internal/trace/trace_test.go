package trace

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestAppendAndStats(t *testing.T) {
	var p PowerTrace
	for i := 0; i < 10; i++ {
		p.Append(time.Duration(i)*time.Millisecond, float64(i))
	}
	if p.Len() != 10 {
		t.Fatalf("Len = %d, want 10", p.Len())
	}
	if got := p.Mean(); math.Abs(got-4.5) > 1e-12 {
		t.Errorf("Mean = %v, want 4.5", got)
	}
	s := p.Summary()
	if s.Min != 0 || s.Max != 9 {
		t.Errorf("Summary min/max = %v/%v, want 0/9", s.Min, s.Max)
	}
}

func TestAppendBackwardPanics(t *testing.T) {
	var p PowerTrace
	p.Append(time.Second, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	p.Append(time.Millisecond, 2)
}

func TestBetween(t *testing.T) {
	var p PowerTrace
	for i := 0; i < 10; i++ {
		p.Append(time.Duration(i)*time.Second, float64(i))
	}
	sub := p.Between(3*time.Second, 7*time.Second)
	if sub.Len() != 4 {
		t.Fatalf("Between returned %d samples, want 4", sub.Len())
	}
	if sub.At(0).W != 3 || sub.At(3).W != 6 {
		t.Errorf("Between window wrong: %v..%v", sub.At(0).W, sub.At(3).W)
	}
	// Mutating the sub-trace must not affect the parent.
	sub.Append(100*time.Second, 99)
	if p.Len() != 10 {
		t.Error("sub-trace shares state with parent")
	}
}

func TestWriteCSV(t *testing.T) {
	var p PowerTrace
	p.Append(1500*time.Microsecond, 8.25)
	var sb strings.Builder
	if err := p.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.HasPrefix(got, "time_ms,power_w\n") {
		t.Errorf("missing header: %q", got)
	}
	if !strings.Contains(got, "1.500,8.250000") {
		t.Errorf("row not formatted: %q", got)
	}
}

func TestEmptyTrace(t *testing.T) {
	var p PowerTrace
	if p.Mean() != 0 {
		t.Error("Mean of empty trace not 0")
	}
	if p.Summary().N != 0 {
		t.Error("Summary of empty trace not zero-valued")
	}
	if p.Between(0, time.Second).Len() != 0 {
		t.Error("Between on empty trace not empty")
	}
}
