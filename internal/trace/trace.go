// Package trace holds time-series captured during experiments: power
// traces from the measurement rig and helpers to window, summarize, and
// export them the way the paper's figures consume them.
package trace

import (
	"fmt"
	"io"
	"time"

	"wattio/internal/stats"
)

// PowerSample is one calibrated power reading.
type PowerSample struct {
	T time.Duration // virtual time of the ADC sample
	W float64       // watts
}

// PowerTrace is an append-only series of power samples in time order.
type PowerTrace struct {
	samples []PowerSample
}

// Append adds a sample; times must be nondecreasing.
func (p *PowerTrace) Append(t time.Duration, w float64) {
	if n := len(p.samples); n > 0 && t < p.samples[n-1].T {
		panic(fmt.Sprintf("trace: sample at %v before last %v", t, p.samples[n-1].T))
	}
	p.samples = append(p.samples, PowerSample{t, w})
}

// Len returns the number of samples.
func (p *PowerTrace) Len() int { return len(p.samples) }

// At returns sample i.
func (p *PowerTrace) At(i int) PowerSample { return p.samples[i] }

// Watts returns the power values as a slice, for statistics.
func (p *PowerTrace) Watts() []float64 {
	out := make([]float64, len(p.samples))
	for i, s := range p.samples {
		out[i] = s.W
	}
	return out
}

// Between returns the sub-trace with a ≤ T < b. The returned trace
// shares no state with the receiver.
func (p *PowerTrace) Between(a, b time.Duration) *PowerTrace {
	out := &PowerTrace{}
	for _, s := range p.samples {
		if s.T >= a && s.T < b {
			out.samples = append(out.samples, s)
		}
	}
	return out
}

// Summary computes distribution statistics over the trace, the textual
// form of one violin in the paper's Figure 2b.
func (p *PowerTrace) Summary() stats.Summary { return stats.Summarize(p.Watts()) }

// Mean returns the average power over the trace.
func (p *PowerTrace) Mean() float64 { return stats.Mean(p.Watts()) }

// WriteCSV emits "ms,watts" rows, the format the paper's plotting
// scripts consume.
func (p *PowerTrace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time_ms,power_w"); err != nil {
		return err
	}
	for _, s := range p.samples {
		if _, err := fmt.Fprintf(w, "%.3f,%.6f\n", float64(s.T)/1e6, s.W); err != nil {
			return err
		}
	}
	return nil
}
