// Package trace holds time-series captured during experiments: power
// traces from the measurement rig and helpers to window, summarize, and
// export them the way the paper's figures consume them.
package trace

import (
	"fmt"
	"io"
	"time"

	"wattio/internal/stats"
)

// PowerSample is one calibrated power reading.
type PowerSample struct {
	T time.Duration // virtual time of the ADC sample
	W float64       // watts
}

// chunkSamples is the fixed chunk capacity. Power of two so the
// index split in At compiles to shift and mask.
const chunkSamples = 4096

// chunk stores samples columnar: times and watts in separate arrays, so
// statistics passes over watts stream through memory without skipping
// interleaved timestamps.
type chunk struct {
	t [chunkSamples]time.Duration
	w [chunkSamples]float64
}

// PowerTrace is an append-only series of power samples in time order.
//
// Storage grows in fixed-size columnar chunks: appending never copies
// samples already stored (no full-slice growth re-appends), so a
// million-sample rig trace costs a pointer append every 4096 samples
// and nothing else.
type PowerTrace struct {
	chunks []*chunk
	n      int
}

// Append adds a sample; times must be nondecreasing.
func (p *PowerTrace) Append(t time.Duration, w float64) {
	if p.n > 0 {
		if last := p.at(p.n - 1).T; t < last {
			panic(fmt.Sprintf("trace: sample at %v before last %v", t, last))
		}
	}
	i := p.n & (chunkSamples - 1)
	if i == 0 {
		p.chunks = append(p.chunks, &chunk{})
	}
	c := p.chunks[p.n/chunkSamples]
	c.t[i] = t
	c.w[i] = w
	p.n++
}

// Len returns the number of samples.
func (p *PowerTrace) Len() int { return p.n }

// At returns sample i.
func (p *PowerTrace) At(i int) PowerSample {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("trace: sample index %d out of %d", i, p.n))
	}
	return p.at(i)
}

func (p *PowerTrace) at(i int) PowerSample {
	c := p.chunks[i/chunkSamples]
	j := i & (chunkSamples - 1)
	return PowerSample{c.t[j], c.w[j]}
}

// Watts returns the power values as a slice, for statistics.
func (p *PowerTrace) Watts() []float64 {
	out := make([]float64, 0, p.n)
	for ci, c := range p.chunks {
		n := p.n - ci*chunkSamples
		if n > chunkSamples {
			n = chunkSamples
		}
		out = append(out, c.w[:n]...)
	}
	return out
}

// Between returns the sub-trace with a ≤ T < b. The returned trace
// shares no state with the receiver.
func (p *PowerTrace) Between(a, b time.Duration) *PowerTrace {
	out := &PowerTrace{}
	for i := 0; i < p.n; i++ {
		s := p.at(i)
		if s.T >= a && s.T < b {
			out.Append(s.T, s.W)
		}
	}
	return out
}

// Summary computes distribution statistics over the trace, the textual
// form of one violin in the paper's Figure 2b.
func (p *PowerTrace) Summary() stats.Summary { return stats.Summarize(p.Watts()) }

// Mean returns the average power over the trace.
func (p *PowerTrace) Mean() float64 { return stats.Mean(p.Watts()) }

// WriteCSV emits "ms,watts" rows, the format the paper's plotting
// scripts consume.
func (p *PowerTrace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time_ms,power_w"); err != nil {
		return err
	}
	for i := 0; i < p.n; i++ {
		s := p.at(i)
		if _, err := fmt.Fprintf(w, "%.3f,%.6f\n", float64(s.T)/1e6, s.W); err != nil {
			return err
		}
	}
	return nil
}
