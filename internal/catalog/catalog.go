// Package catalog provides device models calibrated to the five drives
// the paper measures: the four Table-1 devices (SSD1 = Samsung PM9A3,
// SSD2 = Intel D7-P5510, SSD3 = Intel D3-P4510, HDD = Seagate Exos
// 7E2000) plus the Samsung 860 EVO used for the standby experiment.
//
// Calibration targets come from the paper's published numbers: measured
// power ranges (Table 1), power-state caps and their throughput/latency
// consequences (Figs. 3-6), standby levels and transition times (§3.2.2,
// Fig. 7), and IO-shaping trade-offs (Figs. 8-10). The calibration test
// suite asserts each target.
package catalog

import (
	"time"

	"wattio/internal/device"
	"wattio/internal/hdd"
	"wattio/internal/sim"
	"wattio/internal/ssd"
)

// KiB and related constants express IO sizes the way the paper does.
const (
	KiB = int64(1) << 10
	MiB = int64(1) << 20
	GiB = int64(1) << 30
)

// SSD1Config returns the calibrated model of the Samsung PM9A3 (NVMe,
// measured 3.5-13.5 W). Its signature behavior in the paper: 3.3 GiB/s
// random write at only ~8.2 W average, with instantaneous swings to
// 13.5 W (Fig. 2a).
func SSD1Config() ssd.Config {
	return ssd.Config{
		Name:          "SSD1",
		Model:         "Samsung PM9A3",
		Protocol:      device.NVMe,
		CapacityBytes: 3840 * 1000 * 1000 * 1000,

		Channels:       16,
		DiesPerChannel: 8,
		PageSize:       16 * KiB,
		ChannelMBps:    1200,
		TRead:          45 * time.Microsecond,
		TProg:          500 * time.Microsecond,

		LinkMBps:     3550, // PCIe 3 x4, the paper's host limit
		CmdTimeRead:  3500 * time.Nanosecond,
		CmdTimeWrite: 2200 * time.Nanosecond,
		TWriteAck:    18 * time.Microsecond,
		InsertBWMBps: 9000,
		BufferBytes:  256 * MiB,
		WriteAmp:     1.03,

		PController:  2.3,
		PIfaceIdle:   1.2,
		PIfaceActive: 2.2,
		PDieRead:     16e-3,
		PDieProg:     22e-3,
		EPageXferJ:   4e-6,
		ECmdReadJ:    0.5e-6,
		ECmdWriteJ:   2e-6,

		RippleBurstW: 4.6,
		RippleDuty:   0.065,
		RippleDwell:  4 * time.Millisecond,

		PowerStates: []device.PowerState{
			{MaxPowerW: 12, EntryLatency: 100 * time.Microsecond, ExitLatency: 100 * time.Microsecond},
			{MaxPowerW: 7, EntryLatency: 100 * time.Microsecond, ExitLatency: 100 * time.Microsecond},
			{MaxPowerW: 6, EntryLatency: 100 * time.Microsecond, ExitLatency: 100 * time.Microsecond},
		},
		CapWindow:       10 * time.Second,
		CapBurst:        25 * time.Millisecond,
		ThrottleQuantum: 5 * time.Millisecond,
	}
}

// SSD2Config returns the calibrated model of the Intel D7-P5510 (NVMe,
// measured 5-15.1 W). Its signature behavior: three power states (ps0
// <25 W, ps1 12 W, ps2 10 W) whose caps crush sequential-write
// throughput to 74% (ps1) and 55% (ps2) of ps0 while barely touching
// reads, and whose random-write tail latency at qd1 inflates up to
// ~6.2x under ps2.
func SSD2Config() ssd.Config {
	return ssd.Config{
		Name:          "SSD2",
		Model:         "Intel D7-P5510",
		Protocol:      device.NVMe,
		CapacityBytes: 3840 * 1000 * 1000 * 1000,

		Channels:       16,
		DiesPerChannel: 8,
		PageSize:       16 * KiB,
		ChannelMBps:    800,
		TRead:          50 * time.Microsecond,
		TProg:          600 * time.Microsecond,

		LinkMBps:     3400,
		CmdTimeRead:  4 * time.Microsecond,
		CmdTimeWrite: 2500 * time.Nanosecond,
		TWriteAck:    8 * time.Microsecond,
		InsertBWMBps: 8000,
		BufferBytes:  256 * MiB,
		WriteAmp:     1.05,

		PController:  3.5,
		PIfaceIdle:   1.5,
		PIfaceActive: 3.0,
		PDieRead:     30e-3,
		PDieProg:     55e-3,
		EPageXferJ:   6e-6,
		ECmdReadJ:    0.5e-6,
		ECmdWriteJ:   4.5e-6,

		RippleBurstW: 0.7,
		RippleDuty:   0.3,
		RippleDwell:  4 * time.Millisecond,

		PowerStates: []device.PowerState{
			{MaxPowerW: 25, EntryLatency: 100 * time.Microsecond, ExitLatency: 100 * time.Microsecond},
			{MaxPowerW: 12, EntryLatency: 100 * time.Microsecond, ExitLatency: 100 * time.Microsecond},
			{MaxPowerW: 10, EntryLatency: 100 * time.Microsecond, ExitLatency: 100 * time.Microsecond},
		},
		CapWindow:       10 * time.Second,
		CapBurst:        25 * time.Millisecond,
		ThrottleQuantum: 5 * time.Millisecond,
	}
}

// SSD3Config returns the calibrated model of the Intel D3-P4510 (SATA
// per the paper's Table 1, measured 1-3.5 W): link-bound, no
// host-selectable power states.
func SSD3Config() ssd.Config {
	return ssd.Config{
		Name:          "SSD3",
		Model:         "Intel D3-P4510",
		Protocol:      device.SATA,
		CapacityBytes: 1920 * 1000 * 1000 * 1000,

		Channels:       8,
		DiesPerChannel: 4,
		PageSize:       16 * KiB,
		ChannelMBps:    400,
		TRead:          60 * time.Microsecond,
		TProg:          800 * time.Microsecond,

		LinkMBps:     530,
		CmdTimeRead:  12 * time.Microsecond,
		CmdTimeWrite: 15 * time.Microsecond,
		TWriteAck:    25 * time.Microsecond,
		InsertBWMBps: 2500,
		BufferBytes:  64 * MiB,
		WriteAmp:     1.05,

		PController:  0.6,
		PIfaceIdle:   0.4,
		PIfaceActive: 1.2,
		PDieRead:     25e-3,
		PDieProg:     46e-3,
		EPageXferJ:   5e-6,
		ECmdReadJ:    2e-6,
		ECmdWriteJ:   3e-6,

		RippleBurstW: 0.25,
		RippleDuty:   0.15,
		RippleDwell:  15 * time.Millisecond,
	}
}

// EVOConfig returns the calibrated model of the Samsung 860 EVO, the
// desktop SATA SSD the paper uses to demonstrate ALPM SLUMBER: idle
// 0.35 W, slumber 0.17 W, transitions within half a second with a
// visible power blip (Fig. 7).
func EVOConfig() ssd.Config {
	return ssd.Config{
		Name:          "EVO",
		Model:         "Samsung 860 EVO",
		Protocol:      device.SATA,
		CapacityBytes: 1000 * 1000 * 1000 * 1000,

		Channels:       8,
		DiesPerChannel: 4,
		PageSize:       16 * KiB,
		ChannelMBps:    400,
		TRead:          60 * time.Microsecond,
		TProg:          1300 * time.Microsecond,

		LinkMBps:     550,
		CmdTimeRead:  15 * time.Microsecond,
		CmdTimeWrite: 20 * time.Microsecond,
		TWriteAck:    30 * time.Microsecond,
		InsertBWMBps: 2000,
		BufferBytes:  32 * MiB,
		WriteAmp:     1.1,

		PController:  0.22,
		PIfaceIdle:   0.13,
		PIfaceActive: 0.75,
		PDieRead:     20e-3,
		PDieProg:     35e-3,
		EPageXferJ:   3e-6,
		ECmdReadJ:    1e-6,
		ECmdWriteJ:   1.5e-6,

		RippleBurstW: 0.3,
		RippleDuty:   0.1,
		RippleDwell:  15 * time.Millisecond,

		HasStandby:    true,
		PSlumber:      0.17,
		StandbyEnter:  120 * time.Millisecond,
		StandbyExit:   300 * time.Millisecond,
		PStandbyEnter: 0.55,
		PStandbyExit:  0.60,
	}
}

// HDDConfig returns the calibrated model of the Seagate Exos 7E2000
// (SATA HDD, measured 1-5.3 W): idle 3.76 W spinning, 1.1 W spun down,
// spin-up taking most of ten seconds.
func HDDConfig() hdd.Config {
	return hdd.Config{
		Name:          "HDD",
		Model:         "Seagate Exos 7E2000",
		CapacityBytes: 2000 * 1000 * 1000 * 1000,

		RPM:        7200,
		SeekBase:   time.Millisecond,
		SeekFull:   14400 * time.Microsecond,
		MediaOuter: 210,
		MediaInner: 110,

		LinkMBps:   550,
		CmdTime:    60 * time.Microsecond,
		CacheBytes: 128 * MiB,

		PSpindle:  3.10,
		PElec:     0.66,
		PSeek:     2.00,
		PXfer:     0.35,
		PIfaceAct: 0.15,

		PStandby:  1.10,
		PSpinDown: 2.00,
		PSpinUp:   5.50,
		TSpinDown: 1500 * time.Millisecond,
		TSpinUp:   8500 * time.Millisecond,
	}
}

// NewSSD1 builds the SSD1 model on an engine.
func NewSSD1(eng *sim.Engine, rng *sim.RNG) *ssd.SSD { return mustSSD(SSD1Config(), eng, rng) }

// NewSSD2 builds the SSD2 model on an engine.
func NewSSD2(eng *sim.Engine, rng *sim.RNG) *ssd.SSD { return mustSSD(SSD2Config(), eng, rng) }

// NewSSD3 builds the SSD3 model on an engine.
func NewSSD3(eng *sim.Engine, rng *sim.RNG) *ssd.SSD { return mustSSD(SSD3Config(), eng, rng) }

// NewEVO builds the 860 EVO model on an engine.
func NewEVO(eng *sim.Engine, rng *sim.RNG) *ssd.SSD { return mustSSD(EVOConfig(), eng, rng) }

// NewHDD builds the Exos 7E2000 model on an engine.
func NewHDD(eng *sim.Engine, rng *sim.RNG) *hdd.HDD {
	d, err := hdd.New(HDDConfig(), eng, rng)
	if err != nil {
		panic(err) // calibrated config; cannot fail
	}
	return d
}

// Table1 builds the paper's four evaluated devices in Table-1 order.
func Table1(eng *sim.Engine, rng *sim.RNG) []device.Device {
	return []device.Device{NewSSD1(eng, rng), NewSSD2(eng, rng), NewSSD3(eng, rng), NewHDD(eng, rng)}
}

// ByName builds one device by its Table-1 label (or "EVO").
func ByName(name string, eng *sim.Engine, rng *sim.RNG) (device.Device, bool) {
	switch name {
	case "SSD1":
		return NewSSD1(eng, rng), true
	case "SSD2":
		return NewSSD2(eng, rng), true
	case "SSD3":
		return NewSSD3(eng, rng), true
	case "HDD":
		return NewHDD(eng, rng), true
	case "EVO":
		return NewEVO(eng, rng), true
	case "C960":
		return NewC960(eng, rng), true
	}
	return nil, false
}

// Names lists the buildable device labels: the paper's Table-1 four,
// the 860 EVO standby subject, and the client C960 APST extension.
func Names() []string { return []string{"SSD1", "SSD2", "SSD3", "HDD", "EVO", "C960"} }

// NewNamed builds one device from a catalog profile under a caller-
// chosen instance name. Fleet-scale layers (internal/serve) instantiate
// hundreds of devices from the same profile; each needs a unique name
// because models, budget controllers, and telemetry lanes key on it.
// Each instance re-labels a copy of the class's interned config
// template, so the immutable per-class tables (power states,
// non-operational states) are shared by reference across the whole
// fleet instead of reallocated per device.
func NewNamed(profile, name string, eng *sim.Engine, rng *sim.RNG) (device.Device, bool) {
	if cfg, ok := internedConfig(profile); ok {
		cfg.Name = name
		return mustSSD(cfg, eng, rng), true
	}
	if profile == "HDD" {
		cfg := internedHDDConfig()
		cfg.Name = name
		d, err := hdd.New(cfg, eng, rng)
		if err != nil {
			panic(err) // calibrated config; cannot fail
		}
		return d, true
	}
	return nil, false
}

func mustSSD(cfg ssd.Config, eng *sim.Engine, rng *sim.RNG) *ssd.SSD {
	d, err := ssd.New(cfg, eng, rng)
	if err != nil {
		panic(err) // calibrated config; cannot fail
	}
	return d
}

// C960Config returns a client NVMe SSD model (Samsung 960 EVO — the
// paper's reference [25] for "standby ... uses one-tenth of the power
// of the device at idle"). Unlike the Table-1 data-center parts it has
// NVMe non-operational states and ships with APST enabled, so it idles
// itself down autonomously. Provided as an extension device; it is not
// part of the paper's evaluated set.
func C960Config() ssd.Config {
	return ssd.Config{
		Name:          "C960",
		Model:         "Samsung 960 EVO",
		Protocol:      device.NVMe,
		CapacityBytes: 1000 * 1000 * 1000 * 1000,

		Channels:       8,
		DiesPerChannel: 4,
		PageSize:       16 * KiB,
		ChannelMBps:    1200,
		TRead:          60 * time.Microsecond,
		TProg:          280 * time.Microsecond, // TLC behind an SLC cache

		LinkMBps:     3200,
		CmdTimeRead:  5 * time.Microsecond,
		CmdTimeWrite: 4 * time.Microsecond,
		TWriteAck:    12 * time.Microsecond,
		InsertBWMBps: 6000,
		BufferBytes:  96 * MiB,
		WriteAmp:     1.08,

		PController:  0.35,
		PIfaceIdle:   0.15,
		PIfaceActive: 1.15,
		PDieRead:     22e-3,
		PDieProg:     95e-3,
		EPageXferJ:   3e-6,
		ECmdReadJ:    1e-6,
		ECmdWriteJ:   2e-6,

		RippleBurstW: 0.5,
		RippleDuty:   0.08,
		RippleDwell:  6 * time.Millisecond,

		NonOpStates: []ssd.NonOpState{
			{PowerW: 0.08, IdleBefore: 200 * time.Millisecond, ExitLatency: time.Millisecond},
			{PowerW: 0.05, IdleBefore: 2 * time.Second, ExitLatency: 8 * time.Millisecond},
		},
		APSTDefault: true,

		PowerStates: []device.PowerState{
			{MaxPowerW: 6.0},
			{MaxPowerW: 5.0, EntryLatency: 100 * time.Microsecond, ExitLatency: 100 * time.Microsecond},
			{MaxPowerW: 4.0, EntryLatency: 100 * time.Microsecond, ExitLatency: 100 * time.Microsecond},
		},
		CapWindow:       10 * time.Second,
		CapBurst:        25 * time.Millisecond,
		ThrottleQuantum: 5 * time.Millisecond,
	}
}

// NewC960 builds the client 960 EVO model on an engine.
func NewC960(eng *sim.Engine, rng *sim.RNG) *ssd.SSD { return mustSSD(C960Config(), eng, rng) }
