package catalog

import (
	"reflect"
	"testing"
	"time"

	"wattio/internal/device"
	"wattio/internal/hdd"
	"wattio/internal/sim"
	"wattio/internal/ssd"
	"wattio/internal/workload"
)

// TestInternedTemplatesMatchConstructors: the shared templates must be
// exactly what the public constructors build — interning changes
// allocation, never calibration.
func TestInternedTemplatesMatchConstructors(t *testing.T) {
	t.Parallel()
	fresh := map[string]ssd.Config{
		"SSD1": SSD1Config(),
		"SSD2": SSD2Config(),
		"SSD3": SSD3Config(),
		"EVO":  EVOConfig(),
		"C960": C960Config(),
	}
	for name, want := range fresh {
		got, ok := internedConfig(name)
		if !ok {
			t.Fatalf("no interned template for %s", name)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("interned %s config diverges from its constructor", name)
		}
	}
	if got := internedHDDConfig(); !reflect.DeepEqual(got, HDDConfig()) {
		t.Error("interned HDD config diverges from its constructor")
	}
}

// TestInternSharesBackingArrays: every instance of a class must share
// one immutable slice backing array — that sharing is the flyweight.
func TestInternSharesBackingArrays(t *testing.T) {
	t.Parallel()
	a, _ := internedConfig("SSD2")
	b, _ := internedConfig("SSD2")
	if len(a.PowerStates) == 0 || &a.PowerStates[0] != &b.PowerStates[0] {
		t.Error("SSD2 power-state tables are not shared across instances")
	}
	c, _ := internedConfig("C960")
	d, _ := internedConfig("C960")
	if len(c.NonOpStates) == 0 || &c.NonOpStates[0] != &d.NonOpStates[0] {
		t.Error("C960 non-op-state tables are not shared across instances")
	}
}

// TestInternBitIdenticalDevices runs the same seeded workload on a
// device built through the interned NewNamed path and one built from a
// fresh constructor config, and requires bit-identical results.
func TestInternBitIdenticalDevices(t *testing.T) {
	t.Parallel()
	job := workload.Job{
		Op: device.OpWrite, Pattern: workload.Rand, BS: 64 * KiB, Depth: 8,
		Runtime: 500 * time.Millisecond, TotalBytes: 64 * MiB,
	}
	run := func(dev device.Device, eng *sim.Engine, rng *sim.RNG) (workload.Result, float64) {
		res := workload.Run(eng, dev, job, rng)
		return res, dev.EnergyJ()
	}
	same := func(a, b workload.Result) bool {
		return a.IOs == b.IOs && a.Bytes == b.Bytes && a.Elapsed == b.Elapsed &&
			a.BandwidthMBps == b.BandwidthMBps && a.IOPS == b.IOPS &&
			a.LatAvg == b.LatAvg && a.LatP50 == b.LatP50 && a.LatP99 == b.LatP99 && a.LatMax == b.LatMax &&
			reflect.DeepEqual(a.Latencies, b.Latencies)
	}

	for _, profile := range []string{"SSD1", "SSD2", "SSD3", "EVO", "C960"} {
		t.Run(profile, func(t *testing.T) {
			t.Parallel()
			engA, rngA := sim.NewEngine(), sim.NewRNG(9)
			devA, ok := NewNamed(profile, profile, engA, rngA.Stream("dev"))
			if !ok {
				t.Fatalf("NewNamed(%s) failed", profile)
			}
			resA, eA := run(devA, engA, rngA.Stream("wl"))

			cfg, _ := internedConfig(profile)
			fresh := map[string]func() ssd.Config{
				"SSD1": SSD1Config, "SSD2": SSD2Config, "SSD3": SSD3Config,
				"EVO": EVOConfig, "C960": C960Config,
			}[profile]()
			fresh.Name = cfg.Name
			engB, rngB := sim.NewEngine(), sim.NewRNG(9)
			devB, err := ssd.New(fresh, engB, rngB.Stream("dev"))
			if err != nil {
				t.Fatal(err)
			}
			resB, eB := run(devB, engB, rngB.Stream("wl"))

			if !same(resA, resB) || eA != eB {
				t.Fatalf("interned vs fresh diverged:\n  interned ios=%d %.9f J\n  fresh    ios=%d %.9f J", resA.IOs, eA, resB.IOs, eB)
			}
		})
	}

	t.Run("HDD", func(t *testing.T) {
		t.Parallel()
		engA, rngA := sim.NewEngine(), sim.NewRNG(9)
		devA, ok := NewNamed("HDD", "HDD", engA, rngA.Stream("dev"))
		if !ok {
			t.Fatal("NewNamed(HDD) failed")
		}
		resA, eA := run(devA, engA, rngA.Stream("wl"))

		fresh := HDDConfig()
		fresh.Name = "HDD"
		engB, rngB := sim.NewEngine(), sim.NewRNG(9)
		devB, err := hdd.New(fresh, engB, rngB.Stream("dev"))
		if err != nil {
			t.Fatal(err)
		}
		resB, eB := run(devB, engB, rngB.Stream("wl"))
		if !same(resA, resB) || eA != eB {
			t.Fatalf("interned vs fresh diverged:\n  interned ios=%d %.9f J\n  fresh    ios=%d %.9f J", resA.IOs, eA, resB.IOs, eB)
		}
	})
}
