package catalog

import (
	"wattio/internal/hdd"
	"wattio/internal/ssd"
)

// Interned per-class config templates. The public SSD*Config
// constructors build a fresh value (with fresh slices) on every call so
// callers may tweak them, but a fleet materializing 10⁵-10⁶ instances
// of the same class must not pay a slice allocation per device for
// tables that never change. NewNamed copies a template struct instead:
// the copy shares the immutable PowerStates/NonOpStates backing arrays
// across every instance of the class (the device models only ever read
// them — ssd.SSD.PowerStates() already hands callers a copy).
var (
	ssdTemplates = map[string]ssd.Config{
		"SSD1": SSD1Config(),
		"SSD2": SSD2Config(),
		"SSD3": SSD3Config(),
		"EVO":  EVOConfig(),
		"C960": C960Config(),
	}
	hddTemplate = HDDConfig()
)

// internedConfig returns the shared config template of an SSD-family
// profile. The caller owns the returned struct copy but must not mutate
// its slice fields, which alias every other instance of the class.
func internedConfig(profile string) (ssd.Config, bool) {
	cfg, ok := ssdTemplates[profile]
	return cfg, ok
}

// internedHDDConfig returns the shared HDD config template.
func internedHDDConfig() hdd.Config { return hddTemplate }
