package catalog

import (
	"testing"
	"time"

	"wattio/internal/device"
	"wattio/internal/sim"
	"wattio/internal/workload"
)

// TestSSD1Breakdown is a diagnostic: it logs the average per-component
// power during SSD1's headline random-write workload so calibration
// drift is attributable.
func TestSSD1Breakdown(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(7)
	dev := NewSSD1(eng, rng)
	sums := make([]float64, 6)
	n := 0
	var sampler func()
	sampler = func() {
		_, watts := dev.PowerBreakdown()
		for i, w := range watts {
			sums[i] += w
		}
		n++
		eng.After(time.Millisecond, sampler)
	}
	eng.After(time.Millisecond, sampler)
	r := workload.Start(eng, dev, calJob(device.OpWrite, workload.Rand, 256*KiB, 64), rng)
	for !r.Done() && eng.Step() {
	}
	names, _ := dev.PowerBreakdown()
	total := 0.0
	for i, s := range sums {
		avg := s / float64(n)
		total += avg
		t.Logf("%-12s %.3f W", names[i], avg)
	}
	t.Logf("%-12s %.3f W over %d samples", "total", total, n)
}
