package catalog

// Calibration tests assert that each device model reproduces the numbers
// the paper publishes for the physical drive it stands in for. These are
// the contract between the simulator and the measurement study: if a
// model drifts away from the paper's observations, these tests fail.

import (
	"testing"
	"time"

	"wattio/internal/device"
	"wattio/internal/sim"
	"wattio/internal/workload"
)

// measured runs one job on one device and returns the workload result
// plus the average device power over the run window.
func measured(t *testing.T, dev device.Device, eng *sim.Engine, rng *sim.RNG, job workload.Job) (workload.Result, float64) {
	t.Helper()
	e0 := dev.EnergyJ()
	t0 := eng.Now()
	res := workload.Run(eng, dev, job, rng)
	elapsed := eng.Now() - t0
	if elapsed <= 0 {
		t.Fatalf("job %s finished in no time", job.Name())
	}
	avgW := (dev.EnergyJ() - e0) / elapsed.Seconds()
	return res, avgW
}

// calJob is the standard calibration workload bound: 1 GiB or 10 s,
// a scaled-down version of the paper's 4 GiB-or-60 s rule.
func calJob(op device.Op, pat workload.Pattern, bs int64, depth int) workload.Job {
	return workload.Job{
		Op: op, Pattern: pat, BS: bs, Depth: depth,
		Runtime: 10 * time.Second, TotalBytes: 4 * GiB,
	}
}

// idlePower measures a device's draw with no IO over one second.
func idlePower(dev device.Device, eng *sim.Engine) float64 {
	e0, t0 := dev.EnergyJ(), eng.Now()
	eng.RunUntil(t0 + time.Second)
	return (dev.EnergyJ() - e0) / (eng.Now() - t0).Seconds()
}

func wantRange(t *testing.T, name string, got, lo, hi float64) {
	t.Helper()
	if got < lo || got > hi {
		t.Errorf("%s = %.3f, want in [%.3f, %.3f]", name, got, lo, hi)
	} else {
		t.Logf("%s = %.3f (target [%.3f, %.3f])", name, got, lo, hi)
	}
}

func TestIdlePower(t *testing.T) {
	t.Parallel()
	// Table 1 floors / §3.2.2: SSD1 3.5 W, SSD2 5 W, SSD3 1 W,
	// HDD 3.76 W spinning idle, EVO 0.35 W.
	targets := map[string][2]float64{
		"SSD1": {3.4, 3.6},
		"SSD2": {4.9, 5.1},
		"SSD3": {0.95, 1.05},
		"HDD":  {3.7, 3.85},
		"EVO":  {0.33, 0.37},
	}
	for name, rng := range targets {
		t.Run(name, func(t *testing.T) {
			eng := sim.NewEngine()
			dev, _ := ByName(name, eng, sim.NewRNG(1))
			wantRange(t, name+" idle W", idlePower(dev, eng), rng[0], rng[1])
		})
	}
}

func TestSSD2SequentialWriteUnderPowerStates(t *testing.T) {
	t.Parallel()
	// Fig. 4a: sequential write throughput in ps1 is ~74% of ps0 and in
	// ps2 ~55% of ps0 (26% and then 45% drops).
	bw := make([]float64, 3)
	pw := make([]float64, 3)
	for ps := 0; ps < 3; ps++ {
		eng := sim.NewEngine()
		rng := sim.NewRNG(7)
		dev := NewSSD2(eng, rng)
		if err := dev.SetPowerState(ps); err != nil {
			t.Fatal(err)
		}
		res, avgW := measured(t, dev, eng, rng, calJob(device.OpWrite, workload.Seq, 256*KiB, 64))
		bw[ps], pw[ps] = res.BandwidthMBps, avgW
	}
	t.Logf("seq write bw: ps0=%.0f ps1=%.0f ps2=%.0f MB/s; power: %.2f %.2f %.2f W",
		bw[0], bw[1], bw[2], pw[0], pw[1], pw[2])
	wantRange(t, "ps0 bw MB/s", bw[0], 3000, 3450)
	wantRange(t, "ps0 power W", pw[0], 13.7, 15.1)
	wantRange(t, "ps1/ps0 bw", bw[1]/bw[0], 0.69, 0.79)
	wantRange(t, "ps2/ps0 bw", bw[2]/bw[0], 0.50, 0.60)
	wantRange(t, "ps1 power W", pw[1], 11.5, 12.5)
	wantRange(t, "ps2 power W", pw[2], 9.5, 10.5)
}

func TestSSD2SequentialReadBarelyCapped(t *testing.T) {
	t.Parallel()
	// Fig. 4b: capping ps0→ps1→ps2 causes minimal sequential-read drop.
	bw := make([]float64, 3)
	pw := make([]float64, 3)
	for ps := 0; ps < 3; ps++ {
		eng := sim.NewEngine()
		rng := sim.NewRNG(7)
		dev := NewSSD2(eng, rng)
		if err := dev.SetPowerState(ps); err != nil {
			t.Fatal(err)
		}
		res, avgW := measured(t, dev, eng, rng, calJob(device.OpRead, workload.Seq, 256*KiB, 64))
		bw[ps], pw[ps] = res.BandwidthMBps, avgW
	}
	t.Logf("seq read bw: ps0=%.0f ps1=%.0f ps2=%.0f MB/s; power: %.2f %.2f %.2f W",
		bw[0], bw[1], bw[2], pw[0], pw[1], pw[2])
	wantRange(t, "ps0 read bw MB/s", bw[0], 3100, 3450)
	wantRange(t, "ps2/ps0 read bw", bw[2]/bw[0], 0.93, 1.0)
	wantRange(t, "read power W", pw[0], 6.5, 9.5)
}

func TestSSD2RandomWritePeakPower(t *testing.T) {
	t.Parallel()
	// Table 1: SSD2's measured range tops out at 15.1 W, reached on
	// large-chunk random writes.
	eng := sim.NewEngine()
	rng := sim.NewRNG(7)
	dev := NewSSD2(eng, rng)
	res, avgW := measured(t, dev, eng, rng, calJob(device.OpWrite, workload.Rand, 2*MiB, 64))
	t.Logf("rand write 2MiB qd64: %.0f MB/s at %.2f W", res.BandwidthMBps, avgW)
	wantRange(t, "avg power W", avgW, 13.8, 15.1)
}

func TestSSD2RandomWriteLatencyUnderCap(t *testing.T) {
	t.Parallel()
	// Fig. 5: random-write latency at qd1, ps2 vs ps0: average up to
	// ~2x, p99 up to ~6.2x at the largest chunks.
	type lat struct{ avg, p99 time.Duration }
	res := make([]lat, 3)
	for ps := 0; ps < 3; ps++ {
		eng := sim.NewEngine()
		rng := sim.NewRNG(7)
		dev := NewSSD2(eng, rng)
		if err := dev.SetPowerState(ps); err != nil {
			t.Fatal(err)
		}
		r, _ := measured(t, dev, eng, rng, calJob(device.OpWrite, workload.Rand, 2*MiB, 1))
		res[ps] = lat{r.LatAvg, r.LatP99}
	}
	avgRatio := float64(res[2].avg) / float64(res[0].avg)
	p99Ratio := float64(res[2].p99) / float64(res[0].p99)
	t.Logf("2MiB qd1 randwrite: ps0 avg=%v p99=%v; ps2 avg=%v p99=%v (ratios %.2f, %.2f)",
		res[0].avg, res[0].p99, res[2].avg, res[2].p99, avgRatio, p99Ratio)
	wantRange(t, "ps2/ps0 avg latency", avgRatio, 1.3, 2.3)
	wantRange(t, "ps2/ps0 p99 latency", p99Ratio, 3.0, 7.0)
}

func TestSSD2RandomReadLatencyUnaffected(t *testing.T) {
	t.Parallel()
	// Fig. 6: reads at qd1 do not load the device enough to be capped;
	// latency is flat across power states.
	var lats [3]time.Duration
	for ps := 0; ps < 3; ps++ {
		eng := sim.NewEngine()
		rng := sim.NewRNG(7)
		dev := NewSSD2(eng, rng)
		if err := dev.SetPowerState(ps); err != nil {
			t.Fatal(err)
		}
		r, _ := measured(t, dev, eng, rng, workload.Job{
			Op: device.OpRead, Pattern: workload.Rand, BS: 256 * KiB, Depth: 1,
			Runtime: 3 * time.Second, TotalBytes: 256 * MiB,
		})
		lats[ps] = r.LatAvg
	}
	ratio := float64(lats[2]) / float64(lats[0])
	t.Logf("rand read qd1 avg lat: ps0=%v ps2=%v (ratio %.3f)", lats[0], lats[2], ratio)
	wantRange(t, "ps2/ps0 read latency", ratio, 0.98, 1.02)
}

func TestSSD1RandomWriteHeadline(t *testing.T) {
	t.Parallel()
	// §3.3: SSD1 at qd64 / 256 KiB random write delivers ~3.3 GiB/s at
	// ~8.19 W; dropping to qd1 cuts power ~20% and throughput ~40%.
	eng := sim.NewEngine()
	rng := sim.NewRNG(7)
	dev := NewSSD1(eng, rng)
	r64, p64 := measured(t, dev, eng, rng, calJob(device.OpWrite, workload.Rand, 256*KiB, 64))

	eng2 := sim.NewEngine()
	rng2 := sim.NewRNG(7)
	dev2 := NewSSD1(eng2, rng2)
	r1, p1 := measured(t, dev2, eng2, rng2, calJob(device.OpWrite, workload.Rand, 256*KiB, 1))

	t.Logf("SSD1 randwrite 256KiB: qd64 %.0f MB/s @ %.2f W; qd1 %.0f MB/s @ %.2f W",
		r64.BandwidthMBps, p64, r1.BandwidthMBps, p1)
	wantRange(t, "qd64 bw GiB/s", r64.BandwidthMBps/1073.74, 3.1, 3.45)
	wantRange(t, "qd64 power W", p64, 7.8, 8.6)
	wantRange(t, "qd1/qd64 bw", r1.BandwidthMBps/r64.BandwidthMBps, 0.52, 0.68)
	wantRange(t, "qd1/qd64 power", p1/p64, 0.72, 0.88)
}

func TestSSD1InstantaneousSwing(t *testing.T) {
	t.Parallel()
	// Fig. 2a: SSD1's instantaneous power during random write swings
	// well above its ~8.2 W average, up to ~13.5 W.
	eng := sim.NewEngine()
	rng := sim.NewRNG(7)
	dev := NewSSD1(eng, rng)
	peak := 0.0
	var sampler func()
	sampler = func() {
		if p := dev.InstantPower(); p > peak {
			peak = p
		}
		eng.After(time.Millisecond, sampler)
	}
	eng.After(time.Millisecond, sampler)
	res := workload.Start(eng, dev, calJob(device.OpWrite, workload.Rand, 256*KiB, 64), rng)
	for !res.Done() && eng.Step() {
	}
	wantRange(t, "SSD1 peak instantaneous W", peak, 11.8, 13.7)
}

func TestSSD3Range(t *testing.T) {
	t.Parallel()
	// Table 1: SSD3 measured 1-3.5 W; SATA-link-bound sequential IO.
	eng := sim.NewEngine()
	rng := sim.NewRNG(7)
	dev := NewSSD3(eng, rng)
	res, avgW := measured(t, dev, eng, rng, calJob(device.OpWrite, workload.Rand, 2*MiB, 64))
	t.Logf("SSD3 randwrite 2MiB qd64: %.0f MB/s @ %.2f W", res.BandwidthMBps, avgW)
	wantRange(t, "SSD3 max power W", avgW, 3.1, 3.55)
	wantRange(t, "SSD3 bw MB/s", res.BandwidthMBps, 440, 535)
}

func TestHDDSequentialThroughput(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(7)
	dev := NewHDD(eng, rng)
	res, avgW := measured(t, dev, eng, rng, workload.Job{
		Op: device.OpRead, Pattern: workload.Seq, BS: 2 * MiB, Depth: 4,
		Runtime: 10 * time.Second, TotalBytes: 4 * GiB,
	})
	t.Logf("HDD seq read: %.0f MB/s @ %.2f W", res.BandwidthMBps, avgW)
	wantRange(t, "HDD seq read MB/s", res.BandwidthMBps, 170, 215)
	wantRange(t, "HDD seq read W", avgW, 3.9, 4.6)
}

func TestHDDRandomWriteSeekPower(t *testing.T) {
	t.Parallel()
	// Table 1: HDD active power reaches ~5.3 W on seek-heavy work.
	eng := sim.NewEngine()
	rng := sim.NewRNG(7)
	dev := NewHDD(eng, rng)
	res, avgW := measured(t, dev, eng, rng, workload.Job{
		Op: device.OpWrite, Pattern: workload.Rand, BS: 2 * MiB, Depth: 64,
		Runtime: 20 * time.Second, TotalBytes: 2 * GiB,
	})
	t.Logf("HDD randwrite 2MiB qd64: %.0f MB/s @ %.2f W", res.BandwidthMBps, avgW)
	wantRange(t, "HDD randwrite W", avgW, 4.0, 4.8)
	wantRange(t, "HDD randwrite MB/s", res.BandwidthMBps, 90, 160)
}

func TestHDDStandbyPower(t *testing.T) {
	t.Parallel()
	// §3.2.2: standby 1.1 W vs 3.76 W idle, saving 2.66 W; spin-down
	// plus spin-up is on the order of ten seconds.
	eng := sim.NewEngine()
	rng := sim.NewRNG(7)
	dev := NewHDD(eng, rng)
	if err := dev.EnterStandby(); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(eng.Now() + 5*time.Second) // past the 1.5 s spin-down
	if !dev.Standby() {
		t.Fatal("HDD not in standby after EnterStandby + 5s")
	}
	wantRange(t, "HDD standby W", idlePower(dev, eng), 1.05, 1.15)

	// Wake and verify the multi-second spin-up restores idle power.
	wake := eng.Now()
	if err := dev.Wake(); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(wake + 10*time.Second)
	wantRange(t, "HDD awake W", idlePower(dev, eng), 3.7, 3.85)
}

func TestEVOSlumber(t *testing.T) {
	t.Parallel()
	// §3.2.2 / Fig. 7: ALPM SLUMBER cuts the EVO from 0.35 W idle to
	// 0.17 W, transitioning within half a second.
	eng := sim.NewEngine()
	rng := sim.NewRNG(7)
	dev := NewEVO(eng, rng)
	if err := dev.EnterStandby(); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(eng.Now() + 500*time.Millisecond)
	wantRange(t, "EVO slumber W", idlePower(dev, eng), 0.165, 0.175)
	if err := dev.Wake(); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(eng.Now() + 500*time.Millisecond)
	wantRange(t, "EVO awake W", idlePower(dev, eng), 0.33, 0.37)
}

func TestHDDSeekPeakPower(t *testing.T) {
	t.Parallel()
	// Table 1: the HDD's ~5.3 W ceiling comes from seek-dominated work:
	// small random reads that keep the actuator moving.
	eng := sim.NewEngine()
	rng := sim.NewRNG(7)
	dev := NewHDD(eng, rng)
	res, avgW := measured(t, dev, eng, rng, workload.Job{
		Op: device.OpRead, Pattern: workload.Rand, BS: 4 * KiB, Depth: 1,
		Runtime: 20 * time.Second, TotalBytes: 64 * MiB,
	})
	t.Logf("HDD randread 4KiB qd1: %.1f IOPS @ %.2f W", res.IOPS, avgW)
	wantRange(t, "HDD seek-heavy W", avgW, 4.9, 5.4)
	wantRange(t, "HDD 4KiB qd1 IOPS", res.IOPS, 60, 110)
}

func TestDeterministicEnergyAcrossRuns(t *testing.T) {
	t.Parallel()
	// Bit-identical reproducibility is a core promise: same seed, same
	// workload → identical energy and throughput.
	run := func() (float64, float64) {
		eng := sim.NewEngine()
		rng := sim.NewRNG(123)
		dev := NewSSD2(eng, rng)
		res, avgW := measured(t, dev, eng, rng, workload.Job{
			Op: device.OpWrite, Pattern: workload.Rand, BS: 128 * KiB, Depth: 16,
			Runtime: time.Second, TotalBytes: 128 * MiB,
		})
		return res.BandwidthMBps, avgW
	}
	bw1, pw1 := run()
	bw2, pw2 := run()
	if bw1 != bw2 || pw1 != pw2 {
		t.Fatalf("same-seed runs differ: (%v, %v) vs (%v, %v)", bw1, pw1, bw2, pw2)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	t.Parallel()
	run := func(seed uint64) float64 {
		eng := sim.NewEngine()
		rng := sim.NewRNG(seed)
		dev := NewSSD1(eng, rng)
		_, avgW := measured(t, dev, eng, rng, workload.Job{
			Op: device.OpWrite, Pattern: workload.Rand, BS: 128 * KiB, Depth: 16,
			Runtime: time.Second, TotalBytes: 128 * MiB,
		})
		return avgW
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produced identical measured power (ripple/noise not seeded?)")
	}
}

func TestEVOActivePerformance(t *testing.T) {
	t.Parallel()
	// The 860 EVO model stays a plausible SATA SSD even though the
	// paper only uses it for standby: ~500 MB/s sequential, ~2.5 W.
	eng := sim.NewEngine()
	rng := sim.NewRNG(7)
	dev := NewEVO(eng, rng)
	res, avgW := measured(t, dev, eng, rng, workload.Job{
		Op: device.OpWrite, Pattern: workload.Seq, BS: 256 * KiB, Depth: 32,
		Runtime: 5 * time.Second, TotalBytes: 512 * MiB,
	})
	wantRange(t, "EVO seq write MB/s", res.BandwidthMBps, 350, 540)
	wantRange(t, "EVO active W", avgW, 1.2, 3.0)
}

func TestSSD3ReadPath(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(7)
	dev := NewSSD3(eng, rng)
	res, avgW := measured(t, dev, eng, rng, workload.Job{
		Op: device.OpRead, Pattern: workload.Seq, BS: 256 * KiB, Depth: 32,
		Runtime: 5 * time.Second, TotalBytes: 512 * MiB,
	})
	wantRange(t, "SSD3 seq read MB/s", res.BandwidthMBps, 480, 535)
	wantRange(t, "SSD3 seq read W", avgW, 1.5, 2.6)
}

func TestCatalogNamesResolve(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	for _, name := range Names() {
		dev, ok := ByName(name, eng, rng)
		if !ok || dev.Name() != name {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("SSD9", eng, rng); ok {
		t.Error("unknown device resolved")
	}
	devs := Table1(sim.NewEngine(), sim.NewRNG(1))
	if len(devs) != 4 {
		t.Errorf("Table1 has %d devices, want 4", len(devs))
	}
}

func TestC960AutonomousIdle(t *testing.T) {
	t.Parallel()
	// Extension device: the client 960 EVO (the paper's ref [25]) idles
	// itself down via APST to about one-tenth of operational idle.
	eng := sim.NewEngine()
	rng := sim.NewRNG(7)
	dev := NewC960(eng, rng)
	// Operational idle (measured immediately, before APST kicks in).
	if got := dev.InstantPower(); got < 0.45 || got > 0.55 {
		t.Errorf("C960 operational idle = %.3f W, want ≈ 0.5", got)
	}
	eng.RunUntil(5 * time.Second)
	wantRange(t, "C960 autonomous idle W", idlePower(dev, eng), 0.045, 0.055)

	// It still performs like a client NVMe drive when driven.
	res, avgW := measured(t, dev, eng, rng, workload.Job{
		Op: device.OpWrite, Pattern: workload.Seq, BS: 256 * KiB, Depth: 32,
		Runtime: 3 * time.Second, TotalBytes: 512 * MiB,
	})
	wantRange(t, "C960 seq write MB/s", res.BandwidthMBps, 1500, 2300) // includes the SLC-cache-like buffer transient
	wantRange(t, "C960 active W", avgW, 3.0, 6.0)
}

// TestDeviceConformance runs every catalog device through the same
// mixed workload and checks cross-cutting invariants: every IO
// completes exactly once, instantaneous power stays within [deepest
// idle state, sum-of-components], and the event queue fully drains (no
// leaked timers).
func TestDeviceConformance(t *testing.T) {
	t.Parallel()
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			eng := sim.NewEngine()
			rng := sim.NewRNG(77)
			dev, _ := ByName(name, eng, rng)
			issued, completed := 0, 0
			offs := rng.Stream("conf")
			for i := 0; i < 64; i++ {
				op := device.OpRead
				if i%3 == 0 {
					op = device.OpWrite
				}
				size := int64(4096 << (i % 5))
				off := offs.Int64N(dev.CapacityBytes()-size) / 512 * 512
				issued++
				dev.Submit(device.Request{Op: op, Offset: off, Size: size}, func() { completed++ })
			}
			floor := 0.04 // C960's deepest non-op state
			for eng.Step() {
				p := dev.InstantPower()
				if p < floor || p > 40 {
					t.Fatalf("power %.3f W outside sane bounds at %v", p, eng.Now())
				}
			}
			if completed != issued {
				t.Fatalf("%d/%d IOs completed", completed, issued)
			}
			if eng.Pending() != 0 {
				t.Fatalf("%d events leaked after drain", eng.Pending())
			}
			if !dev.Settled() {
				t.Fatal("device not settled at quiesce")
			}
		})
	}
}
