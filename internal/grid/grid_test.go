package grid

import (
	"math/rand"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
)

func TestCoordsLexicographic(t *testing.T) {
	got := Coords([]int{2, 3})
	want := [][]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Coords(2,3) = %v, want %v", got, want)
	}
}

func TestCoordsEdgeCases(t *testing.T) {
	if got := Coords(nil); len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("Coords(nil) = %v, want one empty coordinate", got)
	}
	if got := Coords([]int{3, 0, 2}); got != nil {
		t.Fatalf("zero-length axis: got %v, want nil", got)
	}
}

// TestCoordsMatchesBruteForce checks random small grids against nested
// loops: same size, same order, strictly increasing lexicographically.
func TestCoordsMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		lens := make([]int, 1+r.Intn(4))
		n := 1
		for i := range lens {
			lens[i] = 1 + r.Intn(4)
			n *= lens[i]
		}
		got := Coords(lens)
		if len(got) != n {
			t.Fatalf("lens %v: %d coords, want %d", lens, len(got), n)
		}
		for i := 1; i < len(got); i++ {
			if !lexLess(got[i-1], got[i]) {
				t.Fatalf("lens %v: coords not lexicographically increasing at %d: %v then %v",
					lens, i, got[i-1], got[i])
			}
		}
		for _, c := range got {
			for ai, v := range c {
				if v < 0 || v >= lens[ai] {
					t.Fatalf("lens %v: coordinate %v out of range", lens, c)
				}
			}
		}
	}
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func TestProduct(t *testing.T) {
	cases := []struct {
		lens []int
		max  int
		n    int
		ok   bool
	}{
		{nil, 10, 1, true},
		{[]int{2, 3, 4}, 24, 24, true},
		{[]int{2, 3, 4}, 23, 0, false},
		{[]int{0, 5}, 10, 0, true},
		{[]int{-1}, 10, 0, false},
		{[]int{1 << 20, 1 << 20, 1 << 30}, 1 << 30, 0, false}, // would overflow without the guard
	}
	for _, tc := range cases {
		n, ok := Product(tc.lens, tc.max)
		if n != tc.n || ok != tc.ok {
			t.Errorf("Product(%v, %d) = (%d, %v), want (%d, %v)", tc.lens, tc.max, n, ok, tc.n, tc.ok)
		}
	}
}

// TestPoolRunsEveryTaskOnce: every index runs exactly once at any
// worker count, including the degenerate ones.
func TestPoolRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7, 100} {
		const n = 37
		var runs [n]int32
		Pool(n, workers, func(i int) { atomic.AddInt32(&runs[i], 1) })
		for i, c := range runs {
			if c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, c)
			}
		}
	}
	Pool(0, 4, func(i int) { t.Fatal("task ran for n=0") })
}

// TestPoolSlotDeterminism: results written to per-index slots are
// identical regardless of worker count.
func TestPoolSlotDeterminism(t *testing.T) {
	task := func(i int) int { return i*i + 3 }
	run := func(workers int) []int {
		out := make([]int, 64)
		Pool(len(out), workers, func(i int) { out[i] = task(i) })
		return out
	}
	ref := run(1)
	for _, w := range []int{2, 4, 16} {
		if got := run(w); !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d results differ from serial run", w)
		}
	}
	if !sort.IntsAreSorted(ref) {
		t.Fatal("slot results out of order")
	}
}
