// Package grid is the repository's single grid code path: every layer
// that expands a cross-product of axes into a family of independent
// runs — the measurement sweeps (internal/sweep), the scenario campaign
// expansion (internal/scenario), and the campaign executor
// (internal/campaign) — enumerates coordinates and schedules work
// through this package instead of hand-rolling nested loops and worker
// pools.
//
// Determinism contract: Coords returns coordinates in lexicographic
// order, and Pool assigns task i to output slot i regardless of which
// worker runs it or when, so callers that write results into
// fixed-index slices get bit-identical output independent of host
// scheduling.
package grid

import "sync"

// Coords enumerates every coordinate of a grid with the given axis
// lengths, in lexicographic order (the last axis varies fastest). An
// empty lens yields the single empty coordinate; any zero-length axis
// yields no coordinates.
func Coords(lens []int) [][]int {
	n, ok := Product(lens, 1<<30)
	if !ok || n == 0 {
		return nil
	}
	out := make([][]int, 0, n)
	cur := make([]int, len(lens))
	for {
		c := make([]int, len(cur))
		copy(c, cur)
		out = append(out, c)
		// Odometer increment from the last axis.
		i := len(cur) - 1
		for ; i >= 0; i-- {
			cur[i]++
			if cur[i] < lens[i] {
				break
			}
			cur[i] = 0
		}
		if i < 0 {
			return out
		}
	}
}

// Product returns the expansion size of the axis lengths, reporting
// !ok instead of a wrapped value when the product exceeds max (or any
// axis length is negative). An empty lens has product 1.
func Product(lens []int, max int) (int, bool) {
	n := 1
	for _, l := range lens {
		if l < 0 {
			return 0, false
		}
		if l != 0 && n > max/l {
			return 0, false
		}
		n *= l
	}
	if n > max {
		return 0, false
	}
	return n, true
}

// Pool runs fn(0), ..., fn(n-1) across at most workers goroutines and
// returns when all calls have finished. Task indices are handed out in
// order; fn must confine its writes to per-index state (slot i of a
// results slice), which is what keeps grid runs bit-identical
// regardless of scheduling. workers < 1 is clamped to 1, and a pool
// never spawns more goroutines than tasks.
func Pool(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
