package fault

import (
	"errors"
	"testing"
	"time"

	"wattio/internal/catalog"
	"wattio/internal/device"
	"wattio/internal/sim"
	"wattio/internal/workload"
)

// newFaulted wraps a fresh SSD2 in a fault device; the fault RNG stream
// is derived from the same root so runs are reproducible.
func newFaulted(t *testing.T, p Profile) (*Device, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	rng := sim.NewRNG(7)
	inner := catalog.NewSSD2(eng, rng.Stream("dev"))
	d, err := New(inner, eng, rng.Stream("fault"), p)
	if err != nil {
		t.Fatal(err)
	}
	return d, eng
}

// oneIO submits a single 4 KiB read and drains the engine until it
// completes, returning the completion latency.
func oneIO(eng *sim.Engine, d device.Device) time.Duration {
	start := eng.Now()
	done := false
	d.Submit(device.Request{Op: device.OpRead, Offset: 1 << 30, Size: 4096}, func() { done = true })
	for !done && eng.Step() {
	}
	return eng.Now() - start
}

func TestEmptyProfileTransparent(t *testing.T) {
	t.Parallel()
	// The same workload with the same seeds must produce identical
	// completions and energy whether or not the (empty) wrapper is
	// in the path — the chaos plumbing must be happy-path neutral.
	run := func(wrap bool) (int64, time.Duration, float64) {
		eng := sim.NewEngine()
		rng := sim.NewRNG(99)
		var dev device.Device = catalog.NewSSD2(eng, rng.Stream("dev"))
		if wrap {
			dev = MustNew(dev, eng, rng.Stream("fault"), Profile{})
		}
		res := workload.Run(eng, dev, workload.Job{
			Op: device.OpWrite, Pattern: workload.Rand, BS: 256 << 10, Depth: 32,
			Runtime: 300 * time.Millisecond,
		}, rng.Stream("wl"))
		return res.IOs, eng.Now(), dev.EnergyJ()
	}
	ios0, now0, e0 := run(false)
	ios1, now1, e1 := run(true)
	if ios0 != ios1 || now0 != now1 || e0 != e1 {
		t.Errorf("empty profile not transparent: IOs %d vs %d, end %v vs %v, energy %v vs %v",
			ios0, ios1, now0, now1, e0, e1)
	}
}

func TestLatencySpikeWindow(t *testing.T) {
	t.Parallel()
	d, eng := newFaulted(t, Profile{Windows: []Window{
		{Kind: LatencySpike, Start: 0, Dur: 50 * time.Millisecond, Factor: 3, Extra: 2 * time.Millisecond},
	}})
	inside := oneIO(eng, d)
	eng.RunUntil(60 * time.Millisecond)
	outside := oneIO(eng, d)
	if inside < outside+2*time.Millisecond {
		t.Errorf("spiked latency %v not > clean latency %v + 2 ms extra", inside, outside)
	}
	if d.Injected(LatencySpike) != 1 {
		t.Errorf("latency injections = %d, want 1", d.Injected(LatencySpike))
	}
	if d.Injected(IOError) != 0 || d.InjectedTotal() != 1 {
		t.Errorf("unexpected other injections, total %d", d.InjectedTotal())
	}
}

func TestIOErrorRetriesAreLatency(t *testing.T) {
	t.Parallel()
	// Prob 1 with the default MaxRetries=3 and RetryPenalty=500 µs
	// means every IO inside the window pays exactly 1.5 ms extra.
	d, eng := newFaulted(t, Profile{Windows: []Window{
		{Kind: IOError, Start: 0, Dur: 50 * time.Millisecond, Prob: 1},
	}})
	inside := oneIO(eng, d)
	eng.RunUntil(60 * time.Millisecond)
	outside := oneIO(eng, d)
	if got := inside - outside; got < 1400*time.Microsecond {
		t.Errorf("transient-error IO only %v slower, want ≈1.5 ms of retries", got)
	}
	if d.Retries() != 3 {
		t.Errorf("retries = %d, want 3 (MaxRetries at prob 1)", d.Retries())
	}
	if d.Injected(IOError) != 1 {
		t.Errorf("ioerror injections = %d, want 1 (per IO, not per retry)", d.Injected(IOError))
	}
}

func TestIOErrorDeterministicAcrossRuns(t *testing.T) {
	t.Parallel()
	run := func() (int, int, time.Duration) {
		d, eng := newFaulted(t, Profile{Windows: []Window{
			{Kind: IOError, Start: 0, Dur: time.Second, Prob: 0.4},
		}})
		for i := 0; i < 100; i++ {
			oneIO(eng, d)
		}
		return d.Retries(), d.Injected(IOError), eng.Now()
	}
	r0, n0, t0 := run()
	r1, n1, t1 := run()
	if r0 != r1 || n0 != n1 || t0 != t1 {
		t.Errorf("same seed diverged: retries %d vs %d, injected %d vs %d, end %v vs %v",
			r0, r1, n0, n1, t0, t1)
	}
	if r0 == 0 {
		t.Error("prob 0.4 over 100 IOs injected nothing")
	}
}

func TestPowerCmdWindows(t *testing.T) {
	t.Parallel()
	d, eng := newFaulted(t, Profile{Windows: []Window{
		{Kind: PowerCmdFail, Start: 0, Dur: 10 * time.Millisecond},
		{Kind: PowerCmdTimeout, Start: 10 * time.Millisecond, Dur: 10 * time.Millisecond},
	}})
	if err := d.SetPowerState(1); !errors.Is(err, ErrCmdFail) || !errors.Is(err, ErrInjected) {
		t.Errorf("in-window SetPowerState = %v, want ErrCmdFail wrapping ErrInjected", err)
	}
	if d.PowerStateIndex() != 0 {
		t.Errorf("failed command changed state to %d", d.PowerStateIndex())
	}
	eng.RunUntil(15 * time.Millisecond)
	if err := d.SetPowerState(1); !errors.Is(err, ErrCmdTimeout) {
		t.Errorf("timeout-window SetPowerState = %v, want ErrCmdTimeout", err)
	}
	eng.RunUntil(25 * time.Millisecond)
	if err := d.SetPowerState(1); err != nil {
		t.Errorf("post-window SetPowerState failed: %v", err)
	}
	if d.PowerStateIndex() != 1 {
		t.Errorf("state = %d, want 1", d.PowerStateIndex())
	}
	if d.Injected(PowerCmdFail) != 1 || d.Injected(PowerCmdTimeout) != 1 {
		t.Errorf("injections fail/timeout = %d/%d, want 1/1",
			d.Injected(PowerCmdFail), d.Injected(PowerCmdTimeout))
	}
}

func TestDropoutHoldsIOAndControl(t *testing.T) {
	t.Parallel()
	const winEnd = 50 * time.Millisecond
	d, eng := newFaulted(t, Profile{Windows: []Window{
		{Kind: Dropout, Start: 0, Dur: winEnd},
	}})
	if d.Healthy() {
		t.Error("Healthy() = true inside a dropout window")
	}
	if err := d.SetPowerState(1); !errors.Is(err, ErrUnavailable) {
		t.Errorf("SetPowerState during dropout = %v, want ErrUnavailable", err)
	}
	if err := d.EnterStandby(); !errors.Is(err, ErrUnavailable) {
		t.Errorf("EnterStandby during dropout = %v, want ErrUnavailable", err)
	}
	if err := d.Wake(); !errors.Is(err, ErrUnavailable) {
		t.Errorf("Wake during dropout = %v, want ErrUnavailable", err)
	}

	done := false
	d.Submit(device.Request{Op: device.OpRead, Offset: 0, Size: 4096}, func() { done = true })
	if d.Held() != 1 {
		t.Errorf("Held() = %d, want 1", d.Held())
	}
	for !done && eng.Step() {
	}
	if !done {
		t.Fatal("held IO never completed")
	}
	if eng.Now() < winEnd {
		t.Errorf("held IO completed at %v, before the window end %v", eng.Now(), winEnd)
	}
	if !d.Healthy() {
		t.Error("Healthy() = false after the dropout window")
	}
	if d.Held() != 0 {
		t.Errorf("Held() = %d after release, want 0", d.Held())
	}
}

func TestThermalBlocksPowerRaise(t *testing.T) {
	t.Parallel()
	d, eng := newFaulted(t, Profile{Windows: []Window{
		{Kind: Thermal, Start: 0, Dur: 50 * time.Millisecond, Factor: 4},
	}})
	// Stepping down is always allowed — the throttle only refuses
	// transitions that would raise power (lower state index).
	if err := d.SetPowerState(2); err != nil {
		t.Fatalf("down-transition during thermal window failed: %v", err)
	}
	if err := d.SetPowerState(0); !errors.Is(err, ErrThermal) {
		t.Errorf("up-transition during thermal window = %v, want ErrThermal", err)
	}
	if d.PowerStateIndex() != 2 {
		t.Errorf("state = %d, want 2", d.PowerStateIndex())
	}
	inside := oneIO(eng, d)
	eng.RunUntil(60 * time.Millisecond)
	outside := oneIO(eng, d)
	if inside < outside*2 {
		t.Errorf("throttled latency %v not ≥ 2× clean latency %v at factor 4", inside, outside)
	}
	eng.RunUntil(70 * time.Millisecond)
	if err := d.SetPowerState(0); err != nil {
		t.Errorf("post-window up-transition failed: %v", err)
	}
}

func TestProfileValidation(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(7)
	inner := catalog.NewSSD2(eng, rng.Stream("dev"))
	bad := []Profile{
		{Windows: []Window{{Kind: Kind(99), Start: 0, Dur: time.Second}}},
		{Windows: []Window{{Kind: Dropout, Start: -time.Second, Dur: time.Second}}},
		{Windows: []Window{{Kind: Dropout, Start: 0, Dur: 0}}},
		{Windows: []Window{{Kind: IOError, Start: 0, Dur: time.Second, Prob: 1.5}}},
		{RetryPenalty: -time.Second},
		{MaxRetries: -1},
	}
	for i, p := range bad {
		if _, err := New(inner, eng, rng, p); err == nil {
			t.Errorf("profile %d accepted: %+v", i, p)
		}
	}
	// IOError windows draw from the RNG; a nil stream cannot be
	// deterministic, so construction must refuse it.
	p := Profile{Windows: []Window{{Kind: IOError, Start: 0, Dur: time.Second, Prob: 0.5}}}
	if _, err := New(inner, eng, nil, p); err == nil {
		t.Error("IOError window with nil RNG accepted")
	}
	if _, err := New(inner, eng, nil, Profile{}); err != nil {
		t.Errorf("empty profile with nil RNG rejected: %v", err)
	}
}

func TestKindString(t *testing.T) {
	t.Parallel()
	want := map[Kind]string{
		LatencySpike: "latency", IOError: "ioerror", PowerCmdFail: "cmdfail",
		PowerCmdTimeout: "cmdtimeout", Dropout: "dropout", Thermal: "thermal",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
}
