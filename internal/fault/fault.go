// Package fault injects deterministic failures into the power-control
// plane. The paper's §4.1 names "local failures of the storage system
// to control power" as the reason power-adaptive deployments need a
// feedback safety net; this package makes those failures reproducible
// so the control plane (governor, redirector, budget controller,
// rollout manager) can be tested against devices that do NOT obey
// every command.
//
// A fault.Device wraps any device.Device and injects faults from a
// Profile: scripted windows on the simulation clock (dropout, command
// failure, latency, thermal throttle) plus probabilistic transient IO
// errors drawn from a per-experiment RNG stream. Both sources are
// deterministic — the same (profile, fault seed) pair always injects
// the same faults at the same virtual times — so a faulted run is as
// reproducible as a clean one.
//
// The wrapper never touches the device model underneath: power draw
// and energy accounting remain the inner device's, and with an empty
// Profile the wrapper is behavior-transparent (same completions at the
// same virtual times, same power).
package fault

import (
	"errors"
	"fmt"
	"time"

	"wattio/internal/device"
	"wattio/internal/sim"
	"wattio/internal/telemetry"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// LatencySpike delays IO completions inside the window: service
	// time is multiplied by Factor and Extra is added on top.
	LatencySpike Kind = iota
	// IOError makes each IO inside the window fail transiently with
	// probability Prob per attempt; the wrapper models the host
	// retries, each costing RetryPenalty of extra latency. The Device
	// interface has no error channel on the data path — like the
	// kernel block layer, transient errors surface as latency.
	IOError
	// PowerCmdFail makes SetPowerState return ErrCmdFail inside the
	// window, leaving the state unchanged.
	PowerCmdFail
	// PowerCmdTimeout makes SetPowerState return ErrCmdTimeout inside
	// the window, leaving the state unchanged.
	PowerCmdTimeout
	// Dropout takes the device offline for the window (brownout /
	// hot-unplug): new IO is held and released when the window ends,
	// control commands fail with ErrUnavailable, and Healthy reports
	// false. IO already in flight completes normally.
	Dropout
	// Thermal models a thermal-throttle episode: completions inside
	// the window are delayed by Factor, and SetPowerState calls that
	// would raise power (a lower state index) fail with ErrThermal.
	Thermal

	numKinds
)

// String returns the fault class name.
func (k Kind) String() string {
	switch k {
	case LatencySpike:
		return "latency"
	case IOError:
		return "ioerror"
	case PowerCmdFail:
		return "cmdfail"
	case PowerCmdTimeout:
		return "cmdtimeout"
	case Dropout:
		return "dropout"
	case Thermal:
		return "thermal"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Injected faults surface as errors wrapping ErrInjected, so callers
// can distinguish an injected failure from a device-model error with
// errors.Is.
var (
	// ErrInjected is the root of every injected error.
	ErrInjected = errors.New("fault: injected failure")
	// ErrCmdFail is returned by SetPowerState in a PowerCmdFail window.
	ErrCmdFail = fmt.Errorf("%w: power command failed", ErrInjected)
	// ErrCmdTimeout is returned by SetPowerState in a PowerCmdTimeout
	// window.
	ErrCmdTimeout = fmt.Errorf("%w: power command timed out", ErrInjected)
	// ErrUnavailable is returned by control commands during a Dropout
	// window.
	ErrUnavailable = fmt.Errorf("%w: device unavailable", ErrInjected)
	// ErrThermal is returned by SetPowerState calls that would raise
	// power during a Thermal window.
	ErrThermal = fmt.Errorf("%w: thermal throttle refuses higher-power state", ErrInjected)
)

// Window is one scripted fault episode on the simulation clock:
// [Start, Start+Dur) in virtual time.
type Window struct {
	Kind  Kind
	Start time.Duration
	Dur   time.Duration

	// Factor multiplies IO service time for LatencySpike and Thermal
	// windows; values <= 1 leave service time unchanged.
	Factor float64
	// Extra is added to IO latency for LatencySpike windows.
	Extra time.Duration
	// Prob is the per-attempt transient failure probability for
	// IOError windows, in [0, 1].
	Prob float64
}

// contains reports whether t falls inside the window.
func (w Window) contains(t time.Duration) bool {
	return t >= w.Start && t < w.Start+w.Dur
}

// End returns the window's end time.
func (w Window) End() time.Duration { return w.Start + w.Dur }

// Profile is a full fault schedule for one device.
type Profile struct {
	Windows []Window

	// RetryPenalty is the extra latency one transient-IO-error retry
	// costs (default 500 µs).
	RetryPenalty time.Duration
	// MaxRetries bounds retries per IO (default 3); an IO never fails
	// permanently, matching a data path without an error channel.
	MaxRetries int
}

// Validate checks the profile for nonsensical windows.
func (p Profile) Validate() error {
	for i, w := range p.Windows {
		switch {
		case w.Kind < 0 || w.Kind >= numKinds:
			return fmt.Errorf("fault: window %d has unknown kind %d", i, int(w.Kind))
		case w.Start < 0 || w.Dur <= 0:
			return fmt.Errorf("fault: window %d (%v) has invalid span [%v, +%v)", i, w.Kind, w.Start, w.Dur)
		case w.Kind == IOError && (w.Prob < 0 || w.Prob > 1):
			return fmt.Errorf("fault: window %d probability %v out of [0,1]", i, w.Prob)
		}
	}
	if p.RetryPenalty < 0 {
		return fmt.Errorf("fault: negative retry penalty %v", p.RetryPenalty)
	}
	if p.MaxRetries < 0 {
		return fmt.Errorf("fault: negative max retries %d", p.MaxRetries)
	}
	return nil
}

// Device wraps an inner device.Device and injects the profile's
// faults. It implements device.Device and device.HealthReporter; all
// power and energy accounting passes through to the inner device
// untouched, so energy-conservation probes hold across fault windows.
type Device struct {
	inner device.Device
	eng   *sim.Engine
	rng   *sim.RNG
	prof  Profile

	held int // IOs currently held by a dropout window

	// injected counts injections per kind (one per affected IO or
	// command, not per retry).
	injected [numKinds]int
	retries  int

	cInjected *telemetry.Counter
	cIOErr    *telemetry.Counter
	cCmdFail  *telemetry.Counter
	cHeld     *telemetry.Counter
}

// New wraps inner with a fault profile. rng seeds the probabilistic
// faults (transient IO errors); it may be nil when the profile has no
// IOError windows. The wrapper taps the engine's telemetry registry
// for fault_injected_total, fault_io_retries_total,
// fault_cmd_failures_total, and fault_dropout_held_total.
func New(inner device.Device, eng *sim.Engine, rng *sim.RNG, p Profile) (*Device, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.RetryPenalty == 0 {
		p.RetryPenalty = 500 * time.Microsecond
	}
	if p.MaxRetries == 0 {
		p.MaxRetries = 3
	}
	for _, w := range p.Windows {
		if w.Kind == IOError && w.Prob > 0 && rng == nil {
			return nil, fmt.Errorf("fault: IOError windows need an RNG stream")
		}
	}
	reg := eng.Metrics()
	return &Device{
		inner: inner,
		eng:   eng,
		rng:   rng,
		prof:  p,

		cInjected: reg.Counter("fault_injected_total"),
		cIOErr:    reg.Counter("fault_io_retries_total"),
		cCmdFail:  reg.Counter("fault_cmd_failures_total"),
		cHeld:     reg.Counter("fault_dropout_held_total"),
	}, nil
}

// MustNew is New panicking on an invalid profile; fault schedules are
// experiment code, and bugs in them should fail loudly.
func MustNew(inner device.Device, eng *sim.Engine, rng *sim.RNG, p Profile) *Device {
	d, err := New(inner, eng, rng, p)
	if err != nil {
		panic(err)
	}
	return d
}

// Inner returns the wrapped device.
func (d *Device) Inner() device.Device { return d.inner }

// Injected returns how many injections of the given kind have fired:
// affected IOs for LatencySpike/IOError/Dropout/Thermal, rejected
// commands for PowerCmdFail/PowerCmdTimeout.
func (d *Device) Injected(k Kind) int {
	if k < 0 || k >= numKinds {
		return 0
	}
	return d.injected[int(k)]
}

// InjectedTotal returns the total injection count across kinds.
func (d *Device) InjectedTotal() int {
	n := 0
	for _, v := range d.injected {
		n += v
	}
	return n
}

// Retries returns the total transient-IO-error retries injected.
func (d *Device) Retries() int { return d.retries }

// activeWindow returns the first window of kind k containing the
// engine's current time, or nil.
func (d *Device) activeWindow(k Kind) *Window {
	now := d.eng.Now()
	for i := range d.prof.Windows {
		w := &d.prof.Windows[i]
		if w.Kind == k && w.contains(now) {
			return w
		}
	}
	return nil
}

// Healthy implements device.HealthReporter: false during a Dropout
// window.
func (d *Device) Healthy() bool { return d.activeWindow(Dropout) == nil }

// Submit implements device.Device. Dropout windows hold the IO until
// the window ends; latency, thermal, and transient-error injections
// delay the completion callback.
func (d *Device) Submit(r device.Request, done func()) {
	if w := d.activeWindow(Dropout); w != nil {
		d.inject(Dropout)
		d.cHeld.Inc()
		d.held++
		// Release at window end; re-check then in case another dropout
		// window has started meanwhile.
		d.eng.Post(w.End(), func() {
			d.held--
			d.Submit(r, done)
		})
		return
	}

	// Decide the injected completion delay at submission time so the
	// draw order is deterministic.
	var delay time.Duration
	var factor float64 = 1
	if w := d.activeWindow(LatencySpike); w != nil {
		d.inject(LatencySpike)
		if w.Factor > 1 {
			factor *= w.Factor
		}
		delay += w.Extra
	}
	if w := d.activeWindow(Thermal); w != nil {
		d.inject(Thermal)
		if w.Factor > 1 {
			factor *= w.Factor
		}
	}
	if w := d.activeWindow(IOError); w != nil && w.Prob > 0 {
		n := 0
		for n < d.prof.MaxRetries && d.rng.Float64() < w.Prob {
			n++
		}
		if n > 0 {
			d.inject(IOError)
			d.retries += n
			d.cIOErr.Add(int64(n))
			delay += time.Duration(n) * d.prof.RetryPenalty
		}
	}

	if factor == 1 && delay == 0 {
		d.inner.Submit(r, done)
		return
	}
	submitted := d.eng.Now()
	d.inner.Submit(r, func() {
		extra := delay
		if factor > 1 {
			service := d.eng.Now() - submitted
			extra += time.Duration(float64(service) * (factor - 1))
		}
		if extra <= 0 {
			done()
			return
		}
		d.eng.PostAfter(extra, done)
	})
}

// Held returns the number of IOs currently held by a dropout window.
func (d *Device) Held() int { return d.held }

func (d *Device) inject(k Kind) {
	d.injected[int(k)]++
	d.cInjected.Inc()
}

// SetPowerState implements device.Device, rejecting the command inside
// PowerCmdFail, PowerCmdTimeout, and Dropout windows, and rejecting
// power-raising transitions inside Thermal windows.
func (d *Device) SetPowerState(index int) error {
	if d.activeWindow(Dropout) != nil {
		d.inject(Dropout)
		d.cCmdFail.Inc()
		return ErrUnavailable
	}
	if d.activeWindow(PowerCmdFail) != nil {
		d.inject(PowerCmdFail)
		d.cCmdFail.Inc()
		return ErrCmdFail
	}
	if d.activeWindow(PowerCmdTimeout) != nil {
		d.inject(PowerCmdTimeout)
		d.cCmdFail.Inc()
		return ErrCmdTimeout
	}
	if d.activeWindow(Thermal) != nil && index < d.inner.PowerStateIndex() {
		d.inject(Thermal)
		d.cCmdFail.Inc()
		return ErrThermal
	}
	return d.inner.SetPowerState(index)
}

// EnterStandby implements device.Device; unavailable during dropout.
func (d *Device) EnterStandby() error {
	if d.activeWindow(Dropout) != nil {
		d.inject(Dropout)
		return ErrUnavailable
	}
	return d.inner.EnterStandby()
}

// Wake implements device.Device; unavailable during dropout.
func (d *Device) Wake() error {
	if d.activeWindow(Dropout) != nil {
		d.inject(Dropout)
		return ErrUnavailable
	}
	return d.inner.Wake()
}

// Name implements device.Device.
func (d *Device) Name() string { return d.inner.Name() }

// Model implements device.Device.
func (d *Device) Model() string { return d.inner.Model() }

// Protocol implements device.Device.
func (d *Device) Protocol() device.Protocol { return d.inner.Protocol() }

// CapacityBytes implements device.Device.
func (d *Device) CapacityBytes() int64 { return d.inner.CapacityBytes() }

// InstantPower implements device.Device; the electrical model is the
// inner device's, untouched by fault windows.
func (d *Device) InstantPower() float64 { return d.inner.InstantPower() }

// EnergyJ implements device.Device.
func (d *Device) EnergyJ() float64 { return d.inner.EnergyJ() }

// PowerStates implements device.Device.
func (d *Device) PowerStates() []device.PowerState { return d.inner.PowerStates() }

// PowerStateIndex implements device.Device.
func (d *Device) PowerStateIndex() int { return d.inner.PowerStateIndex() }

// Standby implements device.Device.
func (d *Device) Standby() bool { return d.inner.Standby() }

// Settled implements device.Device.
func (d *Device) Settled() bool { return d.inner.Settled() }

var (
	_ device.Device         = (*Device)(nil)
	_ device.HealthReporter = (*Device)(nil)
)
