// Package stats provides the summary statistics used throughout the
// measurement study: means, medians, percentiles, violin summaries of
// power distributions, and histograms of IO latency.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample set. It is the textual equivalent of one
// violin in the paper's Figure 2b.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	Stddev float64
	P1     float64
	P25    float64
	P75    float64
	P99    float64
}

// Summarize computes a Summary over xs. It returns the zero Summary for an
// empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	var sum, sq float64
	for _, v := range s {
		sum += v
		sq += v * v
	}
	n := float64(len(s))
	mean := sum / n
	variance := sq/n - mean*mean
	if variance < 0 {
		variance = 0 // guard against floating-point cancellation
	}
	return Summary{
		N:      len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Mean:   mean,
		Median: quantileSorted(s, 0.5),
		Stddev: math.Sqrt(variance),
		P1:     quantileSorted(s, 0.01),
		P25:    quantileSorted(s, 0.25),
		P75:    quantileSorted(s, 0.75),
		P99:    quantileSorted(s, 0.99),
	}
}

// String renders the summary on one line, suitable for experiment tables.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3f p25=%.3f med=%.3f mean=%.3f p75=%.3f p99=%.3f max=%.3f sd=%.3f",
		s.N, s.Min, s.P25, s.Median, s.Mean, s.P75, s.P99, s.Max, s.Stddev)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice or
// an out-of-range q.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// MinMax returns the smallest and largest values in xs. It panics on an
// empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Normalize returns xs scaled so that the largest value maps to 1. A
// slice whose maximum is zero is returned as all zeros.
func Normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	_, hi := MinMax(xs)
	if hi == 0 {
		return out
	}
	for i, v := range xs {
		out[i] = v / hi
	}
	return out
}

// Histogram is a fixed-width bucket histogram over [Lo, Hi). Values
// outside the range are clamped into the first and last buckets, so no
// observation is silently dropped.
type Histogram struct {
	Lo, Hi float64
	Counts []uint64
	total  uint64
}

// NewHistogram returns a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: histogram needs at least one bucket")
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: histogram range [%v, %v) is empty", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]uint64, n)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	i := int(float64(len(h.Counts)) * (v - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() uint64 { return h.total }

// BucketMid returns the midpoint value of bucket i.
func (h *Histogram) BucketMid(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Quantile estimates the q-quantile from bucket midpoints.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		panic("stats: quantile of empty histogram")
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			return h.BucketMid(i)
		}
	}
	return h.BucketMid(len(h.Counts) - 1)
}
