package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownValues(t *testing.T) {
	t.Parallel()
	xs := []float64{4, 1, 3, 2, 5}
	s := Summarize(xs)
	if s.N != 5 {
		t.Errorf("N = %d, want 5", s.N)
	}
	if s.Min != 1 || s.Max != 5 {
		t.Errorf("min/max = %v/%v, want 1/5", s.Min, s.Max)
	}
	if s.Mean != 3 {
		t.Errorf("mean = %v, want 3", s.Mean)
	}
	if s.Median != 3 {
		t.Errorf("median = %v, want 3", s.Median)
	}
	wantSD := math.Sqrt(2) // population stddev of 1..5
	if math.Abs(s.Stddev-wantSD) > 1e-12 {
		t.Errorf("stddev = %v, want %v", s.Stddev, wantSD)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	t.Parallel()
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v, want zero value", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	t.Parallel()
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestQuantileEndpoints(t *testing.T) {
	t.Parallel()
	xs := []float64{10, 20, 30, 40}
	if got := Quantile(xs, 0); got != 10 {
		t.Errorf("q0 = %v, want 10", got)
	}
	if got := Quantile(xs, 1); got != 40 {
		t.Errorf("q1 = %v, want 40", got)
	}
	if got := Quantile(xs, 0.5); got != 25 {
		t.Errorf("median = %v, want 25 (interpolated)", got)
	}
}

func TestQuantileSingleElement(t *testing.T) {
	t.Parallel()
	if got := Quantile([]float64{7}, 0.99); got != 7 {
		t.Errorf("quantile of singleton = %v, want 7", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"empty", func() { Quantile(nil, 0.5) }},
		{"below", func() { Quantile([]float64{1}, -0.1) }},
		{"above", func() { Quantile([]float64{1}, 1.1) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			tc.fn()
		})
	}
}

// Property: the quantile is always within [min, max] and monotone in q.
func TestQuantileProperty(t *testing.T) {
	t.Parallel()
	f := func(raw []float64, qa, qb float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		frac := func(x float64) float64 { return math.Abs(x - math.Trunc(x)) }
		qa, qb = frac(qa), frac(qb)
		if qa > qb {
			qa, qb = qb, qa
		}
		lo, hi := MinMax(xs)
		va, vb := Quantile(xs, qa), Quantile(xs, qb)
		return va >= lo && vb <= hi && va <= vb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	t.Parallel()
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %v, want 4", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestNormalize(t *testing.T) {
	t.Parallel()
	got := Normalize([]float64{2, 4, 8})
	want := []float64{0.25, 0.5, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Normalize[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNormalizeAllZero(t *testing.T) {
	t.Parallel()
	got := Normalize([]float64{0, 0})
	if got[0] != 0 || got[1] != 0 {
		t.Errorf("Normalize zeros = %v, want zeros", got)
	}
}

// Property: normalization preserves order and maps the max to 1 when the
// max is positive.
func TestNormalizeProperty(t *testing.T) {
	t.Parallel()
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		n := Normalize(xs)
		idx := make([]int, len(xs))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
		for k := 1; k < len(idx); k++ {
			if n[idx[k]] < n[idx[k-1]] {
				return false
			}
		}
		_, hi := MinMax(n)
		return math.Abs(hi-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBasic(t *testing.T) {
	t.Parallel()
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Errorf("bucket %d count = %d, want 1", i, c)
		}
	}
	if h.Total() != 10 {
		t.Errorf("Total = %d, want 10", h.Total())
	}
}

func TestHistogramClamping(t *testing.T) {
	t.Parallel()
	h := NewHistogram(0, 10, 10)
	h.Add(-5)
	h.Add(100)
	if h.Counts[0] != 1 || h.Counts[9] != 1 {
		t.Errorf("out-of-range values not clamped: %v", h.Counts)
	}
	if h.Total() != 2 {
		t.Errorf("Total = %d, want 2", h.Total())
	}
}

func TestHistogramQuantile(t *testing.T) {
	t.Parallel()
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	med := h.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Errorf("median estimate = %v, want ≈ 50", med)
	}
	p99 := h.Quantile(0.99)
	if p99 < 95 {
		t.Errorf("p99 estimate = %v, want ≥ 95", p99)
	}
}

func TestHistogramConstructorPanics(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"zero buckets", func() { NewHistogram(0, 1, 0) }},
		{"empty range", func() { NewHistogram(5, 5, 4) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestMinMax(t *testing.T) {
	t.Parallel()
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v, %v; want -1, 7", lo, hi)
	}
}
