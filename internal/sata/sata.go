// Package sata provides the AHCI/ATA control surface the paper uses on
// SATA devices: Aggressive Link Power Management (ALPM) for SSD standby
// (the SLUMBER state that halves the 860 EVO's idle power) and the ATA
// STANDBY IMMEDIATE / CHECK POWER MODE commands for HDD spin-down.
package sata

import (
	"fmt"

	"wattio/internal/device"
)

// LinkPM is an ALPM link power-management state.
type LinkPM int

// Link states in decreasing power order.
const (
	LinkActive LinkPM = iota
	LinkPartial
	LinkSlumber
)

// String returns the AHCI name of the link state.
func (l LinkPM) String() string {
	switch l {
	case LinkActive:
		return "ACTIVE"
	case LinkPartial:
		return "PARTIAL"
	case LinkSlumber:
		return "SLUMBER"
	}
	return fmt.Sprintf("LinkPM(%d)", int(l))
}

// ATA power-management command codes.
const (
	CmdStandbyImmediate uint8 = 0xE0
	CmdIdleImmediate    uint8 = 0xE1
	CmdStandby          uint8 = 0xE2
	CmdCheckPowerMode   uint8 = 0xE5
)

// PowerMode is the CHECK POWER MODE result (ATA spec values).
type PowerMode uint8

// CHECK POWER MODE return values.
const (
	ModeStandby PowerMode = 0x00
	ModeIdle    PowerMode = 0x80
	ModeActive  PowerMode = 0xFF
)

// String returns the ATA name of the mode.
func (m PowerMode) String() string {
	switch m {
	case ModeStandby:
		return "standby"
	case ModeIdle:
		return "idle"
	case ModeActive:
		return "active/idle"
	}
	return fmt.Sprintf("PowerMode(0x%02x)", uint8(m))
}

// Port is one AHCI port with a SATA device attached.
type Port struct {
	dev  device.Device
	alpm LinkPM
}

// NewPort attaches to a SATA device; NVMe devices are rejected.
func NewPort(dev device.Device) (*Port, error) {
	if dev.Protocol() != device.SATA {
		return nil, fmt.Errorf("sata: %s is %s, not SATA", dev.Name(), dev.Protocol())
	}
	return &Port{dev: dev}, nil
}

// Device returns the attached device.
func (p *Port) Device() device.Device { return p.dev }

// LinkState returns the commanded ALPM state.
func (p *Port) LinkState() LinkPM { return p.alpm }

// SetLinkPM commands an ALPM transition. SLUMBER puts the device into
// its low-power standby (for SSDs that support it); leaving SLUMBER
// wakes it. PARTIAL is accepted but treated as ACTIVE for devices whose
// partial state saves nothing measurable.
func (p *Port) SetLinkPM(l LinkPM) error {
	switch l {
	case LinkActive, LinkPartial:
		prev := p.alpm
		p.alpm = l
		if prev == LinkSlumber {
			return p.dev.Wake()
		}
		return nil
	case LinkSlumber:
		if err := p.dev.EnterStandby(); err != nil {
			return fmt.Errorf("sata: %s does not support SLUMBER: %w", p.dev.Name(), err)
		}
		p.alpm = LinkSlumber
		return nil
	default:
		return fmt.Errorf("sata: unknown link state %d", int(l))
	}
}

// Command issues one ATA power-management command.
func (p *Port) Command(code uint8) (PowerMode, error) {
	switch code {
	case CmdStandbyImmediate, CmdStandby:
		if err := p.dev.EnterStandby(); err != nil {
			return 0, fmt.Errorf("sata: STANDBY IMMEDIATE on %s: %w", p.dev.Name(), err)
		}
		return ModeStandby, nil
	case CmdIdleImmediate:
		if err := p.dev.Wake(); err != nil {
			return 0, fmt.Errorf("sata: IDLE IMMEDIATE on %s: %w", p.dev.Name(), err)
		}
		return ModeIdle, nil
	case CmdCheckPowerMode:
		if p.dev.Standby() {
			return ModeStandby, nil
		}
		return ModeActive, nil
	default:
		return 0, fmt.Errorf("sata: unsupported command 0x%02X", code)
	}
}
