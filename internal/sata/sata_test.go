package sata

import (
	"testing"
	"time"

	"wattio/internal/catalog"
	"wattio/internal/sim"
)

func TestNewPortRejectsNVMe(t *testing.T) {
	eng := sim.NewEngine()
	dev := catalog.NewSSD2(eng, sim.NewRNG(1))
	if _, err := NewPort(dev); err == nil {
		t.Fatal("NVMe device accepted on SATA port")
	}
}

func TestALPMSlumberOnEVO(t *testing.T) {
	eng := sim.NewEngine()
	dev := catalog.NewEVO(eng, sim.NewRNG(1))
	p, err := NewPort(dev)
	if err != nil {
		t.Fatal(err)
	}
	if p.LinkState() != LinkActive {
		t.Fatalf("initial link state = %v, want ACTIVE", p.LinkState())
	}
	if err := p.SetLinkPM(LinkSlumber); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(eng.Now() + time.Second)
	if mode, _ := p.Command(CmdCheckPowerMode); mode != ModeStandby {
		t.Errorf("CHECK POWER MODE = %v, want standby", mode)
	}
	if got := dev.InstantPower(); got < 0.16 || got > 0.18 {
		t.Errorf("slumber power = %.3f W, want ≈ 0.17", got)
	}
	if err := p.SetLinkPM(LinkActive); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(eng.Now() + time.Second)
	if mode, _ := p.Command(CmdCheckPowerMode); mode != ModeActive {
		t.Errorf("after wake, CHECK POWER MODE = %v, want active", mode)
	}
}

func TestALPMSlumberRejectedWithoutSupport(t *testing.T) {
	// SSD3 is a data-center SATA SSD; the paper notes standby is rarely
	// supported on such parts.
	eng := sim.NewEngine()
	dev := catalog.NewSSD3(eng, sim.NewRNG(1))
	p, err := NewPort(dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetLinkPM(LinkSlumber); err == nil {
		t.Fatal("SLUMBER accepted on a device without standby support")
	}
	if p.LinkState() != LinkActive {
		t.Errorf("failed SLUMBER changed link state to %v", p.LinkState())
	}
}

func TestStandbyImmediateSpinsDownHDD(t *testing.T) {
	eng := sim.NewEngine()
	dev := catalog.NewHDD(eng, sim.NewRNG(1))
	p, err := NewPort(dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Command(CmdStandbyImmediate); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(eng.Now() + 5*time.Second)
	if mode, _ := p.Command(CmdCheckPowerMode); mode != ModeStandby {
		t.Errorf("CHECK POWER MODE = %v, want standby", mode)
	}
	if got := dev.InstantPower(); got < 1.05 || got > 1.15 {
		t.Errorf("spun-down power = %.3f W, want ≈ 1.1", got)
	}
	if _, err := p.Command(CmdIdleImmediate); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(eng.Now() + 10*time.Second)
	if mode, _ := p.Command(CmdCheckPowerMode); mode != ModeActive {
		t.Errorf("after IDLE IMMEDIATE, mode = %v, want active", mode)
	}
}

func TestUnsupportedCommand(t *testing.T) {
	eng := sim.NewEngine()
	p, _ := NewPort(catalog.NewHDD(eng, sim.NewRNG(1)))
	if _, err := p.Command(0x42); err == nil {
		t.Fatal("unknown ATA command accepted")
	}
}

func TestPartialTreatedAsActive(t *testing.T) {
	eng := sim.NewEngine()
	dev := catalog.NewEVO(eng, sim.NewRNG(1))
	p, _ := NewPort(dev)
	if err := p.SetLinkPM(LinkPartial); err != nil {
		t.Fatal(err)
	}
	if dev.Standby() {
		t.Error("PARTIAL put device into standby")
	}
	if p.LinkState() != LinkPartial {
		t.Errorf("link state = %v, want PARTIAL", p.LinkState())
	}
}

func TestStrings(t *testing.T) {
	for _, s := range []string{LinkActive.String(), LinkSlumber.String(), ModeStandby.String(), ModeActive.String(), PowerMode(0x33).String(), LinkPM(9).String()} {
		if s == "" {
			t.Error("empty string rendering")
		}
	}
}
