package hdd

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"wattio/internal/device"
	"wattio/internal/sim"
)

func testConfig() Config {
	return Config{
		Name:          "H1",
		Model:         "Test HDD",
		CapacityBytes: 1 << 34, // 16 GiB keeps seek math meaningful

		RPM:        7200,
		SeekBase:   time.Millisecond,
		SeekFull:   14 * time.Millisecond,
		MediaOuter: 200,
		MediaInner: 100,

		LinkMBps:   550,
		CmdTime:    50 * time.Microsecond,
		CacheBytes: 8 << 20,

		PSpindle:  3.0,
		PElec:     0.7,
		PSeek:     2.0,
		PXfer:     0.3,
		PIfaceAct: 0.1,

		PStandby:  1.0,
		PSpinDown: 2.0,
		PSpinUp:   5.5,
		TSpinDown: time.Second,
		TSpinUp:   5 * time.Second,
	}
}

func newTest(t *testing.T, mod func(*Config)) (*HDD, *sim.Engine) {
	t.Helper()
	cfg := testConfig()
	if mod != nil {
		mod(&cfg)
	}
	eng := sim.NewEngine()
	d, err := New(cfg, eng, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	return d, eng
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Config)
		want string
	}{
		{"no name", func(c *Config) { c.Name = "" }, "name"},
		{"zero capacity", func(c *Config) { c.CapacityBytes = 0 }, "capacity"},
		{"zero rpm", func(c *Config) { c.RPM = 0 }, "RPM"},
		{"inner above outer", func(c *Config) { c.MediaInner = 300 }, "media"},
		{"zero link", func(c *Config) { c.LinkMBps = 0 }, "link"},
		{"tiny cache", func(c *Config) { c.CacheBytes = 1000 }, "cache"},
		{"no spindle power", func(c *Config) { c.PSpindle = 0 }, "base powers"},
		{"instant spin", func(c *Config) { c.TSpinUp = 0 }, "transitions"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			tc.mod(&cfg)
			err := cfg.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestIdlePowerIsSpindlePlusElectronics(t *testing.T) {
	d, _ := newTest(t, nil)
	if got := d.InstantPower(); math.Abs(got-3.7) > 1e-9 {
		t.Fatalf("idle power = %v, want 3.7", got)
	}
}

func TestReadLatencyIncludesPositioning(t *testing.T) {
	d, eng := newTest(t, nil)
	done := false
	// Far-away offset: seek + rotation dominate.
	d.Submit(device.Request{Op: device.OpRead, Offset: 1 << 33, Size: 4096}, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("read never completed")
	}
	// Seek ~1+14·sqrt(0.5)≈10.9ms, rotation 0-8.3ms: total 11-20ms.
	if eng.Now() < 9*time.Millisecond || eng.Now() > 25*time.Millisecond {
		t.Errorf("random read took %v, want positioning-dominated 11-20ms", eng.Now())
	}
}

func TestSequentialStreamSkipsPositioning(t *testing.T) {
	d, eng := newTest(t, nil)
	// 16 MiB of contiguous reads at the outer zone: ~200 MB/s.
	const n = 16
	remaining := n
	var issue func(i int)
	issue = func(i int) {
		if i >= n {
			return
		}
		d.Submit(device.Request{Op: device.OpRead, Offset: int64(i) << 20, Size: 1 << 20}, func() {
			remaining--
			issue(i + 1)
		})
	}
	issue(0)
	eng.Run()
	if remaining != 0 {
		t.Fatal("sequential reads incomplete")
	}
	rate := 16.0 / eng.Now().Seconds() // MiB/s
	if rate < 130 || rate > 210 {      // qd1 serializes media and link; qd>1 reaches ~200
		t.Errorf("sequential read rate %.0f MiB/s, want ≈ 190 (one positioning, then streaming)", rate)
	}
}

func TestWriteCacheAcksFast(t *testing.T) {
	d, eng := newTest(t, nil)
	var ackAt time.Duration
	d.Submit(device.Request{Op: device.OpWrite, Offset: 1 << 33, Size: 64 << 10}, func() { ackAt = eng.Now() })
	eng.Run()
	if ackAt == 0 {
		t.Fatal("write never acked")
	}
	// Cache ack: cmd 50µs + link 119µs ≈ 170µs, far below positioning.
	if ackAt > time.Millisecond {
		t.Errorf("cached write acked at %v, want ~0.2ms", ackAt)
	}
	if d.DirtyBytes() != 0 {
		t.Errorf("dirty bytes %d after drain", d.DirtyBytes())
	}
}

func TestWriteCacheBackpressure(t *testing.T) {
	d, eng := newTest(t, func(c *Config) { c.CacheBytes = 1 << 20 })
	// 4× 512 KiB random writes: the cache holds two; later ones wait
	// for drains that each take ~10ms of positioning.
	acks := make([]time.Duration, 4)
	for i := 0; i < 4; i++ {
		i := i
		off := int64(3-i) << 32
		d.Submit(device.Request{Op: device.OpWrite, Offset: off, Size: 512 << 10}, func() { acks[i] = eng.Now() })
	}
	eng.Run()
	if acks[3] < 5*time.Millisecond {
		t.Errorf("fourth write acked at %v; cache backpressure missing", acks[3])
	}
	if d.DirtyBytes() != 0 {
		t.Error("cache not fully drained at quiesce")
	}
}

func TestNCQPrefersNearestAccess(t *testing.T) {
	d, eng := newTest(t, nil)
	// Enqueue a far read and a near read while the head is busy; the
	// near one should finish first despite being submitted second.
	order := []string{}
	d.Submit(device.Request{Op: device.OpRead, Offset: 1 << 30, Size: 4096}, func() { order = append(order, "first") })
	d.Submit(device.Request{Op: device.OpRead, Offset: 1 << 33, Size: 4096}, func() { order = append(order, "far") })
	d.Submit(device.Request{Op: device.OpRead, Offset: 1<<30 + 8192, Size: 4096}, func() { order = append(order, "near") })
	eng.Run()
	if len(order) != 3 {
		t.Fatalf("completed %d reads", len(order))
	}
	if order[1] != "near" {
		t.Errorf("completion order %v; NCQ should serve the near request second", order)
	}
}

func TestSpinDownAndUp(t *testing.T) {
	d, eng := newTest(t, nil)
	if err := d.EnterStandby(); err != nil {
		t.Fatal(err)
	}
	if !d.Standby() {
		t.Error("Standby() false right after EnterStandby")
	}
	eng.RunUntil(3 * time.Second)
	if !d.Settled() {
		t.Error("not settled after spin-down window")
	}
	if got := d.InstantPower(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("spun-down power = %v, want 1.0", got)
	}
	wakeAt := eng.Now()
	if err := d.Wake(); err != nil {
		t.Fatal(err)
	}
	// During spin-up the motor draws heavily.
	eng.RunUntil(wakeAt + time.Second)
	if got := d.InstantPower(); math.Abs(got-5.5) > 1e-9 {
		t.Errorf("spin-up power = %v, want 5.5", got)
	}
	eng.RunUntil(wakeAt + 6*time.Second)
	if d.Standby() || !d.Settled() {
		t.Error("not awake after spin-up")
	}
	if got := d.InstantPower(); math.Abs(got-3.7) > 1e-9 {
		t.Errorf("idle power after wake = %v, want 3.7", got)
	}
}

func TestIOWakesSpunDownDisk(t *testing.T) {
	d, eng := newTest(t, nil)
	d.EnterStandby()
	eng.RunUntil(3 * time.Second)
	done := false
	start := eng.Now()
	d.Submit(device.Request{Op: device.OpRead, Offset: 0, Size: 4096}, func() { done = true })
	eng.RunUntil(start + 10*time.Second)
	if !done {
		t.Fatal("IO to spun-down disk never completed")
	}
}

func TestStandbyFlushesDirtyCacheFirst(t *testing.T) {
	d, eng := newTest(t, nil)
	acked := 0
	for i := 0; i < 4; i++ {
		d.Submit(device.Request{Op: device.OpWrite, Offset: int64(i) << 32, Size: 64 << 10}, func() { acked++ })
	}
	eng.RunUntil(2 * time.Millisecond) // writes acked into cache, drains pending
	if d.DirtyBytes() == 0 {
		t.Fatal("test setup: cache already drained")
	}
	if err := d.EnterStandby(); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(eng.Now() + 10*time.Second)
	if d.DirtyBytes() != 0 {
		t.Error("spin-down left dirty data in cache")
	}
	if !d.Settled() || !d.Standby() {
		t.Error("disk did not reach standby after flush")
	}
}

func TestIODuringFlushAbortsStandby(t *testing.T) {
	d, eng := newTest(t, nil)
	for i := 0; i < 4; i++ {
		d.Submit(device.Request{Op: device.OpWrite, Offset: int64(i) << 32, Size: 64 << 10}, func() {})
	}
	eng.RunUntil(2 * time.Millisecond)
	d.EnterStandby() // begins flushing
	done := false
	d.Submit(device.Request{Op: device.OpRead, Offset: 0, Size: 4096}, func() { done = true })
	eng.RunUntil(eng.Now() + 5*time.Second)
	if !done {
		t.Fatal("IO during flush never completed")
	}
	if d.Standby() {
		t.Error("standby not aborted by new IO")
	}
}

func TestSeekPowerVisibleDuringSeek(t *testing.T) {
	d, eng := newTest(t, nil)
	d.Submit(device.Request{Op: device.OpRead, Offset: 1 << 33, Size: 4096}, func() {})
	eng.RunUntil(2 * time.Millisecond) // inside the ~11ms seek
	if got := d.InstantPower(); math.Abs(got-5.7) > 1e-9 {
		t.Errorf("power during seek = %v, want 5.7 (spindle+elec+seek)", got)
	}
	eng.Run()
	if got := d.InstantPower(); math.Abs(got-3.7) > 1e-9 {
		t.Errorf("power after IO = %v, want 3.7", got)
	}
}

func TestZonedMediaRate(t *testing.T) {
	d, _ := newTest(t, nil)
	outer := d.mediaTime(0, 1<<20)
	inner := d.mediaTime(d.cfg.CapacityBytes-1<<20, 1<<20)
	if outer >= inner {
		t.Errorf("outer transfer %v not faster than inner %v", outer, inner)
	}
	ratio := float64(inner) / float64(outer)
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("inner/outer time ratio %.2f, want ≈ 2 (200 vs 100 MB/s)", ratio)
	}
}

func TestSubmitPanics(t *testing.T) {
	d, _ := newTest(t, nil)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"unaligned", func() { d.Submit(device.Request{Op: device.OpRead, Offset: 7, Size: 512}, func() {}) }},
		{"nil done", func() { d.Submit(device.Request{Op: device.OpRead, Offset: 0, Size: 512}, nil) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestDeviceSurface(t *testing.T) {
	d, _ := newTest(t, nil)
	if d.Protocol() != device.SATA {
		t.Error("HDD protocol not SATA")
	}
	if d.PowerStates() != nil {
		t.Error("HDD claims power states")
	}
	if err := d.SetPowerState(1); err != device.ErrNotSupported {
		t.Errorf("SetPowerState = %v, want ErrNotSupported", err)
	}
	if d.PowerStateIndex() != 0 {
		t.Error("PowerStateIndex != 0")
	}
	if d.Name() != "H1" || d.Model() != "Test HDD" {
		t.Error("metadata wrong")
	}
	if d.Config().RPM != 7200 {
		t.Error("Config() wrong")
	}
}

// Property: every submitted IO completes exactly once and the cache
// fully drains, regardless of interleaving.
func TestAllIOCompletesProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		cfg := testConfig()
		eng := sim.NewEngine()
		d, err := New(cfg, eng, sim.NewRNG(11))
		if err != nil {
			return false
		}
		got := 0
		for _, o := range ops {
			op := device.OpRead
			if o&1 == 1 {
				op = device.OpWrite
			}
			size := int64(512 * (1 + o%32))
			off := (int64(o) << 20) % (cfg.CapacityBytes - 32*512)
			off -= off % 512
			d.Submit(device.Request{Op: op, Offset: off, Size: size}, func() { got++ })
		}
		eng.Run()
		return got == len(ops) && d.DirtyBytes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: energy is the time integral of a power signal that never
// goes below standby level or above the sum of all components.
func TestPowerBoundsProperty(t *testing.T) {
	d, eng := newTest(t, nil)
	maxW := d.cfg.PSpindle + d.cfg.PElec + d.cfg.PSeek + d.cfg.PXfer + d.cfg.PIfaceAct
	for i := 0; i < 50; i++ {
		off := (int64(i*7919) << 20) % (d.cfg.CapacityBytes - 4096)
		off -= off % 512
		d.Submit(device.Request{Op: device.OpRead, Offset: off, Size: 4096}, func() {})
	}
	for eng.Step() {
		p := d.InstantPower()
		if p < d.cfg.PStandby-1e-9 || p > maxW+1e-9 {
			t.Fatalf("power %v outside [%v, %v]", p, d.cfg.PStandby, maxW)
		}
	}
}
