package hdd

import (
	"fmt"
	"math"
	"time"

	"wattio/internal/device"
)

// Submit implements device.Device.
func (d *HDD) Submit(r device.Request, done func()) {
	if err := r.Validate(d.cfg.CapacityBytes); err != nil {
		panic(fmt.Sprintf("hdd %s: %v", d.cfg.Name, err))
	}
	if done == nil {
		panic("hdd: Submit with nil done")
	}
	switch d.spin {
	case spinning:
		d.begin(r, done)
	case flushing:
		// A standby request is being honored but IO arrived first:
		// abort the standby and serve it.
		d.spin = spinning
		d.begin(r, done)
	default:
		d.pendingIOs = append(d.pendingIOs, pendingIO{r, done})
		d.Wake() // no-op unless fully spun down
	}
}

// begin runs command overhead, then routes to the read or write path.
func (d *HDD) begin(r device.Request, done func()) {
	_, end := occupy(&d.cmdFreeAt, d.eng.Now(), d.cfg.CmdTime)
	d.eng.Post(end, func() {
		if r.Op == device.OpRead {
			d.queue = append(d.queue, access{r.Offset, r.Size, true, done})
			d.taps.queueDepth.Set(int64(len(d.queue)))
			d.kick()
		} else {
			d.write(r, done)
		}
	})
}

// write transfers data over the link into the write cache, acknowledges
// the host, and queues a drain access. Cache pressure blocks admission
// FIFO, which is the backpressure that bounds sustained random-write
// throughput once the cache absorption transient is spent.
func (d *HDD) write(r device.Request, done func()) {
	admit := func() {
		start, end := occupy(&d.linkFreeAt, d.eng.Now(), d.linkTime(r.Size))
		d.eng.Post(start, func() { d.meter.Set(d.cIface, d.cfg.PIfaceAct, d.eng.Now()) })
		d.eng.Post(end, func() {
			d.meter.Set(d.cIface, 0, d.eng.Now())
			done()
			d.queue = append(d.queue, access{r.Offset, r.Size, false, nil})
			d.taps.queueDepth.Set(int64(len(d.queue)))
			d.kick()
		})
	}
	if len(d.cacheWait) == 0 && d.dirty+r.Size <= d.cfg.CacheBytes {
		d.dirty += r.Size
		admit()
		return
	}
	d.cacheWait = append(d.cacheWait, cacheWaiter{r.Size, admit})
}

// kick starts the head on the best pending access if it is free. Reads
// are preferred over cache drains, mirroring production firmware.
func (d *HDD) kick() {
	if d.headBusy || len(d.queue) == 0 {
		return
	}
	if d.spin != spinning && d.spin != flushing {
		return
	}
	idx := d.pick()
	a := d.queue[idx]
	d.queue = append(d.queue[:idx], d.queue[idx+1:]...)
	d.taps.queueDepth.Set(int64(len(d.queue)))
	d.headBusy = true
	d.service(a)
}

// pick selects the queued access with the shortest positioning time
// (NCQ), preferring reads. With NCQ disabled it is plain FIFO.
func (d *HDD) pick() int {
	if d.cfg.DisableNCQ {
		return 0
	}
	best, bestDist := -1, int64(math.MaxInt64)
	bestRead := false
	for i, a := range d.queue {
		dist := a.offset - d.headPos
		if dist < 0 {
			dist = -dist
		}
		if (a.read && !bestRead) || (a.read == bestRead && dist < bestDist) {
			best, bestDist, bestRead = i, dist, a.read
		}
	}
	return best
}

// service performs one media access: seek, rotational wait, media
// transfer; then for reads, the link transfer back to the host.
func (d *HDD) service(a access) {
	now := d.eng.Now()
	seek := d.seekTime(d.headPos, a.offset)
	rot := time.Duration(0)
	if a.offset != d.lastEnd {
		// Not a streaming continuation: wait for the sector to come
		// around. Uniform over one revolution.
		rot = time.Duration(d.rng.Float64() * float64(d.revolution))
	} else {
		seek = 0
	}
	xfer := d.mediaTime(a.offset, a.size)

	if seek > 0 {
		d.taps.seeks.Inc()
		d.taps.seekNs.Observe(int64(seek))
		d.tr.Span(d.laneHead, "hdd", "seek", now, now+seek)
		d.meter.Set(d.cSeek, d.cfg.PSeek, now)
		d.eng.PostAfter(seek, func() { d.meter.Set(d.cSeek, 0, d.eng.Now()) })
	}
	xferStart := now + seek + rot
	if d.tr.Enabled() {
		name := "drain"
		if a.read {
			name = "read"
		}
		d.tr.Span(d.laneHead, "hdd", name, xferStart, xferStart+xfer)
	}
	d.eng.Post(xferStart, func() { d.meter.Set(d.cXfer, d.cfg.PXfer, d.eng.Now()) })
	d.eng.Post(xferStart+xfer, func() {
		t := d.eng.Now()
		d.meter.Set(d.cXfer, 0, t)
		d.headPos = a.offset + a.size
		d.lastEnd = d.headPos
		if a.read {
			start, end := occupy(&d.linkFreeAt, t, d.linkTime(a.size))
			d.eng.Post(start, func() { d.meter.Set(d.cIface, d.cfg.PIfaceAct, d.eng.Now()) })
			d.eng.Post(end, func() {
				d.meter.Set(d.cIface, 0, d.eng.Now())
				a.done()
			})
		} else {
			d.drainComplete(a.size)
		}
		d.headBusy = false
		d.kick()
		d.maybeFinishFlush()
	})
}

// drainComplete returns cache space and admits blocked writes FIFO.
func (d *HDD) drainComplete(bytes int64) {
	d.taps.drains.Inc()
	d.dirty -= bytes
	if d.dirty < 0 {
		panic("hdd: cache over-drained")
	}
	for len(d.cacheWait) > 0 && d.dirty+d.cacheWait[0].bytes <= d.cfg.CacheBytes {
		w := d.cacheWait[0]
		d.cacheWait = d.cacheWait[1:]
		d.dirty += w.bytes
		w.cont()
	}
}

// seekTime models actuator travel as base + full-stroke cost scaled by
// the square root of normalized distance.
func (d *HDD) seekTime(from, to int64) time.Duration {
	if from == to {
		return 0
	}
	dist := float64(to - from)
	if dist < 0 {
		dist = -dist
	}
	frac := dist / float64(d.cfg.CapacityBytes)
	return d.cfg.SeekBase + time.Duration(float64(d.cfg.SeekFull)*math.Sqrt(frac))
}

// mediaTime returns the media transfer time at the zone containing off.
func (d *HDD) mediaTime(off, size int64) time.Duration {
	frac := float64(off) / float64(d.cfg.CapacityBytes)
	rate := d.cfg.MediaOuter - (d.cfg.MediaOuter-d.cfg.MediaInner)*frac
	return time.Duration(float64(size) / (rate * 1e6) * float64(time.Second))
}

func (d *HDD) linkTime(n int64) time.Duration {
	return time.Duration(float64(n) / (d.cfg.LinkMBps * 1e6) * float64(time.Second))
}

// EnterStandby implements device.Device: flush the write cache, then
// spin the platters down. The multi-second cost is the paper's central
// caveat about HDD power adaptivity.
func (d *HDD) EnterStandby() error {
	if d.spin != spinning {
		return nil // already flushing, down, or transitioning
	}
	d.spin = flushing
	d.kick()
	d.maybeFinishFlush()
	return nil
}

// maybeFinishFlush starts the spindle deceleration once a requested
// flush has fully drained.
func (d *HDD) maybeFinishFlush() {
	if d.spin != flushing || d.headBusy || len(d.queue) > 0 || d.dirty > 0 {
		return
	}
	now := d.eng.Now()
	d.spin = spinningDown
	d.taps.spinDowns.Inc()
	d.tr.Instant(d.lane, "hdd", "spin_down", now)
	d.meter.Set(d.cSpindle, d.cfg.PSpinDown-d.cfg.PElec, now)
	d.eng.PostAfter(d.cfg.TSpinDown, func() {
		if d.spin != spinningDown {
			return
		}
		t := d.eng.Now()
		d.spin = spunDown
		d.meter.Set(d.cSpindle, 0, t)
		d.meter.Set(d.cElec, d.cfg.PStandby, t)
		if len(d.pendingIOs) > 0 {
			d.Wake()
		}
	})
	return
}

// Wake implements device.Device: spin the platters back up. IO queued
// during the transition is served when the spindle reaches speed.
func (d *HDD) Wake() error {
	if d.spin != spunDown {
		return nil
	}
	now := d.eng.Now()
	d.spin = spinningUp
	d.taps.spinUps.Inc()
	d.tr.Instant(d.lane, "hdd", "spin_up", now)
	d.meter.Set(d.cElec, d.cfg.PElec, now)
	d.meter.Set(d.cSpindle, d.cfg.PSpinUp-d.cfg.PElec, now)
	d.eng.PostAfter(d.cfg.TSpinUp, func() {
		t := d.eng.Now()
		d.spin = spinning
		d.meter.Set(d.cSpindle, d.cfg.PSpindle, t)
		ps := d.pendingIOs
		d.pendingIOs = nil
		for _, p := range ps {
			d.begin(p.r, p.done)
		}
	})
	return nil
}

// occupy reserves a serialized resource exactly as in internal/ssd.
func occupy(freeAt *time.Duration, now, dur time.Duration) (start, end time.Duration) {
	start = max(now, *freeAt)
	end = start + dur
	*freeAt = end
	return start, end
}

var _ device.Device = (*HDD)(nil)
