// Package hdd implements a mechanical hard-disk simulator: seek and
// rotational positioning, zoned media transfer, native command queuing
// (shortest-positioning-time selection), a write-back cache, and the
// spindle-dominated power model that gives HDDs their narrow active
// dynamic range and their slow, expensive standby transitions.
package hdd

import (
	"fmt"
	"time"

	"wattio/internal/device"
	"wattio/internal/power"
	"wattio/internal/sim"
	"wattio/internal/telemetry"
)

// Config describes one HDD model. The catalog package provides the
// configuration calibrated to the paper's Seagate Exos 7E2000.
type Config struct {
	Name          string
	Model         string
	CapacityBytes int64

	// Mechanics.
	RPM        int           // spindle speed
	SeekBase   time.Duration // settle time, any non-zero seek
	SeekFull   time.Duration // additional time for a full-stroke seek (scaled by sqrt of distance)
	MediaOuter float64       // MB/s at LBA 0
	MediaInner float64       // MB/s at the last LBA

	// Host path.
	LinkMBps float64       // SATA link
	CmdTime  time.Duration // per-command controller overhead

	// Write-back cache.
	CacheBytes int64

	// DisableNCQ makes the head serve accesses FIFO instead of by
	// shortest positioning time. Exists for the ablation benchmarks.
	DisableNCQ bool

	// Power model (watts).
	PSpindle  float64 // spinning, heads parked over track
	PElec     float64 // controller + interface electronics
	PSeek     float64 // additional while the actuator moves
	PXfer     float64 // additional while media transfer is active
	PIfaceAct float64 // additional while the SATA link transfers

	// Standby (spin-down).
	PStandby  float64       // total power spun down
	PSpinDown float64       // total power while decelerating
	PSpinUp   float64       // total power while accelerating
	TSpinDown time.Duration // deceleration time
	TSpinUp   time.Duration // acceleration time
}

// Validate checks the configuration for physical consistency.
func (c *Config) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("hdd: config needs a name")
	case c.CapacityBytes <= 0:
		return fmt.Errorf("hdd %s: capacity must be positive", c.Name)
	case c.RPM <= 0:
		return fmt.Errorf("hdd %s: RPM must be positive", c.Name)
	case c.MediaOuter <= 0 || c.MediaInner <= 0 || c.MediaInner > c.MediaOuter:
		return fmt.Errorf("hdd %s: media rates invalid (outer %v, inner %v)", c.Name, c.MediaOuter, c.MediaInner)
	case c.LinkMBps <= 0:
		return fmt.Errorf("hdd %s: link bandwidth must be positive", c.Name)
	case c.CacheBytes < 1<<20:
		return fmt.Errorf("hdd %s: cache %d must be at least 1 MiB", c.Name, c.CacheBytes)
	case c.PSpindle <= 0 || c.PElec <= 0:
		return fmt.Errorf("hdd %s: base powers must be positive", c.Name)
	case c.TSpinDown <= 0 || c.TSpinUp <= 0:
		return fmt.Errorf("hdd %s: spin transitions must take time", c.Name)
	}
	return nil
}

// spin is the spindle state machine.
type spin int

const (
	spinning spin = iota
	flushing      // standby requested, draining dirty cache
	spinningDown
	spunDown
	spinningUp
)

// access is one media access awaiting head time: either a host read or a
// cache-drain write.
type access struct {
	offset int64
	size   int64
	read   bool
	done   func() // read completion (sends data back over the link); nil for drain writes
}

// HDD is a simulated hard-disk drive. It implements device.Device.
type HDD struct {
	cfg Config
	eng *sim.Engine
	rng *sim.RNG

	meter    *power.Meter
	cSpindle power.Component
	cElec    power.Component
	cSeek    power.Component
	cXfer    power.Component
	cIface   power.Component

	spin       spin
	headPos    int64 // byte offset proxy for cylinder position
	headBusy   bool
	lastEnd    int64 // end offset of the last media access (sequential detection)
	cmdFreeAt  time.Duration
	linkFreeAt time.Duration

	queue []access // NCQ: pending media accesses

	dirty      int64 // bytes in write cache awaiting drain
	cacheWait  []cacheWaiter
	pendingIOs []pendingIO // IOs arrived while spun down / spinning up

	revolution time.Duration

	// Telemetry. All handles are nil-safe no-ops when the engine has no
	// telemetry attached.
	tr       *telemetry.Tracer
	laneHead string
	lane     string
	taps     taps
}

// taps holds the device's metric handles, fetched once at construction.
type taps struct {
	seeks      *telemetry.Counter
	seekNs     *telemetry.Histogram
	queueDepth *telemetry.Gauge
	drains     *telemetry.Counter
	spinDowns  *telemetry.Counter
	spinUps    *telemetry.Counter
}

type cacheWaiter struct {
	bytes int64
	cont  func()
}

type pendingIO struct {
	r    device.Request
	done func()
}

// New constructs an HDD attached to the engine, spinning and idle.
func New(cfg Config, eng *sim.Engine, rng *sim.RNG) (*HDD, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &HDD{
		cfg:        cfg,
		eng:        eng,
		rng:        rng.Stream("hdd/" + cfg.Name),
		meter:      power.NewMeter(eng.Now()),
		revolution: time.Duration(60.0 / float64(cfg.RPM) * float64(time.Second)),
	}
	d.cSpindle = d.meter.AddComponent("spindle", cfg.PSpindle)
	d.cElec = d.meter.AddComponent("electronics", cfg.PElec)
	d.cSeek = d.meter.AddComponent("actuator", 0)
	d.cXfer = d.meter.AddComponent("media", 0)
	d.cIface = d.meter.AddComponent("interface", 0)

	reg := eng.Metrics()
	d.taps = taps{
		seeks:      reg.Counter("hdd_seeks_total"),
		seekNs:     reg.Histogram("hdd_seek_ns"),
		queueDepth: reg.Gauge("hdd_queue_depth"),
		drains:     reg.Counter("hdd_cache_drains_total"),
		spinDowns:  reg.Counter("hdd_spin_downs_total"),
		spinUps:    reg.Counter("hdd_spin_ups_total"),
	}
	d.tr = eng.Tracer()
	if d.tr.Enabled() {
		d.lane = cfg.Name
		d.laneHead = cfg.Name + "/head"
	}
	return d, nil
}

// Name implements device.Device.
func (d *HDD) Name() string { return d.cfg.Name }

// Model implements device.Device.
func (d *HDD) Model() string { return d.cfg.Model }

// Protocol implements device.Device.
func (d *HDD) Protocol() device.Protocol { return device.SATA }

// CapacityBytes implements device.Device.
func (d *HDD) CapacityBytes() int64 { return d.cfg.CapacityBytes }

// Config returns the device's configuration.
func (d *HDD) Config() Config { return d.cfg }

// InstantPower implements device.Device.
func (d *HDD) InstantPower() float64 { return d.meter.Instant(d.eng.Now()) }

// EnergyJ implements device.Device.
func (d *HDD) EnergyJ() float64 { return d.meter.Energy(d.eng.Now()) }

// PowerStates implements device.Device. HDDs have no NVMe-style
// operational power states.
func (d *HDD) PowerStates() []device.PowerState { return nil }

// SetPowerState implements device.Device.
func (d *HDD) SetPowerState(int) error { return device.ErrNotSupported }

// PowerStateIndex implements device.Device.
func (d *HDD) PowerStateIndex() int { return 0 }

// Standby implements device.Device.
func (d *HDD) Standby() bool {
	return d.spin == flushing || d.spin == spinningDown || d.spin == spunDown
}

// Settled implements device.Device.
func (d *HDD) Settled() bool { return d.spin == spinning || d.spin == spunDown }

// DirtyBytes returns bytes in the write cache not yet on media.
func (d *HDD) DirtyBytes() int64 { return d.dirty }

// EnergyComponents returns the per-component accounted energies in
// joules up to the current virtual time. The components partition
// EnergyJ; the telemetry energy-conservation probe checks that.
func (d *HDD) EnergyComponents() (names []string, joules []float64) {
	return d.meter.Names(), d.meter.EnergyBreakdown(d.eng.Now())
}
