package plot

import (
	"strings"
	"testing"
)

func TestLineChartRenders(t *testing.T) {
	c := New("test chart", 40, 10).Axes("chunk", "watts")
	if err := c.Line("ps0", []float64{4, 16, 64, 256}, []float64{6, 8, 10, 12}); err != nil {
		t.Fatal(err)
	}
	if err := c.Line("ps2", []float64{4, 16, 64, 256}, []float64{6, 7, 8, 9}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"test chart", "* ps0", "o ps2", "x: chunk, y: watts"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 12 {
		t.Errorf("only %d lines rendered", lines)
	}
}

func TestScatterMarksWithinFrame(t *testing.T) {
	c := New("scatter", 30, 8)
	if err := c.Scatter("pts", []float64{0, 0.5, 1}, []float64{0, 0.5, 1}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	marks := 0
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.Contains(line, "|") {
			marks += strings.Count(line, "*")
		}
	}
	if marks != 3 {
		t.Errorf("want exactly 3 scatter marks in frame, got %d:\n%s", marks, sb.String())
	}
}

func TestLogXMonotone(t *testing.T) {
	// In log-x, equal multiplicative steps land equidistant: columns of
	// marks for 4, 16, 64, 256 should be evenly spaced.
	c := New("logx", 61, 5).LogX()
	if err := c.Scatter("pts", []float64{4, 16, 64, 256}, []float64{1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	var cols []int
	for _, line := range strings.Split(sb.String(), "\n") {
		if !strings.Contains(line, "|") {
			continue
		}
		for i, ch := range line {
			if ch == '*' {
				cols = append(cols, i)
			}
		}
	}
	if len(cols) != 4 {
		t.Fatalf("found %d marks, want 4:\n%s", len(cols), sb.String())
	}
	d1, d2, d3 := cols[1]-cols[0], cols[2]-cols[1], cols[3]-cols[2]
	if abs(d1-d2) > 1 || abs(d2-d3) > 1 {
		t.Errorf("log-x spacing uneven: %v", cols)
	}
}

func TestRenderErrors(t *testing.T) {
	c := New("empty", 30, 8)
	var sb strings.Builder
	if err := c.Render(&sb); err == nil {
		t.Error("rendering empty chart succeeded")
	}
	if err := c.Line("bad", []float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched series accepted")
	}
	if err := c.Line("empty", nil, nil); err == nil {
		t.Error("empty series accepted")
	}
}

func TestDegenerateRangeHandled(t *testing.T) {
	c := New("flat", 30, 8)
	if err := c.Line("flat", []float64{1, 1, 1}, []float64{5, 5, 5}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestTinyCanvasClamped(t *testing.T) {
	c := New("tiny", 1, 1)
	if err := c.Line("x", []float64{1, 2}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
