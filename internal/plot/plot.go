// Package plot renders the study's figures as ASCII charts so
// powerbench can draw what the paper plots — line series over chunk
// size or queue depth, scatter plots of normalized power-throughput
// models, and millisecond power traces — directly in a terminal.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// markers label up to eight series on one chart.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Chart is an ASCII canvas with data-space axes. Add series with Line
// or Scatter, then Render.
type Chart struct {
	width, height          int
	title, xlabel, ylabel  string
	logX                   bool
	series                 []series
	xmin, xmax, ymin, ymax float64
	fixed                  bool
}

type series struct {
	label  string
	xs, ys []float64
	line   bool
}

// New returns a chart with the given interior canvas size.
func New(title string, width, height int) *Chart {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	return &Chart{
		width: width, height: height, title: title,
		xmin: math.Inf(1), xmax: math.Inf(-1),
		ymin: math.Inf(1), ymax: math.Inf(-1),
	}
}

// Axes sets the axis labels.
func (c *Chart) Axes(xlabel, ylabel string) *Chart {
	c.xlabel, c.ylabel = xlabel, ylabel
	return c
}

// LogX plots the x axis in log2 space — natural for the paper's chunk
// and depth sweeps, which are powers of two.
func (c *Chart) LogX() *Chart {
	c.logX = true
	return c
}

// Bounds fixes the data-space window; otherwise it fits the series.
func (c *Chart) Bounds(xmin, xmax, ymin, ymax float64) *Chart {
	c.xmin, c.xmax, c.ymin, c.ymax = xmin, xmax, ymin, ymax
	c.fixed = true
	return c
}

// Line adds a connected series.
func (c *Chart) Line(label string, xs, ys []float64) error { return c.add(label, xs, ys, true) }

// Scatter adds an unconnected point series.
func (c *Chart) Scatter(label string, xs, ys []float64) error { return c.add(label, xs, ys, false) }

func (c *Chart) add(label string, xs, ys []float64, line bool) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("plot: series %q: %d xs vs %d ys", label, len(xs), len(ys))
	}
	if len(xs) == 0 {
		return fmt.Errorf("plot: empty series %q", label)
	}
	c.series = append(c.series, series{label, xs, ys, line})
	return nil
}

func (c *Chart) tx(x float64) float64 {
	if c.logX {
		return math.Log2(x)
	}
	return x
}

// Render draws the chart to w.
func (c *Chart) Render(w io.Writer) error {
	if len(c.series) == 0 {
		return fmt.Errorf("plot: chart %q has no series", c.title)
	}
	xmin, xmax, ymin, ymax := c.xmin, c.xmax, c.ymin, c.ymax
	if !c.fixed {
		for _, s := range c.series {
			for i := range s.xs {
				xmin, xmax = math.Min(xmin, c.tx(s.xs[i])), math.Max(xmax, c.tx(s.xs[i]))
				ymin, ymax = math.Min(ymin, s.ys[i]), math.Max(ymax, s.ys[i])
			}
		}
	} else if c.logX {
		xmin, xmax = c.tx(xmin), c.tx(xmax)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	padX := (xmax - xmin) * 0.02
	padY := (ymax - ymin) * 0.05
	xmin, xmax, ymin, ymax = xmin-padX, xmax+padX, ymin-padY, ymax+padY

	cells := make([][]byte, c.height)
	for i := range cells {
		cells[i] = []byte(strings.Repeat(" ", c.width))
	}
	plotPoint := func(x, y float64, m byte) {
		j := int((x - xmin) / (xmax - xmin) * float64(c.width-1))
		i := c.height - 1 - int((y-ymin)/(ymax-ymin)*float64(c.height-1))
		if i >= 0 && i < c.height && j >= 0 && j < c.width {
			cells[i][j] = m
		}
	}
	var legend []string
	for si, s := range c.series {
		m := markers[si%len(markers)]
		legend = append(legend, fmt.Sprintf("%c %s", m, s.label))
		for i := range s.xs {
			plotPoint(c.tx(s.xs[i]), s.ys[i], m)
			if s.line && i > 0 {
				x0, x1 := c.tx(s.xs[i-1]), c.tx(s.xs[i])
				for k := 1; k < c.width; k++ {
					f := float64(k) / float64(c.width)
					plotPoint(x0+f*(x1-x0), s.ys[i-1]+f*(s.ys[i]-s.ys[i-1]), m)
				}
			}
		}
	}

	if _, err := fmt.Fprintf(w, "%s\n", c.title); err != nil {
		return err
	}
	for i, line := range cells {
		label := strings.Repeat(" ", 10)
		switch i {
		case 0:
			label = fmt.Sprintf("%9.3g ", ymax)
		case c.height - 1:
			label = fmt.Sprintf("%9.3g ", ymin)
		case c.height / 2:
			label = fmt.Sprintf("%9.3g ", (ymin+ymax)/2)
		}
		if _, err := fmt.Fprintf(w, "%s|%s|\n", label, string(line)); err != nil {
			return err
		}
	}
	xl, xr := xmin, xmax
	if c.logX {
		xl, xr = math.Pow(2, xmin), math.Pow(2, xmax)
	}
	pad := c.width - 10
	if pad < 0 {
		pad = 0
	}
	if _, err := fmt.Fprintf(w, "%10s %-10.4g%s%10.4g\n", " ", xl, strings.Repeat(" ", pad), xr); err != nil {
		return err
	}
	if c.xlabel != "" || c.ylabel != "" {
		if _, err := fmt.Fprintf(w, "%10s x: %s, y: %s\n", " ", c.xlabel, c.ylabel); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%10s %s\n", " ", strings.Join(legend, "   "))
	return err
}
