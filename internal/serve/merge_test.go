package serve

import (
	"math"
	"testing"
	"time"

	"wattio/internal/fault"
)

// mergeSpec builds a normalized one-shard spec with a 1 s horizon and
// 100 ms control period, so merge produces ten intervals.
func mergeSpec(t *testing.T, budget []BudgetStep) Spec {
	t.Helper()
	sp, err := Spec{
		Size:    4,
		Shards:  1,
		Horizon: time.Second,
		Budget:  budget,
	}.normalized()
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// flatResult is a synthetic shard result drawing a constant watts for
// every control interval.
func flatResult(sp *Spec, watts float64) *shardResult {
	n := int((sp.Horizon + sp.ControlPeriod - 1) / sp.ControlPeriod)
	r := &shardResult{CapOK: true, MesoDriftOK: true}
	r.IntervalEnergyJ = make([]float64, n)
	for i := range r.IntervalEnergyJ {
		r.IntervalEnergyJ[i] = watts * sp.ControlPeriod.Seconds()
	}
	return r
}

func checkedFlags(ivs []Interval) []bool {
	out := make([]bool, len(ivs))
	for i, iv := range ivs {
		out[i] = iv.Checked
	}
	return out
}

// TestGraceExactlyOneIntervalPerStep pins the budget-step grace
// semantics: every step exempts exactly one control interval from
// tracking — the interval whose start falls in the step's one-period
// settle window — regardless of how the step aligns with interval
// boundaries. Before the fix the overlap rule graced both intervals
// touching the window, so the mid-interval case below left interval 2
// unchecked as well.
func TestGraceExactlyOneIntervalPerStep(t *testing.T) {
	cases := []struct {
		name    string
		stepAt  time.Duration
		graced  []int // interval indices expected unchecked (beyond interval 0)
		checked []int // indices that must be checked
	}{
		// A step exactly on an interval boundary graces that interval
		// and nothing else.
		{"boundary-aligned", 300 * time.Millisecond, []int{3}, []int{1, 2, 4, 5}},
		// A mid-interval step graces only the next interval; its own
		// interval is checked against the time-weighted budget.
		{"mid-interval", 250 * time.Millisecond, []int{3}, []int{1, 2, 4, 5}},
		// A step whose settle window reaches exactly the final interval
		// start graces that final interval, nothing more.
		{"window-reaches-final-start", 850 * time.Millisecond, []int{9}, []int{7, 8}},
		// A step inside the final interval has no following interval to
		// grace; the interval containing it takes the grace (the old
		// "not at all" corner of a pure window rule).
		{"final-interval", 950 * time.Millisecond, []int{9}, []int{8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := mergeSpec(t, []BudgetStep{
				{At: 0, FleetW: 100},
				{At: tc.stepAt, FleetW: 60},
			})
			rep := merge(&sp, []*shardResult{flatResult(&sp, 50)})
			if len(rep.Intervals) != 10 {
				t.Fatalf("intervals = %d, want 10", len(rep.Intervals))
			}
			// The t=0 step always graces interval 0.
			if rep.Intervals[0].Checked {
				t.Errorf("interval 0 not graced for the initial plan application")
			}
			for _, k := range tc.graced {
				if rep.Intervals[k].Checked {
					t.Errorf("interval %d checked, want graced (flags %v)", k, checkedFlags(rep.Intervals))
				}
			}
			for _, k := range tc.checked {
				if !rep.Intervals[k].Checked {
					t.Errorf("interval %d graced, want checked (flags %v)", k, checkedFlags(rep.Intervals))
				}
			}
			total := 0
			for _, iv := range rep.Intervals {
				if !iv.Checked {
					total++
				}
			}
			if total != 2 { // t=0 step + the case's step: one interval each
				t.Errorf("graced %d intervals in total, want 2 (flags %v)", total, checkedFlags(rep.Intervals))
			}
		})
	}
}

// TestMidIntervalStepBudgetWeighted pins the companion half of the
// grace fix: the interval a step lands inside is checked against the
// time-weighted scheduled budget, and intervals without an interior
// step keep the exact step value (no float drift from a degenerate
// weighting).
func TestMidIntervalStepBudgetWeighted(t *testing.T) {
	sp := mergeSpec(t, []BudgetStep{
		{At: 0, FleetW: 100},
		{At: 250 * time.Millisecond, FleetW: 60},
	})
	rep := merge(&sp, []*shardResult{flatResult(&sp, 50)})
	want := 0.5*100 + 0.5*60 // step splits [200ms, 300ms) in half
	if got := rep.Intervals[2].BudgetW; math.Abs(got-want) > 1e-9 {
		t.Errorf("split interval BudgetW = %v, want %v", got, want)
	}
	if got := rep.Intervals[1].BudgetW; got != 100 {
		t.Errorf("pre-step interval BudgetW = %v, want exactly 100", got)
	}
	if got := rep.Intervals[5].BudgetW; got != 60 {
		t.Errorf("post-step interval BudgetW = %v, want exactly 60", got)
	}

	// The weighted check binds: constant draw above the weighted budget
	// (plus tolerance) in the split interval must fail tracking even
	// though it is under the pre-step budget.
	hot := flatResult(&sp, 50)
	hot.IntervalEnergyJ[2] = 95 * sp.ControlPeriod.Seconds() // 95 W > 80*1.1, < 100
	rep = merge(&sp, []*shardResult{hot})
	if rep.TrackOK {
		t.Errorf("draw above the weighted budget in a split interval passed tracking")
	}
}

// TestThroughputUsesSimulatedTime pins the ThroughputMBps fix: the rate
// divides by the virtual time the run actually covered (horizon plus
// post-horizon drain), not the nominal horizon. Before the fix a run
// whose drain ran past the horizon reported bytes/horizon, overstating
// the rate.
func TestThroughputUsesSimulatedTime(t *testing.T) {
	sp := mergeSpec(t, nil)
	res := flatResult(&sp, 50)
	res.BytesCompleted = 3_000_000
	res.EndAt = 2 * time.Second // drain ran one full horizon past the end
	rep := merge(&sp, []*shardResult{res})
	if rep.SimulatedDur != 2*time.Second {
		t.Fatalf("SimulatedDur = %v, want 2s", rep.SimulatedDur)
	}
	if want := 1.5; math.Abs(rep.ThroughputMBps-want) > 1e-9 {
		t.Fatalf("ThroughputMBps = %v, want %v (bytes over simulated time)", rep.ThroughputMBps, want)
	}

	// Without drain past the horizon, SimulatedDur is the horizon and
	// the rate is unchanged from the old definition.
	res = flatResult(&sp, 50)
	res.BytesCompleted = 3_000_000
	res.EndAt = sp.Horizon
	rep = merge(&sp, []*shardResult{res})
	if rep.SimulatedDur != sp.Horizon || math.Abs(rep.ThroughputMBps-3.0) > 1e-9 {
		t.Fatalf("horizon-bounded run: dur %v, %v MB/s, want 1s, 3", rep.SimulatedDur, rep.ThroughputMBps)
	}
}

// TestDropoutDrainPastHorizon drives the throughput fix end to end: an
// unreplicated lane with a dropout window that outlives the horizon
// holds its in-flight IO until the window ends, so the drain pushes the
// engine clock past the horizon and the report's throughput must be
// measured over that longer window.
func TestDropoutDrainPastHorizon(t *testing.T) {
	sp := Spec{
		Size:     2,
		Replicas: 1,
		Shards:   1,
		Horizon:  400 * time.Millisecond,
		RateIOPS: 2000,
		Seed:     42,
		Faults: []DeviceFault{{
			Device: InstanceName("SSD2", 0),
			Windows: []fault.Window{
				{Kind: fault.Dropout, Start: 200 * time.Millisecond, Dur: 400 * time.Millisecond},
			},
		}},
	}
	rep, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 {
		t.Fatal("no IO completed")
	}
	// The dropout window ends at 600 ms, 200 ms past the horizon; the
	// held IO completes after that.
	if rep.SimulatedDur <= 600*time.Millisecond {
		t.Fatalf("SimulatedDur = %v, want > 600ms (dropout releases held IO past the horizon)", rep.SimulatedDur)
	}
	want := float64(rep.BytesCompleted) / 1e6 / rep.SimulatedDur.Seconds()
	if math.Abs(rep.ThroughputMBps-want) > 1e-9 {
		t.Fatalf("ThroughputMBps = %v, want %v = bytes / simulated time (not the %v horizon)",
			rep.ThroughputMBps, want, sp.Horizon)
	}
}

// TestBudgetAtEdgeCases pins budgetAt's semantics at the boundaries: a
// step binds exactly at its own time, single-step schedules are
// constant, and times before the first step take the first step's
// value (the only schedules Run accepts start at 0, but ParseSchedule
// also accepts later-starting schedules for tooling, and both layers
// must agree on what they mean).
func TestBudgetAtEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		sched []BudgetStep
		t     time.Duration
		want  float64
	}{
		{"single step at 0", []BudgetStep{{0, 100}}, 0, 100},
		{"single step, later query", []BudgetStep{{0, 100}}, time.Hour, 100},
		{"exactly at a step time", []BudgetStep{{0, 100}, {100 * time.Millisecond, 60}}, 100 * time.Millisecond, 60},
		{"one ns before a step", []BudgetStep{{0, 100}, {100 * time.Millisecond, 60}}, 100*time.Millisecond - 1, 100},
		{"one ns after a step", []BudgetStep{{0, 100}, {100 * time.Millisecond, 60}}, 100*time.Millisecond + 1, 60},
		{"first step after 0, earlier query", []BudgetStep{{500 * time.Millisecond, 80}}, 0, 80},
		{"first step after 0, at step", []BudgetStep{{500 * time.Millisecond, 80}, {time.Second, 40}}, 500 * time.Millisecond, 80},
		{"last step binds to the end", []BudgetStep{{0, 100}, {1 * time.Second, 60}, {2 * time.Second, 40}}, 3 * time.Second, 40},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := budgetAt(tc.sched, tc.t); got != tc.want {
				t.Fatalf("budgetAt(%v) = %v, want %v", tc.t, got, tc.want)
			}
		})
	}
}

// TestParseScheduleEdgeCases covers the structural corners the grid and
// CLI layers rely on: a query exactly at a parsed step time yields that
// step's value, schedules whose first step is after t=0 parse and
// extend the first value backward, and single-step schedules are
// constant — asserting ParseSchedule and budgetAt agree on the chosen
// semantics.
func TestParseScheduleEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		text    string
		size    int
		queries map[time.Duration]float64
	}{
		{"single step", "0s:640", 0, map[time.Duration]float64{
			0: 640, time.Second: 640,
		}},
		{"single pd step", "0s:10pd", 8, map[time.Duration]float64{
			0: 80, time.Minute: 80,
		}},
		{"exactly at each step", "0s:640,1s:448", 0, map[time.Duration]float64{
			0: 640, time.Second: 448, time.Second - 1: 640, time.Second + 1: 448,
		}},
		{"first step after zero", "500ms:80", 0, map[time.Duration]float64{
			0: 80, 250 * time.Millisecond: 80, 500 * time.Millisecond: 80, time.Second: 80,
		}},
		{"first step after zero, two steps", "500ms:80,1s:40", 0, map[time.Duration]float64{
			0: 80, 500 * time.Millisecond: 80, 999 * time.Millisecond: 80, time.Second: 40,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sched, err := ParseSchedule(tc.text, tc.size)
			if err != nil {
				t.Fatal(err)
			}
			for at, want := range tc.queries {
				if got := budgetAt(sched, at); got != want {
					t.Errorf("budgetAt(parse(%q), %v) = %v, want %v", tc.text, at, got, want)
				}
			}
		})
	}
}

// TestAvgBudgetW pins the weighted-budget helper directly.
func TestAvgBudgetW(t *testing.T) {
	sched := []BudgetStep{{0, 100}, {250 * time.Millisecond, 60}, {275 * time.Millisecond, 20}}
	cases := []struct {
		name       string
		start, end time.Duration
		want       float64
	}{
		{"no interior step", 0, 100 * time.Millisecond, 100},
		{"start exactly at step", 250 * time.Millisecond, 275 * time.Millisecond, 60},
		{"one interior step", 200 * time.Millisecond, 300 * time.Millisecond, 0.5*100 + 0.25*60 + 0.25*20},
		{"two interior steps", 240 * time.Millisecond, 280 * time.Millisecond, 0.25*100 + 0.625*60 + 0.125*20},
		{"after the last step", time.Second, 2 * time.Second, 20},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := avgBudgetW(sched, tc.start, tc.end); math.Abs(got-tc.want) > 1e-9 {
				t.Fatalf("avgBudgetW(%v, %v) = %v, want %v", tc.start, tc.end, got, tc.want)
			}
		})
	}
}
