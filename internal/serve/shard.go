package serve

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"wattio/internal/adaptive"
	"wattio/internal/core"
	"wattio/internal/device"
	"wattio/internal/fault"
	"wattio/internal/sim"
	"wattio/internal/telemetry/invariant"
	"wattio/internal/workload"
)

// govGuard is the slack factor between a device's planned draw and its
// governor budget: wide enough that the feedback loop does not fight
// the model-based plan under normal draw, tight enough to catch a
// device running meaningfully hotter than its model says.
const govGuard = 1.10

// shardRange is one shard's contiguous slice of replica groups.
type shardRange struct{ g0, g1 int }

// shardResult is everything a shard contributes to the merged report.
type shardResult struct {
	Faulted int

	Offered, Admitted, Rejected, Completed int64
	Batches, BytesCompleted                int64
	Latencies                              []time.Duration

	IntervalEnergyJ []float64
	// EndAt is the shard engine's clock after the post-horizon drain:
	// the horizon, or later when held IO (a dropout window) released
	// and completed past it.
	EndAt time.Duration
	// Events is the shard's total dispatched kernel event count.
	Events uint64

	MesoDehydrations, MesoRehydrations int
	MesoParkedPeriods                  int
	MesoAggJ                           float64
	MesoWorstDriftFrac                 float64
	MesoDriftOK                        bool

	MesoGroupLanes, MesoGroupBuckets, MesoGroupScans int
	MesoGroupJ                                       float64

	ChurnAdds, ChurnRemoves int
	WarmupLats, DrainLats   []time.Duration

	GovSteps, GovRetries, GovFailures  int
	Replans, Compensations, Infeasible int
	Failovers, WakesOnDemand           int

	CapOK     bool
	CapWorstW float64
}

// shard is one independent simulation: a slice of the fleet with its
// own engine, control plane, and request scheduler.
type shard struct {
	spec *Spec
	eng  *sim.Engine
	res  shardResult

	devs  []device.Device // build order; wrapped with fault where drawn
	names []string
	maxW  []float64 // per-device planning-model max (governor fallback)
	govs  []*adaptive.Governor
	bc    *adaptive.BudgetController
	plan  core.Assignment

	redirs []*adaptive.Redirector
	lanes  []*lane

	// Per-lane arrival machinery, indexed like lanes. The stream objects
	// are retained so a mesoscale rehydration can restart a lane's
	// arrivals mid-stream instead of replaying the sequence from its
	// seed. laneFaulted marks lanes containing a fault-injected device.
	arrs        []*workload.Arrivals
	astreams    []*sim.RNG
	laneFaulted []bool
	laneGroup   []int // global replica-group number behind each lane
	meso        *mesoState
	grp         *groupState

	// devTotal is the shard's full device count including virtual group
	// members; budget slices and cap bounds scale by it, not by the
	// materialized len(devs). Equal to len(devs) outside group mode.
	devTotal int
	// liveDevs/fleetLive are the shard's and the fleet's live device
	// counts — the budget-slice ratio. Equal to devTotal and Spec.Size
	// until a churn epoch moves them.
	liveDevs, fleetLive int

	// Lane-lifecycle state, nil/zero unless Spec.Churn is set (see
	// lifecycle.go). laneFaultEnd is the end of each lane's last fault
	// window (zero when unfaulted); laneRates the per-lane arrival
	// schedule (rates scaled by Active); models the per-device planning
	// models retained for controller rebuilds; retiredJ the frozen
	// meters of retired devices; ctrlComp compensations folded from
	// retired controllers.
	lc           []laneLife
	devDead      []bool
	groupLane    map[int]int
	models       []*core.Model
	fcache       *adaptive.FleetCache
	retiredJ     float64
	ctrlComp     int
	laneFaultEnd []time.Duration
	laneRates    []workload.RateStep

	inflight int
	stopped  bool
	prevE    float64
	// ivCarry holds group-tier backfill energy owed to the in-progress
	// control interval; intervalTick folds and clears it.
	ivCarry float64

	// Interval energy accounting rides on one rescheduled timer instead
	// of a build-time event per interval.
	ivIdx   int
	ivTimer *sim.Timer

	// freeDone pools per-request completion records across the shard's
	// lanes; the pool never grows past the shard's total in-flight depth.
	freeDone *laneDone
}

// EnergyJ is the shard's aggregate device energy — mechanistic meters
// plus the mesoscale pool's dynamic accrual for parked lanes — so the
// sliding-window cap probe and interval accounting cover the analytic
// population too.
func (s *shard) EnergyJ() float64 {
	var sum float64
	if s.devDead == nil {
		for _, d := range s.devs {
			sum += d.EnergyJ()
		}
	} else {
		// Retired devices stop drawing: their meters were frozen into
		// retiredJ at retirement, so the sum stays continuous there and
		// monotone throughout.
		sum = s.retiredJ
		for i, d := range s.devs {
			if !s.devDead[i] {
				sum += d.EnergyJ()
			}
		}
	}
	if s.meso != nil {
		sum += s.meso.pool.DynEnergyJ(s.eng.Now())
	}
	if s.grp != nil {
		sum += s.grp.pool.EnergyJ(s.eng.Now())
	}
	return sum
}

// lane is one replica group's request scheduler: an admission-bounded
// FIFO queue in front of a device (or a Redirector over its replicas),
// dispatched in batches up to the group's depth limit.
type lane struct {
	sh   *shard
	idx  int
	dev  device.Device
	rng  *sim.RNG
	span int64

	queue    []time.Duration // admission timestamps
	head     int
	inflight int
	seqOff   int64
	// rejected mirrors the shard-wide counter per lane, for the
	// mesoscale steadiness fingerprint.
	rejected int64
}

func (l *lane) qlen() int { return len(l.queue) - l.head }

// arrive handles one open-loop arrival: admit into the queue or reject
// when the queue is at capacity.
func (l *lane) arrive() {
	s := l.sh
	s.res.Offered++
	if l.qlen() >= s.spec.QueueCap {
		s.res.Rejected++
		l.rejected++
		return
	}
	s.res.Admitted++
	l.queue = append(l.queue, s.eng.Now())
	l.dispatch()
}

func (l *lane) pop() time.Duration {
	at := l.queue[l.head]
	l.head++
	if l.head > 1024 && l.head*2 >= len(l.queue) {
		l.queue = append(l.queue[:0], l.queue[l.head:]...)
		l.head = 0
	}
	return at
}

// dispatch submits queued requests in batches. A group fires when a
// full batch of depth slots is free or when the whole remaining queue
// fits — so a loaded lane coalesces submissions into Batch-sized
// bursts (amortizing per-doorbell work, as a real frontend would)
// while a lightly loaded lane dispatches immediately with no added
// latency.
func (l *lane) dispatch() {
	s := l.sh
	if s.stopped {
		return
	}
	for {
		free, q := s.spec.Depth-l.inflight, l.qlen()
		if q == 0 || free == 0 || (free < s.spec.Batch && q > free) {
			return
		}
		n := s.spec.Batch
		if free < n {
			n = free
		}
		if q < n {
			n = q
		}
		s.res.Batches++
		for i := 0; i < n; i++ {
			l.submit(l.pop())
		}
	}
}

// laneDone is one in-flight request's completion record, pooled on the
// shard so steady-state serving submits without allocating: the closure
// handed to the device is built once per record and only its captured
// fields change between reuses.
type laneDone struct {
	l        *lane
	admitted time.Duration
	fn       func()
	next     *laneDone
}

func (d *laneDone) run() {
	// Copy out and recycle first: the dispatch below may pick this very
	// record up for the replacement request.
	l, admitted := d.l, d.admitted
	s := l.sh
	d.next = s.freeDone
	s.freeDone = d
	now := s.eng.Now()
	l.inflight--
	s.inflight--
	s.res.Completed++
	s.res.BytesCompleted += s.spec.ChunkBytes
	// Latency is measured from admission, so queue wait under a
	// curtailed budget is part of the serving tail, as it would be
	// for a real frontend.
	s.res.Latencies = append(s.res.Latencies, now-admitted)
	l.dispatch()
	if s.lc != nil {
		s.laneCompleted(l, now)
	}
	if s.meso != nil {
		s.meso.laneQuiet(l)
	}
}

func (l *lane) submit(admitted time.Duration) {
	s := l.sh
	l.inflight++
	s.inflight++
	op := device.OpWrite
	if s.spec.Read {
		op = device.OpRead
	}
	req := device.Request{Op: op, Offset: l.nextOffset(), Size: s.spec.ChunkBytes}
	d := s.freeDone
	if d == nil {
		d = &laneDone{}
		d.fn = d.run
	} else {
		s.freeDone = d.next
	}
	d.l, d.admitted = l, admitted
	l.dev.Submit(req, d.fn)
}

func (l *lane) nextOffset() int64 {
	bs := l.sh.spec.ChunkBytes
	if !l.sh.spec.Seq {
		return l.rng.Int64N(l.span/bs) * bs
	}
	off := l.seqOff
	l.seqOff += bs
	if l.seqOff+bs > l.span {
		l.seqOff = 0
	}
	return off
}

// applyBudget runs one model-based re-plan: the shard's slice of the
// fleet budget (proportional to its device count) goes through the
// BudgetController, and each device's governor is retargeted to the
// planned draw so the feedback loop enforces the new plan between
// steps.
func (s *shard) applyBudget(fleetW float64) {
	slice := fleetW * float64(s.liveDevs) / float64(s.fleetLive)
	a, err := s.bc.Apply(slice)
	if err != nil {
		// Infeasible slice (or every pass stuck): keep the previous
		// states rather than thrash; the report surfaces the count.
		s.res.Infeasible++
		return
	}
	s.res.Replans++
	s.plan = a
	for i, gv := range s.govs {
		if gv != nil {
			gv.SetBudget(s.planBudget(i))
		}
	}
}

// planBudget is device i's governor budget under the current plan.
func (s *shard) planBudget(i int) float64 {
	if s.grp != nil {
		return s.grp.planW[i] * govGuard
	}
	if sample, ok := s.plan.Configs[s.names[i]]; ok && sample.PowerW > 0 {
		return sample.PowerW * govGuard
	}
	return s.maxW[i] * govGuard
}

// intervalBoundary is the virtual time interval k's accounting fires,
// clamped to the horizon for the final partial interval.
func (s *shard) intervalBoundary(k int) time.Duration {
	t := time.Duration(k) * s.spec.ControlPeriod
	if t > s.spec.Horizon {
		t = s.spec.Horizon
	}
	return t
}

func (s *shard) intervalTick() {
	e := s.EnergyJ()
	s.res.IntervalEnergyJ[s.ivIdx] = e - s.prevE + s.ivCarry
	s.ivCarry = 0
	s.prevE = e
	s.ivIdx++
	// The mesoscale tier rides the same boundary walk: steadiness
	// fingerprints, calibration, and sentinel rotation all happen after
	// the closing interval's energy is recorded. When every lane is
	// parked this timer is the shard's heartbeat — the engine always has
	// an event to carry virtual time to the horizon.
	if s.meso != nil {
		s.meso.tick()
	}
	if s.ivIdx < len(s.res.IntervalEnergyJ) {
		s.ivTimer.Reschedule(s.intervalBoundary(s.ivIdx + 1))
	}
}

// runShard builds and runs one shard to completion. ch is the shard's
// compiled churn timeline (nil when the spec has none).
func runShard(sp *Spec, idx int, rg shardRange, ch *shardChurn) (*shardResult, error) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(sp.Seed ^ shardHash("serve/shard", idx))
	frng := sim.NewRNG(sp.FaultSeed ^ shardHash("serve/fault", idx))
	s := &shard{spec: sp, eng: eng}
	s.res.CapOK = true
	s.res.MesoDriftOK = true
	s.devTotal = (rg.g1 - rg.g0) * sp.Replicas
	s.liveDevs, s.fleetLive = s.devTotal, sp.Size
	if len(sp.Rates) > 0 {
		s.laneRates = make([]workload.RateStep, len(sp.Rates))
		for i, rs := range sp.Rates {
			s.laneRates[i] = workload.RateStep{At: rs.At, IOPS: rs.IOPS * float64(sp.Active)}
		}
	}

	// Build devices, planning models, replica groups, and lanes. In
	// group mode (MesoGroupMin > 0) only resident groups materialize —
	// planGroups decides residency and pre-draws every member's fault
	// outcome first, so virtual members cost no device state at all.
	scripted := scriptedFaults(sp)
	var buildGroups []int
	if sp.MesoGroupMin > 0 {
		s.grp = planGroups(s, rng, frng, rg, scripted)
		buildGroups = s.grp.buildGroups
	} else {
		buildGroups = make([]int, 0, rg.g1-rg.g0)
		for g := rg.g0; g < rg.g1; g++ {
			buildGroups = append(buildGroups, g)
		}
	}
	for _, g := range buildGroups {
		profile := sp.Profiles[g%len(sp.Profiles)]
		groupDevs := make([]device.Device, 0, sp.Replicas)
		groupFaulted := false
		var groupFaultEnd time.Duration
		for rep := 0; rep < sp.Replicas; rep++ {
			gi := g*sp.Replicas + rep
			var d device.Device
			var name string
			var wins []fault.Window
			var err error
			if s.grp != nil {
				d, name, wins, err = s.grp.materialize(profile, gi)
			} else {
				d, name, wins, err = materializeDevice(sp, eng, rng, frng, scripted, profile, gi)
			}
			if err != nil {
				return nil, err
			}
			if len(wins) > 0 {
				s.res.Faulted++
				groupFaulted = true
				for _, w := range wins {
					if end := w.End(); end > groupFaultEnd {
						groupFaultEnd = end
					}
				}
			}
			if s.grp == nil {
				// Per-device planning models feed the BudgetController;
				// group mode plans over shared per-profile hulls instead.
				m, err := planningModel(profile, name)
				if err != nil {
					return nil, err
				}
				s.models = append(s.models, m)
			}
			s.devs = append(s.devs, d)
			s.names = append(s.names, name)
			s.maxW = append(s.maxW, profileMaxW(profile))
			groupDevs = append(groupDevs, d)
		}

		target := groupDevs[0]
		if sp.Replicas > 1 {
			rd, err := adaptive.NewRedirector(fmt.Sprintf("group%05d", g), groupDevs, sp.Active)
			if err != nil {
				return nil, err
			}
			s.redirs = append(s.redirs, rd)
			target = rd
		}
		span := target.CapacityBytes()
		span -= span % sp.ChunkBytes
		s.lanes = append(s.lanes, &lane{
			sh:   s,
			idx:  len(s.lanes),
			dev:  target,
			rng:  rng.Stream(fmt.Sprintf("lane%05d", g)),
			span: span,
		})
		s.laneFaulted = append(s.laneFaulted, groupFaulted)
		s.laneFaultEnd = append(s.laneFaultEnd, groupFaultEnd)
		s.laneGroup = append(s.laneGroup, g)
	}

	// Initial plan, then one governor per device with selectable power
	// states, targeted at its planned draw.
	if s.grp != nil {
		s.grp.finishBuild()
	} else {
		fleet, err := core.NewFleet(s.models...)
		if err != nil {
			return nil, err
		}
		if s.bc, err = adaptive.NewBudgetController(fleet, s.devs); err != nil {
			return nil, err
		}
		s.applyBudget(sp.Budget[0].FleetW)
	}
	for i, d := range s.devs {
		if len(d.PowerStates()) < 2 {
			s.govs = append(s.govs, nil)
			continue
		}
		gv, err := adaptive.NewGovernor(eng, d, s.planBudget(i), sp.ControlPeriod)
		if err != nil {
			return nil, err
		}
		gv.Start()
		s.govs = append(s.govs, gv)
	}

	// A budget step re-plans the whole shard, so every analytically
	// aggregated lane must return to mechanistic simulation first: the
	// rehydration settles its closed-form counts and restores governors
	// and arrivals before the plan changes underneath it.
	for _, st := range sp.Budget[1:] {
		st := st
		eng.Post(st.At, func() {
			if s.meso != nil {
				s.meso.rehydrateAll()
			}
			if s.grp != nil {
				s.grp.apply(st.FleetW)
			} else {
				s.applyBudget(st.FleetW)
			}
		})
	}

	// Rate-schedule boundaries and churn epochs post after the budget
	// steps, so at a shared instant the new budget is already in force
	// when the boundary or epoch re-plans. Warm events for earlier churn
	// events post before later epochs — compileChurn's warming flag
	// relies on that order.
	if len(sp.Rates) > 1 {
		for _, rs := range sp.Rates[1:] {
			rs := rs
			eng.Post(rs.At, func() { s.rateStep(rs) })
		}
	}
	if ch != nil {
		s.lc = make([]laneLife, len(s.lanes))
		s.devDead = make([]bool, len(s.devs))
		s.fcache = adaptive.NewFleetCache()
		s.groupLane = make(map[int]int, len(s.lanes))
		for i, g := range s.laneGroup {
			s.groupLane[g] = i
		}
		for _, ep := range ch.epochs {
			ep := ep
			eng.Post(ep.at, func() { s.churnEpoch(ep) })
			if len(ep.adds) > 0 && ep.warmAt > ep.at {
				eng.Post(ep.warmAt, func() { s.warmEpoch(ep) })
			}
		}
	}

	// Power accounting per control interval: one timer walks the
	// interval boundaries, rescheduling itself in place. The interval
	// event only reads EnergyJ (and no co-timed event deposits energy
	// discontinuously), so its order among co-timed control events does
	// not affect any recorded value.
	nIv := int((sp.Horizon + sp.ControlPeriod - 1) / sp.ControlPeriod)
	s.res.IntervalEnergyJ = make([]float64, nIv)
	s.prevE = s.EnergyJ()
	s.ivTimer = eng.Schedule(s.intervalBoundary(1), s.intervalTick)

	var capProbe *invariant.CapProbe
	var clockProbe *invariant.ClockProbe
	if sp.CheckInvariants {
		// The cap bound is the largest budget slice this shard can ever
		// hold: max over budget steps crossed with max over membership
		// epochs of the live-device ratio. The bound covers the drain
		// overhang too — a removal only lowers the ratio, so the earlier,
		// larger bound still holds while retiring lanes finish drawing.
		var maxSlice float64
		for _, st := range sp.Budget {
			slice := st.FleetW * float64(s.devTotal) / float64(sp.Size)
			if ch != nil {
				for _, ep := range ch.epochs {
					if v := st.FleetW * float64(ep.live) / float64(ep.fleetLive); v > slice {
						slice = v
					}
				}
			}
			if slice > maxSlice {
				maxSlice = slice
			}
		}
		capProbe = invariant.AttachCap(eng, s, maxSlice*(1+sp.CapTolFrac), sp.ControlPeriod, sp.ControlPeriod/20)
		clockProbe = invariant.AttachClock(eng, sp.ControlPeriod/2)
	}

	// Open-loop arrival stream per lane.
	for i := range s.lanes {
		s.astreams = append(s.astreams, rng.Stream(fmt.Sprintf("arrivals%05d", s.laneGroup[i])))
		s.arrs = append(s.arrs, nil)
		if err := s.startLaneArrivals(i); err != nil {
			return nil, err
		}
	}

	if sp.Meso {
		s.meso = newMeso(s)
	}

	eng.RunUntil(sp.Horizon)

	// Settle the analytic tier at the horizon, before governors are
	// stopped and in-flight IO drains: parked lanes contribute their
	// closed-form counts and energy through the full horizon.
	if s.meso != nil {
		s.meso.settle()
	}

	// Past the horizon: stop admitting and controlling, drain in-flight
	// IO so every admitted-and-submitted request's latency is counted.
	s.stopped = true
	for _, gv := range s.govs {
		if gv != nil {
			gv.Stop()
		}
	}
	if capProbe != nil {
		capProbe.Stop()
		s.res.CapWorstW = capProbe.WorstWindowW()
		s.res.CapOK = capProbe.Check(0.02) == nil
	}
	if clockProbe != nil {
		clockProbe.Stop()
		if err := clockProbe.Check(); err != nil {
			return nil, err
		}
	}
	for s.inflight > 0 && eng.Step() {
	}
	if s.inflight > 0 {
		return nil, fmt.Errorf("engine drained with %d IOs in flight", s.inflight)
	}
	s.res.EndAt = eng.Now()
	s.res.Events = eng.Dispatched()

	for _, gv := range s.govs {
		if gv == nil {
			continue
		}
		s.res.GovSteps += gv.Steps
		s.res.GovRetries += gv.Retries
		s.res.GovFailures += gv.Failures
	}
	if s.bc != nil {
		s.res.Compensations = s.ctrlComp + s.bc.Compensations
	}
	for _, rd := range s.redirs {
		s.res.Failovers += rd.Failovers
		s.res.WakesOnDemand += rd.WakesOnDemand
	}
	sort.Slice(s.res.Latencies, func(i, j int) bool { return s.res.Latencies[i] < s.res.Latencies[j] })
	return &s.res, nil
}

// shardHash derives a per-shard seed offset, so shards get independent
// but reproducible random streams no matter which worker runs them.
func shardHash(label string, idx int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", label, idx)
	return h.Sum64()
}
