package serve

import (
	"reflect"
	"testing"
	"time"

	"wattio/internal/fault"
)

// mesoBase is a fleet spec small enough for unit tests but long enough
// for lanes to dwell, park, and accumulate meaningful analytic spans.
func mesoBase() Spec {
	return Spec{
		Size:            8,
		Shards:          2,
		Horizon:         2 * time.Second,
		RateIOPS:        3000,
		Seed:            7,
		CheckInvariants: true,
	}
}

func TestMesoOffLeavesReportClean(t *testing.T) {
	t.Parallel()
	r, err := Run(mesoBase())
	if err != nil {
		t.Fatal(err)
	}
	if r.MesoDehydrations != 0 || r.MesoRehydrations != 0 || r.MesoParkedPeriods != 0 || r.MesoAggJ != 0 {
		t.Fatalf("meso-off run has meso accounting: %+v", r)
	}
	if !r.MesoDriftOK {
		t.Fatal("meso-off run reports drift")
	}
}

// TestMesoHybridRun is the tier's core contract: lanes park, simulated
// work drops hard, and energy, throughput, and every invariant probe
// stay consistent with the pure event-driven run of the same spec.
func TestMesoHybridRun(t *testing.T) {
	t.Parallel()
	off, err := Run(mesoBase())
	if err != nil {
		t.Fatal(err)
	}
	sp := mesoBase()
	sp.Meso = true
	on, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}

	if on.MesoDehydrations == 0 || on.MesoParkedPeriods == 0 {
		t.Fatalf("no lanes parked: dehydrations=%d parkedPeriods=%d", on.MesoDehydrations, on.MesoParkedPeriods)
	}
	if on.Events*2 >= off.Events {
		t.Fatalf("hybrid run dispatched %d events, pure %d — want at least 2x reduction", on.Events, off.Events)
	}
	if !on.CapOK || !on.TrackOK || !on.MesoDriftOK {
		t.Fatalf("probes failed on hybrid run: cap=%v track=%v drift=%v (worst %.4f)",
			on.CapOK, on.TrackOK, on.MesoDriftOK, on.MesoWorstDriftFrac)
	}
	if on.MesoAggJ <= 0 {
		t.Fatalf("parked spans accounted no dynamic energy: %v", on.MesoAggJ)
	}

	// The analytic population must agree with the mechanistic one it
	// replaced. The transition periods (drain + idle calibration) serve
	// no traffic, so a short run leaks a few percent; the meso
	// experiment asserts the tight bound on a long horizon.
	relDiff := func(a, b float64) float64 {
		d := (a - b) / b
		if d < 0 {
			d = -d
		}
		return d
	}
	if d := relDiff(on.AvgPowerW, off.AvgPowerW); d > 0.10 {
		t.Fatalf("hybrid energy diverged: on %.3f W, off %.3f W (%.1f%%)", on.AvgPowerW, off.AvgPowerW, 100*d)
	}
	if d := relDiff(on.ThroughputMBps, off.ThroughputMBps); d > 0.10 {
		t.Fatalf("hybrid throughput diverged: on %.3f, off %.3f MB/s (%.1f%%)", on.ThroughputMBps, off.ThroughputMBps, 100*d)
	}
	if on.Completed != on.Admitted-int64(0) && on.Completed > on.Admitted {
		t.Fatalf("synthetic counts inconsistent: completed %d > admitted %d", on.Completed, on.Admitted)
	}
}

func TestMesoDeterministic(t *testing.T) {
	t.Parallel()
	sp := mesoBase()
	sp.Meso = true
	a, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("hybrid reports differ across identical runs")
	}
}

// TestMesoBudgetStepRehydrates: a budget step must pull every parked
// lane back to mechanistic simulation before the re-plan, and tracking
// must hold across the transition.
func TestMesoBudgetStepRehydrates(t *testing.T) {
	t.Parallel()
	sp := mesoBase()
	sp.Meso = true
	sp.Budget = []BudgetStep{
		{At: 0, FleetW: 8 * 25.0},
		{At: 1 * time.Second, FleetW: 8 * 8.0},
	}
	r, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if r.MesoDehydrations == 0 {
		t.Fatal("no lanes parked before the budget step")
	}
	if r.MesoRehydrations == 0 {
		t.Fatal("budget step rehydrated no lanes")
	}
	if !r.TrackOK || !r.CapOK || !r.MesoDriftOK {
		t.Fatalf("probes failed across budget step: track=%v cap=%v drift=%v", r.TrackOK, r.CapOK, r.MesoDriftOK)
	}
	if r.Replans == 0 {
		t.Fatal("budget step did not re-plan")
	}
}

// TestMesoFaultedLaneStaysMechanistic: a lane with an injected fault
// window must never be represented analytically — its dropout happens
// mid-run and an aggregate would serve through it as if healthy.
func TestMesoFaultedLaneStaysMechanistic(t *testing.T) {
	t.Parallel()
	sp := mesoBase()
	sp.Meso = true
	sp.Size = 2
	sp.Shards = 1
	sp.Faults = []DeviceFault{{
		Device: InstanceName("SSD2", 0),
		Windows: []fault.Window{
			{Kind: fault.Dropout, Start: 500 * time.Millisecond, Dur: 400 * time.Millisecond},
		},
	}}
	r, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if r.Faulted != 1 {
		t.Fatalf("Faulted = %d, want 1", r.Faulted)
	}
	// Only the healthy lane may park; the faulted lane serves (and
	// stalls) mechanistically, so the dropout still shows up in the
	// drain and the latency tail.
	if r.MesoDehydrations == 0 {
		t.Fatal("healthy lane never parked")
	}
	if !r.MesoDriftOK {
		t.Fatalf("drift tripped: worst %.4f", r.MesoWorstDriftFrac)
	}
	if r.ThroughputMBps != float64(r.BytesCompleted)/1e6/r.SimulatedDur.Seconds() {
		t.Fatal("throughput not derived from simulated duration")
	}
}
