package serve

import (
	"testing"
	"time"

	"wattio/internal/detcheck"
	"wattio/internal/fault"
)

// groupBase: big enough for real cohorts per shard, small enough for
// unit tests. 64 lanes over 2 shards → 32 members per shard cohort,
// with 2 resident probes each: 30 virtual members per shard.
func groupBase() Spec {
	return Spec{
		Size:            64,
		Shards:          2,
		Horizon:         2 * time.Second,
		RateIOPS:        3000,
		Seed:            7,
		CheckInvariants: true,
		Meso:            true,
		MesoGroupMin:    4,
	}
}

func TestGroupSpecValidation(t *testing.T) {
	t.Parallel()
	sp := groupBase()
	sp.Meso = false
	if _, err := Run(sp); err == nil {
		t.Fatal("group parking without the meso tier must be rejected")
	}
	sp = groupBase()
	sp.MesoGroupMin = 0
	sp.MesoProbes = 2
	if _, err := Run(sp); err == nil {
		t.Fatal("probe count without group parking must be rejected")
	}
	sp = groupBase()
	sp.MesoGroupMin = -1
	if _, err := Run(sp); err == nil {
		t.Fatal("negative group minimum must be rejected")
	}
}

// TestGroupOffLeavesReportClean: plain meso runs carry no group
// accounting, so goldens and existing reports are unaffected.
func TestGroupOffLeavesReportClean(t *testing.T) {
	t.Parallel()
	sp := groupBase()
	sp.MesoGroupMin = 0
	r, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if r.MesoGroupLanes != 0 || r.MesoGroupBuckets != 0 || r.MesoGroupScans != 0 || r.MesoGroupJ != 0 {
		t.Fatalf("group accounting on a group-off run: %+v", r)
	}
}

// TestGroupParkingEquivalence is the tier's core contract: virtualizing
// most of a cohort behind probe-calibrated buckets must agree with the
// per-lane-parked run of the same spec within the meso energy gate,
// while shrinking mechanistic work by about the virtualization ratio.
func TestGroupParkingEquivalence(t *testing.T) {
	t.Parallel()
	perLane := groupBase()
	perLane.MesoGroupMin = 0
	pl, err := Run(perLane)
	if err != nil {
		t.Fatal(err)
	}
	pure := groupBase()
	pure.MesoGroupMin = 0
	pure.Meso = false
	pu, err := Run(pure)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := Run(groupBase())
	if err != nil {
		t.Fatal(err)
	}

	if gr.MesoGroupLanes == 0 || gr.MesoGroupBuckets == 0 {
		t.Fatalf("nothing virtualized: lanes=%d buckets=%d", gr.MesoGroupLanes, gr.MesoGroupBuckets)
	}
	// 64 lanes, 2 shards, 2 probes each → 60 virtual.
	if gr.MesoGroupLanes != 60 {
		t.Fatalf("MesoGroupLanes = %d, want 60", gr.MesoGroupLanes)
	}
	if gr.MesoGroupJ <= 0 {
		t.Fatalf("virtual population accounted no energy: %v", gr.MesoGroupJ)
	}
	if !gr.CapOK || !gr.TrackOK || !gr.MesoDriftOK {
		t.Fatalf("probes failed: cap=%v track=%v drift=%v (worst %.4f)",
			gr.CapOK, gr.TrackOK, gr.MesoDriftOK, gr.MesoWorstDriftFrac)
	}
	// Virtual members dispatch no kernel events at all; only the probes
	// serve mechanistically.
	if gr.Events*4 >= pl.Events {
		t.Fatalf("group run dispatched %d events, per-lane %d — want at least 4x reduction", gr.Events, pl.Events)
	}

	relDiff := func(a, b float64) float64 {
		d := (a - b) / b
		if d < 0 {
			d = -d
		}
		return d
	}
	if d := relDiff(gr.AvgPowerW, pl.AvgPowerW); d > 0.10 {
		t.Fatalf("group energy diverged: group %.3f W, per-lane %.3f W (%.1f%%)", gr.AvgPowerW, pl.AvgPowerW, 100*d)
	}
	// Virtual members serve the offered rate for the whole horizon —
	// they never spend periods draining or idle-calibrating — so their
	// throughput reference is the pure mechanistic run (per-lane meso
	// legitimately under-serves by its transition periods).
	if d := relDiff(gr.ThroughputMBps, pu.ThroughputMBps); d > 0.10 {
		t.Fatalf("group throughput diverged: group %.3f, pure %.3f MB/s (%.1f%%)", gr.ThroughputMBps, pu.ThroughputMBps, 100*d)
	}
	if d := relDiff(gr.AvgPowerW, pu.AvgPowerW); d > 0.10 {
		t.Fatalf("group energy diverged from pure run: group %.3f W, pure %.3f W (%.1f%%)", gr.AvgPowerW, pu.AvgPowerW, 100*d)
	}
}

// TestGroupBudgetStepSplitsBuckets: a budget step tight enough to
// spread a cohort across power states must split its bucket, keep the
// plan work bucket-shaped (scans ≪ lanes), and hold every gate.
func groupStepSpec() Spec {
	sp := groupBase()
	// SSD2's concave hull runs ps2 (9.7 W) to ps0 (14.4 W). Base is
	// 64×9.7 = 620.8 W; the step budget affords only some lanes the
	// 4.7 W upgrade, so each shard cohort splits across two buckets.
	sp.Budget = []BudgetStep{
		{At: 0, FleetW: 64 * 14.6},
		{At: 1 * time.Second, FleetW: 64*9.7 + 30*4.7},
	}
	return sp
}

func TestGroupBudgetStepSplitsBuckets(t *testing.T) {
	t.Parallel()
	r, err := Run(groupStepSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Two shards, one cohort each: ≥2 buckets per shard after the split.
	if r.MesoGroupBuckets < 4 {
		t.Fatalf("budget step did not split buckets: %d", r.MesoGroupBuckets)
	}
	if r.Replans < 4 {
		t.Fatalf("Replans = %d, want both steps on both shards", r.Replans)
	}
	// The control-period scan is bucket-shaped: every re-plan touches
	// O(hull levels) slots, never O(lanes).
	if r.MesoGroupScans >= r.Devices {
		t.Fatalf("group scan work O(lanes): %d slots for %d devices", r.MesoGroupScans, r.Devices)
	}
	if !r.TrackOK || !r.CapOK || !r.MesoDriftOK {
		t.Fatalf("probes failed across bucket split: track=%v cap=%v drift=%v (worst %.4f)",
			r.TrackOK, r.CapOK, r.MesoDriftOK, r.MesoWorstDriftFrac)
	}
	if r.MesoParkedPeriods == 0 {
		t.Fatal("virtual members counted no parked periods")
	}
}

// TestGroupDeterministic: bit-identical reports across GOMAXPROCS on
// the bucket-splitting spec — the group tier's rehydration storm.
// Not parallel: detcheck pins GOMAXPROCS.
func TestGroupDeterministic(t *testing.T) {
	detcheck.Assert(t, func() (*Report, error) { return Run(groupStepSpec()) }, detcheck.Config[*Report]{
		Procs: []int{1, 4, 8},
		Diff: func(t testing.TB, a, b *Report) {
			t.Logf("reference: %+v", a)
			t.Logf("divergent: %+v", b)
		},
	})
}

// TestGroupFaultedMemberStaysResident: fault-injected members of a
// virtualized cohort must materialize and serve mechanistically — an
// aggregate would serve through the dropout as if healthy.
func TestGroupFaultedMemberStaysResident(t *testing.T) {
	t.Parallel()
	sp := groupBase()
	sp.Shards = 1
	// Instance 40 is far past the probe prefix — without the fault it
	// would be virtual.
	sp.Faults = []DeviceFault{{
		Device: InstanceName("SSD2", 40),
		Windows: []fault.Window{
			{Kind: fault.Dropout, Start: 500 * time.Millisecond, Dur: 400 * time.Millisecond},
		},
	}}
	r, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if r.Faulted != 1 {
		t.Fatalf("Faulted = %d, want 1", r.Faulted)
	}
	// 64 members, 2 probes + 1 faulted resident → 61 virtual.
	if r.MesoGroupLanes != 61 {
		t.Fatalf("MesoGroupLanes = %d, want 61", r.MesoGroupLanes)
	}
	// Replicas=1 means no redirector: the dropout's mechanistic trace is
	// the held IO's latency tail, close to the 400 ms window.
	if r.Failovers == 0 && r.LatMax < 300*time.Millisecond {
		t.Fatalf("dropout left no mechanistic trace: failovers=%d latMax=%v", r.Failovers, r.LatMax)
	}
	if !r.MesoDriftOK {
		t.Fatalf("drift tripped: worst %.4f", r.MesoWorstDriftFrac)
	}
}
