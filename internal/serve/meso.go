package serve

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"wattio/internal/adaptive"
	"wattio/internal/device"
	"wattio/internal/meso"
	"wattio/internal/telemetry/invariant"
)

// The mesoscale aggregation tier lets a shard stop simulating lanes
// that have settled into a steady operating point. A lane's life cycle:
//
//	hydrated --(steady for MesoDwellPeriods)--> draining
//	draining --(in-flight and queue empty)----> idling | parked
//	idling   --(one quiesced period measured)-> parked
//	parked   --(budget step / sentinel / end)-> hydrated
//
// Everything the aggregate needs is calibrated from the lane's own
// mechanistic history on this run — the draw over its last steady
// control period, and the quiesced draw of its devices in their held
// power states (cached per power-state fingerprint, so repeated parks
// skip the idling phase). While parked, the devices' lazy meters keep
// accruing exact idle energy and the meso.Pool accounts only the
// dynamic delta and the synthetic IO counts; rehydration settles those
// into the shard's ledgers. Parked lanes produce no latency samples —
// the merged quantiles describe the mechanistic population.
//
// All decisions ride the shard's own interval timer and virtual clock,
// so the tier cannot perturb the determinism contract: reports are
// bit-identical at any host parallelism, and with Spec.Meso off no
// code path here runs at all.

// mesoSentinelEvery is the sentinel cadence in control periods: every
// so many ticks one parked lane per shard rehydrates, re-serves real
// traffic, and its freshly re-measured draw is compared against the
// aggregate's calibrated operating point (the drift probe).
const mesoSentinelEvery = 8

type mesoPhase uint8

const (
	mesoHydrated mesoPhase = iota
	mesoDraining
	mesoIdling
	mesoParked
)

type mesoLane struct {
	phase mesoPhase
	// barred lanes never park again: a sentinel re-measurement drifted
	// beyond tolerance, so the aggregate's model of this lane cannot be
	// trusted for the rest of the run. barredUntil bars a lane only
	// until a known transient ends — a fault-injected lane until its
	// last window closes (calibrating across a dropout would be a lie,
	// but a drained-back lane is just a lane again), a churned lane
	// until its warm-up completes. Neither transient bars forever: no
	// member is a permanently forced resident.
	barred      bool
	barredUntil time.Duration
	dwell       int

	// prevE/prevT are the lane's device energy baseline and the time it
	// was taken — the last tick, or the rehydration instant for a lane
	// that just returned mid-period. Period draws divide by the real
	// elapsed time, never by an assumed control period.
	prevE   float64
	prevT   time.Duration
	steadyW float64 // average draw over the last steady dwell window

	// Dwell window baseline: lane energy and time when the current
	// steady streak began. Calibrating over the whole window instead of
	// one period keeps Poisson arrival noise out of the operating point
	// (a single 100 ms period at a few thousand IOPS carries several
	// percent of count noise).
	dwellE float64
	dwellT time.Duration

	// Steadiness fingerprint snapshots from the last tick.
	rejected         int64
	states           []int
	failovers, wakes int

	// Idle calibration: measurement window start, and the cache of
	// measured quiesced draw keyed by power-state fingerprint.
	idleStartE float64
	idleStartT time.Duration
	idleW      map[string]float64

	// pendingPredW is the calibrated draw a sentinel rehydration must
	// be compared against at the next recalibration; <0 when none.
	pendingPredW float64
}

type mesoState struct {
	s      *shard
	pool   *meso.Pool
	drift  invariant.DriftProbe
	lanes  []mesoLane
	ticks  int
	cursor int // sentinel rotation position
	done   bool
}

func newMeso(s *shard) *mesoState {
	m := &mesoState{s: s, pool: meso.NewPool(len(s.lanes)), lanes: make([]mesoLane, len(s.lanes))}
	for i := range m.lanes {
		ml := &m.lanes[i]
		ml.barredUntil = s.laneFaultEnd[i]
		ml.states = make([]int, s.spec.Replicas)
		ml.idleW = make(map[string]float64)
		ml.pendingPredW = -1
		ml.prevE = m.laneEnergy(i)
		m.snapshot(i, ml)
	}
	return m
}

// addLane extends the tier to cover a lane admitted mid-run by a churn
// epoch: the pool grows and the lane starts hydrated, barred from
// parking until its warm-up completes (an idle warming lane looks
// steady but has no operating point worth calibrating).
func (m *mesoState) addLane(i int, warmAt time.Duration) {
	m.pool.Grow(i + 1)
	m.lanes = append(m.lanes, mesoLane{})
	ml := &m.lanes[i]
	ml.barredUntil = warmAt
	ml.states = make([]int, m.s.spec.Replicas)
	ml.idleW = make(map[string]float64)
	ml.pendingPredW = -1
	ml.prevE = m.laneEnergy(i)
	ml.prevT = m.s.eng.Now()
	m.snapshot(i, ml)
}

// resetBaseline restarts lane i's steadiness tracking from the current
// instant — called when its traffic regime changes discontinuously (a
// churned lane's arrivals starting at warm-up), so a dwell accumulated
// under the old regime never calibrates the new one.
func (m *mesoState) resetBaseline(i int) {
	ml := &m.lanes[i]
	ml.dwell = 0
	ml.prevE, ml.prevT = m.laneEnergy(i), m.s.eng.Now()
	m.snapshot(i, ml)
}

// evict pulls a lane out of the analytic tier for retirement: a parked
// lane settles its span (without restarting serving), a draining or
// idling one simply returns to hydrated — its arrivals are already
// stopped and the retirement path stops its governors.
func (m *mesoState) evict(i int, now time.Duration) {
	ml := &m.lanes[i]
	switch ml.phase {
	case mesoParked:
		m.unpark(i, now, false)
	case mesoDraining, mesoIdling:
		ml.phase = mesoHydrated
		ml.dwell = 0
	}
}

func (m *mesoState) laneEnergy(i int) float64 {
	r := m.s.spec.Replicas
	var e float64
	for _, d := range m.s.devs[i*r : (i+1)*r] {
		e += d.EnergyJ()
	}
	return e
}

func (m *mesoState) laneGovs(i int) []*adaptive.Governor {
	r := m.s.spec.Replicas
	return m.s.govs[i*r : (i+1)*r]
}

// stateKey is the lane's power-state fingerprint, the cache key for
// measured idle draw: the same devices in the same states quiesce to
// the same draw.
func (m *mesoState) stateKey(i int) string {
	r := m.s.spec.Replicas
	var b strings.Builder
	for _, d := range m.s.devs[i*r : (i+1)*r] {
		b.WriteString(strconv.Itoa(d.PowerStateIndex()))
		b.WriteByte('.')
	}
	return b.String()
}

// snapshot refreshes the lane's steadiness fingerprint baselines.
func (m *mesoState) snapshot(i int, ml *mesoLane) {
	s := m.s
	ml.rejected = s.lanes[i].rejected
	if len(s.redirs) > 0 {
		ml.failovers, ml.wakes = s.redirs[i].Failovers, s.redirs[i].WakesOnDemand
	}
	r := s.spec.Replicas
	for rep, d := range s.devs[i*r : (i+1)*r] {
		ml.states[rep] = d.PowerStateIndex()
	}
}

// steady checks (and refreshes) the lane's fingerprint: no rejections,
// no failovers or on-demand wakes, settled healthy devices holding
// their power states, and a queue no deeper than one dispatch batch.
func (m *mesoState) steady(i int, ml *mesoLane) bool {
	s := m.s
	l := s.lanes[i]
	ok := l.qlen() <= s.spec.Batch
	if l.rejected != ml.rejected {
		ok = false
		ml.rejected = l.rejected
	}
	if len(s.redirs) > 0 {
		rd := s.redirs[i]
		if rd.Failovers != ml.failovers || rd.WakesOnDemand != ml.wakes {
			ok = false
			ml.failovers, ml.wakes = rd.Failovers, rd.WakesOnDemand
		}
	}
	r := s.spec.Replicas
	for rep, d := range s.devs[i*r : (i+1)*r] {
		if !device.Healthy(d) || !d.Settled() {
			ok = false
		}
		if idx := d.PowerStateIndex(); idx != ml.states[rep] {
			ok = false
			ml.states[rep] = idx
		}
	}
	return ok
}

// tick runs the tier's per-control-period pass, after the closing
// interval's energy is recorded.
func (m *mesoState) tick() {
	if m.done {
		return
	}
	s := m.s
	now := s.eng.Now()
	m.ticks++
	atEnd := now >= s.spec.Horizon
	if s.grp != nil {
		// Virtual cohort members are served analytically this period —
		// one O(1) read, however many lanes the buckets represent.
		s.res.MesoParkedPeriods += s.grp.pool.Members()
	}
	for i := range m.lanes {
		ml := &m.lanes[i]
		if s.lc != nil && (s.lc[i].removing || s.lc[i].dead) {
			continue
		}
		if ml.phase == mesoParked {
			s.res.MesoParkedPeriods++
			continue
		}
		e := m.laneEnergy(i)
		prev, prevT := ml.prevE, ml.prevT
		ml.prevE, ml.prevT = e, now
		switch ml.phase {
		case mesoHydrated:
			if now <= prevT {
				// The lane rehydrated at this very tick (a co-timed
				// budget step): no time has passed, there is no period
				// to judge.
				break
			}
			if m.steady(i, ml) {
				if ml.dwell == 0 {
					ml.dwellE, ml.dwellT = prev, prevT
				}
				ml.dwell++
			} else {
				ml.dwell = 0
			}
			if ml.barredUntil > 0 && now >= ml.barredUntil && s.lanes[i].qlen() == 0 {
				// The transient is over and the lane has caught up — a
				// dropout releases its held IOs all at once, and the
				// backlog drain draws more than the steady regime, so
				// the bar lifts only at the first clean (empty-queue)
				// boundary and the dwell restarts from it.
				ml.barredUntil = 0
				ml.dwell = 0
			}
			if !atEnd && !ml.barred && ml.barredUntil == 0 && ml.dwell >= s.spec.MesoDwellPeriods {
				m.beginDrain(i, ml, e, now)
			}
		case mesoDraining:
			// Waiting on in-flight IO; laneQuiet advances the phase.
		case mesoIdling:
			if ml.idleStartT < 0 {
				// First boundary after the drain completed: the residual
				// power decay of the last IOs has flushed, start the
				// quiesced measurement window here.
				ml.idleStartE = e
				ml.idleStartT = now
			} else if dt := now - ml.idleStartT; dt > 0 {
				idleW := (e - ml.idleStartE) / dt.Seconds()
				ml.idleW[m.stateKey(i)] = idleW
				m.park(i, ml, now, idleW)
			}
		}
	}
	if !atEnd && m.ticks%mesoSentinelEvery == 0 {
		m.sentinel(now)
	}
}

// beginDrain starts dehydration: the draw averaged over the steady
// dwell window is the aggregate's calibration (and the verdict on any
// pending sentinel comparison), arrivals stop, and the lane drains its
// in-flight IO.
func (m *mesoState) beginDrain(i int, ml *mesoLane, e float64, now time.Duration) {
	s := m.s
	w := (e - ml.dwellE) / (now - ml.dwellT).Seconds()
	ml.steadyW = w
	if ml.pendingPredW >= 0 {
		frac := m.drift.Observe(ml.pendingPredW, w)
		ml.pendingPredW = -1
		if frac > s.spec.MesoDriftTolFrac {
			// The aggregate's model of this lane was wrong: keep the
			// lane mechanistic for the rest of the run.
			ml.barred = true
			return
		}
	}
	s.arrs[i].Stop()
	ml.phase = mesoDraining
	m.laneQuiet(s.lanes[i])
}

// laneQuiet advances a draining lane the moment its last in-flight IO
// completes: governors stop so the devices hold their states, and the
// lane either parks directly (idle draw cached for this power-state
// fingerprint) or enters the idling measurement.
func (m *mesoState) laneQuiet(l *lane) {
	if m.done {
		return
	}
	ml := &m.lanes[l.idx]
	if ml.phase != mesoDraining || l.inflight != 0 || l.qlen() != 0 {
		return
	}
	for _, g := range m.laneGovs(l.idx) {
		if g != nil {
			g.Stop()
		}
	}
	if w, ok := ml.idleW[m.stateKey(l.idx)]; ok {
		m.park(l.idx, ml, m.s.eng.Now(), w)
		return
	}
	ml.phase = mesoIdling
	ml.idleStartT = -1
}

func (m *mesoState) park(i int, ml *mesoLane, now time.Duration, idleW float64) {
	s := m.s
	m.pool.Park(i, meso.OperatingPoint{
		PowerW:     ml.steadyW,
		IdleW:      idleW,
		RateIOPS:   s.laneRateIOPS(now),
		BytesPerIO: s.spec.ChunkBytes,
	}, now)
	ml.phase = mesoParked
	s.res.MesoDehydrations++
	if s.grp != nil {
		// A parking probe's measured draw calibrates its cohort bucket.
		s.grp.probeParked(i, ml.steadyW, now, &m.drift)
	}
}

// unpark settles a parked lane's closed-form span into the shard's
// ledgers and (when restart is set) resumes mechanistic serving:
// governors restart their control loops and the arrival process
// continues on the lane's retained RNG stream for the remaining
// horizon.
func (m *mesoState) unpark(i int, now time.Duration, restart bool) {
	s := m.s
	ml := &m.lanes[i]
	set := m.pool.Unpark(i, now)
	s.res.Offered += set.IOs
	s.res.Admitted += set.IOs
	s.res.Completed += set.IOs
	s.res.BytesCompleted += set.Bytes
	s.res.MesoAggJ += set.DynJ
	s.res.MesoRehydrations++
	ml.phase = mesoHydrated
	ml.dwell = 0
	if !restart {
		return
	}
	for _, g := range m.laneGovs(i) {
		if g != nil {
			g.Start()
		}
	}
	if err := s.startLaneArrivals(i); err != nil {
		// Inputs were validated when the lane first started; a
		// failure here is a programming error, not a spec error.
		panic(fmt.Sprintf("serve: meso rehydration of lane %d: %v", i, err))
	}
	ml.prevE, ml.prevT = m.laneEnergy(i), now
	m.snapshot(i, ml)
}

// sentinel rehydrates the next parked lane in rotation for a ground
// truth check: it re-serves real traffic through a full dwell (so the
// queue ramp of the first period after restart never pollutes the
// measurement), and when it re-qualifies to park, the fresh
// calibration is compared against the aggregate's prediction.
func (m *mesoState) sentinel(now time.Duration) {
	if m.pool.ParkedCount() == 0 {
		return
	}
	n := len(m.lanes)
	for k := 0; k < n; k++ {
		i := m.cursor
		m.cursor = (m.cursor + 1) % n
		if m.lanes[i].phase == mesoParked {
			pred := m.pool.Op(i).PowerW
			m.unpark(i, now, true)
			m.lanes[i].pendingPredW = pred
			return
		}
	}
}

// rehydrateAll returns every lane to mechanistic simulation, called
// just before a budget step re-plans the shard. Comparisons pending
// across the step are dropped: the operating point legitimately
// changes with the plan.
func (m *mesoState) rehydrateAll() {
	if m.done {
		return
	}
	s := m.s
	now := s.eng.Now()
	for i := range m.lanes {
		ml := &m.lanes[i]
		switch ml.phase {
		case mesoParked:
			m.unpark(i, now, true)
		case mesoDraining, mesoIdling:
			// Arrivals were stopped at drain; an idling lane's governors
			// were stopped at quiesce. Resume both and start the dwell
			// over under the new plan.
			if ml.phase == mesoIdling {
				for _, g := range m.laneGovs(i) {
					if g != nil {
						g.Start()
					}
				}
			}
			if err := s.startLaneArrivals(i); err != nil {
				panic(fmt.Sprintf("serve: meso rehydration of lane %d: %v", i, err))
			}
			ml.phase = mesoHydrated
			ml.dwell = 0
			ml.prevE, ml.prevT = m.laneEnergy(i), now
			m.snapshot(i, ml)
		}
		ml.pendingPredW = -1
	}
}

// settle closes the tier at the horizon: every parked lane's span is
// settled through the full horizon without restarting serving, and the
// drift verdict lands in the shard result.
func (m *mesoState) settle() {
	s := m.s
	now := s.eng.Now()
	for i := range m.lanes {
		if m.lanes[i].phase == mesoParked {
			m.unpark(i, now, false)
		}
	}
	if s.grp != nil {
		s.grp.settle(now)
	}
	m.done = true
	s.res.MesoWorstDriftFrac = m.drift.WorstFrac()
	s.res.MesoDriftOK = m.drift.Check(s.spec.MesoDriftTolFrac) == nil
}
