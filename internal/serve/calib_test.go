package serve

import (
	"math"
	"testing"
	"time"

	"wattio/internal/calib"
	"wattio/internal/catalog"
	"wattio/internal/detcheck"
	"wattio/internal/device"
	"wattio/internal/sim"
	"wattio/internal/workload"
)

// calibTestOptions keeps the calibration sweeps cheap under `go test`;
// FitClass memoizes, so every test in the package shares one sweep per
// class.
func calibTestOptions() calib.Options {
	return calib.Options{PointRuntime: 800 * time.Millisecond, Seed: 42, Folds: 5}
}

var calibProfiles = []string{"SSD1", "SSD2", "SSD3", "HDD"}

func fitAll(t *testing.T) map[string]*calib.Model {
	t.Helper()
	fitted := make(map[string]*calib.Model, len(calibProfiles))
	for _, p := range calibProfiles {
		f, err := calib.FitClass(p, calibTestOptions())
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		fitted[p] = f.Model
	}
	return fitted
}

// runClosed drives one device with a closed-loop job — after a warmup
// pass matching the calibration methodology, so stateful devices (the
// HDD's write-back cache) are measured in steady state — and returns
// the energy of the measured window.
func runClosed(t *testing.T, dev device.Device, eng *sim.Engine, job workload.Job, seed uint64) float64 {
	t.Helper()
	warm := job
	warm.Runtime = 600 * time.Millisecond
	workload.Run(eng, dev, warm, sim.NewRNG(seed).Stream("warm"))
	e0 := dev.EnergyJ()
	workload.Run(eng, dev, job, sim.NewRNG(seed).Stream("wl"))
	return dev.EnergyJ() - e0
}

// TestFittedDifferentialDevices is the per-device half of the
// differential gate: the same closed-loop job, run against the
// mechanistic simulator and against the fitted model of each class and
// power state, must agree on total energy within the calibration MAPE
// gate.
func TestFittedDifferentialDevices(t *testing.T) {
	job := workload.Job{
		Pattern: workload.Rand,
		BS:      256 << 10,
		Depth:   64,
		Runtime: 400 * time.Millisecond,
	}
	var apes []float64
	for _, class := range calibProfiles {
		f, err := calib.FitClass(class, calibTestOptions())
		if err != nil {
			t.Fatal(err)
		}
		for ps := range f.Model.States {
			for _, op := range []device.Op{device.OpRead, device.OpWrite} {
				job.Op = op

				meng := sim.NewEngine()
				mdev, ok := catalog.ByName(class, meng, sim.NewRNG(9).Stream("dev"))
				if !ok {
					t.Fatalf("unknown class %s", class)
				}
				if ps != 0 {
					if err := mdev.SetPowerState(ps); err != nil {
						t.Fatal(err)
					}
				}
				mechJ := runClosed(t, mdev, meng, job, 77)

				feng := sim.NewEngine()
				fdev, err := calib.NewDevice(feng, f.Model, "fit0")
				if err != nil {
					t.Fatal(err)
				}
				if ps != 0 {
					if err := fdev.SetPowerState(ps); err != nil {
						t.Fatal(err)
					}
				}
				fitJ := runClosed(t, fdev, feng, job, 77)

				ape := math.Abs(fitJ-mechJ) / mechJ
				apes = append(apes, ape)
				t.Logf("%s ps%d %v: mech %.3f J, fitted %.3f J, err %.1f%%",
					class, ps, op, mechJ, fitJ, 100*ape)
			}
		}
	}
	var sum float64
	for _, a := range apes {
		sum += a
	}
	if mape := sum / float64(len(apes)); mape > calib.GateMAPE {
		t.Errorf("per-device differential MAPE %.3f exceeds gate %.2f", mape, calib.GateMAPE)
	}
}

// calibFleetSpec is the canonical mixed fleet the fitted/mechanistic
// differential runs on: every calibrated class, never-binding budget.
func calibFleetSpec() Spec {
	return Spec{
		Profiles:  calibProfiles,
		Size:      16,
		RateIOPS:  3000,
		Horizon:   time.Second,
		Seed:      42,
		FaultSeed: 1,
	}
}

// TestFittedFleetDifferential is the fleet half of the differential
// gate: a serving run with every profile swapped to its fitted model
// must reproduce the mechanistic fleet's average power within the MAPE
// gate, while serving comparable traffic.
func TestFittedFleetDifferential(t *testing.T) {
	mech, err := Run(calibFleetSpec())
	if err != nil {
		t.Fatal(err)
	}
	spec := calibFleetSpec()
	spec.Fitted = fitAll(t)
	fitted, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	powErr := math.Abs(fitted.AvgPowerW-mech.AvgPowerW) / mech.AvgPowerW
	t.Logf("fleet avg power: mech %.2f W, fitted %.2f W, err %.2f%%",
		mech.AvgPowerW, fitted.AvgPowerW, 100*powErr)
	if powErr > calib.GateMAPE {
		t.Errorf("fleet power disagreement %.3f exceeds gate %.2f", powErr, calib.GateMAPE)
	}
	tputErr := math.Abs(fitted.ThroughputMBps-mech.ThroughputMBps) / mech.ThroughputMBps
	t.Logf("fleet throughput: mech %.1f MB/s, fitted %.1f MB/s, err %.2f%%",
		mech.ThroughputMBps, fitted.ThroughputMBps, 100*tputErr)
	if tputErr > 0.10 {
		t.Errorf("fleet throughput disagreement %.3f exceeds 0.10", tputErr)
	}
	if fitted.Completed == 0 {
		t.Error("fitted fleet completed no IO")
	}
}

// TestFittedFleetDeterministic extends the determinism contract to
// fitted fleets: the merged report is bit-identical across repeats and
// GOMAXPROCS settings.
func TestFittedFleetDeterministic(t *testing.T) {
	fitted := fitAll(t)
	produce := func() (*Report, error) {
		spec := calibFleetSpec()
		spec.Fitted = fitted
		return Run(spec)
	}
	detcheck.Assert(t, produce, detcheck.Config[*Report]{
		Procs: []int{1, 4},
		Diff: func(t testing.TB, a, b *Report) {
			t.Logf("reference: %+v", a)
			t.Logf("divergent: %+v", b)
		},
	})
}

// TestFittedSpecValidation pins the spec-level rejection paths.
func TestFittedSpecValidation(t *testing.T) {
	spec := calibFleetSpec()
	spec.Fitted = map[string]*calib.Model{"SSD9": {}}
	if _, err := Run(spec); err == nil {
		t.Error("fitted model for unknown profile accepted")
	}
	spec = calibFleetSpec()
	spec.Fitted = map[string]*calib.Model{"SSD2": nil}
	if _, err := Run(spec); err == nil {
		t.Error("nil fitted model accepted")
	}
	spec = calibFleetSpec()
	spec.Fitted = map[string]*calib.Model{"SSD2": {Class: "SSD2"}}
	if _, err := Run(spec); err == nil {
		t.Error("invalid fitted model accepted")
	}
}

// TestFittedWithGovernorsAndBudget runs both fleets under a binding
// budget: governors and the budget controller drive fitted devices
// through the same PowerStates/SetPowerState surface as mechanistic
// ones, and the two fleets must respond alike — same tracking verdict,
// average power still within the differential gate.
func TestFittedWithGovernorsAndBudget(t *testing.T) {
	budget := []BudgetStep{{At: 0, FleetW: 70}}
	mspec := calibFleetSpec()
	mspec.Budget = budget
	mech, err := Run(mspec)
	if err != nil {
		t.Fatal(err)
	}
	fspec := calibFleetSpec()
	fspec.Budget = budget
	fspec.Fitted = fitAll(t)
	fitted, err := Run(fspec)
	if err != nil {
		t.Fatal(err)
	}
	if fitted.Completed == 0 {
		t.Error("budgeted fitted fleet completed no IO")
	}
	if fitted.TrackOK != mech.TrackOK {
		t.Errorf("tracking verdict diverged: fitted %v, mech %v", fitted.TrackOK, mech.TrackOK)
	}
	powErr := math.Abs(fitted.AvgPowerW-mech.AvgPowerW) / mech.AvgPowerW
	t.Logf("budgeted fleets: mech %.2f W (steps %d), fitted %.2f W (steps %d), err %.2f%%",
		mech.AvgPowerW, mech.GovSteps, fitted.AvgPowerW, fitted.GovSteps, 100*powErr)
	if powErr > calib.GateMAPE {
		t.Errorf("budgeted fleet power disagreement %.3f exceeds gate %.2f", powErr, calib.GateMAPE)
	}
}
