package serve

import (
	"fmt"
	"sort"

	"wattio/internal/core"
)

// Planning models: compact per-profile power-throughput models the
// serving engine's budget controller plans over, one sample per
// host-selectable power state. The numbers are the calibrated device
// models' measured saturated behavior under the engine's default
// workload (random write, 256 KiB, qd 64, 3 s window) — the same
// operating points a production deployment would load from a powerfleet
// measurement campaign. Planning from a compact model while the full device model
// serves the IO is exactly the paper's split between the modeling study
// (§3.3) and the system that consumes it (§4); the gap between the two
// is what the per-device governors absorb.
type planPoint struct {
	ps     int
	powerW float64
	tputMB float64
}

var planningTable = map[string][]planPoint{
	"SSD1": {{0, 7.9, 3320}, {1, 7.1, 2680}, {2, 5.9, 1910}},
	"SSD2": {{0, 14.4, 3100}, {1, 11.7, 2230}, {2, 9.7, 1590}},
	"SSD3": {{0, 3.1, 500}},
	"HDD":  {{0, 4.3, 80}},
	"EVO":  {{0, 1.9, 350}},
	"C960": {{0, 4.2, 1580}, {1, 4.1, 1580}, {2, 3.8, 1450}},
}

// planningModel builds the planning model for one fleet device
// instance. The sample Device field carries the instance name, not the
// profile, because fleets and budget controllers key on it.
func planningModel(profile, instance string) (*core.Model, error) {
	points, ok := planningTable[profile]
	if !ok {
		return nil, fmt.Errorf("serve: no planning model for profile %q", profile)
	}
	samples := make([]core.Sample, len(points))
	for i, p := range points {
		samples[i] = core.Sample{
			Config: core.Config{
				Device:     instance,
				PowerState: p.ps,
				Random:     true,
				Write:      true,
				ChunkBytes: 256 << 10,
				Depth:      64,
			},
			PowerW:         p.powerW,
			ThroughputMBps: p.tputMB,
		}
	}
	return core.NewModel(instance, samples)
}

// KnownProfiles lists the profiles the planning table covers, sorted —
// the set a fleet spec (or scenario file) may draw devices from.
func KnownProfiles() []string {
	out := make([]string, 0, len(planningTable))
	for p := range planningTable {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// profileMaxW returns the highest planning-model power of a profile —
// the per-device contribution to the "never binds" default budget.
func profileMaxW(profile string) float64 {
	var maxW float64
	for _, p := range planningTable[profile] {
		if p.powerW > maxW {
			maxW = p.powerW
		}
	}
	return maxW
}

// profileMinW returns the lowest planning-model power of a profile —
// the per-device floor below which no budget is feasible.
func profileMinW(profile string) float64 {
	minW := -1.0
	for _, p := range planningTable[profile] {
		if minW < 0 || p.powerW < minW {
			minW = p.powerW
		}
	}
	return minW
}
