package serve

import "sort"

// Group-mode planning: when a shard represents most of its lanes as
// virtual cohort members (Spec.MesoGroupMin), per-device budget control
// is replaced by bulk allocation over per-profile concave hulls. Members
// of a cohort are interchangeable, so a plan is just a count per
// operating level — the controller's work is O(#cohorts × #levels), not
// O(#lanes), and a budget step moves whole buckets at once.

// hullLevel is one operating level on a profile's concave hull: the
// planning power state and the per-device planning draw/throughput.
type hullLevel struct {
	level  int // planning-table power state
	powerW float64
	tputMB float64
}

// profileHulls maps each profile to the upper concave envelope of its
// planning points, sorted by increasing power. Greedy marginal-
// efficiency allocation is optimal on a concave frontier, so levels
// strictly inside the envelope (better served by mixing its neighbors
// across the cohort) are dropped. Built once at init from the static
// planning table.
var profileHulls = func() map[string][]hullLevel {
	out := make(map[string][]hullLevel, len(planningTable))
	for p, points := range planningTable {
		out[p] = concaveHull(points)
	}
	return out
}()

// concaveHull returns the upper concave envelope of a profile's
// planning points: Pareto-filter (drop any point with no throughput
// gain over a cheaper one), then drop points under the chord of their
// neighbors so marginal efficiency decreases along the hull.
func concaveHull(points []planPoint) []hullLevel {
	sorted := make([]planPoint, len(points))
	copy(sorted, points)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].powerW != sorted[j].powerW {
			return sorted[i].powerW < sorted[j].powerW
		}
		return sorted[i].tputMB > sorted[j].tputMB
	})
	var hull []hullLevel
	for _, pt := range sorted {
		if len(hull) > 0 && pt.tputMB <= hull[len(hull)-1].tputMB {
			continue // dominated: no throughput for the extra power
		}
		h := hullLevel{level: pt.ps, powerW: pt.powerW, tputMB: pt.tputMB}
		for len(hull) >= 2 {
			a, b := hull[len(hull)-2], hull[len(hull)-1]
			// b is under the a→h chord when its marginal efficiency
			// from a is no better than h's.
			if (b.tputMB-a.tputMB)*(h.powerW-a.powerW) <= (h.tputMB-a.tputMB)*(b.powerW-a.powerW) {
				hull = hull[:len(hull)-1]
				continue
			}
			break
		}
		hull = append(hull, h)
	}
	return hull
}

// cohortDemand is one cohort's input to the bulk allocator.
type cohortDemand struct {
	hull  []hullLevel
	count int
	// laneScale converts a hull level's per-device draw to a lane draw
	// (Replicas: spares hold planned states and draw power too, exactly
	// as per-device control plans them).
	laneScale float64
}

// planShares allocates lane counts to hull levels across cohorts under
// a shard power slice: every lane starts at its cohort's lowest-power
// level, then the remaining budget buys upgrades rung by rung in global
// marginal-efficiency order. Returns one count-per-hull-level slice per
// cohort, or ok=false when even the all-minimum allocation exceeds the
// slice. Deterministic: ties in efficiency break by cohort then rung
// index. O(Σ levels · log) — independent of lane count.
func planShares(cohorts []cohortDemand, sliceW float64) (dist [][]int, ok bool) {
	dist = make([][]int, len(cohorts))
	base := 0.0
	for ci, c := range cohorts {
		dist[ci] = make([]int, len(c.hull))
		dist[ci][0] = c.count
		base += c.hull[0].powerW * c.laneScale * float64(c.count)
	}
	if base > sliceW {
		return nil, false
	}
	rem := sliceW - base

	type rung struct {
		ci, j  int
		dW, dT float64 // per-lane upgrade cost and gain, hull[j] → hull[j+1]
		eff    float64
	}
	var rungs []rung
	for ci, c := range cohorts {
		for j := 0; j+1 < len(c.hull); j++ {
			dW := (c.hull[j+1].powerW - c.hull[j].powerW) * c.laneScale
			dT := (c.hull[j+1].tputMB - c.hull[j].tputMB) * float64(c.laneScale)
			rungs = append(rungs, rung{ci: ci, j: j, dW: dW, dT: dT, eff: dT / dW})
		}
	}
	sort.Slice(rungs, func(i, j int) bool {
		if rungs[i].eff != rungs[j].eff {
			return rungs[i].eff > rungs[j].eff
		}
		if rungs[i].ci != rungs[j].ci {
			return rungs[i].ci < rungs[j].ci
		}
		return rungs[i].j < rungs[j].j
	})
	for _, r := range rungs {
		avail := dist[r.ci][r.j]
		if avail == 0 || rem < r.dW {
			continue
		}
		n := int(rem / r.dW)
		if n > avail {
			n = avail
		}
		dist[r.ci][r.j] -= n
		dist[r.ci][r.j+1] += n
		rem -= float64(n) * r.dW
	}
	return dist, true
}
