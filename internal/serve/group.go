package serve

import (
	"fmt"
	"time"

	"wattio/internal/device"
	"wattio/internal/fault"
	"wattio/internal/meso"
	"wattio/internal/sim"
	"wattio/internal/telemetry/invariant"
)

// Group-level parking (Spec.MesoGroupMin): a shard's lanes of one
// profile form a cohort of interchangeable members. Big cohorts keep
// only a few resident probe lanes (plus any fault-injected members) in
// mechanistic simulation; the rest are virtual — no devices, no
// governors, no arrival streams — accounted by meso.GroupPool buckets
// keyed (cohort, power state). Planning happens on shared per-profile
// concave hulls (groupplan.go) in O(#buckets); probes donate measured
// operating points to their bucket when they park, and the energy the
// virtual population accrued before its first calibration is backfilled
// retroactively into the shard's interval accounting — always from a
// measurement, with the planning table only as a settle-time fallback
// for buckets no probe ever reached.
//
// Everything runs on the shard's single goroutine and virtual clock, so
// the determinism contract is untouched: same spec, same report, at any
// GOMAXPROCS.

// preFault is one pre-drawn fault outcome: the windows and the
// instance's retained fault stream (the inject sub-stream must derive
// from the same position the draw left it at).
type preFault struct {
	wins []fault.Window
	ds   *sim.RNG
}

// warmBatch is one churn event's warming virtual members of a cohort:
// admitted at `at`, serving from warmAt, n members still warming.
// Removals of warming members decrement the newest non-empty batch —
// scale-in pops the highest group numbers, which the newest batch owns.
type warmBatch struct {
	at, warmAt time.Duration
	n          int
}

// groupCohort is one profile's member set within a shard.
type groupCohort struct {
	pi      int // profile index — the global cohort id
	profile string
	count   int // members in this shard, residents included
	hull    []hullLevel

	// resOrder lists resident lane indices, probes first (they can park
	// and calibrate) then barred members (faulted); resLevel is each
	// resident's current hull index. probes is the probe prefix length.
	resOrder []int
	resLevel []int
	probes   int

	// warming counts virtual members admitted by churn whose warm-up
	// has not completed: they sit in the cohort's idle bucket (counted
	// in `count`, drawing power, serving nothing) and are excluded from
	// the serving distribution until their batch's warm event fires.
	warming     int
	warmBatches []warmBatch
}

type groupState struct {
	s    *shard
	rng  *sim.RNG
	pool *meso.GroupPool

	// buildGroups is the ascending list of resident replica-group
	// numbers runShard materializes; pre holds pre-drawn faults by
	// device index.
	buildGroups []int
	pre         map[int]*preFault

	cohorts    []groupCohort // indexed by profile index
	laneCohort []int         // lane -> profile index
	laneResIdx []int         // lane -> position in its cohort's resOrder
	planW      []float64     // per device: planned draw (governor target)
	applied    bool
}

// planGroups decides residency for every member of the shard's slice
// and pre-draws faults, before any device exists. Residents are the
// first MesoProbes non-faulted members of each virtualized cohort plus
// every faulted member; cohorts smaller than MesoGroupMin stay fully
// resident. Fault draws run for ALL members in ascending instance
// order, so the draw each member receives is independent of how many
// end up materialized.
func planGroups(s *shard, rng, frng *sim.RNG, rg shardRange, scripted map[string][]fault.Window) *groupState {
	sp := s.spec
	g2 := &groupState{s: s, rng: rng, pre: map[int]*preFault{}}
	g2.pool = meso.NewGroupPool(sp.RateIOPS*float64(sp.Active), sp.ChunkBytes)

	P := len(sp.Profiles)
	faultedGroup := make(map[int]bool)
	if sp.FaultFrac > 0 || len(scripted) > 0 {
		for g := rg.g0; g < rg.g1; g++ {
			profile := sp.Profiles[g%P]
			for rep := 0; rep < sp.Replicas; rep++ {
				gi := g*sp.Replicas + rep
				name := InstanceName(profile, gi)
				ds := frng.Stream(name)
				if wins, faulted := drawFault(sp, ds, scripted, name); faulted {
					g2.pre[gi] = &preFault{wins: wins, ds: ds}
					faultedGroup[g] = true
				}
			}
		}
	}

	g2.cohorts = make([]groupCohort, P)
	resident := make(map[int]bool)
	for pi := 0; pi < P; pi++ {
		c := &g2.cohorts[pi]
		c.pi, c.profile, c.hull = pi, sp.Profiles[pi], profileHulls[sp.Profiles[pi]]
		// Members of cohort pi are the g ≡ pi (mod P) in [g0, g1) —
		// membership is arithmetic, never a per-member list.
		first := rg.g0 + ((pi-rg.g0%P)%P+P)%P
		for g := first; g < rg.g1; g += P {
			c.count++
		}
		if c.count == 0 {
			continue
		}
		full := c.count < sp.MesoGroupMin
		probes := 0
		for g := first; g < rg.g1; g += P {
			switch {
			case full, faultedGroup[g]:
				resident[g] = true
			case probes < sp.MesoProbes:
				resident[g] = true
				probes++
			}
		}
	}
	for g := rg.g0; g < rg.g1; g++ {
		if resident[g] {
			g2.buildGroups = append(g2.buildGroups, g)
		}
	}
	return g2
}

// materialize builds one resident member's device, applying its
// pre-drawn fault windows (returned for the caller's barred-until
// bookkeeping; empty when unfaulted).
func (g *groupState) materialize(profile string, gi int) (device.Device, string, []fault.Window, error) {
	name := InstanceName(profile, gi)
	d, err := baseDevice(g.s.spec, g.s.eng, g.rng, profile, name)
	if err != nil {
		return nil, "", nil, err
	}
	pf, ok := g.pre[gi]
	if !ok {
		return d, name, nil, nil
	}
	fd, err := fault.New(d, g.s.eng, pf.ds.Stream("inject"), fault.Profile{Windows: pf.wins})
	if err != nil {
		return nil, "", nil, fmt.Errorf("fault windows for %s: %w", name, err)
	}
	return fd, name, pf.wins, nil
}

// finishBuild runs after the resident lanes exist: map lanes to cohort
// slots (probes ahead of barred members, each in build order) and apply
// the initial plan.
func (g *groupState) finishBuild() {
	s := g.s
	P := len(s.spec.Profiles)
	g.laneCohort = make([]int, len(s.lanes))
	g.laneResIdx = make([]int, len(s.lanes))
	g.planW = append([]float64(nil), s.maxW...)
	barred := make([][]int, len(g.cohorts))
	for li, gnum := range s.laneGroup {
		pi := gnum % P
		g.laneCohort[li] = pi
		if s.laneFaulted[li] {
			barred[pi] = append(barred[pi], li)
		} else {
			g.cohorts[pi].resOrder = append(g.cohorts[pi].resOrder, li)
		}
	}
	virtual := 0
	for pi := range g.cohorts {
		c := &g.cohorts[pi]
		c.probes = len(c.resOrder)
		c.resOrder = append(c.resOrder, barred[pi]...)
		c.resLevel = make([]int, len(c.resOrder))
		for k, li := range c.resOrder {
			g.laneResIdx[li] = k
		}
		virtual += c.count - len(c.resOrder)
	}
	s.res.MesoGroupLanes = virtual
	g.apply(s.spec.Budget[0].FleetW)
}

// warmKey is the cohort's idle-bucket key: state -1 is outside every
// hull level, so the bucket never collides with a serving one.
func (g *groupState) warmKey(c *groupCohort) meso.GroupKey {
	return meso.GroupKey{Cohort: c.pi, State: -1}
}

// warmOpW is the per-lane draw imposed on warming members: the hull's
// top level times the replica count — devices power on at full draw,
// exactly as materialized lanes enter the run.
func (g *groupState) warmOpW(c *groupCohort) float64 {
	return c.hull[len(c.hull)-1].powerW * float64(g.s.spec.Replicas)
}

// laneGone reports whether a resident lane has left the serving set
// (draining or retired) and must be skipped by the plan.
func (g *groupState) laneGone(li int) bool {
	return g.s.lc != nil && (g.s.lc[li].removing || g.s.lc[li].dead)
}

// apply is the group-mode re-plan: bulk-allocate every cohort member to
// a hull level under the shard's budget slice, retarget resident
// devices and governors, and move bucket counts — O(#buckets +
// #residents), independent of the virtual population.
func (g *groupState) apply(fleetW float64) {
	s := g.s
	sp := s.spec
	now := s.eng.Now()
	slice := fleetW * float64(s.liveDevs) / float64(s.fleetLive)

	// Warming members hold budget share but cannot be planned — their
	// imposed power-on draw comes off the top of the slice before the
	// serving population divides the rest.
	var warmW float64
	for pi := range g.cohorts {
		c := &g.cohorts[pi]
		if c.warming > 0 {
			warmW += g.warmOpW(c) * float64(c.warming)
		}
	}
	if warmW > 0 {
		if slice -= warmW; slice < 0 {
			slice = 0
		}
	}

	demands := make([]cohortDemand, len(g.cohorts))
	for pi := range g.cohorts {
		c := &g.cohorts[pi]
		demands[pi] = cohortDemand{hull: c.hull, count: c.count - c.warming, laneScale: float64(sp.Replicas)}
	}
	dist, ok := planShares(demands, slice)
	if !ok {
		// Infeasible slice: keep the previous assignment (first apply:
		// everything at the top level, matching the devices' power-on
		// states) rather than thrash.
		s.res.Infeasible++
		if g.applied {
			return
		}
		dist = make([][]int, len(g.cohorts))
		for pi := range g.cohorts {
			c := &g.cohorts[pi]
			dist[pi] = make([]int, len(c.hull))
			dist[pi][len(c.hull)-1] = c.count - c.warming
		}
	} else {
		s.res.Replans++
	}

	var pos []int
	for pi := range g.cohorts {
		c := &g.cohorts[pi]
		if c.count == 0 {
			continue
		}
		s.res.MesoGroupScans += len(c.hull)
		rem := append([]int(nil), dist[pi]...)

		// Residents take their levels from the shared distribution:
		// first a coverage pass placing one probe on each populated
		// level (so every live bucket has a calibration source), then
		// the rest onto whichever level has the most members left.
		// Residents retired by churn hold no level and are skipped.
		pos = pos[:0]
		probes := 0
		for k := range c.resOrder {
			if g.laneGone(c.resOrder[k]) {
				continue
			}
			if k < c.probes {
				probes++
			}
			pos = append(pos, k)
		}
		assigned := 0
		for j := 0; j < len(rem) && assigned < probes; j++ {
			if rem[j] > 0 {
				g.assignResident(c, pos[assigned], j)
				rem[j]--
				assigned++
			}
		}
		for ; assigned < len(pos); assigned++ {
			best := -1
			for j := range rem {
				if rem[j] > 0 && (best < 0 || rem[j] > rem[best]) {
					best = j
				}
			}
			g.assignResident(c, pos[assigned], best)
			rem[best]--
		}

		// Whatever remains is the virtual population per level.
		for j := range rem {
			key := meso.GroupKey{Cohort: c.pi, State: c.hull[j].level}
			if rem[j] > 0 || g.pool.Count(key) > 0 {
				g.pool.SetCount(key, rem[j], now)
			}
		}
	}

	for i, gv := range s.govs {
		if gv != nil {
			gv.SetBudget(s.planBudget(i))
		}
	}
	g.applied = true
}

// assignResident points resident k of cohort c at hull level j: its
// devices move to the level's power state and their governor targets
// follow. A device refusing the command (an injected power-fault) keeps
// its state and is counted as a compensation, like the per-device
// controller's stuck handling.
func (g *groupState) assignResident(c *groupCohort, k, j int) {
	s := g.s
	c.resLevel[k] = j
	li := c.resOrder[k]
	r := s.spec.Replicas
	for di := li * r; di < (li+1)*r; di++ {
		g.planW[di] = c.hull[j].powerW
		d := s.devs[di]
		if len(d.PowerStates()) == 0 {
			continue
		}
		if err := d.SetPowerState(c.hull[j].level); err != nil {
			s.res.Compensations++
		}
	}
}

// addVirtual admits one churned replica group as a virtual cohort
// member: no devices, no lane — the member enters the cohort's idle
// (warm) bucket at the imposed power-on draw and joins the serving
// distribution when its warm batch completes. The caller re-plans
// afterward.
func (g *groupState) addVirtual(ad laneAdd, at, warmAt time.Duration, now time.Duration) {
	c := &g.cohorts[ad.pi]
	c.count++
	c.warming++
	if n := len(c.warmBatches); n > 0 && c.warmBatches[n-1].warmAt == warmAt && c.warmBatches[n-1].at == at {
		c.warmBatches[n-1].n++
	} else {
		c.warmBatches = append(c.warmBatches, warmBatch{at: at, warmAt: warmAt, n: 1})
	}
	g.pool.SetIdleCount(g.warmKey(c), c.warming, g.warmOpW(c), now)
	g.s.res.MesoGroupLanes++
}

// removeMember retires one cohort member at a scale-in epoch. A
// materialized member (probe or faulted resident, or a plain-built
// group) drains mechanistically; a virtual member leaves its bucket at
// the caller's re-plan — its analytic queue is empty by construction,
// so its drain recovery is instantaneous. A member removed while still
// warming leaves the idle bucket instead and decrements the newest
// non-empty warm batch (scale-in pops the newest group numbers).
func (g *groupState) removeMember(rm churnRemove, now time.Duration) {
	c := &g.cohorts[rm.pi]
	c.count--
	if _, resident := g.s.groupLane[rm.g]; resident {
		g.s.beginRemove(rm.g, now)
		return
	}
	if rm.warming {
		c.warming--
		for k := len(c.warmBatches) - 1; k >= 0; k-- {
			if c.warmBatches[k].n > 0 {
				c.warmBatches[k].n--
				break
			}
		}
		g.pool.SetIdleCount(g.warmKey(c), c.warming, g.warmOpW(c), now)
	}
	g.s.res.DrainLats = append(g.s.res.DrainLats, 0)
}

// warmBatchDone completes the warm batch of cohort pi admitted at
// `at`: its surviving members leave the idle bucket for the serving
// distribution (the caller re-plans) and each reports its modeled
// warm-up as the recovery latency.
func (g *groupState) warmBatchDone(pi int, at, warmAt time.Duration, now time.Duration) {
	c := &g.cohorts[pi]
	for k := range c.warmBatches {
		b := c.warmBatches[k]
		if b.at != at || b.warmAt != warmAt {
			continue
		}
		c.warmBatches = append(c.warmBatches[:k], c.warmBatches[k+1:]...)
		if b.n > 0 {
			c.warming -= b.n
			g.pool.SetIdleCount(g.warmKey(c), c.warming, g.warmOpW(c), now)
			for j := 0; j < b.n; j++ {
				g.s.res.WarmupLats = append(g.s.res.WarmupLats, warmAt-at)
			}
		}
		return
	}
}

// probeParked runs when a resident probe lane parks: its dwell-window
// measured draw calibrates the bucket its cohort-mates occupy at the
// same level. A recalibration of an already-measured bucket feeds the
// drift probe — the same gate sentinel re-measurements use — before
// folding into the bucket's running mean; a first calibration converts
// the bucket's pending spans into interval backfill.
func (g *groupState) probeParked(lane int, watts float64, now time.Duration, drift *invariant.DriftProbe) {
	c := &g.cohorts[g.laneCohort[lane]]
	j := c.resLevel[g.laneResIdx[lane]]
	key := meso.GroupKey{Cohort: c.pi, State: c.hull[j].level}
	if !g.pool.Has(key) {
		return // no virtual members ever held this level
	}
	if g.pool.Calibrated(key) {
		drift.Observe(g.pool.Op(key), watts)
	}
	g.amendBackfill(g.pool.Calibrate(key, watts, now))
}

// amendBackfill distributes backfill spans into the shard's interval
// accounting: recorded intervals are amended in place (merge computes
// tracking from the amended values), and the portion falling inside the
// in-progress interval rides ivCarry into its upcoming record. Virtual
// energy thereby lands in the exact control periods it was consumed in.
func (g *groupState) amendBackfill(spans []meso.BackfillSpan) {
	s := g.s
	cp := s.spec.ControlPeriod
	for _, sp := range spans {
		if sp.To <= sp.From {
			continue
		}
		w := sp.Joules / (sp.To - sp.From).Seconds()
		k := int(sp.From / cp)
		for t := sp.From; t < sp.To; k++ {
			end := time.Duration(k+1) * cp
			if end > sp.To {
				end = sp.To
			}
			j := w * (end - t).Seconds()
			if k < s.ivIdx && k < len(s.res.IntervalEnergyJ) {
				s.res.IntervalEnergyJ[k] += j
			} else {
				s.ivCarry += j
			}
			s.res.MesoGroupJ += j
			t = end
		}
	}
}

// settle closes the group tier at the horizon: buckets no probe ever
// calibrated fall back to their planning-table draw (backfilled like
// any calibration), virtual IO settles into the serving counters, and
// the bucket energy ledger lands in the report.
func (g *groupState) settle(now time.Duration) {
	s := g.s
	for pi := range g.cohorts {
		c := &g.cohorts[pi]
		for j := range c.hull {
			key := meso.GroupKey{Cohort: c.pi, State: c.hull[j].level}
			if !g.pool.Has(key) || g.pool.Calibrated(key) {
				continue
			}
			s.res.MesoGroupScans++
			g.amendBackfill(g.pool.Calibrate(key, c.hull[j].powerW*float64(s.spec.Replicas), now))
		}
	}
	s.res.MesoGroupJ += g.pool.EnergyJ(now)
	ios, bytes := g.pool.SettleIO(now)
	s.res.Offered += ios
	s.res.Admitted += ios
	s.res.Completed += ios
	s.res.BytesCompleted += bytes
	s.res.MesoGroupBuckets = g.pool.Buckets()
}
