package serve

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"wattio/internal/calib"
	"wattio/internal/catalog"
	"wattio/internal/device"
	"wattio/internal/fault"
	"wattio/internal/sim"
)

// InstanceName is the canonical name of fleet device i of a profile —
// the key planning models, governors, and fault scripts address it by.
func InstanceName(profile string, i int) string {
	return fmt.Sprintf("%s#%05d", profile, i)
}

// ParseInstanceName is InstanceName's inverse: it splits a fleet
// instance name into its profile and device index, rejecting anything
// that InstanceName could not have produced. Validation layers use it
// to check fault-script targets in O(1) instead of enumerating every
// instance name of the fleet.
func ParseInstanceName(name string) (profile string, i int, err error) {
	profile, idx, ok := strings.Cut(name, "#")
	if !ok || profile == "" || len(idx) < 5 {
		return "", 0, fmt.Errorf("instance name %q is not profile#index (e.g. %q)", name, InstanceName("SSD2", 0))
	}
	i, err = strconv.Atoi(idx)
	if err != nil || i < 0 || InstanceName(profile, i) != name {
		return "", 0, fmt.Errorf("instance name %q is not profile#index (e.g. %q)", name, InstanceName("SSD2", 0))
	}
	return profile, i, nil
}

// profileOf is the catalog profile of fleet device i in a normalized
// spec: replica groups round-robin over the profile mix.
func (s *Spec) profileOf(i int) string {
	return s.Profiles[(i/s.Replicas)%len(s.Profiles)]
}

// scriptedFaults indexes a spec's fault scripts by instance name.
func scriptedFaults(sp *Spec) map[string][]fault.Window {
	if len(sp.Faults) == 0 {
		return nil
	}
	m := make(map[string][]fault.Window, len(sp.Faults))
	for _, df := range sp.Faults {
		m[df.Device] = append(m[df.Device], df.Windows...)
	}
	return m
}

// materializeDevice builds fleet device gi of a profile on a shard's
// engine and applies fault injection: the spec's scripted plan when it
// names this instance, else the FaultFrac probabilistic draw. Both the
// device stream and the fault stream are labeled by the instance name,
// and a scripted instance skips the probabilistic draw entirely — the
// draws of every other instance come from their own streams, so adding
// a script to one device never perturbs another's faults or workload.
// The returned windows are the fault outcome (empty when unfaulted);
// the caller uses their span to bound how long the lane stays barred
// from the analytic tier.
func materializeDevice(sp *Spec, eng *sim.Engine, rng, frng *sim.RNG,
	scripted map[string][]fault.Window, profile string, gi int) (device.Device, string, []fault.Window, error) {
	name := InstanceName(profile, gi)
	d, err := baseDevice(sp, eng, rng, profile, name)
	if err != nil {
		return nil, "", nil, err
	}
	ds := frng.Stream(name)
	wins, faulted := drawFault(sp, ds, scripted, name)
	if !faulted {
		return d, name, nil, nil
	}
	fd, err := fault.New(d, eng, ds.Stream("inject"), fault.Profile{Windows: wins})
	if err != nil {
		return nil, "", nil, fmt.Errorf("fault windows for %s: %w", name, err)
	}
	return fd, name, wins, nil
}

// baseDevice builds the unwrapped device model of one fleet instance:
// a fitted surrogate when the spec maps the profile, else the catalog
// simulator on its own derived stream.
func baseDevice(sp *Spec, eng *sim.Engine, rng *sim.RNG, profile, name string) (device.Device, error) {
	if m := sp.Fitted[profile]; m != nil {
		fd, err := calib.NewDevice(eng, m, name)
		if err != nil {
			return nil, fmt.Errorf("fitted model for %s: %w", name, err)
		}
		return fd, nil
	}
	d, ok := catalog.NewNamed(profile, name, eng, rng.Stream(name))
	if !ok {
		return nil, fmt.Errorf("unknown profile %q", profile)
	}
	return d, nil
}

// drawFault resolves one instance's fault outcome from its dedicated
// stream ds: the scripted windows when the spec names the instance,
// else the FaultFrac probabilistic draw. Group mode runs this pass for
// every member — virtual ones included — before deciding which to
// materialize, consuming exactly the draws the instance owns; whether
// the member then becomes a device never perturbs another's faults.
func drawFault(sp *Spec, ds *sim.RNG, scripted map[string][]fault.Window, name string) ([]fault.Window, bool) {
	if wins := scripted[name]; len(wins) > 0 {
		return wins, true
	}
	if sp.FaultFrac > 0 && ds.Float64() < sp.FaultFrac {
		kind := fault.Dropout
		if ds.Float64() < 0.5 {
			kind = fault.PowerCmdFail
		}
		start := time.Duration(float64(sp.Horizon) * (0.2 + 0.4*ds.Float64()))
		dur := time.Duration(float64(sp.Horizon) * (0.1 + 0.15*ds.Float64()))
		return []fault.Window{{Kind: kind, Start: start, Dur: dur}}, true
	}
	return nil, false
}
