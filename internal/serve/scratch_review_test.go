package serve

import (
	"testing"
	"time"
)

// Scratch review test: a churned lane in plain-meso mode (no group
// parking) must not park while still warming.
func TestScratchReviewWarmingPark(t *testing.T) {
	sp := Spec{
		Profiles:        []string{"SSD2"},
		Size:            8,
		Shards:          1,
		Horizon:         3 * time.Second,
		Seed:            42,
		Meso:            true,
		CheckInvariants: true,
		Churn: []ChurnEvent{
			{At: 500 * time.Millisecond, Profile: "SSD2", Add: 2, Warmup: 800 * time.Millisecond},
			{At: 2 * time.Second, Profile: "SSD2", Remove: 2},
		},
	}
	rMeso, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	spOff := sp
	spOff.Meso = false
	rOff, err := Run(spOff)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("meso:  offered %d completed %d dehyd %d rehyd %d driftOK %v",
		rMeso.Offered, rMeso.Completed, rMeso.MesoDehydrations, rMeso.MesoRehydrations, rMeso.MesoDriftOK)
	t.Logf("plain: offered %d completed %d", rOff.Offered, rOff.Completed)
	t.Logf("warmup p50 %v max %v (meso) vs %v max %v (plain)", rMeso.WarmupP50, rMeso.WarmupMax, rOff.WarmupP50, rOff.WarmupMax)
}
