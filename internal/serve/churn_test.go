package serve

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"wattio/internal/detcheck"
	"wattio/internal/workload"
)

// churnSpec: a plain (no meso) mirrored fleet that scales out two
// replica groups mid-run and drains them back before the horizon.
func churnSpec() Spec {
	return Spec{
		Size:            8,
		Replicas:        2,
		Shards:          2,
		Horizon:         2 * time.Second,
		RateIOPS:        3000,
		Seed:            7,
		CheckInvariants: true,
		Churn: []ChurnEvent{
			{At: 500 * time.Millisecond, Profile: "SSD2", Add: 2, Warmup: 100 * time.Millisecond},
			{At: 1400 * time.Millisecond, Profile: "SSD2", Remove: 2},
		},
	}
}

func TestChurnSpecValidation(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"unknown cohort", func(sp *Spec) { sp.Churn[0].Profile = "HDD" }, "unknown cohort"},
		{"non-increasing", func(sp *Spec) { sp.Churn[1].At = sp.Churn[0].At }, "strictly increasing"},
		{"at zero", func(sp *Spec) { sp.Churn[0].At = 0 }, "outside (0, horizon)"},
		{"at horizon", func(sp *Spec) { sp.Churn[1].At = 2 * time.Second }, "outside (0, horizon)"},
		{"empty event", func(sp *Spec) { sp.Churn[0].Add = 0 }, "at least one group"},
		{"negative warmup", func(sp *Spec) { sp.Churn[0].Warmup = -time.Millisecond }, "negative warm-up"},
		{"warmup past horizon", func(sp *Spec) { sp.Churn[0].Warmup = 2 * time.Second }, "past the horizon"},
		{"cohort emptied", func(sp *Spec) { sp.Churn[1].Remove = 6 }, "at least one must remain"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			sp := churnSpec()
			tc.mut(&sp)
			_, err := Run(sp)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestRateSpecValidation(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name  string
		rates []workload.RateStep
		want  string
	}{
		{"late start", []workload.RateStep{{At: time.Millisecond, IOPS: 100}}, "must start at 0"},
		{"zero rate", []workload.RateStep{{At: 0, IOPS: 0}}, "non-positive rate"},
		{"non-increasing", []workload.RateStep{{At: 0, IOPS: 1}, {At: 0, IOPS: 2}}, "strictly increasing"},
		{"past horizon", []workload.RateStep{{At: 0, IOPS: 1}, {At: 3 * time.Second, IOPS: 2}}, "past the horizon"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			sp := churnSpec()
			sp.Churn = nil
			sp.Rates = tc.rates
			_, err := Run(sp)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// TestSingleStepRatesIdentity: a one-step rate schedule is the
// constant-rate run, field for field — the schedule machinery must not
// perturb a single RNG draw of the churn-off path.
func TestSingleStepRatesIdentity(t *testing.T) {
	t.Parallel()
	base := quickSpec()
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	sched := quickSpec()
	sched.Rates = []workload.RateStep{{At: 0, IOPS: 3000}} // serve's default rate
	stepped, err := Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, stepped) {
		t.Fatalf("single-step schedule diverges from constant rate:\nplain:   %+v\nstepped: %+v", plain, stepped)
	}
}

// TestChurnLifecycle: the plain-lane path — churned groups materialize,
// warm, serve, drain, and retire, with the recovery latencies and every
// ledger consistent.
func TestChurnLifecycle(t *testing.T) {
	t.Parallel()
	r, err := Run(churnSpec())
	if err != nil {
		t.Fatal(err)
	}
	if r.ChurnAdds != 2 || r.ChurnRemoves != 2 {
		t.Fatalf("churn counts: adds %d removes %d, want 2/2", r.ChurnAdds, r.ChurnRemoves)
	}
	// Warm-up recovery runs from the churn event to the lane's first
	// completion; arrivals only start after the 100ms warm-up.
	if r.WarmupP50 < 100*time.Millisecond || r.WarmupMax >= r.SimulatedDur {
		t.Fatalf("warm-up recovery %v..%v out of range", r.WarmupP50, r.WarmupMax)
	}
	if r.DrainMax >= r.SimulatedDur {
		t.Fatalf("drain recovery %v never completed", r.DrainMax)
	}
	if r.Offered != r.Admitted+r.Rejected {
		t.Fatalf("admission ledger: offered %d != admitted %d + rejected %d", r.Offered, r.Admitted, r.Rejected)
	}
	if r.Completed == 0 || r.Completed > r.Admitted {
		t.Fatalf("completion ledger: completed %d of admitted %d", r.Completed, r.Admitted)
	}
	if !r.CapOK || !r.TrackOK {
		t.Fatalf("probes failed: cap=%v track=%v", r.CapOK, r.TrackOK)
	}
}

// TestChurnOffReportClean: without churn events the lifecycle fields
// stay zero — the report shape of every existing run is untouched.
func TestChurnOffReportClean(t *testing.T) {
	t.Parallel()
	sp := churnSpec()
	sp.Churn = nil
	r, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if r.ChurnAdds != 0 || r.ChurnRemoves != 0 || r.WarmupMax != 0 || r.DrainMax != 0 {
		t.Fatalf("churn accounting on a churn-off run: %+v", r)
	}
}

// TestChurnMoreShardsThanNewGroups: churned groups land on shards
// round-robin, so a one-group add with many shards must still work.
func TestChurnMoreShardsThanNewGroups(t *testing.T) {
	t.Parallel()
	sp := churnSpec()
	sp.Shards = 4
	sp.Churn = []ChurnEvent{
		{At: 500 * time.Millisecond, Profile: "SSD2", Add: 1, Warmup: 50 * time.Millisecond},
		{At: 1400 * time.Millisecond, Profile: "SSD2", Remove: 1},
	}
	r, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if r.ChurnAdds != 1 || r.ChurnRemoves != 1 {
		t.Fatalf("churn counts: adds %d removes %d, want 1/1", r.ChurnAdds, r.ChurnRemoves)
	}
}

// churnGroupSpec: a group-parked fleet under a diurnal schedule with a
// scale-out-then-drain-back cycle — the builtin churn scenario's shape
// at unit-test scale.
func churnGroupSpec() Spec {
	return Spec{
		Size:            32,
		Shards:          2,
		Horizon:         2 * time.Second,
		Seed:            7,
		CheckInvariants: true,
		Meso:            true,
		MesoGroupMin:    4,
		Rates: []workload.RateStep{
			{At: 0, IOPS: 3000},
			{At: 800 * time.Millisecond, IOPS: 1200},
			{At: 1600 * time.Millisecond, IOPS: 3000},
		},
		Churn: []ChurnEvent{
			{At: 500 * time.Millisecond, Profile: "SSD2", Add: 8, Warmup: 100 * time.Millisecond},
			{At: 1300 * time.Millisecond, Profile: "SSD2", Remove: 8},
		},
	}
}

// TestChurnGroupParked: churn through the virtualized-cohort tier —
// members join and leave as bucket count changes, warm-up is modeled,
// and every probe stays green.
func TestChurnGroupParked(t *testing.T) {
	t.Parallel()
	r, err := Run(churnGroupSpec())
	if err != nil {
		t.Fatal(err)
	}
	if r.ChurnAdds != 8 || r.ChurnRemoves != 8 {
		t.Fatalf("churn counts: adds %d removes %d, want 8/8", r.ChurnAdds, r.ChurnRemoves)
	}
	if r.MesoGroupLanes == 0 {
		t.Fatal("nothing virtualized")
	}
	// Virtual members report their modeled warm-up exactly.
	if r.WarmupP50 != 100*time.Millisecond {
		t.Fatalf("virtual warm-up p50 = %v, want the modeled 100ms", r.WarmupP50)
	}
	if r.DrainMax >= r.SimulatedDur {
		t.Fatalf("drain recovery %v never completed", r.DrainMax)
	}
	if !r.CapOK || !r.TrackOK || !r.MesoDriftOK {
		t.Fatalf("probes failed: cap=%v track=%v drift=%v (worst %.4f)",
			r.CapOK, r.TrackOK, r.MesoDriftOK, r.MesoWorstDriftFrac)
	}
}

// TestChurnDeterministic: bit-identical reports across GOMAXPROCS on
// the churning group-parked fleet — membership epochs, bucket count
// changes, and diurnal rate steps all ride the per-shard engines.
// Not parallel: detcheck pins GOMAXPROCS.
func TestChurnDeterministic(t *testing.T) {
	detcheck.Assert(t, func() (*Report, error) { return Run(churnGroupSpec()) }, detcheck.Config[*Report]{
		Procs: []int{1, 4, 8},
		Diff: func(t testing.TB, a, b *Report) {
			t.Logf("reference: %+v", a)
			t.Logf("divergent: %+v", b)
		},
	})
}

// TestChurnJoinOrderIndependence: churned lanes draw from fresh RNG
// roots keyed by group number, so adding groups in one event or across
// two events at the same times... cannot be asserted directly (events
// are distinct), but repeat runs of the same spec must agree exactly —
// the determinism half of the join-order contract.
func TestChurnRepeatable(t *testing.T) {
	t.Parallel()
	a, err := Run(churnSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(churnSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeat churn runs diverge:\n%+v\n%+v", a, b)
	}
}

// TestChurnDoesNotPerturbBaseFleet: the base lanes' arrival streams are
// keyed by lane identity, so scheduling churn must not change the
// offered load of the original fleet... the offered totals differ (the
// churned lanes add their own arrivals), but the churn-off run of the
// same spec must be byte-identical to never having had the fields.
func TestChurnDoesNotPerturbBaseFleet(t *testing.T) {
	t.Parallel()
	off := churnSpec()
	off.Churn = nil
	a, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	plain := Spec{
		Size:            8,
		Replicas:        2,
		Shards:          2,
		Horizon:         2 * time.Second,
		RateIOPS:        3000,
		Seed:            7,
		CheckInvariants: true,
	}
	b, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("churn-off run diverges from the plain spec:\n%+v\n%+v", a, b)
	}
}
