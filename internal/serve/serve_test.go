package serve

import (
	"strings"
	"testing"
	"time"

	"wattio/internal/detcheck"
	"wattio/internal/fault"
)

// TestScriptedFaults pins the spec-scripted fault path: the named
// instance is wrapped and counted, scripting it does not perturb any
// other device's draws, and bad scripts are rejected by name.
func TestScriptedFaults(t *testing.T) {
	base := quickSpec()
	base.FaultFrac = 0
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	sp := quickSpec()
	sp.FaultFrac = 0
	sp.Faults = []DeviceFault{{
		Device: InstanceName("SSD2", 0),
		Windows: []fault.Window{
			{Kind: fault.Dropout, Start: 200 * time.Millisecond, Dur: 100 * time.Millisecond},
		},
	}}
	rep, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faulted != 1 {
		t.Fatalf("scripted fault count = %d, want 1", rep.Faulted)
	}
	if rep.Failovers == 0 {
		t.Fatal("scripted dropout inside a replica group caused no failovers")
	}
	// Arrivals draw from the workload seed only, so a fault script must
	// never change the offered load.
	if rep.Offered != clean.Offered {
		t.Fatalf("fault script perturbed arrivals: offered %d, want %d", rep.Offered, clean.Offered)
	}

	sp.Faults[0].Device = "SSD9#00000"
	if _, err := Run(sp); err == nil || !strings.Contains(err.Error(), `"SSD9#00000"`) {
		t.Fatalf("unknown scripted instance not rejected by name: %v", err)
	}
	sp.Faults[0] = DeviceFault{Device: InstanceName("SSD2", 0)}
	if _, err := Run(sp); err == nil || !strings.Contains(err.Error(), "no windows") {
		t.Fatalf("empty fault script not rejected: %v", err)
	}
}

// quickSpec is a small mixed fleet with replication, faults, and a
// stepped budget — every moving part of the engine enabled, sized to
// run in well under a second.
func quickSpec() Spec {
	return Spec{
		Profiles:        []string{"SSD2", "SSD1"},
		Size:            24,
		Replicas:        2,
		Shards:          3,
		Horizon:         600 * time.Millisecond,
		Seed:            42,
		FaultSeed:       7,
		FaultFrac:       0.25,
		CheckInvariants: true,
		Budget: []BudgetStep{
			{At: 0, FleetW: 24 * 15.0},
			{At: 200 * time.Millisecond, FleetW: 24 * 10.5},
			{At: 400 * time.Millisecond, FleetW: 24 * 12.5},
		},
	}
}

// TestDeterministic is the serving half of the repo's determinism
// contract: the merged report must be bit-identical across repeat runs
// and across GOMAXPROCS settings, even with faults injected.
func TestDeterministic(t *testing.T) {
	detcheck.Assert(t, func() (*Report, error) { return Run(quickSpec()) }, detcheck.Config[*Report]{
		Procs: []int{1, 4, 8},
		Diff: func(t testing.TB, a, b *Report) {
			t.Logf("reference: %+v", a)
			t.Logf("divergent: %+v", b)
		},
	})
}

func TestQuickRun(t *testing.T) {
	rep, err := Run(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Devices != 24 || rep.Groups != 12 || rep.Shards != 3 {
		t.Fatalf("fleet shape: %+v", rep)
	}
	if rep.Faulted == 0 {
		t.Fatalf("FaultFrac 0.25 over 24 devices injected no faults")
	}
	if rep.Completed == 0 || rep.BytesCompleted == 0 {
		t.Fatalf("no IO completed: %+v", rep)
	}
	if rep.Offered != rep.Admitted+rep.Rejected {
		t.Fatalf("offered %d != admitted %d + rejected %d", rep.Offered, rep.Admitted, rep.Rejected)
	}
	if rep.Completed > rep.Admitted {
		t.Fatalf("completed %d > admitted %d", rep.Completed, rep.Admitted)
	}
	if rep.LatP50 <= 0 || rep.LatP99 < rep.LatP50 || rep.LatMax < rep.LatP99 {
		t.Fatalf("latency ordering broken: p50=%v p99=%v max=%v", rep.LatP50, rep.LatP99, rep.LatMax)
	}
	if rep.Replans == 0 {
		t.Fatalf("stepped budget produced no re-plans")
	}
	if !rep.CapOK {
		t.Fatalf("cap probe fired: worst window %.1f W", rep.CapWorstW)
	}
	if !rep.TrackOK {
		t.Fatalf("achieved power broke budget: worst over %.1f W", rep.WorstOverW)
	}
	if len(rep.Intervals) != 6 {
		t.Fatalf("expected 6 control intervals, got %d", len(rep.Intervals))
	}
}

// TestBudgetBinds drives the fleet hard enough that the budget actually
// constrains serving: under a tight budget the planner moves devices to
// low-power states, the lanes saturate, and admission control sheds
// load — none of which happens with the budget wide open.
func TestBudgetBinds(t *testing.T) {
	base := Spec{
		Size:     8,
		Shards:   2,
		RateIOPS: 10000, // ~2.6 GB/s demand vs 3.1 GB/s at ps0, 1.6 GB/s at ps2
		Horizon:  800 * time.Millisecond,
		Seed:     42,
	}

	loose := base
	rLoose, err := Run(loose)
	if err != nil {
		t.Fatal(err)
	}

	tight := base
	tight.Budget = []BudgetStep{{At: 0, FleetW: 8 * 10.0}} // per-device 10 W < ps1's 11.7 W
	rTight, err := Run(tight)
	if err != nil {
		t.Fatal(err)
	}

	if rLoose.Rejected != 0 {
		t.Fatalf("unconstrained fleet rejected %d requests", rLoose.Rejected)
	}
	if rTight.Rejected == 0 {
		t.Fatalf("tight budget shed no load: %+v", rTight)
	}
	if rTight.ThroughputMBps >= rLoose.ThroughputMBps {
		t.Fatalf("tight budget did not cut throughput: %.0f vs %.0f MB/s",
			rTight.ThroughputMBps, rLoose.ThroughputMBps)
	}
	if rTight.AvgPowerW >= rLoose.AvgPowerW {
		t.Fatalf("tight budget did not cut power: %.1f vs %.1f W",
			rTight.AvgPowerW, rLoose.AvgPowerW)
	}
	if !rTight.TrackOK {
		t.Fatalf("tight budget not tracked: worst over %.1f W", rTight.WorstOverW)
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"unknown profile", Spec{Profiles: []string{"nope"}}, "unknown profile"},
		{"negative size", Spec{Size: -4}, "must be positive"},
		{"indivisible replicas", Spec{Size: 10, Replicas: 3}, "not divisible"},
		{"active too high", Spec{Size: 8, Replicas: 2, Active: 3}, "out of"},
		{"bad chunk", Spec{ChunkBytes: 100}, "chunk size"},
		{"negative rate", Spec{RateIOPS: -1}, "arrival rate"},
		{"period past horizon", Spec{Horizon: time.Second, ControlPeriod: 2 * time.Second}, "control period"},
		{"budget late start", Spec{Budget: []BudgetStep{{At: time.Second, FleetW: 100}}}, "start at 0"},
		{"budget zero watts", Spec{Budget: []BudgetStep{{At: 0, FleetW: 0}}}, "non-positive power"},
		{"budget out of order", Spec{Budget: []BudgetStep{{0, 100}, {0, 90}}}, "strictly increasing"},
		{"budget past horizon", Spec{Horizon: time.Second, Budget: []BudgetStep{{0, 100}, {2 * time.Second, 90}}}, "past the horizon"},
		{"fault frac over 1", Spec{FaultFrac: 1.5}, "fault fraction"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(tc.spec)
			if err == nil {
				t.Fatalf("spec accepted: %+v", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestNormalizedDefaults(t *testing.T) {
	sp, err := Spec{}.normalized()
	if err != nil {
		t.Fatal(err)
	}
	if sp.Size != 64 || sp.Replicas != 1 || sp.Active != 1 {
		t.Fatalf("fleet defaults: %+v", sp)
	}
	if sp.Shards != 4 { // 64 groups / 16 per shard
		t.Fatalf("default shards = %d, want 4", sp.Shards)
	}
	if len(sp.Budget) != 1 || sp.Budget[0].FleetW <= 64*14.4 {
		t.Fatalf("default budget should exceed fleet max power: %+v", sp.Budget)
	}
}

func TestParseSchedule(t *testing.T) {
	got, err := ParseSchedule("0s:640,1s:448.5", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []BudgetStep{{0, 640}, {time.Second, 448.5}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %+v, want %+v", got, want)
	}

	got, err = ParseSchedule("500ms:12.5pd", 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].At != 500*time.Millisecond || got[0].FleetW != 500 {
		t.Fatalf("pd scaling: got %+v", got)
	}

	rejects := []struct {
		name, text, wantErr string
	}{
		{"empty", "", "empty budget schedule"},
		{"blank", "  ", "empty budget schedule"},
		{"no colon", "640", "not duration:watts"},
		{"bad duration", "xs:640", `"xs:640"`},
		{"bad watts", "0s:abc", `bad watts "abc"`},
		{"bad pd watts", "0s:12qq", `bad watts "12qq"`},
		{"duplicate step time", "0s:640,1s:500,1s:480", `"1s:480" repeats step time 1s`},
		{"backward step time", "0s:640,2s:500,1s:480", `"1s:480" goes backward (1s after 2s)`},
		{"duplicate at zero", "0s:640,0s:500", `"0s:500" repeats step time 0s`},
	}
	for _, tc := range rejects {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSchedule(tc.text, 10)
			if err == nil {
				t.Fatalf("ParseSchedule(%q) accepted", tc.text)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ParseSchedule(%q) error %q does not name the bad segment (want %q)", tc.text, err, tc.wantErr)
			}
		})
	}
}

// TestScheduleKey pins the canonical re-encoding the scenario grid
// layer uses for duplicate detection: spelling variants of one schedule
// collapse to the same key, distinct schedules never do, and the key is
// independent of fleet size (the "pd" suffix is preserved, not scaled).
func TestScheduleKey(t *testing.T) {
	same := [][2]string{
		{"0s:14.6pd", " 0s:14.60pd"},
		{"0s:640,1s:448.5", "0ms:640.0, 1000ms:448.50"},
		{"500ms:12.5pd", "0.5s:12.5pd"},
	}
	for _, pair := range same {
		a, err := ScheduleKey(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := ScheduleKey(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("ScheduleKey(%q)=%q != ScheduleKey(%q)=%q", pair[0], a, pair[1], b)
		}
	}
	distinct := []string{"0s:14.6pd", "0s:14.6", "0s:14.7pd", "0s:14.6pd,1s:11pd"}
	seen := map[string]string{}
	for _, s := range distinct {
		k, err := ScheduleKey(s)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("distinct schedules %q and %q share key %q", prev, s, k)
		}
		seen[k] = s
	}
	if _, err := ScheduleKey("0s:junk"); err == nil {
		t.Error("malformed schedule produced a key")
	}
	// The key itself re-parses and re-keys to a fixed point.
	k, err := ScheduleKey("0ms:640.0, 1000ms:448.50")
	if err != nil {
		t.Fatal(err)
	}
	k2, err := ScheduleKey(k)
	if err != nil {
		t.Fatalf("key %q does not re-parse: %v", k, err)
	}
	if k != k2 {
		t.Errorf("key not a fixed point: %q -> %q", k, k2)
	}
}

// TestParseInstanceName pins the InstanceName inverse: every generated
// name round-trips, and anything InstanceName could not have produced
// is rejected.
func TestParseInstanceName(t *testing.T) {
	for _, tc := range []struct {
		profile string
		i       int
	}{{"SSD2", 0}, {"SSD2", 3}, {"HDD", 99999}, {"EVO", 123456}} {
		name := InstanceName(tc.profile, tc.i)
		p, i, err := ParseInstanceName(name)
		if err != nil || p != tc.profile || i != tc.i {
			t.Errorf("ParseInstanceName(%q) = (%q, %d, %v), want (%q, %d)", name, p, i, err, tc.profile, tc.i)
		}
	}
	for _, bad := range []string{
		"", "SSD2", "SSD2#", "#00003", "SSD2#3", "SSD2#003", "SSD2#-0003",
		"SSD2#00003x", "SSD2#0x003", "SSD2##00003", "ssd2 #00003 ",
	} {
		if _, _, err := ParseInstanceName(bad); err == nil {
			t.Errorf("ParseInstanceName(%q) accepted", bad)
		}
	}
}

// TestReplicaFailover checks that dropout faults inside replica groups
// route IO to the surviving replicas instead of stalling the lane.
func TestReplicaFailover(t *testing.T) {
	sp := quickSpec()
	sp.FaultFrac = 0.5
	rep, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faulted == 0 {
		t.Fatal("no faults injected at FaultFrac 0.5")
	}
	if rep.Failovers == 0 {
		t.Fatalf("faulted replicated fleet recorded no failovers: %+v", rep)
	}
	if rep.Completed == 0 {
		t.Fatalf("no IO completed under faults")
	}
}
