package serve

import (
	"fmt"
	"time"

	"wattio/internal/adaptive"
	"wattio/internal/core"
	"wattio/internal/device"
	"wattio/internal/sim"
	"wattio/internal/workload"
)

// Lane lifecycle (Spec.Churn): the fleet is no longer a static set.
// Replica groups admitted by a churn event move through
//
//	pending --(event At)--> warming --(At+Warmup)--> active
//	active  --(remove At)-> draining --(queue+inflight empty)--> removed
//
// The schedule is compiled once, spec-side, into per-shard epochs
// before any shard runs: which global group numbers join or leave,
// which shard owns each, and the live device counts after every event.
// Shards therefore never communicate — each sees the same epoch
// timeline and takes only its own membership changes, so reports stay
// bit-identical at any GOMAXPROCS. Churned lanes draw their randomness
// from fresh RNG roots keyed by global group number, never from the
// shard's build-time stream, so admission order cannot perturb any
// existing lane's draws and a group's behavior is independent of when
// it joins.
//
// With Spec.Churn empty, compileChurn returns nil and no code path in
// this file runs: the static-fleet path is byte-identical to before.

// laneAdd is one compiled scale-out member: a fresh global replica
// group number and its profile index.
type laneAdd struct {
	g  int
	pi int
}

// churnRemove is one compiled scale-in member. warming marks a group
// removed before its warm-up completed (it never served traffic).
type churnRemove struct {
	g       int
	pi      int
	warming bool
}

// churnEpoch is one churn event as seen by one shard: the shard's own
// membership changes plus the fleet-wide and shard-live device counts
// after the event — every shard gets an epoch per event, because the
// budget-slice denominator changes for all of them.
type churnEpoch struct {
	at     time.Duration
	warmAt time.Duration
	// live and fleetLive are the shard's and the fleet's live device
	// counts after this event (warming members included: they hold
	// budget share from admission).
	live      int
	fleetLive int
	adds      []laneAdd
	removes   []churnRemove
}

// shardChurn is one shard's compiled epoch timeline.
type shardChurn struct {
	epochs []churnEpoch
}

// laneLife is one materialized lane's lifecycle state.
type laneLife struct {
	// removing marks a lane draining toward retirement; dead marks the
	// drain complete (devices retired, energy frozen). warmPending marks
	// a churned lane whose first completion will record its warm-up
	// recovery latency.
	removing, dead, warmPending bool
	drainFrom, warmFrom         time.Duration
}

// compileChurn lowers the spec's churn schedule into per-shard epochs.
// Scale-out allocates fresh, never-reused group numbers round-robined
// across shards; scale-in pops the highest-numbered live group of the
// event's profile (newest first), so removal targets are deterministic
// functions of the spec alone. Returns nil when the spec has no churn.
func compileChurn(sp *Spec, ranges []shardRange) []*shardChurn {
	if len(sp.Churn) == 0 {
		return nil
	}
	P := len(sp.Profiles)
	groups0 := sp.Size / sp.Replicas
	out := make([]*shardChurn, len(ranges))
	for i := range out {
		out[i] = &shardChurn{}
	}
	shardOf := func(g int) int {
		if g < groups0 {
			for si, rg := range ranges {
				if g >= rg.g0 && g < rg.g1 {
					return si
				}
			}
		}
		return g % len(ranges)
	}
	// Live group stacks per profile, ascending; removals pop the top.
	stacks := make([][]int, P)
	for g := 0; g < groups0; g++ {
		stacks[g%P] = append(stacks[g%P], g)
	}
	warmAt := map[int]time.Duration{}
	perLive := make([]int, len(ranges))
	for si, rg := range ranges {
		perLive[si] = (rg.g1 - rg.g0) * sp.Replicas
	}
	fleetLive := sp.Size
	next := groups0
	for _, ev := range sp.Churn {
		pi := 0
		for j, p := range sp.Profiles {
			if p == ev.Profile {
				pi = j
				break
			}
		}
		wa := ev.At + ev.Warmup
		for si := range out {
			out[si].epochs = append(out[si].epochs, churnEpoch{at: ev.At, warmAt: wa})
		}
		ep := func(si int) *churnEpoch {
			eps := out[si].epochs
			return &eps[len(eps)-1]
		}
		for k := 0; k < ev.Add; k++ {
			g := next
			next++
			stacks[pi] = append(stacks[pi], g)
			warmAt[g] = wa
			si := shardOf(g)
			e := ep(si)
			e.adds = append(e.adds, laneAdd{g: g, pi: pi})
			perLive[si] += sp.Replicas
			fleetLive += sp.Replicas
		}
		for k := 0; k < ev.Remove; k++ {
			st := stacks[pi]
			g := st[len(st)-1]
			stacks[pi] = st[:len(st)-1]
			// A group popped before its warm event fired never served;
			// equality means the warm event ran first (posts at the same
			// instant fire in registration order, earlier events first).
			warming := warmAt[g] > ev.At
			delete(warmAt, g)
			si := shardOf(g)
			e := ep(si)
			e.removes = append(e.removes, churnRemove{g: g, pi: pi, warming: warming})
			perLive[si] -= sp.Replicas
			fleetLive -= sp.Replicas
		}
		for si := range out {
			e := ep(si)
			e.fleetLive = fleetLive
			e.live = perLive[si]
		}
	}
	return out
}

// churnFor returns shard i's compiled timeline (nil when churn is off).
func churnFor(ch []*shardChurn, i int) *shardChurn {
	if ch == nil {
		return nil
	}
	return ch[i]
}

// laneRateIOPS is the per-lane offered rate in force at now: the rate
// schedule's binding step (or the flat RateIOPS) times the active
// replica count.
func (s *shard) laneRateIOPS(now time.Duration) float64 {
	r := s.spec.RateIOPS
	for _, rs := range s.spec.Rates {
		if rs.At <= now {
			r = rs.IOPS
		}
	}
	return r * float64(s.spec.Active)
}

// startLaneArrivals (re)starts lane i's open-loop arrival process on
// its retained stream for the remaining horizon — flat-rate when the
// spec has no schedule (byte-identical to the original path), else on
// the precomputed per-lane rate schedule, which picks up whichever step
// is in force at the current instant. No-op when the horizon has
// passed.
func (s *shard) startLaneArrivals(i int) error {
	sp := s.spec
	now := s.eng.Now()
	l := s.lanes[i]
	if len(s.laneRates) == 0 {
		remaining := sp.Horizon - now
		if remaining <= 0 {
			return nil
		}
		a, err := workload.StartArrivals(s.eng, s.astreams[i], sp.Arrival,
			sp.RateIOPS*float64(sp.Active), remaining, l.arrive, nil)
		if err != nil {
			return err
		}
		s.arrs[i] = a
		return nil
	}
	if now >= sp.Horizon {
		return nil
	}
	a, err := workload.StartArrivalsSchedule(s.eng, s.astreams[i], sp.Arrival,
		s.laneRates, sp.Horizon, l.arrive, nil)
	if err != nil {
		return err
	}
	s.arrs[i] = a
	return nil
}

// rateStep handles one rate-schedule boundary: parked lanes rehydrate
// (their aggregates' operating points describe the old rate), the group
// pool settles its IO integration at the old rate, and calibrated
// serving buckets are invalidated so probes re-measure under the new
// load. Continuing mechanistic arrival processes handle the boundary
// internally.
func (s *shard) rateStep(rs workload.RateStep) {
	now := s.eng.Now()
	if s.meso != nil {
		s.meso.rehydrateAll()
		// The offered load just changed discontinuously: a steady dwell
		// accumulated at the old rate must never calibrate an operating
		// point for the new one, so every live lane's window restarts
		// here. (rehydrateAll only resets the lanes it rehydrates;
		// already-hydrated lanes would otherwise straddle the boundary.)
		for i := range s.meso.lanes {
			if s.lc != nil && (s.lc[i].removing || s.lc[i].dead) {
				continue
			}
			s.meso.resetBaseline(i)
		}
	}
	if s.grp != nil {
		s.grp.pool.SetRate(rs.IOPS*float64(s.spec.Active), now)
		s.grp.pool.Recalibrate(now)
	}
}

// admitLane materializes one churned replica group as a live lane:
// devices, redirector, governors, arrival stream — all drawn from a
// fresh RNG root keyed by the global group number, so the lane's
// behavior is independent of join order and of every other lane's
// stream position. Churned lanes take no fault injection: the fault
// draw pass covers the build-time fleet. Arrivals do not start here;
// the warm event does that.
func (s *shard) admitLane(g, pi int, at time.Duration) error {
	sp := s.spec
	profile := sp.Profiles[pi]
	lrng := sim.NewRNG(sp.Seed ^ shardHash("serve/churn", g))
	groupDevs := make([]device.Device, 0, sp.Replicas)
	d0 := len(s.devs)
	for rep := 0; rep < sp.Replicas; rep++ {
		gi := g*sp.Replicas + rep
		name := InstanceName(profile, gi)
		d, err := baseDevice(sp, s.eng, lrng, profile, name)
		if err != nil {
			return err
		}
		s.devs = append(s.devs, d)
		s.devDead = append(s.devDead, false)
		s.names = append(s.names, name)
		s.maxW = append(s.maxW, profileMaxW(profile))
		m, err := planningModel(profile, name)
		if err != nil {
			return err
		}
		s.models = append(s.models, m)
		groupDevs = append(groupDevs, d)
	}
	target := groupDevs[0]
	if sp.Replicas > 1 {
		rd, err := adaptive.NewRedirector(fmt.Sprintf("group%05d", g), groupDevs, sp.Active)
		if err != nil {
			return err
		}
		s.redirs = append(s.redirs, rd)
		target = rd
	}
	span := target.CapacityBytes()
	span -= span % sp.ChunkBytes
	li := len(s.lanes)
	s.lanes = append(s.lanes, &lane{
		sh:   s,
		idx:  li,
		dev:  target,
		rng:  lrng.Stream(fmt.Sprintf("lane%05d", g)),
		span: span,
	})
	s.laneFaulted = append(s.laneFaulted, false)
	s.laneFaultEnd = append(s.laneFaultEnd, 0)
	s.laneGroup = append(s.laneGroup, g)
	s.groupLane[g] = li
	s.astreams = append(s.astreams, lrng.Stream("arrivals"))
	s.arrs = append(s.arrs, nil)
	s.lc = append(s.lc, laneLife{warmFrom: at})
	for di := d0; di < len(s.devs); di++ {
		d := s.devs[di]
		if len(d.PowerStates()) < 2 {
			s.govs = append(s.govs, nil)
			continue
		}
		gv, err := adaptive.NewGovernor(s.eng, d, s.maxW[di]*govGuard, sp.ControlPeriod)
		if err != nil {
			return err
		}
		gv.Start()
		s.govs = append(s.govs, gv)
	}
	if s.meso != nil {
		s.meso.addLane(li, s.lc[li].warmFrom)
	}
	return nil
}

// beginRemove starts draining group g's lane: its budget share is gone
// (the caller re-plans without it), arrivals stop, and the lane serves
// out its queued and in-flight work before retiring. A parked lane
// settles its aggregate first; an empty lane retires on the spot.
func (s *shard) beginRemove(g int, now time.Duration) {
	li, ok := s.groupLane[g]
	if !ok {
		panic(fmt.Sprintf("serve: churn removes unmaterialized group %d", g))
	}
	lf := &s.lc[li]
	lf.removing = true
	lf.drainFrom = now
	if s.meso != nil {
		s.meso.evict(li, now)
	}
	if a := s.arrs[li]; a != nil {
		a.Stop()
	}
	if l := s.lanes[li]; l.inflight == 0 && l.qlen() == 0 {
		s.retireLane(li, now)
	}
}

// retireLane completes a drain: governors stop, each device's meter is
// frozen into retiredJ (the shard's energy stays continuous — removed
// devices just stop drawing), and the drain recovery latency lands in
// the shard result.
func (s *shard) retireLane(li int, now time.Duration) {
	lf := &s.lc[li]
	if lf.dead {
		return
	}
	lf.dead = true
	r := s.spec.Replicas
	for di := li * r; di < (li+1)*r; di++ {
		if gv := s.govs[di]; gv != nil {
			gv.Stop()
		}
		s.retiredJ += s.devs[di].EnergyJ()
		s.devDead[di] = true
	}
	s.res.DrainLats = append(s.res.DrainLats, now-lf.drainFrom)
}

// laneCompleted runs on every request completion while the lifecycle is
// active: the first completion of a freshly warmed lane records its
// warm-up recovery latency, and a draining lane retires the moment its
// last work finishes.
func (s *shard) laneCompleted(l *lane, now time.Duration) {
	lf := &s.lc[l.idx]
	if lf.warmPending {
		lf.warmPending = false
		s.res.WarmupLats = append(s.res.WarmupLats, now-lf.warmFrom)
	}
	if lf.removing && !lf.dead && l.inflight == 0 && l.qlen() == 0 {
		s.retireLane(l.idx, now)
	}
}

// rebuildController rebinds the per-device BudgetController to the
// current live membership (draining and dead lanes hold no share). The
// Fleet — and its cached Pareto frontier — comes from the composition
// cache, so a schedule that revisits a membership (scale-out then drain
// back to the previous size) reuses the frontier instead of re-merging.
func (s *shard) rebuildController() error {
	r := s.spec.Replicas
	names := make([]string, 0, len(s.devs))
	devs := make([]device.Device, 0, len(s.devs))
	models := make([]*core.Model, 0, len(s.models))
	for i, d := range s.devs {
		lf := &s.lc[i/r]
		if lf.removing || lf.dead {
			continue
		}
		names = append(names, s.names[i])
		devs = append(devs, d)
		models = append(models, s.models[i])
	}
	key := adaptive.CompositionKey(names)
	if s.bc != nil {
		s.ctrlComp += s.bc.Compensations
	}
	bc, err := s.fcache.Controller(key, devs, func() (*core.Fleet, error) {
		return core.NewFleet(models...)
	})
	if err != nil {
		return err
	}
	s.bc = bc
	return nil
}

// churnEpoch executes one membership epoch: rehydrate the analytic
// tier, apply this shard's adds then removes, adopt the new live
// counts, and re-plan under the budget in force. A zero-warm-up event
// warms its adds inline before the re-plan, so the epoch's single plan
// already serves them.
func (s *shard) churnEpoch(ep churnEpoch) {
	now := s.eng.Now()
	if s.meso != nil {
		s.meso.rehydrateAll()
	}
	for _, ad := range ep.adds {
		if s.grp != nil {
			s.grp.addVirtual(ad, ep.at, ep.warmAt, now)
		} else if err := s.admitLane(ad.g, ad.pi, ep.at); err != nil {
			panic(fmt.Sprintf("serve: churn admission of group %d: %v", ad.g, err))
		}
	}
	for _, rm := range ep.removes {
		if s.grp != nil {
			s.grp.removeMember(rm, now)
		} else {
			s.beginRemove(rm.g, now)
		}
	}
	s.res.ChurnAdds += len(ep.adds)
	s.res.ChurnRemoves += len(ep.removes)
	s.liveDevs = ep.live
	s.fleetLive = ep.fleetLive
	if len(ep.adds) > 0 && ep.warmAt == ep.at {
		s.warmTransition(ep, now)
	}
	s.replanLive(now, len(ep.adds)+len(ep.removes) > 0)
}

// warmEpoch fires when a churn event's warm-up window closes: the
// epoch's surviving adds start serving traffic and the shard re-plans
// so the fresh capacity holds real power states.
func (s *shard) warmEpoch(ep churnEpoch) {
	now := s.eng.Now()
	if s.meso != nil {
		s.meso.rehydrateAll()
	}
	s.warmTransition(ep, now)
	s.replanLive(now, false)
}

// warmTransition moves an epoch's adds from warming to active: plain
// lanes start their arrival processes (first completion records the
// warm-up recovery latency), virtual cohort members leave the warm
// bucket for the serving distribution. Members removed while still
// warming are skipped — they never serve.
func (s *shard) warmTransition(ep churnEpoch, now time.Duration) {
	if s.grp != nil {
		if len(ep.adds) > 0 {
			s.grp.warmBatchDone(ep.adds[0].pi, ep.at, ep.warmAt, now)
		}
		return
	}
	for _, ad := range ep.adds {
		li := s.groupLane[ad.g]
		lf := &s.lc[li]
		if lf.removing || lf.dead {
			continue
		}
		lf.warmPending = true
		if err := s.startLaneArrivals(li); err != nil {
			panic(fmt.Sprintf("serve: churn warm-up of group %d: %v", ad.g, err))
		}
		if s.meso != nil {
			s.meso.resetBaseline(li)
		}
	}
}

// replanLive re-plans the shard under the budget in force at now.
// rebuild forces a controller re-bind first (membership changed).
func (s *shard) replanLive(now time.Duration, rebuild bool) {
	w := budgetAt(s.spec.Budget, now)
	if s.grp != nil {
		s.grp.apply(w)
		return
	}
	if rebuild {
		if err := s.rebuildController(); err != nil {
			panic(fmt.Sprintf("serve: churn controller rebuild: %v", err))
		}
	}
	s.applyBudget(w)
}
