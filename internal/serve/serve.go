// Package serve is the fleet-scale serving engine: it drives hundreds
// to thousands of modeled devices under a shared power budget, the way
// the ROADMAP's production system would serve heavy user traffic.
//
// The fleet is sharded across a worker pool. Each shard is an
// independent discrete-event simulation (its own sim.Engine and derived
// RNG streams) holding a contiguous slice of the fleet: devices
// instantiated from internal/catalog profiles, optionally wrapped with
// internal/fault injection, grouped into mirrored replica groups behind
// adaptive.Redirectors. An open-loop request stream (internal/workload
// arrivals) feeds per-group queues with admission control and request
// batching, and the internal/adaptive control plane runs online: the
// BudgetController re-plans every device's power state on each budget
// step, per-device Governors enforce the planned draw in closed loop
// (retrying through injected command faults), and Redirectors fail IO
// over around dropped replicas.
//
// Determinism contract: the merged Report is bit-identical for the same
// Spec regardless of GOMAXPROCS or worker scheduling. Shards derive
// their seeds from the spec (never from shard execution order), results
// land in fixed slots, and every merge folds in shard-index order.
package serve

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"wattio/internal/calib"
	"wattio/internal/fault"
	"wattio/internal/grid"
	"wattio/internal/stats"
	"wattio/internal/workload"
)

// BudgetStep is one entry of the fleet power-budget schedule: from At
// onward the fleet-wide budget is FleetW watts.
type BudgetStep struct {
	At     time.Duration
	FleetW float64
}

// ChurnEvent is one scheduled membership change: at At, Add replica
// groups of Profile join the fleet (warming for Warmup before they
// serve traffic) and/or Remove groups of Profile drain their queued and
// in-flight work and retire. Added groups hold their budget share from
// At — warm-up is a real power cost — and removed groups stop holding
// one at At, with the drain overhang absorbed by the control plane's
// per-transition settle grace. Within one event additions apply before
// removals.
type ChurnEvent struct {
	At      time.Duration
	Profile string
	Add     int
	Remove  int
	Warmup  time.Duration
}

// Spec describes one serving run. Zero values take defaults.
type Spec struct {
	// Profiles is the catalog profile mix; replica groups round-robin
	// over it. Default {"SSD2"}.
	Profiles []string
	// Size is the number of devices in the fleet. Default 64.
	Size int
	// Shards is the number of independent simulation shards. The shard
	// count is part of the spec (not derived from the host) so results
	// are machine-independent; 0 derives a deterministic default from
	// Size. Worker parallelism adapts to the host separately.
	Shards int
	// Replicas is the mirror-group size (1 = no redirection); Size must
	// be a multiple of it. Active is the number of replicas serving per
	// group; default Replicas-1 (min 1), so one replica per group rests
	// until failover needs it.
	Replicas, Active int

	// Read serves reads instead of the default writes; Seq issues
	// sequential offsets instead of the default random. The planning
	// models are calibrated against the default random-write stream;
	// other shapes still run, with the per-device governors absorbing
	// the larger plan-versus-device gap.
	Read, Seq bool
	// ChunkBytes and Depth shape the request stream per group,
	// mirroring workload.Job: request size and IOs in flight per group.
	// Defaults: 256 KiB, 64.
	ChunkBytes int64
	Depth      int
	// Batch caps how many queued requests one dispatch pass submits
	// back-to-back. Default 8.
	Batch int
	// QueueCap bounds each group's admission queue; arrivals beyond it
	// are rejected (counted, not retried). Default 4×Depth.
	QueueCap int
	// RateIOPS is the open-loop arrival rate per active device; a
	// group's rate is RateIOPS × Active. Default 3000.
	RateIOPS float64
	// Rates is an optional piecewise-constant arrival-rate schedule (a
	// diurnal load curve): from each step's At onward, every lane's
	// per-active-device rate is that step's IOPS. The first step must be
	// at 0; when set it supersedes RateIOPS (which normalization pins to
	// the first step's rate).
	Rates []workload.RateStep
	// Arrival selects the open-loop arrival process. Default OpenPoisson.
	Arrival workload.Arrival

	// Churn schedules membership changes: scale-out events that admit
	// new replica groups mid-run (with a warm-up cost before they serve)
	// and scale-in events that drain and retire groups. Events must be
	// strictly increasing in time, inside (0, Horizon), and address a
	// profile from Profiles. With churn set the fleet's live size varies
	// over the run; budget slices scale with the live population.
	Churn []ChurnEvent

	// Horizon is the virtual serving time. Default 2 s.
	Horizon time.Duration
	// ControlPeriod paces governors, power-interval accounting, and the
	// budget-tracking check. Default 100 ms.
	ControlPeriod time.Duration
	// Budget is the fleet power-budget schedule, sorted by At with the
	// first step at 0. Nil defaults to a single never-binding step at
	// the fleet's maximum planning-model power.
	Budget []BudgetStep
	// CapTolFrac is the budget-tracking tolerance as a fraction of the
	// interval budget. Default 0.10.
	CapTolFrac float64

	// Seed drives workload and device streams; FaultSeed independently
	// drives fault selection and injection, so the same traffic can be
	// replayed under different fault draws.
	Seed, FaultSeed uint64
	// FaultFrac is the fraction of devices given an injected fault
	// window (dropout or power-command failure), drawn from FaultSeed.
	FaultFrac float64
	// Faults scripts explicit fault windows onto named fleet instances
	// (see InstanceName). A scripted instance skips the FaultFrac draw;
	// all other instances are unaffected.
	Faults []DeviceFault

	// CheckInvariants attaches per-shard sliding-window power-cap and
	// clock-monotonicity probes; violations fail the run.
	CheckInvariants bool

	// Meso enables the mesoscale aggregation tier: a replica group
	// whose serving fingerprint holds steady for MesoDwellPeriods
	// control periods leaves event-driven simulation for an analytic
	// aggregate calibrated from its own measured draw, rehydrating on
	// budget steps, for periodic sentinel re-measurements, and at the
	// horizon. Fault-injected lanes never park. MesoDriftTolFrac bounds
	// how far a sentinel re-measurement may disagree with the
	// aggregate's calibrated draw before the lane is barred from
	// parking again (and the report's MesoDriftOK trips). The default
	// tolerance (dwell 2 periods, tolerance 0.10) sits well above the
	// few percent of Poisson arrival noise a dwell-window average
	// carries, and well below the shifts that matter — a rate change, a
	// fault onset, or a re-plan moves a lane's draw far more than 10%.
	Meso             bool
	MesoDwellPeriods int
	MesoDriftTolFrac float64

	// MesoGroupMin enables group-level parking (requires Meso): a shard
	// cohort — the interchangeable, same-profile replica groups of its
	// slice — with at least MesoGroupMin members keeps only MesoProbes
	// resident probe lanes (plus any fault-injected members) in
	// mechanistic simulation. Every other member is virtual: never
	// materialized, represented by a per-(cohort, power-state) bucket
	// holding a member count and one calibrated operating point donated
	// by the probes when they park. Budget steps re-plan over bucket
	// counts in O(#buckets), so control-period work is sublinear in
	// fleet size. 0 (the default) disables group parking entirely.
	// MesoProbes defaults to 2; raising it toward the profile's
	// power-state count speeds calibration coverage when a budget splits
	// a cohort across several states.
	MesoGroupMin int
	MesoProbes   int

	// Fitted substitutes learned device models (internal/calib) for the
	// mechanistic simulators of the named profiles: every fleet instance
	// of a mapped profile materializes as a calib.FittedDevice driven by
	// the fitted coefficients. Planning models, governors, budget
	// control, and fault wrapping are unchanged — a fitted profile is
	// just another device behind the same interface. Profiles absent
	// from the map keep their mechanistic simulators.
	Fitted map[string]*calib.Model
}

// DeviceFault scripts fault windows onto one named fleet instance.
type DeviceFault struct {
	Device  string
	Windows []fault.Window
}

// normalized returns a copy with defaults filled in, or an error when
// the spec is invalid.
func (s Spec) normalized() (Spec, error) {
	if len(s.Profiles) == 0 {
		s.Profiles = []string{"SSD2"}
	}
	for _, p := range s.Profiles {
		if _, ok := planningTable[p]; !ok {
			return s, fmt.Errorf("serve: unknown profile %q", p)
		}
	}
	for p, m := range s.Fitted {
		if _, ok := planningTable[p]; !ok {
			return s, fmt.Errorf("serve: fitted model for unknown profile %q", p)
		}
		if m == nil {
			return s, fmt.Errorf("serve: nil fitted model for profile %q", p)
		}
		if err := m.Validate(); err != nil {
			return s, fmt.Errorf("serve: fitted model for %q: %w", p, err)
		}
	}
	if s.Size == 0 {
		s.Size = 64
	}
	if s.Size < 1 {
		return s, fmt.Errorf("serve: fleet size %d must be positive", s.Size)
	}
	if s.Replicas == 0 {
		s.Replicas = 1
	}
	if s.Replicas < 1 || s.Size%s.Replicas != 0 {
		return s, fmt.Errorf("serve: fleet size %d not divisible into replica groups of %d", s.Size, s.Replicas)
	}
	if s.Active == 0 {
		s.Active = s.Replicas - 1
		if s.Active < 1 {
			s.Active = 1
		}
	}
	if s.Active < 1 || s.Active > s.Replicas {
		return s, fmt.Errorf("serve: active count %d out of [1, %d]", s.Active, s.Replicas)
	}
	groups := s.Size / s.Replicas
	if s.Shards == 0 {
		s.Shards = (groups + 15) / 16
		if s.Shards > 16 {
			s.Shards = 16
		}
	}
	if s.Shards < 1 {
		return s, fmt.Errorf("serve: shard count %d must be positive", s.Shards)
	}
	if s.Shards > groups {
		s.Shards = groups
	}
	if s.ChunkBytes == 0 {
		s.ChunkBytes = 256 << 10
	}
	if s.ChunkBytes <= 0 || s.ChunkBytes%512 != 0 {
		return s, fmt.Errorf("serve: chunk size %d invalid", s.ChunkBytes)
	}
	if s.Depth == 0 {
		s.Depth = 64
	}
	if s.Depth < 1 {
		return s, fmt.Errorf("serve: depth %d must be positive", s.Depth)
	}
	if s.Batch == 0 {
		s.Batch = 8
	}
	if s.Batch < 1 {
		return s, fmt.Errorf("serve: batch %d must be positive", s.Batch)
	}
	if s.Batch > s.Depth {
		s.Batch = s.Depth
	}
	if s.QueueCap == 0 {
		s.QueueCap = 4 * s.Depth
	}
	if s.QueueCap < 1 {
		return s, fmt.Errorf("serve: queue cap %d must be positive", s.QueueCap)
	}
	if s.RateIOPS == 0 {
		s.RateIOPS = 3000
	}
	if s.RateIOPS <= 0 {
		return s, fmt.Errorf("serve: arrival rate %v must be positive", s.RateIOPS)
	}
	if s.Arrival == workload.Closed {
		s.Arrival = workload.OpenPoisson
	}
	if s.Horizon == 0 {
		s.Horizon = 2 * time.Second
	}
	if s.Horizon <= 0 {
		return s, fmt.Errorf("serve: horizon %v must be positive", s.Horizon)
	}
	if s.ControlPeriod == 0 {
		s.ControlPeriod = 100 * time.Millisecond
	}
	if s.ControlPeriod <= 0 || s.ControlPeriod > s.Horizon {
		return s, fmt.Errorf("serve: control period %v out of (0, horizon]", s.ControlPeriod)
	}
	if s.CapTolFrac == 0 {
		s.CapTolFrac = 0.10
	}
	if s.CapTolFrac < 0 {
		return s, fmt.Errorf("serve: negative cap tolerance")
	}
	if s.FaultFrac < 0 || s.FaultFrac > 1 {
		return s, fmt.Errorf("serve: fault fraction %v out of [0, 1]", s.FaultFrac)
	}
	if s.MesoDwellPeriods == 0 {
		s.MesoDwellPeriods = 2
	}
	if s.MesoDwellPeriods < 1 {
		return s, fmt.Errorf("serve: meso dwell %d periods must be positive", s.MesoDwellPeriods)
	}
	if s.MesoDriftTolFrac == 0 {
		s.MesoDriftTolFrac = 0.10
	}
	if s.MesoDriftTolFrac < 0 {
		return s, fmt.Errorf("serve: meso drift tolerance %v must be non-negative", s.MesoDriftTolFrac)
	}
	if s.MesoGroupMin < 0 {
		return s, fmt.Errorf("serve: meso group minimum %d must be non-negative", s.MesoGroupMin)
	}
	if s.MesoGroupMin > 0 && !s.Meso {
		return s, fmt.Errorf("serve: meso group parking requires the meso tier")
	}
	if s.MesoProbes < 0 {
		return s, fmt.Errorf("serve: meso probe count %d must be non-negative", s.MesoProbes)
	}
	if s.MesoProbes > 0 && s.MesoGroupMin == 0 {
		return s, fmt.Errorf("serve: meso probes set without group parking (set MesoGroupMin)")
	}
	if s.MesoGroupMin > 0 && s.MesoProbes == 0 {
		s.MesoProbes = 2
	}
	if s.MesoGroupMin > 0 && s.MesoProbes >= s.MesoGroupMin {
		return s, fmt.Errorf("serve: meso probe count %d must be below the group minimum %d (a cohort that is all probes has nothing to virtualize)",
			s.MesoProbes, s.MesoGroupMin)
	}
	if len(s.Rates) > 0 {
		if s.Rates[0].At != 0 {
			return s, fmt.Errorf("serve: rate schedule must start at 0, got %v", s.Rates[0].At)
		}
		for i, rs := range s.Rates {
			if rs.IOPS <= 0 {
				return s, fmt.Errorf("serve: rate step %d has non-positive rate %v", i, rs.IOPS)
			}
			if i > 0 && rs.At <= s.Rates[i-1].At {
				return s, fmt.Errorf("serve: rate schedule not strictly increasing at step %d", i)
			}
			if rs.At >= s.Horizon {
				return s, fmt.Errorf("serve: rate step %d at %v is past the horizon %v", i, rs.At, s.Horizon)
			}
		}
		s.RateIOPS = s.Rates[0].IOPS
	}
	if len(s.Churn) > 0 {
		// Simulate per-profile live group counts so every removal is
		// known to have a target and no cohort ever empties out.
		P := len(s.Profiles)
		live := make([]int, P)
		for g := 0; g < s.Size/s.Replicas; g++ {
			live[g%P]++
		}
		for i, ev := range s.Churn {
			if ev.At <= 0 || ev.At >= s.Horizon {
				return s, fmt.Errorf("serve: churn event %d at %v outside (0, horizon)", i, ev.At)
			}
			if i > 0 && ev.At <= s.Churn[i-1].At {
				return s, fmt.Errorf("serve: churn schedule not strictly increasing at event %d", i)
			}
			pi := -1
			for j, p := range s.Profiles {
				if p == ev.Profile {
					pi = j
					break
				}
			}
			if pi < 0 {
				return s, fmt.Errorf("serve: churn event %d addresses unknown cohort %q (profiles are %v)", i, ev.Profile, s.Profiles)
			}
			if ev.Add < 0 || ev.Remove < 0 || ev.Add+ev.Remove == 0 {
				return s, fmt.Errorf("serve: churn event %d must add or remove at least one group", i)
			}
			if ev.Warmup < 0 {
				return s, fmt.Errorf("serve: churn event %d has negative warm-up %v", i, ev.Warmup)
			}
			if ev.Add > 0 && ev.At+ev.Warmup >= s.Horizon {
				return s, fmt.Errorf("serve: churn event %d warm-up ends at %v, past the horizon %v", i, ev.At+ev.Warmup, s.Horizon)
			}
			live[pi] += ev.Add
			if ev.Remove >= live[pi] {
				return s, fmt.Errorf("serve: churn event %d removes %d of cohort %q's %d live groups (at least one must remain)",
					i, ev.Remove, ev.Profile, live[pi])
			}
			live[pi] -= ev.Remove
		}
	}
	if len(s.Budget) == 0 {
		var maxW float64
		for gi := 0; gi < groups; gi++ {
			maxW += float64(s.Replicas) * profileMaxW(s.Profiles[gi%len(s.Profiles)])
		}
		s.Budget = []BudgetStep{{At: 0, FleetW: maxW * 1.01}}
	}
	if s.Budget[0].At != 0 {
		return s, fmt.Errorf("serve: budget schedule must start at 0, got %v", s.Budget[0].At)
	}
	for i, st := range s.Budget {
		if st.FleetW <= 0 {
			return s, fmt.Errorf("serve: budget step %d has non-positive power %v", i, st.FleetW)
		}
		if i > 0 && st.At <= s.Budget[i-1].At {
			return s, fmt.Errorf("serve: budget schedule not strictly increasing at step %d", i)
		}
		if st.At >= s.Horizon {
			return s, fmt.Errorf("serve: budget step %d at %v is past the horizon %v", i, st.At, s.Horizon)
		}
	}
	// Fault targets are checked structurally (parse, bounds, profile
	// round-trip) rather than against an enumerated name set: validation
	// stays O(#fault-stanzas) no matter the fleet size.
	for _, df := range s.Faults {
		profile, i, err := ParseInstanceName(df.Device)
		if err != nil || i >= s.Size || s.profileOf(i) != profile {
			return s, fmt.Errorf("serve: fault script targets unknown instance %q (names are %q)",
				df.Device, InstanceName(s.profileOf(0), 0))
		}
		if len(df.Windows) == 0 {
			return s, fmt.Errorf("serve: fault script for %q has no windows", df.Device)
		}
	}
	return s, nil
}

// rawStep is one structurally-parsed schedule step, before any fleet
// size is applied: the step time, the watts value as written, and
// whether the "pd" (per-device) suffix was present.
type rawStep struct {
	at     time.Duration
	watts  float64
	perDev bool
}

// parseScheduleSteps is the structural half of schedule parsing, shared
// by ParseSchedule (which scales per-device steps by a fleet size) and
// ScheduleKey (which must stay size-free so two spellings of the same
// schedule compare equal at every fleet size).
func parseScheduleSteps(text string) ([]rawStep, error) {
	if strings.TrimSpace(text) == "" {
		return nil, fmt.Errorf("serve: empty budget schedule")
	}
	var out []rawStep
	for _, part := range strings.Split(text, ",") {
		at, watts, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("serve: budget step %q is not duration:watts", part)
		}
		d, err := time.ParseDuration(at)
		if err != nil {
			return nil, fmt.Errorf("serve: budget step %q: %v", part, err)
		}
		perDev := false
		if strings.HasSuffix(watts, "pd") {
			perDev = true
			watts = strings.TrimSuffix(watts, "pd")
		}
		w, err := strconv.ParseFloat(watts, 64)
		if err != nil {
			return nil, fmt.Errorf("serve: budget step %q: bad watts %q", part, watts)
		}
		if n := len(out); n > 0 {
			switch {
			case d == out[n-1].at:
				return nil, fmt.Errorf("serve: budget step %q repeats step time %v", part, d)
			case d < out[n-1].at:
				return nil, fmt.Errorf("serve: budget step %q goes backward (%v after %v)", part, d, out[n-1].at)
			}
		}
		out = append(out, rawStep{at: d, watts: w, perDev: perDev})
	}
	return out, nil
}

// ParseSchedule parses a budget schedule flag: comma-separated
// "duration:watts" steps, e.g. "0s:640,1s:448". A "pd" suffix on the
// watts makes the value per-device, scaled by the fleet size:
// "0s:14pd" means size × 14 W. Step times must be strictly increasing;
// empty schedules, duplicate times, and backward steps are rejected
// with the offending segment named — scenario validation surfaces
// these messages verbatim.
func ParseSchedule(text string, size int) ([]BudgetStep, error) {
	steps, err := parseScheduleSteps(text)
	if err != nil {
		return nil, err
	}
	out := make([]BudgetStep, len(steps))
	for i, st := range steps {
		w := st.watts
		if st.perDev {
			w *= float64(size)
		}
		out[i] = BudgetStep{At: st.at, FleetW: w}
	}
	return out, nil
}

// ScheduleKey returns the canonical re-encoding of a budget schedule
// flag — fixed duration rendering, minimal float form, the "pd" suffix
// preserved — so two spellings of the same schedule ("0s:14.60pd" and
// " 0s:14.6pd") produce the same key at every fleet size. Scenario grid
// validation uses it to reject duplicate budget-axis values.
func ScheduleKey(text string) (string, error) {
	steps, err := parseScheduleSteps(text)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for i, st := range steps {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(st.at.String())
		b.WriteByte(':')
		b.WriteString(strconv.FormatFloat(st.watts, 'g', -1, 64))
		if st.perDev {
			b.WriteString("pd")
		}
	}
	return b.String(), nil
}

// Interval is one control-period slice of the merged power accounting.
type Interval struct {
	Start time.Duration
	Dur   time.Duration
	// BudgetW is the scheduled budget averaged over the interval: equal
	// to the step in force at Start for most intervals, time-weighted
	// across the transition for an interval a budget step lands inside.
	BudgetW   float64
	AchievedW float64
	// Checked is false for the one interval per budget step that falls
	// inside the step's settle window (see stepGraces): tracking binds
	// again exactly one control period after each transition, no matter
	// how the step aligns with interval boundaries. The initial plan
	// application at t=0 gets the same grace — devices enter the horizon
	// in their power-on state with full burst allowances.
	Checked bool
}

// Report is the merged outcome of a serving run. For a fixed Spec it is
// bit-identical regardless of host parallelism.
type Report struct {
	Devices, Groups, Shards, Faulted int

	Offered, Admitted, Rejected, Completed int64
	Batches                                int64
	BytesCompleted                         int64
	ThroughputMBps                         float64
	LatP50, LatP99, LatMax                 time.Duration

	// SimulatedDur is the virtual time the run actually covered: the
	// horizon, extended by whatever post-horizon drain the slowest shard
	// needed to complete its in-flight IO (a dropout window releasing
	// held requests can push this well past the horizon). ThroughputMBps
	// divides by it, not the nominal horizon.
	SimulatedDur time.Duration
	// Events is the total number of kernel events dispatched across all
	// shards — the deterministic measure of mechanistic simulation work
	// (wall clock is host-dependent; this is not).
	Events uint64

	Intervals  []Interval
	AvgPowerW  float64
	WorstOverW float64
	TrackOK    bool

	GovSteps, GovRetries, GovFailures  int
	Replans, Compensations, Infeasible int
	Failovers, WakesOnDemand           int

	CapOK     bool
	CapWorstW float64

	// Mesoscale-tier accounting (zero unless Spec.Meso is set).
	// MesoDehydrations counts lane transitions out of event-driven
	// simulation into the analytic aggregate; MesoRehydrations the
	// reverse. MesoParkedPeriods counts lane×control-period units served
	// analytically, and MesoAggJ is the dynamic (above-idle) energy the
	// aggregates accounted. MesoWorstDriftFrac is the worst relative
	// disagreement any sentinel re-measurement observed between an
	// aggregate's calibrated power and the mechanistic re-simulation;
	// MesoDriftOK is whether every observation stayed within the spec's
	// drift tolerance.
	MesoDehydrations, MesoRehydrations int
	MesoParkedPeriods                  int
	MesoAggJ                           float64
	MesoWorstDriftFrac                 float64
	MesoDriftOK                        bool

	// Group-parking accounting (zero unless Spec.MesoGroupMin is set).
	// MesoGroupLanes is how many lanes ran as virtual cohort members
	// (never materialized); MesoGroupBuckets how many (cohort,
	// power-state) aggregate buckets ever existed; MesoGroupScans the
	// total bucket slots touched across every group re-plan — the
	// control-period cost that replaces the O(#lanes) scan; MesoGroupJ
	// the energy attributed to virtual members from probe-calibrated
	// operating points. Virtual members also count into
	// MesoParkedPeriods each control period.
	MesoGroupLanes, MesoGroupBuckets, MesoGroupScans int
	MesoGroupJ                                       float64

	// Lane-lifecycle accounting (zero unless Spec.Churn is set).
	// ChurnAdds/ChurnRemoves count replica groups admitted and retired
	// mid-run. Warm-up recovery latency is admission (the churn event)
	// to a lane's first completed request — virtual cohort members
	// report their modeled warm-up instead; drain recovery latency is
	// the removal event to the last in-flight completion — instantaneous
	// for virtual members, whose queue is analytic. Quantiles cover the
	// groups whose transition completed inside the simulated window.
	ChurnAdds, ChurnRemoves int
	WarmupP50, WarmupMax    time.Duration
	DrainP50, DrainMax      time.Duration
}

// Run executes the serving engine and returns the merged report.
func Run(spec Spec) (*Report, error) {
	sp, err := spec.normalized()
	if err != nil {
		return nil, err
	}
	groups := sp.Size / sp.Replicas

	// Partition replica groups into contiguous shard ranges.
	ranges := make([]shardRange, sp.Shards)
	base, rem := groups/sp.Shards, groups%sp.Shards
	g := 0
	for i := range ranges {
		n := base
		if i < rem {
			n++
		}
		ranges[i] = shardRange{g0: g, g1: g + n}
		g += n
	}

	churn := compileChurn(&sp, ranges)

	results := make([]*shardResult, sp.Shards)
	errs := make([]error, sp.Shards)
	grid.Pool(sp.Shards, runtime.GOMAXPROCS(0), func(i int) {
		results[i], errs[i] = runShard(&sp, i, ranges[i], churnFor(churn, i))
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
	}
	return merge(&sp, results), nil
}

// merge folds the per-shard results in shard-index order, so every sum
// has a fixed association order and the report stays bit-identical.
func merge(sp *Spec, results []*shardResult) *Report {
	r := &Report{
		Devices:      sp.Size,
		Groups:       sp.Size / sp.Replicas,
		Shards:       sp.Shards,
		TrackOK:      true,
		CapOK:        true,
		MesoDriftOK:  true,
		SimulatedDur: sp.Horizon,
	}
	var lat []time.Duration
	var warmLats, drainLats []time.Duration
	nIntervals := len(results[0].IntervalEnergyJ)
	energy := make([]float64, nIntervals)
	for _, s := range results {
		r.Faulted += s.Faulted
		r.Offered += s.Offered
		r.Admitted += s.Admitted
		r.Rejected += s.Rejected
		r.Completed += s.Completed
		r.Batches += s.Batches
		r.BytesCompleted += s.BytesCompleted
		r.GovSteps += s.GovSteps
		r.GovRetries += s.GovRetries
		r.GovFailures += s.GovFailures
		r.Replans += s.Replans
		r.Compensations += s.Compensations
		r.Infeasible += s.Infeasible
		r.Failovers += s.Failovers
		r.WakesOnDemand += s.WakesOnDemand
		if !s.CapOK {
			r.CapOK = false
		}
		if s.CapWorstW > r.CapWorstW {
			r.CapWorstW = s.CapWorstW
		}
		for k, e := range s.IntervalEnergyJ {
			energy[k] += e
		}
		lat = append(lat, s.Latencies...)
		if s.EndAt > r.SimulatedDur {
			r.SimulatedDur = s.EndAt
		}
		r.Events += s.Events
		r.MesoDehydrations += s.MesoDehydrations
		r.MesoRehydrations += s.MesoRehydrations
		r.MesoParkedPeriods += s.MesoParkedPeriods
		r.MesoAggJ += s.MesoAggJ
		r.MesoGroupLanes += s.MesoGroupLanes
		r.MesoGroupBuckets += s.MesoGroupBuckets
		r.MesoGroupScans += s.MesoGroupScans
		r.MesoGroupJ += s.MesoGroupJ
		if s.MesoWorstDriftFrac > r.MesoWorstDriftFrac {
			r.MesoWorstDriftFrac = s.MesoWorstDriftFrac
		}
		if !s.MesoDriftOK {
			r.MesoDriftOK = false
		}
		r.ChurnAdds += s.ChurnAdds
		r.ChurnRemoves += s.ChurnRemoves
		warmLats = append(warmLats, s.WarmupLats...)
		drainLats = append(drainLats, s.DrainLats...)
	}
	r.WarmupP50, r.WarmupMax = latQuantiles(warmLats)
	r.DrainP50, r.DrainMax = latQuantiles(drainLats)

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if n := len(lat); n > 0 {
		fl := make([]float64, n)
		for i, l := range lat {
			fl[i] = float64(l)
		}
		r.LatP50 = time.Duration(stats.Quantile(fl, 0.50))
		r.LatP99 = time.Duration(stats.Quantile(fl, 0.99))
		r.LatMax = lat[n-1]
	}
	// Throughput is bytes over the virtual time the run actually covered,
	// not the nominal horizon: a fault-heavy run whose drain releases held
	// IO past the horizon served those bytes over the longer window, and
	// dividing by the horizon would overstate the rate.
	r.ThroughputMBps = float64(r.BytesCompleted) / 1e6 / r.SimulatedDur.Seconds()

	// Control-plane transitions outside the budget schedule — churn
	// epochs, warm-up completions, rate-schedule boundaries — re-plan the
	// fleet the same way a budget step does, and get the same one-period
	// settle grace. Empty when churn and rate schedules are off, so the
	// interval accounting is unchanged for every existing spec.
	var extraGraces []time.Duration
	for _, ev := range sp.Churn {
		extraGraces = append(extraGraces, ev.At)
		if ev.Add > 0 {
			extraGraces = append(extraGraces, ev.At+ev.Warmup)
		}
	}
	if len(sp.Rates) > 1 {
		for _, rs := range sp.Rates[1:] {
			extraGraces = append(extraGraces, rs.At)
		}
	}

	var totalE float64
	lastStart := time.Duration(nIntervals-1) * sp.ControlPeriod
	for k := 0; k < nIntervals; k++ {
		start := time.Duration(k) * sp.ControlPeriod
		end := start + sp.ControlPeriod
		if end > sp.Horizon {
			end = sp.Horizon
		}
		iv := Interval{
			Start:     start,
			Dur:       end - start,
			BudgetW:   avgBudgetW(sp.Budget, start, end),
			AchievedW: energy[k] / (end - start).Seconds(),
			Checked:   true,
		}
		for _, st := range sp.Budget {
			if stepGraces(st.At, start, end, sp.ControlPeriod, lastStart) {
				iv.Checked = false
			}
		}
		for _, t := range extraGraces {
			if stepGraces(t, start, end, sp.ControlPeriod, lastStart) {
				iv.Checked = false
			}
		}
		totalE += energy[k]
		if iv.Checked {
			over := iv.AchievedW - iv.BudgetW
			if over > r.WorstOverW {
				r.WorstOverW = over
			}
			if iv.AchievedW > iv.BudgetW*(1+sp.CapTolFrac) {
				r.TrackOK = false
			}
		}
		r.Intervals = append(r.Intervals, iv)
	}
	r.AvgPowerW = totalE / sp.Horizon.Seconds()
	return r
}

// latQuantiles returns the p50 and maximum of a latency sample, sorting
// it in place; zeros when the sample is empty.
func latQuantiles(lats []time.Duration) (p50, max time.Duration) {
	if len(lats) == 0 {
		return 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	fl := make([]float64, len(lats))
	for i, l := range lats {
		fl[i] = float64(l)
	}
	return time.Duration(stats.Quantile(fl, 0.50)), lats[len(lats)-1]
}

// budgetAt returns the scheduled fleet budget in force at time t: the
// last step whose time is at or before t (a step binds exactly at its
// own time). ParseSchedule guarantees the first step is at 0 and times
// strictly increase, so the scan's final match is the binding step.
func budgetAt(sched []BudgetStep, t time.Duration) float64 {
	w := sched[0].FleetW
	for _, st := range sched {
		if st.At <= t {
			w = st.FleetW
		}
	}
	return w
}

// stepGraces reports whether the budget step at stepAt graces the
// control interval [start, end). The settle window after a step is
// [stepAt, stepAt+cp): governors get one full control period to pull
// the fleet onto the new plan, so the single interval whose start lies
// in that window is exempt from tracking. Every step thereby graces
// exactly one interval regardless of boundary alignment — a step
// landing exactly on an interval boundary graces that interval, a
// mid-interval step graces the next one (its own interval is instead
// checked against the time-weighted budget, see avgBudgetW). A step
// inside the run's final interval has no following interval to grace,
// so the interval containing it takes the grace. The previous overlap
// rule graced both intervals touching the window, so an unaligned step
// silently stretched the grace toward two periods. lastStart is the
// start of the run's final interval.
func stepGraces(stepAt, start, end, cp, lastStart time.Duration) bool {
	if stepAt <= start && start < stepAt+cp {
		return true
	}
	// First interval start at or after the step; when it lies beyond the
	// final interval the window rule above can never match, and the
	// grace falls back to the interval the step lands in.
	next := (stepAt + cp - 1) / cp * cp
	return next > lastStart && start <= stepAt && stepAt < end
}

// avgBudgetW returns the scheduled budget averaged over [start, end):
// budgetAt(start) when no step lands strictly inside the interval,
// otherwise the exact time-weighted mean across the transition(s). An
// interval split by a step ran part under the old budget and part under
// the new; its energy-derived AchievedW can only be compared against
// the same time weighting.
func avgBudgetW(sched []BudgetStep, start, end time.Duration) float64 {
	t, acc := start, 0.0
	for _, st := range sched {
		if st.At <= start {
			continue
		}
		if st.At >= end {
			break
		}
		acc += budgetAt(sched, t) * float64(st.At-t)
		t = st.At
	}
	if t == start {
		return budgetAt(sched, start)
	}
	acc += budgetAt(sched, t) * float64(end-t)
	return acc / float64(end-start)
}
