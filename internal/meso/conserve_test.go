package meso

import (
	"math"
	"testing"
	"time"
)

// TestGroupChurnConservation is the ledger-conservation property of a
// scale-out-then-drain-back cycle: membership grows through an idle
// (warming) bucket, the warmed members join the serving bucket, the
// rate steps down mid-run, and the churned members leave again. At
// settle time the pool's energy (settled + live + backfill) and IO
// counts must equal the straight integrals of op × members × time and
// rate × members × time — nothing is lost or double-counted across any
// membership or rate boundary.
func TestGroupChurnConservation(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name          string
		rate0, rate1  float64
		base, churned int
		op0, op1      float64 // serving draws before/after the rate step
		warmW         float64
	}{
		{"small", 1000, 500, 10, 4, 8, 6, 12},
		{"big-cohort", 7000, 2500, 96, 32, 9.5, 7.25, 14.6},
		{"rate-up", 1200, 3600, 5, 1, 6.5, 11, 10},
	}
	const bytesPerIO = 4096
	serving := GroupKey{Cohort: 0, State: 1}
	warm := GroupKey{Cohort: 0, State: -1}
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			p := NewGroupPool(tc.rate0, bytesPerIO)

			var backfillJ float64
			fold := func(spans []BackfillSpan) {
				for _, s := range spans {
					backfillJ += s.Joules
				}
			}

			p.SetCount(serving, tc.base, 0)                     // cohort goes live, uncalibrated
			fold(p.Calibrate(serving, tc.op0, ms(100)))         // probe donates the first point
			p.SetIdleCount(warm, tc.churned, tc.warmW, ms(200)) // scale-out: members warm
			p.SetIdleCount(warm, 0, tc.warmW, ms(400))          // warm-up done...
			p.SetCount(serving, tc.base+tc.churned, ms(400))    // ...members serve
			p.SetRate(tc.rate1, ms(600))                        // diurnal rate step
			p.Recalibrate(ms(600))                              // old point no longer valid
			fold(p.Calibrate(serving, tc.op1, ms(700)))         // fresh probe measurement
			p.SetCount(serving, tc.base, ms(800))               // drain-back: churned members leave

			if p.Members() != tc.base {
				t.Fatalf("Members() = %d after drain-back, want %d", p.Members(), tc.base)
			}

			gotJ := p.EnergyJ(ms(1000)) + backfillJ
			ios, bytes := p.SettleIO(ms(1000))

			// Independent integrals of the same schedule.
			seg := func(w float64, n int, from, to time.Duration) float64 {
				return w * float64(n) * (to - from).Seconds()
			}
			wantJ := seg(tc.op0, tc.base, 0, ms(400)) + // first point covers [0,100) via backfill
				seg(tc.warmW, tc.churned, ms(200), ms(400)) +
				seg(tc.op0, tc.base+tc.churned, ms(400), ms(600)) +
				seg(tc.op1, tc.base+tc.churned, ms(600), ms(800)) + // [600,700) via backfill
				seg(tc.op1, tc.base, ms(800), ms(1000))
			wantIO := seg(tc.rate0, tc.base, 0, ms(400)) +
				seg(tc.rate0, tc.base+tc.churned, ms(400), ms(600)) +
				seg(tc.rate1, tc.base+tc.churned, ms(600), ms(800)) +
				seg(tc.rate1, tc.base, ms(800), ms(1000))

			if math.Abs(gotJ-wantJ) > 1e-9*wantJ {
				t.Fatalf("energy ledger leaked across churn: got %.12f J, want %.12f J", gotJ, wantJ)
			}
			// IO integration truncates with one fractional carry, so the
			// count may sit one below the real-valued integral.
			if float64(ios) > wantIO+1e-9 || float64(ios) < wantIO-1 {
				t.Fatalf("IO ledger leaked across churn: got %d, want %.3f (within 1)", ios, wantIO)
			}
			if bytes != ios*bytesPerIO {
				t.Fatalf("bytes %d not ios %d x %d", bytes, ios, bytesPerIO)
			}
			// The ledger is drained: settling again accrues only new time.
			ios2, _ := p.SettleIO(ms(1000))
			if ios2 != 0 {
				t.Fatalf("second settle at the same instant credited %d IOs", ios2)
			}
		})
	}
}
