package meso

import (
	"math"
	"testing"
	"time"
)

func TestSettlementClosedForm(t *testing.T) {
	p := NewPool(2)
	op := OperatingPoint{PowerW: 12.5, IdleW: 4.5, RateIOPS: 1000, BytesPerIO: 4096}
	p.Park(0, op, 2*time.Second)
	if !p.Parked(0) || p.Parked(1) || p.ParkedCount() != 1 {
		t.Fatalf("park bookkeeping: parked(0)=%v parked(1)=%v count=%d", p.Parked(0), p.Parked(1), p.ParkedCount())
	}
	set := p.Unpark(0, 5*time.Second)
	if set.Dur != 3*time.Second {
		t.Fatalf("Dur = %v, want 3s", set.Dur)
	}
	if set.IOs != 3000 {
		t.Fatalf("IOs = %d, want 3000", set.IOs)
	}
	if set.Bytes != 3000*4096 {
		t.Fatalf("Bytes = %d, want %d", set.Bytes, 3000*4096)
	}
	if got, want := set.DynJ, (12.5-4.5)*3.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("DynJ = %v, want %v", got, want)
	}
	if set.PredictedW != 12.5 {
		t.Fatalf("PredictedW = %v, want 12.5", set.PredictedW)
	}
	if p.ParkedCount() != 0 {
		t.Fatalf("ParkedCount = %d after unpark", p.ParkedCount())
	}
}

// TestFractionalCarry: IO credit must not truncate per span — the
// fractional remainder carries so total credit over many short spans
// tracks rate × total parked time exactly.
func TestFractionalCarry(t *testing.T) {
	p := NewPool(1)
	op := OperatingPoint{PowerW: 5, IdleW: 2, RateIOPS: 3, BytesPerIO: 512}
	var total int64
	at := time.Duration(0)
	for k := 0; k < 4; k++ {
		p.Park(0, op, at)
		at += 500 * time.Millisecond
		total += p.Unpark(0, at).IOs
	}
	// 3 IOPS × 2 s total = 6 IOs; naive floor(1.5) per span would give 4.
	if total != 6 {
		t.Fatalf("total IOs over 4×500ms spans = %d, want 6", total)
	}
}

func TestDynEnergyMonotoneAndConsistent(t *testing.T) {
	p := NewPool(3)
	p.Park(0, OperatingPoint{PowerW: 10, IdleW: 4, RateIOPS: 100, BytesPerIO: 512}, 0)

	prev := -1.0
	for _, at := range []time.Duration{0, 500 * time.Millisecond, time.Second} {
		e := p.DynEnergyJ(at)
		if e < prev {
			t.Fatalf("DynEnergyJ not monotone: %v J at %v after %v J", e, at, prev)
		}
		prev = e
	}
	p.Park(1, OperatingPoint{PowerW: 7, IdleW: 3, RateIOPS: 100, BytesPerIO: 512}, 1*time.Second)
	if e := p.DynEnergyJ(2 * time.Second); e < prev {
		t.Fatalf("DynEnergyJ not monotone across a park: %v J after %v J", e, prev)
	}
	// At t=2s: lane0 accrued 6 W × 2 s, lane1 4 W × 1 s.
	if got, want := p.DynEnergyJ(2*time.Second), 6.0*2+4.0*1; math.Abs(got-want) > 1e-9 {
		t.Fatalf("DynEnergyJ(2s) = %v, want %v", got, want)
	}
	// Settling lane0 must not change the total at the settlement time.
	before := p.DynEnergyJ(2 * time.Second)
	set := p.Unpark(0, 2*time.Second)
	if after := p.DynEnergyJ(2 * time.Second); math.Abs(after-before) > 1e-9 {
		t.Fatalf("DynEnergyJ discontinuous across Unpark: %v -> %v", before, after)
	}
	if math.Abs(set.DynJ-12.0) > 1e-9 {
		t.Fatalf("lane0 DynJ = %v, want 12", set.DynJ)
	}
}

// TestIdleClampsDynamic: a calibration where measured idle exceeds the
// measured serving draw must clamp to zero dynamic power, never
// negative energy.
func TestIdleClampsDynamic(t *testing.T) {
	p := NewPool(1)
	p.Park(0, OperatingPoint{PowerW: 3, IdleW: 5, RateIOPS: 10, BytesPerIO: 512}, 0)
	if e := p.DynEnergyJ(10 * time.Second); e != 0 {
		t.Fatalf("DynEnergyJ = %v with idle above serving draw, want 0", e)
	}
	if set := p.Unpark(0, 10*time.Second); set.DynJ != 0 {
		t.Fatalf("DynJ = %v, want 0", set.DynJ)
	}
}

func TestParkStatePanics(t *testing.T) {
	p := NewPool(1)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Unpark hydrated", func() { p.Unpark(0, 0) })
	p.Park(0, OperatingPoint{PowerW: 1, RateIOPS: 1, BytesPerIO: 1}, time.Second)
	mustPanic("double Park", func() { p.Park(0, OperatingPoint{}, 2*time.Second) })
	mustPanic("Unpark before park time", func() { p.Unpark(0, 0) })
}
