package meso

import (
	"fmt"
	"time"
)

// Group-level parking: at fleet sizes past ~10⁵ lanes, even one
// analytic aggregate per lane is too much state and too much per-tick
// work. A GroupPool instead represents an entire cohort of
// interchangeable lanes (same profile, same offered rate, no faults) as
// a handful of buckets keyed by (cohort, planning state), each carrying
// only a member count and one calibrated per-lane operating point. The
// serving engine keeps a few resident probe lanes per cohort running
// mechanistically; every other member is virtual — never materialized —
// and accounted here in O(#buckets) per control period.
//
// Calibration is retroactive: a bucket accrues no live energy until a
// probe lane of its cohort parks at the bucket's state and donates its
// measured draw. The uncalibrated stretch is recorded as pending spans
// (virtual lane-seconds), and Calibrate converts them into backfill
// spans the caller amends into its per-interval accounting — so the
// virtual population's energy is always derived from a measured
// operating point, never from a planning prediction. IO counts need no
// calibration at all (the offered rate is power-state-independent), so
// they accrue per cohort with one exact fractional carry.
//
// Like Pool, everything is pure arithmetic on virtual time: no engine,
// no RNG, deterministic at any host parallelism.

// GroupKey identifies one bucket: a cohort of interchangeable lanes and
// the planning level its members currently hold.
type GroupKey struct {
	Cohort int
	State  int
}

// BackfillSpan is an uncalibrated stretch of virtual serving owed to
// the caller's interval accounting: Joules of energy spread uniformly
// over [From, To).
type BackfillSpan struct {
	From, To time.Duration
	Joules   float64
}

// pendSpan is a closed stretch of uncalibrated membership.
type pendSpan struct {
	from, to time.Duration
	count    int
}

type groupBucket struct {
	key   GroupKey
	count int
	// op is the calibrated per-lane draw in watts; meaningful once
	// calibrated. calN counts the measurements folded into it (running
	// mean), so repeated probe parks refine the point deterministically.
	op         float64
	calibrated bool
	calN       int
	// since is the start of the bucket's current span — live accrual
	// when calibrated, pending when not.
	since time.Duration
	pend  []pendSpan
	// idle buckets hold members that draw power but serve no IO —
	// warming lanes spun up by a churn event. Their operating point is
	// imposed by the caller (SetIdleCount), never probe-calibrated, and
	// they are excluded from cohort IO accrual and recalibration.
	idle bool
}

// cohortIO integrates a cohort's virtual IO: rate is the same at every
// power state, so one counter and one fractional carry per cohort keep
// the credited count exactly rate × member-seconds.
type cohortIO struct {
	count int
	lastT time.Duration
	carry float64
	ios   int64
}

// GroupPool holds the group-parked aggregates of one shard. Not safe
// for concurrent use; shards are single-threaded by construction.
type GroupPool struct {
	rateIOPS   float64 // per-lane offered rate
	bytesPerIO int64

	buckets map[GroupKey]*groupBucket
	order   []*groupBucket // deterministic iteration (insertion order)
	cohorts map[int]*cohortIO

	members  int     // current virtual members across all buckets
	settledJ float64 // closed calibrated spans
}

// NewGroupPool returns an empty pool. rateIOPS is the per-lane offered
// rate and bytesPerIO the request size — uniform across the fleet spec,
// so they are pool-wide.
func NewGroupPool(rateIOPS float64, bytesPerIO int64) *GroupPool {
	return &GroupPool{
		rateIOPS:   rateIOPS,
		bytesPerIO: bytesPerIO,
		buckets:    map[GroupKey]*groupBucket{},
		cohorts:    map[int]*cohortIO{},
	}
}

// bucket returns (creating if needed) the bucket for key.
func (p *GroupPool) bucket(key GroupKey) *groupBucket {
	b, ok := p.buckets[key]
	if !ok {
		b = &groupBucket{key: key}
		p.buckets[key] = b
		p.order = append(p.order, b)
	}
	return b
}

// flush closes the bucket's current span at now: calibrated spans
// settle into the energy ledger, uncalibrated spans append to the
// pending list. Call before any count or op change.
func (b *groupBucket) flush(p *GroupPool, now time.Duration) {
	if b.count > 0 {
		if b.calibrated {
			p.settledJ += b.op * float64(b.count) * (now - b.since).Seconds()
		} else {
			b.pend = append(b.pend, pendSpan{from: b.since, to: now, count: b.count})
		}
	}
	b.since = now
}

// accrueIO integrates a cohort's IO up to now.
func (c *cohortIO) accrue(rate float64, now time.Duration) {
	if c.count > 0 {
		exact := rate*float64(c.count)*(now-c.lastT).Seconds() + c.carry
		n := int64(exact)
		c.ios += n
		c.carry = exact - float64(n)
	}
	c.lastT = now
}

// SetCount sets the member count of a bucket at virtual time now,
// flushing its span so past accrual is unaffected. The cohort's IO
// integration absorbs the membership delta exactly.
func (p *GroupPool) SetCount(key GroupKey, n int, now time.Duration) {
	if n < 0 {
		panic(fmt.Sprintf("meso: bucket %v count %d negative", key, n))
	}
	b := p.bucket(key)
	if n == b.count {
		return
	}
	c, ok := p.cohorts[key.Cohort]
	if !ok {
		c = &cohortIO{lastT: now}
		p.cohorts[key.Cohort] = c
	}
	c.accrue(p.rateIOPS, now)
	b.flush(p, now)
	c.count += n - b.count
	p.members += n - b.count
	b.count = n
}

// SetIdleCount sets the member count of an idle bucket — virtual lanes
// that draw opW watts apiece (power-on warm-up, typically) but serve no
// IO. The bucket is created calibrated at the imposed draw, so its
// energy accrues live with no pending spans, and the cohort's IO
// integration never sees these members. Changing opW flushes the span
// accrued under the previous value first, keeping the ledger exact.
func (p *GroupPool) SetIdleCount(key GroupKey, n int, opW float64, now time.Duration) {
	if n < 0 {
		panic(fmt.Sprintf("meso: idle bucket %v count %d negative", key, n))
	}
	if opW < 0 {
		panic(fmt.Sprintf("meso: idle bucket %v draw %v negative", key, opW))
	}
	b := p.bucket(key)
	if b.count == n && (b.op == opW || b.count == 0) {
		b.idle, b.calibrated, b.op = true, true, opW
		return
	}
	b.flush(p, now)
	b.idle, b.calibrated = true, true
	b.op = opW
	p.members += n - b.count
	b.count = n
}

// SetRate changes the pool-wide per-lane offered rate at virtual time
// now: every cohort's IO integration is settled at the old rate first,
// so the credited counts stay exactly rate × member-seconds across the
// boundary. Callers should follow with Recalibrate — operating points
// measured at the old rate no longer describe the new load.
func (p *GroupPool) SetRate(rateIOPS float64, now time.Duration) {
	if rateIOPS <= 0 {
		panic(fmt.Sprintf("meso: pool rate %v must be positive", rateIOPS))
	}
	for _, c := range p.cohorts {
		c.accrue(p.rateIOPS, now)
	}
	p.rateIOPS = rateIOPS
}

// Recalibrate invalidates every serving bucket's measured operating
// point at virtual time now: the span accrued under the old point is
// settled, and accrual from now on is pending until a probe donates a
// fresh measurement (or settle-time fallback covers it). Idle buckets
// keep their imposed draw — it is load-independent.
func (p *GroupPool) Recalibrate(now time.Duration) {
	for _, b := range p.order {
		if b.idle || !b.calibrated {
			continue
		}
		b.flush(p, now)
		b.calibrated = false
		b.calN = 0
	}
}

// Count returns the bucket's current member count (0 if absent).
func (p *GroupPool) Count(key GroupKey) int {
	if b, ok := p.buckets[key]; ok {
		return b.count
	}
	return 0
}

// Calibrated reports whether the bucket has a measured operating point.
func (p *GroupPool) Calibrated(key GroupKey) bool {
	b, ok := p.buckets[key]
	return ok && b.calibrated
}

// Op returns the bucket's calibrated per-lane draw; meaningful only
// when Calibrated.
func (p *GroupPool) Op(key GroupKey) float64 {
	if b, ok := p.buckets[key]; ok {
		return b.op
	}
	return 0
}

// PendingSince returns the start of the bucket's oldest pending span
// and true when the bucket holds members but no calibration yet.
func (p *GroupPool) PendingSince(key GroupKey) (time.Duration, bool) {
	b, ok := p.buckets[key]
	if !ok || b.calibrated || b.count == 0 {
		return 0, false
	}
	if len(b.pend) > 0 {
		return b.pend[0].from, true
	}
	return b.since, true
}

// Calibrate folds one measured per-lane draw into the bucket. The first
// measurement converts every pending span into backfill owed to the
// caller's interval accounting and starts live accrual; later
// measurements refine the operating point as a running mean (settling
// the span accrued under the previous value first) and return nil.
func (p *GroupPool) Calibrate(key GroupKey, watts float64, now time.Duration) []BackfillSpan {
	if watts < 0 {
		panic(fmt.Sprintf("meso: bucket %v calibrated to negative draw %v", key, watts))
	}
	b := p.bucket(key)
	b.flush(p, now)
	if b.calibrated {
		b.calN++
		b.op += (watts - b.op) / float64(b.calN)
		return nil
	}
	b.calibrated = true
	b.op = watts
	b.calN = 1
	if len(b.pend) == 0 {
		return nil
	}
	// Backfill energy is owed to the CALLER's interval accounting, not
	// this ledger: EnergyJ must stay smooth in now (a settledJ lump here
	// would double-count against the amended intervals and spike any
	// sliding-window probe reading it).
	out := make([]BackfillSpan, 0, len(b.pend))
	for _, s := range b.pend {
		j := watts * float64(s.count) * (s.to - s.from).Seconds()
		out = append(out, BackfillSpan{From: s.from, To: s.to, Joules: j})
	}
	b.pend = nil
	return out
}

// Has reports whether the bucket exists (was ever given members).
func (p *GroupPool) Has(key GroupKey) bool {
	_, ok := p.buckets[key]
	return ok
}

// Members returns the current virtual member count across all buckets.
func (p *GroupPool) Members() int { return p.members }

// Buckets returns how many distinct buckets exist (ever created).
func (p *GroupPool) Buckets() int { return len(p.order) }

// LiveBuckets returns how many buckets currently hold members — the
// per-control-period scan cost.
func (p *GroupPool) LiveBuckets() int {
	n := 0
	for _, b := range p.order {
		if b.count > 0 {
			n++
		}
	}
	return n
}

// EnergyJ returns the energy the pool accounts up to now: settled spans
// plus live accrual of calibrated buckets. Pending (uncalibrated) spans
// are excluded until Calibrate converts them to backfill, so the value
// is smooth and monotone in now — safe to feed a sliding-window cap
// probe. O(#buckets).
func (p *GroupPool) EnergyJ(now time.Duration) float64 {
	j := p.settledJ
	for _, b := range p.order {
		if b.calibrated && b.count > 0 {
			j += b.op * float64(b.count) * (now - b.since).Seconds()
		}
	}
	return j
}

// SettleIO integrates every cohort's virtual IO through now and returns
// the total synthetic counts accrued since the last call. Map iteration
// order is irrelevant: cohorts integrate independently and the results
// are summed.
func (p *GroupPool) SettleIO(now time.Duration) (ios, bytes int64) {
	for _, c := range p.cohorts {
		c.accrue(p.rateIOPS, now)
		ios += c.ios
		c.ios = 0
	}
	return ios, ios * p.bytesPerIO
}
