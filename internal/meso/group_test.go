package meso

import (
	"math"
	"testing"
	"time"
)

func TestGroupPoolBackfillConservation(t *testing.T) {
	t.Parallel()
	p := NewGroupPool(1000, 4096)
	key := GroupKey{Cohort: 0, State: 2}

	// Uncalibrated members accrue nothing live, only pending spans.
	p.SetCount(key, 100, 0)
	if got := p.EnergyJ(500 * time.Millisecond); got != 0 {
		t.Fatalf("uncalibrated bucket accrued %v J live", got)
	}
	p.SetCount(key, 60, 500*time.Millisecond) // splits the pending span

	spans := p.Calibrate(key, 5.0, 1*time.Second)
	// 100 lanes × 0.5 s + 60 lanes × 0.5 s = 80 lane-seconds at 5 W.
	var sum float64
	for _, s := range spans {
		sum += s.Joules
	}
	if want := 5.0 * 80; math.Abs(sum-want) > 1e-9 {
		t.Fatalf("backfill sums to %v J, want %v", sum, want)
	}
	// Backfill is owed to the caller, not the live ledger: forward
	// accrual starts at the calibration instant.
	if got := p.EnergyJ(1 * time.Second); got != 0 {
		t.Fatalf("ledger jumped by %v J at calibration", got)
	}
	if got, want := p.EnergyJ(2*time.Second), 5.0*60*1.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("live accrual %v J, want %v", got, want)
	}
	if p.Members() != 60 {
		t.Fatalf("Members = %d, want 60", p.Members())
	}
}

func TestGroupPoolRecalibrationRunningMean(t *testing.T) {
	t.Parallel()
	p := NewGroupPool(1000, 4096)
	key := GroupKey{Cohort: 1, State: 0}
	p.SetCount(key, 10, 0)
	if spans := p.Calibrate(key, 4.0, 1*time.Second); len(spans) != 1 {
		t.Fatalf("first calibration returned %d spans, want 1", len(spans))
	}
	// Second measurement settles the span under the old op then refines
	// it: mean(4, 6) = 5 W forward.
	if spans := p.Calibrate(key, 6.0, 2*time.Second); spans != nil {
		t.Fatalf("recalibration returned backfill: %v", spans)
	}
	if got := p.Op(key); got != 5.0 {
		t.Fatalf("running mean = %v, want 5", got)
	}
	// [1s,2s) at 4 W ×10 lanes settled, [2s,3s) at 5 W ×10 live.
	if got, want := p.EnergyJ(3*time.Second), 4.0*10+5.0*10; math.Abs(got-want) > 1e-9 {
		t.Fatalf("ledger %v J, want %v", got, want)
	}
}

func TestGroupPoolIOCarryExact(t *testing.T) {
	t.Parallel()
	// 333 IOPS per lane: fractional counts must carry exactly across
	// arbitrarily sliced spans.
	p := NewGroupPool(333, 512)
	key := GroupKey{Cohort: 0, State: 0}
	p.SetCount(key, 7, 0)
	// Slice the timeline at awkward points via count changes.
	p.SetCount(key, 7, 137*time.Millisecond)  // no-op change is ignored
	p.SetCount(key, 11, 391*time.Millisecond) // membership delta
	p.SetCount(key, 11, 700*time.Millisecond)
	ios, bytes := p.SettleIO(1 * time.Second)
	// Exact lane-seconds: 7×0.391 + 11×0.609.
	var exact float64 = 333 * (7*0.391 + 11*0.609)
	if want := int64(exact); ios != want {
		t.Fatalf("ios = %d, want %d (exact %v)", ios, want, exact)
	}
	if bytes != ios*512 {
		t.Fatalf("bytes = %d, want ios×512", bytes)
	}
	// The remaining fraction carries: another settle later continues
	// from the fractional remainder, never re-counting.
	ios2, _ := p.SettleIO(2 * time.Second)
	var exact2 float64 = 333 * (7*0.391 + 11*1.609)
	total := int64(exact2)
	if ios+ios2 != total {
		t.Fatalf("carry drifted: %d + %d != %d", ios, ios2, total)
	}
}

func TestGroupPoolBucketsAndCounts(t *testing.T) {
	t.Parallel()
	p := NewGroupPool(100, 512)
	a, b := GroupKey{0, 0}, GroupKey{0, 2}
	p.SetCount(a, 5, 0)
	p.SetCount(b, 3, 0)
	if p.Buckets() != 2 || p.LiveBuckets() != 2 || p.Members() != 8 {
		t.Fatalf("buckets=%d live=%d members=%d", p.Buckets(), p.LiveBuckets(), p.Members())
	}
	p.SetCount(b, 0, 1*time.Second)
	if p.Buckets() != 2 || p.LiveBuckets() != 1 || p.Members() != 5 {
		t.Fatalf("after drain: buckets=%d live=%d members=%d", p.Buckets(), p.LiveBuckets(), p.Members())
	}
	if !p.Has(a) || p.Has(GroupKey{9, 9}) {
		t.Fatal("Has misreports bucket existence")
	}
	if _, ok := p.PendingSince(a); !ok {
		t.Fatal("uncalibrated live bucket should report pending")
	}
}
