// Package meso is the analytic half of the mesoscale aggregation tier:
// closed-form stand-ins for replica groups that have settled into a
// steady operating point and no longer need event-by-event simulation.
//
// The serving engine (internal/serve) watches each lane for a steady
// fingerprint — no rejections, no failovers, settled power states, a
// near-empty queue — and after a dwell threshold calibrates the lane's
// operating point from its own mechanistic history: the measured draw
// over the last steady control period, and the measured quiesced draw
// of the same devices in the same power states. The lane then parks
// here. While parked, the devices still exist and their lazy energy
// meters keep accruing exact idle energy, so the Pool accounts only the
// calibrated *dynamic* delta (PowerW − IdleW) and the synthetic IO
// counts; nothing is double-counted. Unparking settles the closed-form
// totals back into the mechanistic ledgers.
//
// Everything here is pure arithmetic on virtual time — no engine, no
// RNG — so a parked lane costs zero kernel events and the tier cannot
// perturb determinism: for a fixed spec the settlements are identical
// at any host parallelism.
package meso

import (
	"fmt"
	"time"
)

// OperatingPoint is the calibrated steady state a parked lane is
// assumed to hold: its total electrical draw while serving, the draw
// its quiesced devices keep accruing mechanistically, and the offered
// load it absorbs.
type OperatingPoint struct {
	// PowerW is the lane's calibrated total draw at the operating
	// point, measured over its last steady control period.
	PowerW float64
	// IdleW is the draw the lane's devices accrue through their own
	// meters while parked (awake-idle in their held power states),
	// measured over a quiesced period. The Pool accounts the dynamic
	// difference PowerW − IdleW; the meters keep the rest.
	IdleW float64
	// RateIOPS is the lane's offered arrival rate; parked spans credit
	// IO counts at exactly this rate.
	RateIOPS float64
	// BytesPerIO converts synthetic IO counts to bytes.
	BytesPerIO int64
}

// dynW is the dynamic draw the pool accounts above the meters,
// clamped non-negative: a calibration quirk (measured idle above
// measured serving draw) must not make energy run backward.
func (op OperatingPoint) dynW() float64 {
	if d := op.PowerW - op.IdleW; d > 0 {
		return d
	}
	return 0
}

// Settlement is what one parked span owes the mechanistic ledgers when
// the lane rehydrates: synthetic IO counts at the operating point's
// rate, the bytes they moved, and the dynamic energy above idle.
type Settlement struct {
	IOs   int64
	Bytes int64
	// DynJ is the dynamic energy (above the meters' idle accrual) the
	// span consumed.
	DynJ float64
	// Dur is the span's length.
	Dur time.Duration
	// PredictedW is the operating point's total draw — what a sentinel
	// re-measurement compares its fresh mechanistic reading against.
	PredictedW float64
}

type agg struct {
	op     OperatingPoint
	since  time.Duration
	parked bool
	// carry is the fractional IO left over from previous spans, so the
	// credited count never drifts from rate × total parked time no
	// matter how spans are sliced by rehydrations.
	carry float64
}

// Pool holds the parked aggregates of one shard. It is not safe for
// concurrent use; shards are single-threaded by construction.
type Pool struct {
	aggs   []agg
	parked int

	// O(1) dynamic-energy bookkeeping: settled spans plus, for live
	// spans, sumDynW·now − offset where offset = Σ dynW·since.
	settledJ float64
	sumDynW  float64
	offsetJ  float64
}

// NewPool returns a pool for n lanes, all hydrated.
func NewPool(n int) *Pool {
	return &Pool{aggs: make([]agg, n)}
}

// Grow extends the pool to cover n lanes (hydrated), so a lane
// lifecycle that admits lanes mid-run can park them later. Shrinking
// never happens — retired lanes simply stay hydrated.
func (p *Pool) Grow(n int) {
	for len(p.aggs) < n {
		p.aggs = append(p.aggs, agg{})
	}
}

// Park dehydrates lane i at virtual time now onto the given operating
// point. The lane must not already be parked.
func (p *Pool) Park(i int, op OperatingPoint, now time.Duration) {
	a := &p.aggs[i]
	if a.parked {
		panic(fmt.Sprintf("meso: lane %d parked twice", i))
	}
	a.op = op
	a.since = now
	a.parked = true
	p.parked++
	p.sumDynW += op.dynW()
	p.offsetJ += op.dynW() * a.since.Seconds()
}

// Unpark rehydrates lane i at virtual time now and returns the span's
// settlement. The lane must be parked and now must not precede its
// park time.
func (p *Pool) Unpark(i int, now time.Duration) Settlement {
	a := &p.aggs[i]
	if !a.parked {
		panic(fmt.Sprintf("meso: lane %d unparked while hydrated", i))
	}
	if now < a.since {
		panic(fmt.Sprintf("meso: lane %d unparked at %v, before its park time %v", i, now, a.since))
	}
	dur := now - a.since
	sec := dur.Seconds()
	exact := a.op.RateIOPS*sec + a.carry
	ios := int64(exact)
	a.carry = exact - float64(ios)
	dynJ := a.op.dynW() * sec

	a.parked = false
	p.parked--
	p.sumDynW -= a.op.dynW()
	p.offsetJ -= a.op.dynW() * a.since.Seconds()
	p.settledJ += dynJ

	return Settlement{
		IOs:        ios,
		Bytes:      ios * a.op.BytesPerIO,
		DynJ:       dynJ,
		Dur:        dur,
		PredictedW: a.op.PowerW,
	}
}

// Parked reports whether lane i is currently parked.
func (p *Pool) Parked(i int) bool { return p.aggs[i].parked }

// ParkedCount returns how many lanes are currently parked.
func (p *Pool) ParkedCount() int { return p.parked }

// Op returns lane i's operating point; meaningful only while parked.
func (p *Pool) Op(i int) OperatingPoint { return p.aggs[i].op }

// DynEnergyJ returns the total dynamic energy the pool accounts up to
// virtual time now: settled spans plus the live accrual of every
// currently-parked lane. now must be at or after every live park time
// (virtual time is monotone, so any caller reading the engine clock
// satisfies this). It is O(1) and monotone in now, so a shard's
// EnergyJ (devices + pool) stays a valid source for the sliding-window
// cap probe while lanes are parked.
func (p *Pool) DynEnergyJ(now time.Duration) float64 {
	return p.settledJ + p.sumDynW*now.Seconds() - p.offsetJ
}
