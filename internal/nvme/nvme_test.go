package nvme

import (
	"testing"

	"wattio/internal/catalog"
	"wattio/internal/sim"
)

func newCtrl(t *testing.T) *Controller {
	t.Helper()
	eng := sim.NewEngine()
	dev := catalog.NewSSD2(eng, sim.NewRNG(1))
	c, err := NewController(dev)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewControllerRejectsSATA(t *testing.T) {
	eng := sim.NewEngine()
	dev := catalog.NewSSD3(eng, sim.NewRNG(1))
	if _, err := NewController(dev); err == nil {
		t.Fatal("SATA device accepted as NVMe controller")
	}
}

func TestIdentifyPowerStateTable(t *testing.T) {
	c := newCtrl(t)
	id := c.Identify()
	if id.ModelNumber != "Intel D7-P5510" {
		t.Errorf("model = %q", id.ModelNumber)
	}
	if id.NPSS != 2 {
		t.Errorf("NPSS = %d, want 2 (three states)", id.NPSS)
	}
	if len(id.PSD) != 3 {
		t.Fatalf("PSD has %d entries, want 3", len(id.PSD))
	}
	// SSD2's descriptor table: ps0 < 25 W, ps1 12 W, ps2 10 W.
	want := []uint32{2500, 1200, 1000}
	for i, w := range want {
		if id.PSD[i].MaxPowerCentiW != w {
			t.Errorf("PSD[%d].MP = %d centiW, want %d", i, id.PSD[i].MaxPowerCentiW, w)
		}
	}
	if id.PSD[1].EntryLatUs != 100 {
		t.Errorf("ENLAT = %d µs, want 100", id.PSD[1].EntryLatUs)
	}
}

func TestSetGetPowerStateRoundTrip(t *testing.T) {
	c := newCtrl(t)
	for _, ps := range []int{2, 1, 0} {
		if err := c.SetPowerState(ps); err != nil {
			t.Fatalf("SetPowerState(%d): %v", ps, err)
		}
		got, err := c.GetPowerState()
		if err != nil {
			t.Fatal(err)
		}
		if got != ps {
			t.Errorf("GetPowerState = %d, want %d", got, ps)
		}
		if c.Device().PowerStateIndex() != ps {
			t.Errorf("device power state = %d, want %d", c.Device().PowerStateIndex(), ps)
		}
	}
}

func TestSetPowerStateOutOfRange(t *testing.T) {
	c := newCtrl(t)
	if err := c.SetPowerState(7); err == nil {
		t.Error("nonexistent power state accepted")
	}
	if err := c.SetPowerState(-1); err == nil {
		t.Error("negative power state accepted")
	}
	if err := c.SetPowerState(32); err == nil {
		t.Error("power state beyond field width accepted")
	}
}

func TestExecuteRawCommands(t *testing.T) {
	c := newCtrl(t)
	cases := []struct {
		name string
		cmd  Command
		want StatusCode
	}{
		{"set PM", Command{Opcode: OpSetFeatures, CDW10: uint32(FIDPowerManagement), CDW11: 1}, SCSuccess},
		{"get PM", Command{Opcode: OpGetFeatures, CDW10: uint32(FIDPowerManagement)}, SCSuccess},
		{"identify ctrl", Command{Opcode: OpIdentify, CDW10: 1}, SCSuccess},
		{"identify bad CNS", Command{Opcode: OpIdentify, CDW10: 9}, SCInvalidField},
		{"unknown opcode", Command{Opcode: OpDeleteSQ}, SCInvalidOpcode},
		{"unsupported FID", Command{Opcode: OpSetFeatures, CDW10: uint32(FIDArbitration)}, SCInvalidField},
		{"set PM bad state", Command{Opcode: OpSetFeatures, CDW10: uint32(FIDPowerManagement), CDW11: 30}, SCInvalidField},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := c.Execute(tc.cmd).Status; got != tc.want {
				t.Errorf("status = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestGetFeatureReflectsSetFeature(t *testing.T) {
	c := newCtrl(t)
	c.Execute(Command{Opcode: OpSetFeatures, CDW10: uint32(FIDPowerManagement), CDW11: 2})
	comp := c.Execute(Command{Opcode: OpGetFeatures, CDW10: uint32(FIDPowerManagement)})
	if comp.Result != 2 {
		t.Errorf("result = %d, want 2", comp.Result)
	}
}

func TestStatusCodeStrings(t *testing.T) {
	if SCSuccess.String() == "" || SCInvalidOpcode.String() == "" || StatusCode(0x99).String() == "" {
		t.Error("empty status string")
	}
}

func TestAPSTFeatureOnClientSSD(t *testing.T) {
	eng := sim.NewEngine()
	dev := catalog.NewC960(eng, sim.NewRNG(1))
	c, err := NewController(dev)
	if err != nil {
		t.Fatal(err)
	}
	on, err := c.GetAPST()
	if err != nil {
		t.Fatal(err)
	}
	if !on {
		t.Error("C960 ships with APST enabled")
	}
	if err := c.SetAPST(false); err != nil {
		t.Fatal(err)
	}
	if on, _ = c.GetAPST(); on {
		t.Error("APST still enabled after disable")
	}
	if err := c.SetAPST(true); err != nil {
		t.Fatal(err)
	}
	if on, _ = c.GetAPST(); !on {
		t.Error("APST not re-enabled")
	}
}

func TestAPSTFeatureRejectedOnDataCenterSSD(t *testing.T) {
	c := newCtrl(t) // SSD2: no non-operational states
	if err := c.SetAPST(true); err == nil {
		t.Error("APST accepted on device without non-op states")
	}
	// Reading the feature succeeds and reports disabled: the feature
	// register exists even when no non-operational states back it.
	on, err := c.GetAPST()
	if err != nil {
		t.Fatal(err)
	}
	if on {
		t.Error("APST reported enabled on device without non-op states")
	}
}
