// Package nvme provides the NVMe admin-command surface the paper drives
// with nvme-cli: Identify Controller with its power-state descriptor
// table, and Get/Set Features for Power Management (FID 0x02). The
// command encoding mirrors the spec closely enough that a hardware
// ioctl backend could be substituted for the simulator.
package nvme

import (
	"fmt"

	"wattio/internal/device"
)

// Admin opcodes (NVMe spec §5).
const (
	OpDeleteSQ    uint8 = 0x00
	OpIdentify    uint8 = 0x06
	OpSetFeatures uint8 = 0x09
	OpGetFeatures uint8 = 0x0A
)

// Feature identifiers (NVMe spec §5.27.1).
const (
	FIDArbitration     uint8 = 0x01
	FIDPowerManagement uint8 = 0x02
	FIDAutonomousPST   uint8 = 0x0C
)

// apstDevice is the optional capability devices with non-operational
// power states implement (client SSDs; see ssd.Config.NonOpStates).
type apstDevice interface {
	SetAPST(bool) error
	APST() bool
}

// StatusCode is an NVMe completion status (generic command set).
type StatusCode uint16

// Completion status codes.
const (
	SCSuccess       StatusCode = 0x00
	SCInvalidOpcode StatusCode = 0x01
	SCInvalidField  StatusCode = 0x02
)

// String returns the spec name of the status code.
func (s StatusCode) String() string {
	switch s {
	case SCSuccess:
		return "Successful Completion"
	case SCInvalidOpcode:
		return "Invalid Command Opcode"
	case SCInvalidField:
		return "Invalid Field in Command"
	}
	return fmt.Sprintf("Status 0x%02x", uint16(s))
}

// Command is a simplified admin submission-queue entry: the opcode plus
// the two dwords the power-management feature uses.
type Command struct {
	Opcode uint8
	CDW10  uint32 // FID for features; CNS for identify
	CDW11  uint32 // feature value (PS in bits 4:0 for FID 0x02)
}

// Completion carries the status and result dword of an admin command.
type Completion struct {
	Status StatusCode
	Result uint32
}

// PowerStateDesc is one entry of the Identify Controller power-state
// descriptor table, in the spec's units.
type PowerStateDesc struct {
	MaxPowerCentiW uint32 // MP: maximum power in 0.01 W units
	EntryLatUs     uint32 // ENLAT
	ExitLatUs      uint32 // EXLAT
}

// IdentifyController is the subset of the Identify Controller data
// structure the study uses.
type IdentifyController struct {
	ModelNumber string
	NPSS        uint8 // number of power states minus one
	PSD         []PowerStateDesc
}

// Controller exposes the admin surface of one NVMe device.
type Controller struct {
	dev device.Device
}

// NewController attaches to an NVMe device. SATA devices are rejected:
// they have no NVMe admin queue.
func NewController(dev device.Device) (*Controller, error) {
	if dev.Protocol() != device.NVMe {
		return nil, fmt.Errorf("nvme: %s is %s, not NVMe", dev.Name(), dev.Protocol())
	}
	return &Controller{dev: dev}, nil
}

// Device returns the underlying device.
func (c *Controller) Device() device.Device { return c.dev }

// Execute processes one admin command synchronously, the way the kernel
// admin queue pair would.
func (c *Controller) Execute(cmd Command) Completion {
	switch cmd.Opcode {
	case OpGetFeatures:
		switch uint8(cmd.CDW10) {
		case FIDPowerManagement:
			return Completion{Status: SCSuccess, Result: uint32(c.dev.PowerStateIndex()) & 0x1F}
		case FIDAutonomousPST:
			a, ok := c.dev.(apstDevice)
			if !ok {
				return Completion{Status: SCInvalidField}
			}
			var v uint32
			if a.APST() {
				v = 1
			}
			return Completion{Status: SCSuccess, Result: v}
		default:
			return Completion{Status: SCInvalidField}
		}
	case OpSetFeatures:
		switch uint8(cmd.CDW10) {
		case FIDPowerManagement:
			ps := int(cmd.CDW11 & 0x1F)
			if err := c.dev.SetPowerState(ps); err != nil {
				return Completion{Status: SCInvalidField}
			}
			return Completion{Status: SCSuccess}
		case FIDAutonomousPST:
			a, ok := c.dev.(apstDevice)
			if !ok {
				return Completion{Status: SCInvalidField}
			}
			if err := a.SetAPST(cmd.CDW11&1 == 1); err != nil {
				return Completion{Status: SCInvalidField}
			}
			return Completion{Status: SCSuccess}
		default:
			return Completion{Status: SCInvalidField}
		}
	case OpIdentify:
		// Identify transfers a data buffer out of band; callers use the
		// typed Identify method. The command itself just succeeds for
		// CNS=1 (controller).
		if cmd.CDW10 != 1 {
			return Completion{Status: SCInvalidField}
		}
		return Completion{Status: SCSuccess}
	default:
		return Completion{Status: SCInvalidOpcode}
	}
}

// Identify returns the controller identification with the power-state
// descriptor table.
func (c *Controller) Identify() IdentifyController {
	states := c.dev.PowerStates()
	id := IdentifyController{
		ModelNumber: c.dev.Model(),
		PSD:         make([]PowerStateDesc, len(states)),
	}
	if len(states) > 0 {
		id.NPSS = uint8(len(states) - 1)
	}
	for i, ps := range states {
		id.PSD[i] = PowerStateDesc{
			MaxPowerCentiW: uint32(ps.MaxPowerW * 100),
			EntryLatUs:     uint32(ps.EntryLatency.Microseconds()),
			ExitLatUs:      uint32(ps.ExitLatency.Microseconds()),
		}
	}
	return id
}

// SetPowerState issues Set Features (Power Management) for ps.
func (c *Controller) SetPowerState(ps int) error {
	if ps < 0 || ps > 0x1F {
		return fmt.Errorf("nvme: power state %d out of field range", ps)
	}
	comp := c.Execute(Command{Opcode: OpSetFeatures, CDW10: uint32(FIDPowerManagement), CDW11: uint32(ps)})
	if comp.Status != SCSuccess {
		return fmt.Errorf("nvme: set power state %d: %s", ps, comp.Status)
	}
	return nil
}

// GetPowerState issues Get Features (Power Management).
func (c *Controller) GetPowerState() (int, error) {
	comp := c.Execute(Command{Opcode: OpGetFeatures, CDW10: uint32(FIDPowerManagement)})
	if comp.Status != SCSuccess {
		return 0, fmt.Errorf("nvme: get power state: %s", comp.Status)
	}
	return int(comp.Result & 0x1F), nil
}

// SetAPST issues Set Features (Autonomous Power State Transition).
func (c *Controller) SetAPST(enable bool) error {
	var v uint32
	if enable {
		v = 1
	}
	comp := c.Execute(Command{Opcode: OpSetFeatures, CDW10: uint32(FIDAutonomousPST), CDW11: v})
	if comp.Status != SCSuccess {
		return fmt.Errorf("nvme: set APST: %s", comp.Status)
	}
	return nil
}

// GetAPST issues Get Features (Autonomous Power State Transition).
func (c *Controller) GetAPST() (bool, error) {
	comp := c.Execute(Command{Opcode: OpGetFeatures, CDW10: uint32(FIDAutonomousPST)})
	if comp.Status != SCSuccess {
		return false, fmt.Errorf("nvme: get APST: %s", comp.Status)
	}
	return comp.Result&1 == 1, nil
}
