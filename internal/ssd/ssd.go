package ssd

import (
	"fmt"
	"time"

	"wattio/internal/device"
	"wattio/internal/power"
	"wattio/internal/sim"
	"wattio/internal/telemetry"
)

// mode is the device's standby state machine.
type mode int

const (
	awake mode = iota
	entering
	standby
	waking
)

// SSD is a simulated solid-state drive. It implements device.Device.
type SSD struct {
	cfg Config
	eng *sim.Engine
	rng *sim.RNG

	meter   *power.Meter
	cCtrl   power.Component
	cIface  power.Component
	cCmd    power.Component
	cRipple power.Component
	cTrans  power.Component
	cDies   []power.Component

	reg          *power.Regulator
	psIndex      int
	stateReadyAt time.Duration

	// Serialized resources, as busy-until horizons. Each has an event
	// chain: its events are time-ordered by construction, so they ride
	// one heap slot apiece instead of swelling the engine's heap.
	cmdFreeAt  time.Duration
	linkFreeAt time.Duration
	dieFreeAt  []time.Duration
	chCmd      *sim.Chain
	chLink     *sim.Chain
	chDies     []*sim.Chain
	chReady    *sim.Chain // admit-derived release events (loose-ordered)
	chInsert   *sim.Chain // DRAM insert completions (loose-ordered)

	// Free lists for the pooled IO-path records (see io.go).
	freeOp   *ssdOp
	freePage *pageOp

	// FTL state. hostPending and ampPending are bytes accumulated in
	// open pages awaiting a full-page program; a flush timer programs
	// partial pages when the stream goes quiet.
	nextDie      int
	lastWriteEnd int64
	hostPending  int64
	ampPending   int64
	flushTimer   *sim.Timer

	// Write buffer.
	bufFree    int64
	bufWaiters []bufWaiter

	// Standby state machine.
	mode    mode
	pending []pendingIO

	// APST (non-operational idle states).
	apstEnabled bool
	nonOpIndex  int // -1 when operational
	apstTimer   *sim.Timer
	apstArmed   bool

	// Activity tracking for the ripple process.
	inflight      int
	rippleRunning bool
	rippleBurst   bool
	rippleTimer   *sim.Timer

	// Derived constants.
	pageXfer    time.Duration
	pulseWRead  float64 // controller cmd-pulse draw for a read command
	pulseWWrite float64 // controller cmd-pulse draw for a write command
	eRead       float64 // regulated energy per page read
	eProg       float64 // regulated energy per page program
	pReadEff    float64 // effective die power during a read op
	pProgEff    float64 // effective die power during a program op

	// Telemetry. All handles are nil-safe no-ops when the engine has no
	// telemetry attached.
	tr       *telemetry.Tracer
	laneDies []string // tracer lane per die
	lane     string   // tracer lane for device-level instants
	taps     taps
}

// taps holds the device's metric handles, fetched once at construction.
type taps struct {
	stalls       *telemetry.Counter
	stallNs      *telemetry.Histogram
	throttleRels *telemetry.Counter
	pageFlushes  *telemetry.Counter
	diesBusy     *telemetry.Gauge
	pagePrograms *telemetry.Counter
	pageReads    *telemetry.Counter
	standbys     *telemetry.Counter
	wakes        *telemetry.Counter
}

type bufWaiter struct {
	bytes int64
	cont  func()
}

type pendingIO struct {
	r    device.Request
	done func()
}

// New constructs an SSD attached to the engine, drawing idle power from
// time zero. The RNG seeds the activity-ripple process.
func New(cfg Config, eng *sim.Engine, rng *sim.RNG) (*SSD, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &SSD{
		cfg:         cfg,
		eng:         eng,
		rng:         rng.Stream("ssd/" + cfg.Name),
		meter:       power.NewMeter(eng.Now()),
		bufFree:     cfg.BufferBytes,
		apstEnabled: cfg.APSTDefault,
		nonOpIndex:  -1,
	}
	d.cCtrl = d.meter.AddComponent("controller", cfg.PController)
	d.cIface = d.meter.AddComponent("interface", cfg.PIfaceIdle)
	d.cCmd = d.meter.AddComponent("cmd", 0)
	d.cRipple = d.meter.AddComponent("ripple", 0)
	d.cTrans = d.meter.AddComponent("transition", 0)
	n := cfg.Dies()
	d.cDies = make([]power.Component, n)
	d.dieFreeAt = make([]time.Duration, n)
	d.chDies = make([]*sim.Chain, n)
	for i := range d.cDies {
		d.cDies[i] = d.meter.AddComponent(fmt.Sprintf("die%d", i), 0)
		d.chDies[i] = eng.NewChain()
	}
	d.chCmd = eng.NewChain()
	d.chLink = eng.NewChain()
	d.chReady = eng.NewChain()
	d.chInsert = eng.NewChain()

	reg := eng.Metrics()
	d.taps = taps{
		stalls:       reg.Counter("ssd_regulator_stalls_total"),
		stallNs:      reg.Histogram("ssd_regulator_stall_ns"),
		throttleRels: reg.Counter("ssd_throttle_releases_total"),
		pageFlushes:  reg.Counter("ssd_open_page_flushes_total"),
		diesBusy:     reg.Gauge("ssd_dies_busy"),
		pagePrograms: reg.Counter("ssd_page_programs_total"),
		pageReads:    reg.Counter("ssd_page_reads_total"),
		standbys:     reg.Counter("ssd_standby_enters_total"),
		wakes:        reg.Counter("ssd_wakes_total"),
	}
	d.tr = eng.Tracer()
	if d.tr.Enabled() {
		d.lane = cfg.Name
		d.laneDies = make([]string, n)
		for i := range d.laneDies {
			d.laneDies[i] = fmt.Sprintf("%s/die%d", cfg.Name, i)
		}
	}

	d.pageXfer = time.Duration(float64(cfg.PageSize) / (cfg.ChannelMBps * 1e6) * float64(time.Second))
	if cfg.CmdTimeRead > 0 {
		d.pulseWRead = cfg.ECmdReadJ / cfg.CmdTimeRead.Seconds()
	}
	if cfg.CmdTimeWrite > 0 {
		d.pulseWWrite = cfg.ECmdWriteJ / cfg.CmdTimeWrite.Seconds()
	}
	readDur := (cfg.TRead + d.pageXfer).Seconds()
	progDur := (cfg.TProg + d.pageXfer).Seconds()
	d.eRead = cfg.PDieRead*cfg.TRead.Seconds() + cfg.EPageXferJ
	d.eProg = cfg.PDieProg*cfg.TProg.Seconds() + cfg.EPageXferJ
	d.pReadEff = d.eRead / readDur
	d.pProgEff = d.eProg / progDur

	d.reg = power.Uncapped()
	if len(cfg.PowerStates) > 0 {
		if err := d.SetPowerState(0); err != nil {
			return nil, err
		}
	}
	d.armAPST()
	return d, nil
}

// Name implements device.Device.
func (d *SSD) Name() string { return d.cfg.Name }

// Model implements device.Device.
func (d *SSD) Model() string { return d.cfg.Model }

// Protocol implements device.Device.
func (d *SSD) Protocol() device.Protocol { return d.cfg.Protocol }

// CapacityBytes implements device.Device.
func (d *SSD) CapacityBytes() int64 { return d.cfg.CapacityBytes }

// Config returns the device's configuration.
func (d *SSD) Config() Config { return d.cfg }

// InstantPower implements device.Device.
func (d *SSD) InstantPower() float64 { return d.meter.Instant(d.eng.Now()) }

// EnergyJ implements device.Device.
func (d *SSD) EnergyJ() float64 { return d.meter.Energy(d.eng.Now()) }

// EnergyComponents returns the per-component accounted energies in
// joules up to the current virtual time. The components partition
// EnergyJ; the telemetry energy-conservation probe checks that.
func (d *SSD) EnergyComponents() (names []string, joules []float64) {
	return d.meter.Names(), d.meter.EnergyBreakdown(d.eng.Now())
}

// PowerBreakdown returns the instantaneous draw of each electrical
// component, with per-die draws folded into one "dies" entry.
func (d *SSD) PowerBreakdown() (names []string, watts []float64) {
	bd := d.meter.Breakdown()
	names = []string{"controller", "interface", "cmd", "ripple", "transition", "dies"}
	watts = make([]float64, 6)
	copy(watts, bd[:5])
	for _, w := range bd[5:] {
		watts[5] += w
	}
	return names, watts
}

// PowerStates implements device.Device.
func (d *SSD) PowerStates() []device.PowerState {
	out := make([]device.PowerState, len(d.cfg.PowerStates))
	copy(out, d.cfg.PowerStates)
	return out
}

// PowerStateIndex implements device.Device.
func (d *SSD) PowerStateIndex() int { return d.psIndex }

// SetPowerState implements device.Device. The new cap takes effect after
// the descriptor's entry latency; admissions pause until then, modeling
// the transition stall.
func (d *SSD) SetPowerState(index int) error {
	if len(d.cfg.PowerStates) == 0 {
		return device.ErrNotSupported
	}
	if index < 0 || index >= len(d.cfg.PowerStates) {
		return fmt.Errorf("%w: %d of %d", device.ErrBadPowerState, index, len(d.cfg.PowerStates))
	}
	ps := d.cfg.PowerStates[index]
	d.psIndex = index
	now := d.eng.Now()
	ready := now + ps.EntryLatency
	if ready > d.stateReadyAt {
		d.stateReadyAt = ready
	}
	if ps.MaxPowerW == 0 {
		d.reg = power.Uncapped()
	} else {
		d.reg = power.NewRegulator(ps.MaxPowerW-d.cfg.IdleFloorW(), d.cfg.CapBurst, now)
	}
	return nil
}

// Standby implements device.Device.
func (d *SSD) Standby() bool { return d.mode == entering || d.mode == standby }

// Settled implements device.Device.
func (d *SSD) Settled() bool { return d.mode == awake || d.mode == standby }

// EnterStandby implements device.Device. For SATA SSDs this is the ALPM
// SLUMBER transition: a short burst of flush/state-save work, then the
// link and most of the controller power off.
func (d *SSD) EnterStandby() error {
	if !d.cfg.HasStandby {
		return device.ErrNotSupported
	}
	if d.mode != awake {
		return nil // already in, or on the way to, standby
	}
	d.exitNonOp()
	d.stopAPSTTimer()
	now := d.eng.Now()
	d.mode = entering
	d.taps.standbys.Inc()
	d.tr.Instant(d.lane, "ssd", "standby_enter", now)
	d.meter.Set(d.cTrans, d.cfg.PStandbyEnter-d.cfg.IdleFloorW(), now)
	d.eng.PostAfter(d.cfg.StandbyEnter, func() {
		if d.mode != entering {
			return
		}
		t := d.eng.Now()
		d.mode = standby
		d.meter.Set(d.cTrans, 0, t)
		d.meter.Set(d.cCtrl, d.cfg.PSlumber, t)
		d.meter.Set(d.cIface, 0, t)
		if len(d.pending) > 0 {
			// IO arrived while the link was powering down; come back.
			d.startWake()
		}
	})
	return nil
}

// Wake implements device.Device.
func (d *SSD) Wake() error {
	if !d.cfg.HasStandby {
		return device.ErrNotSupported
	}
	switch d.mode {
	case standby:
		d.startWake()
	case entering:
		// Queue the wake behind the in-progress entry; the entry
		// completion sees pending work and re-wakes. Register intent
		// with a sentinel pending entry only if none exists.
		if len(d.pending) == 0 {
			d.pending = append(d.pending, pendingIO{})
		}
	}
	return nil
}

func (d *SSD) startWake() {
	now := d.eng.Now()
	d.mode = waking
	d.taps.wakes.Inc()
	d.tr.Instant(d.lane, "ssd", "wake", now)
	d.meter.Set(d.cCtrl, d.cfg.PController, now)
	d.meter.Set(d.cTrans, d.cfg.PStandbyExit-d.cfg.IdleFloorW(), now)
	d.eng.PostAfter(d.cfg.StandbyExit, func() {
		t := d.eng.Now()
		d.mode = awake
		d.meter.Set(d.cTrans, 0, t)
		d.meter.Set(d.cIface, d.cfg.PIfaceIdle, t)
		ps := d.pending
		d.pending = nil
		for _, p := range ps {
			if p.done == nil {
				continue // wake-intent sentinel
			}
			d.begin(p.r, p.done)
		}
	})
}

// Submit implements device.Device.
func (d *SSD) Submit(r device.Request, done func()) {
	if err := r.Validate(d.cfg.CapacityBytes); err != nil {
		panic(fmt.Sprintf("ssd %s: %v", d.cfg.Name, err))
	}
	if r.Size > d.cfg.BufferBytes {
		panic(fmt.Sprintf("ssd %s: request size %d exceeds buffer %d", d.cfg.Name, r.Size, d.cfg.BufferBytes))
	}
	if done == nil {
		panic("ssd: Submit with nil done")
	}
	if d.mode != awake {
		d.pending = append(d.pending, pendingIO{r, done})
		d.Wake()
		return
	}
	d.exitNonOp()
	d.stopAPSTTimer()
	d.begin(r, done)
}
