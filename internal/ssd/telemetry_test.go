package ssd

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"wattio/internal/device"
	"wattio/internal/sim"
	"wattio/internal/telemetry"
	"wattio/internal/workload"
)

// TestTelemetryTaps drives a capped SSD hard enough that the regulator
// stalls, and checks the metric taps and trace spans record it.
func TestTelemetryTaps(t *testing.T) {
	t.Parallel()
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(0)
	eng := sim.NewEngine()
	eng.EnableTelemetry(reg, tr)
	dev, err := New(testConfig(), eng, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.SetPowerState(1); err != nil {
		t.Fatal(err)
	}
	workload.Run(eng, dev, workload.Job{
		Op: device.OpWrite, Pattern: workload.Seq, BS: 256 << 10, Depth: 8,
		Runtime: 300 * time.Millisecond, TotalBytes: 64 << 20,
	}, sim.NewRNG(2))
	eng.Run() // drain flush timers so die gauges settle

	if got := reg.Counter("ssd_regulator_stalls_total").Value(); got == 0 {
		t.Error("capped run recorded no regulator stalls")
	}
	if got := reg.Counter("ssd_throttle_releases_total").Value(); got == 0 {
		t.Error("capped run recorded no throttle releases")
	}
	if got := reg.Histogram("ssd_regulator_stall_ns").Count(); got == 0 {
		t.Error("stall histogram empty")
	}
	if got := reg.Counter("ssd_page_programs_total").Value(); got == 0 {
		t.Error("no page programs counted")
	}
	if got := reg.Gauge("ssd_dies_busy").Value(); got != 0 {
		t.Errorf("dies busy %d after drain, want 0", got)
	}
	if max := reg.Gauge("ssd_dies_busy").Max(); max <= 0 || max > 8 {
		t.Errorf("dies busy high-water %d, want in (0, 8]", max)
	}
	if got := reg.Counter("workload_ios_issued_total").Value(); got != reg.Counter("workload_ios_completed_total").Value() {
		t.Errorf("issued %d != completed %d after drain", got, reg.Counter("workload_ios_completed_total").Value())
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace invalid JSON: %v", err)
	}
	spans := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "program" {
			spans++
		}
	}
	if spans == 0 {
		t.Error("trace has no die program spans")
	}
}

// TestEnergyComponentsPartitionTotal checks the meter invariant the
// energy probe relies on: component energies sum to the total.
func TestEnergyComponentsPartitionTotal(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	dev, err := New(testConfig(), eng, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	workload.Run(eng, dev, workload.Job{
		Op: device.OpWrite, Pattern: workload.Rand, BS: 64 << 10, Depth: 4,
		Runtime: 100 * time.Millisecond, TotalBytes: 16 << 20,
	}, sim.NewRNG(2))
	names, joules := dev.EnergyComponents()
	if len(names) != len(joules) || len(names) == 0 {
		t.Fatalf("breakdown shape: %d names, %d energies", len(names), len(joules))
	}
	var sum float64
	for _, j := range joules {
		if j < 0 {
			t.Fatalf("negative component energy %v", j)
		}
		sum += j
	}
	total := dev.EnergyJ()
	if diff := sum - total; diff > 1e-9*total || diff < -1e-9*total {
		t.Errorf("component energies sum %v != total %v", sum, total)
	}
}
