package ssd

import (
	"wattio/internal/device"
)

// Autonomous power state transitions (APST): when enabled and the
// device has fully quiesced (no inflight IO, empty write buffer), an
// idle timer walks it down the configured non-operational states; the
// next command pays the state's exit latency. This file owns that state
// machine; the hooks are armAPST (at every quiesce point) and
// exitNonOp (at Submit).

// SetAPST enables or disables autonomous transitions, as the NVMe APST
// feature (FID 0x0C) does. Disabling while in a non-operational state
// wakes the device.
func (d *SSD) SetAPST(enable bool) error {
	if len(d.cfg.NonOpStates) == 0 {
		return device.ErrNotSupported
	}
	d.apstEnabled = enable
	if !enable {
		d.exitNonOp()
		d.stopAPSTTimer()
	} else {
		d.armAPST()
	}
	return nil
}

// APST reports whether autonomous transitions are enabled.
func (d *SSD) APST() bool { return d.apstEnabled }

// NonOpIndex returns the current non-operational state, or -1 when the
// device is operational.
func (d *SSD) NonOpIndex() int { return d.nonOpIndex }

// armAPST (re)schedules the next autonomous transition if the device is
// idle. Called at every point the device may have just quiesced.
func (d *SSD) armAPST() {
	if !d.apstEnabled || d.mode != awake || d.active() {
		return
	}
	next := d.nonOpIndex + 1
	if next >= len(d.cfg.NonOpStates) {
		return
	}
	if d.apstArmed {
		return // already armed
	}
	// The idle clock starts now; deeper states are relative to the
	// same quiesce instant, so the increment is the threshold delta.
	wait := d.cfg.NonOpStates[next].IdleBefore
	if next > 0 {
		wait -= d.cfg.NonOpStates[next-1].IdleBefore
	}
	d.apstArmed = true
	if d.apstTimer == nil {
		d.apstTimer = d.eng.After(wait, d.apstFire)
	} else {
		d.apstTimer.RescheduleAfter(wait)
	}
}

func (d *SSD) apstFire() {
	d.apstArmed = false
	if !d.apstEnabled || d.mode != awake || d.active() {
		return
	}
	d.enterNonOp(d.nonOpIndex + 1)
	d.armAPST() // chain toward deeper states
}

func (d *SSD) stopAPSTTimer() {
	if d.apstArmed {
		d.apstTimer.Stop()
		d.apstArmed = false
	}
}

// enterNonOp drops the device into non-operational state i.
func (d *SSD) enterNonOp(i int) {
	now := d.eng.Now()
	d.nonOpIndex = i
	d.meter.Set(d.cCtrl, d.cfg.NonOpStates[i].PowerW, now)
	d.meter.Set(d.cIface, 0, now)
}

// exitNonOp restores operational power and charges the exit latency to
// the next admissions. Safe to call when already operational.
func (d *SSD) exitNonOp() {
	if d.nonOpIndex < 0 {
		return
	}
	now := d.eng.Now()
	st := d.cfg.NonOpStates[d.nonOpIndex]
	d.nonOpIndex = -1
	d.meter.Set(d.cCtrl, d.cfg.PController, now)
	d.meter.Set(d.cIface, d.cfg.PIfaceIdle, now)
	if ready := now + st.ExitLatency; ready > d.stateReadyAt {
		d.stateReadyAt = ready
	}
}
