package ssd

import (
	"time"

	"wattio/internal/device"
	"wattio/internal/power"
)

// occupy reserves a serialized resource whose availability horizon is
// *freeAt: the reservation starts when both the caller and the resource
// are ready and extends the horizon by dur.
func occupy(freeAt *time.Duration, now, dur time.Duration) (start, end time.Duration) {
	start = max(now, *freeAt)
	end = start + dur
	*freeAt = end
	return start, end
}

// linkTime returns the host-link occupancy for n bytes.
func (d *SSD) linkTime(n int64) time.Duration {
	return time.Duration(float64(n) / (d.cfg.LinkMBps * 1e6) * float64(time.Second))
}

// linkEnergyJ returns the extra interface energy for transferring n bytes.
func (d *SSD) linkEnergyJ(n int64) float64 {
	return (d.cfg.PIfaceActive - d.cfg.PIfaceIdle) * d.linkTime(n).Seconds()
}

// admit reserves regulated energy and returns the virtual time the
// operation may start, applying the firmware throttle quantum: delayed
// operations are released on quantum boundaries, which is what turns
// smooth energy debt into measurable tail-latency spikes.
func (d *SSD) admit(energy float64) time.Duration {
	now := d.eng.Now()
	delay := d.reg.Admit(now, energy)
	ready := now + delay
	if delay > 0 {
		d.taps.stalls.Inc()
		if d.cfg.ThrottleQuantum > 0 {
			q := d.cfg.ThrottleQuantum
			ready = (ready + q - 1) / q * q
			d.taps.throttleRels.Inc()
			d.tr.Instant(d.lane, "ssd", "throttle_release", ready)
		}
		d.taps.stallNs.Observe(int64(ready - now))
	}
	return max(ready, d.stateReadyAt)
}

// ssdOp carries one request through the controller pipeline. The record
// and its method-value callbacks are built once and recycled through a
// per-device free list, so a steady IO stream allocates nothing: every
// stage that used to capture the request in a fresh closure instead
// reads it from the op. The op is recycled at the final stage of its
// path, after copying what the tail of that stage still needs — a
// recycled op may be handed out again by the very next Submit.
type ssdOp struct {
	d          *SSD
	r          device.Request
	done       func()
	sequential bool
	pulseW     float64
	eCmd       float64
	nandBytes  float64
	remaining  int // read path: page ops still in flight

	cmdStartFn   func()
	cmdEndFn     func()
	pathReadyFn  func()
	wReservedFn  func()
	wXferStartFn func()
	wXferEndFn   func()
	wInsertFn    func()
	wAckReadyFn  func()
	rXferStartFn func()
	rXferEndFn   func()

	next *ssdOp
}

// getOp draws a request op from the free list, building the callback
// set only on first allocation.
func (d *SSD) getOp() *ssdOp {
	op := d.freeOp
	if op == nil {
		op = &ssdOp{d: d}
		op.cmdStartFn = op.cmdStart
		op.cmdEndFn = op.cmdEnd
		op.pathReadyFn = op.pathReady
		op.wReservedFn = op.wReserved
		op.wXferStartFn = op.wXferStart
		op.wXferEndFn = op.wXferEnd
		op.wInsertFn = op.wInsert
		op.wAckReadyFn = op.wAckReady
		op.rXferStartFn = op.rXferStart
		op.rXferEndFn = op.rXferEnd
	} else {
		d.freeOp = op.next
	}
	return op
}

// pageOp is one NAND page operation (a program or a read) on a die: a
// power-on event at start and a power-off/bookkeeping event at end,
// both riding the die's chain. Pooled like ssdOp.
type pageOp struct {
	d       *SSD
	c       power.Component
	group   *ssdOp // read fan-in target; nil for a program
	release int64  // buffer bytes freed when a program lands

	startFn func()
	endFn   func()

	next *pageOp
}

func (d *SSD) getPage() *pageOp {
	pg := d.freePage
	if pg == nil {
		pg = &pageOp{d: d}
		pg.startFn = pg.start
		pg.endFn = pg.end
	} else {
		d.freePage = pg.next
	}
	pg.group = nil
	pg.release = 0
	return pg
}

// begin runs a request through the controller command stage, then hands
// it to the read or write path. It must run with the device awake.
func (d *SSD) begin(r device.Request, done func()) {
	d.inflight++
	d.ensureRipple()

	// Sequentiality is a property of submission order; record it now.
	sequential := true
	if r.Op == device.OpWrite {
		sequential = r.Offset == d.lastWriteEnd
		d.lastWriteEnd = r.Offset + r.Size
	}

	ct, eCmd := d.cfg.CmdTimeRead, d.cfg.ECmdReadJ
	if r.Op == device.OpWrite {
		ct, eCmd = d.cfg.CmdTimeWrite, d.cfg.ECmdWriteJ
	}
	pulseW := d.pulseWRead
	if r.Op == device.OpWrite {
		pulseW = d.pulseWWrite
	}
	start, end := occupy(&d.cmdFreeAt, d.eng.Now(), ct)
	op := d.getOp()
	op.r, op.done, op.sequential, op.eCmd = r, done, sequential, eCmd
	op.pulseW = pulseW
	d.chCmd.Post(start, op.cmdStartFn)
	d.chCmd.Post(end, op.cmdEndFn)
}

func (op *ssdOp) cmdStart() {
	d := op.d
	d.meter.Set(d.cCmd, op.pulseW, d.eng.Now())
}

func (op *ssdOp) cmdEnd() {
	d := op.d
	d.meter.Set(d.cCmd, 0, d.eng.Now())
	// Admit the host-path energy (command + link transfer) against
	// the power-state regulator before moving data.
	ready := d.admit(op.eCmd + d.linkEnergyJ(op.r.Size))
	d.chReady.PostLoose(ready, op.pathReadyFn)
}

func (op *ssdOp) pathReady() {
	if op.r.Op == device.OpWrite {
		op.d.reserveBuffer(op.r.Size, op.wReservedFn)
	} else {
		op.readPath()
	}
}

// Write path: reserve write-buffer space (backpressure lives here), move
// the data over the host link, then acknowledge after the DRAM insert
// AND after the write's NAND energy has been admitted by the power-state
// regulator. The admission at the ack point is firmware admission
// control: under a binding cap the device cannot let the buffer absorb
// energy it would have to pay back inside the same averaging window, so
// power debt surfaces as host-visible write latency — the mechanism
// behind the paper's Fig. 5 latency inflation.

func (op *ssdOp) wReserved() {
	d := op.d
	xferStart, xferEnd := occupy(&d.linkFreeAt, d.eng.Now(), d.linkTime(op.r.Size))
	d.chLink.Post(xferStart, op.wXferStartFn)
	d.chLink.Post(xferEnd, op.wXferEndFn)
}

func (op *ssdOp) wXferStart() {
	d := op.d
	d.meter.Set(d.cIface, d.cfg.PIfaceActive, d.eng.Now())
}

func (op *ssdOp) wXferEnd() {
	d := op.d
	d.meter.Set(d.cIface, d.cfg.PIfaceIdle, d.eng.Now())
	insert := d.cfg.TWriteAck + time.Duration(float64(op.r.Size)/(d.cfg.InsertBWMBps*1e6)*float64(time.Second))
	d.chInsert.PostLoose(d.eng.Now()+insert, op.wInsertFn)
}

func (op *ssdOp) wInsert() {
	d := op.d
	// The FTL coalesces writes into open pages, so NAND work is
	// proportional to bytes, not request count: sub-page writes share
	// page programs.
	nandBytes := float64(op.r.Size)
	if !op.sequential && d.cfg.WriteAmp > 1 {
		nandBytes *= d.cfg.WriteAmp
	}
	op.nandBytes = nandBytes
	energy := d.eProg * nandBytes / float64(d.cfg.PageSize)
	ready := d.admit(energy)
	d.chReady.PostLoose(ready, op.wAckReadyFn)
}

func (op *ssdOp) wAckReady() {
	d, done := op.d, op.done
	hostBytes := op.r.Size
	ampBytes := int64(op.nandBytes) - hostBytes
	// Recycle before the completion runs: done() may submit the next IO
	// and that Submit may reuse this very op.
	op.done = nil
	op.next = d.freeOp
	d.freeOp = op
	d.inflight--
	done()
	d.spawnPrograms(hostBytes, ampBytes)
}

// spawnPrograms accumulates acknowledged bytes into the device's open
// pages and issues a NAND program for every full page. Host bytes free
// write-buffer space when their page lands; write-amplification bytes
// are internal work and free nothing.
func (d *SSD) spawnPrograms(hostBytes, ampBytes int64) {
	d.hostPending += hostBytes
	d.ampPending += ampBytes
	for d.hostPending >= d.cfg.PageSize {
		d.hostPending -= d.cfg.PageSize
		d.programPage(d.cfg.PageSize)
	}
	for d.ampPending >= d.cfg.PageSize {
		d.ampPending -= d.cfg.PageSize
		d.programPage(0)
	}
	// (Re)arm the open-page flush: if no further writes arrive, the
	// partial pages program after a short dwell, as real FTLs flush on
	// idle so buffered data reaches durable media. One owned timer
	// serves every arm; re-sifting it replaces the old stop+realloc.
	if d.hostPending > 0 || d.ampPending > 0 {
		if d.flushTimer == nil {
			d.flushTimer = d.eng.After(10*time.Millisecond, d.flushOpenPages)
		} else {
			d.flushTimer.RescheduleAfter(10 * time.Millisecond)
		}
	} else if d.flushTimer != nil {
		d.flushTimer.Stop()
	}
}

// flushOpenPages programs any open partial pages after the idle dwell.
func (d *SSD) flushOpenPages() {
	d.taps.pageFlushes.Inc()
	d.tr.Instant(d.lane, "ssd", "open_page_flush", d.eng.Now())
	if d.hostPending > 0 {
		d.programPage(d.hostPending)
		d.hostPending = 0
	}
	if d.ampPending > 0 {
		d.programPage(0)
		d.ampPending = 0
	}
}

// programPage schedules one NAND program on the next die in the
// log-structured write stripe, releasing `release` buffer bytes when the
// page is durable. Its energy was admitted at the ack point.
func (d *SSD) programPage(release int64) {
	die := d.nextDie
	d.nextDie = (d.nextDie + 1) % len(d.cDies)
	ready := max(d.eng.Now(), d.stateReadyAt)
	start := max(ready, d.dieFreeAt[die])
	end := start + d.cfg.TProg + d.pageXfer
	d.dieFreeAt[die] = end
	d.taps.pagePrograms.Inc()
	if d.tr.Enabled() {
		d.tr.Span(d.laneDies[die], "ssd", "program", start, end)
	}
	pg := d.getPage()
	pg.c = d.cDies[die]
	pg.release = release
	d.chDies[die].Post(start, pg.startFn)
	d.chDies[die].Post(end, pg.endFn)
}

func (pg *pageOp) start() {
	d := pg.d
	d.taps.diesBusy.Add(1)
	w := d.pProgEff
	if pg.group != nil {
		w = d.pReadEff
	}
	d.meter.Set(pg.c, w, d.eng.Now())
}

func (pg *pageOp) end() {
	d, c, group, release := pg.d, pg.c, pg.group, pg.release
	pg.group = nil
	pg.next = d.freePage
	d.freePage = pg
	d.taps.diesBusy.Add(-1)
	d.meter.Set(c, 0, d.eng.Now())
	if group != nil {
		group.remaining--
		if group.remaining == 0 {
			group.readFinish()
		}
		return
	}
	if release > 0 {
		d.releaseBuffer(release)
	}
	d.armAPST()
}

// readPath fans page reads out across the dies the request's pages map
// to, then returns the data over the host link in one transfer.
func (op *ssdOp) readPath() {
	d := op.d
	r := op.r
	firstPage := r.Offset / d.cfg.PageSize
	lastPage := (r.Offset + r.Size - 1) / d.cfg.PageSize
	op.remaining = int(lastPage - firstPage + 1)
	opDur := d.cfg.TRead + d.pageXfer
	for p := firstPage; p <= lastPage; p++ {
		die := int(p % int64(len(d.cDies)))
		ready := d.admit(d.eRead)
		start := max(ready, d.dieFreeAt[die])
		end := start + opDur
		d.dieFreeAt[die] = end
		d.taps.pageReads.Inc()
		if d.tr.Enabled() {
			d.tr.Span(d.laneDies[die], "ssd", "read", start, end)
		}
		pg := d.getPage()
		pg.c = d.cDies[die]
		pg.group = op
		d.chDies[die].Post(start, pg.startFn)
		d.chDies[die].Post(end, pg.endFn)
	}
}

// readFinish returns the data over the host link once every page has
// landed.
func (op *ssdOp) readFinish() {
	d := op.d
	xferStart, xferEnd := occupy(&d.linkFreeAt, d.eng.Now(), d.linkTime(op.r.Size))
	d.chLink.Post(xferStart, op.rXferStartFn)
	d.chLink.Post(xferEnd, op.rXferEndFn)
}

func (op *ssdOp) rXferStart() {
	d := op.d
	d.meter.Set(d.cIface, d.cfg.PIfaceActive, d.eng.Now())
}

func (op *ssdOp) rXferEnd() {
	d, done := op.d, op.done
	op.done = nil
	op.next = d.freeOp
	d.freeOp = op
	d.meter.Set(d.cIface, d.cfg.PIfaceIdle, d.eng.Now())
	d.inflight--
	done()
	d.armAPST()
}

// reserveBuffer grants `bytes` of write-buffer space to cont, queuing
// FIFO behind earlier waiters when the buffer is full. FIFO ordering
// (not best-fit) keeps completion latency fair, which matters for the
// tail-latency experiments.
func (d *SSD) reserveBuffer(bytes int64, cont func()) {
	if len(d.bufWaiters) == 0 && d.bufFree >= bytes {
		d.bufFree -= bytes
		cont()
		return
	}
	d.bufWaiters = append(d.bufWaiters, bufWaiter{bytes, cont})
}

// releaseBuffer returns bytes to the buffer and admits waiting writes.
func (d *SSD) releaseBuffer(bytes int64) {
	d.bufFree += bytes
	if d.bufFree > d.cfg.BufferBytes {
		panic("ssd: buffer over-released")
	}
	for len(d.bufWaiters) > 0 && d.bufFree >= d.bufWaiters[0].bytes {
		w := d.bufWaiters[0]
		d.bufWaiters = d.bufWaiters[1:]
		d.bufFree -= w.bytes
		w.cont()
	}
}

// bufUsedBytes returns bytes currently held in the write buffer.
func (d *SSD) bufUsedBytes() int64 { return d.cfg.BufferBytes - d.bufFree }

// active reports whether the device has foreground or background work,
// which is when the FTL activity ripple runs.
func (d *SSD) active() bool { return d.inflight > 0 || d.bufUsedBytes() > 0 }

// ensureRipple starts the activity-ripple process if it is configured
// and not already ticking.
func (d *SSD) ensureRipple() {
	if d.cfg.RippleBurstW <= 0 || d.rippleRunning {
		return
	}
	d.rippleRunning = true
	d.rippleTick()
}

// rippleTick advances the two-state burst process. Transition
// probabilities are chosen so the long-run burst fraction equals the
// configured duty cycle: leaving with probability ½ per tick and
// entering with duty/(2(1-duty)).
func (d *SSD) rippleTick() {
	if !d.active() {
		d.rippleRunning = false
		if d.rippleBurst {
			d.rippleBurst = false
			d.meter.Set(d.cRipple, 0, d.eng.Now())
		}
		return
	}
	const pLeave = 0.5
	pEnter := pLeave * d.cfg.RippleDuty / (1 - d.cfg.RippleDuty)
	u := d.rng.Float64()
	if d.rippleBurst {
		if u < pLeave {
			d.rippleBurst = false
			d.meter.Set(d.cRipple, 0, d.eng.Now())
		}
	} else if u < pEnter && d.reg.Credits(d.eng.Now()) >= 0 {
		// Background bursts defer while the device is in energy debt:
		// capped firmware schedules GC and mapping flushes into the
		// power budget's slack.
		d.rippleBurst = true
		d.meter.Set(d.cRipple, d.cfg.RippleBurstW, d.eng.Now())
	}
	dwell := time.Duration(d.rng.Exponential(float64(d.cfg.RippleDwell)))
	if dwell < time.Millisecond {
		dwell = time.Millisecond
	}
	if d.rippleTimer == nil {
		d.rippleTimer = d.eng.After(dwell, d.rippleTick)
	} else {
		d.rippleTimer.RescheduleAfter(dwell)
	}
}

var _ device.Device = (*SSD)(nil)
