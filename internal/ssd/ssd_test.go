package ssd

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"wattio/internal/device"
	"wattio/internal/sim"
)

// testConfig is a small, fast SSD for unit tests: 4×2 dies, no ripple,
// so behavior is exactly predictable.
func testConfig() Config {
	return Config{
		Name:          "T1",
		Model:         "Test SSD",
		Protocol:      device.NVMe,
		CapacityBytes: 1 << 30,

		Channels:       4,
		DiesPerChannel: 2,
		PageSize:       16 << 10,
		ChannelMBps:    800,
		TRead:          50 * time.Microsecond,
		TProg:          500 * time.Microsecond,

		LinkMBps:     1000,
		CmdTimeRead:  2 * time.Microsecond,
		CmdTimeWrite: 2 * time.Microsecond,
		TWriteAck:    5 * time.Microsecond,
		InsertBWMBps: 4000,
		BufferBytes:  8 << 20,
		WriteAmp:     1.0,

		PController:  1.0,
		PIfaceIdle:   0.5,
		PIfaceActive: 1.0,
		PDieRead:     20e-3,
		PDieProg:     40e-3,
		EPageXferJ:   2e-6,
		ECmdReadJ:    1e-6,
		ECmdWriteJ:   1e-6,

		PowerStates: []device.PowerState{
			{MaxPowerW: 10},
			{MaxPowerW: 1.7},
		},
		CapWindow:       10 * time.Second,
		CapBurst:        10 * time.Millisecond,
		ThrottleQuantum: time.Millisecond,
	}
}

func newTest(t *testing.T, mod func(*Config)) (*SSD, *sim.Engine) {
	t.Helper()
	cfg := testConfig()
	if mod != nil {
		mod(&cfg)
	}
	eng := sim.NewEngine()
	d, err := New(cfg, eng, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return d, eng
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Config)
		want string
	}{
		{"no name", func(c *Config) { c.Name = "" }, "name"},
		{"zero capacity", func(c *Config) { c.CapacityBytes = 0 }, "capacity"},
		{"no dies", func(c *Config) { c.Channels = 0 }, "geometry"},
		{"bad page", func(c *Config) { c.PageSize = 1000 }, "page size"},
		{"zero tprog", func(c *Config) { c.TProg = 0 }, "timings"},
		{"zero link", func(c *Config) { c.LinkMBps = 0 }, "bandwidths"},
		{"tiny buffer", func(c *Config) { c.BufferBytes = 1 << 20 }, "buffer"},
		{"amp below one", func(c *Config) { c.WriteAmp = 0.5 }, "amplification"},
		{"no controller power", func(c *Config) { c.PController = 0 }, "controller"},
		{"duty out of range", func(c *Config) { c.RippleDuty = 1 }, "duty"},
		{"cap below idle", func(c *Config) { c.PowerStates[1].MaxPowerW = 1.0 }, "headroom"},
		{"negative cap", func(c *Config) { c.PowerStates[1].MaxPowerW = -1 }, "negative"},
		{"no cap window", func(c *Config) { c.CapWindow = 0 }, "window"},
		{"negative quantum", func(c *Config) { c.ThrottleQuantum = -time.Second }, "quantum"},
		{"standby without times", func(c *Config) { c.HasStandby = true }, "standby"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			tc.mod(&cfg)
			err := cfg.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if good.Dies() != 8 {
		t.Errorf("Dies() = %d, want 8", good.Dies())
	}
	if got := good.IdleFloorW(); got != 1.5 {
		t.Errorf("IdleFloorW() = %v, want 1.5", got)
	}
}

func TestReadCompletes(t *testing.T) {
	d, eng := newTest(t, nil)
	done := false
	d.Submit(device.Request{Op: device.OpRead, Offset: 0, Size: 4096}, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("read never completed")
	}
	// Latency ≈ cmd + tRead + page xfer + link: order 80 µs.
	if now := eng.Now(); now < 50*time.Microsecond || now > 200*time.Microsecond {
		t.Errorf("4KiB read took %v, want ~80µs", now)
	}
}

func TestWriteCompletesBeforeNANDDrain(t *testing.T) {
	d, eng := newTest(t, nil)
	var ackAt time.Duration
	d.Submit(device.Request{Op: device.OpWrite, Offset: 0, Size: 64 << 10}, func() { ackAt = eng.Now() })
	eng.Run()
	if ackAt == 0 {
		t.Fatal("write never acknowledged")
	}
	// Buffered ack: link (64µs) + insert ≈ 85µs, well before the 500µs program.
	if ackAt > 300*time.Microsecond {
		t.Errorf("buffered write acked at %v, want ~90µs", ackAt)
	}
	// The drain continues past the ack; the engine ran events after it.
	if eng.Now() <= ackAt {
		t.Error("no background drain happened after ack")
	}
}

func TestLargeReadFansOutAcrossDies(t *testing.T) {
	d, eng := newTest(t, nil)
	// 8 pages across 8 dies: one tRead wave, not eight serialized.
	done := false
	d.Submit(device.Request{Op: device.OpRead, Offset: 0, Size: 128 << 10}, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("read never completed")
	}
	// Serialized would take ≥ 8×70µs = 560µs; parallel ≈ 70µs + link 131µs.
	if eng.Now() > 400*time.Microsecond {
		t.Errorf("128KiB read took %v; die fan-out broken", eng.Now())
	}
}

func TestBufferBackpressure(t *testing.T) {
	d, eng := newTest(t, func(c *Config) {
		c.BufferBytes = 4 << 20
		c.PowerStates = nil // uncapped: isolate buffer behavior
	})
	// Submit 3× 2 MiB: the third must wait for drain space.
	acks := make([]time.Duration, 3)
	for i := 0; i < 3; i++ {
		i := i
		d.Submit(device.Request{Op: device.OpWrite, Offset: int64(i) << 21, Size: 2 << 20}, func() { acks[i] = eng.Now() })
	}
	eng.Run()
	for i, a := range acks {
		if a == 0 {
			t.Fatalf("write %d never acked", i)
		}
	}
	// First two fit the buffer (ack at link speed ≈ 2.1 ms and 4.2 ms);
	// the third waits for page programs to release space.
	if acks[2] < acks[1]+time.Millisecond {
		t.Errorf("third write acked at %v, second at %v; no backpressure", acks[2], acks[1])
	}
}

func TestPowerStateCapThrottlesWrites(t *testing.T) {
	run := func(ps int) time.Duration {
		d, eng := newTest(t, nil)
		if err := d.SetPowerState(ps); err != nil {
			t.Fatal(err)
		}
		const n = 64
		remaining := n
		var issue func(i int)
		issue = func(i int) {
			if i >= n {
				return
			}
			d.Submit(device.Request{Op: device.OpWrite, Offset: int64(i) << 20, Size: 1 << 20}, func() {
				remaining--
				issue(i + 1)
			})
		}
		issue(0)
		eng.Run()
		if remaining != 0 {
			t.Fatalf("%d writes never completed under ps%d", remaining, ps)
		}
		return eng.Now()
	}
	fast := run(0)
	slow := run(1)
	// ps1 leaves 0.2 W of headroom; the NAND energy rate at full speed
	// is ~0.34 W, so the regulator must stretch the run by ~1.7x.
	if float64(slow) < 1.4*float64(fast) {
		t.Errorf("ps1 run %v not much slower than ps0 run %v", slow, fast)
	}
}

func TestPowerStateErrors(t *testing.T) {
	d, _ := newTest(t, nil)
	if err := d.SetPowerState(5); err == nil {
		t.Error("out-of-range power state accepted")
	}
	if err := d.SetPowerState(-1); err == nil {
		t.Error("negative power state accepted")
	}
	d2, _ := newTest(t, func(c *Config) { c.PowerStates = nil; c.Protocol = device.SATA })
	if err := d2.SetPowerState(0); err != device.ErrNotSupported {
		t.Errorf("stateless device SetPowerState = %v, want ErrNotSupported", err)
	}
}

func TestStandbyNotSupportedByDefault(t *testing.T) {
	d, _ := newTest(t, nil)
	if err := d.EnterStandby(); err != device.ErrNotSupported {
		t.Errorf("EnterStandby = %v, want ErrNotSupported", err)
	}
	if err := d.Wake(); err != device.ErrNotSupported {
		t.Errorf("Wake = %v, want ErrNotSupported", err)
	}
	if !d.Settled() {
		t.Error("device without standby not settled")
	}
}

func withStandby(c *Config) {
	c.PowerStates = nil
	c.Protocol = device.SATA
	c.HasStandby = true
	c.PSlumber = 0.3
	c.StandbyEnter = 100 * time.Millisecond
	c.StandbyExit = 200 * time.Millisecond
	c.PStandbyEnter = 2.0
	c.PStandbyExit = 2.2
}

func TestStandbyLifecycle(t *testing.T) {
	d, eng := newTest(t, withStandby)
	if err := d.EnterStandby(); err != nil {
		t.Fatal(err)
	}
	if !d.Standby() || d.Settled() {
		t.Error("entering: Standby/Settled flags wrong")
	}
	// During entry, the transition blip raises power.
	if p := d.InstantPower(); math.Abs(p-2.0) > 1e-9 {
		t.Errorf("entry power = %v, want 2.0 (blip)", p)
	}
	eng.RunUntil(time.Second)
	if !d.Standby() || !d.Settled() {
		t.Error("in standby: flags wrong")
	}
	if p := d.InstantPower(); math.Abs(p-0.3) > 1e-9 {
		t.Errorf("slumber power = %v, want 0.3", p)
	}
	if err := d.Wake(); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(2 * time.Second)
	if d.Standby() || !d.Settled() {
		t.Error("awake: flags wrong")
	}
	if p := d.InstantPower(); math.Abs(p-1.5) > 1e-9 {
		t.Errorf("idle power = %v, want 1.5", p)
	}
}

func TestIOWakesStandbyDevice(t *testing.T) {
	d, eng := newTest(t, withStandby)
	d.EnterStandby()
	eng.RunUntil(time.Second)
	done := false
	d.Submit(device.Request{Op: device.OpRead, Offset: 0, Size: 4096}, func() { done = true })
	eng.RunUntil(2 * time.Second)
	if !done {
		t.Fatal("IO to standby device never completed")
	}
	if d.Standby() {
		t.Error("device still in standby after serving IO")
	}
}

func TestIODuringEntryTransitionCompletes(t *testing.T) {
	d, eng := newTest(t, withStandby)
	d.EnterStandby()
	eng.RunUntil(50 * time.Millisecond) // mid-entry
	done := false
	d.Submit(device.Request{Op: device.OpRead, Offset: 0, Size: 4096}, func() { done = true })
	eng.RunUntil(2 * time.Second)
	if !done {
		t.Fatal("IO during entry transition never completed")
	}
}

func TestWakeDuringEntryCoalesces(t *testing.T) {
	d, eng := newTest(t, withStandby)
	d.EnterStandby()
	eng.RunUntil(10 * time.Millisecond)
	d.Wake()
	d.Wake() // idempotent
	eng.RunUntil(2 * time.Second)
	if d.Standby() || !d.Settled() {
		t.Error("wake during entry did not restore awake state")
	}
}

func TestSubmitPanics(t *testing.T) {
	d, _ := newTest(t, nil)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"unaligned", func() { d.Submit(device.Request{Op: device.OpRead, Offset: 3, Size: 512}, func() {}) }},
		{"past end", func() { d.Submit(device.Request{Op: device.OpRead, Offset: 1 << 30, Size: 512}, func() {}) }},
		{"nil done", func() { d.Submit(device.Request{Op: device.OpRead, Offset: 0, Size: 512}, nil) }},
		{"bigger than buffer", func() {
			d.Submit(device.Request{Op: device.OpWrite, Offset: 0, Size: 16 << 20}, func() {})
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestCoalescingSubPageWrites(t *testing.T) {
	// Four 4 KiB writes fill exactly one 16 KiB page: total NAND energy
	// must be one page program, not four.
	d, eng := newTest(t, func(c *Config) { c.PowerStates = nil })
	for i := 0; i < 4; i++ {
		d.Submit(device.Request{Op: device.OpWrite, Offset: int64(i) * 4096, Size: 4096}, func() {})
	}
	eng.Run()
	// Energy above idle: 1 page program + 4 cmd + link + insert overheads.
	idleE := 1.5 * eng.Now().Seconds()
	extra := d.EnergyJ() - idleE
	oneProg := d.eProg
	if extra > 3*oneProg {
		t.Errorf("4×4KiB writes burned %.1fµJ beyond idle, want ≈ 1 page (%.1fµJ) + overheads",
			extra*1e6, oneProg*1e6)
	}
}

func TestPartialPageFlushQuiesces(t *testing.T) {
	// A lone 4 KiB write must still reach NAND (flush timer) and the
	// buffer must fully drain so the device quiesces.
	d, eng := newTest(t, func(c *Config) { c.PowerStates = nil })
	d.Submit(device.Request{Op: device.OpWrite, Offset: 0, Size: 4096}, func() {})
	eng.Run()
	if d.bufUsedBytes() != 0 {
		t.Errorf("buffer holds %d bytes after quiesce, want 0", d.bufUsedBytes())
	}
	if d.active() {
		t.Error("device still active after flush")
	}
	if eng.Pending() != 0 {
		t.Errorf("%d events pending after drain", eng.Pending())
	}
}

func TestWriteAmpAddsInternalWork(t *testing.T) {
	energy := func(amp float64) float64 {
		cfg := testConfig()
		cfg.PowerStates = nil
		cfg.WriteAmp = amp
		eng := sim.NewEngine()
		d, err := New(cfg, eng, sim.NewRNG(1))
		if err != nil {
			t.Fatal(err)
		}
		// Random (non-sequential) writes: offsets descending.
		for i := 15; i >= 0; i-- {
			d.Submit(device.Request{Op: device.OpWrite, Offset: int64(i) << 20, Size: 64 << 10}, func() {})
		}
		eng.Run()
		return d.EnergyJ() - 1.5*eng.Now().Seconds()
	}
	base := energy(1.0)
	amped := energy(1.5)
	if amped < base*1.2 {
		t.Errorf("write amp 1.5 energy %.1fµJ not ≫ amp 1.0 energy %.1fµJ", amped*1e6, base*1e6)
	}
}

func TestSequentialWritesSkipAmp(t *testing.T) {
	cfg := testConfig()
	cfg.PowerStates = nil
	cfg.WriteAmp = 2.0
	eng := sim.NewEngine()
	d, err := New(cfg, eng, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	// Perfectly sequential stream: no amplification work.
	for i := 0; i < 16; i++ {
		d.Submit(device.Request{Op: device.OpWrite, Offset: int64(i) * 64 << 10, Size: 64 << 10}, func() {})
	}
	eng.Run()
	progs := d.EnergyJ() - 1.5*eng.Now().Seconds()
	// 16×64KiB = 64 pages of program energy plus ~25 page-equivalents
	// of link/cmd overhead; amplification at 2.0 would add another 64.
	if progs > 110*d.eProg {
		t.Errorf("sequential stream burned %.0f page-equivalents, amp not skipped", progs/d.eProg)
	}
}

func TestPowerBreakdownConsistent(t *testing.T) {
	d, eng := newTest(t, nil)
	d.Submit(device.Request{Op: device.OpWrite, Offset: 0, Size: 1 << 20}, func() {})
	eng.RunUntil(100 * time.Microsecond)
	names, watts := d.PowerBreakdown()
	if len(names) != 6 || len(watts) != 6 {
		t.Fatalf("breakdown shape %d/%d", len(names), len(watts))
	}
	var sum float64
	for _, w := range watts {
		sum += w
	}
	if math.Abs(sum-d.InstantPower()) > 1e-9 {
		t.Errorf("breakdown sums to %v, InstantPower %v", sum, d.InstantPower())
	}
}

// Property: any mix of aligned reads and writes completes exactly once
// each, and the device quiesces with an empty buffer.
func TestAllIOCompletesProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		cfg := testConfig()
		eng := sim.NewEngine()
		d, err := New(cfg, eng, sim.NewRNG(7))
		if err != nil {
			return false
		}
		want := len(ops)
		got := 0
		for _, o := range ops {
			op := device.OpRead
			if o&1 == 1 {
				op = device.OpWrite
			}
			size := int64(512 * (1 + o%64))
			off := int64(o) * 4096 % (cfg.CapacityBytes - 64*512)
			off -= off % 512
			d.Submit(device.Request{Op: op, Offset: off, Size: size}, func() { got++ })
		}
		eng.Run()
		return got == want && d.bufUsedBytes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceMetadata(t *testing.T) {
	d, _ := newTest(t, nil)
	if d.Name() != "T1" || d.Model() != "Test SSD" || d.Protocol() != device.NVMe {
		t.Error("metadata accessors wrong")
	}
	if d.CapacityBytes() != 1<<30 {
		t.Error("capacity wrong")
	}
	if len(d.PowerStates()) != 2 {
		t.Error("power states wrong")
	}
	if d.Config().Name != "T1" {
		t.Error("Config() wrong")
	}
}
