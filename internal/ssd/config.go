// Package ssd implements a die-level discrete-event SSD simulator.
//
// Power is not asserted from a lookup table; it emerges from the same
// physical sources a shunt resistor on the drive's power rails would see:
// an always-on controller, a host interface that burns more when a
// transfer is in flight, NAND dies that draw program or read power while
// an operation occupies them, per-command controller energy, and bursty
// FTL/DRAM activity. NVMe power-state caps are enforced by an energy
// regulator with rolling-window semantics (internal/power), which is what
// produces the paper's throughput and tail-latency trade-offs.
package ssd

import (
	"fmt"
	"time"

	"wattio/internal/device"
)

// Config describes one SSD model. The catalog package provides
// configurations calibrated to the paper's four measured devices.
type Config struct {
	Name     string
	Model    string
	Protocol device.Protocol
	// CapacityBytes is the addressable capacity.
	CapacityBytes int64

	// Geometry.
	Channels       int
	DiesPerChannel int
	PageSize       int64
	ChannelMBps    float64 // NAND channel transfer rate per channel

	// NAND timing.
	TRead time.Duration // page read (tR)
	TProg time.Duration // page program (tPROG)

	// Host path.
	LinkMBps     float64       // host link bandwidth (PCIe or SATA)
	CmdTimeRead  time.Duration // serialized controller occupancy per read command
	CmdTimeWrite time.Duration // serialized controller occupancy per write command
	TWriteAck    time.Duration // fixed write acknowledgment overhead
	InsertBWMBps float64       // DRAM write-buffer insert bandwidth
	BufferBytes  int64         // write-buffer capacity

	// WriteAmp is the extra NAND program work for non-sequential writes
	// (steady-state write amplification); 1 means none.
	WriteAmp float64

	// Power model (watts, joules).
	PController  float64 // always-on controller + DRAM
	PIfaceIdle   float64 // host interface, link idle
	PIfaceActive float64 // host interface, transfer in flight
	PDieRead     float64 // per die while a read op is active
	PDieProg     float64 // per die while a program op is active
	EPageXferJ   float64 // channel transfer energy per page
	ECmdReadJ    float64 // controller energy per read command
	ECmdWriteJ   float64 // controller energy per write command (FTL mapping updates)

	// Activity ripple: bursty FTL/DRAM work (garbage collection,
	// mapping flushes, capacitor charging) modeled as a two-state
	// process that adds RippleBurstW while in the burst state. This is
	// what gives instantaneous traces their measured swing (Fig. 2a)
	// beyond the discrete die count.
	RippleBurstW float64
	RippleDuty   float64       // long-run fraction of active time in burst
	RippleDwell  time.Duration // mean dwell time per ripple state decision

	// Standby (ALPM SLUMBER). Enterprise NVMe parts in the paper do not
	// support it; the 860 EVO does.
	HasStandby    bool
	PSlumber      float64 // total device power in slumber
	StandbyEnter  time.Duration
	StandbyExit   time.Duration
	PStandbyEnter float64 // transition draw while entering
	PStandbyExit  float64 // transition draw while exiting

	// NonOpStates are NVMe non-operational (idle) power states entered
	// autonomously after the configured idle time when APST is enabled
	// — the client-SSD mechanism behind the paper's §2 note that SSD
	// standby "uses one-tenth of the power of the device at idle".
	// States must be ordered by increasing IdleBefore. Data-center
	// parts in the paper's Table 1 have none.
	NonOpStates []NonOpState
	// APSTDefault enables autonomous transitions at construction; the
	// host can toggle it via the NVMe APST feature (FID 0x0C).
	APSTDefault bool

	// NVMe operational power states (ps0 first). Empty means the device
	// has no host-selectable states (SATA SSDs).
	PowerStates []device.PowerState
	// CapWindow is the averaging window the NVMe descriptor specifies
	// (10 s). Firmware must satisfy the cap over ANY such window, so the
	// regulator actually allows only CapBurst worth of slack — a much
	// shorter horizon — which keeps every sliding window compliant.
	CapWindow time.Duration
	// CapBurst is the regulator's burst horizon (see CapWindow).
	CapBurst time.Duration
	// ThrottleQuantum is the granularity of firmware throttling: an
	// operation the regulator delays is released on the next quantum
	// boundary. Coarse quanta are what turn smooth energy debt into the
	// tail-latency spikes the paper measures under ps2 (Fig. 5b). Zero
	// means ideally smooth throttling (used by the ablation bench).
	ThrottleQuantum time.Duration
}

// NonOpState is one autonomous idle state.
type NonOpState struct {
	// PowerW is the device's total draw while in the state.
	PowerW float64
	// IdleBefore is how long the device must be fully idle (from the
	// moment it quiesces) before entering.
	IdleBefore time.Duration
	// ExitLatency delays the first operation after wake.
	ExitLatency time.Duration
}

// Validate checks the configuration for physical consistency.
func (c *Config) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("ssd: config needs a name")
	case c.CapacityBytes <= 0:
		return fmt.Errorf("ssd %s: capacity %d must be positive", c.Name, c.CapacityBytes)
	case c.Channels <= 0 || c.DiesPerChannel <= 0:
		return fmt.Errorf("ssd %s: geometry %dx%d invalid", c.Name, c.Channels, c.DiesPerChannel)
	case c.PageSize <= 0 || c.PageSize%512 != 0:
		return fmt.Errorf("ssd %s: page size %d invalid", c.Name, c.PageSize)
	case c.TRead <= 0 || c.TProg <= 0:
		return fmt.Errorf("ssd %s: NAND timings must be positive", c.Name)
	case c.LinkMBps <= 0 || c.ChannelMBps <= 0 || c.InsertBWMBps <= 0:
		return fmt.Errorf("ssd %s: bandwidths must be positive", c.Name)
	case c.BufferBytes < 4<<20:
		return fmt.Errorf("ssd %s: write buffer %d must be at least 4 MiB", c.Name, c.BufferBytes)
	case c.WriteAmp < 1:
		return fmt.Errorf("ssd %s: write amplification %v must be ≥ 1", c.Name, c.WriteAmp)
	case c.PController <= 0:
		return fmt.Errorf("ssd %s: controller power must be positive", c.Name)
	case c.RippleDuty < 0 || c.RippleDuty >= 1:
		return fmt.Errorf("ssd %s: ripple duty %v out of [0,1)", c.Name, c.RippleDuty)
	case c.HasStandby && (c.StandbyEnter <= 0 || c.StandbyExit <= 0):
		return fmt.Errorf("ssd %s: standby transitions must take time", c.Name)
	}
	for i, ps := range c.PowerStates {
		if ps.MaxPowerW < 0 {
			return fmt.Errorf("ssd %s: power state %d cap %v negative", c.Name, i, ps.MaxPowerW)
		}
		if ps.MaxPowerW > 0 && ps.MaxPowerW <= c.PController+c.PIfaceIdle {
			return fmt.Errorf("ssd %s: power state %d cap %vW leaves no headroom above idle %vW",
				c.Name, i, ps.MaxPowerW, c.PController+c.PIfaceIdle)
		}
	}
	if len(c.PowerStates) > 0 && (c.CapWindow <= 0 || c.CapBurst <= 0) {
		return fmt.Errorf("ssd %s: power states need a cap window and burst horizon", c.Name)
	}
	if c.ThrottleQuantum < 0 {
		return fmt.Errorf("ssd %s: throttle quantum %v negative", c.Name, c.ThrottleQuantum)
	}
	for i, st := range c.NonOpStates {
		if st.PowerW <= 0 || st.PowerW >= c.IdleFloorW() {
			return fmt.Errorf("ssd %s: non-op state %d power %vW not below idle %vW", c.Name, i, st.PowerW, c.IdleFloorW())
		}
		if st.IdleBefore <= 0 {
			return fmt.Errorf("ssd %s: non-op state %d needs a positive idle threshold", c.Name, i)
		}
		if i > 0 && st.IdleBefore <= c.NonOpStates[i-1].IdleBefore {
			return fmt.Errorf("ssd %s: non-op states must deepen with idle time", c.Name)
		}
		if i > 0 && st.PowerW >= c.NonOpStates[i-1].PowerW {
			return fmt.Errorf("ssd %s: deeper non-op state %d does not save power", c.Name, i)
		}
	}
	if c.APSTDefault && len(c.NonOpStates) == 0 {
		return fmt.Errorf("ssd %s: APST enabled without non-op states", c.Name)
	}
	return nil
}

// Dies returns the total die count.
func (c *Config) Dies() int { return c.Channels * c.DiesPerChannel }

// IdleFloorW returns the device's awake idle power: controller plus idle
// interface. Power-state regulators budget against this floor.
func (c *Config) IdleFloorW() float64 { return c.PController + c.PIfaceIdle }
