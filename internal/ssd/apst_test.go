package ssd

import (
	"math"
	"testing"
	"time"

	"wattio/internal/device"
	"wattio/internal/sim"
)

func withAPST(c *Config) {
	c.PowerStates = nil
	c.NonOpStates = []NonOpState{
		{PowerW: 0.3, IdleBefore: 100 * time.Millisecond, ExitLatency: time.Millisecond},
		{PowerW: 0.1, IdleBefore: time.Second, ExitLatency: 10 * time.Millisecond},
	}
	c.APSTDefault = true
}

func TestAPSTEntersAfterIdle(t *testing.T) {
	d, eng := newTest(t, withAPST)
	if d.NonOpIndex() != -1 {
		t.Fatal("not operational at construction")
	}
	eng.RunUntil(150 * time.Millisecond)
	if d.NonOpIndex() != 0 {
		t.Fatalf("NonOpIndex = %d after 150ms idle, want 0", d.NonOpIndex())
	}
	if got := d.InstantPower(); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("non-op power = %v, want 0.3", got)
	}
	// Deepens at the 1 s threshold.
	eng.RunUntil(1100 * time.Millisecond)
	if d.NonOpIndex() != 1 {
		t.Fatalf("NonOpIndex = %d after 1.1s idle, want 1", d.NonOpIndex())
	}
	if got := d.InstantPower(); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("deep non-op power = %v, want 0.1", got)
	}
}

func TestAPSTWakePaysExitLatency(t *testing.T) {
	d, eng := newTest(t, withAPST)
	eng.RunUntil(1100 * time.Millisecond) // deep state, 10ms exit
	start := eng.Now()
	done := false
	d.Submit(device.Request{Op: device.OpRead, Offset: 0, Size: 4096}, func() { done = true })
	for !done && eng.Step() {
	}
	if !done {
		t.Fatal("read never completed")
	}
	lat := eng.Now() - start
	if lat < 10*time.Millisecond {
		t.Errorf("wake read took %v, want ≥ 10ms exit latency", lat)
	}
	if d.NonOpIndex() != -1 {
		t.Error("device not operational right after IO")
	}
	if got := d.InstantPower(); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("post-wake idle power = %v, want 1.5", got)
	}
	// Left alone again, it autonomously re-idles all the way down.
	eng.Run()
	if d.NonOpIndex() != 1 {
		t.Errorf("NonOpIndex = %d after quiescing again, want 1", d.NonOpIndex())
	}
}

func TestAPSTReentersAfterActivity(t *testing.T) {
	d, eng := newTest(t, withAPST)
	eng.RunUntil(150 * time.Millisecond)
	d.Submit(device.Request{Op: device.OpWrite, Offset: 0, Size: 64 << 10}, func() {})
	eng.RunUntil(eng.Now() + 50*time.Millisecond)
	if d.NonOpIndex() != -1 {
		t.Fatal("device non-op while draining")
	}
	// After the write drains (incl. flush timer) + 100ms idle, it drops
	// again.
	eng.RunUntil(eng.Now() + 300*time.Millisecond)
	if d.NonOpIndex() != 0 {
		t.Fatalf("NonOpIndex = %d after re-idle, want 0", d.NonOpIndex())
	}
}

func TestAPSTDisableWakes(t *testing.T) {
	d, eng := newTest(t, withAPST)
	eng.RunUntil(150 * time.Millisecond)
	if err := d.SetAPST(false); err != nil {
		t.Fatal(err)
	}
	if d.NonOpIndex() != -1 {
		t.Error("disable did not wake the device")
	}
	eng.RunUntil(2 * time.Second)
	if d.NonOpIndex() != -1 {
		t.Error("disabled APST still transitioned")
	}
	if err := d.SetAPST(true); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(eng.Now() + 150*time.Millisecond)
	if d.NonOpIndex() != 0 {
		t.Error("re-enabled APST did not transition")
	}
}

func TestAPSTUnsupportedWithoutStates(t *testing.T) {
	d, _ := newTest(t, nil)
	if err := d.SetAPST(true); err != device.ErrNotSupported {
		t.Errorf("SetAPST = %v, want ErrNotSupported", err)
	}
	if d.APST() {
		t.Error("APST reported enabled without states")
	}
}

func TestAPSTConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Config)
	}{
		{"state above idle", func(c *Config) {
			withAPST(c)
			c.NonOpStates[0].PowerW = 2.0
		}},
		{"zero idle threshold", func(c *Config) {
			withAPST(c)
			c.NonOpStates[0].IdleBefore = 0
		}},
		{"thresholds not increasing", func(c *Config) {
			withAPST(c)
			c.NonOpStates[1].IdleBefore = 50 * time.Millisecond
		}},
		{"deeper state not cheaper", func(c *Config) {
			withAPST(c)
			c.NonOpStates[1].PowerW = 0.4
		}},
		{"apst without states", func(c *Config) {
			c.PowerStates = nil
			c.APSTDefault = true
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			tc.mod(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("invalid APST config accepted")
			}
		})
	}
}

func TestAPSTInteractsWithALPMStandby(t *testing.T) {
	d, eng := newTest(t, func(c *Config) {
		withAPST(c)
		withStandby(c)
		c.NonOpStates = []NonOpState{{PowerW: 0.2, IdleBefore: 100 * time.Millisecond, ExitLatency: time.Millisecond}}
		c.APSTDefault = true
	})
	eng.RunUntil(150 * time.Millisecond)
	if d.NonOpIndex() != 0 {
		t.Fatal("not in non-op state")
	}
	// Explicit ALPM standby overrides APST.
	if err := d.EnterStandby(); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(eng.Now() + time.Second)
	if !d.Standby() || d.NonOpIndex() != -1 {
		t.Error("standby did not supersede the non-op state")
	}
	if got := d.InstantPower(); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("slumber power = %v, want 0.3 (PSlumber)", got)
	}
}

func TestAPSTDeterministicWithRNG(t *testing.T) {
	run := func() time.Duration {
		cfg := testConfig()
		withAPST(&cfg)
		eng := sim.NewEngine()
		d, err := New(cfg, eng, sim.NewRNG(5))
		if err != nil {
			t.Fatal(err)
		}
		eng.RunUntil(1100 * time.Millisecond)
		done := false
		d.Submit(device.Request{Op: device.OpRead, Offset: 0, Size: 4096}, func() { done = true })
		eng.Run()
		if !done {
			t.Fatal("incomplete")
		}
		return eng.Now()
	}
	if run() != run() {
		t.Fatal("APST runs not deterministic")
	}
}
