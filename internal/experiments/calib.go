package experiments

import (
	"fmt"
	"io"

	"wattio/internal/calib"
	"wattio/internal/scenario"
	"wattio/internal/serve"
)

func init() {
	register("calib", "Learned device models: NNLS calibration, cross-validated fit gates, differential fleet run", runCalib)
}

// calibScenario picks the scenario driving the calibration experiment:
// the attached one when it carries an enabled calib stanza, else the
// built-in "calib" scenario.
func calibScenario(s Scale) (*scenario.Spec, Scale) {
	sp := s.Scenario
	if sp == nil || sp.Fleet == nil || sp.Fleet.Calib == nil || !sp.Fleet.Calib.Enable {
		sp = scenario.BuiltIn("calib")
		s.Runtime = sp.Runtime.D()
	}
	return sp, s
}

func runCalib(s Scale, w io.Writer) error {
	sp, s := calibScenario(s)
	c := sp.Fleet.Calib
	opt := calib.Options{
		PointRuntime: c.PointRuntime.D(),
		Warmup:       c.Warmup.D(),
		Seed:         c.Seed,
		Folds:        c.Folds,
	}
	profiles := sp.Fleet.Profiles
	if len(profiles) == 0 {
		profiles = []string{"SSD2"}
	}

	section(w, "Learned device models: NNLS calibration with cross-validated gates")
	fmt.Fprintf(w, "%-6s %-7s %-10s %-8s  per-state static W / write nJ/B / read nJ/B\n",
		"class", "states", "CV R2", "MAPE")
	var gateErr error
	for _, p := range profiles {
		f, err := calib.FitClass(p, opt)
		if err != nil {
			return err
		}
		detail := ""
		for _, st := range f.Model.States {
			detail += fmt.Sprintf("  %.2f/%.2f/%.2f", st.Energy.StaticW,
				st.Energy.WriteByteJ*1e9, st.Energy.ReadByteJ*1e9)
		}
		verdict := "ok"
		if !f.GatesOK() {
			verdict = "FAIL"
			if gateErr == nil {
				gateErr = fmt.Errorf("calib: %s fit misses gates: R2 %.4f (>= %.2f), MAPE %.4f (<= %.2f)",
					p, f.R2, calib.GateR2, f.MAPE, calib.GateMAPE)
			}
		}
		fmt.Fprintf(w, "%-6s %-7d %-10.4f %-7.2f%% %s  [%s]\n",
			p, len(f.Model.States), f.R2, 100*f.MAPE, detail, verdict)
	}
	fmt.Fprintf(w, "gates: CV R2 >= %.2f, MAPE <= %.0f%% for every fitted class\n",
		calib.GateR2, 100*calib.GateMAPE)
	if gateErr != nil {
		return gateErr
	}

	// Differential fleet run: the same scenario served twice, once with
	// mechanistic simulators and once with every profile swapped to its
	// fitted model.
	fittedSpec, err := sp.ServeSpec(s.Runtime)
	if err != nil {
		return err
	}
	mechSpec := fittedSpec
	mechSpec.Fitted = nil
	mech, err := serve.Run(mechSpec)
	if err != nil {
		return err
	}
	fitted, err := serve.Run(fittedSpec)
	if err != nil {
		return err
	}
	powErr := relFrac(fitted.AvgPowerW, mech.AvgPowerW)
	tputErr := relFrac(fitted.ThroughputMBps, mech.ThroughputMBps)

	section(w, "Differential fleet run: fitted vs mechanistic")
	fmt.Fprintf(w, "fleet: %d devices in %d groups across %d shards, horizon %v\n",
		mech.Devices, mech.Groups, mech.Shards, fittedSpec.Horizon)
	fmt.Fprintf(w, "power: mechanistic %.2f W avg, fitted %.2f W avg (disagreement %.2f%%, gate %.0f%%)\n",
		mech.AvgPowerW, fitted.AvgPowerW, 100*powErr, 100*calib.GateMAPE)
	fmt.Fprintf(w, "throughput: mechanistic %.1f MB/s, fitted %.1f MB/s (disagreement %.2f%%)\n",
		mech.ThroughputMBps, fitted.ThroughputMBps, 100*tputErr)
	fmt.Fprintf(w, "completed: mechanistic %d, fitted %d\n", mech.Completed, fitted.Completed)

	if powErr > calib.GateMAPE {
		return fmt.Errorf("calib: fitted fleet power disagrees with mechanistic by %.2f%% (gate %.0f%%)",
			100*powErr, 100*calib.GateMAPE)
	}
	if fitted.Completed == 0 {
		return fmt.Errorf("calib: fitted fleet completed no IO")
	}
	return nil
}
