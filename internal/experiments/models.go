package experiments

import (
	"fmt"
	"io"

	"wattio/internal/core"
	"wattio/internal/device"
	"wattio/internal/sweep"
	"wattio/internal/workload"
)

// modelProfiles is the device set the modeling experiments sweep:
// the attached scenario's device profiles, or the paper's published
// four-device set when no scenario (or an empty one) is attached.
func modelProfiles(s Scale) []string {
	return s.Scenario.ModelProfiles()
}

// Figure10 builds the paper's random-write power-throughput models:
// the full chunk × depth grid for every device, including SSD2's (and
// SSD1's) power states. Figure 10a plots all devices normalized;
// Figure 10b isolates SSD2's power states.
func Figure10(s Scale) (map[string]*core.Model, error) {
	models := map[string]*core.Model{}
	for _, name := range modelProfiles(s) {
		m, err := sweep.BuildModel(name, device.OpWrite, workload.Rand, s.Seed, s.Runtime, s.TotalBytes)
		if err != nil {
			return nil, err
		}
		models[name] = m
	}
	return models, nil
}

// Headline holds the §3.3 headline numbers derived from the Fig. 10
// models.
type Headline struct {
	// SSD2DynamicRange is the paper's 59.4% claim: SSD2's power dynamic
	// range as a fraction of its maximum average power.
	SSD2DynamicRange float64
	// HDDThroughputFloor is the paper's "drop to 4% of maximum":
	// minimum over maximum normalized throughput for the HDD.
	HDDThroughputFloor float64
	// Curtailment is the worked SSD1 example: from qd 64 / 256 KiB,
	// reduce power 20% and curtail the throughput difference.
	Curtailment core.CurtailmentPlan
}

// ComputeHeadline derives the headline numbers from Fig. 10 models.
func ComputeHeadline(models map[string]*core.Model) (Headline, error) {
	var h Headline
	ssd2, ok := models["SSD2"]
	if !ok {
		return h, fmt.Errorf("experiments: missing SSD2 model")
	}
	h.SSD2DynamicRange = ssd2.DynamicRangeFrac()

	hdd, ok := models["HDD"]
	if !ok {
		return h, fmt.Errorf("experiments: missing HDD model")
	}
	minT := hdd.MaxThroughputMBps()
	for _, smp := range hdd.Samples() {
		if smp.ThroughputMBps < minT {
			minT = smp.ThroughputMBps
		}
	}
	h.HDDThroughputFloor = minT / hdd.MaxThroughputMBps()

	ssd1, ok := models["SSD1"]
	if !ok {
		return h, fmt.Errorf("experiments: missing SSD1 model")
	}
	var from core.Sample
	found := false
	for _, smp := range ssd1.Samples() {
		if smp.PowerState == 0 && smp.Depth == 64 && smp.ChunkBytes == 256<<10 {
			from, found = smp, true
			break
		}
	}
	if !found {
		return h, fmt.Errorf("experiments: SSD1 qd64/256KiB point missing from model")
	}
	plan, err := ssd1.Curtail(from, 0.20)
	if err != nil {
		return h, err
	}
	h.Curtailment = plan
	return h, nil
}

func init() {
	register("fig10", "Figure 10: power-throughput model for random write", func(s Scale, w io.Writer) error {
		models, err := Figure10(s)
		if err != nil {
			return err
		}
		profiles := modelProfiles(s)
		section(w, "Figure 10a: normalized power vs throughput (all devices)")
		for _, name := range profiles {
			m := models[name]
			fmt.Fprintf(w, "%s: %d points, power range %.2f-%.2fW (dynamic range %.1f%%), max tput %.1f MB/s\n",
				name, len(m.Samples()), m.MinPowerW(), m.MaxPowerW(), 100*m.DynamicRangeFrac(), m.MaxThroughputMBps())
			for _, p := range m.Normalized() {
				fmt.Fprintf(w, "  tput=%.3f power=%.3f  (%v)\n", p.Throughput, p.Power, p.Sample.Config)
			}
		}
		chartModels(w, "Fig. 10a: normalized power-throughput model (random write)", models, profiles)
		if _, ok := models["SSD2"]; ok {
			section(w, "Figure 10b: SSD2 by power state")
			for ps := 0; ps < 3; ps++ {
				sub, err := models["SSD2"].Filter(func(x core.Sample) bool { return x.PowerState == ps })
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "ps%d: %d points, power %.2f-%.2fW, tput ≤ %.1f MB/s\n",
					ps, len(sub.Samples()), sub.MinPowerW(), sub.MaxPowerW(), sub.MaxThroughputMBps())
			}
		}
		return nil
	})
	register("headline", "§3.3 headline numbers (dynamic range, HDD floor, curtailment example)", func(s Scale, w io.Writer) error {
		models, err := Figure10(s)
		if err != nil {
			return err
		}
		h, err := ComputeHeadline(models)
		if err != nil {
			return err
		}
		section(w, "Headline numbers")
		fmt.Fprintf(w, "SSD2 power dynamic range: %.1f%% of max power (paper: 59.4%%)\n", 100*h.SSD2DynamicRange)
		fmt.Fprintf(w, "HDD throughput floor: %.1f%% of max (paper: ~4%%)\n", 100*h.HDDThroughputFloor)
		c := h.Curtailment
		fmt.Fprintf(w, "SSD1 curtailment example: from %v (%.2fW, %.0f MB/s)\n", c.From.Config, c.From.PowerW, c.From.ThroughputMBps)
		fmt.Fprintf(w, "  → %v (%.2fW, %.0f MB/s)\n", c.To.Config, c.To.PowerW, c.To.ThroughputMBps)
		fmt.Fprintf(w, "  power saved %.2fW (%.0f%%), curtail %.2f GiB/s best-effort, keep %.0f%% throughput\n",
			c.PowerSavedW, 100*c.PowerReduction, c.CurtailMBps/1073.74, 100*c.ThroughputKept)
		fmt.Fprintf(w, "  (paper: 20%% power cut → 40%% throughput cut → 1.3 GiB/s best-effort curtailment)\n")
		return nil
	})
}
