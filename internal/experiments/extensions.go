package experiments

import (
	"fmt"
	"io"
	"time"

	"wattio/internal/adaptive"
	"wattio/internal/catalog"
	"wattio/internal/device"
	"wattio/internal/sim"
	"wattio/internal/workload"
)

// This file holds extension experiments beyond the paper's figures,
// exercising the §4 discussion the paper could not evaluate:
//
//   - prop: power proportionality via power-aware IO redirection
//     (cf. SRCMap) — the paper's footnote 1 distinguishes adaptivity
//     from proportionality; redirection turns the former into the
//     latter.
//   - §4.1's co-throttling observation falls out of the same data: at
//     low request rates (e.g. after CPU throttling), consolidation +
//     standby beats spreading load thin across awake devices.

// PropRow is one offered-load level of the proportionality study.
type PropRow struct {
	LoadPct     int
	OfferedIOPS float64
	Active      int // consolidated active-set size

	SpreadW   float64 // all replicas awake
	ConsolW   float64 // active set scaled to load
	SpreadP99 time.Duration
	ConsolP99 time.Duration
}

// Proportionality measures ensemble power and tail latency for a
// 4-replica mirrored EVO set under open-loop random reads, comparing
// "spread" (all awake) against "consolidate" (active set sized to the
// load, the rest in ALPM slumber).
func Proportionality(s Scale) ([]PropRow, error) {
	// One replica sustains ~8k 4 KiB random read IOPS; size load
	// levels against the 4-replica aggregate.
	const perReplicaIOPS = 8000.0
	const replicas = 4
	levels := []int{5, 10, 25, 50, 75, 100}
	rows := make([]PropRow, 0, len(levels))
	for _, pct := range levels {
		offered := perReplicaIOPS * replicas * float64(pct) / 100 * 0.9 // 90% of saturation at full load
		active := (pct*replicas + 99) / 100
		if active < 1 {
			active = 1
		}
		if active > replicas {
			active = replicas
		}
		row := PropRow{LoadPct: pct, OfferedIOPS: offered, Active: active}
		var err error
		if row.SpreadW, row.SpreadP99, err = propRun(s, replicas, replicas, offered); err != nil {
			return nil, err
		}
		if row.ConsolW, row.ConsolP99, err = propRun(s, replicas, active, offered); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// propRun measures one (active set, offered load) cell.
func propRun(s Scale, replicas, active int, iops float64) (avgW float64, p99 time.Duration, err error) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(s.Seed)
	devs := make([]device.Device, replicas)
	for i := range devs {
		devs[i] = catalog.NewEVO(eng, rng.Stream(fmt.Sprint("replica", i)))
	}
	mirror, err := adaptive.NewRedirector("mirror", devs, active)
	if err != nil {
		return 0, 0, err
	}
	eng.RunUntil(eng.Now() + time.Second) // let standby transitions settle

	dur := s.Runtime
	if dur > 5*time.Second {
		dur = 5 * time.Second
	}
	e0, t0 := mirror.EnergyJ(), eng.Now()
	res := workload.Run(eng, mirror, workload.Job{
		Op: device.OpRead, Pattern: workload.Rand, BS: 4 << 10,
		Arrival: workload.OpenPoisson, RateIOPS: iops, Runtime: dur,
	}, rng)
	avgW = (mirror.EnergyJ() - e0) / (eng.Now() - t0).Seconds()
	return avgW, res.LatP99, nil
}

func init() {
	register("prop", "Extension: power proportionality via IO redirection (cf. SRCMap, §4)", func(s Scale, w io.Writer) error {
		rows, err := Proportionality(s)
		if err != nil {
			return err
		}
		section(w, "Extension: power proportionality (4 mirrored EVOs, open-loop 4 KiB reads)")
		fmt.Fprintf(w, "%-6s %-9s %-7s %-10s %-12s %-12s %s\n",
			"load%", "IOPS", "active", "spread(W)", "consol(W)", "p99 spread", "p99 consol")
		for _, r := range rows {
			fmt.Fprintf(w, "%-6d %-9.0f %-7d %-10.3f %-12.3f %-12v %v\n",
				r.LoadPct, r.OfferedIOPS, r.Active, r.SpreadW, r.ConsolW,
				r.SpreadP99.Round(time.Microsecond), r.ConsolP99.Round(time.Microsecond))
		}
		fmt.Fprintln(w, "\n§4.1 reading: at low request rates (CPU-throttled periods), consolidation +")
		fmt.Fprintln(w, "standby draws less than spreading the load across awake devices, at a bounded")
		fmt.Fprintln(w, "tail-latency cost — redirection is preferred over per-device IO shaping there.")
		return nil
	})
}
