package experiments

import (
	"fmt"
	"io"
	"time"

	"wattio/internal/catalog"
	"wattio/internal/device"
	"wattio/internal/measure"
	"wattio/internal/sata"
	"wattio/internal/sim"
	"wattio/internal/stats"
	"wattio/internal/sweep"
	"wattio/internal/trace"
	"wattio/internal/workload"
)

// Fig2 is the power-measurement example: a millisecond-scale trace of
// SSD1 under random write (Fig. 2a) and the power distribution of every
// device under the same experiment (Fig. 2b).
type Fig2 struct {
	Trace   *trace.PowerTrace        // SSD1, chunk 256 KiB, qd 64
	Violins map[string]stats.Summary // per-device power distributions
}

// Figure2 runs the paper's example experiment (random write, chunk size
// 256 KiB, queue depth 64) on all four devices with full traces.
func Figure2(s Scale) (Fig2, error) {
	out := Fig2{Violins: map[string]stats.Summary{}}
	for _, name := range []string{"SSD1", "SSD2", "SSD3", "HDD"} {
		pts, err := sweep.Run(sweep.Spec{
			Device:     name,
			Ops:        []device.Op{device.OpWrite},
			Patterns:   []workload.Pattern{workload.Rand},
			Chunks:     []int64{256 << 10},
			Depths:     []int{64},
			Runtime:    s.Runtime,
			TotalBytes: s.TotalBytes,
			Seed:       s.Seed,
			KeepTrace:  true,
		})
		if err != nil {
			return Fig2{}, err
		}
		out.Violins[name] = pts[0].Trace.Summary()
		if name == "SSD1" {
			out.Trace = pts[0].Trace
		}
	}
	return out, nil
}

// Fig7 is the 860 EVO standby-transition experiment: power traces for
// idle→standby (ALPM SLUMBER issued at 200 ms) and standby→idle (wake
// issued at 400 ms), plus the measured transition completion times.
type Fig7 struct {
	IdleToStandby *trace.PowerTrace
	StandbyToIdle *trace.PowerTrace
	EnterDone     time.Duration // when power settled at slumber level
	ExitDone      time.Duration // when power settled back at idle level
}

// Figure7 regenerates the standby transition traces.
func Figure7(s Scale) (Fig7, error) {
	var out Fig7

	// (a) idle → standby: ALPM SLUMBER at t=200 ms, trace for 1 s.
	{
		eng := sim.NewEngine()
		rng := sim.NewRNG(s.Seed)
		dev := catalog.NewEVO(eng, rng)
		port, err := sata.NewPort(dev)
		if err != nil {
			return Fig7{}, err
		}
		rig, err := measure.NewRig(eng, rng, dev, measure.DefaultRigConfig(5))
		if err != nil {
			return Fig7{}, err
		}
		rig.Start()
		eng.Post(200*time.Millisecond, func() {
			if err := port.SetLinkPM(sata.LinkSlumber); err != nil {
				panic(err)
			}
		})
		eng.RunUntil(time.Second)
		rig.Stop()
		out.IdleToStandby = rig.Trace()
		out.EnterDone = settleTime(out.IdleToStandby, 0.17, 0.01)
	}

	// (b) standby → idle: wake at t=400 ms, trace for 1 s.
	{
		eng := sim.NewEngine()
		rng := sim.NewRNG(s.Seed)
		dev := catalog.NewEVO(eng, rng)
		port, err := sata.NewPort(dev)
		if err != nil {
			return Fig7{}, err
		}
		if err := port.SetLinkPM(sata.LinkSlumber); err != nil {
			return Fig7{}, err
		}
		eng.RunUntil(2 * time.Second) // settle into slumber before tracing
		rig, err := measure.NewRig(eng, rng, dev, measure.DefaultRigConfig(5))
		if err != nil {
			return Fig7{}, err
		}
		base := eng.Now()
		rig.Start()
		eng.Post(base+400*time.Millisecond, func() {
			if err := port.SetLinkPM(sata.LinkActive); err != nil {
				panic(err)
			}
		})
		eng.RunUntil(base + time.Second)
		rig.Stop()
		// Re-zero the trace to the capture window for reporting.
		rebased := &trace.PowerTrace{}
		for i := 0; i < rig.Trace().Len(); i++ {
			sm := rig.Trace().At(i)
			rebased.Append(sm.T-base, sm.W)
		}
		out.StandbyToIdle = rebased
		out.ExitDone = settleTime(out.StandbyToIdle, 0.35, 0.02)
	}
	return out, nil
}

// settleTime returns the end of the last 25 ms window whose mean power
// is not within tol of target — i.e., when the transition finished
// settling. Windowed means keep single-sample ADC noise from counting
// as "unsettled". Zero means the trace never left the target level.
func settleTime(tr *trace.PowerTrace, target, tol float64) time.Duration {
	const window = 25 * time.Millisecond
	last := time.Duration(0)
	if tr.Len() == 0 {
		return 0
	}
	end := tr.At(tr.Len() - 1).T
	for t := time.Duration(0); t+window <= end; t += window {
		win := tr.Between(t, t+window)
		if win.Len() == 0 {
			continue
		}
		if m := win.Mean(); m > target+tol || m < target-tol {
			last = t + window
		}
	}
	return last
}

func init() {
	register("fig2", "Figure 2: power measurement example (trace and distribution)", func(s Scale, w io.Writer) error {
		f, err := Figure2(s)
		if err != nil {
			return err
		}
		section(w, "Figure 2a: SSD1 random write power trace (first 1.3 s, every 50th ms)")
		for i := 0; i < f.Trace.Len() && f.Trace.At(i).T < 1300*time.Millisecond; i += 50 {
			sm := f.Trace.At(i)
			fmt.Fprintf(w, "t=%4dms %6.2fW\n", sm.T.Milliseconds(), sm.W)
		}
		section(w, "Figure 2b: power distribution per device (violin summary)")
		for _, name := range []string{"SSD1", "SSD2", "SSD3", "HDD"} {
			fmt.Fprintf(w, "%-5s %s\n", name, f.Violins[name])
		}
		return nil
	})
	register("fig7", "Figure 7: 860 EVO power during standby transitions", func(s Scale, w io.Writer) error {
		f, err := Figure7(s)
		if err != nil {
			return err
		}
		section(w, "Figure 7a: idle → standby (SLUMBER at 200 ms)")
		printTraceRows(w, f.IdleToStandby)
		fmt.Fprintf(w, "transition settled at %v (paper: within 0.5 s of the command)\n", f.EnterDone)
		section(w, "Figure 7b: standby → idle (wake at 400 ms)")
		printTraceRows(w, f.StandbyToIdle)
		fmt.Fprintf(w, "transition settled at %v\n", f.ExitDone)
		return nil
	})
}

func printTraceRows(w io.Writer, tr *trace.PowerTrace) {
	for i := 0; i < tr.Len() && tr.At(i).T < time.Second; i += 25 {
		sm := tr.At(i)
		fmt.Fprintf(w, "t=%4dms %5.3fW\n", sm.T.Milliseconds(), sm.W)
	}
}
