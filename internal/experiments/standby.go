package experiments

import (
	"fmt"
	"io"
	"time"

	"wattio/internal/catalog"
	"wattio/internal/device"
	"wattio/internal/measure"
	"wattio/internal/sim"
	"wattio/internal/sweep"
)

// StandbyRow reports one device's §3.2.2 standby numbers.
type StandbyRow struct {
	Device    string
	IdleW     float64
	StandbyW  float64
	SavedW    float64
	EnterTook time.Duration // command to settled standby power
	ExitTook  time.Duration // wake command to settled idle power
	Supported bool
}

// StandbyStudy measures standby levels and transition times for the two
// devices the paper examines (the HDD and the 860 EVO) and records that
// the data-center SSDs decline standby.
func StandbyStudy(s Scale) ([]StandbyRow, error) {
	var rows []StandbyRow
	for _, name := range []string{"HDD", "EVO", "SSD1", "SSD2", "SSD3"} {
		eng := sim.NewEngine()
		rng := sim.NewRNG(s.Seed)
		dev, _ := catalog.ByName(name, eng, rng)
		row := StandbyRow{Device: name}

		row.IdleW = avgPower(eng, rng, dev, 2*time.Second)
		if err := dev.EnterStandby(); err != nil {
			if err == device.ErrNotSupported {
				rows = append(rows, row)
				continue
			}
			return nil, err
		}
		row.Supported = true
		enterAt := eng.Now()
		waitSettled(eng, dev, true)
		row.EnterTook = eng.Now() - enterAt
		row.StandbyW = avgPower(eng, rng, dev, 2*time.Second)
		row.SavedW = row.IdleW - row.StandbyW

		exitAt := eng.Now()
		if err := dev.Wake(); err != nil {
			return nil, err
		}
		waitSettled(eng, dev, false)
		row.ExitTook = eng.Now() - exitAt
		rows = append(rows, row)
	}
	return rows, nil
}

// avgPower measures mean power over a window through the rig.
func avgPower(eng *sim.Engine, rng *sim.RNG, dev device.Device, window time.Duration) float64 {
	rig, err := measure.NewRig(eng, rng.Stream(fmt.Sprint("probe", eng.Now())), dev, measure.DefaultRigConfig(sweep.RailFor(dev)))
	if err != nil {
		panic(err)
	}
	rig.Start()
	eng.RunUntil(eng.Now() + window)
	rig.Stop()
	return rig.Trace().Mean()
}

// waitSettled advances time until the device reports the requested
// standby state with no transition in progress.
func waitSettled(eng *sim.Engine, dev device.Device, standby bool) {
	deadline := eng.Now() + 60*time.Second
	for eng.Now() < deadline {
		eng.RunUntil(eng.Now() + 10*time.Millisecond)
		if dev.Standby() == standby && dev.Settled() {
			return
		}
	}
	panic(fmt.Sprintf("experiments: %s never settled (standby=%v)", dev.Name(), standby))
}

func init() {
	register("standby", "§3.2.2 low-power standby levels and transition times", func(s Scale, w io.Writer) error {
		rows, err := StandbyStudy(s)
		if err != nil {
			return err
		}
		section(w, "Low-power standby study")
		fmt.Fprintf(w, "%-5s %-9s %-9s %-8s %-10s %s\n", "Dev", "idle(W)", "stdby(W)", "saved(W)", "enter", "exit")
		for _, r := range rows {
			if !r.Supported {
				fmt.Fprintf(w, "%-5s %-9.2f standby not supported (data-center SSD)\n", r.Device, r.IdleW)
				continue
			}
			fmt.Fprintf(w, "%-5s %-9.2f %-9.2f %-8.2f %-10v %v\n",
				r.Device, r.IdleW, r.StandbyW, r.SavedW, r.EnterTook.Round(time.Millisecond), r.ExitTook.Round(time.Millisecond))
		}
		fmt.Fprintln(w, "(paper: HDD 3.76→1.1 W saving 2.66 W, spin transitions up to 10 s;")
		fmt.Fprintln(w, " 860 EVO 0.35→0.17 W within 0.5 s)")
		return nil
	})
}
