package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"wattio/internal/core"
	"wattio/internal/plot"
)

// This file gives every figure two extra output forms: ASCII charts
// (rendered inline by the registered Run functions) and CSV files for
// external plotting (ExportCSV), so the repository can regenerate the
// paper's figures both in a terminal and in a notebook.

// chartSeries renders line series as an ASCII chart.
func chartSeries(w io.Writer, title, xName, yName string, series []Series) {
	c := plot.New(title, 64, 14).Axes(xName, yName).LogX()
	for _, s := range series {
		xs := make([]float64, len(s.X))
		for i, x := range s.X {
			xs[i] = float64(x)
		}
		if err := c.Line(s.Label, xs, s.Y); err != nil {
			fmt.Fprintf(w, "(chart error: %v)\n", err)
			return
		}
	}
	if err := c.Render(w); err != nil {
		fmt.Fprintf(w, "(chart error: %v)\n", err)
	}
}

// chartDeviceSweeps renders Fig. 8/9-style per-device sweeps: one chart
// for power, one for throughput.
func chartDeviceSweeps(w io.Writer, title, xName string, sweeps []DeviceSweep) {
	for _, metric := range []string{"power (W)", "throughput (MB/s)"} {
		c := plot.New(title+" — "+metric, 64, 14).Axes(xName, metric).LogX()
		for _, d := range sweeps {
			xs := make([]float64, len(d.X))
			for i, x := range d.X {
				xs[i] = float64(x)
			}
			ys := d.PowerW
			if metric != "power (W)" {
				ys = d.MBps
			}
			if err := c.Line(d.Device, xs, ys); err != nil {
				fmt.Fprintf(w, "(chart error: %v)\n", err)
				return
			}
		}
		if err := c.Render(w); err != nil {
			fmt.Fprintf(w, "(chart error: %v)\n", err)
		}
	}
}

// chartModels renders the Fig. 10 normalized scatter.
func chartModels(w io.Writer, title string, models map[string]*core.Model, order []string) {
	c := plot.New(title, 64, 18).Axes("normalized throughput", "normalized power").Bounds(0, 1, 0, 1)
	for _, name := range order {
		m, ok := models[name]
		if !ok {
			continue
		}
		var xs, ys []float64
		for _, p := range m.Normalized() {
			xs = append(xs, p.Throughput)
			ys = append(ys, p.Power)
		}
		if err := c.Scatter(name, xs, ys); err != nil {
			fmt.Fprintf(w, "(chart error: %v)\n", err)
			return
		}
	}
	if err := c.Render(w); err != nil {
		fmt.Fprintf(w, "(chart error: %v)\n", err)
	}
}

// seriesCSV writes "x,label1,label2,..." rows for aligned series.
func seriesCSV(w io.Writer, xName string, series []Series) error {
	if len(series) == 0 {
		return fmt.Errorf("experiments: no series to export")
	}
	fmt.Fprintf(w, "%s", xName)
	for _, s := range series {
		fmt.Fprintf(w, ",%s", s.Label)
	}
	fmt.Fprintln(w)
	for i := range series[0].X {
		fmt.Fprintf(w, "%d", series[0].X[i])
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(w, ",%.6g", s.Y[i])
			} else {
				fmt.Fprint(w, ",")
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// sweepsCSV writes device sweeps as long-form rows.
func sweepsCSV(w io.Writer, xName string, sweeps []DeviceSweep) error {
	fmt.Fprintf(w, "device,%s,power_w,mbps\n", xName)
	for _, d := range sweeps {
		for i := range d.X {
			fmt.Fprintf(w, "%s,%d,%.6g,%.6g\n", d.Device, d.X[i], d.PowerW[i], d.MBps[i])
		}
	}
	return nil
}

// modelCSV writes a power-throughput model as one row per sample.
func modelCSV(w io.Writer, m *core.Model) error {
	fmt.Fprintln(w, "device,power_state,random,write,chunk_bytes,depth,power_w,mbps,norm_power,norm_tput,avg_lat_ns,p99_lat_ns")
	for _, p := range m.Normalized() {
		s := p.Sample
		fmt.Fprintf(w, "%s,%d,%v,%v,%d,%d,%.6g,%.6g,%.6g,%.6g,%d,%d\n",
			s.Device, s.PowerState, s.Random, s.Write, s.ChunkBytes, s.Depth,
			s.PowerW, s.ThroughputMBps, p.Power, p.Throughput, s.AvgLat.Nanoseconds(), s.P99Lat.Nanoseconds())
	}
	return nil
}

// ExportCSV runs the named experiment and writes its data as CSV files
// under dir, returning the files written.
func ExportCSV(id string, s Scale, dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	write := func(name string, fill func(io.Writer) error) (string, error) {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return "", err
		}
		defer f.Close()
		if err := fill(f); err != nil {
			return "", err
		}
		return path, nil
	}
	var files []string
	add := func(name string, fill func(io.Writer) error) error {
		p, err := write(name, fill)
		if err != nil {
			return err
		}
		files = append(files, p)
		return nil
	}

	switch id {
	case "fig2":
		f, err := Figure2(s)
		if err != nil {
			return nil, err
		}
		if err := add("fig2a_trace.csv", f.Trace.WriteCSV); err != nil {
			return nil, err
		}
		return files, add("fig2b_violins.csv", func(w io.Writer) error {
			fmt.Fprintln(w, "device,n,min,p25,median,mean,p75,p99,max,stddev")
			for _, name := range []string{"SSD1", "SSD2", "SSD3", "HDD"} {
				v := f.Violins[name]
				fmt.Fprintf(w, "%s,%d,%.4g,%.4g,%.4g,%.4g,%.4g,%.4g,%.4g,%.4g\n",
					name, v.N, v.Min, v.P25, v.Median, v.Mean, v.P75, v.P99, v.Max, v.Stddev)
			}
			return nil
		})
	case "fig3":
		series, err := Figure3(s)
		if err != nil {
			return nil, err
		}
		return files, add("fig3_power.csv", func(w io.Writer) error { return seriesCSV(w, "chunk_bytes", series) })
	case "fig4":
		series, err := Figure4(s)
		if err != nil {
			return nil, err
		}
		return files, add("fig4_throughput.csv", func(w io.Writer) error { return seriesCSV(w, "chunk_bytes", series) })
	case "fig5", "fig6":
		fig := Figure5
		if id == "fig6" {
			fig = Figure6
		}
		avg, p99, err := fig(s)
		if err != nil {
			return nil, err
		}
		if err := add(id+"a_avg.csv", func(w io.Writer) error { return seriesCSV(w, "chunk_bytes", avg) }); err != nil {
			return nil, err
		}
		return files, add(id+"b_p99.csv", func(w io.Writer) error { return seriesCSV(w, "chunk_bytes", p99) })
	case "fig7":
		f, err := Figure7(s)
		if err != nil {
			return nil, err
		}
		if err := add("fig7a_enter.csv", f.IdleToStandby.WriteCSV); err != nil {
			return nil, err
		}
		return files, add("fig7b_exit.csv", f.StandbyToIdle.WriteCSV)
	case "fig8", "fig9":
		fig, x := Figure8, "chunk_bytes"
		if id == "fig9" {
			fig, x = Figure9, "depth"
		}
		sweeps, err := fig(s)
		if err != nil {
			return nil, err
		}
		return files, add(id+".csv", func(w io.Writer) error { return sweepsCSV(w, x, sweeps) })
	case "fig10":
		models, err := Figure10(s)
		if err != nil {
			return nil, err
		}
		for _, name := range []string{"SSD1", "SSD2", "SSD3", "HDD"} {
			m := models[name]
			if err := add("fig10_"+name+".csv", func(w io.Writer) error { return modelCSV(w, m) }); err != nil {
				return nil, err
			}
		}
		return files, nil
	default:
		return nil, fmt.Errorf("experiments: no CSV exporter for %q", id)
	}
}
