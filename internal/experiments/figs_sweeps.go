package experiments

import (
	"fmt"
	"io"

	"wattio/internal/device"
	"wattio/internal/sweep"
	"wattio/internal/workload"
)

// Series is one plotted line: a metric as a function of the swept
// x-axis values (chunk sizes or queue depths).
type Series struct {
	Label string
	X     []int64
	Y     []float64
}

// Figure3 regenerates "SSD2 random write average power under different
// power states" at queue depths 64 and 1: one series per (power state,
// depth) pair, power in watts versus chunk size.
func Figure3(s Scale) ([]Series, error) {
	var out []Series
	for _, depth := range []int{64, 1} {
		for ps := 0; ps < 3; ps++ {
			pts, err := sweep.Run(sweep.Spec{
				Device:      "SSD2",
				PowerStates: []int{ps},
				Ops:         []device.Op{device.OpWrite},
				Patterns:    []workload.Pattern{workload.Rand},
				Chunks:      sweep.PaperChunks(),
				Depths:      []int{depth},
				Runtime:     s.Runtime, TotalBytes: s.TotalBytes, Seed: s.Seed,
			})
			if err != nil {
				return nil, err
			}
			ser := Series{Label: fmt.Sprintf("ps%d qd%d", ps, depth)}
			for _, p := range pts {
				ser.X = append(ser.X, p.Config.ChunkBytes)
				ser.Y = append(ser.Y, p.AvgPowerW)
			}
			out = append(out, ser)
		}
	}
	return out, nil
}

// Figure4 regenerates "SSD2 throughput under different power states"
// (queue depth 64): sequential writes and reads, throughput in MB/s
// versus chunk size, one series per (direction, power state).
func Figure4(s Scale) ([]Series, error) {
	var out []Series
	for _, op := range []device.Op{device.OpWrite, device.OpRead} {
		for ps := 0; ps < 3; ps++ {
			pts, err := sweep.Run(sweep.Spec{
				Device:      "SSD2",
				PowerStates: []int{ps},
				Ops:         []device.Op{op},
				Patterns:    []workload.Pattern{workload.Seq},
				Chunks:      sweep.PaperChunks(),
				Depths:      []int{64},
				Runtime:     s.Runtime, TotalBytes: s.TotalBytes, Seed: s.Seed,
			})
			if err != nil {
				return nil, err
			}
			ser := Series{Label: fmt.Sprintf("seq %s ps%d", op, ps)}
			for _, p := range pts {
				ser.X = append(ser.X, p.Config.ChunkBytes)
				ser.Y = append(ser.Y, p.Result.BandwidthMBps)
			}
			out = append(out, ser)
		}
	}
	return out, nil
}

// latencyFigure runs the Fig. 5/6 protocol: the given op at queue depth
// 1 across chunk sizes and power states, reporting average and p99
// latency normalized to ps0 at the same chunk size.
func latencyFigure(s Scale, op device.Op) (avg, p99 []Series, err error) {
	type cell struct{ avgNs, p99Ns float64 }
	table := make([][]cell, 3)
	for ps := 0; ps < 3; ps++ {
		pts, err := sweep.Run(sweep.Spec{
			Device:      "SSD2",
			PowerStates: []int{ps},
			Ops:         []device.Op{op},
			Patterns:    []workload.Pattern{workload.Rand},
			Chunks:      sweep.PaperChunks(),
			Depths:      []int{1},
			Runtime:     s.Runtime, TotalBytes: s.TotalBytes, Seed: s.Seed,
		})
		if err != nil {
			return nil, nil, err
		}
		for _, p := range pts {
			table[ps] = append(table[ps], cell{float64(p.Result.LatAvg), float64(p.Result.LatP99)})
		}
	}
	chunks := sweep.PaperChunks()
	for ps := 0; ps < 3; ps++ {
		a := Series{Label: fmt.Sprintf("ps%d", ps)}
		p := Series{Label: fmt.Sprintf("ps%d", ps)}
		for i, c := range chunks {
			a.X = append(a.X, c)
			p.X = append(p.X, c)
			a.Y = append(a.Y, table[ps][i].avgNs/table[0][i].avgNs)
			p.Y = append(p.Y, table[ps][i].p99Ns/table[0][i].p99Ns)
		}
		avg = append(avg, a)
		p99 = append(p99, p)
	}
	return avg, p99, nil
}

// Figure5 regenerates "SSD2 random write latency (queue depth 1)":
// average and 99th-percentile latency normalized to ps0.
func Figure5(s Scale) (avg, p99 []Series, err error) {
	return latencyFigure(s, device.OpWrite)
}

// Figure6 regenerates "SSD2 random read latency (queue depth 1)": the
// paper's non-trade-off — latency is flat across power states.
func Figure6(s Scale) (avg, p99 []Series, err error) {
	return latencyFigure(s, device.OpRead)
}

// DeviceSweep is one device's line in Figs. 8 and 9: power and
// throughput against the swept axis.
type DeviceSweep struct {
	Device string
	X      []int64
	PowerW []float64
	MBps   []float64
}

// Figure8 regenerates "random write power and throughput as chunk size
// varies (queue depth 64)" across all four devices.
func Figure8(s Scale) ([]DeviceSweep, error) {
	return deviceSweep(s, device.OpWrite, sweep.PaperChunks(), nil)
}

// Figure9 regenerates "random read power and throughput as queue depth
// varies (chunk size 4 KiB)" across all four devices.
func Figure9(s Scale) ([]DeviceSweep, error) {
	return deviceSweep(s, device.OpRead, nil, sweep.PaperDepths())
}

func deviceSweep(s Scale, op device.Op, chunks []int64, depths []int) ([]DeviceSweep, error) {
	var out []DeviceSweep
	for _, name := range []string{"SSD1", "SSD2", "SSD3", "HDD"} {
		spec := sweep.Spec{
			Device:   name,
			Ops:      []device.Op{op},
			Patterns: []workload.Pattern{workload.Rand},
			Runtime:  s.Runtime, TotalBytes: s.TotalBytes, Seed: s.Seed,
		}
		if chunks != nil {
			spec.Chunks = chunks
			spec.Depths = []int{64}
		} else {
			spec.Chunks = []int64{4 << 10}
			spec.Depths = depths
		}
		pts, err := sweep.Run(spec)
		if err != nil {
			return nil, err
		}
		ds := DeviceSweep{Device: name}
		for _, p := range pts {
			if chunks != nil {
				ds.X = append(ds.X, p.Config.ChunkBytes)
			} else {
				ds.X = append(ds.X, int64(p.Config.Depth))
			}
			ds.PowerW = append(ds.PowerW, p.AvgPowerW)
			ds.MBps = append(ds.MBps, p.Result.BandwidthMBps)
		}
		out = append(out, ds)
	}
	return out, nil
}

func writeSeries(w io.Writer, xName string, series []Series) {
	for _, s := range series {
		fmt.Fprintf(w, "%-16s", s.Label)
		for i := range s.X {
			fmt.Fprintf(w, " %s=%.3f", chunkLabel(xName, s.X[i]), s.Y[i])
		}
		fmt.Fprintln(w)
	}
}

func chunkLabel(xName string, v int64) string {
	if xName == "chunk" {
		return fmt.Sprintf("%dKiB", v/1024)
	}
	return fmt.Sprintf("qd%d", v)
}

func init() {
	register("fig3", "Figure 3: SSD2 random write average power under power states", func(s Scale, w io.Writer) error {
		series, err := Figure3(s)
		if err != nil {
			return err
		}
		section(w, "Figure 3: SSD2 random write avg power (W) vs chunk size")
		writeSeries(w, "chunk", series)
		chartSeries(w, "Fig. 3: SSD2 random write power", "chunk (KiB, log)", "W", series)
		return nil
	})
	register("fig4", "Figure 4: SSD2 sequential throughput under power states (qd 64)", func(s Scale, w io.Writer) error {
		series, err := Figure4(s)
		if err != nil {
			return err
		}
		section(w, "Figure 4: SSD2 sequential throughput (MB/s) vs chunk size")
		writeSeries(w, "chunk", series)
		chartSeries(w, "Fig. 4: SSD2 sequential throughput under power states", "chunk (log)", "MB/s", series)
		return nil
	})
	register("fig5", "Figure 5: SSD2 random write latency under power states (qd 1)", func(s Scale, w io.Writer) error {
		avg, p99, err := Figure5(s)
		if err != nil {
			return err
		}
		section(w, "Figure 5a: SSD2 random write avg latency (normalized to ps0)")
		writeSeries(w, "chunk", avg)
		section(w, "Figure 5b: SSD2 random write p99 latency (normalized to ps0)")
		writeSeries(w, "chunk", p99)
		chartSeries(w, "Fig. 5b: SSD2 random write p99 latency vs ps0", "chunk (log)", "ratio", p99)
		return nil
	})
	register("fig6", "Figure 6: SSD2 random read latency under power states (qd 1)", func(s Scale, w io.Writer) error {
		avg, p99, err := Figure6(s)
		if err != nil {
			return err
		}
		section(w, "Figure 6a: SSD2 random read avg latency (normalized to ps0)")
		writeSeries(w, "chunk", avg)
		section(w, "Figure 6b: SSD2 random read p99 latency (normalized to ps0)")
		writeSeries(w, "chunk", p99)
		return nil
	})
	register("fig8", "Figure 8: random write power and throughput vs chunk size (qd 64)", func(s Scale, w io.Writer) error {
		sweeps, err := Figure8(s)
		if err != nil {
			return err
		}
		section(w, "Figure 8: random write vs chunk size (qd 64)")
		writeDeviceSweeps(w, "chunk", sweeps)
		chartDeviceSweeps(w, "Fig. 8: random write (qd 64)", "chunk (log)", sweeps)
		return nil
	})
	register("fig9", "Figure 9: random read power and throughput vs IO depth (4 KiB)", func(s Scale, w io.Writer) error {
		sweeps, err := Figure9(s)
		if err != nil {
			return err
		}
		section(w, "Figure 9: random read vs IO depth (4 KiB)")
		writeDeviceSweeps(w, "depth", sweeps)
		chartDeviceSweeps(w, "Fig. 9: random read (4 KiB)", "depth (log)", sweeps)
		return nil
	})
}

func writeDeviceSweeps(w io.Writer, xName string, sweeps []DeviceSweep) {
	for _, ds := range sweeps {
		fmt.Fprintf(w, "%-5s power(W): ", ds.Device)
		for i := range ds.X {
			fmt.Fprintf(w, " %s=%.2f", chunkLabel(xName, ds.X[i]), ds.PowerW[i])
		}
		fmt.Fprintf(w, "\n%-5s tput(MB/s):", ds.Device)
		for i := range ds.X {
			fmt.Fprintf(w, " %s=%.1f", chunkLabel(xName, ds.X[i]), ds.MBps[i])
		}
		fmt.Fprintln(w)
	}
}
