package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"wattio/internal/scenario"
)

// fleetScale keeps the serving run small enough for the unit suite
// while still exercising replication, faults, and all three budget
// phases.
var fleetScale = Scale{
	Runtime:   600 * time.Millisecond,
	Seed:      42,
	FaultSeed: 1,
	Fleet:     FleetOptions{Size: 12, Replicas: 2, RateIOPS: 9000, FaultFrac: 0.25},
}

func TestFleetRuns(t *testing.T) {
	e, ok := ByID("fleet")
	if !ok {
		t.Fatal("fleet experiment not registered")
	}
	var sb strings.Builder
	if err := e.Run(fleetScale, &sb); err != nil {
		t.Fatalf("fleet: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"== Fleet serving", "throughput:", "budget W", "tracking OK", "power-cap probe OK"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestFleetDeterministicOutput pins the experiment's whole report: two
// runs must print byte-identical text, faults included.
func TestFleetDeterministicOutput(t *testing.T) {
	e, _ := ByID("fleet")
	var a, b strings.Builder
	if err := e.Run(fleetScale, &a); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(fleetScale, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("fleet output not reproducible:\n--- first\n%s\n--- second\n%s", a.String(), b.String())
	}
}

func TestFleetBadBudgetFlag(t *testing.T) {
	e, _ := ByID("fleet")
	s := fleetScale
	s.Fleet.Budget = "0s:nonsense"
	var sb strings.Builder
	if err := e.Run(s, &sb); err == nil {
		t.Fatal("malformed budget schedule accepted")
	}
}

func TestFleetSpecDefaults(t *testing.T) {
	spec, err := FleetSpec(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Size != 64 || spec.RateIOPS != 7000 {
		t.Fatalf("defaults not applied: %+v", spec)
	}
	if len(spec.Budget) != 3 {
		t.Fatalf("default schedule has %d steps, want 3", len(spec.Budget))
	}
	if spec.Budget[1].FleetW >= spec.Budget[0].FleetW || spec.Budget[2].FleetW <= spec.Budget[1].FleetW {
		t.Fatalf("default schedule is not a curtail-then-recover walk: %+v", spec.Budget)
	}
}

// TestFleetSpecFromScenario checks the spec pipeline end to end: a
// Scale carrying a declarative scenario materializes exactly the
// serving spec the scenario describes, fault scripts included, and
// legacy flag overrides still win over the spec.
func TestFleetSpecFromScenario(t *testing.T) {
	s := Quick
	s.Scenario = scenario.BuiltIn("stepped-budget")
	s.Runtime = 2 * time.Second
	spec, err := FleetSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Size != 64 || spec.Replicas != 2 {
		t.Fatalf("scenario fleet shape not applied: %+v", spec)
	}
	if len(spec.Budget) != 3 || spec.Budget[0].FleetW != 14.6*64 || spec.Budget[1].At != 600*time.Millisecond {
		t.Fatalf("scenario budget schedule not applied: %+v", spec.Budget)
	}
	if len(spec.Faults) != 1 || spec.Faults[0].Device != "SSD2#00003" {
		t.Fatalf("scenario fault script not applied: %+v", spec.Faults)
	}

	s.Fleet.Size = 32
	spec, err = FleetSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Size != 32 {
		t.Fatalf("flag override lost to scenario: size %d, want 32", spec.Size)
	}
}

// TestFleetScenarioFlagEquivalence pins the acceptance contract: the
// built-in "fleet" scenario and the bare flag path must produce the
// same serving spec.
func TestFleetScenarioFlagEquivalence(t *testing.T) {
	flags, err := FleetSpec(Quick)
	if err != nil {
		t.Fatal(err)
	}
	s := ScaleFor(scenario.BuiltIn("fleet"))
	spec, err := FleetSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", flags) != fmt.Sprintf("%+v", spec) {
		t.Fatalf("flag and scenario specs diverge:\nflags: %+v\nspec:  %+v", flags, spec)
	}
}
