package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// exportScale is deliberately tiny: export tests exercise format, not
// physics (the shape tests above cover that).
var exportScale = Scale{Runtime: 500 * time.Millisecond, TotalBytes: 64 << 20, Seed: 42}

func TestExportCSVFigures(t *testing.T) {
	dir := t.TempDir()
	cases := map[string][]string{
		"fig3": {"fig3_power.csv"},
		"fig8": {"fig8.csv"},
		"fig9": {"fig9.csv"},
	}
	for id, wantFiles := range cases {
		t.Run(id, func(t *testing.T) {
			files, err := ExportCSV(id, exportScale, dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(files) != len(wantFiles) {
				t.Fatalf("wrote %v, want %v", files, wantFiles)
			}
			for i, f := range files {
				if filepath.Base(f) != wantFiles[i] {
					t.Errorf("file %d = %s, want %s", i, filepath.Base(f), wantFiles[i])
				}
				data, err := os.ReadFile(f)
				if err != nil {
					t.Fatal(err)
				}
				lines := strings.Split(strings.TrimSpace(string(data)), "\n")
				if len(lines) < 2 {
					t.Errorf("%s has no data rows", f)
				}
				header := lines[0]
				if !strings.Contains(header, ",") {
					t.Errorf("%s header %q not CSV", f, header)
				}
				// Every row has the header's column count.
				cols := strings.Count(header, ",")
				for _, l := range lines[1:] {
					if strings.Count(l, ",") != cols {
						t.Errorf("%s ragged row %q", f, l)
					}
				}
			}
		})
	}
}

func TestExportCSVFig7Traces(t *testing.T) {
	dir := t.TempDir()
	files, err := ExportCSV("fig7", exportScale, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("wrote %d files, want 2", len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "time_ms,power_w\n") {
		t.Errorf("trace CSV header wrong: %q", string(data[:20]))
	}
}

func TestExportCSVUnknownID(t *testing.T) {
	if _, err := ExportCSV("table1", exportScale, t.TempDir()); err == nil {
		t.Error("table1 (no tabular exporter) accepted")
	}
	if _, err := ExportCSV("nope", exportScale, t.TempDir()); err == nil {
		t.Error("unknown id accepted")
	}
}
