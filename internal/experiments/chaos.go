package experiments

import (
	"fmt"
	"io"
	"time"

	"wattio/internal/adaptive"
	"wattio/internal/catalog"
	"wattio/internal/core"
	"wattio/internal/device"
	"wattio/internal/fault"
	"wattio/internal/scenario"
	"wattio/internal/sim"
	"wattio/internal/telemetry/invariant"
	"wattio/internal/workload"
)

// The chaos experiment runs the adaptive control plane against devices
// that do NOT obey every command — §4.1's "local failures of the
// storage system to control power", made deterministic by
// internal/fault. Four phases, each on its own engine:
//
//  1. governor: SSD2 refuses SetPowerState for the first half of the
//     run; the governor must retry with backoff and land the throttle
//     once the fault clears. A sliding-window cap probe checks the
//     post-recovery power, and an energy probe checks conservation
//     across the fault window.
//  2. redirector: one of three mirrored EVO replicas drops out
//     mid-run; IO must fail over to its siblings and drain back after
//     recovery.
//  3. budget: a fleet device refuses to throttle; the budget
//     controller reserves its worst-case draw and tightens its
//     sibling's state so the fleet still fits the budget.
//  4. rollout: a staged leaf domain cannot apply its power cap; the
//     power audit catches it and the rollout quarantines the leaf,
//     skipping it in later stages.

// ChaosReport holds the chaos experiment's measured outcomes; the
// chaos tests assert recovery end to end on these fields.
type ChaosReport struct {
	// Phase 1: governor vs. power-command faults.
	GovFaultEnd     time.Duration // scripted fault window [0, GovFaultEnd)
	GovFailures     int
	GovRetries      int
	GovSteps        int
	GovRecoveryLat  time.Duration // fault end → first applied transition
	GovFinalState   int
	GovWorstWindowW float64 // post-recovery sliding-window average
	GovCapOK        bool    // cap probe Check over the post-recovery tail
	GovEnergyOK     bool    // energy conservation across the fault window
	GovIORetries    int     // transient-IO-error retries drawn from FaultSeed

	// Phase 2: redirector vs. replica dropout.
	RedirFailovers     int
	RedirDropStart     time.Duration
	RedirDropEnd       time.Duration
	RedirBefore        []int // per-replica completions at drop start
	RedirDuring        []int // completions gained inside the drop window
	RedirAfter         []int // completions gained after recovery
	RedirWakesOnDemand int

	// Phase 3: budget controller vs. a device refusing to throttle.
	BudgetW             float64
	BudgetCompensations int
	BudgetStuck         []string
	BudgetAssignment    core.Assignment
	BudgetSiblingState  int // power state the healthy sibling was tightened to

	// Phase 4: rollout power audit vs. an uncappable leaf.
	RolloutStaged      []string
	RolloutQuarantined []string
	RolloutRestaged    []string
	RolloutLeafAvgW    map[string]float64
}

// chaosParams resolves the chaos parameters for a run: the attached
// scenario's chaos section (when one is attached) with the published
// defaults filled into unset fields.
func chaosParams(s Scale) scenario.ChaosSpec {
	var c *scenario.ChaosSpec
	if s.Scenario != nil {
		c = s.Scenario.Chaos
	}
	return c.WithDefaults()
}

// chaosDur bounds one chaos phase: at least 2 s of virtual time so
// fault windows and recovery both get room, at most 6 s so paper scale
// does not pay a minute per phase for no extra information.
func chaosDur(s Scale) time.Duration {
	d := s.Runtime
	if d < 2*time.Second {
		d = 2 * time.Second
	}
	if d > 6*time.Second {
		d = 6 * time.Second
	}
	return d
}

// Chaos runs all four phases and returns the measured report. The
// phase parameters come from the Scale's scenario (or the published
// defaults); only the window placements stay runtime-derived.
func Chaos(s Scale) (*ChaosReport, error) {
	cs := chaosParams(s)
	r := &ChaosReport{}
	if err := chaosGovernor(s, cs, r); err != nil {
		return nil, fmt.Errorf("chaos governor phase: %w", err)
	}
	if err := chaosRedirector(s, cs, r); err != nil {
		return nil, fmt.Errorf("chaos redirector phase: %w", err)
	}
	if err := chaosBudget(s, cs, r); err != nil {
		return nil, fmt.Errorf("chaos budget phase: %w", err)
	}
	if err := chaosRollout(s, cs, r); err != nil {
		return nil, fmt.Errorf("chaos rollout phase: %w", err)
	}
	return r, nil
}

// chaosGovernor: saturating writes on SSD2 under the scenario's device
// budget while SetPowerState fails for the first half of the run.
func chaosGovernor(s Scale, cs scenario.ChaosSpec, r *ChaosReport) error {
	eng := sim.NewEngine()
	rng := sim.NewRNG(s.Seed)
	frng := sim.NewRNG(s.FaultSeed)
	dur := chaosDur(s)

	// End the window off the 50 ms control grid so recovery visibly
	// comes from a backed-off retry, not a coincident control tick.
	r.GovFaultEnd = dur/2 + 20*time.Millisecond

	dev := catalog.NewSSD2(eng, rng.Stream("ssd2"))
	// Alongside the scripted command fault, a probabilistic transient
	// IO-error episode (drawn from FaultSeed) overlaps the first half —
	// retries surface as latency, exercising the seed-dependent path.
	fd, err := fault.New(dev, eng, frng.Stream("ssd2"), fault.Profile{
		Windows: []fault.Window{
			{Kind: fault.PowerCmdFail, Start: 0, Dur: r.GovFaultEnd},
			{Kind: fault.IOError, Start: dur / 4, Dur: dur / 8, Prob: cs.IOErrorProb},
		},
	})
	if err != nil {
		return err
	}
	g, err := adaptive.NewGovernor(eng, fd, cs.GovBudgetW, cs.GovControl.D())
	if err != nil {
		return err
	}

	ep := invariant.AttachEnergy(eng, dev, 250*time.Microsecond)
	cp := invariant.AttachClock(eng, 10*time.Millisecond)

	// Watch for the first applied transition so recovery latency is
	// measured, not inferred.
	var recoveredAt time.Duration
	var watchT *sim.Timer
	var watch func()
	watch = func() {
		if fd.PowerStateIndex() != 0 {
			recoveredAt = eng.Now()
			return
		}
		if watchT == nil {
			watchT = eng.After(5*time.Millisecond, watch)
		} else {
			watchT.RescheduleAfter(5 * time.Millisecond)
		}
	}
	watch()

	// The cap probe covers only the post-recovery tail: inside the
	// fault window the device legitimately violates the budget — that
	// is the fault — so "no violation outside the scripted windows" is
	// what the probe must certify.
	var capProbe *invariant.CapProbe
	eng.Post(3*dur/4, func() {
		capProbe = invariant.AttachCap(eng, fd, cs.GovBudgetW, dur/8, 5*time.Millisecond)
	})

	g.Start()
	workload.Run(eng, fd, workload.Job{
		Op: device.OpWrite, Pattern: workload.Rand, BS: 256 << 10, Depth: 64,
		Runtime: dur,
	}, rng)
	g.Stop()

	r.GovFailures = g.Failures
	r.GovRetries = g.Retries
	r.GovIORetries = fd.Retries()
	r.GovSteps = g.Steps
	r.GovFinalState = fd.PowerStateIndex()
	if recoveredAt > 0 {
		r.GovRecoveryLat = recoveredAt - r.GovFaultEnd
	} else {
		r.GovRecoveryLat = -1
	}
	if capProbe != nil {
		capProbe.Stop()
		r.GovWorstWindowW = capProbe.WorstWindowW()
		r.GovCapOK = capProbe.Check(0.10) == nil
	}
	ep.Stop()
	r.GovEnergyOK = ep.Check(0.05) == nil
	cp.Stop()
	if err := cp.Check(); err != nil {
		return err
	}
	return nil
}

// chaosRedirector: mirrored EVOs (scenario replicas/active), open-loop
// reads; replica 0 drops out for the second quarter of the run.
func chaosRedirector(s Scale, cs scenario.ChaosSpec, r *ChaosReport) error {
	eng := sim.NewEngine()
	rng := sim.NewRNG(s.Seed)
	frng := sim.NewRNG(s.FaultSeed)
	dur := chaosDur(s)
	// The workload starts after a 1 s settle period; the dropout
	// window is scripted in absolute virtual time to cover the second
	// quarter of the workload.
	const settle = time.Second
	r.RedirDropStart, r.RedirDropEnd = dur/4, dur/2

	replicas := cs.Replicas
	devs := make([]device.Device, replicas)
	for i := range devs {
		d := catalog.NewEVO(eng, rng.Stream(fmt.Sprint("replica", i)))
		if i == 0 {
			fd, err := fault.New(d, eng, frng.Stream("replica0"), fault.Profile{
				Windows: []fault.Window{{Kind: fault.Dropout, Start: settle + r.RedirDropStart, Dur: r.RedirDropEnd - r.RedirDropStart}},
			})
			if err != nil {
				return err
			}
			devs[i] = fd
		} else {
			devs[i] = d
		}
	}
	mirror, err := adaptive.NewRedirector("mirror", devs, cs.Active)
	if err != nil {
		return err
	}
	eng.RunUntil(eng.Now() + settle) // settle standby transitions

	var atDrop, atRecover []int
	eng.Post(eng.Now()+r.RedirDropStart, func() { atDrop = mirror.CompletedByReplica() })
	eng.Post(eng.Now()+r.RedirDropEnd, func() { atRecover = mirror.CompletedByReplica() })

	workload.Run(eng, mirror, workload.Job{
		Op: device.OpRead, Pattern: workload.Rand, BS: 4 << 10,
		Arrival: workload.OpenPoisson, RateIOPS: cs.RateIOPS, Runtime: dur,
	}, rng)

	final := mirror.CompletedByReplica()
	r.RedirFailovers = mirror.Failovers
	r.RedirWakesOnDemand = mirror.WakesOnDemand
	r.RedirBefore = atDrop
	r.RedirDuring = make([]int, replicas)
	r.RedirAfter = make([]int, replicas)
	for i := 0; i < replicas; i++ {
		r.RedirDuring[i] = atRecover[i] - atDrop[i]
		r.RedirAfter[i] = final[i] - atRecover[i]
	}
	return nil
}

// chaosModels builds the compact hand-calibrated fleet models the
// budget phase plans over: one sample per power state, numbers drawn
// from the devices' measured quick-scale behavior.
func chaosModels() (*core.Fleet, error) {
	mk := func(dev string, ps int, w, mbps float64) core.Sample {
		return core.Sample{
			Config:         core.Config{Device: dev, PowerState: ps, Random: true, Write: true, ChunkBytes: 256 << 10, Depth: 64},
			PowerW:         w,
			ThroughputMBps: mbps,
		}
	}
	ssd1, err := core.NewModel("SSD1", []core.Sample{
		mk("SSD1", 0, 12.0, 3300),
		mk("SSD1", 1, 7.0, 2400),
		mk("SSD1", 2, 6.0, 2000),
	})
	if err != nil {
		return nil, err
	}
	ssd2, err := core.NewModel("SSD2", []core.Sample{
		mk("SSD2", 0, 14.8, 1100),
		mk("SSD2", 1, 11.5, 815),
		mk("SSD2", 2, 9.8, 605),
	})
	if err != nil {
		return nil, err
	}
	return core.NewFleet(ssd1, ssd2)
}

// chaosBudget: SSD2 refuses every power command; Apply must reserve
// its ps0 worst case and tighten SSD1 instead.
func chaosBudget(s Scale, cs scenario.ChaosSpec, r *ChaosReport) error {
	eng := sim.NewEngine()
	rng := sim.NewRNG(s.Seed)
	frng := sim.NewRNG(s.FaultSeed)
	dur := chaosDur(s)

	ssd1 := catalog.NewSSD1(eng, rng.Stream("ssd1"))
	ssd2, err := fault.New(catalog.NewSSD2(eng, rng.Stream("ssd2")), eng, frng.Stream("budget"), fault.Profile{
		Windows: []fault.Window{{Kind: fault.PowerCmdFail, Start: 0, Dur: dur}},
	})
	if err != nil {
		return err
	}
	fleet, err := chaosModels()
	if err != nil {
		return err
	}
	bc, err := adaptive.NewBudgetController(fleet, []device.Device{ssd1, ssd2})
	if err != nil {
		return err
	}

	r.BudgetW = cs.FleetBudgetW
	a, err := bc.Apply(r.BudgetW)
	if err != nil {
		return err
	}
	r.BudgetCompensations = bc.Compensations
	r.BudgetStuck = bc.LastStuck
	r.BudgetAssignment = a
	r.BudgetSiblingState = ssd1.PowerStateIndex()
	return nil
}

// chaosRollout: a scenario-shaped leaf grid with a staged subset; one
// staged leaf cannot apply its cap, fails the power audit, and is
// quarantined.
func chaosRollout(s Scale, cs scenario.ChaosSpec, r *ChaosReport) error {
	eng := sim.NewEngine()
	rng := sim.NewRNG(s.Seed)
	frng := sim.NewRNG(s.FaultSeed)
	dur := chaosDur(s)
	wdur := dur
	if wdur > time.Second {
		wdur = time.Second
	}

	racks, leavesPerRack := cs.Racks, cs.LeavesPerRack
	root := &adaptive.Domain{Name: "row"}
	leafDev := map[*adaptive.Domain]device.Device{}
	for ri := 0; ri < racks; ri++ {
		rack := &adaptive.Domain{Name: fmt.Sprintf("rack%d", ri)}
		for li := 0; li < leavesPerRack; li++ {
			name := fmt.Sprintf("rack%d/leaf%d", ri, li)
			d := device.Device(catalog.NewSSD2(eng, rng.Stream(name)))
			if ri == 0 && li == 0 {
				fd, err := fault.New(d, eng, frng.Stream(name), fault.Profile{
					Windows: []fault.Window{{Kind: fault.PowerCmdFail, Start: 0, Dur: dur}},
				})
				if err != nil {
					return err
				}
				d = fd
			}
			leaf := &adaptive.Domain{Name: name, Devices: []device.Device{d}}
			leafDev[leaf] = d
			rack.Children = append(rack.Children, leaf)
		}
		root.Children = append(root.Children, rack)
	}

	rollout := adaptive.NewRollout(root)
	staged := rollout.Stage(cs.Staged)
	for _, leaf := range staged {
		r.RolloutStaged = append(r.RolloutStaged, leaf.Name)
		// Enablement applies the deepest cap; the faulted leaf refuses
		// and keeps drawing full power — exactly what the audit hunts.
		leafDev[leaf].SetPowerState(cs.CapState)
	}

	e0 := map[*adaptive.Domain]float64{}
	for _, leaf := range staged {
		e0[leaf] = leaf.EnergyJ()
		workload.Start(eng, leafDev[leaf], workload.Job{
			Op: device.OpWrite, Pattern: workload.Rand, BS: 256 << 10, Depth: 64,
			Runtime: wdur,
		}, rng.Stream("wl-"+leaf.Name))
	}
	eng.RunUntil(eng.Now() + wdur)

	r.RolloutLeafAvgW = map[string]float64{}
	measure := func(d *adaptive.Domain) float64 {
		avg := (d.EnergyJ() - e0[d]) / wdur.Seconds()
		r.RolloutLeafAvgW[d.Name] = avg
		return avg
	}
	// SSD2 at ps2 sustains ~10.5 W under saturating writes; at ps0 it
	// draws ~14.8 W. The default 12 W threshold splits the two cleanly.
	for _, d := range rollout.AuditAndQuarantine(measure, cs.AuditThresholdW) {
		r.RolloutQuarantined = append(r.RolloutQuarantined, d.Name)
	}
	for _, d := range rollout.Stage(cs.Restaged) {
		r.RolloutRestaged = append(r.RolloutRestaged, d.Name)
	}
	return nil
}

func init() {
	register("chaos", "Extension: fault injection for the power-control plane (§4.1 local control failures)", func(s Scale, w io.Writer) error {
		cs := chaosParams(s)
		r, err := Chaos(s)
		if err != nil {
			return err
		}
		section(w, "Extension: chaos — adaptive control under injected faults")

		fmt.Fprintf(w, "governor (SSD2, %g W budget, SetPowerState refused for [0, %v)):\n", cs.GovBudgetW, r.GovFaultEnd)
		fmt.Fprintf(w, "  cmd failures %d, retries %d, applied steps %d, final state ps%d\n",
			r.GovFailures, r.GovRetries, r.GovSteps, r.GovFinalState)
		fmt.Fprintf(w, "  transient IO-error retries (fault seed draws): %d\n", r.GovIORetries)
		fmt.Fprintf(w, "  recovery latency after fault cleared: %v\n", r.GovRecoveryLat.Round(time.Millisecond))
		fmt.Fprintf(w, "  post-recovery worst sliding-window power: %.2f W (cap ok: %v, energy conserved: %v)\n",
			r.GovWorstWindowW, r.GovCapOK, r.GovEnergyOK)

		fmt.Fprintf(w, "redirector (%d mirrored EVOs, replica 0 drops for [%v, %v)):\n", cs.Replicas, r.RedirDropStart, r.RedirDropEnd)
		fmt.Fprintf(w, "  failovers %d, wakes-on-demand %d\n", r.RedirFailovers, r.RedirWakesOnDemand)
		fmt.Fprintf(w, "  per-replica IOs  before drop: %v  during drop: %v  after recovery: %v\n",
			r.RedirBefore, r.RedirDuring, r.RedirAfter)

		fmt.Fprintf(w, "budget (%.0f W fleet budget, SSD2 refuses to throttle):\n", r.BudgetW)
		fmt.Fprintf(w, "  compensations %d, stuck %v, sibling SSD1 tightened to ps%d\n",
			r.BudgetCompensations, r.BudgetStuck, r.BudgetSiblingState)
		fmt.Fprintf(w, "  final plan: %.2f W total, %.0f MB/s total\n",
			r.BudgetAssignment.TotalPowerW, r.BudgetAssignment.TotalMBps)

		fmt.Fprintf(w, "rollout (%d leaves / %d racks, %d staged, rack0/leaf0 cannot apply its cap):\n",
			cs.Racks*cs.LeavesPerRack, cs.Racks, cs.Staged)
		fmt.Fprintf(w, "  staged %v\n", r.RolloutStaged)
		for _, name := range r.RolloutStaged {
			fmt.Fprintf(w, "    %-14s %.2f W avg\n", name, r.RolloutLeafAvgW[name])
		}
		fmt.Fprintf(w, "  quarantined after audit (>%g W): %v\n", cs.AuditThresholdW, r.RolloutQuarantined)
		fmt.Fprintf(w, "  next stage skips quarantine: %v\n", r.RolloutRestaged)

		fmt.Fprintln(w, "\n§4.1 reading: every local control failure is caught by a feedback layer —")
		fmt.Fprintln(w, "retries land the throttle, IO routes around dropouts, budgets re-plan around")
		fmt.Fprintln(w, "stuck devices, and audits quarantine leaves that cannot control their power.")
		return nil
	})
}
