package experiments

import (
	"io"
	"strings"
	"testing"
	"time"
)

// testScale is large enough for the trends to emerge but fast enough
// for CI. Power-state regulators need a few hundred milliseconds of
// binding time, so the byte bound dominates.
var testScale = Scale{Runtime: 3 * time.Second, TotalBytes: 1 << 30, Seed: 42}

func TestRegistryComplete(t *testing.T) {
	want := []string{"calib", "chaos", "churn", "fig10", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fleet", "headline", "meso", "prop", "report", "standby", "table1"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" {
			t.Errorf("%s has no title", e.ID)
		}
		if _, ok := ByID(e.ID); !ok {
			t.Errorf("ByID(%s) missed", e.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID found a nonexistent experiment")
	}
}

func TestTable1Shapes(t *testing.T) {
	rows, err := Table1(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	// Paper's Table 1 ranges: SSD1 3.5-13.5, SSD2 5-15.1, SSD3 1-3.5,
	// HDD 1-5.3. Allow modeling slack.
	bounds := map[string][4]float64{
		"SSD1": {3.3, 3.7, 11.5, 14.2},
		"SSD2": {4.8, 5.2, 14.0, 15.8},
		"SSD3": {0.9, 1.1, 3.0, 3.8},
		"HDD":  {1.0, 1.2, 5.0, 6.2},
	}
	for _, r := range rows {
		b := bounds[r.Label]
		if r.MinW < b[0] || r.MinW > b[1] {
			t.Errorf("%s min %.2f W outside [%.1f, %.1f]", r.Label, r.MinW, b[0], b[1])
		}
		if r.MaxW < b[2] || r.MaxW > b[3] {
			t.Errorf("%s max %.2f W outside [%.1f, %.1f]", r.Label, r.MaxW, b[2], b[3])
		}
		if r.Model == "" || r.Protocol == "" {
			t.Errorf("%s row incomplete: %+v", r.Label, r)
		}
	}
}

func TestFigure2Variability(t *testing.T) {
	// The burst process needs a second-plus of trace to show up
	// reliably; use the paper's full byte bound for this one.
	f, err := Figure2(Scale{Runtime: 5 * time.Second, TotalBytes: 4 << 30, Seed: testScale.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if f.Trace.Len() < 100 {
		t.Fatalf("SSD1 trace has %d samples", f.Trace.Len())
	}
	// Fig. 2's point: SSD1 swings several watts at millisecond scale.
	s1 := f.Violins["SSD1"]
	if s1.Max-s1.Min < 3 {
		t.Errorf("SSD1 power swing %.2f W, want > 3 (Fig. 2a shows ~9-13.5 W)", s1.Max-s1.Min)
	}
	// All four devices have a distribution.
	for _, name := range []string{"SSD1", "SSD2", "SSD3", "HDD"} {
		if f.Violins[name].N == 0 {
			t.Errorf("%s violin empty", name)
		}
	}
	// Median and mean nearly overlap (paper's observation).
	if diff := s1.Mean - s1.Median; diff > 1.0 || diff < -1.0 {
		t.Errorf("SSD1 mean-median gap %.2f W, want small", diff)
	}
}

func TestFigure3CapsBind(t *testing.T) {
	series, err := Figure3(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 {
		t.Fatalf("%d series, want 6 (3 ps × 2 depths)", len(series))
	}
	byLabel := map[string]Series{}
	for _, s := range series {
		byLabel[s.Label] = s
	}
	// At qd64 and large chunks, ps order holds: ps0 > ps1 > ps2.
	last := len(byLabel["ps0 qd64"].Y) - 1
	p0, p1, p2 := byLabel["ps0 qd64"].Y[last], byLabel["ps1 qd64"].Y[last], byLabel["ps2 qd64"].Y[last]
	if !(p0 > p1 && p1 > p2) {
		t.Errorf("qd64 2MiB powers not ordered: ps0=%.2f ps1=%.2f ps2=%.2f", p0, p1, p2)
	}
	// ps1/ps2 sit near their caps at qd64 large chunks.
	if p1 < 11 || p1 > 12.8 {
		t.Errorf("ps1 power %.2f W, want ≈ 12 (cap)", p1)
	}
	if p2 < 9 || p2 > 10.8 {
		t.Errorf("ps2 power %.2f W, want ≈ 10 (cap)", p2)
	}
	// qd1 draws less than qd64 at every chunk for ps0.
	for i := range byLabel["ps0 qd64"].Y {
		if byLabel["ps0 qd1"].Y[i] > byLabel["ps0 qd64"].Y[i]+0.3 {
			t.Errorf("chunk %d: qd1 power %.2f exceeds qd64 %.2f",
				byLabel["ps0 qd1"].X[i], byLabel["ps0 qd1"].Y[i], byLabel["ps0 qd64"].Y[i])
		}
	}
}

func TestFigure4WriteReadAsymmetry(t *testing.T) {
	series, err := Figure4(testScale)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]Series{}
	for _, s := range series {
		byLabel[s.Label] = s
	}
	last := len(byLabel["seq write ps0"].Y) - 1
	w0, w1, w2 := byLabel["seq write ps0"].Y[last], byLabel["seq write ps1"].Y[last], byLabel["seq write ps2"].Y[last]
	r0, r2 := byLabel["seq read ps0"].Y[last], byLabel["seq read ps2"].Y[last]
	// Paper: writes drop to ~74% (ps1) and ~55% (ps2); reads barely move.
	if ratio := w1 / w0; ratio < 0.66 || ratio > 0.82 {
		t.Errorf("seq write ps1/ps0 = %.2f, want ≈ 0.74", ratio)
	}
	if ratio := w2 / w0; ratio < 0.45 || ratio > 0.62 {
		t.Errorf("seq write ps2/ps0 = %.2f, want ≈ 0.55", ratio)
	}
	if ratio := r2 / r0; ratio < 0.95 {
		t.Errorf("seq read ps2/ps0 = %.2f, want ≈ 1 (minimal drop)", ratio)
	}
}

func TestFigure5TailLatencyInflates(t *testing.T) {
	avg, p99, err := Figure5(testScale)
	if err != nil {
		t.Fatal(err)
	}
	lastChunk := len(avg[2].Y) - 1
	if r := avg[2].Y[lastChunk]; r < 1.2 || r > 2.5 {
		t.Errorf("ps2 avg latency ratio at 2MiB = %.2f, want in [1.2, 2.5] (paper: up to 2x)", r)
	}
	if r := p99[2].Y[lastChunk]; r < 3.0 || r > 7.5 {
		t.Errorf("ps2 p99 latency ratio at 2MiB = %.2f, want in [3, 7.5] (paper: up to 6.19x)", r)
	}
	// Small chunks stay below the cap: ratios near 1.
	if r := avg[2].Y[0]; r > 1.15 {
		t.Errorf("ps2 avg ratio at 4KiB = %.2f, want ≈ 1", r)
	}
	// ps0 is by construction all-ones.
	for _, v := range avg[0].Y {
		if v != 1 {
			t.Errorf("ps0 normalized ratio = %v, want 1", v)
		}
	}
}

func TestFigure6ReadsUnaffected(t *testing.T) {
	avg, p99, err := Figure6(testScale)
	if err != nil {
		t.Fatal(err)
	}
	for ps := 1; ps < 3; ps++ {
		for i := range avg[ps].Y {
			if r := avg[ps].Y[i]; r < 0.97 || r > 1.03 {
				t.Errorf("ps%d read avg ratio at chunk %d = %.3f, want ≈ 1", ps, avg[ps].X[i], r)
			}
			if r := p99[ps].Y[i]; r < 0.95 || r > 1.05 {
				t.Errorf("ps%d read p99 ratio at chunk %d = %.3f, want ≈ 1", ps, p99[ps].X[i], r)
			}
		}
	}
}

func TestFigure7TransitionTimes(t *testing.T) {
	f, err := Figure7(testScale)
	if err != nil {
		t.Fatal(err)
	}
	// SLUMBER at 200 ms: settled within 0.5 s of the command.
	if f.EnterDone < 200*time.Millisecond || f.EnterDone > 700*time.Millisecond {
		t.Errorf("enter settled at %v, want within 0.5s after the 200ms command", f.EnterDone)
	}
	// Wake at 400 ms: settled within 0.5 s of the command.
	if f.ExitDone < 400*time.Millisecond || f.ExitDone > 900*time.Millisecond {
		t.Errorf("exit settled at %v, want within 0.5s after the 400ms command", f.ExitDone)
	}
	// Trace shape: idle level before the command, slumber level at the end.
	first := f.IdleToStandby.Between(0, 150*time.Millisecond).Mean()
	lastW := f.IdleToStandby.Between(800*time.Millisecond, time.Second).Mean()
	if first < 0.33 || first > 0.37 {
		t.Errorf("pre-command power %.3f W, want ≈ 0.35", first)
	}
	if lastW < 0.16 || lastW > 0.18 {
		t.Errorf("post-transition power %.3f W, want ≈ 0.17", lastW)
	}
}

func TestFigure8Shapes(t *testing.T) {
	sweeps, err := Figure8(testScale)
	if err != nil {
		t.Fatal(err)
	}
	byDev := map[string]DeviceSweep{}
	for _, d := range sweeps {
		byDev[d.Device] = d
	}
	// Paper: 4 KiB chunks consume up to ~30% less power than 2 MiB and
	// lose up to ~50% throughput (SSDs).
	for _, name := range []string{"SSD1", "SSD2"} {
		d := byDev[name]
		n := len(d.X) - 1
		powerRatio := d.PowerW[0] / d.PowerW[n]
		tputRatio := d.MBps[0] / d.MBps[n]
		if powerRatio > 0.92 {
			t.Errorf("%s: 4KiB power is %.0f%% of 2MiB, want noticeably less", name, 100*powerRatio)
		}
		if tputRatio > 0.75 {
			t.Errorf("%s: 4KiB tput is %.0f%% of 2MiB, want ≤ 75%%", name, 100*tputRatio)
		}
	}
	// HDD sits near the bottom of the throughput plot everywhere.
	hddMax := 0.0
	for _, v := range byDev["HDD"].MBps {
		if v > hddMax {
			hddMax = v
		}
	}
	if hddMax > 200 {
		t.Errorf("HDD random write peak %.0f MB/s, implausible", hddMax)
	}
}

func TestFigure9Shapes(t *testing.T) {
	sweeps, err := Figure9(testScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range sweeps {
		n := len(d.X) - 1
		if d.Device == "HDD" {
			continue // HDD random read barely scales with depth
		}
		// Paper: qd1 uses up to ~40% less power but may deliver only a
		// small fraction of throughput.
		if d.PowerW[0] >= d.PowerW[n] {
			t.Errorf("%s: qd1 power %.2f not below qd128 power %.2f", d.Device, d.PowerW[0], d.PowerW[n])
		}
		if d.MBps[0] >= d.MBps[n]*0.6 {
			t.Errorf("%s: qd1 tput %.1f not far below qd128 %.1f", d.Device, d.MBps[0], d.MBps[n])
		}
	}
}

func TestStandbyStudy(t *testing.T) {
	rows, err := StandbyStudy(testScale)
	if err != nil {
		t.Fatal(err)
	}
	byDev := map[string]StandbyRow{}
	for _, r := range rows {
		byDev[r.Device] = r
	}
	hdd := byDev["HDD"]
	if !hdd.Supported {
		t.Fatal("HDD standby unsupported")
	}
	if hdd.SavedW < 2.4 || hdd.SavedW > 2.9 {
		t.Errorf("HDD standby saves %.2f W, paper: 2.66 W", hdd.SavedW)
	}
	if hdd.EnterTook+hdd.ExitTook < 8*time.Second || hdd.EnterTook+hdd.ExitTook > 14*time.Second {
		t.Errorf("HDD round trip %v, paper: up to ~10 s", hdd.EnterTook+hdd.ExitTook)
	}
	evo := byDev["EVO"]
	if !evo.Supported {
		t.Fatal("EVO standby unsupported")
	}
	if evo.StandbyW < 0.16 || evo.StandbyW > 0.18 {
		t.Errorf("EVO slumber %.3f W, paper: 0.17 W", evo.StandbyW)
	}
	if evo.EnterTook > 500*time.Millisecond || evo.ExitTook > 700*time.Millisecond {
		t.Errorf("EVO transitions %v/%v, paper: within 0.5 s", evo.EnterTook, evo.ExitTook)
	}
	for _, dc := range []string{"SSD1", "SSD2", "SSD3"} {
		if byDev[dc].Supported {
			t.Errorf("%s reports standby support; data-center SSDs decline it", dc)
		}
	}
}

func TestRunOutputsNonEmpty(t *testing.T) {
	// Every registered experiment must produce some output at quick
	// scale without error. The heavyweight ones are covered above; this
	// exercises the formatting paths.
	for _, e := range []string{"fig7", "standby"} {
		exp, _ := ByID(e)
		var sb strings.Builder
		if err := exp.Run(Quick, &sb); err != nil {
			t.Errorf("%s: %v", e, err)
		}
		if !strings.Contains(sb.String(), "==") {
			t.Errorf("%s produced no section header", e)
		}
	}
}

var _ io.Writer = (*strings.Builder)(nil)

func TestProportionalityShape(t *testing.T) {
	rows, err := Proportionality(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	for _, r := range rows {
		// Consolidation never draws more than spreading.
		if r.ConsolW > r.SpreadW+0.02 {
			t.Errorf("load %d%%: consolidated %.3f W above spread %.3f W", r.LoadPct, r.ConsolW, r.SpreadW)
		}
	}
	// At low load the saving is substantial (≥3 replicas slumbering).
	if save := rows[0].SpreadW - rows[0].ConsolW; save < 0.4 {
		t.Errorf("low-load saving %.3f W, want ≥ 0.4 (3 × 0.18 W slumber delta)", save)
	}
	// At full load the two policies converge.
	if diff := rows[5].SpreadW - rows[5].ConsolW; diff > 0.05 || diff < -0.05 {
		t.Errorf("full-load policies differ by %.3f W, want ≈ 0", diff)
	}
	// Consolidated power is monotone in load (power proportionality).
	for i := 1; i < len(rows); i++ {
		if rows[i].ConsolW < rows[i-1].ConsolW-0.02 {
			t.Errorf("consolidated power not monotone: %.3f at %d%% after %.3f at %d%%",
				rows[i].ConsolW, rows[i].LoadPct, rows[i-1].ConsolW, rows[i-1].LoadPct)
		}
	}
}
