package experiments

import (
	"fmt"
	"io"
	"time"

	"wattio/internal/catalog"
	"wattio/internal/device"
	"wattio/internal/measure"
	"wattio/internal/sim"
	"wattio/internal/stats"
	"wattio/internal/sweep"
	"wattio/internal/workload"
)

// Table1Row is one device row of the paper's Table 1.
type Table1Row struct {
	Label    string
	Protocol string
	Model    string
	MinW     float64 // lowest observed power (standby if supported, else idle)
	MaxW     float64 // highest instantaneous power observed under load
}

// Table1 regenerates the paper's device table: for each device, the
// measured power range. The floor is the lowest sustained level the
// device reaches (standby where supported, idle otherwise); the ceiling
// is the instantaneous peak the rig records under the heaviest
// workloads.
func Table1(s Scale) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, 4)
	for _, name := range []string{"SSD1", "SSD2", "SSD3", "HDD"} {
		row, err := table1Row(name, s)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func table1Row(name string, s Scale) (Table1Row, error) {
	// Floor: idle (or standby when the device supports it).
	eng := sim.NewEngine()
	rng := sim.NewRNG(s.Seed)
	dev, _ := catalog.ByName(name, eng, rng)
	if err := dev.EnterStandby(); err == nil {
		eng.RunUntil(eng.Now() + 15*time.Second) // HDD spin-down takes seconds
	}
	rig, err := measure.NewRig(eng, rng, dev, measure.DefaultRigConfig(sweep.RailFor(dev)))
	if err != nil {
		return Table1Row{}, err
	}
	rig.Start()
	eng.RunUntil(eng.Now() + 2*time.Second)
	rig.Stop()
	minW := rig.Trace().Mean()

	// Ceiling: instantaneous peak across the heavy workloads.
	maxW := 0.0
	for _, job := range []workload.Job{
		{Op: device.OpWrite, Pattern: workload.Rand, BS: 2 << 20, Depth: 64, Runtime: s.Runtime, TotalBytes: s.TotalBytes},
		{Op: device.OpRead, Pattern: workload.Rand, BS: 4 << 10, Depth: 1, Runtime: s.Runtime, TotalBytes: s.TotalBytes / 64},
	} {
		eng := sim.NewEngine()
		rng := sim.NewRNG(s.Seed)
		dev, _ := catalog.ByName(name, eng, rng)
		rig, err := measure.NewRig(eng, rng, dev, measure.DefaultRigConfig(sweep.RailFor(dev)))
		if err != nil {
			return Table1Row{}, err
		}
		rig.Start()
		res := workload.Start(eng, dev, job, rng)
		for !res.Done() && eng.Step() {
		}
		rig.Stop()
		// Report the 99.5th percentile rather than the absolute max so
		// one noisy ADC sample cannot define the range.
		if w := stats.Quantile(rig.Trace().Watts(), 0.995); w > maxW {
			maxW = w
		}
	}
	return Table1Row{
		Label:    name,
		Protocol: dev.Protocol().String(),
		Model:    dev.Model(),
		MinW:     minW,
		MaxW:     maxW,
	}, nil
}

func init() {
	register("table1", "Table 1: evaluated storage devices and measured power ranges", func(s Scale, w io.Writer) error {
		rows, err := Table1(s)
		if err != nil {
			return err
		}
		section(w, "Table 1: Evaluated storage devices")
		fmt.Fprintf(w, "%-6s %-9s %-22s %s\n", "Label", "Protocol", "Model", "Measured Power Range")
		for _, r := range rows {
			fmt.Fprintf(w, "%-6s %-9s %-22s %.1f-%.1fW\n", r.Label, r.Protocol, r.Model, r.MinW, r.MaxW)
		}
		return nil
	})
}
