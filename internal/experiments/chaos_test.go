package experiments

import (
	"bytes"
	"testing"
	"time"
)

// chaosScale pins both seeds explicitly: the chaos phases derive every
// fault draw from FaultSeed, every workload draw from Seed.
var chaosScale = Scale{Runtime: 2 * time.Second, TotalBytes: 256 << 20, Seed: 42, FaultSeed: 1}

func TestChaosRecoversEndToEnd(t *testing.T) {
	t.Parallel()
	r, err := Chaos(chaosScale)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: the governor must fail, retry, and land the throttle
	// after the command-fault window lifts.
	if r.GovFailures == 0 || r.GovRetries == 0 {
		t.Errorf("governor failures/retries = %d/%d, want both > 0", r.GovFailures, r.GovRetries)
	}
	if r.GovFinalState != 2 {
		t.Errorf("governor final state ps%d, want ps2", r.GovFinalState)
	}
	// The window end is off the control grid, so recovery comes from a
	// backed-off retry strictly after the window — but within one period.
	if r.GovRecoveryLat <= 0 || r.GovRecoveryLat > 100*time.Millisecond {
		t.Errorf("governor recovery latency %v, want (0, 100ms]", r.GovRecoveryLat)
	}
	if !r.GovCapOK {
		t.Errorf("post-recovery window power %.2f W violates the cap", r.GovWorstWindowW)
	}
	if !r.GovEnergyOK {
		t.Error("energy not conserved across the fault window")
	}

	// Phase 2: replica 0 drops out; load fails over and drains back.
	if r.RedirFailovers == 0 {
		t.Error("no failovers during the dropout window")
	}
	if len(r.RedirDuring) == 0 || len(r.RedirAfter) == 0 {
		t.Fatal("redirector phase recorded no per-replica deltas")
	}
	if r.RedirDuring[0] > 8 {
		t.Errorf("replica 0 completed %d IOs while dropped", r.RedirDuring[0])
	}
	if r.RedirAfter[0] == 0 {
		t.Error("no load drained back onto replica 0 after recovery")
	}

	// Phase 3: the budget controller must compensate around the stuck
	// device and keep the fleet plan under budget.
	if r.BudgetCompensations == 0 {
		t.Error("budget controller never compensated")
	}
	if len(r.BudgetStuck) != 1 || r.BudgetStuck[0] != "SSD2" {
		t.Errorf("stuck devices = %v, want [SSD2]", r.BudgetStuck)
	}
	if r.BudgetAssignment.TotalPowerW > r.BudgetW {
		t.Errorf("assignment %.2f W exceeds the %.0f W budget", r.BudgetAssignment.TotalPowerW, r.BudgetW)
	}

	// Phase 4: the audit must quarantine exactly the uncappable leaf,
	// and the restage must not pick it again.
	if len(r.RolloutQuarantined) != 1 || r.RolloutQuarantined[0] != "rack0/leaf0" {
		t.Errorf("quarantined = %v, want [rack0/leaf0]", r.RolloutQuarantined)
	}
	for _, name := range r.RolloutRestaged {
		if name == r.RolloutQuarantined[0] {
			t.Error("restage picked the quarantined leaf")
		}
	}
}

// TestChaosDeterministic locks the faulted sweep: the same (Seed,
// FaultSeed) pair must render bit-identical output, fault injections
// included.
func TestChaosDeterministic(t *testing.T) {
	t.Parallel()
	e, ok := ByID("chaos")
	if !ok {
		t.Fatal("chaos experiment not registered")
	}
	var a, b bytes.Buffer
	if err := e.Run(chaosScale, &a); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(chaosScale, &b); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 {
		t.Fatal("chaos produced no output")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("same fault seed produced different output:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a.String(), b.String())
	}
}

// TestChaosFaultSeedMatters makes sure FaultSeed actually feeds the
// injection draws: a different seed must change the probabilistic
// fault pattern somewhere in the report.
func TestChaosFaultSeedMatters(t *testing.T) {
	t.Parallel()
	s2 := chaosScale
	s2.FaultSeed = 7
	var a, b bytes.Buffer
	e, _ := ByID("chaos")
	if err := e.Run(chaosScale, &a); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(s2, &b); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("changing FaultSeed left the chaos output bit-identical")
	}
}
