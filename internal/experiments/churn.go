package experiments

import (
	"fmt"
	"io"
	"time"

	"wattio/internal/scenario"
	"wattio/internal/serve"
)

func init() {
	register("churn", "Lane lifecycle: membership churn under a diurnal rate schedule", runChurn)
}

// ChurnSpec translates a Scale into the churn serving spec: the
// attached scenario when it carries a churn schedule, otherwise the
// built-in "churn" scenario (a group-parked fleet that scales out for
// a diurnal peak and drains back after it).
func ChurnSpec(s Scale) (serve.Spec, error) {
	sp := s.Scenario
	horizon := s.Runtime
	if sp == nil || sp.Fleet == nil || len(sp.Fleet.Churn) == 0 {
		sp = scenario.BuiltIn("churn")
		horizon = sp.Runtime.D()
	}
	return sp.ServeSpec(horizon)
}

func runChurn(s Scale, w io.Writer) error {
	spec, err := ChurnSpec(s)
	if err != nil {
		return err
	}
	rep, err := serve.Run(spec)
	if err != nil {
		return err
	}

	section(w, "Lane lifecycle: membership churn under a diurnal rate schedule")
	fmt.Fprintf(w, "fleet: %d devices in %d groups across %d shards, horizon %v\n",
		rep.Devices, rep.Groups, rep.Shards, spec.Horizon)
	fmt.Fprintf(w, "schedule: %d rate steps, %d churn events\n", len(spec.Rates), len(spec.Churn))
	fmt.Fprintf(w, "churn: %d groups admitted, %d retired\n", rep.ChurnAdds, rep.ChurnRemoves)
	fmt.Fprintf(w, "recovery: warm-up p50 %v max %v, drain p50 %v max %v\n",
		rep.WarmupP50.Round(time.Millisecond), rep.WarmupMax.Round(time.Millisecond),
		rep.DrainP50.Round(time.Millisecond), rep.DrainMax.Round(time.Millisecond))
	fmt.Fprintf(w, "requests: offered %d, completed %d, rejected %d   throughput %.0f MB/s\n",
		rep.Offered, rep.Completed, rep.Rejected, rep.ThroughputMBps)
	fmt.Fprintf(w, "power: avg %.1f W   latency p50 %v  p99 %v\n",
		rep.AvgPowerW, rep.LatP50.Round(time.Microsecond), rep.LatP99.Round(time.Microsecond))
	if spec.Meso {
		fmt.Fprintf(w, "meso: %d dehydrations / %d rehydrations, %d parked periods, drift %s (worst %.4f)\n",
			rep.MesoDehydrations, rep.MesoRehydrations, rep.MesoParkedPeriods,
			okStr(rep.MesoDriftOK), rep.MesoWorstDriftFrac)
	}
	fmt.Fprintf(w, "invariants: cap %s (worst window %.1f W), tracking %s\n",
		okStr(rep.CapOK), rep.CapWorstW, okStr(rep.TrackOK))

	if rep.ChurnAdds == 0 {
		return fmt.Errorf("churn: no replica group was ever admitted mid-run")
	}
	if rep.ChurnRemoves == 0 {
		return fmt.Errorf("churn: no replica group was ever drained and retired")
	}
	if rep.DrainMax >= spec.Horizon {
		return fmt.Errorf("churn: drain recovery %v never completed inside the horizon %v", rep.DrainMax, spec.Horizon)
	}
	if !rep.CapOK {
		return fmt.Errorf("churn: sliding-window power-cap invariant fired: worst window %.1f W", rep.CapWorstW)
	}
	if !rep.TrackOK {
		return fmt.Errorf("churn: achieved power missed budget by %.1f W", rep.WorstOverW)
	}
	if spec.Meso && !rep.MesoDriftOK {
		return fmt.Errorf("churn: mesoscale drift probe fired (worst %.4f)", rep.MesoWorstDriftFrac)
	}
	return nil
}
