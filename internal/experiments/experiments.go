// Package experiments defines one reproducible experiment per table and
// figure in the paper's evaluation, each regenerating the rows or series
// the paper reports. cmd/powerbench runs them from the command line and
// bench_test.go wraps each in a testing.B benchmark.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Scale bounds each experiment run. Paper scale matches the published
// methodology (one minute or 4 GiB per point); Quick scale shrinks the
// bounds so the full suite runs in seconds for tests.
type Scale struct {
	Runtime    time.Duration
	TotalBytes int64
	Seed       uint64
	// FaultSeed seeds the fault-injection RNG streams of the chaos
	// experiment, independently of Seed so the same workload can be
	// replayed under different fault draws (and vice versa).
	FaultSeed uint64
}

// Paper is the published methodology's scale.
var Paper = Scale{Runtime: time.Minute, TotalBytes: 4 << 30, Seed: 42, FaultSeed: 1}

// Quick is the test-suite scale.
var Quick = Scale{Runtime: 2 * time.Second, TotalBytes: 256 << 20, Seed: 42, FaultSeed: 1}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(s Scale, w io.Writer) error
}

var registry = map[string]Experiment{}

func register(id, title string, run func(Scale, io.Writer) error) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = Experiment{ID: id, Title: title, Run: run}
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// section prints a figure/table header the way powerbench reports it.
func section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
}
