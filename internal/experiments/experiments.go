// Package experiments defines one reproducible experiment per table and
// figure in the paper's evaluation, each regenerating the rows or series
// the paper reports. cmd/powerbench runs them from the command line and
// bench_test.go wraps each in a testing.B benchmark.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"wattio/internal/scenario"
)

// Scale bounds each experiment run. Paper scale matches the published
// methodology (one minute or 4 GiB per point); Quick scale shrinks the
// bounds so the full suite runs in seconds for tests.
type Scale struct {
	Runtime    time.Duration
	TotalBytes int64
	Seed       uint64
	// FaultSeed seeds the fault-injection RNG streams of the chaos and
	// fleet experiments, independently of Seed so the same workload can
	// be replayed under different fault draws (and vice versa).
	FaultSeed uint64
	// Fleet carries the serving-engine knobs of the fleet experiment;
	// zero values take that experiment's defaults. Non-zero fields
	// override the attached Scenario (the CLI's flags-beat-spec rule).
	Fleet FleetOptions
	// Scenario optionally carries the full declarative spec the run was
	// launched from; experiments that consume one (fleet, chaos, the
	// modeling sweeps) read their parameters from it. Nil falls back to
	// each experiment's built-in default scenario.
	Scenario *scenario.Spec
}

// FleetOptions parameterizes the fleet serving experiment — the knobs
// cmd/powerbench exposes as flags. Zero values take defaults.
type FleetOptions struct {
	// Size is the number of devices in the fleet.
	Size int
	// Replicas is the mirror-group size (1 = no redirection).
	Replicas int
	// RateIOPS is the open-loop arrival rate per active device.
	RateIOPS float64
	// Budget is a serve.ParseSchedule budget schedule ("0s:640,1s:448",
	// with a "pd" per-device suffix); empty takes a stepped default.
	Budget string
	// FaultFrac is the fraction of devices given an injected fault
	// window, drawn from FaultSeed.
	FaultFrac float64
	// Meso enables the mesoscale aggregation tier (hybrid analytic
	// serving of steady lanes); MesoDwell and MesoDrift override its
	// dwell-period and drift-tolerance thresholds when non-zero.
	Meso      bool
	MesoDwell int
	MesoDrift float64
	// MesoGroupMin enables group-level parking on top of the meso tier:
	// cohorts of at least this many interchangeable devices keep only
	// MesoProbes resident probe lanes and account the rest as shared
	// analytic aggregates. Zero keeps every lane materialized.
	MesoGroupMin int
	MesoProbes   int
}

// Paper is the published methodology's scale.
var Paper = Scale{Runtime: time.Minute, TotalBytes: 4 << 30, Seed: 42, FaultSeed: 1}

// Quick is the test-suite scale.
var Quick = Scale{Runtime: 2 * time.Second, TotalBytes: 256 << 20, Seed: 42, FaultSeed: 1}

// ScaleFor translates a validated scenario spec into the Scale the
// experiment runners consume: the spec's scale name picks the base
// bounds, its runtime/total_bytes override them, and its seeds carry
// over verbatim. The spec itself rides along for the experiments that
// read more than bounds from it.
func ScaleFor(sp *scenario.Spec) Scale {
	s := Quick
	if sp.Scale == "paper" {
		s = Paper
	}
	if sp.Runtime > 0 {
		s.Runtime = sp.Runtime.D()
	}
	if sp.TotalBytes > 0 {
		s.TotalBytes = sp.TotalBytes
	}
	s.Seed = sp.Seed
	s.FaultSeed = sp.FaultSeed
	s.Scenario = sp
	return s
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(s Scale, w io.Writer) error
}

var registry = map[string]Experiment{}

func register(id, title string, run func(Scale, io.Writer) error) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = Experiment{ID: id, Title: title, Run: run}
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// section prints a figure/table header the way powerbench reports it.
func section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
}
