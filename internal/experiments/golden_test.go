package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"wattio/internal/scenario"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenScale is deliberately tiny: golden files pin the exact rendered
// output (calibration constants included) rather than paper accuracy,
// which the calibration tests already cover at realistic scale.
var goldenScale = Scale{Runtime: 400 * time.Millisecond, TotalBytes: 64 << 20, Seed: 42}

// TestGoldenOutputs locks the rendered output of the direct-print
// experiments. Any change to a calibration constant, model equation, or
// report format shows up as a golden diff; refresh intentionally with
//
//	go test ./internal/experiments -run TestGoldenOutputs -update
func TestGoldenOutputs(t *testing.T) {
	for _, id := range []string{"table1", "headline", "standby"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			var buf bytes.Buffer
			if err := e.Run(goldenScale, &buf); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Fatal("experiment produced no output")
			}
			path := filepath.Join("testdata", id+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("output differs from %s (refresh with -update if intended)\ngot:\n%s\nwant:\n%s",
					path, buf.Bytes(), want)
			}
		})
	}
}

// TestGoldenOutputsViaScenario is the spec-pipeline half of the golden
// contract: running the same experiments with the paper-default
// scenario attached must reproduce the flag path's golden bytes
// exactly — the declarative layer adds no drift.
func TestGoldenOutputsViaScenario(t *testing.T) {
	if *update {
		t.Skip("goldens are refreshed by TestGoldenOutputs")
	}
	s := goldenScale
	s.Scenario = scenario.BuiltIn("paper-default")
	for _, id := range []string{"table1", "headline", "standby"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			var buf bytes.Buffer
			if err := e.Run(s, &buf); err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join("testdata", id+".golden"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("scenario-driven run diverges from the golden flag-path output\ngot:\n%s\nwant:\n%s",
					buf.Bytes(), want)
			}
		})
	}
}
