package experiments

import (
	"fmt"
	"io"
	"time"

	"wattio/internal/scenario"
	"wattio/internal/serve"
)

func init() {
	register("fleet", "Fleet serving: sharded scheduler under a stepped power budget", runFleet)
}

// FleetSpec translates a Scale into the serving-engine spec the fleet
// experiment runs: the attached scenario (or the built-in "fleet"
// scenario when none is attached) materialized through the declarative
// builder, with any non-zero legacy FleetOptions layered on top.
// Exported so bench_test.go benchmarks exactly what powerbench runs.
func FleetSpec(s Scale) (serve.Spec, error) {
	sp := s.Scenario
	if sp == nil {
		sp = scenario.BuiltIn("fleet")
	}
	sp = sp.Clone()
	if sp.Fleet == nil {
		sp.Fleet = &scenario.FleetSpec{}
	}
	o := s.Fleet
	if o.Size != 0 {
		sp.Fleet.Size = o.Size
	}
	if o.Replicas != 0 {
		sp.Fleet.Replicas = o.Replicas
	}
	if o.RateIOPS != 0 {
		sp.Fleet.RateIOPS = o.RateIOPS
	}
	if o.Budget != "" {
		sp.Fleet.Budget = o.Budget
	}
	if o.FaultFrac != 0 {
		sp.Fleet.FaultFrac = o.FaultFrac
	}
	if o.Meso {
		if sp.Fleet.Meso == nil {
			sp.Fleet.Meso = &scenario.MesoSpec{}
		}
		sp.Fleet.Meso.Enable = true
	}
	if o.MesoGroupMin != 0 && sp.Fleet.Meso == nil {
		sp.Fleet.Meso = &scenario.MesoSpec{Enable: true}
	}
	if sp.Fleet.Meso != nil {
		if o.MesoDwell != 0 {
			sp.Fleet.Meso.DwellPeriods = o.MesoDwell
		}
		if o.MesoDrift != 0 {
			sp.Fleet.Meso.DriftTolFrac = o.MesoDrift
		}
		if o.MesoGroupMin != 0 {
			sp.Fleet.Meso.GroupMin = o.MesoGroupMin
		}
		if o.MesoProbes != 0 {
			sp.Fleet.Meso.Probes = o.MesoProbes
		}
	}
	sp.Seed, sp.FaultSeed = s.Seed, s.FaultSeed
	return sp.ServeSpec(s.Runtime)
}

func runFleet(s Scale, w io.Writer) error {
	spec, err := FleetSpec(s)
	if err != nil {
		return err
	}
	rep, err := serve.Run(spec)
	if err != nil {
		return err
	}

	section(w, "Fleet serving under a stepped power budget")
	fmt.Fprintf(w, "fleet: %d devices in %d groups across %d shards (replicas %d, faulted %d)\n",
		rep.Devices, rep.Groups, rep.Shards, rep.Devices/rep.Groups, rep.Faulted)
	fmt.Fprintf(w, "requests: offered %d, admitted %d, rejected %d, completed %d (%d batches)\n",
		rep.Offered, rep.Admitted, rep.Rejected, rep.Completed, rep.Batches)
	fmt.Fprintf(w, "throughput: %.0f MB/s aggregate   latency p50 %v  p99 %v  max %v\n",
		rep.ThroughputMBps, rep.LatP50.Round(time.Microsecond),
		rep.LatP99.Round(time.Microsecond), rep.LatMax.Round(time.Microsecond))

	fmt.Fprintf(w, "\n%-12s %10s %12s %12s\n", "window", "budget W", "achieved W", "tracked")
	for _, seg := range fleetSegments(rep.Intervals) {
		tracked := "-"
		if seg.checked > 0 {
			tracked = fmt.Sprintf("%.1f", seg.checkedW)
		}
		fmt.Fprintf(w, "%-12s %10.1f %12.1f %12s\n",
			fmt.Sprintf("%v+", seg.start.Round(time.Millisecond)), seg.budgetW, seg.avgW, tracked)
	}
	fmt.Fprintf(w, "\npower: avg %.1f W, worst checked overshoot %.1f W, tracking %s (tol %.0f%%)\n",
		rep.AvgPowerW, rep.WorstOverW, okStr(rep.TrackOK), 100*0.10)
	fmt.Fprintf(w, "control: %d re-plans (%d infeasible), governor steps %d / retries %d / failures %d, compensations %d\n",
		rep.Replans, rep.Infeasible, rep.GovSteps, rep.GovRetries, rep.GovFailures, rep.Compensations)
	fmt.Fprintf(w, "faults: %d devices faulted, %d failovers, %d wakes on demand\n",
		rep.Faulted, rep.Failovers, rep.WakesOnDemand)
	if spec.Meso {
		fmt.Fprintf(w, "meso: %d dehydrations / %d rehydrations, %d parked periods, %.1f J analytic, drift %s (worst %.4f)\n",
			rep.MesoDehydrations, rep.MesoRehydrations, rep.MesoParkedPeriods, rep.MesoAggJ,
			okStr(rep.MesoDriftOK), rep.MesoWorstDriftFrac)
	}
	if spec.MesoGroupMin > 0 {
		fmt.Fprintf(w, "meso group: %d virtual lanes in %d buckets, %d plan slots scanned, %.1f J aggregate\n",
			rep.MesoGroupLanes, rep.MesoGroupBuckets, rep.MesoGroupScans, rep.MesoGroupJ)
	}
	if len(spec.Churn) > 0 {
		fmt.Fprintf(w, "churn: %d groups admitted / %d retired, warm-up p50 %v max %v, drain p50 %v max %v\n",
			rep.ChurnAdds, rep.ChurnRemoves,
			rep.WarmupP50.Round(time.Millisecond), rep.WarmupMax.Round(time.Millisecond),
			rep.DrainP50.Round(time.Millisecond), rep.DrainMax.Round(time.Millisecond))
	}
	fmt.Fprintf(w, "invariants: power-cap probe %s (worst window %.1f W)\n", okStr(rep.CapOK), rep.CapWorstW)

	if !rep.CapOK {
		return fmt.Errorf("fleet: sliding-window power-cap invariant fired: worst window %.1f W", rep.CapWorstW)
	}
	if !rep.TrackOK {
		return fmt.Errorf("fleet: achieved power missed budget by %.1f W", rep.WorstOverW)
	}
	if spec.Meso && !rep.MesoDriftOK {
		return fmt.Errorf("fleet: mesoscale drift probe fired (worst %.4f)", rep.MesoWorstDriftFrac)
	}
	return nil
}

// fleetSegment aggregates the control intervals sharing one budget step.
type fleetSegment struct {
	start    time.Duration
	budgetW  float64
	avgW     float64 // mean achieved over all intervals in the segment
	checkedW float64 // mean achieved over tracked intervals only
	n        int
	checked  int
}

func fleetSegments(ivs []serve.Interval) []fleetSegment {
	var segs []fleetSegment
	for _, iv := range ivs {
		if len(segs) == 0 || segs[len(segs)-1].budgetW != iv.BudgetW {
			segs = append(segs, fleetSegment{start: iv.Start, budgetW: iv.BudgetW})
		}
		s := &segs[len(segs)-1]
		s.avgW += iv.AchievedW
		s.n++
		if iv.Checked {
			s.checkedW += iv.AchievedW
			s.checked++
		}
	}
	for i := range segs {
		segs[i].avgW /= float64(segs[i].n)
		if segs[i].checked > 0 {
			segs[i].checkedW /= float64(segs[i].checked)
		}
	}
	return segs
}

func okStr(ok bool) string {
	if ok {
		return "OK"
	}
	return "FAILED"
}
