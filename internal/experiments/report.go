package experiments

import (
	"fmt"
	"io"
	"time"
)

// The reproduction report turns EXPERIMENTS.md into something a machine
// checks: every paper claim is a named band, the experiments run, and
// each claim prints PASS or FAIL with the measured value. `powerbench
// -exp report` is the one-command answer to "does this repository still
// reproduce the paper?".

// Claim is one paper number with the acceptance band the reproduction
// must land in.
type Claim struct {
	ID       string
	Paper    string // the paper's claim, quoted
	Measured float64
	Lo, Hi   float64
	Unit     string
}

// Pass reports whether the measured value is inside the band.
func (c Claim) Pass() bool { return c.Measured >= c.Lo && c.Measured <= c.Hi }

// Report runs the core experiments and evaluates every claim band.
// Bands are calibrated for byte-bound-dominated scales (Quick and up);
// the HDD throughput floor additionally needs paper scale and is only
// checked there.
func Report(s Scale) ([]Claim, error) {
	var claims []Claim
	add := func(id, paper string, measured, lo, hi float64, unit string) {
		claims = append(claims, Claim{ID: id, Paper: paper, Measured: measured, Lo: lo, Hi: hi, Unit: unit})
	}

	// Cap-sensitive experiments need enough bytes for the regulator's
	// deficit to dominate its burst allowance; enforce a floor.
	capScale := s
	if capScale.TotalBytes < 1<<30 {
		capScale.TotalBytes = 1 << 30
	}
	if capScale.Runtime < 3*time.Second {
		capScale.Runtime = 3 * time.Second
	}

	// Figure 4: write/read asymmetry under caps.
	fig4, err := Figure4(capScale)
	if err != nil {
		return nil, err
	}
	by := map[string]Series{}
	for _, x := range fig4 {
		by[x.Label] = x
	}
	last := len(by["seq write ps0"].Y) - 1
	add("fig4.write.ps1", "seq write at ps1 is 74% of ps0",
		by["seq write ps1"].Y[last]/by["seq write ps0"].Y[last], 0.66, 0.82, "ratio")
	add("fig4.write.ps2", "seq write at ps2 is 55% of ps0",
		by["seq write ps2"].Y[last]/by["seq write ps0"].Y[last], 0.45, 0.62, "ratio")
	add("fig4.read.ps2", "seq read under ps2: minimal drop",
		by["seq read ps2"].Y[last]/by["seq read ps0"].Y[last], 0.93, 1.001, "ratio")

	// Figure 5/6: latency under caps.
	_, p99w, err := Figure5(capScale)
	if err != nil {
		return nil, err
	}
	add("fig5.p99.2MiB", "random write p99 inflates up to 6.19x at ps2",
		p99w[2].Y[len(p99w[2].Y)-1], 3.0, 7.5, "x")
	avgR, _, err := Figure6(capScale)
	if err != nil {
		return nil, err
	}
	worst := 1.0
	for _, v := range avgR[2].Y {
		if v > worst {
			worst = v
		}
	}
	add("fig6.read.flat", "read latency unaffected by power states",
		worst, 0.97, 1.03, "ratio")

	// §3.2.2: standby levels and transitions.
	standby, err := StandbyStudy(s)
	if err != nil {
		return nil, err
	}
	for _, r := range standby {
		switch r.Device {
		case "HDD":
			add("standby.hdd.saved", "HDD standby saves 2.66 W", r.SavedW, 2.4, 2.9, "W")
			add("standby.hdd.roundtrip", "HDD spin down+up takes ~10 s",
				(r.EnterTook + r.ExitTook).Seconds(), 8, 14, "s")
		case "EVO":
			add("standby.evo.slumber", "860 EVO slumbers at 0.17 W", r.StandbyW, 0.16, 0.18, "W")
			add("standby.evo.enter", "EVO transition within 0.5 s",
				r.EnterTook.Seconds(), 0, 0.5, "s")
		}
	}

	// Figure 10 / headline: dynamic range and the curtailment example.
	models, err := Figure10(s)
	if err != nil {
		return nil, err
	}
	h, err := ComputeHeadline(models)
	if err != nil {
		return nil, err
	}
	add("fig10.ssd2.dynrange", "SSD2 dynamic range is 59.4% of max power",
		100*h.SSD2DynamicRange, 54, 63, "%")
	add("headline.curtail.power", "curtailment example sheds ~20% power",
		100*h.Curtailment.PowerReduction, 15, 25, "%")
	if s.Runtime >= Paper.Runtime {
		add("fig10.hdd.floor", "HDD throughput floor is ~4% of max",
			100*h.HDDThroughputFloor, 1, 8, "%")
	}

	return claims, nil
}

func init() {
	register("report", "Reproduction report: every paper claim checked against its band", func(s Scale, w io.Writer) error {
		start := time.Now()
		claims, err := Report(s)
		if err != nil {
			return err
		}
		section(w, "Reproduction report")
		pass := 0
		for _, c := range claims {
			status := "PASS"
			if c.Pass() {
				pass++
			} else {
				status = "FAIL"
			}
			fmt.Fprintf(w, "%-4s %-22s %8.3f %-5s in [%g, %g]  — %s\n",
				status, c.ID, c.Measured, c.Unit, c.Lo, c.Hi, c.Paper)
		}
		fmt.Fprintf(w, "\n%d/%d claims reproduced (%v)\n", pass, len(claims), time.Since(start).Round(time.Second))
		if pass != len(claims) {
			return fmt.Errorf("experiments: %d claims outside their bands", len(claims)-pass)
		}
		return nil
	})
}
