package experiments

import (
	"fmt"
	"io"

	"wattio/internal/scenario"
	"wattio/internal/serve"
)

func init() {
	register("meso", "Mesoscale aggregation: hybrid analytic tier vs pure event-driven serving", runMeso)
}

// mesoEnergyTolFrac is the acceptance bound on hybrid-vs-pure energy
// agreement. The hybrid's only systematic leak is the dehydration
// transition (a drain plus an idle calibration window serve no
// traffic), which amortizes away on the long builtin horizon.
const mesoEnergyTolFrac = 0.01

// MesoSpec translates a Scale into the pair-run serving spec: the
// attached scenario when it carries an enabled meso stanza, otherwise
// the built-in "meso" scenario (whose horizon is tuned long enough for
// the 1% energy-agreement gate). The returned spec has the tier ON;
// the experiment clears Spec.Meso for the baseline leg.
func MesoSpec(s Scale) (serve.Spec, error) {
	sp := s.Scenario
	horizon := s.Runtime
	if sp == nil || sp.Fleet == nil || sp.Fleet.Meso == nil || !sp.Fleet.Meso.Enable {
		sp = scenario.BuiltIn("meso")
		horizon = sp.Runtime.D()
	}
	return sp.ServeSpec(horizon)
}

func runMeso(s Scale, w io.Writer) error {
	spec, err := MesoSpec(s)
	if err != nil {
		return err
	}
	base := spec
	base.Meso = false
	pure, err := serve.Run(base)
	if err != nil {
		return err
	}
	hyb, err := serve.Run(spec)
	if err != nil {
		return err
	}

	evRatio := float64(pure.Events) / float64(hyb.Events)
	eAgree := relFrac(hyb.AvgPowerW, pure.AvgPowerW)

	section(w, "Mesoscale aggregation: hybrid analytic tier vs pure event-driven")
	fmt.Fprintf(w, "fleet: %d devices in %d groups across %d shards, horizon %v\n",
		pure.Devices, pure.Groups, pure.Shards, spec.Horizon)
	fmt.Fprintf(w, "events: pure %d, hybrid %d (%.1fx reduction)\n", pure.Events, hyb.Events, evRatio)
	fmt.Fprintf(w, "energy: pure %.1f W avg, hybrid %.1f W avg (disagreement %.2f%%, gate %.0f%%)\n",
		pure.AvgPowerW, hyb.AvgPowerW, 100*eAgree, 100*mesoEnergyTolFrac)
	fmt.Fprintf(w, "throughput: pure %.1f MB/s, hybrid %.1f MB/s (completed %d vs %d)\n",
		pure.ThroughputMBps, hyb.ThroughputMBps, pure.Completed, hyb.Completed)
	fmt.Fprintf(w, "meso: %d dehydrations, %d rehydrations, %d parked periods, %.1f J settled analytically\n",
		hyb.MesoDehydrations, hyb.MesoRehydrations, hyb.MesoParkedPeriods, hyb.MesoAggJ)
	fmt.Fprintf(w, "drift: sentinel probe %s (worst %.4f)   invariants: cap %s, tracking %s\n",
		okStr(hyb.MesoDriftOK), hyb.MesoWorstDriftFrac, okStr(hyb.CapOK), okStr(hyb.TrackOK))

	if hyb.MesoDehydrations == 0 {
		return fmt.Errorf("meso: no lane ever dehydrated — the tier did nothing")
	}
	if hyb.Events*2 >= pure.Events {
		return fmt.Errorf("meso: hybrid dispatched %d events vs pure %d — under 2x reduction", hyb.Events, pure.Events)
	}
	if eAgree > mesoEnergyTolFrac {
		return fmt.Errorf("meso: hybrid energy disagrees with mechanistic by %.2f%% (gate %.0f%%)",
			100*eAgree, 100*mesoEnergyTolFrac)
	}
	if !hyb.MesoDriftOK {
		return fmt.Errorf("meso: sentinel drift probe fired (worst %.4f)", hyb.MesoWorstDriftFrac)
	}
	if !hyb.CapOK || !hyb.TrackOK || !pure.CapOK || !pure.TrackOK {
		return fmt.Errorf("meso: power probes failed (hybrid cap=%v track=%v, pure cap=%v track=%v)",
			hyb.CapOK, hyb.TrackOK, pure.CapOK, pure.TrackOK)
	}
	return nil
}

// relFrac is |a−b| as a fraction of |b|.
func relFrac(a, b float64) float64 {
	d := (a - b) / b
	if d < 0 {
		d = -d
	}
	return d
}
