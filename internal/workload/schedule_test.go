package workload

import (
	"testing"
	"time"

	"wattio/internal/sim"
)

// TestScheduleSingleStepMatchesStartArrivals: a one-step schedule is
// the old fixed-rate process, arrival for arrival — the refactor that
// made StartArrivals delegate must not perturb a single RNG draw.
func TestScheduleSingleStepMatchesStartArrivals(t *testing.T) {
	t.Parallel()
	run := func(start func(*sim.Engine, *sim.RNG, func()) (*Arrivals, error)) []time.Duration {
		eng := sim.NewEngine()
		rng := sim.NewRNG(11)
		var times []time.Duration
		a, err := start(eng, rng, func() { times = append(times, eng.Now()) })
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if !a.Done() {
			t.Fatal("process never retired")
		}
		return times
	}
	old := run(func(eng *sim.Engine, rng *sim.RNG, fn func()) (*Arrivals, error) {
		return StartArrivals(eng, rng, OpenPoisson, 4000, time.Second, fn, nil)
	})
	sched := run(func(eng *sim.Engine, rng *sim.RNG, fn func()) (*Arrivals, error) {
		return StartArrivalsSchedule(eng, rng, OpenPoisson, []RateStep{{At: 0, IOPS: 4000}}, time.Second, fn, nil)
	})
	if len(old) == 0 {
		t.Fatal("no arrivals fired")
	}
	if len(old) != len(sched) {
		t.Fatalf("arrival counts diverge: %d vs %d", len(old), len(sched))
	}
	for i := range old {
		if old[i] != sched[i] {
			t.Fatalf("arrival %d diverges: %v vs %v", i, old[i], sched[i])
		}
	}
}

// TestScheduleRateSteps: uniform arrivals have a deterministic gap, so
// each segment's count is exactly rate x duration (the boundary tick
// discards the pending draw, never fires an arrival, and resamples at
// the new rate).
func TestScheduleRateSteps(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	steps := []RateStep{
		{At: 0, IOPS: 1000},
		{At: 500 * time.Millisecond, IOPS: 200},
		{At: 800 * time.Millisecond, IOPS: 2000},
	}
	counts := make([]int, len(steps))
	a, err := StartArrivalsSchedule(eng, sim.NewRNG(1), OpenUniform, steps, time.Second, func() {
		now := eng.Now()
		seg := 0
		for i := 1; i < len(steps); i++ {
			if now > steps[i].At {
				seg = i
			}
		}
		counts[seg]++
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// Segment spans: 500ms at 1000/s, 300ms at 200/s, 200ms at 2000/s.
	// The first arrival of each segment lands one full gap after the
	// boundary, so the count is floor(span x rate).
	want := []int{500, 60, 400}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("segment %d fired %d arrivals, want %d (all: %v)", i, counts[i], w, counts)
		}
	}
	if a.Count() != int64(500+60+400) {
		t.Fatalf("Count() = %d, want %d", a.Count(), 500+60+400)
	}
}

// TestScheduleMidRunStartPicksStepInForce: a process started after a
// boundary (a lane admitted by churn) runs at the step in force, not
// the schedule's first rate.
func TestScheduleMidRunStartPicksStepInForce(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	steps := []RateStep{
		{At: 0, IOPS: 10},
		{At: 100 * time.Millisecond, IOPS: 1000},
	}
	var n int
	eng.Post(200*time.Millisecond, func() {
		if _, err := StartArrivalsSchedule(eng, sim.NewRNG(2), OpenUniform, steps, 300*time.Millisecond, func() { n++ }, nil); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	// 100ms at 1000/s; at 10/s the window would fit no arrival at all.
	if n != 100 {
		t.Fatalf("mid-run process fired %d arrivals, want 100", n)
	}
}

// TestScheduleValidation: malformed schedules fail loudly.
func TestScheduleValidation(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(3)
	fn := func() {}
	cases := []struct {
		name  string
		kind  Arrival
		rates []RateStep
		until time.Duration
	}{
		{"closed kind", Closed, []RateStep{{At: 0, IOPS: 100}}, time.Second},
		{"empty schedule", OpenPoisson, nil, time.Second},
		{"non-positive rate", OpenPoisson, []RateStep{{At: 0, IOPS: 0}}, time.Second},
		{"non-increasing steps", OpenPoisson, []RateStep{{At: 0, IOPS: 1}, {At: 0, IOPS: 2}}, time.Second},
		{"past deadline", OpenPoisson, []RateStep{{At: 0, IOPS: 1}}, 0},
	}
	for _, tc := range cases {
		if _, err := StartArrivalsSchedule(eng, rng, tc.kind, tc.rates, tc.until, fn, nil); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := StartArrivalsSchedule(eng, rng, OpenPoisson, []RateStep{{At: 0, IOPS: 1}}, time.Second, nil, nil); err == nil {
		t.Error("nil callback: accepted")
	}
}
