// Package workload generates storage IO the way the paper drives fio:
// asynchronous direct IO at a fixed queue depth, random or sequential,
// for a bounded duration or byte total, with per-IO latency capture.
package workload

import (
	"fmt"
	"sort"
	"time"

	"wattio/internal/device"
	"wattio/internal/sim"
	"wattio/internal/stats"
	"wattio/internal/telemetry"
)

// Pattern is the offset pattern of a job.
type Pattern int

const (
	// Seq issues consecutive offsets starting at zero, wrapping at the
	// span.
	Seq Pattern = iota
	// Rand issues uniformly random block-aligned offsets in the span.
	Rand
)

// String returns "seq" or "rand".
func (p Pattern) String() string {
	if p == Seq {
		return "seq"
	}
	return "rand"
}

// Arrival selects how IOs are generated.
type Arrival int

const (
	// Closed keeps Depth IOs in flight: a new IO issues when one
	// completes. This is fio's iodepth model and the paper's setup.
	Closed Arrival = iota
	// OpenPoisson issues IOs at exponentially distributed intervals
	// with mean 1/RateIOPS, independent of completions — the open-loop
	// model needed for offered-load (power proportionality) studies.
	OpenPoisson
	// OpenUniform issues IOs at fixed 1/RateIOPS intervals.
	OpenUniform
)

// Job specifies one fio-style workload, mirroring the knobs the paper
// sweeps: rw, bs, iodepth, runtime, and size.
type Job struct {
	Op      device.Op
	Pattern Pattern
	// BS is the IO chunk size in bytes.
	BS int64
	// Depth is the number of IOs kept in flight (Closed arrivals).
	Depth int
	// Arrival selects closed-loop (default) or open-loop generation.
	Arrival Arrival
	// RateIOPS is the open-loop arrival rate; required for open modes.
	RateIOPS float64
	// Runtime bounds the issue window; the paper uses one minute.
	Runtime time.Duration
	// TotalBytes bounds the bytes issued; the paper uses 4 GiB.
	// Whichever of Runtime and TotalBytes is reached first stops issue.
	TotalBytes int64
	// Span restricts offsets to [0, Span); 0 means the whole device.
	Span int64
}

// Name returns a compact fio-style description, e.g. "randwrite-256k-qd64".
func (j Job) Name() string {
	dir := "read"
	if j.Op == device.OpWrite {
		dir = "write"
	}
	prefix := ""
	if j.Pattern == Rand {
		prefix = "rand"
	}
	return fmt.Sprintf("%s%s-%s-qd%d", prefix, dir, sizeLabel(j.BS), j.Depth)
}

func sizeLabel(n int64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dm", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dk", n>>10)
	default:
		return fmt.Sprintf("%db", n)
	}
}

func (j Job) validate(dev device.Device) error {
	span := j.Span
	if span == 0 {
		span = dev.CapacityBytes()
	}
	switch {
	case j.BS <= 0 || j.BS%512 != 0:
		return fmt.Errorf("workload: block size %d invalid", j.BS)
	case j.Arrival == Closed && j.Depth <= 0:
		return fmt.Errorf("workload: depth %d must be positive", j.Depth)
	case j.Arrival != Closed && j.RateIOPS <= 0:
		return fmt.Errorf("workload: open arrivals need a positive rate")
	case j.Runtime <= 0 && j.TotalBytes <= 0:
		return fmt.Errorf("workload: need a runtime or byte bound")
	case span < j.BS:
		return fmt.Errorf("workload: span %d smaller than block size %d", span, j.BS)
	case span > dev.CapacityBytes():
		return fmt.Errorf("workload: span %d exceeds device capacity %d", span, dev.CapacityBytes())
	}
	return nil
}

// Result summarizes a completed job.
type Result struct {
	Job     Job
	IOs     int64
	Bytes   int64
	Elapsed time.Duration // issue start to last completion

	BandwidthMBps float64
	IOPS          float64

	LatAvg time.Duration
	LatP50 time.Duration
	LatP99 time.Duration
	LatMax time.Duration

	// Latencies holds every IO's completion latency in issue order.
	Latencies []time.Duration
}

// Runner drives one job on one device. Create with Start, then advance
// the engine until Done reports true.
type Runner struct {
	eng  *sim.Engine
	dev  device.Device
	job  Job
	rng  *sim.RNG
	span int64

	start        time.Duration
	deadline     time.Duration
	issued       int64 // bytes
	inflight     int
	seqOff       int64
	lastDone     time.Duration
	latencies    []time.Duration
	arrivalsDone bool
	done         bool
	arriveT      *sim.Timer // reused open-loop arrival timer
	freeDone     *ioDone    // free list of completion records, bounded by queue depth

	// Telemetry. Nil-safe no-ops when the engine has none attached.
	tr      *telemetry.Tracer
	lane    string
	cIssued *telemetry.Counter
	cDone   *telemetry.Counter
	gDepth  *telemetry.Gauge
	hLatNs  *telemetry.Histogram
}

// Start validates the job and issues the initial queue-depth worth of
// IOs. It panics on an invalid job: experiment specs are code, and bugs
// in them should fail loudly.
func Start(eng *sim.Engine, dev device.Device, job Job, rng *sim.RNG) *Runner {
	if err := job.validate(dev); err != nil {
		panic(err)
	}
	span := job.Span
	if span == 0 {
		span = dev.CapacityBytes()
	}
	// Align the span down to a whole number of blocks so random offsets
	// never cross the end.
	span -= span % job.BS
	reg := eng.Metrics()
	r := &Runner{
		eng:  eng,
		dev:  dev,
		job:  job,
		rng:  rng.Stream("workload"),
		span: span,

		start:    eng.Now(),
		deadline: -1,

		tr:      eng.Tracer(),
		lane:    dev.Name() + "/io",
		cIssued: reg.Counter("workload_ios_issued_total"),
		cDone:   reg.Counter("workload_ios_completed_total"),
		gDepth:  reg.Gauge("workload_queue_depth"),
		hLatNs:  reg.Histogram("workload_latency_ns"),
	}
	if job.Runtime > 0 {
		r.deadline = eng.Now() + job.Runtime
	}
	if job.Arrival == Closed {
		for i := 0; i < job.Depth && r.canIssue(); i++ {
			r.issue()
		}
		if r.inflight == 0 {
			r.done = true
		}
		return r
	}
	r.arrive()
	return r
}

// arrive fires one open-loop arrival and schedules the next.
func (r *Runner) arrive() {
	if !r.canIssue() {
		r.arrivalsDone = true
		if r.inflight == 0 {
			r.done = true
		}
		return
	}
	r.issue()
	gap := 1 / r.job.RateIOPS // seconds
	if r.job.Arrival == OpenPoisson {
		gap = r.rng.Exponential(gap)
	}
	d := time.Duration(gap * float64(time.Second))
	if d <= 0 {
		d = time.Nanosecond
	}
	if r.arriveT == nil {
		r.arriveT = r.eng.After(d, r.arrive)
	} else {
		r.arriveT.RescheduleAfter(d)
	}
}

// Done reports whether all issued IO has completed and no more will be
// issued.
func (r *Runner) Done() bool { return r.done }

// CompletedIOs returns how many IOs have completed so far; usable while
// the job is still running (e.g. per-phase accounting in scenarios).
func (r *Runner) CompletedIOs() int64 { return int64(len(r.latencies)) }

// CompletedBytes returns the bytes completed so far.
func (r *Runner) CompletedBytes() int64 { return int64(len(r.latencies)) * r.job.BS }

func (r *Runner) canIssue() bool {
	if r.job.TotalBytes > 0 && r.issued >= r.job.TotalBytes {
		return false
	}
	if r.deadline >= 0 && r.eng.Now() >= r.deadline {
		return false
	}
	return true
}

// ioDone is one in-flight IO's completion record. Records are pooled on
// the Runner (the pool never exceeds the queue depth) so a closed-loop
// job at steady state submits every IO without allocating: the closure
// handed to the device is built once per record and only its captured
// fields change between reuses.
type ioDone struct {
	r         *Runner
	submitted time.Duration
	id        int64
	fn        func()
	next      *ioDone
}

func (d *ioDone) run() {
	// Copy out and recycle first: a closed-loop re-issue below may pick
	// this very record up for the replacement IO.
	r, submitted, id := d.r, d.submitted, d.id
	d.next = r.freeDone
	r.freeDone = d
	now := r.eng.Now()
	r.latencies = append(r.latencies, now-submitted)
	r.lastDone = now
	r.inflight--
	r.cDone.Inc()
	r.gDepth.Set(int64(r.inflight))
	r.hLatNs.Observe(int64(now - submitted))
	if r.tr.Enabled() {
		r.tr.AsyncEnd(r.lane, "io", r.job.Name(), id, now)
	}
	if r.job.Arrival != Closed {
		// Open loop: arrivals are driven by the clock, not by
		// completions; the runner finishes once arrivals have
		// stopped and the queue drains.
		if r.arrivalsDone && r.inflight == 0 {
			r.done = true
		}
		return
	}
	if r.canIssue() {
		r.issue()
	} else if r.inflight == 0 {
		r.done = true
	}
}

func (r *Runner) issue() {
	off := r.nextOffset()
	req := device.Request{Op: r.job.Op, Offset: off, Size: r.job.BS}
	r.issued += r.job.BS
	r.inflight++
	r.cIssued.Inc()
	r.gDepth.Set(int64(r.inflight))
	submitted := r.eng.Now()
	id := int64(len(r.latencies)) + int64(r.inflight)
	if r.tr.Enabled() {
		r.tr.AsyncBegin(r.lane, "io", r.job.Name(), id, submitted)
	}
	d := r.freeDone
	if d == nil {
		d = &ioDone{r: r}
		d.fn = d.run
	} else {
		r.freeDone = d.next
	}
	d.submitted, d.id = submitted, id
	r.dev.Submit(req, d.fn)
}

func (r *Runner) nextOffset() int64 {
	if r.job.Pattern == Rand {
		blocks := r.span / r.job.BS
		return r.rng.Int64N(blocks) * r.job.BS
	}
	off := r.seqOff
	r.seqOff += r.job.BS
	if r.seqOff+r.job.BS > r.span {
		r.seqOff = 0
	}
	return off
}

// Result summarizes the run. It panics if the runner is not Done.
func (r *Runner) Result() Result {
	if !r.done {
		panic("workload: Result before Done")
	}
	res := Result{
		Job:       r.job,
		IOs:       int64(len(r.latencies)),
		Bytes:     int64(len(r.latencies)) * r.job.BS,
		Latencies: r.latencies,
	}
	if res.IOs == 0 {
		return res
	}
	res.Elapsed = r.lastDone - r.start
	secs := res.Elapsed.Seconds()
	if secs > 0 {
		res.BandwidthMBps = float64(res.Bytes) / 1e6 / secs
		res.IOPS = float64(res.IOs) / secs
	}
	fl := make([]float64, len(r.latencies))
	var sum time.Duration
	maxLat := time.Duration(0)
	for i, l := range r.latencies {
		fl[i] = float64(l)
		sum += l
		if l > maxLat {
			maxLat = l
		}
	}
	res.LatAvg = sum / time.Duration(res.IOs)
	sort.Float64s(fl)
	res.LatP50 = time.Duration(stats.Quantile(fl, 0.50))
	res.LatP99 = time.Duration(stats.Quantile(fl, 0.99))
	res.LatMax = maxLat
	return res
}

// Run is the synchronous convenience: it starts the job and steps the
// engine until the job completes, then returns its Result. Other
// scheduled activity (power sampling, ALPM timers) advances normally.
func Run(eng *sim.Engine, dev device.Device, job Job, rng *sim.RNG) Result {
	r := Start(eng, dev, job, rng)
	for !r.Done() {
		if !eng.Step() {
			panic("workload: engine drained before job completion")
		}
	}
	return r.Result()
}
