package workload

import (
	"testing"
	"time"

	"wattio/internal/device"
	"wattio/internal/sim"
)

func TestRecorderCapturesStream(t *testing.T) {
	eng := sim.NewEngine()
	dev := newFake(eng, time.Millisecond)
	rec := NewRecorder(eng, dev)
	res := Run(eng, rec, Job{
		Op: device.OpWrite, Pattern: Rand, BS: 8192, Depth: 4, TotalBytes: 32 * 8192,
	}, sim.NewRNG(9))
	tr := rec.Trace()
	if int64(len(tr.Events)) != res.IOs {
		t.Fatalf("recorded %d events, ran %d IOs", len(tr.Events), res.IOs)
	}
	if tr.Bytes() != res.Bytes {
		t.Fatalf("trace bytes %d != run bytes %d", tr.Bytes(), res.Bytes)
	}
	for i, e := range tr.Events {
		if e.Op != device.OpWrite || e.Size != 8192 {
			t.Fatalf("event %d = %+v", i, e)
		}
		if i > 0 && e.At < tr.Events[i-1].At {
			t.Fatal("trace timestamps not monotone")
		}
	}
	// The recorder is transparent: the wrapped device saw everything.
	if len(dev.submits) != len(tr.Events) {
		t.Fatal("recorder swallowed submissions")
	}
}

func TestReplayPreservesTiming(t *testing.T) {
	tr := IOTrace{Events: []IOEvent{
		{At: 0, Op: device.OpRead, Offset: 0, Size: 4096},
		{At: 10 * time.Millisecond, Op: device.OpRead, Offset: 8192, Size: 4096},
		{At: 30 * time.Millisecond, Op: device.OpWrite, Offset: 0, Size: 4096},
	}}
	eng := sim.NewEngine()
	dev := newFake(eng, time.Millisecond)
	res, err := Replay(eng, dev, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.IOs != 3 {
		t.Fatalf("IOs = %d, want 3", res.IOs)
	}
	// Last submission at 30ms + 1ms service.
	if res.Elapsed != 31*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 31ms", res.Elapsed)
	}
	if len(dev.submits) != 3 {
		t.Fatalf("device saw %d submissions", len(dev.submits))
	}
	if res.LatAvg != time.Millisecond {
		t.Fatalf("LatAvg = %v, want 1ms", res.LatAvg)
	}
}

func TestRecordOnFastReplayOnSlow(t *testing.T) {
	// Record a stream against a fast device, replay against a slow one:
	// same arrivals, higher latency (open loop).
	eng := sim.NewEngine()
	fast := newFake(eng, 100*time.Microsecond)
	rec := NewRecorder(eng, fast)
	Run(eng, rec, Job{
		Op: device.OpRead, Pattern: Rand, BS: 4096,
		Arrival: OpenUniform, RateIOPS: 2000, Runtime: 100 * time.Millisecond,
	}, sim.NewRNG(9))
	tr := rec.Trace()

	eng2 := sim.NewEngine()
	slow := newFake(eng2, 5*time.Millisecond)
	res, err := Replay(eng2, slow, tr)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(tr.Events)) != res.IOs {
		t.Fatalf("replayed %d of %d events", res.IOs, len(tr.Events))
	}
	if res.LatAvg != 5*time.Millisecond {
		t.Fatalf("slow replay LatAvg = %v, want 5ms", res.LatAvg)
	}
	// Arrivals unchanged: total span ≈ recording span + service tail.
	if res.Elapsed > tr.Duration()+6*time.Millisecond {
		t.Fatalf("replay stretched arrivals: %v vs trace %v", res.Elapsed, tr.Duration())
	}
}

func TestReplayWrapsOffsetsForSmallerDevice(t *testing.T) {
	tr := IOTrace{Events: []IOEvent{
		{At: 0, Op: device.OpRead, Offset: 10 << 30, Size: 4096}, // beyond 1 GiB fake
	}}
	eng := sim.NewEngine()
	dev := newFake(eng, time.Millisecond)
	res, err := Replay(eng, dev, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.IOs != 1 {
		t.Fatal("wrapped IO did not complete")
	}
	if off := dev.submits[0].Offset; off+4096 > dev.CapacityBytes() || off%512 != 0 {
		t.Fatalf("wrapped offset %d invalid", off)
	}
}

func TestReplayValidation(t *testing.T) {
	eng := sim.NewEngine()
	dev := newFake(eng, time.Millisecond)
	if _, err := Replay(eng, dev, IOTrace{}); err == nil {
		t.Error("empty trace accepted")
	}
	bad := IOTrace{Events: []IOEvent{
		{At: time.Second, Op: device.OpRead, Offset: 0, Size: 4096},
		{At: 0, Op: device.OpRead, Offset: 0, Size: 4096},
	}}
	if _, err := Replay(eng, dev, bad); err == nil {
		t.Error("out-of-order trace accepted")
	}
}
