package workload

import (
	"fmt"
	"sort"
	"time"

	"wattio/internal/device"
	"wattio/internal/sim"
)

// IO trace record/replay: capture the exact request stream one
// configuration produced and re-issue it, with original timing, against
// a different device or policy. This is how apples-to-apples
// comparisons are made when the question is "what would this workload
// have cost on that device?" rather than "what does this device do at
// saturation?".

// IOEvent is one recorded submission.
type IOEvent struct {
	At     time.Duration // submission time relative to recording start
	Op     device.Op
	Offset int64
	Size   int64
}

// IOTrace is a time-ordered request stream.
type IOTrace struct {
	Events []IOEvent
}

// Duration returns the submission span of the trace.
func (t *IOTrace) Duration() time.Duration {
	if len(t.Events) == 0 {
		return 0
	}
	return t.Events[len(t.Events)-1].At
}

// Bytes returns the total bytes the trace moves.
func (t *IOTrace) Bytes() int64 {
	var sum int64
	for _, e := range t.Events {
		sum += e.Size
	}
	return sum
}

// Recorder wraps a device, recording every submission (with its timing)
// while passing it through. It implements device.Device, so it drops
// transparently between any workload source and any device.
type Recorder struct {
	device.Device
	eng   *sim.Engine
	start time.Duration
	trace IOTrace
}

// NewRecorder wraps dev; the trace clock starts now.
func NewRecorder(eng *sim.Engine, dev device.Device) *Recorder {
	return &Recorder{Device: dev, eng: eng, start: eng.Now()}
}

// Submit implements device.Device, recording then forwarding.
func (r *Recorder) Submit(req device.Request, done func()) {
	r.trace.Events = append(r.trace.Events, IOEvent{
		At:     r.eng.Now() - r.start,
		Op:     req.Op,
		Offset: req.Offset,
		Size:   req.Size,
	})
	r.Device.Submit(req, done)
}

// Trace returns the recording so far.
func (r *Recorder) Trace() IOTrace { return r.trace }

// Replay re-issues the trace against dev with the original inter-arrival
// timing (open loop: a slow device queues, it does not slow arrivals).
// It drives the engine to completion and returns the same statistics a
// live run produces. Offsets beyond the target's capacity wrap.
func Replay(eng *sim.Engine, dev device.Device, tr IOTrace) (Result, error) {
	if len(tr.Events) == 0 {
		return Result{}, fmt.Errorf("workload: empty trace")
	}
	if !sort.SliceIsSorted(tr.Events, func(i, j int) bool { return tr.Events[i].At < tr.Events[j].At }) {
		return Result{}, fmt.Errorf("workload: trace events out of order")
	}
	capacity := dev.CapacityBytes()
	start := eng.Now()
	remaining := len(tr.Events)
	latencies := make([]time.Duration, 0, len(tr.Events))
	var lastDone time.Duration
	for _, e := range tr.Events {
		e := e
		eng.Post(start+e.At, func() {
			req := device.Request{Op: e.Op, Offset: e.Offset, Size: e.Size}
			if req.Offset+req.Size > capacity {
				req.Offset = req.Offset % (capacity - req.Size)
				req.Offset -= req.Offset % 512
			}
			submitted := eng.Now()
			dev.Submit(req, func() {
				latencies = append(latencies, eng.Now()-submitted)
				lastDone = eng.Now()
				remaining--
			})
		})
	}
	for remaining > 0 {
		if !eng.Step() {
			return Result{}, fmt.Errorf("workload: engine drained with %d replayed IOs outstanding", remaining)
		}
	}
	res := Result{
		IOs:       int64(len(latencies)),
		Bytes:     tr.Bytes(),
		Elapsed:   lastDone - start,
		Latencies: latencies,
	}
	if secs := res.Elapsed.Seconds(); secs > 0 {
		res.BandwidthMBps = float64(res.Bytes) / 1e6 / secs
		res.IOPS = float64(res.IOs) / secs
	}
	fillLatencyStats(&res)
	return res, nil
}

// fillLatencyStats computes the summary fields from raw latencies.
func fillLatencyStats(res *Result) {
	if len(res.Latencies) == 0 {
		return
	}
	sorted := make([]time.Duration, len(res.Latencies))
	copy(sorted, res.Latencies)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, l := range sorted {
		sum += l
	}
	res.LatAvg = sum / time.Duration(len(sorted))
	res.LatP50 = sorted[len(sorted)/2]
	res.LatP99 = sorted[(len(sorted)-1)*99/100]
	res.LatMax = sorted[len(sorted)-1]
}

var _ device.Device = (*Recorder)(nil)
