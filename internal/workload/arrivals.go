package workload

import (
	"fmt"
	"time"

	"wattio/internal/sim"
)

// Arrivals is a standalone open-loop arrival process: it fires a
// callback per request arrival at the configured rate until its horizon
// passes or it is stopped. Runner embeds the same arrival logic for
// single-device jobs; Arrivals exists for layers that put their own
// queueing between arrival and device — the serving engine's admission
// control and batching cannot use Runner's direct-submit path.
type Arrivals struct {
	eng  *sim.Engine
	rng  *sim.RNG
	kind Arrival
	gap  float64 // mean inter-arrival time in seconds

	deadline time.Duration
	count    int64
	stopped  bool
	timer    *sim.Timer
	fn       func()
	onDone   func()
}

// StartArrivals begins an open-loop arrival process on the engine. fn
// runs once per arrival; arrivals stop after horizon elapses (measured
// from now) or when Stop is called. kind must be OpenPoisson or
// OpenUniform; rateIOPS must be positive. onDone, if non-nil, runs as
// an engine event when the process retires (horizon reached), letting
// callers sequence drain logic without polling.
func StartArrivals(eng *sim.Engine, rng *sim.RNG, kind Arrival, rateIOPS float64, horizon time.Duration, fn func(), onDone func()) (*Arrivals, error) {
	if kind == Closed {
		return nil, fmt.Errorf("workload: arrivals need an open-loop kind")
	}
	if rateIOPS <= 0 {
		return nil, fmt.Errorf("workload: arrival rate %v must be positive", rateIOPS)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("workload: arrival horizon %v must be positive", horizon)
	}
	if fn == nil {
		return nil, fmt.Errorf("workload: arrivals need a callback")
	}
	a := &Arrivals{
		eng:      eng,
		rng:      rng,
		kind:     kind,
		gap:      1 / rateIOPS,
		deadline: eng.Now() + horizon,
		fn:       fn,
		onDone:   onDone,
	}
	// The first arrival comes one inter-arrival gap in, not at t=0: an
	// open-loop source has no reason to fire the instant it is created,
	// and a synchronized burst across many lanes would be an artifact.
	a.schedule()
	return a, nil
}

func (a *Arrivals) schedule() {
	gap := a.gap
	if a.kind == OpenPoisson {
		gap = a.rng.Exponential(gap)
	}
	d := time.Duration(gap * float64(time.Second))
	if d <= 0 {
		d = time.Nanosecond
	}
	if a.eng.Now()+d > a.deadline {
		a.retire()
		return
	}
	// One timer serves the whole process: the first arrival arms it,
	// every later arrival re-sifts it in place.
	if a.timer == nil {
		a.timer = a.eng.After(d, a.tick)
	} else {
		a.timer.RescheduleAfter(d)
	}
}

func (a *Arrivals) tick() {
	if a.stopped {
		return
	}
	a.count++
	a.fn()
	a.schedule()
}

func (a *Arrivals) retire() {
	if a.stopped {
		return
	}
	a.stopped = true
	if a.onDone != nil {
		a.eng.PostAfter(0, a.onDone)
	}
}

// Stop halts the process early. Idempotent; onDone still fires once.
func (a *Arrivals) Stop() {
	if a.stopped {
		return
	}
	if a.timer != nil {
		a.timer.Stop()
	}
	a.retire()
}

// Count returns how many arrivals have fired.
func (a *Arrivals) Count() int64 { return a.count }

// Done reports whether the process has retired.
func (a *Arrivals) Done() bool { return a.stopped }
