package workload

import (
	"fmt"
	"time"

	"wattio/internal/sim"
)

// RateStep is one segment of a piecewise-constant arrival-rate
// schedule: from engine time At onward the process runs at IOPS
// arrivals per second, until the next step (or the deadline) takes
// over. A diurnal load curve is a handful of RateSteps.
type RateStep struct {
	At   time.Duration
	IOPS float64
}

// Arrivals is a standalone open-loop arrival process: it fires a
// callback per request arrival at the scheduled rate until its deadline
// passes or it is stopped. Runner embeds the same arrival logic for
// single-device jobs; Arrivals exists for layers that put their own
// queueing between arrival and device — the serving engine's admission
// control and batching cannot use Runner's direct-submit path.
type Arrivals struct {
	eng   *sim.Engine
	rng   *sim.RNG
	kind  Arrival
	rates []RateStep
	ri    int // index of the rate step in force

	deadline time.Duration
	count    int64
	stopped  bool
	arrival  bool // the armed timer is an arrival, not a rate boundary
	timer    *sim.Timer
	fn       func()
	onDone   func()
}

// StartArrivals begins an open-loop arrival process on the engine. fn
// runs once per arrival; arrivals stop after horizon elapses (measured
// from now) or when Stop is called. kind must be OpenPoisson or
// OpenUniform; rateIOPS must be positive. onDone, if non-nil, runs as
// an engine event when the process retires (horizon reached), letting
// callers sequence drain logic without polling.
func StartArrivals(eng *sim.Engine, rng *sim.RNG, kind Arrival, rateIOPS float64, horizon time.Duration, fn func(), onDone func()) (*Arrivals, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("workload: arrival horizon %v must be positive", horizon)
	}
	return StartArrivalsSchedule(eng, rng, kind, []RateStep{{At: 0, IOPS: rateIOPS}}, eng.Now()+horizon, fn, onDone)
}

// StartArrivalsSchedule begins an open-loop arrival process driven by a
// piecewise-constant rate schedule. rates must be non-empty with
// strictly increasing At and positive IOPS; At values are absolute
// engine times (a process started mid-run picks up whichever step is in
// force). until is the absolute engine time past which no arrival may
// land. At each rate boundary the pending inter-arrival draw is
// discarded and resampled at the new rate — exact for Poisson arrivals
// by memorylessness, and the defined semantics for uniform ones.
func StartArrivalsSchedule(eng *sim.Engine, rng *sim.RNG, kind Arrival, rates []RateStep, until time.Duration, fn func(), onDone func()) (*Arrivals, error) {
	if kind == Closed {
		return nil, fmt.Errorf("workload: arrivals need an open-loop kind")
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("workload: arrivals need at least one rate step")
	}
	for i, r := range rates {
		if r.IOPS <= 0 {
			return nil, fmt.Errorf("workload: arrival rate %v must be positive", r.IOPS)
		}
		if i > 0 && r.At <= rates[i-1].At {
			return nil, fmt.Errorf("workload: rate steps must have strictly increasing times")
		}
	}
	if until <= eng.Now() {
		return nil, fmt.Errorf("workload: arrival deadline %v must be in the future", until)
	}
	if fn == nil {
		return nil, fmt.Errorf("workload: arrivals need a callback")
	}
	a := &Arrivals{
		eng:      eng,
		rng:      rng,
		kind:     kind,
		rates:    rates,
		deadline: until,
		fn:       fn,
		onDone:   onDone,
	}
	// The first arrival comes one inter-arrival gap in, not at t=0: an
	// open-loop source has no reason to fire the instant it is created,
	// and a synchronized burst across many lanes would be an artifact.
	a.schedule()
	return a, nil
}

// gapAt advances the step cursor to the step in force at now and
// returns its mean inter-arrival time in seconds.
func (a *Arrivals) gapAt(now time.Duration) float64 {
	for a.ri+1 < len(a.rates) && a.rates[a.ri+1].At <= now {
		a.ri++
	}
	return 1 / a.rates[a.ri].IOPS
}

func (a *Arrivals) schedule() {
	now := a.eng.Now()
	gap := a.gapAt(now)
	if a.kind == OpenPoisson {
		gap = a.rng.Exponential(gap)
	}
	d := time.Duration(gap * float64(time.Second))
	if d <= 0 {
		d = time.Nanosecond
	}
	// A draw that crosses the next rate boundary is abandoned there and
	// resampled at the new rate; the boundary tick is not an arrival.
	if a.ri+1 < len(a.rates) {
		if b := a.rates[a.ri+1].At; now+d > b {
			a.arm(b-now, false)
			return
		}
	}
	if now+d > a.deadline {
		a.retire()
		return
	}
	a.arm(d, true)
}

// arm sets the process timer d from now. One timer serves the whole
// process: the first arm creates it, every later arm re-sifts it in
// place.
func (a *Arrivals) arm(d time.Duration, arrival bool) {
	a.arrival = arrival
	if a.timer == nil {
		a.timer = a.eng.After(d, a.tick)
	} else {
		a.timer.RescheduleAfter(d)
	}
}

func (a *Arrivals) tick() {
	if a.stopped {
		return
	}
	if a.arrival {
		a.count++
		a.fn()
	}
	a.schedule()
}

func (a *Arrivals) retire() {
	if a.stopped {
		return
	}
	a.stopped = true
	if a.onDone != nil {
		a.eng.PostAfter(0, a.onDone)
	}
}

// Stop halts the process early. Idempotent; onDone still fires once.
func (a *Arrivals) Stop() {
	if a.stopped {
		return
	}
	if a.timer != nil {
		a.timer.Stop()
	}
	a.retire()
}

// Count returns how many arrivals have fired.
func (a *Arrivals) Count() int64 { return a.count }

// Done reports whether the process has retired.
func (a *Arrivals) Done() bool { return a.stopped }
