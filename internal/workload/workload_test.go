package workload

import (
	"testing"
	"testing/quick"
	"time"

	"wattio/internal/device"
	"wattio/internal/sim"
)

// fakeDev is a deterministic device: every IO completes after a fixed
// service time, with unbounded internal parallelism.
type fakeDev struct {
	eng      *sim.Engine
	svc      time.Duration
	capacity int64
	submits  []device.Request
	inflight int
	maxInfl  int
}

func newFake(eng *sim.Engine, svc time.Duration) *fakeDev {
	return &fakeDev{eng: eng, svc: svc, capacity: 1 << 30}
}

func (f *fakeDev) Name() string                     { return "fake" }
func (f *fakeDev) Model() string                    { return "fake" }
func (f *fakeDev) Protocol() device.Protocol        { return device.NVMe }
func (f *fakeDev) CapacityBytes() int64             { return f.capacity }
func (f *fakeDev) InstantPower() float64            { return 1 }
func (f *fakeDev) EnergyJ() float64                 { return 0 }
func (f *fakeDev) PowerStates() []device.PowerState { return nil }
func (f *fakeDev) SetPowerState(int) error          { return device.ErrNotSupported }
func (f *fakeDev) PowerStateIndex() int             { return 0 }
func (f *fakeDev) EnterStandby() error              { return device.ErrNotSupported }
func (f *fakeDev) Wake() error                      { return device.ErrNotSupported }
func (f *fakeDev) Standby() bool                    { return false }
func (f *fakeDev) Settled() bool                    { return true }

func (f *fakeDev) Submit(r device.Request, done func()) {
	if err := r.Validate(f.capacity); err != nil {
		panic(err)
	}
	f.submits = append(f.submits, r)
	f.inflight++
	if f.inflight > f.maxInfl {
		f.maxInfl = f.inflight
	}
	f.eng.After(f.svc, func() {
		f.inflight--
		done()
	})
}

var _ device.Device = (*fakeDev)(nil)

func TestByteBoundStopsIssue(t *testing.T) {
	eng := sim.NewEngine()
	dev := newFake(eng, time.Millisecond)
	res := Run(eng, dev, Job{
		Op: device.OpRead, Pattern: Seq, BS: 4096, Depth: 4, TotalBytes: 64 * 4096,
	}, sim.NewRNG(1))
	if res.IOs != 64 {
		t.Fatalf("IOs = %d, want 64", res.IOs)
	}
	if res.Bytes != 64*4096 {
		t.Fatalf("Bytes = %d", res.Bytes)
	}
}

func TestRuntimeBoundStopsIssue(t *testing.T) {
	eng := sim.NewEngine()
	dev := newFake(eng, 10*time.Millisecond)
	res := Run(eng, dev, Job{
		Op: device.OpWrite, Pattern: Rand, BS: 4096, Depth: 1, Runtime: 95 * time.Millisecond,
	}, sim.NewRNG(1))
	// qd1 at 10ms per IO: ~10 IOs fit in 95ms (the 10th completes at
	// 100ms, issued at 90ms < deadline).
	if res.IOs < 9 || res.IOs > 11 {
		t.Fatalf("IOs = %d, want ≈ 10", res.IOs)
	}
}

func TestQueueDepthRespected(t *testing.T) {
	eng := sim.NewEngine()
	dev := newFake(eng, time.Millisecond)
	Run(eng, dev, Job{
		Op: device.OpRead, Pattern: Rand, BS: 4096, Depth: 7, TotalBytes: 100 * 4096,
	}, sim.NewRNG(1))
	if dev.maxInfl != 7 {
		t.Fatalf("max inflight = %d, want exactly the queue depth 7", dev.maxInfl)
	}
}

func TestSequentialOffsetsAdvanceAndWrap(t *testing.T) {
	eng := sim.NewEngine()
	dev := newFake(eng, time.Microsecond)
	span := int64(8 * 4096)
	Run(eng, dev, Job{
		Op: device.OpRead, Pattern: Seq, BS: 4096, Depth: 1, TotalBytes: 20 * 4096, Span: span,
	}, sim.NewRNG(1))
	for i, r := range dev.submits {
		want := int64(i%8) * 4096
		if r.Offset != want {
			t.Fatalf("submit %d offset %d, want %d (wrapping at span)", i, r.Offset, want)
		}
	}
}

func TestRandomOffsetsAlignedWithinSpan(t *testing.T) {
	eng := sim.NewEngine()
	dev := newFake(eng, time.Microsecond)
	span := int64(1 << 20)
	Run(eng, dev, Job{
		Op: device.OpWrite, Pattern: Rand, BS: 64 << 10, Depth: 4, TotalBytes: 256 * 64 << 10, Span: span,
	}, sim.NewRNG(1))
	seen := map[int64]bool{}
	for _, r := range dev.submits {
		if r.Offset%r.Size != 0 {
			t.Fatalf("offset %d not aligned to block size", r.Offset)
		}
		if r.Offset+r.Size > span {
			t.Fatalf("offset %d crosses span %d", r.Offset, span)
		}
		seen[r.Offset] = true
	}
	if len(seen) < 8 {
		t.Errorf("only %d distinct offsets over 256 random IOs", len(seen))
	}
}

func TestLatencyStatistics(t *testing.T) {
	eng := sim.NewEngine()
	dev := newFake(eng, 2*time.Millisecond)
	res := Run(eng, dev, Job{
		Op: device.OpRead, Pattern: Seq, BS: 4096, Depth: 1, TotalBytes: 32 * 4096,
	}, sim.NewRNG(1))
	if res.LatAvg != 2*time.Millisecond {
		t.Errorf("LatAvg = %v, want 2ms exactly (fixed service)", res.LatAvg)
	}
	if res.LatP50 != 2*time.Millisecond || res.LatP99 != 2*time.Millisecond {
		t.Errorf("percentiles %v/%v, want 2ms", res.LatP50, res.LatP99)
	}
	if res.LatMax != 2*time.Millisecond {
		t.Errorf("LatMax = %v", res.LatMax)
	}
	if len(res.Latencies) != 32 {
		t.Errorf("raw latencies %d, want 32", len(res.Latencies))
	}
	if res.IOPS < 490 || res.IOPS > 510 {
		t.Errorf("IOPS = %.1f, want ≈ 500", res.IOPS)
	}
}

func TestJobName(t *testing.T) {
	cases := []struct {
		j    Job
		want string
	}{
		{Job{Op: device.OpWrite, Pattern: Rand, BS: 256 << 10, Depth: 64}, "randwrite-256k-qd64"},
		{Job{Op: device.OpRead, Pattern: Seq, BS: 2 << 20, Depth: 1}, "read-2m-qd1"},
		{Job{Op: device.OpRead, Pattern: Rand, BS: 1536, Depth: 2}, "randread-1536b-qd2"},
	}
	for _, tc := range cases {
		if got := tc.j.Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
}

func TestInvalidJobsPanic(t *testing.T) {
	eng := sim.NewEngine()
	dev := newFake(eng, time.Millisecond)
	cases := []struct {
		name string
		j    Job
	}{
		{"bad bs", Job{Op: device.OpRead, BS: 1000, Depth: 1, Runtime: time.Second}},
		{"zero depth", Job{Op: device.OpRead, BS: 4096, Depth: 0, Runtime: time.Second}},
		{"no bound", Job{Op: device.OpRead, BS: 4096, Depth: 1}},
		{"span too small", Job{Op: device.OpRead, BS: 4096, Depth: 1, Runtime: time.Second, Span: 512}},
		{"span beyond device", Job{Op: device.OpRead, BS: 4096, Depth: 1, Runtime: time.Second, Span: 1 << 40}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			Start(eng, dev, tc.j, sim.NewRNG(1))
		})
	}
}

func TestResultBeforeDonePanics(t *testing.T) {
	eng := sim.NewEngine()
	dev := newFake(eng, time.Millisecond)
	r := Start(eng, dev, Job{Op: device.OpRead, BS: 4096, Depth: 1, TotalBytes: 4096 * 4}, sim.NewRNG(1))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	r.Result()
}

func TestRunnerIncremental(t *testing.T) {
	eng := sim.NewEngine()
	dev := newFake(eng, time.Millisecond)
	r := Start(eng, dev, Job{Op: device.OpRead, BS: 4096, Depth: 2, TotalBytes: 4096 * 10}, sim.NewRNG(1))
	steps := 0
	for !r.Done() {
		if !eng.Step() {
			t.Fatal("engine drained early")
		}
		steps++
	}
	if steps == 0 {
		t.Fatal("no steps taken")
	}
	if res := r.Result(); res.IOs != 10 {
		t.Fatalf("IOs = %d, want 10", res.IOs)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []device.Request {
		eng := sim.NewEngine()
		dev := newFake(eng, time.Millisecond)
		Run(eng, dev, Job{Op: device.OpWrite, Pattern: Rand, BS: 8192, Depth: 3, TotalBytes: 8192 * 50}, sim.NewRNG(99))
		return dev.submits
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("submission %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// Property: for any depth and byte bound, exactly ceil(bytes/bs) IOs are
// issued and all complete.
func TestExactIssueCountProperty(t *testing.T) {
	f := func(depth8, blocks8 uint8) bool {
		depth := int(depth8%32) + 1
		blocks := int64(blocks8%64) + 1
		eng := sim.NewEngine()
		dev := newFake(eng, time.Millisecond)
		res := Run(eng, dev, Job{
			Op: device.OpRead, Pattern: Rand, BS: 4096, Depth: depth, TotalBytes: blocks * 4096,
		}, sim.NewRNG(5))
		return res.IOs == blocks && dev.inflight == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPatternString(t *testing.T) {
	if Seq.String() != "seq" || Rand.String() != "rand" {
		t.Error("Pattern strings wrong")
	}
}

func TestOpenLoopUniformRate(t *testing.T) {
	eng := sim.NewEngine()
	dev := newFake(eng, time.Millisecond)
	res := Run(eng, dev, Job{
		Op: device.OpRead, Pattern: Rand, BS: 4096,
		Arrival: OpenUniform, RateIOPS: 1000, Runtime: time.Second,
	}, sim.NewRNG(1))
	// 1000 IOPS for 1 s → ~1000 IOs regardless of the 1ms service time.
	if res.IOs < 995 || res.IOs > 1005 {
		t.Fatalf("IOs = %d, want ≈ 1000", res.IOs)
	}
	if res.IOPS < 950 || res.IOPS > 1050 {
		t.Fatalf("IOPS = %.0f, want ≈ 1000", res.IOPS)
	}
}

func TestOpenLoopPoissonRate(t *testing.T) {
	eng := sim.NewEngine()
	dev := newFake(eng, 100*time.Microsecond)
	res := Run(eng, dev, Job{
		Op: device.OpRead, Pattern: Rand, BS: 4096,
		Arrival: OpenPoisson, RateIOPS: 5000, Runtime: 2 * time.Second,
	}, sim.NewRNG(1))
	// Poisson with λ=5000 over 2 s: 10000 ± a few std devs (100).
	if res.IOs < 9500 || res.IOs > 10500 {
		t.Fatalf("IOs = %d, want ≈ 10000", res.IOs)
	}
}

func TestOpenLoopIndependentOfServiceTime(t *testing.T) {
	// A slow device must not slow open-loop arrivals: the queue builds
	// instead, and latency grows.
	eng := sim.NewEngine()
	dev := newFake(eng, 50*time.Millisecond)
	res := Run(eng, dev, Job{
		Op: device.OpRead, Pattern: Rand, BS: 4096,
		Arrival: OpenUniform, RateIOPS: 1000, Runtime: 200 * time.Millisecond,
	}, sim.NewRNG(1))
	if res.IOs < 195 || res.IOs > 205 {
		t.Fatalf("IOs = %d, want ≈ 200 (arrival-driven)", res.IOs)
	}
	if dev.maxInfl < 40 {
		t.Errorf("max inflight = %d; open loop should overwhelm the slow device", dev.maxInfl)
	}
}

func TestOpenLoopByteBound(t *testing.T) {
	eng := sim.NewEngine()
	dev := newFake(eng, time.Millisecond)
	res := Run(eng, dev, Job{
		Op: device.OpWrite, Pattern: Seq, BS: 4096,
		Arrival: OpenUniform, RateIOPS: 100000, TotalBytes: 64 * 4096,
	}, sim.NewRNG(1))
	if res.IOs != 64 {
		t.Fatalf("IOs = %d, want 64 (byte bound)", res.IOs)
	}
}

func TestOpenLoopValidation(t *testing.T) {
	eng := sim.NewEngine()
	dev := newFake(eng, time.Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("open arrivals without rate accepted")
		}
	}()
	Start(eng, dev, Job{Op: device.OpRead, BS: 4096, Arrival: OpenPoisson, Runtime: time.Second}, sim.NewRNG(1))
}
