// Package device defines the common abstraction for simulated storage
// devices: the request model, the power-control surface, and the Device
// interface that the workload engine, measurement rig, and protocol
// adapters (internal/nvme, internal/sata) all program against.
package device

import (
	"errors"
	"fmt"
	"time"
)

// Op is the direction of an IO request.
type Op int

const (
	// OpRead transfers data from the device to the host.
	OpRead Op = iota
	// OpWrite transfers data from the host to the device.
	OpWrite
)

// String returns "read" or "write".
func (o Op) String() string {
	if o == OpRead {
		return "read"
	}
	return "write"
}

// Protocol is the host interface a device attaches through.
type Protocol int

const (
	// NVMe devices attach over PCIe and expose NVMe power states.
	NVMe Protocol = iota
	// SATA devices attach over AHCI and support ALPM link power
	// management and STANDBY IMMEDIATE.
	SATA
)

// String returns the protocol name as the paper's Table 1 prints it.
func (p Protocol) String() string {
	if p == NVMe {
		return "NVMe"
	}
	return "SATA"
}

// Request is one IO submitted to a device. Offset and Size are in bytes;
// direct IO alignment (512 B) is the caller's responsibility and is
// validated by implementations.
type Request struct {
	Op     Op
	Offset int64
	Size   int64
}

// Validate checks alignment and bounds against a device capacity.
func (r Request) Validate(capacity int64) error {
	const sector = 512
	if r.Size <= 0 {
		return fmt.Errorf("device: request size %d must be positive", r.Size)
	}
	if r.Offset < 0 {
		return fmt.Errorf("device: negative offset %d", r.Offset)
	}
	if r.Offset%sector != 0 || r.Size%sector != 0 {
		return fmt.Errorf("device: request %d+%d not %d-byte aligned", r.Offset, r.Size, sector)
	}
	if r.Offset+r.Size > capacity {
		return fmt.Errorf("device: request %d+%d exceeds capacity %d", r.Offset, r.Size, capacity)
	}
	return nil
}

// PowerState describes one NVMe-style operational power state: a cap on
// average power over the cap window, plus entry/exit latencies.
type PowerState struct {
	// MaxPowerW caps average power over the cap window; 0 means
	// uncapped (the state admits the device's full draw).
	MaxPowerW float64
	// EntryLatency and ExitLatency are the transition costs the NVMe
	// power-state descriptor advertises (ENLAT/EXLAT).
	EntryLatency time.Duration
	ExitLatency  time.Duration
}

// Errors returned by the power-control surface.
var (
	// ErrNotSupported indicates the device has no such control (e.g.,
	// power states on an HDD).
	ErrNotSupported = errors.New("device: operation not supported")
	// ErrBadPowerState indicates an out-of-range power state index.
	ErrBadPowerState = errors.New("device: power state out of range")
)

// HealthReporter is implemented by devices that can become unavailable
// — in practice fault-injection wrappers (internal/fault) whose dropout
// or brownout windows take the command surface offline. Plain device
// models never drop, so they do not implement it.
type HealthReporter interface {
	// Healthy reports whether the device is reachable right now. IO
	// submitted to an unhealthy device is not lost, but it stalls until
	// the device recovers; control-plane components should route around
	// unhealthy devices instead.
	Healthy() bool
}

// Healthy reports d's availability. Devices that do not implement
// HealthReporter are always healthy.
func Healthy(d Device) bool {
	if h, ok := d.(HealthReporter); ok {
		return h.Healthy()
	}
	return true
}

// Device is a simulated storage device attached to a sim.Engine. All
// methods are event-loop-synchronous: they must be called from the
// simulation goroutine, and completions are delivered as engine events.
type Device interface {
	// Name returns the device label (e.g. "SSD2").
	Name() string
	// Model returns the marketing model string (e.g. "Intel D7-P5510").
	Model() string
	// Protocol returns the host interface type.
	Protocol() Protocol
	// CapacityBytes returns the addressable capacity.
	CapacityBytes() int64

	// Submit enqueues an IO. done runs as an engine event when the IO
	// completes. Submit panics on an invalid request: workload bugs
	// should fail loudly, not corrupt an experiment.
	Submit(r Request, done func())

	// InstantPower returns the instantaneous electrical draw in watts
	// at the engine's current virtual time. The measurement rig
	// samples this through the shunt/ADC chain.
	InstantPower() float64
	// EnergyJ returns cumulative energy in joules since construction.
	EnergyJ() float64

	// PowerStates lists the device's operational power states, ps0
	// first. Devices without NVMe-style states return nil.
	PowerStates() []PowerState
	// SetPowerState selects a power state by index.
	SetPowerState(index int) error
	// PowerStateIndex returns the current power state index.
	PowerStateIndex() int

	// EnterStandby begins the transition to the device's low-power
	// standby state (ALPM SLUMBER for SATA SSDs, spin-down for HDDs).
	// The transition takes device-specific time; IO submitted while in
	// or entering standby wakes the device and waits.
	EnterStandby() error
	// Wake begins the transition out of standby. It is idempotent.
	Wake() error
	// Standby reports whether the device is in (or entering) standby.
	Standby() bool
	// Settled reports that no standby/wake transition is in progress:
	// the device is fully awake or fully in standby.
	Settled() bool
}
