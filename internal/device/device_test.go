package device

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRequestValidate(t *testing.T) {
	const capacity = 1 << 20
	cases := []struct {
		name    string
		r       Request
		wantErr string
	}{
		{"ok", Request{OpRead, 0, 4096}, ""},
		{"ok at end", Request{OpWrite, capacity - 512, 512}, ""},
		{"zero size", Request{OpRead, 0, 0}, "positive"},
		{"negative size", Request{OpRead, 0, -512}, "positive"},
		{"negative offset", Request{OpRead, -512, 512}, "negative offset"},
		{"unaligned offset", Request{OpRead, 100, 512}, "aligned"},
		{"unaligned size", Request{OpRead, 0, 100}, "aligned"},
		{"past end", Request{OpRead, capacity, 512}, "exceeds capacity"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.r.Validate(capacity)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// Property: any 512-aligned request fully inside capacity validates.
func TestRequestValidateProperty(t *testing.T) {
	const capacity = int64(1) << 30
	f := func(offSectors, sizeSectors uint16) bool {
		off := int64(offSectors) * 512
		size := (int64(sizeSectors) + 1) * 512
		r := Request{OpWrite, off, size}
		err := r.Validate(capacity)
		inBounds := off+size <= capacity
		return (err == nil) == inBounds
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Fatalf("Op strings = %q, %q", OpRead, OpWrite)
	}
}

func TestProtocolString(t *testing.T) {
	if NVMe.String() != "NVMe" || SATA.String() != "SATA" {
		t.Fatalf("Protocol strings = %q, %q", NVMe, SATA)
	}
}
