package adaptive

import (
	"testing"
	"time"

	"wattio/internal/catalog"
	"wattio/internal/device"
	"wattio/internal/sim"
	"wattio/internal/workload"
)

func TestGovernorStepsDownUnderLoad(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(23)
	dev := catalog.NewSSD2(eng, rng)
	g, err := NewGovernor(eng, dev, 11, 250*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	// Saturating writes draw ~14.8 W at ps0 — over the 11 W budget.
	res := workload.Run(eng, dev, workload.Job{
		Op: device.OpWrite, Pattern: workload.Rand, BS: 256 << 10, Depth: 64,
		Runtime: 4 * time.Second, TotalBytes: 8 << 30,
	}, rng)
	g.Stop()
	if res.IOs == 0 {
		t.Fatal("no IO")
	}
	if dev.PowerStateIndex() != 2 {
		t.Errorf("governor left device at ps%d, want ps2 (only ps2 caps below 11 W)", dev.PowerStateIndex())
	}
	if g.Overs == 0 || g.Steps == 0 {
		t.Errorf("governor never acted: overs=%d steps=%d", g.Overs, g.Steps)
	}
	// Steady state: the trailing-period power must end under budget.
	e0, t0 := dev.EnergyJ(), eng.Now()
	r2 := workload.Start(eng, dev, workload.Job{
		Op: device.OpWrite, Pattern: workload.Rand, BS: 256 << 10, Depth: 64,
		Runtime: 2 * time.Second,
	}, rng)
	eng.RunUntil(eng.Now() + 2*time.Second)
	_ = r2
	avg := (dev.EnergyJ() - e0) / (eng.Now() - t0).Seconds()
	if avg > 11*1.03 {
		t.Errorf("steady power %.2f W over the 11 W budget", avg)
	}
}

func TestGovernorStepsBackUpWhenIdle(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(23)
	dev := catalog.NewSSD2(eng, rng)
	dev.SetPowerState(2)
	g, err := NewGovernor(eng, dev, 30, 100*time.Millisecond) // generous budget
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	eng.RunUntil(eng.Now() + time.Second)
	g.Stop()
	if dev.PowerStateIndex() != 0 {
		t.Errorf("governor left idle device at ps%d under a 30 W budget, want ps0", dev.PowerStateIndex())
	}
}

func TestGovernorRespectsStateCapWhenSteppingUp(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(23)
	dev := catalog.NewSSD2(eng, rng)
	dev.SetPowerState(2)
	// Budget 11 W: device idles at 5 W (headroom), but ps1's cap is
	// 12 W > 11, and ps0 means uncapped writes — the governor must
	// stay at ps2 rather than oscillate.
	g, err := NewGovernor(eng, dev, 11, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	eng.RunUntil(eng.Now() + time.Second)
	g.Stop()
	if dev.PowerStateIndex() != 2 {
		t.Errorf("governor stepped to ps%d whose cap exceeds the budget", dev.PowerStateIndex())
	}
}

func TestGovernorValidation(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(23)
	hdd := catalog.NewHDD(eng, rng)
	if _, err := NewGovernor(eng, hdd, 5, time.Second); err == nil {
		t.Error("governor accepted a device without power states")
	}
	ssd := catalog.NewSSD2(eng, rng)
	if _, err := NewGovernor(eng, ssd, 0, time.Second); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := NewGovernor(eng, ssd, 10, 0); err == nil {
		t.Error("zero period accepted")
	}
}

func TestGovernorStartStopIdempotent(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(23)
	dev := catalog.NewSSD2(eng, rng)
	g, _ := NewGovernor(eng, dev, 12, 100*time.Millisecond)
	g.Start()
	g.Start()
	g.Stop()
	g.Stop()
	eng.Run()
	if eng.Pending() != 0 {
		t.Errorf("%d events leaked after Stop", eng.Pending())
	}
}
