package adaptive

import (
	"fmt"

	"wattio/internal/device"
)

// AsymmetricPlacer exploits the paper's read/write asymmetry under
// power caps (§3.2.1, §4): capping barely hurts reads but crushes
// writes, so it segregates write traffic onto a small uncapped write
// set while the remaining devices serve reads under an aggressive power
// cap.
type AsymmetricPlacer struct {
	writers []device.Device
	readers []device.Device
	wOut    []int
	rOut    []int
}

// NewAsymmetricPlacer builds a placer with the given write set (left in
// ps0) and read set (capped to readerPS). Devices without power states
// are accepted in the read set only if readerPS is 0.
func NewAsymmetricPlacer(writers, readers []device.Device, readerPS int) (*AsymmetricPlacer, error) {
	if len(writers) == 0 || len(readers) == 0 {
		return nil, fmt.Errorf("adaptive: placer needs both writers and readers")
	}
	for _, d := range readers {
		if readerPS == 0 {
			continue
		}
		if err := d.SetPowerState(readerPS); err != nil {
			return nil, fmt.Errorf("adaptive: capping reader %s: %w", d.Name(), err)
		}
	}
	for _, d := range writers {
		if len(d.PowerStates()) > 0 {
			if err := d.SetPowerState(0); err != nil {
				return nil, fmt.Errorf("adaptive: uncapping writer %s: %w", d.Name(), err)
			}
		}
	}
	return &AsymmetricPlacer{
		writers: writers,
		readers: readers,
		wOut:    make([]int, len(writers)),
		rOut:    make([]int, len(readers)),
	}, nil
}

// Submit routes a request by direction: writes to the least-loaded
// writer, reads to the least-loaded reader.
func (p *AsymmetricPlacer) Submit(req device.Request, done func()) {
	devs, out := p.readers, p.rOut
	if req.Op == device.OpWrite {
		devs, out = p.writers, p.wOut
	}
	best := 0
	for i := range devs {
		if out[i] < out[best] {
			best = i
		}
	}
	out[best]++
	devs[best].Submit(req, func() {
		out[best]--
		done()
	})
}

// TotalPower returns the placer's ensemble draw.
func (p *AsymmetricPlacer) TotalPower() float64 {
	var sum float64
	for _, d := range p.writers {
		sum += d.InstantPower()
	}
	for _, d := range p.readers {
		sum += d.InstantPower()
	}
	return sum
}

// Writers returns the uncapped write set.
func (p *AsymmetricPlacer) Writers() []device.Device { return p.writers }

// Readers returns the capped read set.
func (p *AsymmetricPlacer) Readers() []device.Device { return p.readers }
