package adaptive

import (
	"sync"
	"testing"
	"time"

	"wattio/internal/catalog"
	"wattio/internal/core"
	"wattio/internal/device"
	"wattio/internal/sim"
	"wattio/internal/sweep"
	"wattio/internal/workload"
)

// realModels caches the swept SSD1/SSD2 models: they are pure data,
// independent of any engine, and expensive to rebuild per test.
var realModels = struct {
	once   sync.Once
	models []*core.Model
	err    error
}{}

// buildRealFleet sweeps small grids on SSD1 and SSD2 to get genuine
// models (cached across tests), then binds them to fresh live devices.
func buildRealFleet(t *testing.T, eng *sim.Engine, rng *sim.RNG) (*BudgetController, []device.Device) {
	t.Helper()
	realModels.once.Do(func() {
		for _, name := range []string{"SSD1", "SSD2"} {
			m, err := sweep.BuildModel(name, device.OpWrite, workload.Rand, 3, time.Second, 128<<20)
			if err != nil {
				realModels.err = err
				return
			}
			realModels.models = append(realModels.models, m)
		}
	})
	if realModels.err != nil {
		t.Fatal(realModels.err)
	}
	fleet, err := core.NewFleet(realModels.models...)
	if err != nil {
		t.Fatal(err)
	}
	devs := []device.Device{catalog.NewSSD1(eng, rng.Stream("1")), catalog.NewSSD2(eng, rng.Stream("2"))}
	ctrl, err := NewBudgetController(fleet, devs)
	if err != nil {
		t.Fatal(err)
	}
	return ctrl, devs
}

func TestDemandResponseCompliesWithShrinkingBudget(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(17)
	ctrl, devs := buildRealFleet(t, eng, rng)
	dr := NewDemandResponse(eng, rng, ctrl, devs)
	reports, err := dr.Run([]BudgetPhase{
		{Duration: 2 * time.Second, BudgetW: 25},
		{Duration: 2 * time.Second, BudgetW: 18},
		{Duration: 2 * time.Second, BudgetW: 14},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("%d reports, want 3", len(reports))
	}
	for i, r := range reports {
		t.Logf("phase %d: budget %.1fW plan %.1fW measured %.2fW at %.0f MB/s (compliant=%v)",
			i, r.BudgetW, r.Assignment.TotalPowerW, r.AvgPowerW, r.MBps, r.Compliant)
		if r.Assignment.TotalPowerW > r.BudgetW {
			t.Errorf("phase %d: plan %.2fW exceeds budget %.2fW", i, r.Assignment.TotalPowerW, r.BudgetW)
		}
		if r.MBps <= 0 {
			t.Errorf("phase %d: no throughput", i)
		}
	}
	// Shrinking budgets must shrink measured power and throughput.
	if !(reports[2].AvgPowerW < reports[0].AvgPowerW) {
		t.Errorf("power did not shrink: %.2f → %.2f", reports[0].AvgPowerW, reports[2].AvgPowerW)
	}
	if !(reports[2].MBps < reports[0].MBps) {
		t.Errorf("throughput did not shrink: %.0f → %.0f", reports[0].MBps, reports[2].MBps)
	}
	// The tightest phase must actually comply (within the 2% band plus
	// the model's own sampling error; assert a slightly wider envelope).
	if reports[2].AvgPowerW > reports[2].BudgetW*1.08 {
		t.Errorf("phase 2 measured %.2fW against %.2fW budget", reports[2].AvgPowerW, reports[2].BudgetW)
	}
}

func TestDemandResponseValidation(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(17)
	ctrl, devs := buildRealFleet(t, eng, rng)
	dr := NewDemandResponse(eng, rng, ctrl, devs)
	if _, err := dr.Run(nil); err == nil {
		t.Error("empty phase list accepted")
	}
	if _, err := dr.Run([]BudgetPhase{{Duration: 0, BudgetW: 20}}); err == nil {
		t.Error("zero-duration phase accepted")
	}
	if _, err := dr.Run([]BudgetPhase{{Duration: time.Second, BudgetW: 1}}); err == nil {
		t.Error("impossible budget accepted")
	}
}
