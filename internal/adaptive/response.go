package adaptive

import (
	"fmt"
	"time"

	"wattio/internal/core"
	"wattio/internal/device"
	"wattio/internal/sim"
	"wattio/internal/workload"
)

// DemandResponse drives a device fleet through a time-varying power
// budget — the grid's demand-response signal — using the budget
// controller to re-plan power states and IO shapes at every budget
// change, and reports per-phase compliance and throughput impact.
//
// This is the paper's motivating use case (§1: operators "increasingly
// must actively manage power and contribute to demand response
// programs") built on its contribution (§3.3 models as the planning
// input).
type DemandResponse struct {
	eng  *sim.Engine
	rng  *sim.RNG
	ctrl *BudgetController
	devs []device.Device
}

// BudgetPhase is one step of the demand-response signal.
type BudgetPhase struct {
	Duration time.Duration
	BudgetW  float64
}

// PhaseReport records what the fleet did during one budget phase.
type PhaseReport struct {
	BudgetW    float64
	Assignment core.Assignment
	AvgPowerW  float64
	MBps       float64
	Compliant  bool // measured average power within 2% of the budget
}

// NewDemandResponse builds a scenario over a budget controller and the
// live devices it manages.
func NewDemandResponse(eng *sim.Engine, rng *sim.RNG, ctrl *BudgetController, devs []device.Device) *DemandResponse {
	return &DemandResponse{eng: eng, rng: rng, ctrl: ctrl, devs: devs}
}

// Run executes the phases in order. During each phase every device runs
// the workload shape its assignment prescribes; at each boundary the
// controller re-plans. Inflight IO from a previous phase drains into
// the next, as it would in production.
func (d *DemandResponse) Run(phases []BudgetPhase) ([]PhaseReport, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("adaptive: demand response needs phases")
	}
	reports := make([]PhaseReport, 0, len(phases))
	for pi, ph := range phases {
		if ph.Duration <= 0 {
			return nil, fmt.Errorf("adaptive: phase %d has no duration", pi)
		}
		a, err := d.ctrl.Apply(ph.BudgetW)
		if err != nil {
			return nil, fmt.Errorf("adaptive: phase %d: %w", pi, err)
		}
		start := d.eng.Now()
		end := start + ph.Duration
		e0 := d.fleetEnergy()

		// Drive each device with its assigned IO shape for the phase.
		var runners []*workload.Runner
		for _, dev := range d.devs {
			s, ok := a.Configs[dev.Name()]
			if !ok {
				continue
			}
			job := workload.Job{
				Op:      device.OpRead,
				Pattern: workload.Seq,
				BS:      s.ChunkBytes,
				Depth:   s.Depth,
				Runtime: ph.Duration,
			}
			if s.Write {
				job.Op = device.OpWrite
			}
			if s.Random {
				job.Pattern = workload.Rand
			}
			runners = append(runners, workload.Start(d.eng, dev, job, d.rng.Stream(fmt.Sprintf("dr/%d/%s", pi, dev.Name()))))
		}
		d.eng.RunUntil(end)

		var bytes int64
		for _, r := range runners {
			bytes += r.CompletedBytes()
		}
		avgW := (d.fleetEnergy() - e0) / ph.Duration.Seconds()
		reports = append(reports, PhaseReport{
			BudgetW:    ph.BudgetW,
			Assignment: a,
			AvgPowerW:  avgW,
			MBps:       float64(bytes) / 1e6 / ph.Duration.Seconds(),
			Compliant:  avgW <= ph.BudgetW*1.02,
		})
	}
	// Let the tail of the last phase drain so devices quiesce.
	for d.eng.Step() {
	}
	return reports, nil
}

func (d *DemandResponse) fleetEnergy() float64 {
	var sum float64
	for _, dev := range d.devs {
		sum += dev.EnergyJ()
	}
	return sum
}
