package adaptive

import (
	"testing"
	"time"

	"wattio/internal/catalog"
	"wattio/internal/core"
	"wattio/internal/device"
	"wattio/internal/sim"
	"wattio/internal/workload"
)

func evoSet(eng *sim.Engine, n int) []device.Device {
	rng := sim.NewRNG(9)
	out := make([]device.Device, n)
	for i := range out {
		out[i] = catalog.NewEVO(eng, rng.Stream(string(rune('a'+i))))
	}
	return out
}

func TestRedirectorStandbyPowerSavings(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	devs := evoSet(eng, 4)
	r, err := NewRedirector("mirror", devs, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(2 * time.Second) // let standby transitions settle
	// 1 active (0.35) + 3 slumbering (0.17) ≈ 0.86 W vs 1.40 W all-awake.
	got := r.InstantPower()
	if got < 0.80 || got > 0.92 {
		t.Errorf("ensemble power = %.3f W, want ≈ 0.86", got)
	}
	if err := r.SetActive(4); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(eng.Now() + 2*time.Second)
	got = r.InstantPower()
	if got < 1.35 || got > 1.45 {
		t.Errorf("all-awake power = %.3f W, want ≈ 1.40", got)
	}
}

func TestRedirectorRoutesToActiveOnly(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	devs := evoSet(eng, 3)
	r, err := NewRedirector("mirror", devs, 2)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(time.Second)
	before := make([]float64, 3)
	for i, d := range devs {
		before[i] = d.EnergyJ()
	}
	res := workload.Run(eng, r, workload.Job{
		Op: device.OpRead, Pattern: workload.Rand, BS: 4096, Depth: 8,
		TotalBytes: 16 << 20, Runtime: 10 * time.Second,
	}, sim.NewRNG(3))
	if res.IOs == 0 {
		t.Fatal("no IO completed")
	}
	// Device 2 (standby) must have stayed asleep: its energy growth is
	// pure slumber draw, with no IO-induced wake.
	if devs[2].Standby() == false {
		t.Error("standby replica was woken by redirected IO")
	}
	if r.WakesOnDemand != 0 {
		t.Errorf("WakesOnDemand = %d, want 0", r.WakesOnDemand)
	}
	if devs[0].EnergyJ() == before[0] && devs[1].EnergyJ() == before[1] {
		t.Error("active replicas served no IO")
	}
}

func TestRedirectorWakeOnDemand(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	devs := evoSet(eng, 2)
	r, _ := NewRedirector("mirror", devs, 1)
	eng.RunUntil(time.Second)
	if err := r.EnterStandby(); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(eng.Now() + time.Second)
	if !r.Standby() {
		t.Fatal("ensemble not in standby")
	}
	done := false
	r.Submit(device.Request{Op: device.OpRead, Offset: 0, Size: 4096}, func() { done = true })
	eng.RunUntil(eng.Now() + 2*time.Second)
	if !done {
		t.Fatal("IO against all-standby ensemble never completed")
	}
	if r.WakesOnDemand != 1 {
		t.Errorf("WakesOnDemand = %d, want 1", r.WakesOnDemand)
	}
}

func TestRedirectorValidation(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	devs := evoSet(eng, 2)
	if _, err := NewRedirector("r", nil, 1); err == nil {
		t.Error("empty device list accepted")
	}
	if _, err := NewRedirector("r", devs, 0); err == nil {
		t.Error("zero active accepted")
	}
	if _, err := NewRedirector("r", devs, 3); err == nil {
		t.Error("active > replicas accepted")
	}
	mixed := []device.Device{devs[0], catalog.NewSSD2(eng, sim.NewRNG(1))}
	if _, err := NewRedirector("r", mixed, 1); err == nil {
		t.Error("mismatched capacities accepted")
	}
}

func TestAsymmetricPlacerRouting(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(5)
	w := catalog.NewSSD1(eng, rng.Stream("w"))
	r1 := catalog.NewSSD2(eng, rng.Stream("r1"))
	r2 := catalog.NewSSD2(eng, rng.Stream("r2"))
	p, err := NewAsymmetricPlacer([]device.Device{w}, []device.Device{r1, r2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.PowerStateIndex() != 2 || r2.PowerStateIndex() != 2 {
		t.Errorf("readers not capped: ps %d, %d", r1.PowerStateIndex(), r2.PowerStateIndex())
	}
	if w.PowerStateIndex() != 0 {
		t.Errorf("writer capped: ps %d", w.PowerStateIndex())
	}

	wEnergy := w.EnergyJ()
	completions := 0
	for i := 0; i < 64; i++ {
		op := device.OpWrite
		if i%2 == 0 {
			op = device.OpRead
		}
		p.Submit(device.Request{Op: op, Offset: int64(i) * 1 << 20, Size: 256 << 10}, func() { completions++ })
	}
	eng.RunUntil(eng.Now() + 5*time.Second)
	if completions != 64 {
		t.Fatalf("%d/64 IOs completed", completions)
	}
	if w.EnergyJ() == wEnergy {
		t.Error("writer received no traffic")
	}
	if p.TotalPower() <= 0 {
		t.Error("TotalPower not positive")
	}
}

func TestAsymmetricPlacerValidation(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(5)
	s1 := catalog.NewSSD1(eng, rng.Stream("a"))
	s3 := catalog.NewSSD3(eng, rng.Stream("b"))
	if _, err := NewAsymmetricPlacer(nil, []device.Device{s1}, 0); err == nil {
		t.Error("missing writers accepted")
	}
	if _, err := NewAsymmetricPlacer([]device.Device{s1}, nil, 0); err == nil {
		t.Error("missing readers accepted")
	}
	// SSD3 has no power states; capping it must fail...
	if _, err := NewAsymmetricPlacer([]device.Device{s1}, []device.Device{s3}, 1); err == nil {
		t.Error("capping stateless reader accepted")
	}
	// ...but leaving it uncapped is fine.
	if _, err := NewAsymmetricPlacer([]device.Device{s1}, []device.Device{s3}, 0); err != nil {
		t.Errorf("uncapped stateless reader rejected: %v", err)
	}
}

func TestTierAbsorbsWritesDuringStandby(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(6)
	fast := catalog.NewSSD3(eng, rng.Stream("fast"))
	slow := catalog.NewHDD(eng, rng.Stream("slow"))
	tm, err := NewTierManager(fast, slow, 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	slow.EnterStandby()
	eng.RunUntil(5 * time.Second)
	if !slow.Standby() {
		t.Fatal("HDD not in standby")
	}

	writesDone := 0
	start := eng.Now()
	for i := 0; i < 16; i++ {
		tm.Submit(device.Request{Op: device.OpWrite, Offset: int64(i) * 1 << 20, Size: 64 << 10}, func() { writesDone++ })
	}
	eng.RunUntil(eng.Now() + time.Second)
	if writesDone != 16 {
		t.Fatalf("%d/16 absorbed writes completed", writesDone)
	}
	if slow.Standby() == false {
		t.Error("absorbed writes woke the HDD")
	}
	if tm.AbsorbedWrites != 16 || tm.AbsorbedBytes != 16*(64<<10) {
		t.Errorf("absorbed %d writes / %d bytes", tm.AbsorbedWrites, tm.AbsorbedBytes)
	}
	if eng.Now()-start > 2*time.Second {
		t.Error("absorption did not mask spin-up latency")
	}

	// Absorbed blocks read back from the fast tier without a wake.
	readDone := false
	tm.Submit(device.Request{Op: device.OpRead, Offset: 0, Size: 64 << 10}, func() { readDone = true })
	eng.RunUntil(eng.Now() + time.Second)
	if !readDone {
		t.Fatal("read of absorbed block did not complete")
	}
	if !slow.Standby() {
		t.Error("read of absorbed block woke the HDD")
	}

	// Flush drains everything back to the HDD.
	flushed := false
	tm.Flush(func() { flushed = true })
	eng.RunUntil(eng.Now() + 30*time.Second)
	if !flushed {
		t.Fatal("flush did not complete")
	}
	if tm.PendingBytes() != 0 {
		t.Errorf("PendingBytes = %d after flush", tm.PendingBytes())
	}
	if slow.Standby() {
		t.Error("HDD still in standby after flush")
	}
}

func TestTierReadOfColdBlockWakesSlow(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(6)
	fast := catalog.NewSSD3(eng, rng.Stream("fast"))
	slow := catalog.NewHDD(eng, rng.Stream("slow"))
	tm, _ := NewTierManager(fast, slow, 0, 1<<30)
	slow.EnterStandby()
	eng.RunUntil(5 * time.Second)

	done := false
	start := eng.Now()
	tm.Submit(device.Request{Op: device.OpRead, Offset: 4 << 20, Size: 4096}, func() { done = true })
	eng.RunUntil(eng.Now() + 15*time.Second)
	if !done {
		t.Fatal("cold read never completed")
	}
	// The read had to pay the ~8.5 s spin-up.
	if eng.Now()-start < 8*time.Second {
		t.Error("cold read completed without spin-up delay")
	}
}

func TestTierLogFullFallsBack(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(6)
	fast := catalog.NewSSD3(eng, rng.Stream("fast"))
	slow := catalog.NewHDD(eng, rng.Stream("slow"))
	tm, _ := NewTierManager(fast, slow, 0, 128<<10) // tiny log: two 64 KiB blocks
	slow.EnterStandby()
	eng.RunUntil(5 * time.Second)
	done := 0
	for i := 0; i < 3; i++ {
		tm.Submit(device.Request{Op: device.OpWrite, Offset: int64(i) * 1 << 20, Size: 64 << 10}, func() { done++ })
	}
	eng.RunUntil(eng.Now() + 15*time.Second)
	if done != 3 {
		t.Fatalf("%d/3 writes completed", done)
	}
	if tm.AbsorbedWrites != 2 {
		t.Errorf("absorbed %d writes, want 2 (third overflows)", tm.AbsorbedWrites)
	}
	if slow.Standby() {
		t.Error("overflow write did not wake the HDD")
	}
}

func TestTierValidation(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(6)
	fast := catalog.NewSSD3(eng, rng.Stream("fast"))
	slow := catalog.NewHDD(eng, rng.Stream("slow"))
	if _, err := NewTierManager(fast, slow, 0, 0); err == nil {
		t.Error("zero log accepted")
	}
	if _, err := NewTierManager(fast, slow, fast.CapacityBytes(), 1<<20); err == nil {
		t.Error("log outside fast device accepted")
	}
}

func fakeSample(dev string, ps int, w, mbps float64) core.Sample {
	return core.Sample{
		Config:         core.Config{Device: dev, PowerState: ps, Random: true, Write: true, ChunkBytes: 256 << 10, Depth: 64},
		PowerW:         w,
		ThroughputMBps: mbps,
	}
}

func TestBudgetControllerApply(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(8)
	d1 := catalog.NewSSD1(eng, rng.Stream("1"))
	d2 := catalog.NewSSD2(eng, rng.Stream("2"))
	m1, _ := core.NewModel("SSD1", []core.Sample{
		fakeSample("SSD1", 0, 8.2, 3500),
		fakeSample("SSD1", 2, 5.8, 1800),
	})
	m2, _ := core.NewModel("SSD2", []core.Sample{
		fakeSample("SSD2", 0, 14.8, 3400),
		fakeSample("SSD2", 2, 10.0, 1800),
	})
	fleet, _ := core.NewFleet(m1, m2)
	bc, err := NewBudgetController(fleet, []device.Device{d1, d2})
	if err != nil {
		t.Fatal(err)
	}
	// 23 W fits both at ps0; 16 W forces both down.
	a, err := bc.Apply(16)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalPowerW > 16 {
		t.Errorf("assignment power %.2f exceeds budget", a.TotalPowerW)
	}
	if d1.PowerStateIndex() != a.Configs["SSD1"].PowerState {
		t.Error("SSD1 power state not applied")
	}
	if d2.PowerStateIndex() != a.Configs["SSD2"].PowerState {
		t.Error("SSD2 power state not applied")
	}
	if _, err := bc.Apply(5); err == nil {
		t.Error("impossible budget accepted")
	}
	if h := bc.Headroom(16); h <= 0 {
		t.Errorf("idle fleet should have headroom under 16 W, got %.2f", h)
	}
}

func TestBudgetControllerValidation(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(8)
	d1 := catalog.NewSSD1(eng, rng.Stream("1"))
	m2, _ := core.NewModel("SSD2", []core.Sample{fakeSample("SSD2", 0, 14.8, 3400)})
	fleet, _ := core.NewFleet(m2)
	if _, err := NewBudgetController(fleet, []device.Device{d1}); err == nil {
		t.Error("model without live device accepted")
	}
	m1, _ := core.NewModel("SSD1", []core.Sample{fakeSample("SSD1", 0, 8.2, 3500)})
	fleet1, _ := core.NewFleet(m1)
	eng2 := sim.NewEngine()
	d2 := catalog.NewSSD2(eng2, rng.Stream("2"))
	if _, err := NewBudgetController(fleet1, []device.Device{d1, d2}); err == nil {
		t.Error("extra device without model accepted")
	}
}

func buildHierarchy(eng *sim.Engine) *Domain {
	rng := sim.NewRNG(4)
	leaf := func(name string, n int) *Domain {
		d := &Domain{Name: name, BreakerW: 40}
		for i := 0; i < n; i++ {
			d.Devices = append(d.Devices, catalog.NewSSD2(eng, rng.Stream(name+string(rune('0'+i)))))
		}
		return d
	}
	return &Domain{
		Name:     "rack",
		BreakerW: 200,
		Children: []*Domain{
			{Name: "subrackA", BreakerW: 100, Children: []*Domain{leaf("A1", 2), leaf("A2", 2)}},
			{Name: "subrackB", BreakerW: 100, Children: []*Domain{leaf("B1", 2), leaf("B2", 2)}},
		},
	}
}

func TestDomainPowerAndBreakers(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	root := buildHierarchy(eng)
	// 8 idle SSD2s at 5 W = 40 W total.
	if p := root.Power(); p < 39 || p > 41 {
		t.Errorf("rack power = %.1f W, want ≈ 40", p)
	}
	if v := root.CheckBreakers(); len(v) != 0 {
		t.Errorf("idle rack reports violations: %v", v)
	}
	// Shrink a leaf breaker below its idle draw: violation.
	root.Children[0].Children[0].BreakerW = 5
	v := root.CheckBreakers()
	if len(v) != 1 || v[0].Domain.Name != "A1" {
		t.Errorf("violations = %+v, want A1 only", v)
	}
}

func TestRolloutSpreadsAcrossParents(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	root := buildHierarchy(eng)
	r := NewRollout(root)
	first := r.Stage(2)
	if len(first) != 2 {
		t.Fatalf("staged %d domains, want 2", len(first))
	}
	// The two enabled leaves must sit under different sub-racks.
	parentOf := func(d *Domain) string { return d.Name[:2] }
	if parentOf(first[0]) == parentOf(first[1]) {
		t.Errorf("stage concentrated in one sub-rack: %s, %s", first[0].Name, first[1].Name)
	}
	rest := r.Stage(10)
	if len(rest) != 2 {
		t.Errorf("second stage enabled %d, want the remaining 2", len(rest))
	}
	if r.EnabledCount() != 4 {
		t.Errorf("EnabledCount = %d, want 4", r.EnabledCount())
	}
	if more := r.Stage(1); len(more) != 0 {
		t.Errorf("staging past completion returned %v", more)
	}
}

func TestRolloutHalt(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	root := buildHierarchy(eng)
	r := NewRollout(root)
	staged := r.Stage(1)
	if err := r.Halt(staged[0]); err != nil {
		t.Fatal(err)
	}
	if r.EnabledCount() != 0 {
		t.Error("halt did not disable domain")
	}
	if err := r.Halt(staged[0]); err == nil {
		t.Error("double halt accepted")
	}
}
