package adaptive

import (
	"fmt"

	"wattio/internal/device"
)

// TierManager masks the slow tier's standby/spin-up latency (§4:
// "the longer standby/spin-up latencies of HDDs may be masked by
// temporarily absorbing writes with SSDs"). While the slow device is in
// standby, writes land in a log region on the fast device and an index
// remembers where; reads of absorbed blocks are served from the fast
// tier, and everything else wakes the slow tier. Flush drains the log
// back once the slow tier is awake.
type TierManager struct {
	fast, slow device.Device

	// The log region occupies [logBase, logBase+logCap) on the fast
	// device and is allocated as a ring of whole blocks.
	logBase, logCap int64
	logHead         int64 // next allocation offset relative to logBase

	// index maps slow-tier offset → fast-tier log offset for absorbed
	// blocks. Blocks are tracked at write granularity; partially
	// overlapping rewrites are the caller's (filesystem's) problem, as
	// with any block log.
	index map[int64]entry

	// AbsorbedWrites and AbsorbedBytes count writes the fast tier took
	// on the slow tier's behalf.
	AbsorbedWrites int
	AbsorbedBytes  int64
}

type entry struct {
	fastOff int64
	size    int64
}

// NewTierManager builds a tier pair. The log region must fit inside the
// fast device.
func NewTierManager(fast, slow device.Device, logBase, logCap int64) (*TierManager, error) {
	switch {
	case logCap <= 0:
		return nil, fmt.Errorf("adaptive: tier log capacity must be positive")
	case logBase < 0 || logBase+logCap > fast.CapacityBytes():
		return nil, fmt.Errorf("adaptive: tier log [%d, %d) outside fast device", logBase, logBase+logCap)
	}
	return &TierManager{
		fast: fast, slow: slow,
		logBase: logBase, logCap: logCap,
		index: make(map[int64]entry),
	}, nil
}

// PendingBytes returns bytes absorbed and not yet flushed.
func (t *TierManager) PendingBytes() int64 {
	var sum int64
	for _, e := range t.index {
		sum += e.size
	}
	return sum
}

// Submit routes one request. Writes go to the slow tier unless it is in
// standby, in which case they are absorbed into the fast tier's log
// (falling back to waking the slow tier only when the log is full).
// Reads are served from the log when the block was absorbed.
func (t *TierManager) Submit(req device.Request, done func()) {
	if err := req.Validate(t.slow.CapacityBytes()); err != nil {
		panic(fmt.Sprintf("adaptive: tier: %v", err))
	}
	if req.Op == device.OpRead {
		if e, ok := t.index[req.Offset]; ok && e.size >= req.Size {
			t.fast.Submit(device.Request{Op: device.OpRead, Offset: e.fastOff, Size: req.Size}, done)
			return
		}
		t.slow.Submit(req, done) // wakes the slow tier if needed
		return
	}
	if !t.slow.Standby() {
		t.slow.Submit(req, done)
		return
	}
	off, ok := t.allocate(req.Size)
	if !ok {
		// Log full: no choice but to pay the spin-up.
		t.slow.Submit(req, done)
		return
	}
	t.index[req.Offset] = entry{fastOff: off, size: req.Size}
	t.AbsorbedWrites++
	t.AbsorbedBytes += req.Size
	t.fast.Submit(device.Request{Op: device.OpWrite, Offset: off, Size: req.Size}, done)
}

// allocate carves req bytes from the log ring; ok is false if the log
// has no room until the next flush.
func (t *TierManager) allocate(size int64) (int64, bool) {
	if t.logHead+size > t.logCap {
		return 0, false
	}
	off := t.logBase + t.logHead
	t.logHead += size
	return off, true
}

// Flush wakes the slow tier and migrates every absorbed block back:
// read from the fast log, write to the home location. done runs when
// all blocks have landed; the log is then empty.
func (t *TierManager) Flush(done func()) {
	if err := t.slow.Wake(); err != nil && err != device.ErrNotSupported {
		panic(fmt.Sprintf("adaptive: tier flush wake: %v", err))
	}
	n := len(t.index)
	if n == 0 {
		done()
		return
	}
	remaining := n
	for home, e := range t.index {
		home, e := home, e
		t.fast.Submit(device.Request{Op: device.OpRead, Offset: e.fastOff, Size: e.size}, func() {
			t.slow.Submit(device.Request{Op: device.OpWrite, Offset: home, Size: e.size}, func() {
				remaining--
				if remaining == 0 {
					t.index = make(map[int64]entry)
					t.logHead = 0
					done()
				}
			})
		})
	}
}

// TotalPower returns the tier pair's combined draw.
func (t *TierManager) TotalPower() float64 {
	return t.fast.InstantPower() + t.slow.InstantPower()
}
