package adaptive

import (
	"testing"
	"time"

	"wattio/internal/catalog"
	"wattio/internal/device"
	"wattio/internal/sim"
)

func newCachePair(t *testing.T, capBlocks int64) (*ReadCache, device.Device, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	rng := sim.NewRNG(13)
	fast := catalog.NewSSD3(eng, rng.Stream("fast"))
	slow := catalog.NewHDD(eng, rng.Stream("slow"))
	const block = 64 << 10
	c, err := NewReadCache(fast, slow, 0, capBlocks*block, block)
	if err != nil {
		t.Fatal(err)
	}
	return c, slow, eng
}

func readAt(eng *sim.Engine, c *ReadCache, off, size int64) time.Duration {
	start := eng.Now()
	done := false
	c.Submit(device.Request{Op: device.OpRead, Offset: off, Size: size}, func() { done = true })
	for !done && eng.Step() {
	}
	return eng.Now() - start
}

func TestCacheMissThenHit(t *testing.T) {
	t.Parallel()
	c, _, eng := newCachePair(t, 16)
	// A far offset forces real HDD positioning (offset 0 would stream
	// from the parked head position).
	const off = int64(1) << 30
	miss := readAt(eng, c, off, 4096)
	hit := readAt(eng, c, off, 4096)
	if c.Misses != 1 || c.Hits != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", c.Hits, c.Misses)
	}
	// The miss pays HDD positioning (ms); the hit is SSD-fast (µs).
	if miss < time.Millisecond {
		t.Errorf("miss took %v, expected HDD positioning", miss)
	}
	if hit > time.Millisecond {
		t.Errorf("hit took %v, expected SSD latency", hit)
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d blocks, want 1", c.Len())
	}
}

func TestCacheServesStandbyReadsWithoutWake(t *testing.T) {
	t.Parallel()
	c, slow, eng := newCachePair(t, 16)
	readAt(eng, c, 0, 4096) // populate while awake
	slow.EnterStandby()
	eng.RunUntil(eng.Now() + 5*time.Second)
	if !slow.Standby() {
		t.Fatal("HDD not in standby")
	}
	lat := readAt(eng, c, 0, 4096)
	if !slow.Standby() {
		t.Fatal("cached read woke the HDD")
	}
	if c.Saves != 1 {
		t.Errorf("Saves = %d, want 1", c.Saves)
	}
	if lat > time.Millisecond {
		t.Errorf("standby hit took %v", lat)
	}
}

func TestCacheSubBlockOffsetsHitSameBlock(t *testing.T) {
	t.Parallel()
	c, _, eng := newCachePair(t, 16)
	readAt(eng, c, 0, 4096)
	readAt(eng, c, 8192, 4096) // same 64 KiB block, different offset
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	t.Parallel()
	c, _, eng := newCachePair(t, 2)
	const block = 64 << 10
	readAt(eng, c, 0*block, 4096)
	readAt(eng, c, 1*block, 4096)
	readAt(eng, c, 0*block, 4096) // touch block 0: block 1 is now LRU
	readAt(eng, c, 2*block, 4096) // evicts block 1
	if c.Len() != 2 {
		t.Fatalf("cache holds %d, want 2", c.Len())
	}
	readAt(eng, c, 0*block, 4096)
	if c.Hits != 2 {
		t.Errorf("block 0 evicted despite being MRU (hits=%d)", c.Hits)
	}
	misses := c.Misses
	readAt(eng, c, 1*block, 4096)
	if c.Misses != misses+1 {
		t.Error("evicted block 1 still served from cache")
	}
}

func TestCacheWriteInvalidates(t *testing.T) {
	t.Parallel()
	c, _, eng := newCachePair(t, 16)
	readAt(eng, c, 0, 4096)
	done := false
	c.Submit(device.Request{Op: device.OpWrite, Offset: 0, Size: 4096}, func() { done = true })
	for !done && eng.Step() {
	}
	if c.Len() != 0 {
		t.Fatalf("write did not invalidate the block (len=%d)", c.Len())
	}
	misses := c.Misses
	readAt(eng, c, 0, 4096)
	if c.Misses != misses+1 {
		t.Error("stale block served after invalidating write")
	}
}

func TestCacheMultiBlockBypasses(t *testing.T) {
	t.Parallel()
	c, _, eng := newCachePair(t, 16)
	const block = 64 << 10
	done := false
	c.Submit(device.Request{Op: device.OpRead, Offset: block / 2, Size: block}, func() { done = true })
	for !done && eng.Step() {
	}
	if c.Hits+c.Misses != 0 {
		t.Error("spanning read counted as a cache lookup")
	}
	if c.Len() != 0 {
		t.Error("spanning read inserted into cache")
	}
}

func TestCacheValidation(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(13)
	fast := catalog.NewSSD3(eng, rng.Stream("fast"))
	slow := catalog.NewHDD(eng, rng.Stream("slow"))
	if _, err := NewReadCache(fast, slow, 0, 1<<20, 1000); err == nil {
		t.Error("unaligned block size accepted")
	}
	if _, err := NewReadCache(fast, slow, 0, 1024, 64<<10); err == nil {
		t.Error("capacity below one block accepted")
	}
	if _, err := NewReadCache(fast, slow, fast.CapacityBytes(), 1<<20, 64<<10); err == nil {
		t.Error("region outside fast device accepted")
	}
}

func TestCacheHitRate(t *testing.T) {
	t.Parallel()
	c, _, eng := newCachePair(t, 16)
	if c.HitRate() != 0 {
		t.Error("empty cache has nonzero hit rate")
	}
	readAt(eng, c, 0, 4096)
	readAt(eng, c, 0, 4096)
	readAt(eng, c, 0, 4096)
	if r := c.HitRate(); r < 0.66 || r > 0.67 {
		t.Errorf("hit rate = %v, want 2/3", r)
	}
}

func TestCacheWriteDuringFillDropsStaleInsert(t *testing.T) {
	t.Parallel()
	c, _, eng := newCachePair(t, 16)
	const off = int64(1) << 30
	// A read miss starts a block fill from the HDD; a write to the same
	// block lands while that fill is in flight. The fill snapshotted
	// pre-write data, so inserting it would serve stale reads forever.
	var rdone, wdone bool
	c.Submit(device.Request{Op: device.OpRead, Offset: off, Size: 4096}, func() { rdone = true })
	c.Submit(device.Request{Op: device.OpWrite, Offset: off, Size: 4096}, func() { wdone = true })
	for (!rdone || !wdone) && eng.Step() {
	}
	if !rdone || !wdone {
		t.Fatal("IOs never completed")
	}
	if c.DroppedFills != 1 {
		t.Errorf("DroppedFills = %d, want 1", c.DroppedFills)
	}
	if c.Len() != 0 {
		t.Errorf("cache holds %d blocks after an invalidated fill, want 0", c.Len())
	}
	// The block must re-miss: a hit here would serve the stale snapshot.
	readAt(eng, c, off, 4096)
	if c.Misses != 2 || c.Hits != 0 {
		t.Errorf("hits/misses = %d/%d after invalidated fill, want 0/2", c.Hits, c.Misses)
	}
}

func TestCacheWriteElsewhereDuringFillKeepsInsert(t *testing.T) {
	t.Parallel()
	c, _, eng := newCachePair(t, 16)
	const off = int64(1) << 30
	const block = int64(64) << 10
	var rdone, wdone bool
	c.Submit(device.Request{Op: device.OpRead, Offset: off, Size: 4096}, func() { rdone = true })
	// Write to a different block: the in-flight fill is unaffected.
	c.Submit(device.Request{Op: device.OpWrite, Offset: off + 10*block, Size: 4096}, func() { wdone = true })
	for (!rdone || !wdone) && eng.Step() {
	}
	if c.DroppedFills != 0 {
		t.Errorf("DroppedFills = %d, want 0", c.DroppedFills)
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d blocks, want 1", c.Len())
	}
	readAt(eng, c, off, 4096)
	if c.Hits != 1 {
		t.Errorf("hits = %d, want 1 (fill unaffected by unrelated write)", c.Hits)
	}
}
