package adaptive

import (
	"strings"

	"wattio/internal/core"
	"wattio/internal/device"
)

// FleetCache memoizes core.Fleet construction by member composition.
// A fleet's Pareto frontier is expensive to build and cached inside the
// Fleet itself, so a membership epoch that returns the live set to a
// composition seen before (scale-out followed by drain-to-previous-
// size, a failover drained back) reuses the previous Fleet — and with
// it the frontier — instead of re-merging from scratch.
//
// Keys are derived from the sorted-by-construction member name list;
// the cache is per-shard and single-threaded like everything else in
// the serving engine.
type FleetCache struct {
	fleets map[string]*core.Fleet
	// Hits and Misses count Fleet lookups, for reporting how often a
	// churn schedule revisits a composition.
	Hits, Misses int
}

// NewFleetCache returns an empty cache.
func NewFleetCache() *FleetCache {
	return &FleetCache{fleets: map[string]*core.Fleet{}}
}

// CompositionKey canonicalizes a member name list into a cache key. The
// caller passes names in its own deterministic order; two sets with the
// same members produce the same key regardless of join order.
func CompositionKey(names []string) string {
	sorted := append([]string(nil), names...)
	// Insertion sort: epoch member lists are near-sorted (build order
	// plus a few churned tails) and small relative to the fleet.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return strings.Join(sorted, "\x00")
}

// Fleet returns the cached Fleet for the composition key, building and
// memoizing it on first sight.
func (c *FleetCache) Fleet(key string, build func() (*core.Fleet, error)) (*core.Fleet, error) {
	if f, ok := c.fleets[key]; ok {
		c.Hits++
		return f, nil
	}
	f, err := build()
	if err != nil {
		return nil, err
	}
	c.Misses++
	c.fleets[key] = f
	return f, nil
}

// Controller builds a BudgetController over the cached fleet for the
// given live devices: the Fleet (and its frontier) comes from the
// cache, the device binding is rebuilt — devices are live objects that
// may have changed state since the composition was last seen.
func (c *FleetCache) Controller(key string, devs []device.Device, build func() (*core.Fleet, error)) (*BudgetController, error) {
	f, err := c.Fleet(key, build)
	if err != nil {
		return nil, err
	}
	return NewBudgetController(f, devs)
}
