package adaptive

import (
	"fmt"
	"sort"

	"wattio/internal/device"
)

// Domain is one node of the data-center power hierarchy (§4.1): a rack,
// a sub-rack power domain behind a breaker, or any intermediate level.
// Devices hang off leaf domains.
type Domain struct {
	Name     string
	BreakerW float64 // breaker rating; 0 means unmonitored
	Children []*Domain
	Devices  []device.Device
}

// Power returns the domain's instantaneous draw, recursively. Capped
// devices legitimately spike above their cap between throttle quanta,
// so compliance checks should prefer window averages via EnergyJ.
func (d *Domain) Power() float64 {
	var sum float64
	for _, dev := range d.Devices {
		sum += dev.InstantPower()
	}
	for _, c := range d.Children {
		sum += c.Power()
	}
	return sum
}

// EnergyJ returns the domain's cumulative energy, recursively; window
// averages are energy deltas over elapsed virtual time.
func (d *Domain) EnergyJ() float64 {
	var sum float64
	for _, dev := range d.Devices {
		sum += dev.EnergyJ()
	}
	for _, c := range d.Children {
		sum += c.EnergyJ()
	}
	return sum
}

// Leaves returns the leaf domains in definition order.
func (d *Domain) Leaves() []*Domain {
	if len(d.Children) == 0 {
		return []*Domain{d}
	}
	var out []*Domain
	for _, c := range d.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}

// Violation reports a domain whose draw exceeds its breaker rating.
type Violation struct {
	Domain *Domain
	PowerW float64
}

// CheckBreakers walks the hierarchy and reports every domain over its
// breaker rating. A power-adaptive system that fails to shed load shows
// up here before the physical breaker trips.
func (d *Domain) CheckBreakers() []Violation {
	var out []Violation
	if d.BreakerW > 0 {
		if p := d.Power(); p > d.BreakerW {
			out = append(out, Violation{Domain: d, PowerW: p})
		}
	}
	for _, c := range d.Children {
		out = append(out, c.CheckBreakers()...)
	}
	return out
}

// Rollout plans the incremental deployment of power-adaptive control
// below the lowest tier of the power hierarchy (§4.1): enable a few
// leaf domains at a time, spread across parents so coordinated control
// failures cannot concentrate in a single breaker domain. Leaves whose
// power audits fail are quarantined: disabled and excluded from every
// later Stage call until explicitly reinstated.
type Rollout struct {
	root        *Domain
	enabled     map[*Domain]bool
	quarantined map[*Domain]bool
}

// NewRollout starts a rollout over the hierarchy with nothing enabled.
func NewRollout(root *Domain) *Rollout {
	return &Rollout{
		root:        root,
		enabled:     make(map[*Domain]bool),
		quarantined: make(map[*Domain]bool),
	}
}

// Enabled reports whether a leaf domain runs power-adaptive control.
func (r *Rollout) Enabled(d *Domain) bool { return r.enabled[d] }

// EnabledCount returns how many leaf domains are enabled.
func (r *Rollout) EnabledCount() int { return len(r.enabled) }

// Stage enables up to n more leaf domains and returns them. Selection
// spreads across parent domains round-robin: the parent with the fewest
// enabled children goes first, so no single power domain concentrates
// the deployment.
func (r *Rollout) Stage(n int) []*Domain {
	if n <= 0 {
		return nil
	}
	type bucket struct {
		parent  *Domain
		pending []*Domain
		on      int
	}
	var buckets []*bucket
	var walk func(d *Domain)
	walk = func(d *Domain) {
		leafChildren := bucket{parent: d}
		for _, c := range d.Children {
			if len(c.Children) == 0 {
				switch {
				case r.enabled[c]:
					leafChildren.on++
				case r.quarantined[c]:
					// Quarantined leaves neither count as deployed nor
					// re-enter the pending pool.
				default:
					leafChildren.pending = append(leafChildren.pending, c)
				}
			} else {
				walk(c)
			}
		}
		if leafChildren.on > 0 || len(leafChildren.pending) > 0 {
			b := leafChildren
			buckets = append(buckets, &b)
		}
	}
	walk(r.root)
	if len(r.root.Children) == 0 && !r.enabled[r.root] && !r.quarantined[r.root] {
		// Degenerate hierarchy: the root is itself a leaf.
		buckets = append(buckets, &bucket{parent: r.root, pending: []*Domain{r.root}})
	}

	var out []*Domain
	for len(out) < n {
		// Pick the bucket with the fewest enabled children that still
		// has pending leaves; ties break by name for determinism.
		sort.SliceStable(buckets, func(i, j int) bool {
			if buckets[i].on != buckets[j].on {
				return buckets[i].on < buckets[j].on
			}
			return buckets[i].parent.Name < buckets[j].parent.Name
		})
		picked := false
		for _, b := range buckets {
			if len(b.pending) == 0 {
				continue
			}
			leaf := b.pending[0]
			b.pending = b.pending[1:]
			b.on++
			r.enabled[leaf] = true
			out = append(out, leaf)
			picked = true
			break
		}
		if !picked {
			break // everything enabled
		}
	}
	return out
}

// Halt disables a leaf domain (e.g., after a control failure) so the
// next Stage call will not count it as deployed.
func (r *Rollout) Halt(d *Domain) error {
	if !r.enabled[d] {
		return fmt.Errorf("adaptive: domain %s is not enabled", d.Name)
	}
	delete(r.enabled, d)
	return nil
}

// Quarantine disables an enabled leaf domain and bars it from future
// Stage calls — the response to a failed power audit (§4.1): a domain
// that demonstrably cannot control its power must not be retried
// blindly at the next rollout step.
func (r *Rollout) Quarantine(d *Domain) error {
	if !r.enabled[d] {
		return fmt.Errorf("adaptive: domain %s is not enabled", d.Name)
	}
	delete(r.enabled, d)
	r.quarantined[d] = true
	return nil
}

// Quarantined reports whether a leaf domain is quarantined.
func (r *Rollout) Quarantined(d *Domain) bool { return r.quarantined[d] }

// QuarantinedCount returns how many leaf domains are quarantined.
func (r *Rollout) QuarantinedCount() int { return len(r.quarantined) }

// Reinstate lifts a quarantine (after the underlying fault is fixed),
// returning the leaf to the pending pool of future Stage calls.
func (r *Rollout) Reinstate(d *Domain) error {
	if !r.quarantined[d] {
		return fmt.Errorf("adaptive: domain %s is not quarantined", d.Name)
	}
	delete(r.quarantined, d)
	return nil
}

// AuditAndQuarantine audits the enabled leaves and quarantines every
// failing one, returning them (sorted by name). This is the §4.1
// containment loop in one call: identify local control failures, then
// fence them off before they threaten a breaker budget.
func (r *Rollout) AuditAndQuarantine(measure func(*Domain) float64, expectedW float64) []*Domain {
	failing := r.Audit(measure, expectedW)
	for _, d := range failing {
		r.Quarantine(d)
	}
	return failing
}

// Audit returns the enabled leaf domains whose measured power exceeds
// expectedW — §4.1's "local failures of the storage system to control
// power can safely be identified before a failure threatens to exceed
// the power budget of rack-level breakers." measure reports each
// domain's power; pass a window-average measurement, not an
// instantaneous sample, because capped devices spike between throttle
// quanta.
func (r *Rollout) Audit(measure func(*Domain) float64, expectedW float64) []*Domain {
	var out []*Domain
	for d := range r.enabled {
		if measure(d) > expectedW {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
