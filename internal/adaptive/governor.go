package adaptive

import (
	"fmt"
	"time"

	"wattio/internal/device"
	"wattio/internal/sim"
)

// Governor is the model-free counterpart to BudgetController: a
// closed-loop feedback controller that periodically measures a device's
// average power and steps its NVMe power state down when over budget
// and back up when there is headroom. Operators run this where no
// power-throughput model has been built yet, or as a safety net under
// the model-based plan — §4.1's "local failures to control power" are
// exactly what the feedback loop catches.
type Governor struct {
	eng *sim.Engine
	dev device.Device

	budgetW float64
	period  time.Duration
	// HeadroomFrac is the fraction of budget that must be free before
	// the governor steps back up (hysteresis against flapping).
	HeadroomFrac float64

	running bool
	tick    *sim.Timer
	lastE   float64
	lastT   time.Duration

	// Steps counts power-state changes; Overs counts measurement
	// periods that ended over budget.
	Steps, Overs int
}

// NewGovernor builds a governor over a device with host-selectable
// power states.
func NewGovernor(eng *sim.Engine, dev device.Device, budgetW float64, period time.Duration) (*Governor, error) {
	if len(dev.PowerStates()) < 2 {
		return nil, fmt.Errorf("adaptive: %s has no power states to govern", dev.Name())
	}
	if budgetW <= 0 {
		return nil, fmt.Errorf("adaptive: budget must be positive")
	}
	if period <= 0 {
		return nil, fmt.Errorf("adaptive: period must be positive")
	}
	return &Governor{
		eng: eng, dev: dev,
		budgetW: budgetW, period: period,
		HeadroomFrac: 0.15,
	}, nil
}

// SetBudget retargets the governor; takes effect at the next period.
func (g *Governor) SetBudget(w float64) { g.budgetW = w }

// Budget returns the current target.
func (g *Governor) Budget() float64 { return g.budgetW }

// Start begins the control loop.
func (g *Governor) Start() {
	if g.running {
		return
	}
	g.running = true
	g.lastE = g.dev.EnergyJ()
	g.lastT = g.eng.Now()
	g.schedule()
}

// Stop halts the control loop, leaving the device in its current state.
func (g *Governor) Stop() {
	g.running = false
	if g.tick != nil {
		g.tick.Stop()
		g.tick = nil
	}
}

func (g *Governor) schedule() {
	g.tick = g.eng.After(g.period, func() {
		if !g.running {
			return
		}
		g.control()
		g.schedule()
	})
}

// control runs one feedback step on the trailing period's average power.
func (g *Governor) control() {
	now := g.eng.Now()
	e := g.dev.EnergyJ()
	avgW := (e - g.lastE) / (now - g.lastT).Seconds()
	g.lastE, g.lastT = e, now

	ps := g.dev.PowerStateIndex()
	nStates := len(g.dev.PowerStates())
	switch {
	case avgW > g.budgetW:
		g.Overs++
		if ps < nStates-1 {
			if err := g.dev.SetPowerState(ps + 1); err == nil {
				g.Steps++
			}
		}
	case avgW < g.budgetW*(1-g.HeadroomFrac) && ps > 0:
		// Only step up if the next state's cap also fits the budget;
		// otherwise stepping up guarantees re-violation.
		upCap := g.dev.PowerStates()[ps-1].MaxPowerW
		if upCap == 0 || upCap <= g.budgetW {
			if err := g.dev.SetPowerState(ps - 1); err == nil {
				g.Steps++
			}
		}
	}
}
