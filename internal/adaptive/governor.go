package adaptive

import (
	"fmt"
	"time"

	"wattio/internal/device"
	"wattio/internal/sim"
	"wattio/internal/telemetry"
)

// Governor is the model-free counterpart to BudgetController: a
// closed-loop feedback controller that periodically measures a device's
// average power and steps its NVMe power state down when over budget
// and back up when there is headroom. Operators run this where no
// power-throughput model has been built yet, or as a safety net under
// the model-based plan — §4.1's "local failures to control power" are
// exactly what the feedback loop catches.
//
// Power-state commands can fail (a faulted or browned-out device, see
// internal/fault); the governor retries a failed transition with
// capped exponential backoff until it applies or the next control
// period supersedes it with a fresh decision.
type Governor struct {
	eng *sim.Engine
	dev device.Device

	budgetW float64
	period  time.Duration
	// HeadroomFrac is the fraction of budget that must be free before
	// the governor steps back up (hysteresis against flapping).
	HeadroomFrac float64
	// RetryBase and RetryMax bound the retry backoff for failed
	// power-state commands: the first retry fires after RetryBase and
	// doubles on each consecutive failure up to RetryMax.
	RetryBase, RetryMax time.Duration

	running bool
	tick    *sim.Timer

	retry        *sim.Timer
	retryTarget  int
	retryBackoff time.Duration

	lastE float64
	lastT time.Duration

	// Steps counts power-state changes; Overs counts measurement
	// periods that ended over budget; Retries counts retry attempts
	// after failed power-state commands; Failures counts failed
	// commands (first attempts and retries).
	Steps, Overs, Retries, Failures int

	cRetries  *telemetry.Counter
	cFailures *telemetry.Counter
}

// NewGovernor builds a governor over a device with host-selectable
// power states.
func NewGovernor(eng *sim.Engine, dev device.Device, budgetW float64, period time.Duration) (*Governor, error) {
	if len(dev.PowerStates()) < 2 {
		return nil, fmt.Errorf("adaptive: %s has no power states to govern", dev.Name())
	}
	if budgetW <= 0 {
		return nil, fmt.Errorf("adaptive: budget must be positive")
	}
	if period <= 0 {
		return nil, fmt.Errorf("adaptive: period must be positive")
	}
	reg := eng.Metrics()
	return &Governor{
		eng: eng, dev: dev,
		budgetW: budgetW, period: period,
		HeadroomFrac: 0.15,
		RetryBase:    period / 8,
		RetryMax:     period,

		cRetries:  reg.Counter("governor_retries_total"),
		cFailures: reg.Counter("governor_cmd_failures_total"),
	}, nil
}

// SetBudget retargets the governor; takes effect at the next period.
// Like the constructor it rejects non-positive budgets, which would
// pin the device at its deepest state forever.
func (g *Governor) SetBudget(w float64) error {
	if w <= 0 {
		return fmt.Errorf("adaptive: budget must be positive, got %v", w)
	}
	g.budgetW = w
	return nil
}

// Budget returns the current target.
func (g *Governor) Budget() float64 { return g.budgetW }

// Start begins the control loop.
func (g *Governor) Start() {
	if g.running {
		return
	}
	g.running = true
	g.lastE = g.dev.EnergyJ()
	g.lastT = g.eng.Now()
	// One periodic timer serves the whole loop; the engine re-sifts it
	// in place after each control step instead of alloc+push per period.
	if g.tick == nil {
		g.tick = g.eng.Periodic(g.period, g.onTick)
	} else {
		g.tick.RescheduleAfter(g.period)
	}
}

// Stop halts the control loop, leaving the device in its current state.
func (g *Governor) Stop() {
	g.running = false
	if g.tick != nil {
		g.tick.Stop()
	}
	g.stopRetry()
}

func (g *Governor) onTick() {
	if !g.running {
		return
	}
	g.control()
}

// control runs one feedback step on the trailing period's average power.
func (g *Governor) control() {
	now := g.eng.Now()
	elapsed := now - g.lastT
	if elapsed <= 0 {
		// A zero-length period (Start and the first tick co-timed, or a
		// re-entrant call) has no average power; dividing would poison
		// the decision with NaN/Inf. Skip and wait for real elapsed time.
		return
	}
	e := g.dev.EnergyJ()
	avgW := (e - g.lastE) / elapsed.Seconds()
	g.lastE, g.lastT = e, now

	// A fresh measurement supersedes any pending retry: the decision
	// below is based on newer data.
	g.stopRetry()

	ps := g.dev.PowerStateIndex()
	nStates := len(g.dev.PowerStates())
	switch {
	case avgW > g.budgetW:
		g.Overs++
		if ps < nStates-1 {
			g.apply(ps + 1)
		}
	case avgW < g.budgetW*(1-g.HeadroomFrac) && ps > 0:
		// Only step up if the next state's cap also fits the budget;
		// otherwise stepping up guarantees re-violation.
		upCap := g.dev.PowerStates()[ps-1].MaxPowerW
		if upCap == 0 || upCap <= g.budgetW {
			g.apply(ps - 1)
		}
	}
}

// apply attempts a power-state transition, arming the retry loop on
// failure.
func (g *Governor) apply(target int) {
	if err := g.dev.SetPowerState(target); err != nil {
		g.Failures++
		g.cFailures.Inc()
		g.retryBackoff = g.RetryBase
		g.scheduleRetry(target)
		return
	}
	g.Steps++
	g.retryBackoff = 0
}

func (g *Governor) scheduleRetry(target int) {
	d := g.retryBackoff
	if d <= 0 {
		d = g.RetryBase
	}
	if d <= 0 {
		d = time.Millisecond
	}
	g.retryTarget = target
	if g.retry == nil {
		g.retry = g.eng.After(d, g.onRetry)
	} else {
		g.retry.RescheduleAfter(d)
	}
}

func (g *Governor) onRetry() {
	if !g.running {
		return
	}
	g.Retries++
	g.cRetries.Inc()
	if err := g.dev.SetPowerState(g.retryTarget); err != nil {
		g.Failures++
		g.cFailures.Inc()
		g.retryBackoff *= 2
		if g.retryBackoff > g.RetryMax {
			g.retryBackoff = g.RetryMax
		}
		g.scheduleRetry(g.retryTarget)
		return
	}
	g.Steps++
	g.retryBackoff = 0
}

func (g *Governor) stopRetry() {
	if g.retry != nil {
		g.retry.Stop()
	}
}
