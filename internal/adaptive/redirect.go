// Package adaptive implements the power-adaptive storage-system
// mechanisms the paper's §4 derives from its measurements:
//
//   - power-aware IO redirection to a subset of active replicas so
//     inactive devices maximize standby residency (cf. SRCMap),
//   - asymmetric IO placement that segregates writes onto a small
//     uncapped set while power-capping read-mostly devices,
//   - tiered write absorption, where an SSD masks an HDD's multi-second
//     spin-up by absorbing writes into a log,
//   - a budget controller that turns a fleet power budget into concrete
//     power states and IO shapes using the core power-throughput models,
//   - and a sub-rack incremental rollout plan with breaker-level safety
//     checks (§4.1).
package adaptive

import (
	"fmt"

	"wattio/internal/device"
)

// Redirector routes IO across N devices holding replicated data,
// keeping only an active subset spinning/awake so the rest accumulate
// standby time. Reads and writes go to the least-loaded active replica;
// standby replicas are resynchronized on activation (modeled as
// instantaneous, as SRCMap's background sync is off the data path).
//
// Redirector implements device.Device so workloads and measurement rigs
// compose with it; power-control methods act on the ensemble.
type Redirector struct {
	name        string
	devs        []device.Device
	active      []bool
	outstanding []int

	// WakesOnDemand counts IOs that arrived when no replica was
	// active and forced a wake — QoS violations in SRCMap terms.
	WakesOnDemand int
}

// NewRedirector builds a redirector over replicas of equal capacity,
// with the first k devices active and the rest in standby.
func NewRedirector(name string, devs []device.Device, k int) (*Redirector, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("adaptive: redirector needs devices")
	}
	if k < 1 || k > len(devs) {
		return nil, fmt.Errorf("adaptive: active count %d out of [1, %d]", k, len(devs))
	}
	cap0 := devs[0].CapacityBytes()
	for _, d := range devs[1:] {
		if d.CapacityBytes() != cap0 {
			return nil, fmt.Errorf("adaptive: replica capacities differ (%d vs %d)", d.CapacityBytes(), cap0)
		}
	}
	r := &Redirector{
		name:        name,
		devs:        devs,
		active:      make([]bool, len(devs)),
		outstanding: make([]int, len(devs)),
	}
	for i := range devs {
		r.active[i] = i < k
	}
	return r, r.applyStandby()
}

func (r *Redirector) applyStandby() error {
	for i, d := range r.devs {
		if r.active[i] {
			if err := d.Wake(); err != nil && err != device.ErrNotSupported {
				return err
			}
		} else {
			if err := d.EnterStandby(); err != nil && err != device.ErrNotSupported {
				return err
			}
		}
	}
	return nil
}

// SetActive resizes the active set to k replicas, waking or standing
// down devices at the set boundary.
func (r *Redirector) SetActive(k int) error {
	if k < 1 || k > len(r.devs) {
		return fmt.Errorf("adaptive: active count %d out of [1, %d]", k, len(r.devs))
	}
	for i := range r.devs {
		r.active[i] = i < k
	}
	return r.applyStandby()
}

// ActiveCount returns the size of the active set.
func (r *Redirector) ActiveCount() int {
	n := 0
	for _, a := range r.active {
		if a {
			n++
		}
	}
	return n
}

// Devices returns the managed replicas.
func (r *Redirector) Devices() []device.Device { return r.devs }

// pick returns the least-loaded active replica index, or -1 if none.
func (r *Redirector) pick() int {
	best := -1
	for i := range r.devs {
		if !r.active[i] {
			continue
		}
		if best < 0 || r.outstanding[i] < r.outstanding[best] {
			best = i
		}
	}
	return best
}

// Submit implements device.Device: the request goes to the least-loaded
// active replica. If no replica is active (all forced to standby), the
// first device is woken on demand and the wake is counted.
func (r *Redirector) Submit(req device.Request, done func()) {
	i := r.pick()
	if i < 0 {
		i = 0
		r.WakesOnDemand++
	}
	r.outstanding[i]++
	r.devs[i].Submit(req, func() {
		r.outstanding[i]--
		done()
	})
}

// Name implements device.Device.
func (r *Redirector) Name() string { return r.name }

// Model implements device.Device.
func (r *Redirector) Model() string { return fmt.Sprintf("redirector over %d replicas", len(r.devs)) }

// Protocol implements device.Device; it reports the replicas' protocol.
func (r *Redirector) Protocol() device.Protocol { return r.devs[0].Protocol() }

// CapacityBytes implements device.Device: the logical capacity is one
// replica's (the data is mirrored).
func (r *Redirector) CapacityBytes() int64 { return r.devs[0].CapacityBytes() }

// InstantPower implements device.Device as the ensemble total.
func (r *Redirector) InstantPower() float64 {
	var sum float64
	for _, d := range r.devs {
		sum += d.InstantPower()
	}
	return sum
}

// EnergyJ implements device.Device as the ensemble total.
func (r *Redirector) EnergyJ() float64 {
	var sum float64
	for _, d := range r.devs {
		sum += d.EnergyJ()
	}
	return sum
}

// PowerStates implements device.Device; the ensemble exposes no
// NVMe-style states (use SetActive for coarse control).
func (r *Redirector) PowerStates() []device.PowerState { return nil }

// SetPowerState implements device.Device.
func (r *Redirector) SetPowerState(int) error { return device.ErrNotSupported }

// PowerStateIndex implements device.Device.
func (r *Redirector) PowerStateIndex() int { return 0 }

// EnterStandby implements device.Device by standing down every replica.
func (r *Redirector) EnterStandby() error {
	for i := range r.active {
		r.active[i] = false
	}
	return r.applyStandby()
}

// Wake implements device.Device by restoring one active replica.
func (r *Redirector) Wake() error { return r.SetActive(1) }

// Standby implements device.Device: true when no replica is active.
func (r *Redirector) Standby() bool { return r.ActiveCount() == 0 }

// Settled implements device.Device: true when every replica's standby
// or wake transition has finished.
func (r *Redirector) Settled() bool {
	for _, d := range r.devs {
		if !d.Settled() {
			return false
		}
	}
	return true
}

var _ device.Device = (*Redirector)(nil)
