// Package adaptive implements the power-adaptive storage-system
// mechanisms the paper's §4 derives from its measurements:
//
//   - power-aware IO redirection to a subset of active replicas so
//     inactive devices maximize standby residency (cf. SRCMap),
//   - asymmetric IO placement that segregates writes onto a small
//     uncapped set while power-capping read-mostly devices,
//   - tiered write absorption, where an SSD masks an HDD's multi-second
//     spin-up by absorbing writes into a log,
//   - a budget controller that turns a fleet power budget into concrete
//     power states and IO shapes using the core power-throughput models,
//   - and a sub-rack incremental rollout plan with breaker-level safety
//     checks (§4.1).
package adaptive

import (
	"errors"
	"fmt"

	"wattio/internal/device"
	"wattio/internal/telemetry"
)

// Redirector routes IO across N devices holding replicated data,
// keeping only an active subset spinning/awake so the rest accumulate
// standby time. Reads and writes go to the least-loaded active replica;
// standby replicas are resynchronized on activation (modeled as
// instantaneous, as SRCMap's background sync is off the data path).
//
// Replicas can drop out (a fault-injected brownout, a pulled drive);
// the redirector routes around unhealthy replicas (device.Healthy) and
// drains load back naturally once they recover, since selection is by
// current outstanding depth.
//
// Redirector implements device.Device so workloads and measurement rigs
// compose with it; power-control methods act on the ensemble.
type Redirector struct {
	name        string
	devs        []device.Device
	active      []bool
	outstanding []int
	completed   []int

	// WakesOnDemand counts IOs that arrived when no replica was
	// active and forced a wake — QoS violations in SRCMap terms.
	WakesOnDemand int
	// Failovers counts IOs routed away from an active replica because
	// it was unhealthy at submission time.
	Failovers int

	cFailovers *telemetry.Counter
}

// NewRedirector builds a redirector over replicas of equal capacity,
// with the first k devices active and the rest in standby.
func NewRedirector(name string, devs []device.Device, k int) (*Redirector, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("adaptive: redirector needs devices")
	}
	if k < 1 || k > len(devs) {
		return nil, fmt.Errorf("adaptive: active count %d out of [1, %d]", k, len(devs))
	}
	cap0 := devs[0].CapacityBytes()
	for _, d := range devs[1:] {
		if d.CapacityBytes() != cap0 {
			return nil, fmt.Errorf("adaptive: replica capacities differ (%d vs %d)", d.CapacityBytes(), cap0)
		}
	}
	r := &Redirector{
		name:        name,
		devs:        devs,
		active:      make([]bool, len(devs)),
		outstanding: make([]int, len(devs)),
		completed:   make([]int, len(devs)),

		cFailovers: telemetry.Default().Counter("redirect_failovers_total"),
	}
	for i := range devs {
		r.active[i] = i < k
	}
	return r, r.applyStandby()
}

// applyStandby drives every replica toward its active/standby target.
// It keeps going past per-replica failures (a dropped replica cannot be
// woken, but that must not strand its siblings) and returns the joined
// errors; the active-set bookkeeping stands regardless, so a failed
// replica rejoins when it recovers and the next transition retries it.
func (r *Redirector) applyStandby() error {
	var errs []error
	for i, d := range r.devs {
		if r.active[i] {
			if err := d.Wake(); err != nil && err != device.ErrNotSupported {
				errs = append(errs, fmt.Errorf("adaptive: waking %s: %w", d.Name(), err))
			}
		} else {
			if err := d.EnterStandby(); err != nil && err != device.ErrNotSupported {
				errs = append(errs, fmt.Errorf("adaptive: standing down %s: %w", d.Name(), err))
			}
		}
	}
	return errors.Join(errs...)
}

// SetActive resizes the active set to k replicas, waking or standing
// down devices at the set boundary.
func (r *Redirector) SetActive(k int) error {
	if k < 1 || k > len(r.devs) {
		return fmt.Errorf("adaptive: active count %d out of [1, %d]", k, len(r.devs))
	}
	for i := range r.devs {
		r.active[i] = i < k
	}
	return r.applyStandby()
}

// ActiveCount returns the size of the active set.
func (r *Redirector) ActiveCount() int {
	n := 0
	for _, a := range r.active {
		if a {
			n++
		}
	}
	return n
}

// Devices returns the managed replicas.
func (r *Redirector) Devices() []device.Device { return r.devs }

// pick returns the least-loaded healthy active replica index, and
// whether an unhealthy active replica had to be skipped to find it.
// It returns -1 if no active replica is healthy.
func (r *Redirector) pick() (best int, skippedUnhealthy bool) {
	best = -1
	for i := range r.devs {
		if !r.active[i] {
			continue
		}
		if !device.Healthy(r.devs[i]) {
			skippedUnhealthy = true
			continue
		}
		if best < 0 || r.outstanding[i] < r.outstanding[best] {
			best = i
		}
	}
	return best, skippedUnhealthy
}

// Submit implements device.Device: the request goes to the least-loaded
// healthy active replica, failing over past dropped replicas. If no
// active replica is available, a healthy standby replica is woken on
// demand and the wake is counted; if every replica is unhealthy the
// least-loaded one takes the IO anyway (it stalls there until the
// replica recovers — the data exists nowhere else).
func (r *Redirector) Submit(req device.Request, done func()) {
	i, skipped := r.pick()
	if i < 0 {
		r.WakesOnDemand++
		for j := range r.devs {
			if device.Healthy(r.devs[j]) && (i < 0 || r.outstanding[j] < r.outstanding[i]) {
				i = j
			}
		}
		if i < 0 {
			// Total outage: park the IO on the least-loaded replica.
			for j := range r.devs {
				if i < 0 || r.outstanding[j] < r.outstanding[i] {
					i = j
				}
			}
		}
	}
	if skipped {
		r.Failovers++
		r.cFailovers.Inc()
	}
	r.outstanding[i]++
	r.devs[i].Submit(req, func() {
		r.outstanding[i]--
		r.completed[i]++
		done()
	})
}

// CompletedByReplica returns per-replica completion counts, indexed
// like Devices(). Chaos experiments use the deltas to show load
// draining back onto a recovered replica.
func (r *Redirector) CompletedByReplica() []int {
	out := make([]int, len(r.completed))
	copy(out, r.completed)
	return out
}

// Name implements device.Device.
func (r *Redirector) Name() string { return r.name }

// Model implements device.Device.
func (r *Redirector) Model() string { return fmt.Sprintf("redirector over %d replicas", len(r.devs)) }

// Protocol implements device.Device; it reports the replicas' protocol.
func (r *Redirector) Protocol() device.Protocol { return r.devs[0].Protocol() }

// CapacityBytes implements device.Device: the logical capacity is one
// replica's (the data is mirrored).
func (r *Redirector) CapacityBytes() int64 { return r.devs[0].CapacityBytes() }

// InstantPower implements device.Device as the ensemble total.
func (r *Redirector) InstantPower() float64 {
	var sum float64
	for _, d := range r.devs {
		sum += d.InstantPower()
	}
	return sum
}

// EnergyJ implements device.Device as the ensemble total.
func (r *Redirector) EnergyJ() float64 {
	var sum float64
	for _, d := range r.devs {
		sum += d.EnergyJ()
	}
	return sum
}

// PowerStates implements device.Device; the ensemble exposes no
// NVMe-style states (use SetActive for coarse control).
func (r *Redirector) PowerStates() []device.PowerState { return nil }

// SetPowerState implements device.Device.
func (r *Redirector) SetPowerState(int) error { return device.ErrNotSupported }

// PowerStateIndex implements device.Device.
func (r *Redirector) PowerStateIndex() int { return 0 }

// EnterStandby implements device.Device by standing down every replica.
func (r *Redirector) EnterStandby() error {
	for i := range r.active {
		r.active[i] = false
	}
	return r.applyStandby()
}

// Wake implements device.Device by restoring one active replica.
func (r *Redirector) Wake() error { return r.SetActive(1) }

// Standby implements device.Device: true when no replica is active.
func (r *Redirector) Standby() bool { return r.ActiveCount() == 0 }

// Settled implements device.Device: true when every replica's standby
// or wake transition has finished.
func (r *Redirector) Settled() bool {
	for _, d := range r.devs {
		if !d.Settled() {
			return false
		}
	}
	return true
}

var _ device.Device = (*Redirector)(nil)
