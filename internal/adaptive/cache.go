package adaptive

import (
	"container/list"
	"fmt"

	"wattio/internal/device"
)

// ReadCache is the paper's §4 "power-aware caching and prefetching may
// mask read latencies for data stored on standby devices (cf. EXCES)":
// an LRU block cache on a fast device that absorbs reads for a slow
// device, extending the slow device's standby residency. Writes
// invalidate and pass through (the TierManager handles write
// absorption; composing both gives the full EXCES behavior).
type ReadCache struct {
	fast, slow device.Device

	blockSize int64
	base      int64 // cache region start on the fast device
	slots     int64 // number of block slots

	lru     *list.List              // front = most recent; values are *cacheEntry
	byBlock map[int64]*list.Element // slow-device block index → entry
	bySlot  map[int64]struct{}      // allocated slots (for invariants)
	free    []int64                 // free slot indices
	fills   map[int64][]*fill       // miss fills in flight per block

	// Hits and Misses count read lookups; Saves counts reads served
	// while the slow device was in standby (wakes avoided).
	Hits, Misses, Saves int
	// DroppedFills counts miss fills abandoned because a write
	// invalidated the block while the slow read was in flight —
	// inserting those would serve stale data forever.
	DroppedFills int
}

// fill tracks one in-flight miss fill so a write that lands between
// the slow read's submission and its completion can cancel the insert.
type fill struct {
	canceled bool
}

type cacheEntry struct {
	block int64 // slow-device block index
	slot  int64 // fast-device slot index
}

// NewReadCache builds a cache of capacityBytes on the fast device
// starting at base, caching blockSize-aligned blocks of the slow
// device.
func NewReadCache(fast, slow device.Device, base, capacityBytes, blockSize int64) (*ReadCache, error) {
	switch {
	case blockSize <= 0 || blockSize%512 != 0:
		return nil, fmt.Errorf("adaptive: cache block size %d invalid", blockSize)
	case capacityBytes < blockSize:
		return nil, fmt.Errorf("adaptive: cache capacity %d below one block", capacityBytes)
	case base < 0 || base+capacityBytes > fast.CapacityBytes():
		return nil, fmt.Errorf("adaptive: cache region outside fast device")
	}
	c := &ReadCache{
		fast: fast, slow: slow,
		blockSize: blockSize,
		base:      base,
		slots:     capacityBytes / blockSize,
		lru:       list.New(),
		byBlock:   map[int64]*list.Element{},
		bySlot:    map[int64]struct{}{},
		fills:     map[int64][]*fill{},
	}
	for s := c.slots - 1; s >= 0; s-- {
		c.free = append(c.free, s)
	}
	return c, nil
}

// Submit serves one request. Reads that hit go to the fast device;
// misses go to the slow device (waking it if needed) and are then
// inserted. Writes invalidate overlapping blocks and pass through to
// the slow device.
//
// Only requests that fit entirely inside one cache block are cacheable;
// others bypass. Callers wanting full coverage issue block-aligned IO.
func (c *ReadCache) Submit(req device.Request, done func()) {
	if err := req.Validate(c.slow.CapacityBytes()); err != nil {
		panic(fmt.Sprintf("adaptive: cache: %v", err))
	}
	block := req.Offset / c.blockSize
	spansOne := (req.Offset+req.Size-1)/c.blockSize == block

	if req.Op == device.OpWrite {
		// Invalidate every overlapped block, then write through. Miss
		// fills in flight for an overlapped block are canceled too:
		// their slow read snapshotted pre-write data, and inserting it
		// at completion would serve stale reads from then on.
		last := (req.Offset + req.Size - 1) / c.blockSize
		for b := block; b <= last; b++ {
			if el, ok := c.byBlock[b]; ok {
				c.evict(el)
			}
			for _, f := range c.fills[b] {
				f.canceled = true
			}
		}
		c.slow.Submit(req, done)
		return
	}

	if !spansOne {
		c.slow.Submit(req, done)
		return
	}
	if el, ok := c.byBlock[block]; ok {
		c.Hits++
		if c.slow.Standby() {
			c.Saves++
		}
		c.lru.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		off := c.base + e.slot*c.blockSize + (req.Offset - block*c.blockSize)
		c.fast.Submit(device.Request{Op: device.OpRead, Offset: off, Size: req.Size}, done)
		return
	}
	c.Misses++
	// Miss: read the whole block from the slow device (waking it), copy
	// it into a slot, and complete the caller after the slow read —
	// the insert write proceeds in the background.
	blockReq := device.Request{Op: device.OpRead, Offset: block * c.blockSize, Size: c.blockSize}
	if blockReq.Offset+blockReq.Size > c.slow.CapacityBytes() {
		c.slow.Submit(req, done) // tail block; don't cache
		return
	}
	f := &fill{}
	c.fills[block] = append(c.fills[block], f)
	c.slow.Submit(blockReq, func() {
		c.removeFill(block, f)
		if f.canceled {
			c.DroppedFills++
			done()
			return
		}
		slot := c.allocate(block)
		c.fast.Submit(device.Request{Op: device.OpWrite, Offset: c.base + slot*c.blockSize, Size: c.blockSize}, func() {})
		done()
	})
}

// removeFill drops one completed fill token from the block's in-flight
// list.
func (c *ReadCache) removeFill(block int64, f *fill) {
	fs := c.fills[block]
	for i, v := range fs {
		if v == f {
			fs = append(fs[:i], fs[i+1:]...)
			break
		}
	}
	if len(fs) == 0 {
		delete(c.fills, block)
	} else {
		c.fills[block] = fs
	}
}

// allocate finds a slot for block, evicting the LRU entry if full.
func (c *ReadCache) allocate(block int64) int64 {
	if el, ok := c.byBlock[block]; ok {
		// A concurrent miss already inserted it.
		c.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).slot
	}
	if len(c.free) == 0 {
		c.evict(c.lru.Back())
	}
	slot := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	e := &cacheEntry{block: block, slot: slot}
	c.byBlock[block] = c.lru.PushFront(e)
	c.bySlot[slot] = struct{}{}
	return slot
}

func (c *ReadCache) evict(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.byBlock, e.block)
	delete(c.bySlot, e.slot)
	c.free = append(c.free, e.slot)
}

// Len returns the number of cached blocks.
func (c *ReadCache) Len() int { return c.lru.Len() }

// HitRate returns hits/(hits+misses), or 0 with no lookups.
func (c *ReadCache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}
