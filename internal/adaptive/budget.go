package adaptive

import (
	"fmt"
	"sort"

	"wattio/internal/core"
	"wattio/internal/device"
	"wattio/internal/telemetry"
)

// BudgetController turns a fleet-wide power budget into concrete device
// settings using the power-throughput models the measurement study
// produces (§3.3, §4: "using SLOs and power budgets as inputs").
//
// Power states it applies directly; IO shapes it cannot force on
// applications, so the chosen assignment doubles as the IO-shaping
// advice the storage scheduler should enforce.
//
// A device can refuse its power-state command (a faulted controller, a
// browned-out link — §4.1's local control failures). The controller
// compensates: the refusing device is assumed stuck at its current
// state's worst-case draw, that draw is reserved out of the budget,
// and the remaining devices are re-planned under the tightened
// remainder so the fleet total still fits.
type BudgetController struct {
	fleet *core.Fleet
	devs  map[string]device.Device

	// Compensations counts Apply passes that had to re-plan around a
	// refusing device; LastStuck lists the devices the most recent
	// Apply found stuck (sorted by name).
	Compensations int
	LastStuck     []string

	cComp *telemetry.Counter
}

// NewBudgetController binds models to the live devices they describe.
// Every model must have a device and vice versa.
func NewBudgetController(fleet *core.Fleet, devs []device.Device) (*BudgetController, error) {
	byName := make(map[string]device.Device, len(devs))
	for _, d := range devs {
		byName[d.Name()] = d
	}
	for _, m := range fleet.Models() {
		if _, ok := byName[m.Device()]; !ok {
			return nil, fmt.Errorf("adaptive: model %s has no live device", m.Device())
		}
	}
	if len(byName) != len(fleet.Models()) {
		return nil, fmt.Errorf("adaptive: %d devices but %d models", len(byName), len(fleet.Models()))
	}
	return &BudgetController{
		fleet: fleet,
		devs:  byName,

		cComp: telemetry.Default().Counter("budget_compensations_total"),
	}, nil
}

// Apply selects the highest-throughput assignment under budgetW and
// applies each device's power state. Devices that refuse the command
// are treated as stuck at their current state: their worst-case draw
// is reserved from the budget and the rest of the fleet is re-planned
// under the remainder. It returns the final assignment — including the
// stuck devices at their assumed operating points — so the IO
// scheduler can apply the chunk/depth advice.
func (c *BudgetController) Apply(budgetW float64) (core.Assignment, error) {
	stuck := map[string]core.Sample{}
	c.LastStuck = nil
	// Each pass either succeeds or sticks at least one more device, so
	// len(devs) passes bound the loop.
	for pass := 0; pass <= len(c.devs); pass++ {
		var reservedW float64
		var free []*core.Model
		for _, m := range c.fleet.Models() {
			if s, isStuck := stuck[m.Device()]; isStuck {
				reservedW += s.PowerW
			} else {
				free = append(free, m)
			}
		}

		a := core.Assignment{Configs: map[string]core.Sample{}}
		if len(free) > 0 {
			// With nothing stuck the free set is the whole fleet: query
			// the long-lived Fleet so its cached frontier serves every
			// re-plan instead of rebuilding the merge per Apply.
			sub := c.fleet
			if len(stuck) > 0 {
				var err error
				if sub, err = core.NewFleet(free...); err != nil {
					return core.Assignment{}, err
				}
			}
			got, ok := sub.BestUnderPower(budgetW - reservedW)
			if !ok {
				return core.Assignment{}, fmt.Errorf(
					"adaptive: no fleet assignment fits %.2f W (%.2f W reserved for %d stuck devices)",
					budgetW, reservedW, len(stuck))
			}
			a = got
		}

		// Apply in sorted order so side effects are deterministic.
		names := make([]string, 0, len(a.Configs))
		for name := range a.Configs {
			names = append(names, name)
		}
		sort.Strings(names)
		failed := false
		for _, name := range names {
			dev := c.devs[name]
			if len(dev.PowerStates()) == 0 {
				continue // no host-selectable states (SATA SSD, HDD)
			}
			if err := dev.SetPowerState(a.Configs[name].PowerState); err != nil {
				stuck[name] = c.stuckEstimate(name)
				failed = true
			}
		}
		if failed {
			c.Compensations++
			c.cComp.Inc()
			continue
		}

		for name, s := range stuck {
			a.Configs[name] = s
			a.TotalPowerW += s.PowerW
			a.TotalMBps += s.ThroughputMBps
			c.LastStuck = append(c.LastStuck, name)
		}
		sort.Strings(c.LastStuck)
		return a, nil
	}
	return core.Assignment{}, fmt.Errorf("adaptive: budget apply did not converge over %d devices", len(c.devs))
}

// stuckEstimate returns the worst-case operating point of a device
// refusing to change state: the highest-power model sample at the
// power state it is stuck in, falling back to the model's overall
// highest-power sample if that state was never measured.
func (c *BudgetController) stuckEstimate(name string) core.Sample {
	ps := c.devs[name].PowerStateIndex()
	var model *core.Model
	for _, m := range c.fleet.Models() {
		if m.Device() == name {
			model = m
			break
		}
	}
	var best core.Sample
	found := false
	for _, s := range model.Samples() {
		if s.PowerState == ps && (!found || s.PowerW > best.PowerW) {
			best, found = s, true
		}
	}
	if found {
		return best
	}
	for _, s := range model.Samples() {
		if !found || s.PowerW > best.PowerW {
			best, found = s, true
		}
	}
	return best
}

// Headroom reports the measured instantaneous draw against a budget.
// Negative headroom means the fleet is over budget right now — the
// signal the paper's §4.1 safety discussion keys rollout decisions on.
func (c *BudgetController) Headroom(budgetW float64) float64 {
	var sum float64
	for _, d := range c.devs {
		sum += d.InstantPower()
	}
	return budgetW - sum
}
