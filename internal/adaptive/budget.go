package adaptive

import (
	"fmt"

	"wattio/internal/core"
	"wattio/internal/device"
)

// BudgetController turns a fleet-wide power budget into concrete device
// settings using the power-throughput models the measurement study
// produces (§3.3, §4: "using SLOs and power budgets as inputs").
//
// Power states it applies directly; IO shapes it cannot force on
// applications, so the chosen assignment doubles as the IO-shaping
// advice the storage scheduler should enforce.
type BudgetController struct {
	fleet *core.Fleet
	devs  map[string]device.Device
}

// NewBudgetController binds models to the live devices they describe.
// Every model must have a device and vice versa.
func NewBudgetController(fleet *core.Fleet, devs []device.Device) (*BudgetController, error) {
	byName := make(map[string]device.Device, len(devs))
	for _, d := range devs {
		byName[d.Name()] = d
	}
	for _, m := range fleet.Models() {
		if _, ok := byName[m.Device()]; !ok {
			return nil, fmt.Errorf("adaptive: model %s has no live device", m.Device())
		}
	}
	if len(byName) != len(fleet.Models()) {
		return nil, fmt.Errorf("adaptive: %d devices but %d models", len(byName), len(fleet.Models()))
	}
	return &BudgetController{fleet: fleet, devs: byName}, nil
}

// Apply selects the highest-throughput assignment under budgetW and
// applies each device's power state. It returns the assignment so the
// IO scheduler can apply the chunk/depth advice.
func (c *BudgetController) Apply(budgetW float64) (core.Assignment, error) {
	a, ok := c.fleet.BestUnderPower(budgetW)
	if !ok {
		return core.Assignment{}, fmt.Errorf("adaptive: no fleet assignment fits %.2f W", budgetW)
	}
	for name, s := range a.Configs {
		dev := c.devs[name]
		if len(dev.PowerStates()) == 0 {
			continue // no host-selectable states (SATA SSD, HDD)
		}
		if err := dev.SetPowerState(s.PowerState); err != nil {
			return core.Assignment{}, fmt.Errorf("adaptive: applying ps%d to %s: %w", s.PowerState, name, err)
		}
	}
	return a, nil
}

// Headroom reports the measured instantaneous draw against a budget.
// Negative headroom means the fleet is over budget right now — the
// signal the paper's §4.1 safety discussion keys rollout decisions on.
func (c *BudgetController) Headroom(budgetW float64) float64 {
	var sum float64
	for _, d := range c.devs {
		sum += d.InstantPower()
	}
	return budgetW - sum
}
