package adaptive

import (
	"testing"
	"time"

	"wattio/internal/catalog"
	"wattio/internal/core"
	"wattio/internal/device"
	"wattio/internal/fault"
	"wattio/internal/sim"
	"wattio/internal/workload"
)

func TestGovernorRetriesThroughCmdFaults(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(23)
	inner := catalog.NewSSD2(eng, rng.Stream("dev"))
	// The window end (520 ms) is off the 100 ms control grid, so the
	// transition that finally lands must come from a backed-off retry,
	// not a co-timed control tick.
	dev := fault.MustNew(inner, eng, nil, fault.Profile{Windows: []fault.Window{
		{Kind: fault.PowerCmdFail, Start: 0, Dur: 520 * time.Millisecond},
	}})
	g, err := NewGovernor(eng, dev, 11, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	res := workload.Run(eng, dev, workload.Job{
		Op: device.OpWrite, Pattern: workload.Rand, BS: 256 << 10, Depth: 64,
		Runtime: 2 * time.Second, TotalBytes: 8 << 30,
	}, rng.Stream("wl"))
	g.Stop()
	if res.IOs == 0 {
		t.Fatal("no IO")
	}
	if g.Failures == 0 {
		t.Error("governor saw no command failures despite the fault window")
	}
	if g.Retries == 0 {
		t.Error("governor never retried a failed transition")
	}
	if g.Steps == 0 {
		t.Error("no transition ever applied after the window lifted")
	}
	if inner.PowerStateIndex() != 2 {
		t.Errorf("device at ps%d after recovery, want ps2 (only ps2 caps below 11 W)",
			inner.PowerStateIndex())
	}
}

func TestGovernorSetBudgetRejectsNonPositive(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(23)
	dev := catalog.NewSSD2(eng, rng)
	g, err := NewGovernor(eng, dev, 11, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetBudget(0); err == nil {
		t.Error("zero budget accepted")
	}
	if err := g.SetBudget(-3); err == nil {
		t.Error("negative budget accepted")
	}
	if g.Budget() != 11 {
		t.Errorf("rejected SetBudget still changed the budget to %v", g.Budget())
	}
	if err := g.SetBudget(9); err != nil {
		t.Errorf("valid budget rejected: %v", err)
	}
	if g.Budget() != 9 {
		t.Errorf("budget = %v, want 9", g.Budget())
	}
}

func TestGovernorZeroElapsedTickIsNoop(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(23)
	dev := catalog.NewSSD2(eng, rng)
	g, err := NewGovernor(eng, dev, 11, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	// A control step co-timed with Start has zero elapsed time; the
	// average-power division would be NaN/Inf. It must be skipped.
	g.control()
	if g.Overs != 0 || g.Steps != 0 {
		t.Errorf("zero-elapsed tick acted: overs=%d steps=%d", g.Overs, g.Steps)
	}
	g.Stop()
}

func TestRedirectorFailsOverAndDrainsBack(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(31)
	const dropStart, dropEnd = 500 * time.Millisecond, 800 * time.Millisecond
	r0 := fault.MustNew(catalog.NewEVO(eng, rng.Stream("r0")), eng, nil, fault.Profile{
		Windows: []fault.Window{{Kind: fault.Dropout, Start: dropStart, Dur: dropEnd - dropStart}},
	})
	r1 := catalog.NewEVO(eng, rng.Stream("r1"))
	r2 := catalog.NewEVO(eng, rng.Stream("r2"))
	r, err := NewRedirector("mirror", []device.Device{r0, r1, r2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var atStart, atEnd []int
	eng.Schedule(dropStart, func() { atStart = r.CompletedByReplica() })
	eng.Schedule(dropEnd, func() { atEnd = r.CompletedByReplica() })
	workload.Run(eng, r, workload.Job{
		Op: device.OpRead, Pattern: workload.Rand, BS: 4 << 10,
		Arrival: workload.OpenPoisson, RateIOPS: 3000, Runtime: 1500 * time.Millisecond,
	}, rng.Stream("wl"))
	final := r.CompletedByReplica()

	if r.Failovers == 0 {
		t.Error("no failovers despite replica 0 dropping out under load")
	}
	if atStart[0] == 0 {
		t.Error("replica 0 served nothing before the dropout")
	}
	// Only IOs already in flight at drop start may land on replica 0
	// inside the window.
	if during := atEnd[0] - atStart[0]; during > 8 {
		t.Errorf("replica 0 completed %d IOs during its dropout window", during)
	}
	if after := final[0] - atEnd[0]; after == 0 {
		t.Error("no load drained back onto replica 0 after recovery")
	}
}

func TestRedirectorTotalOutageParksIO(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(31)
	const winStart, winEnd = 10 * time.Millisecond, 60 * time.Millisecond
	r0 := fault.MustNew(catalog.NewEVO(eng, rng.Stream("r0")), eng, nil, fault.Profile{
		Windows: []fault.Window{{Kind: fault.Dropout, Start: winStart, Dur: winEnd - winStart}},
	})
	r, err := NewRedirector("solo", []device.Device{r0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(20 * time.Millisecond) // inside the outage
	done := false
	r.Submit(device.Request{Op: device.OpRead, Offset: 0, Size: 4096}, func() { done = true })
	for !done && eng.Step() {
	}
	if !done {
		t.Fatal("parked IO never completed")
	}
	if eng.Now() < winEnd {
		t.Errorf("IO completed at %v, before the outage ended at %v", eng.Now(), winEnd)
	}
	if r.Failovers != 1 {
		t.Errorf("Failovers = %d, want 1", r.Failovers)
	}
	if r.WakesOnDemand != 1 {
		t.Errorf("WakesOnDemand = %d, want 1", r.WakesOnDemand)
	}
}

// budgetTestModels mirrors the chaos experiment's hand-calibrated
// two-device fleet: one sample per power state.
func budgetTestModels(t *testing.T) *core.Fleet {
	t.Helper()
	mk := func(dev string, ps int, w, mbps float64) core.Sample {
		return core.Sample{
			Config:         core.Config{Device: dev, PowerState: ps, Random: true, Write: true, ChunkBytes: 256 << 10, Depth: 64},
			PowerW:         w,
			ThroughputMBps: mbps,
		}
	}
	ssd1, err := core.NewModel("SSD1", []core.Sample{
		mk("SSD1", 0, 12.0, 3300), mk("SSD1", 1, 7.0, 2400), mk("SSD1", 2, 6.0, 2000),
	})
	if err != nil {
		t.Fatal(err)
	}
	ssd2, err := core.NewModel("SSD2", []core.Sample{
		mk("SSD2", 0, 14.8, 1100), mk("SSD2", 1, 11.5, 815), mk("SSD2", 2, 9.8, 605),
	})
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := core.NewFleet(ssd1, ssd2)
	if err != nil {
		t.Fatal(err)
	}
	return fleet
}

func TestBudgetControllerCompensatesForStuckDevice(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(41)
	ssd1 := catalog.NewSSD1(eng, rng.Stream("ssd1"))
	ssd2 := fault.MustNew(catalog.NewSSD2(eng, rng.Stream("ssd2")), eng, nil, fault.Profile{
		Windows: []fault.Window{{Kind: fault.PowerCmdFail, Start: 0, Dur: time.Second}},
	})
	bc, err := NewBudgetController(budgetTestModels(t), []device.Device{ssd1, ssd2})
	if err != nil {
		t.Fatal(err)
	}
	// Unconstrained best under 22 W is SSD1 ps0 + SSD2 ps2 (21.8 W).
	// SSD2 refuses, so its ps0 worst case (14.8 W) is reserved and
	// SSD1 must tighten to ps1 (7.0 W ≤ 7.2 W remaining).
	a, err := bc.Apply(22)
	if err != nil {
		t.Fatal(err)
	}
	if bc.Compensations != 1 {
		t.Errorf("Compensations = %d, want 1", bc.Compensations)
	}
	if len(bc.LastStuck) != 1 || bc.LastStuck[0] != "SSD2" {
		t.Errorf("LastStuck = %v, want [SSD2]", bc.LastStuck)
	}
	if ssd1.PowerStateIndex() != 1 {
		t.Errorf("SSD1 at ps%d, want ps1 (tightened around the stuck sibling)", ssd1.PowerStateIndex())
	}
	if ssd2.PowerStateIndex() != 0 {
		t.Errorf("stuck SSD2 moved to ps%d", ssd2.PowerStateIndex())
	}
	if a.Configs["SSD2"].PowerW != 14.8 {
		t.Errorf("stuck SSD2 assumed at %.1f W, want its ps0 worst case 14.8", a.Configs["SSD2"].PowerW)
	}
	if a.TotalPowerW > 22 {
		t.Errorf("final assignment %.2f W exceeds the 22 W budget", a.TotalPowerW)
	}
}

func TestBudgetControllerInfeasibleAfterStuck(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	rng := sim.NewRNG(41)
	ssd1 := catalog.NewSSD1(eng, rng.Stream("ssd1"))
	ssd2 := fault.MustNew(catalog.NewSSD2(eng, rng.Stream("ssd2")), eng, nil, fault.Profile{
		Windows: []fault.Window{{Kind: fault.PowerCmdFail, Start: 0, Dur: time.Second}},
	})
	bc, err := NewBudgetController(budgetTestModels(t), []device.Device{ssd1, ssd2})
	if err != nil {
		t.Fatal(err)
	}
	// 17 W fits SSD1 ps1 + SSD2 ps2, but once SSD2 sticks at its
	// 14.8 W worst case only 2.2 W remain — below SSD1's minimum.
	if _, err := bc.Apply(17); err == nil {
		t.Error("infeasible post-compensation budget accepted")
	}
	if bc.Compensations != 1 {
		t.Errorf("Compensations = %d, want 1", bc.Compensations)
	}
}

func TestRolloutQuarantine(t *testing.T) {
	t.Parallel()
	leaf := func(name string) *Domain { return &Domain{Name: name} }
	rack0 := &Domain{Name: "rack0", Children: []*Domain{leaf("a"), leaf("b"), leaf("c")}}
	rack1 := &Domain{Name: "rack1", Children: []*Domain{leaf("d"), leaf("e"), leaf("f")}}
	root := &Domain{Name: "dc", Children: []*Domain{rack0, rack1}}
	ro := NewRollout(root)

	staged := ro.Stage(2)
	if len(staged) != 2 {
		t.Fatalf("staged %d leaves, want 2", len(staged))
	}
	bad := staged[0]
	if err := ro.Quarantine(bad); err != nil {
		t.Fatal(err)
	}
	if !ro.Quarantined(bad) || ro.Enabled(bad) {
		t.Error("quarantined leaf still enabled or not marked")
	}
	if ro.QuarantinedCount() != 1 || ro.EnabledCount() != 1 {
		t.Errorf("counts quarantined/enabled = %d/%d, want 1/1",
			ro.QuarantinedCount(), ro.EnabledCount())
	}
	if err := ro.Quarantine(bad); err == nil {
		t.Error("quarantining a disabled leaf accepted")
	}

	// Later stages must not re-enable the quarantined leaf.
	for _, d := range ro.Stage(10) {
		if d == bad {
			t.Error("Stage re-enabled a quarantined leaf")
		}
	}
	if ro.EnabledCount() != 5 {
		t.Errorf("enabled = %d, want 5 (all but the quarantined leaf)", ro.EnabledCount())
	}

	// Reinstating returns it to the pending pool.
	if err := ro.Reinstate(bad); err != nil {
		t.Fatal(err)
	}
	if err := ro.Reinstate(bad); err == nil {
		t.Error("reinstating a non-quarantined leaf accepted")
	}
	if got := ro.Stage(10); len(got) != 1 || got[0] != bad {
		t.Errorf("post-reinstate Stage = %v, want just the reinstated leaf", got)
	}
}

func TestRolloutAuditAndQuarantine(t *testing.T) {
	t.Parallel()
	a, b := &Domain{Name: "a"}, &Domain{Name: "b"}
	root := &Domain{Name: "dc", Children: []*Domain{a, b}}
	ro := NewRollout(root)
	ro.Stage(2)
	power := map[*Domain]float64{a: 14.8, b: 10.1}
	failing := ro.AuditAndQuarantine(func(d *Domain) float64 { return power[d] }, 12)
	if len(failing) != 1 || failing[0] != a {
		t.Fatalf("audit quarantined %v, want [a]", failing)
	}
	if !ro.Quarantined(a) || ro.Quarantined(b) {
		t.Error("quarantine flags wrong after audit")
	}
	if ro.EnabledCount() != 1 {
		t.Errorf("enabled = %d after audit, want 1", ro.EnabledCount())
	}
}
