package sweep

import (
	"reflect"
	"testing"
	"time"

	"wattio/internal/detcheck"
	"wattio/internal/device"
	"wattio/internal/workload"
)

// TestRunDeterministicAcrossScheduling is the determinism regression
// test: the same grid must produce bit-identical points — every field,
// including full latency arrays — across repeat runs and across
// GOMAXPROCS 1, 4, and 8. Cells are independent engines with derived
// seeds, so host scheduling must never leak into results. The serving
// engine's serve.TestDeterministic asserts its half of the same
// contract through the same detcheck helper.
func TestRunDeterministicAcrossScheduling(t *testing.T) {
	// Deliberately not Parallel: detcheck pins GOMAXPROCS per run.
	spec := Spec{
		Device:      "SSD2",
		PowerStates: []int{0, 2},
		Ops:         []device.Op{device.OpWrite, device.OpRead},
		Patterns:    []workload.Pattern{workload.Rand},
		Chunks:      []int64{64 << 10, 1 << 20},
		Depths:      []int{8},
		Runtime:     500 * time.Millisecond,
		TotalBytes:  64 << 20,
		Seed:        23,
	}

	detcheck.Assert(t, func() ([]Point, error) { return Run(spec) }, detcheck.Config[[]Point]{
		Procs: []int{1, 4, 8},
		Diff:  diffPoints,
	})
}

// diffPoints narrows a DeepEqual failure down to the first divergent
// point and field so regressions are debuggable.
func diffPoints(t testing.TB, a, b []Point) {
	t.Helper()
	if len(a) != len(b) {
		t.Errorf("point counts: %d vs %d", len(a), len(b))
		return
	}
	for i := range a {
		if reflect.DeepEqual(a[i], b[i]) {
			continue
		}
		switch {
		case a[i].Config != b[i].Config:
			t.Errorf("point %d config: %+v vs %+v", i, a[i].Config, b[i].Config)
		case a[i].AvgPowerW != b[i].AvgPowerW:
			t.Errorf("point %d power: %v vs %v W", i, a[i].AvgPowerW, b[i].AvgPowerW)
		case !reflect.DeepEqual(a[i].Result, b[i].Result):
			t.Errorf("point %d result: IOs %d vs %d, p99 %v vs %v", i,
				a[i].Result.IOs, b[i].Result.IOs, a[i].Result.LatP99, b[i].Result.LatP99)
		default:
			t.Errorf("point %d differs (trace?)", i)
		}
		return
	}
}
