package sweep

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"wattio/internal/device"
	"wattio/internal/workload"
)

// TestRunDeterministicAcrossScheduling is the determinism regression
// test: the same grid must produce bit-identical points — every field,
// including full latency arrays — run twice at full parallelism and
// once pinned to a single CPU. Cells are independent engines with
// derived seeds, so host scheduling must never leak into results.
func TestRunDeterministicAcrossScheduling(t *testing.T) {
	// Deliberately not Parallel: it pins GOMAXPROCS for one run.
	spec := Spec{
		Device:      "SSD2",
		PowerStates: []int{0, 2},
		Ops:         []device.Op{device.OpWrite, device.OpRead},
		Patterns:    []workload.Pattern{workload.Rand},
		Chunks:      []int64{64 << 10, 1 << 20},
		Depths:      []int{8},
		Runtime:     500 * time.Millisecond,
		TotalBytes:  64 << 20,
		Seed:        23,
	}

	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	prev := runtime.GOMAXPROCS(1)
	c, runErr := Run(spec)
	runtime.GOMAXPROCS(prev)
	if runErr != nil {
		t.Fatal(runErr)
	}

	if !reflect.DeepEqual(a, b) {
		t.Error("identical runs differ")
		diffPoints(t, a, b)
	}
	if !reflect.DeepEqual(a, c) {
		t.Error("GOMAXPROCS=1 run differs from parallel run")
		diffPoints(t, a, c)
	}
}

// diffPoints narrows a DeepEqual failure down to the first divergent
// point and field so regressions are debuggable.
func diffPoints(t *testing.T, a, b []Point) {
	t.Helper()
	if len(a) != len(b) {
		t.Errorf("point counts: %d vs %d", len(a), len(b))
		return
	}
	for i := range a {
		if reflect.DeepEqual(a[i], b[i]) {
			continue
		}
		switch {
		case a[i].Config != b[i].Config:
			t.Errorf("point %d config: %+v vs %+v", i, a[i].Config, b[i].Config)
		case a[i].AvgPowerW != b[i].AvgPowerW:
			t.Errorf("point %d power: %v vs %v W", i, a[i].AvgPowerW, b[i].AvgPowerW)
		case !reflect.DeepEqual(a[i].Result, b[i].Result):
			t.Errorf("point %d result: IOs %d vs %d, p99 %v vs %v", i,
				a[i].Result.IOs, b[i].Result.IOs, a[i].Result.LatP99, b[i].Result.LatP99)
		default:
			t.Errorf("point %d differs (trace?)", i)
		}
		return
	}
}
