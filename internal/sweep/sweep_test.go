package sweep

import (
	"testing"
	"time"

	"wattio/internal/catalog"
	"wattio/internal/device"
	"wattio/internal/sim"
	"wattio/internal/workload"
)

// quickSpec returns a small grid that runs fast under `go test`.
func quickSpec(dev string) Spec {
	return Spec{
		Device:     dev,
		Chunks:     []int64{64 << 10, 1 << 20},
		Depths:     []int{1, 64},
		Runtime:    2 * time.Second,
		TotalBytes: 256 << 20,
		Seed:       11,
	}
}

func TestRunGridShape(t *testing.T) {
	pts, err := Run(quickSpec("SSD2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4 (2 chunks × 2 depths)", len(pts))
	}
	for _, p := range pts {
		if p.AvgPowerW < 5 || p.AvgPowerW > 16 {
			t.Errorf("%v: power %.2f W outside SSD2's plausible range", p.Config, p.AvgPowerW)
		}
		if p.Result.IOs == 0 {
			t.Errorf("%v: no IO completed", p.Config)
		}
		if p.Trace != nil {
			t.Errorf("%v: trace kept without KeepTrace", p.Config)
		}
	}
}

func TestRunKeepsTraceWhenAsked(t *testing.T) {
	spec := quickSpec("SSD1")
	spec.Chunks = []int64{256 << 10}
	spec.Depths = []int{64}
	spec.KeepTrace = true
	pts, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Trace == nil || pts[0].Trace.Len() == 0 {
		t.Fatal("trace missing")
	}
	// Rig power and trace mean must agree (same data).
	if pts[0].AvgPowerW != pts[0].Trace.Mean() {
		t.Error("AvgPowerW disagrees with trace mean")
	}
}

func TestRunReproducible(t *testing.T) {
	a, err := Run(quickSpec("SSD3"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickSpec("SSD3"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].AvgPowerW != b[i].AvgPowerW || a[i].Result.IOs != b[i].Result.IOs {
			t.Fatalf("point %d differs across identical runs", i)
		}
	}
}

func TestRunUnknownDevice(t *testing.T) {
	if _, err := Run(Spec{Device: "SSD9"}); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestRunBadPowerState(t *testing.T) {
	spec := quickSpec("SSD3") // SATA: no power states
	spec.PowerStates = []int{1}
	if _, err := Run(spec); err == nil {
		t.Fatal("power state on SATA SSD accepted")
	}
}

func TestPaperGrids(t *testing.T) {
	if got := len(PaperChunks()); got != 6 {
		t.Errorf("PaperChunks has %d entries, want 6", got)
	}
	if got := len(PaperDepths()); got != 6 {
		t.Errorf("PaperDepths has %d entries, want 6", got)
	}
	if PaperChunks()[0] != 4096 || PaperChunks()[5] != 2<<20 {
		t.Error("chunk endpoints wrong")
	}
	if PaperDepths()[0] != 1 || PaperDepths()[5] != 128 {
		t.Error("depth endpoints wrong")
	}
}

func TestRailFor(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	if got := RailFor(catalog.NewSSD2(eng, rng)); got != 12 {
		t.Errorf("NVMe rail = %v, want 12", got)
	}
	if got := RailFor(catalog.NewSSD3(eng, rng)); got != 5 {
		t.Errorf("SATA SSD rail = %v, want 5", got)
	}
	if got := RailFor(catalog.NewHDD(eng, rng)); got != 12 {
		t.Errorf("HDD rail = %v, want 12", got)
	}
}

func TestBuildModelSweepsPowerStates(t *testing.T) {
	m, err := BuildModel("SSD2", device.OpWrite, workload.Rand, 5, time.Second, 128<<20)
	if err != nil {
		t.Fatal(err)
	}
	// 6 chunks × 6 depths × 3 power states.
	if got := len(m.Samples()); got != 108 {
		t.Fatalf("model has %d samples, want 108", got)
	}
	seen := map[int]bool{}
	for _, s := range m.Samples() {
		seen[s.PowerState] = true
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Errorf("power states covered: %v, want 0,1,2", seen)
	}
}

func TestRecordsMatchPoints(t *testing.T) {
	pts, err := Run(quickSpec("SSD2"))
	if err != nil {
		t.Fatal(err)
	}
	recs := Records(pts)
	if len(recs) != len(pts) {
		t.Fatalf("Records len %d != %d", len(recs), len(pts))
	}
	for i, r := range recs {
		p := pts[i]
		if r.Device != p.Config.Device || r.PowerState != p.Config.PowerState ||
			r.ChunkBytes != p.Config.ChunkBytes || r.Depth != p.Config.Depth {
			t.Errorf("record %d config does not match point", i)
		}
		if r.IOs != p.Result.IOs || r.Bytes != p.Result.Bytes {
			t.Errorf("record %d counts do not match point", i)
		}
		// The record must carry exactly what a report would print: the
		// measured window, the rig mean, and their product as energy.
		if r.Seconds != p.Result.Elapsed.Seconds() || r.AvgPowerW != p.AvgPowerW {
			t.Errorf("record %d window/power diverges from point", i)
		}
		if r.EnergyJ != r.AvgPowerW*r.Seconds {
			t.Errorf("record %d energy %v != power×time", i, r.EnergyJ)
		}
		if r.EnergyJ <= 0 {
			t.Errorf("record %d has non-positive energy", i)
		}
	}
}

func TestIdleRecord(t *testing.T) {
	p, err := Idle("SSD2", 1, 500*time.Millisecond, 7)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Record()
	if r.IOs != 0 || r.Bytes != 0 {
		t.Fatalf("idle record has IO: %+v", r)
	}
	if r.PowerState != 1 {
		t.Fatalf("idle record power state %d, want 1", r.PowerState)
	}
	if r.Seconds != 0.5 {
		t.Fatalf("idle window %v s, want 0.5", r.Seconds)
	}
	if r.AvgPowerW <= 0 || r.AvgPowerW > 8 {
		t.Fatalf("idle draw %.2f W outside SSD2's plausible idle range", r.AvgPowerW)
	}
	// Loaded draw at the same state must measurably exceed idle draw.
	spec := quickSpec("SSD2")
	spec.PowerStates = []int{1}
	spec.Chunks = []int64{256 << 10}
	spec.Depths = []int{64}
	pts, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if loaded := pts[0].Record(); loaded.AvgPowerW <= r.AvgPowerW {
		t.Errorf("loaded draw %.2f W not above idle %.2f W", loaded.AvgPowerW, r.AvgPowerW)
	}
}

func TestIdleReproducible(t *testing.T) {
	a, err := Idle("HDD", 0, 300*time.Millisecond, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Idle("HDD", 0, 300*time.Millisecond, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgPowerW != b.AvgPowerW {
		t.Fatalf("idle measurement not reproducible: %v vs %v", a.AvgPowerW, b.AvgPowerW)
	}
}

func TestIdleRejectsBadInput(t *testing.T) {
	if _, err := Idle("SSD9", 0, time.Second, 1); err == nil {
		t.Error("unknown device accepted")
	}
	if _, err := Idle("SSD2", 7, time.Second, 1); err == nil {
		t.Error("out-of-range power state accepted")
	}
	if _, err := Idle("SSD2", 0, 0, 1); err == nil {
		t.Error("zero window accepted")
	}
}

func TestSamplesConversion(t *testing.T) {
	pts, err := Run(quickSpec("SSD3"))
	if err != nil {
		t.Fatal(err)
	}
	ss := Samples(pts)
	if len(ss) != len(pts) {
		t.Fatalf("Samples len %d != %d", len(ss), len(pts))
	}
	for i := range ss {
		if ss[i].PowerW != pts[i].AvgPowerW || ss[i].ThroughputMBps != pts[i].Result.BandwidthMBps {
			t.Errorf("sample %d does not match point", i)
		}
	}
}
