package sweep

import (
	"testing"
	"time"

	"wattio/internal/catalog"
	"wattio/internal/device"
	"wattio/internal/sim"
	"wattio/internal/workload"
)

// quickSpec returns a small grid that runs fast under `go test`.
func quickSpec(dev string) Spec {
	return Spec{
		Device:     dev,
		Chunks:     []int64{64 << 10, 1 << 20},
		Depths:     []int{1, 64},
		Runtime:    2 * time.Second,
		TotalBytes: 256 << 20,
		Seed:       11,
	}
}

func TestRunGridShape(t *testing.T) {
	pts, err := Run(quickSpec("SSD2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4 (2 chunks × 2 depths)", len(pts))
	}
	for _, p := range pts {
		if p.AvgPowerW < 5 || p.AvgPowerW > 16 {
			t.Errorf("%v: power %.2f W outside SSD2's plausible range", p.Config, p.AvgPowerW)
		}
		if p.Result.IOs == 0 {
			t.Errorf("%v: no IO completed", p.Config)
		}
		if p.Trace != nil {
			t.Errorf("%v: trace kept without KeepTrace", p.Config)
		}
	}
}

func TestRunKeepsTraceWhenAsked(t *testing.T) {
	spec := quickSpec("SSD1")
	spec.Chunks = []int64{256 << 10}
	spec.Depths = []int{64}
	spec.KeepTrace = true
	pts, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Trace == nil || pts[0].Trace.Len() == 0 {
		t.Fatal("trace missing")
	}
	// Rig power and trace mean must agree (same data).
	if pts[0].AvgPowerW != pts[0].Trace.Mean() {
		t.Error("AvgPowerW disagrees with trace mean")
	}
}

func TestRunReproducible(t *testing.T) {
	a, err := Run(quickSpec("SSD3"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickSpec("SSD3"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].AvgPowerW != b[i].AvgPowerW || a[i].Result.IOs != b[i].Result.IOs {
			t.Fatalf("point %d differs across identical runs", i)
		}
	}
}

func TestRunUnknownDevice(t *testing.T) {
	if _, err := Run(Spec{Device: "SSD9"}); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestRunBadPowerState(t *testing.T) {
	spec := quickSpec("SSD3") // SATA: no power states
	spec.PowerStates = []int{1}
	if _, err := Run(spec); err == nil {
		t.Fatal("power state on SATA SSD accepted")
	}
}

func TestPaperGrids(t *testing.T) {
	if got := len(PaperChunks()); got != 6 {
		t.Errorf("PaperChunks has %d entries, want 6", got)
	}
	if got := len(PaperDepths()); got != 6 {
		t.Errorf("PaperDepths has %d entries, want 6", got)
	}
	if PaperChunks()[0] != 4096 || PaperChunks()[5] != 2<<20 {
		t.Error("chunk endpoints wrong")
	}
	if PaperDepths()[0] != 1 || PaperDepths()[5] != 128 {
		t.Error("depth endpoints wrong")
	}
}

func TestRailFor(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	if got := RailFor(catalog.NewSSD2(eng, rng)); got != 12 {
		t.Errorf("NVMe rail = %v, want 12", got)
	}
	if got := RailFor(catalog.NewSSD3(eng, rng)); got != 5 {
		t.Errorf("SATA SSD rail = %v, want 5", got)
	}
	if got := RailFor(catalog.NewHDD(eng, rng)); got != 12 {
		t.Errorf("HDD rail = %v, want 12", got)
	}
}

func TestBuildModelSweepsPowerStates(t *testing.T) {
	m, err := BuildModel("SSD2", device.OpWrite, workload.Rand, 5, time.Second, 128<<20)
	if err != nil {
		t.Fatal(err)
	}
	// 6 chunks × 6 depths × 3 power states.
	if got := len(m.Samples()); got != 108 {
		t.Fatalf("model has %d samples, want 108", got)
	}
	seen := map[int]bool{}
	for _, s := range m.Samples() {
		seen[s.PowerState] = true
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Errorf("power states covered: %v, want 0,1,2", seen)
	}
}

func TestSamplesConversion(t *testing.T) {
	pts, err := Run(quickSpec("SSD3"))
	if err != nil {
		t.Fatal(err)
	}
	ss := Samples(pts)
	if len(ss) != len(pts) {
		t.Fatalf("Samples len %d != %d", len(ss), len(pts))
	}
	for i := range ss {
		if ss[i].PowerW != pts[i].AvgPowerW || ss[i].ThroughputMBps != pts[i].Result.BandwidthMBps {
			t.Errorf("sample %d does not match point", i)
		}
	}
}
