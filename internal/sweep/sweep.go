// Package sweep runs measurement-study experiment grids: for each
// combination of device, power state, and IO shape it builds a fresh
// simulated testbed (device + measurement rig + workload generator),
// runs the paper's 4 GiB-or-60 s experiment, and reports the operating
// point with power measured through the instrumented rig — not read
// from the simulator's bookkeeping — so measurement error is part of
// every reported number, as it was in the paper.
package sweep

import (
	"fmt"
	"runtime"
	"time"

	"wattio/internal/catalog"
	"wattio/internal/core"
	"wattio/internal/device"
	"wattio/internal/grid"
	"wattio/internal/hdd"
	"wattio/internal/measure"
	"wattio/internal/sim"
	"wattio/internal/telemetry"
	"wattio/internal/trace"
	"wattio/internal/workload"
)

// Point is one completed experiment: the configuration, the workload
// result, and the rig-measured power trace over the run.
type Point struct {
	Config    core.Config
	Result    workload.Result
	AvgPowerW float64
	Trace     *trace.PowerTrace
}

// Sample converts the point to a model sample.
func (p Point) Sample() core.Sample {
	return core.Sample{
		Config:         p.Config,
		PowerW:         p.AvgPowerW,
		ThroughputMBps: p.Result.BandwidthMBps,
		AvgLat:         p.Result.LatAvg,
		P99Lat:         p.Result.LatP99,
	}
}

// Spec describes one experiment grid on one device. Zero-valued slice
// fields default to a single natural element.
type Spec struct {
	Device      string
	PowerStates []int // nil → {0}
	Ops         []device.Op
	Patterns    []workload.Pattern
	Chunks      []int64
	Depths      []int

	// Runtime and TotalBytes bound each experiment; zero values take
	// the paper's defaults (60 s, 4 GiB).
	Runtime    time.Duration
	TotalBytes int64
	// Warmup, when positive, drives each cell's job shape for this
	// duration before the rig starts sampling, so the measured window
	// sees steady state — a full write-back cache, saturated power-state
	// regulator windows — instead of cold-start transients. Zero keeps
	// the historical cold-start measurement.
	Warmup time.Duration
	// Span restricts the offset range; 0 means the whole device.
	Span int64
	// Seed makes the grid reproducible.
	Seed uint64
	// KeepTrace retains each point's full power trace (memory-heavy;
	// Fig. 2 needs it, Fig. 8 does not).
	KeepTrace bool
}

func (s *Spec) defaults() {
	if len(s.PowerStates) == 0 {
		s.PowerStates = []int{0}
	}
	if len(s.Ops) == 0 {
		s.Ops = []device.Op{device.OpWrite}
	}
	if len(s.Patterns) == 0 {
		s.Patterns = []workload.Pattern{workload.Rand}
	}
	if len(s.Chunks) == 0 {
		s.Chunks = []int64{256 * 1024}
	}
	if len(s.Depths) == 0 {
		s.Depths = []int{64}
	}
	if s.Runtime == 0 {
		s.Runtime = time.Minute
	}
	if s.TotalBytes == 0 {
		s.TotalBytes = 4 << 30
	}
}

// PaperChunks are the six chunk sizes the paper sweeps (4 KiB-2 MiB).
func PaperChunks() []int64 {
	return []int64{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 2 << 20}
}

// PaperDepths are the six IO depths the paper sweeps (1-128).
func PaperDepths() []int {
	return []int{1, 4, 8, 32, 64, 128}
}

// RailFor returns the supply rail the rig instruments for a device: the
// 12 V riser/peripheral rail for NVMe devices and HDD spindle motors,
// 5 V for SATA SSDs.
func RailFor(d device.Device) float64 {
	if _, isHDD := d.(*hdd.HDD); isHDD {
		return 12
	}
	if d.Protocol() == device.SATA {
		return 5
	}
	return 12
}

// cell is one grid coordinate.
type cell struct {
	ps    int
	op    device.Op
	pat   workload.Pattern
	chunk int64
	depth int
}

// Run executes the grid and returns one point per combination, in
// (power state, op, pattern, chunk, depth) nesting order — the
// lexicographic coordinate order of internal/grid, which enumerates and
// schedules the cells. Cells are independent simulations (each gets a
// fresh engine, device, and rig), so they run in parallel across CPUs;
// results land in fixed index slots and are deterministic and
// order-stable regardless of scheduling.
func Run(spec Spec) ([]Point, error) {
	spec.defaults()
	coords := grid.Coords([]int{
		len(spec.PowerStates), len(spec.Ops), len(spec.Patterns), len(spec.Chunks), len(spec.Depths),
	})
	cells := make([]cell, len(coords))
	for i, c := range coords {
		cells[i] = cell{
			ps:    spec.PowerStates[c[0]],
			op:    spec.Ops[c[1]],
			pat:   spec.Patterns[c[2]],
			chunk: spec.Chunks[c[3]],
			depth: spec.Depths[c[4]],
		}
	}
	out := make([]Point, len(cells))
	errs := make([]error, len(cells))
	workers := runtime.NumCPU()
	if workers > len(cells) {
		workers = len(cells)
	}

	// Grid-level metrics go to the process-default registry: cells are
	// independent engines, so the harness itself is the only place that
	// sees worker scheduling. Host wall-clock feeds only metrics here,
	// never results. busy_host_ns / (workers × elapsed) is utilization.
	reg := telemetry.Default()
	cCells := reg.Counter("sweep_cells_completed_total")
	cBusy := reg.Counter("sweep_busy_host_ns_total")
	reg.Gauge("sweep_workers").Set(int64(workers))

	grid.Pool(len(cells), workers, func(i int) {
		c := cells[i]
		cellStart := time.Now()
		out[i], errs[i] = runOne(spec, c.ps, c.op, c.pat, c.chunk, c.depth)
		cBusy.Add(time.Since(cellStart).Nanoseconds())
		cCells.Inc()
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runOne builds a fresh testbed and runs a single experiment.
func runOne(spec Spec, ps int, op device.Op, pat workload.Pattern, chunk int64, depth int) (Point, error) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(spec.Seed ^ hashConfig(ps, op, pat, chunk, depth))
	dev, ok := catalog.ByName(spec.Device, eng, rng)
	if !ok {
		return Point{}, fmt.Errorf("sweep: unknown device %q", spec.Device)
	}
	if ps != 0 {
		if err := dev.SetPowerState(ps); err != nil {
			return Point{}, fmt.Errorf("sweep: %s ps%d: %w", spec.Device, ps, err)
		}
	}
	rig, err := measure.NewRig(eng, rng, dev, measure.DefaultRigConfig(RailFor(dev)))
	if err != nil {
		return Point{}, err
	}
	if spec.Warmup > 0 {
		// Same job shape, unmeasured, on a derived stream so the
		// measured run draws the same offsets as a cold-start cell.
		workload.Run(eng, dev, workload.Job{
			Op: op, Pattern: pat, BS: chunk, Depth: depth,
			Runtime: spec.Warmup, Span: spec.Span,
		}, rng.Stream("warmup"))
	}
	rig.Start()
	job := workload.Job{
		Op: op, Pattern: pat, BS: chunk, Depth: depth,
		Runtime: spec.Runtime, TotalBytes: spec.TotalBytes, Span: spec.Span,
	}
	res := workload.Run(eng, dev, job, rng)
	rig.Stop()
	tr := rig.Trace()
	p := Point{
		Config: core.Config{
			Device:     spec.Device,
			PowerState: ps,
			Random:     pat == workload.Rand,
			Write:      op == device.OpWrite,
			ChunkBytes: chunk,
			Depth:      depth,
		},
		Result:    res,
		AvgPowerW: tr.Mean(),
	}
	if spec.KeepTrace {
		p.Trace = tr
	}
	return p, nil
}

// hashConfig derives a per-point seed offset so each grid cell gets an
// independent but reproducible random stream.
func hashConfig(ps int, op device.Op, pat workload.Pattern, chunk int64, depth int) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range []uint64{uint64(ps), uint64(op), uint64(pat), uint64(chunk), uint64(depth)} {
		h = (h ^ v) * 1099511628211
	}
	return h
}

// Record is one sweep point flattened into the measurement dataset row
// downstream consumers — calibration fits, reports, tests — share. The
// quantities are exactly the ones the reports print: the workload's
// issue-to-last-completion window and the rig-measured average power
// over it, with energy their product. There is no second accounting
// path; a fit and a printed table disagree only if this function does.
type Record struct {
	Device     string
	PowerState int
	Random     bool
	Write      bool
	ChunkBytes int64
	Depth      int

	// IOs and Bytes are completed counts; both zero for an idle record.
	IOs   int64
	Bytes int64
	// Seconds is the measured window; EnergyJ = AvgPowerW × Seconds.
	Seconds   float64
	AvgPowerW float64
	EnergyJ   float64
	MBps      float64
}

// Record flattens the point into its dataset row.
func (p Point) Record() Record {
	secs := p.Result.Elapsed.Seconds()
	return Record{
		Device:     p.Config.Device,
		PowerState: p.Config.PowerState,
		Random:     p.Config.Random,
		Write:      p.Config.Write,
		ChunkBytes: p.Config.ChunkBytes,
		Depth:      p.Config.Depth,
		IOs:        p.Result.IOs,
		Bytes:      p.Result.Bytes,
		Seconds:    secs,
		AvgPowerW:  p.AvgPowerW,
		EnergyJ:    p.AvgPowerW * secs,
		MBps:       p.Result.BandwidthMBps,
	}
}

// Records converts a slice of points to dataset rows.
func Records(points []Point) []Record {
	out := make([]Record, len(points))
	for i, p := range points {
		out[i] = p.Record()
	}
	return out
}

// Idle measures a device holding a power state with no IO for dur: the
// same testbed as a swept cell (fresh engine, catalog device, rig on
// the device's rail) minus the workload, so idle draw is measured
// through the same instrument chain as loaded draw. The returned
// point's Result carries only the window; Record() yields a zero-IO
// row anchoring a calibration's static-power intercept.
func Idle(devName string, ps int, dur time.Duration, seed uint64) (Point, error) {
	if dur <= 0 {
		return Point{}, fmt.Errorf("sweep: idle window %v must be positive", dur)
	}
	eng := sim.NewEngine()
	rng := sim.NewRNG(seed ^ hashIdle(ps, dur))
	dev, ok := catalog.ByName(devName, eng, rng)
	if !ok {
		return Point{}, fmt.Errorf("sweep: unknown device %q", devName)
	}
	if ps != 0 {
		if err := dev.SetPowerState(ps); err != nil {
			return Point{}, fmt.Errorf("sweep: %s ps%d: %w", devName, ps, err)
		}
	}
	rig, err := measure.NewRig(eng, rng, dev, measure.DefaultRigConfig(RailFor(dev)))
	if err != nil {
		return Point{}, err
	}
	rig.Start()
	eng.RunUntil(dur)
	rig.Stop()
	return Point{
		Config:    core.Config{Device: devName, PowerState: ps},
		Result:    workload.Result{Elapsed: dur},
		AvgPowerW: rig.Trace().Mean(),
	}, nil
}

// hashIdle derives a per-window seed offset for idle measurements,
// disjoint from hashConfig's cell space by construction (a different
// FNV tag leads the fold).
func hashIdle(ps int, dur time.Duration) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range []uint64{0x1d7e, uint64(ps), uint64(dur)} {
		h = (h ^ v) * 1099511628211
	}
	return h
}

// Samples converts a slice of points to model samples.
func Samples(points []Point) []core.Sample {
	out := make([]core.Sample, len(points))
	for i, p := range points {
		out[i] = p.Sample()
	}
	return out
}

// BuildModel runs the full Fig. 10 grid for one device — every chunk ×
// depth combination (and every power state for devices that have them)
// under the given op and pattern — and returns its power-throughput
// model.
func BuildModel(devName string, op device.Op, pat workload.Pattern, seed uint64, runtime time.Duration, totalBytes int64) (*core.Model, error) {
	spec := Spec{
		Device:     devName,
		Ops:        []device.Op{op},
		Patterns:   []workload.Pattern{pat},
		Chunks:     PaperChunks(),
		Depths:     PaperDepths(),
		Runtime:    runtime,
		TotalBytes: totalBytes,
		Seed:       seed,
	}
	// Devices with NVMe power states sweep them too (ps0 always runs).
	spec.PowerStates = []int{0}
	eng := sim.NewEngine()
	if dev, ok := catalog.ByName(devName, eng, sim.NewRNG(1)); ok {
		for i := 1; i < len(dev.PowerStates()); i++ {
			spec.PowerStates = append(spec.PowerStates, i)
		}
	}
	points, err := Run(spec)
	if err != nil {
		return nil, err
	}
	return core.NewModel(devName, Samples(points))
}
