// Package detcheck asserts the repository's determinism contract: a
// parallel computation must produce bit-identical results regardless of
// host scheduling. Both the sweep grid and the serving engine promise
// this (independent engines with derived seeds, order-stable merges),
// and their regression tests share this helper so the contract is
// checked the same way everywhere.
package detcheck

import (
	"reflect"
	"runtime"
	"strconv"
	"testing"
)

// Config tunes an Assert call.
type Config[T any] struct {
	// Procs lists GOMAXPROCS values to pin for additional runs beyond
	// the two at the ambient setting. Nil defaults to {1}.
	Procs []int
	// Variants are alternative producers that must agree with the
	// reference — different worker counts, a serial fallback, a cached
	// path. Each runs once at the ambient GOMAXPROCS.
	Variants []Variant[T]
	// Diff, when set, narrows a failure down to the first divergent
	// element; reflect.DeepEqual already decided the results differ.
	Diff func(t testing.TB, a, b T)
}

// Variant is one alternative way of producing the same result, labeled
// for failure messages.
type Variant[T any] struct {
	Label   string
	Produce func() (T, error)
}

// Assert runs produce twice at the ambient GOMAXPROCS and once at each
// pinned value in cfg.Procs, and fails the test unless every result is
// deeply equal to the first. It must not be called from a parallel
// test: pinning GOMAXPROCS is process-global.
func Assert[T any](t testing.TB, produce func() (T, error), cfg Config[T]) {
	t.Helper()
	procs := cfg.Procs
	if procs == nil {
		procs = []int{1}
	}

	ref, err := produce()
	if err != nil {
		t.Fatal(err)
	}
	check := func(label string, produce func() (T, error)) {
		t.Helper()
		got, err := produce()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("determinism violated: %s run differs from reference", label)
			if cfg.Diff != nil {
				cfg.Diff(t, ref, got)
			}
		}
	}

	check("repeat", produce)
	for _, p := range procs {
		prev := runtime.GOMAXPROCS(p)
		func() {
			defer runtime.GOMAXPROCS(prev)
			check("GOMAXPROCS="+strconv.Itoa(p), produce)
		}()
	}
	for _, v := range cfg.Variants {
		check(v.Label, v.Produce)
	}
}
