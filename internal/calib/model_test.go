package calib

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"wattio/internal/device"
)

// validModel returns a hand-built model that passes validation.
func validModel() *Model {
	return &Model{
		Class:         "SSD2",
		DeviceModel:   "WattIO NV2000",
		Protocol:      device.NVMe,
		CapacityBytes: 1 << 40,
		States: []State{
			{
				MaxPowerW: 11.5,
				Energy:    Coeffs{ReadOpJ: 9e-6, ReadByteJ: 9e-10, WriteOpJ: 4e-6, WriteByteJ: 3e-9, StaticW: 5},
				Service:   Service{ReadByteS: 3e-10, WriteOpS: 1e-6, WriteByteS: 9e-10},
			},
			{
				MaxPowerW: 9,
				Energy:    Coeffs{ReadByteJ: 1e-9, WriteOpJ: 4e-6, WriteByteJ: 3e-9, StaticW: 5},
				Service:   Service{ReadByteS: 4e-10, WriteOpS: 1e-6, WriteByteS: 1e-9},
			},
		},
	}
}

func TestModelRoundTrip(t *testing.T) {
	m := validModel()
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip diverged:\n%+v\n%+v", m, got)
	}
	// Canonical encoding is a fixed point.
	again, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("Encode(Decode(Encode(m))) is not byte-identical")
	}
	// Save/Load mirror Encode/Decode.
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, loaded) {
		t.Fatal("Save/Load round trip diverged")
	}
}

// TestDecodeRejections: every malformed document fails with an error
// naming what is wrong, mirroring core.Load's hardening.
func TestDecodeRejections(t *testing.T) {
	canon, err := validModel().Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		mutate  func(string) string
		wantSub string
	}{
		{"unknown field", func(s string) string {
			return strings.Replace(s, `"version"`, `"vendor": "x", "version"`, 1)
		}, "unknown field"},
		{"trailing data", func(s string) string { return s + "{}" }, "trailing data"},
		{"version skew", func(s string) string {
			return strings.Replace(s, `"version": 1`, `"version": 99`, 1)
		}, "version 99"},
		{"negative coefficient", func(s string) string {
			return strings.Replace(s, `"static_w": 5`, `"static_w": -5`, 1)
		}, "states[0].static_w"},
		{"nan rejected by json", func(s string) string {
			return strings.Replace(s, `"static_w": 5`, `"static_w": NaN`, 1)
		}, ""},
		{"unknown protocol", func(s string) string {
			return strings.Replace(s, `"protocol": "NVMe"`, `"protocol": "SCSI"`, 1)
		}, `protocol: unknown protocol "SCSI"`},
		{"no states", func(s string) string {
			return s[:strings.Index(s, `"states"`)] + "\"states\": []\n}\n"
		}, "at least one power state"},
		{"zero capacity", func(s string) string {
			return strings.Replace(s, `"capacity_bytes": 1099511627776`, `"capacity_bytes": 0`, 1)
		}, "capacity_bytes"},
		// State 0's read_op_s is already zero, so zeroing read_byte_s
		// leaves the read direction with no service time at all.
		{"zero service", func(s string) string {
			return strings.Replace(s, `"read_byte_s": 3e-10`, `"read_byte_s": 0`, 1)
		}, "read service time is identically zero"},
	}
	for _, tc := range cases {
		doc := tc.mutate(string(canon))
		if doc == string(canon) {
			t.Fatalf("%s: mutation did not change the document", tc.name)
		}
		_, err := Decode([]byte(doc))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestValidateRejectsNonFinite(t *testing.T) {
	m := validModel()
	m.States[0].Energy.ReadOpJ = math.NaN()
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "states[0].read_op_j") {
		t.Fatalf("NaN coefficient: %v", err)
	}
	m = validModel()
	m.States[1].Service.WriteByteS = math.Inf(1)
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "states[1].write_byte_s") {
		t.Fatalf("Inf coefficient: %v", err)
	}
	m = validModel()
	m.Class = ""
	if err := m.Validate(); err == nil {
		t.Fatal("empty class accepted")
	}
}

// FuzzFittedModelRoundTrip: any input that decodes must re-encode to a
// document that decodes to the same model, and the canonical encoding
// must be a fixed point. Inputs that do not decode must fail cleanly.
func FuzzFittedModelRoundTrip(f *testing.F) {
	canon, err := validModel().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(canon)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version": 1}`))
	f.Add([]byte(string(canon) + " "))
	f.Add([]byte(strings.Replace(string(canon), `"static_w": 5`, `"static_w": -1`, 1)))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // rejected input: fine, as long as it did not panic
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("Decode returned an invalid model: %v", err)
		}
		enc, err := m.Encode()
		if err != nil {
			t.Fatalf("decoded model does not re-encode: %v", err)
		}
		m2, err := Decode(enc)
		if err != nil {
			t.Fatalf("canonical encoding does not decode: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip diverged:\n%+v\n%+v", m, m2)
		}
		enc2, err := m2.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatal("canonical encoding is not a fixed point")
		}
	})
}
