package calib

import (
	"math"
	"math/rand"
	"testing"
)

// randSystem builds a random well-conditioned rows×cols system with
// entries in [-1, 1).
func randSystem(rng *rand.Rand, rows, cols int) [][]float64 {
	a := make([][]float64, rows)
	for i := range a {
		a[i] = make([]float64, cols)
		for j := range a[i] {
			a[i][j] = 2*rng.Float64() - 1
		}
	}
	return a
}

func matVec(a [][]float64, x []float64) []float64 {
	out := make([]float64, len(a))
	for i, row := range a {
		for j, v := range row {
			out[i] += v * x[j]
		}
	}
	return out
}

func residNorm(a [][]float64, x, b []float64) float64 {
	ax := matVec(a, x)
	var ss float64
	for i := range b {
		d := ax[i] - b[i]
		ss += d * d
	}
	return math.Sqrt(ss)
}

// TestNNLSNonNegativity: every solution coordinate is >= 0, even when
// the unconstrained optimum wants negative coefficients.
func TestNNLSNonNegativity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		rows := 3 + rng.Intn(12)
		cols := 1 + rng.Intn(6)
		a := randSystem(rng, rows, cols)
		b := make([]float64, rows)
		for i := range b {
			b[i] = 2*rng.Float64() - 1 // arbitrary sign: pulls hard toward negative x
		}
		x, err := NNLS(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for j, v := range x {
			if v < 0 {
				t.Fatalf("trial %d: x[%d] = %v negative", trial, j, v)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("trial %d: x[%d] = %v not finite", trial, j, v)
			}
		}
	}
}

// TestNNLSBeatsClampedOLS: the NNLS residual is never worse than the
// naive alternative of solving unconstrained OLS and clamping negative
// coefficients to zero. This is the optimality property that justifies
// carrying an active-set solver instead of a one-liner.
func TestNNLSBeatsClampedOLS(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		rows := 6 + rng.Intn(10)
		cols := 2 + rng.Intn(4)
		a := randSystem(rng, rows, cols)
		b := make([]float64, rows)
		for i := range b {
			b[i] = 2*rng.Float64() - 1
		}
		x, err := NNLS(a, b)
		if err != nil {
			t.Fatalf("trial %d: NNLS: %v", trial, err)
		}
		ols, err := OLS(a, b)
		if err != nil {
			t.Fatalf("trial %d: OLS: %v", trial, err)
		}
		for j := range ols {
			if ols[j] < 0 {
				ols[j] = 0
			}
		}
		rn, rc := residNorm(a, x, b), residNorm(a, ols, b)
		if rn > rc*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d: NNLS residual %v worse than clamped OLS %v", trial, rn, rc)
		}
	}
}

// TestNNLSExactRecovery: when b = A·x* with x* >= 0 (some coordinates
// exactly zero), the solver recovers x* to numerical precision.
func TestNNLSExactRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		rows := 8 + rng.Intn(10)
		cols := 2 + rng.Intn(4)
		a := randSystem(rng, rows, cols)
		truth := make([]float64, cols)
		for j := range truth {
			if rng.Intn(3) > 0 { // ~1/3 of coefficients held at zero
				truth[j] = rng.Float64() * 10
			}
		}
		b := matVec(a, truth)
		x, err := NNLS(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for j := range truth {
			if diff := math.Abs(x[j] - truth[j]); diff > 1e-6*(1+truth[j]) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, j, x[j], truth[j])
			}
		}
	}
}

// TestNNLSPermutationInvariance: permuting feature columns permutes the
// solution and nothing else — no column is privileged by solver order.
func TestNNLSPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		rows := 8 + rng.Intn(8)
		cols := 3 + rng.Intn(3)
		a := randSystem(rng, rows, cols)
		b := make([]float64, rows)
		for i := range b {
			b[i] = rng.Float64() * 5
		}
		base, err := NNLS(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		perm := rng.Perm(cols)
		pa := make([][]float64, rows)
		for i := range pa {
			pa[i] = make([]float64, cols)
			for j, p := range perm {
				pa[i][j] = a[i][p]
			}
		}
		px, err := NNLS(pa, b)
		if err != nil {
			t.Fatalf("trial %d: permuted: %v", trial, err)
		}
		for j, p := range perm {
			if diff := math.Abs(px[j] - base[p]); diff > 1e-8*(1+math.Abs(base[p])) {
				t.Fatalf("trial %d: permuted x[%d] = %v, want base x[%d] = %v",
					trial, j, px[j], p, base[p])
			}
		}
	}
}

// TestNNLSDeterministic: the same system solves to bit-identical output.
func TestNNLSDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randSystem(rng, 12, 5)
	b := make([]float64, 12)
	for i := range b {
		b[i] = 2*rng.Float64() - 1
	}
	x1, err := NNLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := NNLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for j := range x1 {
		if x1[j] != x2[j] {
			t.Fatalf("x[%d] differs across identical solves: %v vs %v", j, x1[j], x2[j])
		}
	}
}

// TestNNLSCollinearColumns: a duplicated column must not cycle the
// active set; the solution still satisfies the constraints and matches
// the single-column residual.
func TestNNLSCollinearColumns(t *testing.T) {
	a := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	b := []float64{1, 2, 3}
	x, err := NNLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rn := residNorm(a, x, b); rn > 1e-9 {
		t.Fatalf("collinear system residual %v, want ~0", rn)
	}
	for j, v := range x {
		if v < 0 {
			t.Fatalf("x[%d] = %v negative", j, v)
		}
	}
}

// TestNNLSZeroColumn: an all-zero feature column gets coefficient zero.
func TestNNLSZeroColumn(t *testing.T) {
	a := [][]float64{{1, 0}, {2, 0}, {3, 0}}
	b := []float64{2, 4, 6}
	x, err := NNLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-9 || x[1] != 0 {
		t.Fatalf("x = %v, want [2 0]", x)
	}
}

// TestNNLSScaleInvariance: the fit handles the real feature regime —
// columns spanning many orders of magnitude — without the small-scale
// column being squeezed out numerically.
func TestNNLSScaleInvariance(t *testing.T) {
	// bytes-scale column (~1e8) against a seconds-scale column (~1).
	a := [][]float64{
		{1e8, 1.0},
		{2e8, 1.5},
		{4e8, 3.0},
		{0, 0.5},
		{0, 2.0},
	}
	truth := []float64{3e-9, 4.0} // nJ/byte and watts
	b := matVec(a, truth)
	x, err := NNLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for j := range truth {
		if math.Abs(x[j]-truth[j]) > 1e-6*truth[j] {
			t.Fatalf("x[%d] = %v, want %v", j, x[j], truth[j])
		}
	}
}

func TestNNLSRejectsBadSystems(t *testing.T) {
	cases := []struct {
		name string
		a    [][]float64
		b    []float64
	}{
		{"empty", nil, nil},
		{"row mismatch", [][]float64{{1}}, []float64{1, 2}},
		{"ragged", [][]float64{{1, 2}, {1}}, []float64{1, 2}},
		{"no columns", [][]float64{{}, {}}, []float64{1, 2}},
		{"nan entry", [][]float64{{math.NaN()}}, []float64{1}},
		{"inf target", [][]float64{{1}}, []float64{math.Inf(1)}},
	}
	for _, tc := range cases {
		if _, err := NNLS(tc.a, tc.b); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
		if _, err := OLS(tc.a, tc.b); err == nil {
			t.Errorf("%s: OLS accepted", tc.name)
		}
	}
}
